package metrics

import (
	"runtime"
	"sync"
	"testing"
)

func TestNumShardsSane(t *testing.T) {
	n := NumShards()
	if n < 8 || n > maxShards {
		t.Fatalf("NumShards() = %d, want in [8, %d]", n, maxShards)
	}
	if n&(n-1) != 0 {
		t.Fatalf("NumShards() = %d, not a power of two", n)
	}
	if g := runtime.GOMAXPROCS(0); n < g && n < maxShards {
		t.Errorf("NumShards() = %d < GOMAXPROCS %d", n, g)
	}
}

// No lost updates: heavy concurrent bumps over every metric from many
// goroutines must sum exactly. Run with -race to also check the shard
// plumbing is data-race free.
func TestRecorderShardedStressExact(t *testing.T) {
	var r Recorder
	const workers = 16
	const perWorker = 2000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			loc := r.LocalAt(i) // half pinned ...
			for j := 0; j < perWorker; j++ {
				if i%2 == 0 {
					loc.Add(Metric(j%int(NumMetrics)), 1)
				} else {
					r.Add(Metric(j%int(NumMetrics)), 1) // ... half hashed
				}
			}
		}(i)
	}
	wg.Wait()
	var total int64
	for _, m := range AllMetrics() {
		total += r.Get(m)
	}
	if want := int64(workers * perWorker); total != want {
		t.Fatalf("lost updates: total = %d, want %d", total, want)
	}
}

// Sequential snapshots taken while writers only increment must be
// monotonically non-decreasing per metric, and the final snapshot after all
// writers join must be exact — the linearization contract of Snapshot/Delta
// under concurrent writers.
func TestSnapshotMonotonicUnderWriters(t *testing.T) {
	var r Recorder
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			loc := r.LocalAt(i)
			for j := 0; j < perWorker; j++ {
				loc.IncAtomic()
			}
		}(i)
	}
	prev := int64(0)
	for k := 0; k < 100; k++ {
		s := r.Snapshot()
		got := s.Get(Atomic)
		if got < prev {
			t.Fatalf("snapshot %d went backwards: %d -> %d", k, prev, got)
		}
		if got > workers*perWorker {
			t.Fatalf("snapshot %d overshoots: %d > %d", k, got, workers*perWorker)
		}
		prev = got
	}
	wg.Wait()
	if got := r.Get(Atomic); got != workers*perWorker {
		t.Fatalf("final count = %d, want %d", got, workers*perWorker)
	}
	// Delta over the quiesced recorder against an empty baseline is exact.
	d := r.Snapshot().Delta(Snapshot{})
	if d.Get(Atomic) != workers*perWorker {
		t.Fatalf("delta = %d, want %d", d.Get(Atomic), workers*perWorker)
	}
}

func TestResetClearsAllShards(t *testing.T) {
	var r Recorder
	for i := 0; i < NumShards(); i++ {
		r.LocalAt(i).IncObject()
	}
	if got := r.Get(Object); got != int64(NumShards()) {
		t.Fatalf("pre-reset count = %d, want %d", got, NumShards())
	}
	r.Reset()
	for _, m := range AllMetrics() {
		if got := r.Get(m); got != 0 {
			t.Fatalf("after Reset, Get(%v) = %d", m, got)
		}
	}
}

// Local handles pinned to different stripes must aggregate into the same
// totals as the hashed path.
func TestLocalAggregatesAcrossShards(t *testing.T) {
	var r Recorder
	a := r.LocalAt(0)
	b := r.LocalAt(1)
	a.IncSynch()
	a.AddMethod(3)
	b.IncSynch()
	b.AddCacheMiss(7)
	if got := r.Get(Synch); got != 2 {
		t.Errorf("Get(Synch) = %d, want 2", got)
	}
	if got := r.Get(Method); got != 3 {
		t.Errorf("Get(Method) = %d, want 3", got)
	}
	if got := r.Get(CacheMiss); got != 7 {
		t.Errorf("Get(CacheMiss) = %d, want 7", got)
	}
	s := r.Snapshot()
	if s.Get(Synch) != 2 || s.Get(Method) != 3 || s.Get(CacheMiss) != 7 {
		t.Errorf("snapshot disagrees with Get: %+v", s.Counts)
	}
}

func TestLocalWrapperParity(t *testing.T) {
	var r Recorder
	loc := r.Local()
	loc.IncSynch()
	loc.IncWait()
	loc.IncNotify()
	loc.IncAtomic()
	loc.AddAtomic(2)
	loc.IncPark()
	loc.IncObject()
	loc.AddObject(2)
	loc.IncArray()
	loc.AddArray(3)
	loc.IncMethod()
	loc.AddMethod(4)
	loc.IncIDynamic()
	loc.AddIDynamic(5)
	loc.AddCacheMiss(7)
	want := map[Metric]int64{
		Synch: 1, Wait: 1, Notify: 1, Atomic: 3, Park: 1,
		Object: 3, Array: 4, Method: 5, IDynamic: 6, CacheMiss: 7,
	}
	for m, w := range want {
		if got := r.Get(m); got != w {
			t.Errorf("Get(%v) = %d, want %d", m, got, w)
		}
	}
}

// The acceptance contract: counts are exact, not sampled. A deterministic
// workload replayed against a fresh recorder produces identical Delta
// totals every time.
func TestDeterministicWorkloadExactDelta(t *testing.T) {
	run := func() Snapshot {
		var r Recorder
		before := r.Snapshot()
		for i := 0; i < 1000; i++ {
			r.Add(Synch, 1)
			r.Add(Atomic, 2)
			if i%10 == 0 {
				r.Add(Object, 1)
			}
		}
		return r.Snapshot().Delta(before)
	}
	first := run()
	if first.Get(Synch) != 1000 || first.Get(Atomic) != 2000 || first.Get(Object) != 100 {
		t.Fatalf("unexpected totals: %+v", first.Counts)
	}
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d diverged: %+v vs %+v", i, got.Counts, first.Counts)
		}
	}
}
