package metrics

import (
	"sync/atomic"
	"testing"
)

// flatRecorder is the pre-sharding Recorder layout — eleven adjacent
// atomic.Int64 slots in one array, i.e. all counters packed into two cache
// lines. Kept here (test-only) as the contention baseline: run
//
//	go test -run '^$' -bench 'Recorder' -cpu 1,2,4,8 ./internal/metrics
//
// to compare it against the striped Recorder and the pinned Local path.
type flatRecorder struct {
	counts [NumMetrics]atomic.Int64
}

func (r *flatRecorder) add(m Metric, delta int64) { r.counts[m].Add(delta) }

// Every goroutine bumps the same metric — pure same-line contention.
func BenchmarkRecorderFlatSameMetric(b *testing.B) {
	var r flatRecorder
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.add(Atomic, 1)
		}
	})
}

func BenchmarkRecorderShardedSameMetric(b *testing.B) {
	var r Recorder
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Add(Atomic, 1)
		}
	})
}

func BenchmarkRecorderLocalSameMetric(b *testing.B) {
	var r Recorder
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		loc := r.LocalAt(int(next.Add(1)))
		for pb.Next() {
			loc.IncAtomic()
		}
	})
}

// Each goroutine bumps a different metric — in the flat layout these are
// adjacent slots of one array, so this measures false sharing; in the
// striped layout every (shard, metric) lane has its own cache line.
func BenchmarkRecorderFlatMixedMetrics(b *testing.B) {
	var r flatRecorder
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		m := Metric(next.Add(1) % int64(NumMetrics))
		for pb.Next() {
			r.add(m, 1)
		}
	})
}

func BenchmarkRecorderShardedMixedMetrics(b *testing.B) {
	var r Recorder
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		m := Metric(next.Add(1) % int64(NumMetrics))
		for pb.Next() {
			r.Add(m, 1)
		}
	})
}

func BenchmarkRecorderLocalMixedMetrics(b *testing.B) {
	var r Recorder
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		i := next.Add(1)
		loc := r.LocalAt(int(i))
		m := Metric(i % int64(NumMetrics))
		for pb.Next() {
			loc.Add(m, 1)
		}
	})
}

// Snapshot cost while writers run (the profiler's read path).
func BenchmarkSnapshotUnderWriters(b *testing.B) {
	var r Recorder
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func(i int) {
			loc := r.LocalAt(i)
			for {
				select {
				case <-stop:
					return
				default:
					loc.IncAtomic()
				}
			}
		}(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
	b.StopTimer()
	close(stop)
}
