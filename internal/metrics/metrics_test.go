package metrics

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestMetricNames(t *testing.T) {
	want := []string{
		"synch", "wait", "notify", "atomic", "park", "cpu",
		"cachemiss", "object", "array", "method", "idynamic", "deadletter",
		"stmabort", "stmextend",
	}
	for i, w := range want {
		if got := Metric(i).String(); got != w {
			t.Errorf("Metric(%d).String() = %q, want %q", i, got, w)
		}
	}
	if Metric(-1).String() != "metric(-1)" {
		t.Errorf("out-of-range metric name = %q", Metric(-1).String())
	}
}

func TestAllMetrics(t *testing.T) {
	ms := AllMetrics()
	if len(ms) != int(NumMetrics) {
		t.Fatalf("AllMetrics() has %d entries, want %d", len(ms), NumMetrics)
	}
	for i, m := range ms {
		if int(m) != i {
			t.Errorf("AllMetrics()[%d] = %v", i, m)
		}
	}
}

func TestCounted(t *testing.T) {
	for _, m := range AllMetrics() {
		want := m != CPU
		if got := m.Counted(); got != want {
			t.Errorf("%v.Counted() = %v, want %v", m, got, want)
		}
	}
}

func TestRecorderAddGet(t *testing.T) {
	var r Recorder
	r.Add(Atomic, 5)
	r.Add(Atomic, 2)
	r.Add(Synch, 1)
	if got := r.Get(Atomic); got != 7 {
		t.Errorf("Get(Atomic) = %d, want 7", got)
	}
	if got := r.Get(Synch); got != 1 {
		t.Errorf("Get(Synch) = %d, want 1", got)
	}
	if got := r.Get(Park); got != 0 {
		t.Errorf("Get(Park) = %d, want 0", got)
	}
	r.Reset()
	if got := r.Get(Atomic); got != 0 {
		t.Errorf("after Reset, Get(Atomic) = %d, want 0", got)
	}
}

func TestSnapshotDelta(t *testing.T) {
	var r Recorder
	r.Add(Object, 10)
	before := r.Snapshot()
	r.Add(Object, 5)
	r.Add(Method, 3)
	d := r.Snapshot().Delta(before)
	if got := d.Get(Object); got != 5 {
		t.Errorf("delta Object = %d, want 5", got)
	}
	if got := d.Get(Method); got != 3 {
		t.Errorf("delta Method = %d, want 3", got)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	var r Recorder
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				r.Add(Atomic, 1)
			}
		}()
	}
	wg.Wait()
	if got := r.Get(Atomic); got != workers*perWorker {
		t.Errorf("concurrent count = %d, want %d", got, workers*perWorker)
	}
}

func TestDefaultWrappers(t *testing.T) {
	base := Default.Snapshot()
	IncSynch()
	IncWait()
	IncNotify()
	IncAtomic()
	AddAtomic(2)
	IncPark()
	IncObject()
	AddObject(2)
	IncArray()
	AddArray(3)
	IncMethod()
	AddMethod(4)
	IncIDynamic()
	AddIDynamic(5)
	AddCacheMiss(7)
	d := Default.Snapshot().Delta(base)
	checks := map[Metric]int64{
		Synch: 1, Wait: 1, Notify: 1, Atomic: 3, Park: 1,
		Object: 3, Array: 4, Method: 5, IDynamic: 6, CacheMiss: 7,
	}
	for m, want := range checks {
		if got := d.Get(m); got != want {
			t.Errorf("delta %v = %d, want %d", m, got, want)
		}
	}
}

func TestRefCycles(t *testing.T) {
	got := RefCycles(time.Second)
	want := 1e9 * NominalGHz
	if got != want {
		t.Errorf("RefCycles(1s) = %g, want %g", got, want)
	}
}

func TestProfileRate(t *testing.T) {
	p := &Profile{RefCycles: 1000, CPUUtil: 42.5}
	p.Counts.Counts[Atomic] = 500
	if got := p.Rate(Atomic); got != 0.5 {
		t.Errorf("Rate(Atomic) = %g, want 0.5", got)
	}
	if got := p.Rate(CPU); got != 42.5 {
		t.Errorf("Rate(CPU) = %g, want 42.5", got)
	}
	zero := &Profile{}
	if got := zero.Rate(Atomic); got != 0 {
		t.Errorf("zero-cycle Rate = %g, want 0", got)
	}
}

func TestProfileVector(t *testing.T) {
	p := &Profile{RefCycles: 100, CPUUtil: 10}
	p.Counts.Counts[Synch] = 50
	v := p.Vector()
	if len(v) != int(NumMetrics) {
		t.Fatalf("Vector() has %d entries, want %d", len(v), NumMetrics)
	}
	if v[Synch] != 0.5 {
		t.Errorf("Vector()[Synch] = %g, want 0.5", v[Synch])
	}
	if v[CPU] != 10 {
		t.Errorf("Vector()[CPU] = %g, want 10", v[CPU])
	}
}

func TestProfilerStop(t *testing.T) {
	p := StartProfile("test", "bench")
	IncAtomic()
	buf := make([]byte, 1<<16) // force measurable allocation for the proxy
	_ = buf
	time.Sleep(time.Millisecond)
	prof := p.Stop()
	if prof.Suite != "test" || prof.Benchmark != "bench" {
		t.Errorf("profile identity = %s/%s", prof.Suite, prof.Benchmark)
	}
	if prof.Counts.Get(Atomic) < 1 {
		t.Errorf("profile atomic count = %d, want >= 1", prof.Counts.Get(Atomic))
	}
	if prof.RefCycles <= 0 {
		t.Errorf("RefCycles = %g, want > 0", prof.RefCycles)
	}
	if prof.Elapsed <= 0 {
		t.Errorf("Elapsed = %v, want > 0", prof.Elapsed)
	}
	if prof.CPUUtil < 0 || prof.CPUUtil > 100 {
		t.Errorf("CPUUtil = %g, want within [0,100]", prof.CPUUtil)
	}
	if s := prof.String(); s == "" {
		t.Error("empty profile string")
	}
}

func TestSortProfiles(t *testing.T) {
	ps := []*Profile{
		{Suite: "b", Benchmark: "x"},
		{Suite: "a", Benchmark: "z"},
		{Suite: "a", Benchmark: "y"},
	}
	SortProfiles(ps)
	order := []string{"a/y", "a/z", "b/x"}
	for i, want := range order {
		got := ps[i].Suite + "/" + ps[i].Benchmark
		if got != want {
			t.Errorf("sorted[%d] = %s, want %s", i, got, want)
		}
	}
}

// Property: delta of a snapshot with itself is zero, and delta is
// anti-symmetric in each coordinate.
func TestSnapshotDeltaProperties(t *testing.T) {
	f := func(a, b [NumMetrics]int64) bool {
		sa := Snapshot{Counts: a}
		sb := Snapshot{Counts: b}
		zero := sa.Delta(sa)
		for _, c := range zero.Counts {
			if c != 0 {
				return false
			}
		}
		ab := sa.Delta(sb)
		ba := sb.Delta(sa)
		for i := range ab.Counts {
			if ab.Counts[i] != -ba.Counts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
