package metrics

import (
	"fmt"
	"math"
	"runtime"
	runtimemetrics "runtime/metrics"
	"sort"
	"strings"
	"time"
)

// NominalGHz is the nominal CPU frequency used to convert wall-clock time to
// reference cycles, mirroring the paper's use of reference cycles "measured
// at a constant nominal frequency" (§3.2). The paper's profiling machine ran
// at 2.7 GHz; we keep the same constant so that normalized rates are on a
// comparable scale.
const NominalGHz = 2.7

// RefCycles converts a wall-clock duration into reference cycles at the
// nominal frequency.
func RefCycles(d time.Duration) float64 {
	return float64(d.Nanoseconds()) * NominalGHz
}

// A Profile is the result of profiling one steady-state benchmark execution:
// raw counts plus the denominators needed for normalization.
type Profile struct {
	Benchmark string
	Suite     string
	Counts    Snapshot
	// RefCycles is the reference-cycle count of the profiled execution
	// (wall time at nominal frequency, or the RVM's deterministic cycle
	// count for kernel workloads).
	RefCycles float64
	// CPUUtil is the average CPU utilization in percent (0..100*GOMAXPROCS
	// normalized to 0..100 of available capacity).
	CPUUtil float64
	// Elapsed is the profiled wall-clock duration.
	Elapsed time.Duration
}

// Rate returns the metric's occurrence count normalized by reference cycles
// (§3.2). For the CPU metric it returns the utilization percentage, which
// the paper does not normalize.
func (p *Profile) Rate(m Metric) float64 {
	if m == CPU {
		return p.CPUUtil
	}
	if p.RefCycles <= 0 {
		return 0
	}
	return float64(p.Counts.Get(m)) / p.RefCycles
}

// Vector returns all metric rates in Table 2 order, the row format consumed
// by the PCA analysis.
func (p *Profile) Vector() []float64 {
	v := make([]float64, NumMetrics)
	for m := Metric(0); m < NumMetrics; m++ {
		v[m] = p.Rate(m)
	}
	return v
}

func (p *Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s:", p.Suite, p.Benchmark)
	for m := Metric(0); m < NumMetrics; m++ {
		if m == CPU {
			fmt.Fprintf(&b, " cpu=%.1f%%", p.CPUUtil)
			continue
		}
		fmt.Fprintf(&b, " %s=%d", m, p.Counts.Get(m))
	}
	return b.String()
}

// A Profiler brackets a measured region: it snapshots the Default recorder,
// the wall clock, the Go runtime's CPU usage, and allocation statistics, and
// produces a Profile on Stop.
type Profiler struct {
	benchmark string
	suite     string
	start     time.Time
	base      Snapshot
	cpuBase   float64
	memBase   runtime.MemStats
}

// StartProfile begins profiling a region attributed to the given suite and
// benchmark name.
func StartProfile(suite, benchmark string) *Profiler {
	p := &Profiler{benchmark: benchmark, suite: suite}
	runtime.ReadMemStats(&p.memBase)
	p.cpuBase = totalCPUSeconds()
	p.base = Default.Snapshot()
	p.start = time.Now()
	return p
}

// Stop ends the profiled region and returns the resulting Profile.
//
// The cachemiss counter is the sum of the explicitly recorded simulated
// misses (from the RVM cache simulator) and an allocation-pressure proxy:
// each 64-byte cache line of newly allocated heap memory is counted as one
// compulsory miss. This preserves the paper's use of cachemiss as an
// indirect indicator of memory traffic and contention (§3.1) without
// requiring hardware counters.
func (p *Profiler) Stop() *Profile {
	elapsed := time.Since(p.start)
	snap := Default.Snapshot().Delta(p.base)
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	allocBytes := int64(mem.TotalAlloc - p.memBase.TotalAlloc)
	if allocBytes > 0 {
		snap.Counts[CacheMiss] += allocBytes / 64
	}

	cpuSec := totalCPUSeconds() - p.cpuBase
	util := 0.0
	if elapsed > 0 {
		capacity := elapsed.Seconds() * float64(runtime.GOMAXPROCS(0))
		util = 100 * cpuSec / capacity
		if util < 0 {
			util = 0
		}
		if util > 100 {
			util = 100
		}
	}

	return &Profile{
		Benchmark: p.benchmark,
		Suite:     p.suite,
		Counts:    snap,
		RefCycles: RefCycles(elapsed),
		CPUUtil:   util,
		Elapsed:   elapsed,
	}
}

// totalCPUSeconds reads the cumulative user+system CPU seconds consumed by
// the process from runtime/metrics. It returns NaN-free 0 when the metric is
// unavailable.
func totalCPUSeconds() float64 {
	samples := []runtimemetrics.Sample{
		{Name: "/cpu/classes/user:cpu-seconds"},
		{Name: "/cpu/classes/gc/total:cpu-seconds"},
	}
	runtimemetrics.Read(samples)
	total := 0.0
	for _, s := range samples {
		if s.Value.Kind() == runtimemetrics.KindFloat64 {
			v := s.Value.Float64()
			if !math.IsNaN(v) {
				total += v
			}
		}
	}
	return total
}

// SortProfiles orders profiles by suite then benchmark name, the order used
// by the report tables.
func SortProfiles(ps []*Profile) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Suite != ps[j].Suite {
			return ps[i].Suite < ps[j].Suite
		}
		return ps[i].Benchmark < ps[j].Benchmark
	})
}
