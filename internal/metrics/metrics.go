// Package metrics implements the characterizing metrics of Table 2 of the
// Renaissance paper (Prokopec et al., PLDI 2019): dynamic usage counters for
// the basic concurrency primitives (synchronized sections, wait/notify,
// atomic operations, thread parking), the basic object-oriented primitives
// (object allocation, array allocation, dynamic dispatch), and the
// invokedynamic-style closure dispatch counter, together with CPU
// utilization, a cache-miss proxy, and reference-cycle normalization.
//
// On the JVM the paper collects these with DiSL bytecode instrumentation and
// hardware counters. Here every substrate package (actors, stm, forkjoin,
// rdd, ...) calls the Inc* functions at the corresponding primitive
// operation, which keeps the instrumentation at the same abstraction
// boundary with negligible perturbation.
//
// # Contention-free counters
//
// A Recorder is striped: it holds a power-of-two number of shards, and each
// shard keeps every metric in its own 64-byte cache-line-padded lane. A
// counter bump therefore never contends with a bump of a different metric
// (no false sharing between adjacent counters) and rarely contends with the
// same metric bumped by another goroutine (writers spread across shards via
// a cheap per-goroutine hash). Reads — Get, Snapshot — sum across shards;
// Reset clears every shard. Counts are exact, not sampled: every bump lands
// in exactly one shard lane and every read sums all lanes.
//
// Code on a measured hot path can go one step further and acquire a Local
// handle (Local or LocalAt), a recorder pinned to a single shard: the hash
// is paid once at acquisition and each bump is a single uncontended atomic
// add. The fork–join workers, the RDD partition tasks, and the STM commit
// path use this.
package metrics

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"unsafe"
)

// Metric identifies one of the characterizing metrics of Table 2.
type Metric int

// The metrics of Table 2, in the paper's order.
const (
	Synch     Metric = iota // synchronized methods and blocks executed
	Wait                    // Object.wait() analogues (guarded-block waits)
	Notify                  // Object.notify()/notifyAll() analogues
	Atomic                  // atomic memory operations (CAS, fetch-add, ...)
	Park                    // thread/goroutine park operations
	CPU                     // average CPU utilization (fraction of GOMAXPROCS)
	CacheMiss               // cache misses (simulated or allocation proxy)
	Object                  // objects allocated
	Array                   // arrays (slices) allocated
	Method                  // dynamic dispatch (virtual/interface calls)
	IDynamic                // invokedynamic analogues (closure dispatch)
	// DeadLetter extends Table 2 with a fault-path counter: messages that
	// could not be delivered (sends to stopped actors, mailbox drains of a
	// stopped actor, shed netstack requests). It quantifies the
	// concurrency-primitive cost of failure handling the same way the
	// other counters quantify the happy path.
	DeadLetter
	// StmAbort extends Table 2 with the STM contention-manager counters:
	// transactional aborts (conflicts detected at read, lock acquisition,
	// or validation time, plus injected commit faults). Together with
	// StmExtend it characterizes how much optimistic work the atomic/STM
	// workload cluster discards versus salvages.
	StmAbort
	// StmExtend counts successful TL2 timestamp extensions: reads that
	// would have aborted the transaction under plain TL2 but instead
	// revalidated the read set against a newer clock and continued.
	StmExtend
	// RddRecompute extends Table 2 with the RDD engine's recovery counter:
	// partition recomputes — a partition attempt that failed (panic,
	// TaskError, or injected chaos fault) and was re-evaluated from its
	// lineage. Zero on a fault-free run.
	RddRecompute
	// RddSpec counts speculative duplicates the RDD engine launched for
	// straggling partitions (first-writer-wins publication; the loser is
	// suppressed). Zero unless speculation is enabled.
	RddSpec

	NumMetrics // number of metrics
)

var metricNames = [NumMetrics]string{
	"synch", "wait", "notify", "atomic", "park", "cpu",
	"cachemiss", "object", "array", "method", "idynamic", "deadletter",
	"stmabort", "stmextend", "rddrecompute", "rddspec",
}

// String returns the paper's short name for the metric.
func (m Metric) String() string {
	if m < 0 || m >= NumMetrics {
		return fmt.Sprintf("metric(%d)", int(m))
	}
	return metricNames[m]
}

// AllMetrics returns the metrics in Table 2 order.
func AllMetrics() []Metric {
	ms := make([]Metric, NumMetrics)
	for i := range ms {
		ms[i] = Metric(i)
	}
	return ms
}

// Counted reports whether the metric is a dynamic event counter (as opposed
// to the sampled CPU utilization, which is a ratio).
func (m Metric) Counted() bool { return m != CPU }

// cacheLine is the assumed cache-line size; lanes are padded to it so that
// no two counters ever share a line.
const cacheLine = 64

// maxShards bounds the stripe count (and therefore the size of the
// zero-value Recorder, which embeds the full shard array so that it stays
// ready to use without initialization).
const maxShards = 64

var (
	numShards = computeShards()
	shardMask = uint64(numShards - 1)
)

// computeShards picks a power-of-two stripe count of at least 8 and at
// least the machine's parallelism, capped at maxShards.
func computeShards() int {
	n := runtime.NumCPU()
	if g := runtime.GOMAXPROCS(0); g > n {
		n = g
	}
	if n < 8 {
		n = 8
	}
	if n > maxShards {
		n = maxShards
	}
	s := 1
	for s < n {
		s <<= 1
	}
	return s
}

// NumShards returns the stripe count of every Recorder in this process.
func NumShards() int { return numShards }

// lane is one counter on its own cache line.
type lane struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// shard holds one padded lane per metric.
type shard struct {
	lanes [NumMetrics]lane
}

// shardIndex hashes the current goroutine's stack address to a shard.
// Distinct goroutines occupy distinct stacks, so this spreads concurrent
// writers across shards at the cost of a couple of ALU ops; the value is
// not stable across stack growth, which is fine — any shard is correct,
// the hash only reduces contention.
func shardIndex() uint64 {
	var probe byte
	h := uint64(uintptr(unsafe.Pointer(&probe)))
	h ^= h >> 17
	h *= 0x9E3779B97F4A7C15
	return (h >> 32) & shardMask
}

// A Recorder accumulates the event counters. The zero value is ready to use.
// All methods are safe for concurrent use.
type Recorder struct {
	shards    [maxShards]shard
	nextLocal atomic.Uint32
}

// Default is the process-wide recorder used by the substrate packages.
var Default = &Recorder{}

// Add adds delta occurrences of metric m.
func (r *Recorder) Add(m Metric, delta int64) {
	r.shards[shardIndex()].lanes[m].v.Add(delta)
}

// Get returns the current count of metric m, summed across shards.
func (r *Recorder) Get(m Metric) int64 {
	var n int64
	for i := 0; i < numShards; i++ {
		n += r.shards[i].lanes[m].v.Load()
	}
	return n
}

// Reset zeroes every counter in every shard.
func (r *Recorder) Reset() {
	for i := 0; i < numShards; i++ {
		for m := range r.shards[i].lanes {
			r.shards[i].lanes[m].v.Store(0)
		}
	}
}

// Snapshot captures the current value of every counter (each metric summed
// across shards).
func (r *Recorder) Snapshot() Snapshot {
	var s Snapshot
	for i := 0; i < numShards; i++ {
		for m := range r.shards[i].lanes {
			s.Counts[m] += r.shards[i].lanes[m].v.Load()
		}
	}
	return s
}

// A Local is a Recorder handle pinned to one shard: bumps through it skip
// the per-call shard hash and are a single atomic add on a cache line the
// holder effectively owns. Acquire one per worker / task / transaction on
// hot paths; do not share one Local across goroutines that bump heavily
// (they would contend on the pinned shard — that is the only cost, counts
// stay exact). The zero Local is not usable; acquire via Local, LocalAt,
// Acquire, or AcquireAt.
type Local struct {
	sh *shard
}

// Local returns a handle pinned to the calling goroutine's hashed shard.
func (r *Recorder) Local() Local {
	return Local{&r.shards[shardIndex()]}
}

// LocalAt returns a handle pinned to stripe i mod NumShards — worker pools
// use the worker index to spread workers deterministically across stripes.
func (r *Recorder) LocalAt(i int) Local {
	return Local{&r.shards[uint64(i)&shardMask]}
}

// Acquire returns a Local on the Default recorder for the calling
// goroutine's hashed shard.
func Acquire() Local { return Default.Local() }

// AcquireAt returns a Local on the Default recorder pinned to stripe i.
func AcquireAt(i int) Local { return Default.LocalAt(i) }

// Add adds delta occurrences of metric m to the pinned shard.
func (l Local) Add(m Metric, delta int64) { l.sh.lanes[m].v.Add(delta) }

// IncSynch records entry into a synchronized (mutex-protected) section.
func (l Local) IncSynch() { l.sh.lanes[Synch].v.Add(1) }

// IncWait records a guarded-block wait (condition-variable wait).
func (l Local) IncWait() { l.sh.lanes[Wait].v.Add(1) }

// IncNotify records a notify/notifyAll (condition-variable signal).
func (l Local) IncNotify() { l.sh.lanes[Notify].v.Add(1) }

// IncAtomic records one atomic memory operation (CAS, fetch-add, ...).
func (l Local) IncAtomic() { l.sh.lanes[Atomic].v.Add(1) }

// AddAtomic records n atomic memory operations.
func (l Local) AddAtomic(n int64) { l.sh.lanes[Atomic].v.Add(n) }

// IncPark records a goroutine park.
func (l Local) IncPark() { l.sh.lanes[Park].v.Add(1) }

// IncObject records one object allocation.
func (l Local) IncObject() { l.sh.lanes[Object].v.Add(1) }

// AddObject records n object allocations.
func (l Local) AddObject(n int64) { l.sh.lanes[Object].v.Add(n) }

// IncArray records one array (slice) allocation.
func (l Local) IncArray() { l.sh.lanes[Array].v.Add(1) }

// AddArray records n array (slice) allocations.
func (l Local) AddArray(n int64) { l.sh.lanes[Array].v.Add(n) }

// IncMethod records one dynamically dispatched call.
func (l Local) IncMethod() { l.sh.lanes[Method].v.Add(1) }

// AddMethod records n dynamically dispatched calls.
func (l Local) AddMethod(n int64) { l.sh.lanes[Method].v.Add(n) }

// IncIDynamic records one invokedynamic analogue (closure dispatch).
func (l Local) IncIDynamic() { l.sh.lanes[IDynamic].v.Add(1) }

// AddIDynamic records n invokedynamic analogues.
func (l Local) AddIDynamic(n int64) { l.sh.lanes[IDynamic].v.Add(n) }

// AddCacheMiss records n simulated cache misses.
func (l Local) AddCacheMiss(n int64) { l.sh.lanes[CacheMiss].v.Add(n) }

// IncDeadLetter records one dropped or dead-lettered message.
func (l Local) IncDeadLetter() { l.sh.lanes[DeadLetter].v.Add(1) }

// IncStmAbort records one STM transactional abort.
func (l Local) IncStmAbort() { l.sh.lanes[StmAbort].v.Add(1) }

// IncStmExtend records one successful STM timestamp extension.
func (l Local) IncStmExtend() { l.sh.lanes[StmExtend].v.Add(1) }

// IncRddRecompute records one RDD partition recompute.
func (l Local) IncRddRecompute() { l.sh.lanes[RddRecompute].v.Add(1) }

// IncRddSpec records one speculative RDD partition duplicate.
func (l Local) IncRddSpec() { l.sh.lanes[RddSpec].v.Add(1) }

// A Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	Counts [NumMetrics]int64
}

// Delta returns the per-metric difference s - earlier.
func (s Snapshot) Delta(earlier Snapshot) Snapshot {
	var d Snapshot
	for i := range s.Counts {
		d.Counts[i] = s.Counts[i] - earlier.Counts[i]
	}
	return d
}

// Get returns the snapshot's count for metric m.
func (s Snapshot) Get(m Metric) int64 { return s.Counts[m] }

// Convenience wrappers over the Default recorder. These are what the
// substrate packages call at their primitive operations.

// IncSynch records entry into a synchronized (mutex-protected) section.
func IncSynch() { Default.Add(Synch, 1) }

// IncWait records a guarded-block wait (condition-variable wait).
func IncWait() { Default.Add(Wait, 1) }

// IncNotify records a notify/notifyAll (condition-variable signal).
func IncNotify() { Default.Add(Notify, 1) }

// IncAtomic records one atomic memory operation (CAS, fetch-add, ...).
func IncAtomic() { Default.Add(Atomic, 1) }

// AddAtomic records n atomic memory operations.
func AddAtomic(n int64) { Default.Add(Atomic, n) }

// IncPark records a goroutine park (blocking channel receive used as a
// scheduler park point, or semaphore-style blocking).
func IncPark() { Default.Add(Park, 1) }

// IncObject records one object allocation performed by a substrate.
func IncObject() { Default.Add(Object, 1) }

// AddObject records n object allocations.
func AddObject(n int64) { Default.Add(Object, n) }

// IncArray records one array (slice) allocation performed by a substrate.
func IncArray() { Default.Add(Array, 1) }

// AddArray records n array allocations.
func AddArray(n int64) { Default.Add(Array, n) }

// IncMethod records one dynamically dispatched call (virtual/interface).
func IncMethod() { Default.Add(Method, 1) }

// AddMethod records n dynamically dispatched calls.
func AddMethod(n int64) { Default.Add(Method, n) }

// IncIDynamic records one invokedynamic analogue: invoking a closure or
// function value passed to a higher-order operation (map, filter, ...).
func IncIDynamic() { Default.Add(IDynamic, 1) }

// AddIDynamic records n invokedynamic analogues.
func AddIDynamic(n int64) { Default.Add(IDynamic, n) }

// AddCacheMiss records n simulated cache misses (used by the RVM cache
// simulator and by the allocation-pressure proxy).
func AddCacheMiss(n int64) { Default.Add(CacheMiss, n) }

// IncDeadLetter records one dropped or dead-lettered message (a send to a
// stopped actor, a message drained from a stopped actor's mailbox, or a
// shed netstack request).
func IncDeadLetter() { Default.Add(DeadLetter, 1) }

// IncStmAbort records one STM transactional abort (conflict, failed lock
// acquisition, failed validation, or injected commit fault).
func IncStmAbort() { Default.Add(StmAbort, 1) }

// IncStmExtend records one successful STM timestamp extension.
func IncStmExtend() { Default.Add(StmExtend, 1) }

// IncRddRecompute records one RDD partition recompute (a failed partition
// attempt re-evaluated from its lineage).
func IncRddRecompute() { Default.Add(RddRecompute, 1) }

// IncRddSpec records one speculative RDD partition duplicate launched for
// a straggler.
func IncRddSpec() { Default.Add(RddSpec, 1) }
