// Package metrics implements the characterizing metrics of Table 2 of the
// Renaissance paper (Prokopec et al., PLDI 2019): dynamic usage counters for
// the basic concurrency primitives (synchronized sections, wait/notify,
// atomic operations, thread parking), the basic object-oriented primitives
// (object allocation, array allocation, dynamic dispatch), and the
// invokedynamic-style closure dispatch counter, together with CPU
// utilization, a cache-miss proxy, and reference-cycle normalization.
//
// On the JVM the paper collects these with DiSL bytecode instrumentation and
// hardware counters. Here every substrate package (actors, stm, forkjoin,
// rdd, ...) calls the Inc* functions at the corresponding primitive
// operation, which keeps the instrumentation at the same abstraction
// boundary with negligible perturbation (a single atomic add).
package metrics

import (
	"fmt"
	"sync/atomic"
)

// Metric identifies one of the characterizing metrics of Table 2.
type Metric int

// The metrics of Table 2, in the paper's order.
const (
	Synch     Metric = iota // synchronized methods and blocks executed
	Wait                    // Object.wait() analogues (guarded-block waits)
	Notify                  // Object.notify()/notifyAll() analogues
	Atomic                  // atomic memory operations (CAS, fetch-add, ...)
	Park                    // thread/goroutine park operations
	CPU                     // average CPU utilization (fraction of GOMAXPROCS)
	CacheMiss               // cache misses (simulated or allocation proxy)
	Object                  // objects allocated
	Array                   // arrays (slices) allocated
	Method                  // dynamic dispatch (virtual/interface calls)
	IDynamic                // invokedynamic analogues (closure dispatch)

	NumMetrics // number of metrics
)

var metricNames = [NumMetrics]string{
	"synch", "wait", "notify", "atomic", "park", "cpu",
	"cachemiss", "object", "array", "method", "idynamic",
}

// String returns the paper's short name for the metric.
func (m Metric) String() string {
	if m < 0 || m >= NumMetrics {
		return fmt.Sprintf("metric(%d)", int(m))
	}
	return metricNames[m]
}

// AllMetrics returns the metrics in Table 2 order.
func AllMetrics() []Metric {
	ms := make([]Metric, NumMetrics)
	for i := range ms {
		ms[i] = Metric(i)
	}
	return ms
}

// Counted reports whether the metric is a dynamic event counter (as opposed
// to the sampled CPU utilization, which is a ratio).
func (m Metric) Counted() bool { return m != CPU }

// A Recorder accumulates the event counters. The zero value is ready to use.
// All methods are safe for concurrent use.
type Recorder struct {
	counts [NumMetrics]atomic.Int64
}

// Default is the process-wide recorder used by the substrate packages.
var Default = &Recorder{}

// Add adds delta occurrences of metric m.
func (r *Recorder) Add(m Metric, delta int64) { r.counts[m].Add(delta) }

// Get returns the current count of metric m.
func (r *Recorder) Get(m Metric) int64 { return r.counts[m].Load() }

// Reset zeroes every counter.
func (r *Recorder) Reset() {
	for i := range r.counts {
		r.counts[i].Store(0)
	}
}

// Snapshot captures the current value of every counter.
func (r *Recorder) Snapshot() Snapshot {
	var s Snapshot
	for i := range r.counts {
		s.Counts[i] = r.counts[i].Load()
	}
	return s
}

// A Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	Counts [NumMetrics]int64
}

// Delta returns the per-metric difference s - earlier.
func (s Snapshot) Delta(earlier Snapshot) Snapshot {
	var d Snapshot
	for i := range s.Counts {
		d.Counts[i] = s.Counts[i] - earlier.Counts[i]
	}
	return d
}

// Get returns the snapshot's count for metric m.
func (s Snapshot) Get(m Metric) int64 { return s.Counts[m] }

// Convenience wrappers over the Default recorder. These are what the
// substrate packages call at their primitive operations.

// IncSynch records entry into a synchronized (mutex-protected) section.
func IncSynch() { Default.counts[Synch].Add(1) }

// IncWait records a guarded-block wait (condition-variable wait).
func IncWait() { Default.counts[Wait].Add(1) }

// IncNotify records a notify/notifyAll (condition-variable signal).
func IncNotify() { Default.counts[Notify].Add(1) }

// IncAtomic records one atomic memory operation (CAS, fetch-add, ...).
func IncAtomic() { Default.counts[Atomic].Add(1) }

// AddAtomic records n atomic memory operations.
func AddAtomic(n int64) { Default.counts[Atomic].Add(n) }

// IncPark records a goroutine park (blocking channel receive used as a
// scheduler park point, or semaphore-style blocking).
func IncPark() { Default.counts[Park].Add(1) }

// IncObject records one object allocation performed by a substrate.
func IncObject() { Default.counts[Object].Add(1) }

// AddObject records n object allocations.
func AddObject(n int64) { Default.counts[Object].Add(n) }

// IncArray records one array (slice) allocation performed by a substrate.
func IncArray() { Default.counts[Array].Add(1) }

// AddArray records n array allocations.
func AddArray(n int64) { Default.counts[Array].Add(n) }

// IncMethod records one dynamically dispatched call (virtual/interface).
func IncMethod() { Default.counts[Method].Add(1) }

// AddMethod records n dynamically dispatched calls.
func AddMethod(n int64) { Default.counts[Method].Add(n) }

// IncIDynamic records one invokedynamic analogue: invoking a closure or
// function value passed to a higher-order operation (map, filter, ...).
func IncIDynamic() { Default.counts[IDynamic].Add(1) }

// AddIDynamic records n invokedynamic analogues.
func AddIDynamic(n int64) { Default.counts[IDynamic].Add(n) }

// AddCacheMiss records n simulated cache misses (used by the RVM cache
// simulator and by the allocation-pressure proxy).
func AddCacheMiss(n int64) { Default.counts[CacheMiss].Add(n) }
