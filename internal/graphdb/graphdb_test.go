package graphdb

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// buildSocial creates a small social graph: users following users, users
// posting messages.
func buildSocial(t *testing.T) (*Graph, []NodeID, []NodeID) {
	t.Helper()
	g := New()
	tx := g.WriteTx()
	var users, posts []NodeID
	for i := 0; i < 5; i++ {
		id, err := tx.CreateNode("User", map[string]any{"name": fmt.Sprintf("u%d", i), "region": i % 2})
		if err != nil {
			t.Fatal(err)
		}
		users = append(users, id)
	}
	for i := 0; i < 3; i++ {
		id, err := tx.CreateNode("Post", map[string]any{"len": i * 10})
		if err != nil {
			t.Fatal(err)
		}
		posts = append(posts, id)
	}
	// u0 -> u1 -> u2 -> u3 -> u4 (FOLLOWS chain), u0 -> u2 as a shortcut.
	for i := 0; i < 4; i++ {
		if err := tx.Relate(users[i], users[i+1], "FOLLOWS", nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Relate(users[0], users[2], "FOLLOWS", nil); err != nil {
		t.Fatal(err)
	}
	// u0 posted all three posts.
	for _, p := range posts {
		if err := tx.Relate(users[0], p, "POSTED", nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return g, users, posts
}

func TestCreateAndQuery(t *testing.T) {
	g, users, posts := buildSocial(t)
	if g.NodeCount() != 8 {
		t.Errorf("NodeCount = %d, want 8", g.NodeCount())
	}
	if got := g.ByLabel("User"); len(got) != 5 {
		t.Errorf("Users = %v", got)
	}
	if got := g.ByLabel("Post"); len(got) != 3 {
		t.Errorf("Posts = %v", got)
	}
	n, ok := g.GetNode(users[0])
	if !ok || n.Label != "User" || n.Props["name"] != "u0" {
		t.Errorf("GetNode = %+v, %v", n, ok)
	}
	if _, ok := g.GetNode(9999); ok {
		t.Error("found nonexistent node")
	}
	_ = posts
}

func TestNeighborsAndDegree(t *testing.T) {
	g, users, _ := buildSocial(t)
	out := g.Neighbors(users[0], "FOLLOWS", Outgoing)
	if len(out) != 2 { // u1 and u2
		t.Errorf("u0 FOLLOWS out = %v", out)
	}
	in := g.Neighbors(users[2], "FOLLOWS", Incoming)
	if len(in) != 2 { // u1 and u0
		t.Errorf("u2 FOLLOWS in = %v", in)
	}
	both := g.Neighbors(users[2], "", Both)
	if len(both) != 3 {
		t.Errorf("u2 all both = %v", both)
	}
	if d := g.Degree(users[0], Outgoing); d != 5 { // 2 follows + 3 posted
		t.Errorf("u0 out-degree = %d", d)
	}
	if d := g.Degree(9999, Both); d != 0 {
		t.Errorf("missing node degree = %d", d)
	}
}

func TestMatch(t *testing.T) {
	g, _, _ := buildSocial(t)
	follows := g.Match("User", "FOLLOWS", "User")
	if len(follows) != 5 {
		t.Errorf("FOLLOWS matches = %d, want 5", len(follows))
	}
	posted := g.Match("User", "POSTED", "Post")
	if len(posted) != 3 {
		t.Errorf("POSTED matches = %d, want 3", len(posted))
	}
	// Wildcards.
	all := g.Match("", "", "")
	if len(all) != 8 {
		t.Errorf("all matches = %d, want 8", len(all))
	}
	if len(g.Match("User", "POSTED", "User")) != 0 {
		t.Error("type-mismatched match returned rows")
	}
}

func TestShortestPath(t *testing.T) {
	g, users, _ := buildSocial(t)
	if d := g.ShortestPath(users[0], users[4], "FOLLOWS"); d != 3 {
		t.Errorf("u0->u4 = %d, want 3 (via shortcut)", d)
	}
	if d := g.ShortestPath(users[0], users[0], "FOLLOWS"); d != 0 {
		t.Errorf("self path = %d", d)
	}
	if d := g.ShortestPath(users[4], users[0], "FOLLOWS"); d != -1 {
		t.Errorf("reverse path = %d, want -1 (directed)", d)
	}
}

func TestAggregateByProp(t *testing.T) {
	g, _, _ := buildSocial(t)
	byRegion := g.AggregateByProp("User", "region")
	if byRegion[0] != 3 || byRegion[1] != 2 {
		t.Errorf("byRegion = %v", byRegion)
	}
}

func TestTopDegree(t *testing.T) {
	g, users, _ := buildSocial(t)
	top := g.TopDegree("User", 2)
	if len(top) != 2 || top[0] != users[0] {
		t.Errorf("top = %v, want u0 first", top)
	}
	all := g.TopDegree("User", 100)
	if len(all) != 5 {
		t.Errorf("topDegree clamped = %d", len(all))
	}
}

func TestSetProp(t *testing.T) {
	g := New()
	tx := g.WriteTx()
	id, _ := tx.CreateNode("X", nil)
	if err := tx.SetProp(id, "k", 42); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	n, _ := g.GetNode(id)
	if n.Props["k"] != 42 {
		t.Errorf("prop = %v", n.Props)
	}
}

func TestRollback(t *testing.T) {
	g := New()
	tx := g.WriteTx()
	if _, err := tx.CreateNode("X", nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if g.NodeCount() != 0 {
		t.Errorf("rollback left %d nodes", g.NodeCount())
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Errorf("commit after rollback err = %v", err)
	}
}

func TestFailedCommitIsAtomic(t *testing.T) {
	g := New()
	tx := g.WriteTx()
	id, _ := tx.CreateNode("X", nil)
	if err := tx.Relate(id, 9999, "R", nil); err != nil {
		t.Fatal(err)
	}
	err := tx.Commit()
	if !errors.Is(err, ErrNodeMissing) {
		t.Fatalf("commit err = %v", err)
	}
	if g.NodeCount() != 0 {
		t.Errorf("failed commit applied %d nodes; not atomic", g.NodeCount())
	}
	if g.Commits != 0 {
		t.Errorf("Commits = %d", g.Commits)
	}
}

func TestTxDoneGuards(t *testing.T) {
	g := New()
	tx := g.WriteTx()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.CreateNode("X", nil); !errors.Is(err, ErrTxDone) {
		t.Errorf("CreateNode err = %v", err)
	}
	if err := tx.SetProp(1, "k", 1); !errors.Is(err, ErrTxDone) {
		t.Errorf("SetProp err = %v", err)
	}
	if err := tx.Relate(1, 2, "R", nil); !errors.Is(err, ErrTxDone) {
		t.Errorf("Relate err = %v", err)
	}
	if err := tx.Rollback(); !errors.Is(err, ErrTxDone) {
		t.Errorf("Rollback err = %v", err)
	}
}

func TestStagedNodeRelations(t *testing.T) {
	// Relating two nodes created in the same transaction must work.
	g := New()
	tx := g.WriteTx()
	a, _ := tx.CreateNode("A", nil)
	b, _ := tx.CreateNode("B", nil)
	if err := tx.Relate(a, b, "R", nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := g.Neighbors(a, "R", Outgoing); len(got) != 1 || got[0] != b {
		t.Errorf("neighbors = %v", got)
	}
}

func TestConcurrentWriters(t *testing.T) {
	g := New()
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tx := g.WriteTx()
				a, _ := tx.CreateNode("N", map[string]any{"w": w})
				b, _ := tx.CreateNode("N", nil)
				_ = tx.Relate(a, b, "LINK", nil)
				if err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if g.NodeCount() != writers*perWriter*2 {
		t.Errorf("NodeCount = %d, want %d", g.NodeCount(), writers*perWriter*2)
	}
	if g.Commits != writers*perWriter {
		t.Errorf("Commits = %d", g.Commits)
	}
	if rows := g.Match("N", "LINK", "N"); len(rows) != writers*perWriter {
		t.Errorf("LINK rows = %d", len(rows))
	}
}

func TestConcurrentReadersDuringWrites(t *testing.T) {
	g, users, _ := buildSocial(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tx := g.WriteTx()
			id, _ := tx.CreateNode("Extra", nil)
			_ = tx.Relate(users[0], id, "POSTED", nil)
			_ = tx.Commit()
		}
	}()
	for i := 0; i < 200; i++ {
		// Readers should always see a consistent FOLLOWS subgraph.
		if got := g.Match("User", "FOLLOWS", "User"); len(got) != 5 {
			t.Fatalf("FOLLOWS rows = %d mid-write", len(got))
		}
	}
	close(stop)
	wg.Wait()
}
