// Package graphdb implements a small in-memory property-graph database
// with transactions and a traversal/query layer, in the style of an
// embedded Neo4J — the substrate of the neo4j-analytics benchmark
// (Table 1: "query processing, transactions"). Nodes carry labels and
// properties; relationships are typed and directed. Write transactions
// buffer their mutations and apply them atomically at commit under the
// store lock; read transactions see a consistent snapshot for their whole
// duration.
package graphdb

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"renaissance/internal/metrics"
)

// Errors returned by transaction operations.
var (
	ErrTxDone      = errors.New("graphdb: transaction already finished")
	ErrNodeMissing = errors.New("graphdb: node does not exist")
)

// NodeID identifies a node.
type NodeID int64

// Node is a labelled property vertex. Returned nodes are snapshots; mutate
// through a transaction.
type Node struct {
	ID     NodeID
	Label  string
	Props  map[string]any
	outRel []*rel
	inRel  []*rel
}

type rel struct {
	Type     string
	From, To NodeID
	Props    map[string]any
}

// Graph is the store.
type Graph struct {
	mu      sync.RWMutex
	nodes   map[NodeID]*Node
	byLabel map[string][]NodeID
	nextID  NodeID
	// Commits counts committed write transactions.
	Commits int64
}

// New creates an empty graph.
func New() *Graph {
	metrics.IncObject()
	return &Graph{
		nodes:   make(map[NodeID]*Node),
		byLabel: make(map[string][]NodeID),
	}
}

// WriteTx starts a write transaction. Mutations are buffered and applied
// atomically on Commit; Rollback discards them.
func (g *Graph) WriteTx() *Tx {
	metrics.IncObject()
	return &Tx{g: g, write: true}
}

// Tx is a transaction handle. Operations are validated and applied
// together at Commit under the store lock, so a transaction either takes
// full effect or none.
type Tx struct {
	g      *Graph
	write  bool
	done   bool
	ops    []txOp
	staged map[NodeID]bool // nodes this tx will create
}

type txOp struct {
	validate func(*Graph) error
	apply    func(*Graph)
}

// exists reports whether the node is live in the graph or staged by this
// transaction (valid to reference from later operations in the same tx).
func (t *Tx) exists(g *Graph, id NodeID) bool {
	if t.staged[id] {
		return true
	}
	_, ok := g.nodes[id]
	return ok
}

// CreateNode stages a node creation and returns its future ID.
//
// IDs are assigned eagerly from the graph's counter so that staged
// relationships can reference staged nodes.
func (t *Tx) CreateNode(label string, props map[string]any) (NodeID, error) {
	if t.done {
		return 0, ErrTxDone
	}
	metrics.IncSynch()
	t.g.mu.Lock()
	t.g.nextID++
	id := t.g.nextID
	t.g.mu.Unlock()
	if t.staged == nil {
		t.staged = make(map[NodeID]bool)
	}
	t.staged[id] = true
	t.ops = append(t.ops, txOp{apply: func(g *Graph) {
		metrics.IncObject()
		g.nodes[id] = &Node{ID: id, Label: label, Props: cloneProps(props)}
		g.byLabel[label] = append(g.byLabel[label], id)
	}})
	return id, nil
}

// SetProp stages a property update on an existing or staged node.
func (t *Tx) SetProp(id NodeID, key string, value any) error {
	if t.done {
		return ErrTxDone
	}
	t.ops = append(t.ops, txOp{
		validate: func(g *Graph) error {
			if !t.exists(g, id) {
				return fmt.Errorf("%w: %d", ErrNodeMissing, id)
			}
			return nil
		},
		apply: func(g *Graph) {
			n := g.nodes[id]
			if n.Props == nil {
				n.Props = make(map[string]any)
			}
			n.Props[key] = value
		},
	})
	return nil
}

// Relate stages a directed relationship from -> to of the given type.
func (t *Tx) Relate(from, to NodeID, relType string, props map[string]any) error {
	if t.done {
		return ErrTxDone
	}
	t.ops = append(t.ops, txOp{
		validate: func(g *Graph) error {
			if !t.exists(g, from) {
				return fmt.Errorf("%w: %d", ErrNodeMissing, from)
			}
			if !t.exists(g, to) {
				return fmt.Errorf("%w: %d", ErrNodeMissing, to)
			}
			return nil
		},
		apply: func(g *Graph) {
			fn, tn := g.nodes[from], g.nodes[to]
			metrics.IncObject()
			r := &rel{Type: relType, From: from, To: to, Props: cloneProps(props)}
			fn.outRel = append(fn.outRel, r)
			tn.inRel = append(tn.inRel, r)
		},
	})
	return nil
}

// Commit applies the buffered operations atomically. If any operation
// fails, the whole transaction is rolled back and the error returned.
func (t *Tx) Commit() error {
	if t.done {
		return ErrTxDone
	}
	t.done = true
	g := t.g
	metrics.IncSynch()
	g.mu.Lock()
	defer g.mu.Unlock()

	// Validate every operation before applying any, so a failing
	// transaction leaves the graph untouched.
	for _, op := range t.ops {
		if op.validate == nil {
			continue
		}
		if err := op.validate(g); err != nil {
			return err
		}
	}
	for _, op := range t.ops {
		op.apply(g)
	}
	g.Commits++
	return nil
}

// Rollback discards the staged operations.
func (t *Tx) Rollback() error {
	if t.done {
		return ErrTxDone
	}
	t.done = true
	t.ops = nil
	return nil
}

func cloneProps(props map[string]any) map[string]any {
	if props == nil {
		return nil
	}
	metrics.IncObject()
	out := make(map[string]any, len(props))
	for k, v := range props {
		out[k] = v
	}
	return out
}

// --- Read API (consistent under the store's read lock) ---

// NodeCount returns the number of nodes.
func (g *Graph) NodeCount() int {
	metrics.IncSynch()
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.nodes)
}

// GetNode returns a snapshot of the node.
func (g *Graph) GetNode(id NodeID) (Node, bool) {
	metrics.IncSynch()
	g.mu.RLock()
	defer g.mu.RUnlock()
	n, ok := g.nodes[id]
	if !ok {
		return Node{}, false
	}
	return Node{ID: n.ID, Label: n.Label, Props: cloneProps(n.Props)}, true
}

// ByLabel returns the IDs of all nodes with the label, ascending.
func (g *Graph) ByLabel(label string) []NodeID {
	metrics.IncSynch()
	g.mu.RLock()
	defer g.mu.RUnlock()
	metrics.IncArray()
	out := append([]NodeID(nil), g.byLabel[label]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Direction selects traversal orientation.
type Direction int

// Traversal directions.
const (
	Outgoing Direction = iota
	Incoming
	Both
)

// Neighbors returns the IDs reachable over one relationship of the given
// type (empty type matches all) in the given direction.
func (g *Graph) Neighbors(id NodeID, relType string, dir Direction) []NodeID {
	metrics.IncSynch()
	g.mu.RLock()
	defer g.mu.RUnlock()
	n, ok := g.nodes[id]
	if !ok {
		return nil
	}
	metrics.IncArray()
	var out []NodeID
	if dir == Outgoing || dir == Both {
		for _, r := range n.outRel {
			if relType == "" || r.Type == relType {
				out = append(out, r.To)
			}
		}
	}
	if dir == Incoming || dir == Both {
		for _, r := range n.inRel {
			if relType == "" || r.Type == relType {
				out = append(out, r.From)
			}
		}
	}
	return out
}

// Degree returns the number of relationships of the node in the direction.
func (g *Graph) Degree(id NodeID, dir Direction) int {
	metrics.IncSynch()
	g.mu.RLock()
	defer g.mu.RUnlock()
	n, ok := g.nodes[id]
	if !ok {
		return 0
	}
	switch dir {
	case Outgoing:
		return len(n.outRel)
	case Incoming:
		return len(n.inRel)
	default:
		return len(n.outRel) + len(n.inRel)
	}
}

// MatchRow is one result of a pattern match (a)-[r]->(b).
type MatchRow struct {
	From, To NodeID
	RelType  string
}

// Match returns every (from:fromLabel)-[:relType]->(to:toLabel) triple;
// empty strings are wildcards.
func (g *Graph) Match(fromLabel, relType, toLabel string) []MatchRow {
	metrics.IncSynch()
	g.mu.RLock()
	defer g.mu.RUnlock()
	metrics.IncArray()
	var out []MatchRow
	for _, n := range g.nodes {
		if fromLabel != "" && n.Label != fromLabel {
			continue
		}
		for _, r := range n.outRel {
			if relType != "" && r.Type != relType {
				continue
			}
			if toLabel != "" {
				if tn, ok := g.nodes[r.To]; !ok || tn.Label != toLabel {
					continue
				}
			}
			out = append(out, MatchRow{From: r.From, To: r.To, RelType: r.Type})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// ShortestPath returns the hop count of the shortest directed path from
// src to dst following relType edges (empty = any), or -1 if unreachable.
func (g *Graph) ShortestPath(src, dst NodeID, relType string) int {
	if src == dst {
		return 0
	}
	metrics.IncSynch()
	g.mu.RLock()
	defer g.mu.RUnlock()
	metrics.IncObject()
	visited := map[NodeID]bool{src: true}
	frontier := []NodeID{src}
	depth := 0
	for len(frontier) > 0 {
		depth++
		var next []NodeID
		for _, id := range frontier {
			n, ok := g.nodes[id]
			if !ok {
				continue
			}
			for _, r := range n.outRel {
				if relType != "" && r.Type != relType {
					continue
				}
				if r.To == dst {
					return depth
				}
				if !visited[r.To] {
					visited[r.To] = true
					next = append(next, r.To)
				}
			}
		}
		frontier = next
	}
	return -1
}

// AggregateByProp groups nodes of a label by a property value and counts
// the group sizes — the analytical-query shape of neo4j-analytics.
func (g *Graph) AggregateByProp(label, prop string) map[any]int {
	metrics.IncSynch()
	g.mu.RLock()
	defer g.mu.RUnlock()
	metrics.IncObject()
	out := make(map[any]int)
	for _, id := range g.byLabel[label] {
		n := g.nodes[id]
		if v, ok := n.Props[prop]; ok {
			out[v]++
		}
	}
	return out
}

// TopDegree returns the k nodes of the label with the highest total
// degree, descending (ties by ascending ID).
func (g *Graph) TopDegree(label string, k int) []NodeID {
	metrics.IncSynch()
	g.mu.RLock()
	ids := append([]NodeID(nil), g.byLabel[label]...)
	type scored struct {
		id  NodeID
		deg int
	}
	metrics.IncArray()
	all := make([]scored, len(ids))
	for i, id := range ids {
		n := g.nodes[id]
		all[i] = scored{id, len(n.outRel) + len(n.inRel)}
	}
	g.mu.RUnlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].deg != all[j].deg {
			return all[i].deg > all[j].deg
		}
		return all[i].id < all[j].id
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]NodeID, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].id
	}
	return out
}
