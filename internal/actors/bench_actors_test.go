package actors

// Comparative benchmarks: the lock-free runtime (MPSC mailboxes, per-worker
// Chase–Lev run queues, sharded registry, striped quiescence) against the
// bench-local seed copy (mutex mailbox, one global run-queue channel, one
// registry mutex, one global in-flight counter). Run with
//
//	make bench    # -cpu 1,2,4,8, teed to BENCH_actors.txt
//
// Shapes mirror the paper's actor workloads: ping-pong latency (reactors),
// fan-in throughput (reactors' counting protocol), and an akka-uct-style
// spawn storm. One benchmark op is one message, one spawn+message, or one
// ask round-trip respectively.

import (
	"sync/atomic"
	"testing"
)

// --- ping-pong: two actors bouncing a counter; one op = one message hop ---

func BenchmarkActorPingPongMPSC(b *testing.B) {
	sys := NewSystem(2)
	defer sys.Shutdown()
	done := make(chan struct{})
	n := b.N
	pong := sys.Spawn("pong", ReceiverFunc(func(ctx *Context, msg any) {
		ctx.Reply(msg)
	}))
	var ping *Ref
	ping = sys.Spawn("ping", ReceiverFunc(func(ctx *Context, msg any) {
		k := msg.(int)
		if k >= n {
			close(done)
			return
		}
		ctx.Send(pong, k+1)
	}))
	b.ResetTimer()
	ping.Tell(0)
	<-done
}

func BenchmarkActorPingPongMutex(b *testing.B) {
	sys := newOldSystem(2)
	defer sys.Shutdown()
	done := make(chan struct{})
	n := b.N
	pong := sys.Spawn("pong", func(ctx *oldContext, msg any) {
		ctx.Reply(msg)
	})
	var ping *oldRef
	ping = sys.Spawn("ping", func(ctx *oldContext, msg any) {
		k := msg.(int)
		if k >= n {
			close(done)
			return
		}
		pong.TellFrom(k+1, ping)
	})
	b.ResetTimer()
	ping.Tell(0)
	<-done
}

// --- fan-in: 4 producer goroutines flooding one counter actor ---

const fanInProducers = 4

func BenchmarkActorFanInMPSC(b *testing.B) {
	sys := NewSystem(4)
	defer sys.Shutdown()
	done := make(chan struct{})
	var seen atomic.Int64
	n := int64(b.N)
	counter := sys.Spawn("counter", ReceiverFunc(func(ctx *Context, msg any) {
		if seen.Add(1) == n {
			close(done)
		}
	}))
	b.ResetTimer()
	for p := 0; p < fanInProducers; p++ {
		share := b.N / fanInProducers
		if p == 0 {
			share += b.N % fanInProducers
		}
		go func(share int) {
			for i := 0; i < share; i++ {
				counter.Tell(i)
			}
		}(share)
	}
	if b.N > 0 {
		<-done
	}
}

func BenchmarkActorFanInMutex(b *testing.B) {
	sys := newOldSystem(4)
	defer sys.Shutdown()
	done := make(chan struct{})
	var seen atomic.Int64
	n := int64(b.N)
	counter := sys.Spawn("counter", func(ctx *oldContext, msg any) {
		if seen.Add(1) == n {
			close(done)
		}
	})
	b.ResetTimer()
	for p := 0; p < fanInProducers; p++ {
		share := b.N / fanInProducers
		if p == 0 {
			share += b.N % fanInProducers
		}
		go func(share int) {
			for i := 0; i < share; i++ {
				counter.Tell(i)
			}
		}(share)
	}
	if b.N > 0 {
		<-done
	}
}

// --- spawn storm: akka-uct's shape — spawn a node under a contended name,
// visit it once, stop it (registry insert + delete per op) ---

func BenchmarkActorSpawnStormMPSC(b *testing.B) {
	sys := NewSystem(4)
	defer sys.Shutdown()
	behavior := ReceiverFunc(func(ctx *Context, msg any) {
		ctx.Self().Stop()
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Spawn("uct", behavior).Tell(i)
	}
	sys.AwaitQuiescence()
}

func BenchmarkActorSpawnStormMutex(b *testing.B) {
	sys := newOldSystem(4)
	defer sys.Shutdown()
	behavior := func(ctx *oldContext, msg any) {
		ctx.self.Stop()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Spawn("uct", behavior).Tell(i)
	}
	sys.AwaitQuiescence()
}

// --- ask: one op = one ask round-trip. The MPSC path must be
// allocation-flat (ephemeral unregistered reply ref, no name churn) ---

func BenchmarkActorAskMPSC(b *testing.B) {
	sys := NewSystem(2)
	defer sys.Shutdown()
	echo := sys.Spawn("echo", ReceiverFunc(func(ctx *Context, msg any) {
		ctx.Reply(msg)
	}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		<-echo.Ask(i)
	}
}

func BenchmarkActorAskMutex(b *testing.B) {
	sys := newOldSystem(2)
	defer sys.Shutdown()
	echo := sys.Spawn("echo", func(ctx *oldContext, msg any) {
		ctx.Reply(msg)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		<-echo.Ask(i)
	}
}
