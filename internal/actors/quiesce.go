// Quiescence detection over a striped in-flight counter.
//
// The previous runtime kept one global atomic.Int64: every send and every
// delivery in the whole system hammered the same cache line, which is the
// synchronization-density hot spot the actor benchmarks exist to measure.
// The counter is now striped into versioned per-worker cells:
//
//   - A send increments the sending worker's pinned cell (or a
//     goroutine-hashed cell off the scheduler); a delivery decrements the
//     delivering worker's pinned cell. Individual cells go negative —
//     only the sum is meaningful.
//   - Each cell packs a 32-bit two's-complement net count (low half) and
//     an update version (high half) into one uint64, so an update is still
//     a single fetch-add: Add(1<<32 | uint32(delta)). A low-half carry may
//     advance the version by 2 instead of 1; all that matters is that it
//     never stays unchanged across an update.
//
// A naive sum over the cells is not a consistent snapshot (counts migrate
// between cells mid-scan and can transiently sum to zero while messages are
// in flight), so AwaitQuiescence uses the classic double-collect: read all
// cells, and accept a zero sum only if a second read finds every cell's
// version unchanged — in that window no update occurred anywhere, so the
// first read was a true snapshot. Termination therefore cannot be reported
// early; the stress tests race AwaitQuiescence against the final deliveries
// to hold this.
//
// Liveness: a failed scan parks the waiter on quiesceCh. Workers signal the
// channel exactly when they run out of visible work (sched.go), which is
// the only moment the sum can have newly reached zero; a waiter that wakes
// and still finds activity re-parks. Waiters chain the token on exit so
// every concurrent AwaitQuiescence returns.
package actors

import (
	"sync/atomic"
	"unsafe"

	"renaissance/internal/metrics"
)

// maxCells bounds the stripe count (the full array is embedded in System).
const maxCells = 64

type quiesceCell struct {
	v atomic.Uint64
	_ [56]byte
}

// quiesceCellCount picks a power-of-two stripe count of at least 8 and at
// least the worker count, capped at maxCells.
func quiesceCellCount(workers int) int {
	n := workers
	if n < 8 {
		n = 8
	}
	if n > maxCells {
		n = maxCells
	}
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// packDelta encodes delta for a single fetch-add on a versioned cell.
func packDelta(delta int32) uint64 {
	return (1 << 32) | uint64(uint32(delta))
}

// cellValue extracts the cell's net count.
func cellValue(v uint64) int64 { return int64(int32(uint32(v))) }

// hashedCell spreads off-scheduler senders across cells by goroutine stack
// address (distinct goroutines occupy distinct stacks; any cell is correct,
// the hash only reduces contention).
func hashedCell(mask int) int {
	var probe byte
	h := uint64(uintptr(unsafe.Pointer(&probe)))
	h ^= h >> 17
	h *= 0x9E3779B97F4A7C15
	return int((h >> 32) & uint64(mask))
}

func (s *System) incInFlightAt(cell int) {
	s.cells[cell].v.Add(packDelta(1))
}

// messageDone accounts one delivered (or dead-lettered-after-queueing)
// message on the worker's pinned cell.
func (s *System) messageDone(w *worker) {
	w.local.IncAtomic()
	s.cells[w.cell].v.Add(packDelta(-1))
}

// quiescent performs a bounded number of double-collect scans. It returns
// true only on a verified consistent zero; false means "activity observed",
// and the caller parks for the next worker-idle signal.
func (s *System) quiescent() bool {
	var vers [maxCells]uint64
	for attempt := 0; attempt < 4; attempt++ {
		var sum int64
		for i := 0; i < s.numCells; i++ {
			v := s.cells[i].v.Load()
			vers[i] = v
			sum += cellValue(v)
		}
		if sum != 0 {
			return false
		}
		stable := true
		for i := 0; i < s.numCells; i++ {
			if s.cells[i].v.Load() != vers[i] {
				stable = false
				break
			}
		}
		if stable {
			return true
		}
	}
	return false
}

// AwaitQuiescence blocks until no messages are in flight. It is the
// termination-detection mechanism used by tree-computation workloads such
// as akka-uct. Quiescence is momentary: new sends may start the instant it
// returns. It is meaningful only while the system is running; after
// Shutdown it returns immediately.
func (s *System) AwaitQuiescence() {
	metrics.IncAtomic()
	if s.quiescent() {
		return
	}
	s.waiters.Add(1)
	for {
		// Re-scan after registering: the final messageDone either sees
		// our registration and leaves a token, or its decrement is
		// ordered before this scan.
		if s.quiescent() {
			break
		}
		metrics.IncPark()
		<-s.quiesceCh
	}
	s.waiters.Add(-1)
	// Chain the wakeup so no sibling waiter sleeps through the token we
	// may have consumed.
	if s.waiters.Load() > 0 {
		select {
		case s.quiesceCh <- struct{}{}:
		default:
		}
	}
}
