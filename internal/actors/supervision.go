// Supervision: fault domains for the actor runtime, in the style of Akka's
// supervision trees. A panic escaping Receive is recovered by the
// delivering worker (a misbehaving actor can never take down a scheduler
// worker) and routed to the failing actor's Strategy, which picks one of
// four directives: Resume (keep state, next message), Restart (swap in a
// fresh behavior after an exponential backoff, mailbox preserved), Stop
// (terminate; queued and future messages become dead letters), or Escalate
// (raise the failure to the supervisor).
//
// Two properties keep the failure path race-free without any new locks:
//
//   - Every decision runs under the failing actor's own scheduling slot.
//     A backoff restart keeps the slot (state stays scheduled, so
//     producers cannot double-enqueue a suspended actor) and a timer
//     re-injects the actor when the backoff elapses; its mailbox — and the
//     in-flight accounting of the messages in it — is untouched.
//   - Escalation is asynchronous: the child stops and sends an internal
//     `escalated` system message, which the supervisor's slot intercepts
//     and feeds to the supervisor's *own* strategy, as if the supervisor
//     itself had failed. This deliberately diverges from Akka (where the
//     parent's strategy decides the child's fate synchronously): decisions
//     here never execute on another actor's worker, so supervisor state is
//     only ever touched under the supervisor's slot. A failure that
//     escalates past the top of a tree is a root failure: counted on the
//     System and reported to the root handler.
package actors

import (
	"time"

	"renaissance/internal/chaos"
	"renaissance/internal/metrics"
)

// Directive is a supervision decision for a failed actor.
type Directive int32

const (
	// Resume keeps the actor's state and mailbox and continues with the
	// next message.
	Resume Directive = iota
	// Restart swaps in a fresh behavior (via the spawn Factory, when one
	// was given) after an exponential backoff; the mailbox is preserved.
	Restart
	// Stop terminates the actor: the PostStop hook runs, the name is
	// deregistered, and queued plus future messages become dead letters.
	Stop
	// Escalate stops the actor and raises the failure to its supervisor;
	// with no supervisor it is a root failure.
	Escalate
)

// String names the directive for logs and tests.
func (d Directive) String() string {
	switch d {
	case Resume:
		return "resume"
	case Restart:
		return "restart"
	case Stop:
		return "stop"
	case Escalate:
		return "escalate"
	}
	return "directive(?)"
}

// Strategy decides the fate of a failing actor. Decide receives the
// recovered panic value and the number of consecutive restarts already
// performed (reset by every clean delivery).
type Strategy interface {
	Decide(err any, restarts int) Directive
}

// StrategyFunc adapts a function to the Strategy interface.
type StrategyFunc func(err any, restarts int) Directive

// Decide calls the function.
func (f StrategyFunc) Decide(err any, restarts int) Directive { return f(err, restarts) }

// OneForOne restarts the failing actor up to MaxRestarts consecutive
// times, then applies Overflow. Siblings are unaffected, as in Akka's
// one-for-one supervisor.
type OneForOne struct {
	// MaxRestarts bounds consecutive restarts; negative means unlimited.
	MaxRestarts int
	// Overflow is the directive applied once the ladder is exhausted.
	Overflow Directive
}

// Decide implements Strategy.
func (s OneForOne) Decide(_ any, restarts int) Directive {
	if s.MaxRestarts >= 0 && restarts >= s.MaxRestarts {
		return s.Overflow
	}
	return Restart
}

var (
	// DefaultStrategy governs actors spawned without SpawnOpts: a bounded
	// restart ladder degrading to Stop, so an unsupervised failing actor
	// neither crashes the process nor restarts forever.
	DefaultStrategy Strategy = OneForOne{MaxRestarts: 5, Overflow: Stop}
	// AlwaysStop stops on the first failure.
	AlwaysStop Strategy = StrategyFunc(func(any, int) Directive { return Stop })
	// AlwaysEscalate raises every failure to the supervisor.
	AlwaysEscalate Strategy = StrategyFunc(func(any, int) Directive { return Escalate })
)

const (
	// DefaultBackoff is the base restart delay, doubled per consecutive
	// restart.
	DefaultBackoff = time.Millisecond
	// maxBackoff caps the exponential ladder so that a chaos-injected
	// failure storm delays quiescence by a bounded amount.
	maxBackoff = 250 * time.Millisecond
)

// SpawnOpts configures an actor's fault domain at spawn time.
type SpawnOpts struct {
	// Supervisor receives this actor's escalated failures; nil makes the
	// actor a supervision-tree root.
	Supervisor *Ref
	// Strategy decides failure directives; nil means DefaultStrategy.
	Strategy Strategy
	// Factory recreates the behavior on Restart. Nil reuses the existing
	// Receiver value, which is only sound for stateless behaviors.
	Factory func() Receiver
	// Backoff overrides the base restart delay; 0 means DefaultBackoff.
	Backoff time.Duration
}

// supCell is the per-actor fault-domain configuration. It is immutable
// after spawn, so reads take no locks; plain actors carry none (nil) and
// fall back to the package defaults.
type supCell struct {
	supervisor *Ref
	strategy   Strategy
	factory    func() Receiver
	backoff    time.Duration
}

// PreRestarter is implemented by behaviors that want a hook before being
// replaced on Restart (flush partial state, log the failure). It runs
// under the actor's slot; a panic inside the hook is swallowed.
type PreRestarter interface{ PreRestart(err any) }

// PostStopper is implemented by behaviors that want a cleanup hook when
// the actor stops, whichever path stopped it. Supervision-initiated stops
// run it under the actor's slot; an external Ref.Stop runs it on the
// calling goroutine. A panic inside the hook is swallowed.
type PostStopper interface{ PostStop() }

// RootHandler observes failures that escalate past the top of a
// supervision tree. The failing actor is already stopped when it runs.
type RootHandler func(failed *Ref, err any)

// DeadLetter wraps an undeliverable message routed to the dead-letter
// sink: the intended target, the original message, and its sender.
type DeadLetter struct {
	To     *Ref
	Msg    any
	Sender *Ref
}

// escalated is the internal system message carrying a child failure to its
// supervisor. The runtime intercepts it in processBatch — it is never
// delivered to Receive — and applies the supervisor's own strategy under
// the supervisor's scheduling slot.
type escalated struct {
	child *Ref
	err   any
}

// runHook isolates a user lifecycle hook: a panicking hook must not
// re-enter the failure machinery it is called from.
func runHook(f func()) {
	defer func() { _ = recover() }()
	f()
}

func (r *Ref) behavior() Receiver { return *r.recv.Load() }

func (r *Ref) setBehavior(recv Receiver) { r.recv.Store(&recv) }

func (r *Ref) strategyFor() Strategy {
	if r.sup != nil && r.sup.strategy != nil {
		return r.sup.strategy
	}
	return DefaultStrategy
}

func (r *Ref) baseBackoff() time.Duration {
	if r.sup != nil && r.sup.backoff > 0 {
		return r.sup.backoff
	}
	return DefaultBackoff
}

// Supervisor returns the actor's supervisor, or nil for a tree root.
func (r *Ref) Supervisor() *Ref {
	if r.sup != nil {
		return r.sup.supervisor
	}
	return nil
}

// deliver dispatches one message into the behavior under the actor panic
// guard. It reports the recovered panic value, if any; a panicking Receive
// can therefore never unwind a scheduler worker.
func (r *Ref) deliver(w *worker, env envelope) (failure any, failed bool) {
	defer func() {
		if p := recover(); p != nil {
			failure, failed = p, true
		}
	}()
	w.ctx.self = r
	w.ctx.sender = env.sender
	w.local.IncMethod() // dynamic dispatch into the behavior
	if chaos.Maybe("actors.deliver") {
		panic(&chaos.InjectedError{Point: "actors.deliver"})
	}
	r.behavior().Receive(&w.ctx, env.msg)
	return nil, false
}

// fail applies the supervision decision for a failure observed under this
// actor's scheduling slot. It returns true when the slot has been handed
// off to the backoff timer (a suspended restart): the caller must return
// immediately without releasing or requeueing the slot.
func (r *Ref) fail(w *worker, err any) bool {
	switch r.strategyFor().Decide(err, int(r.restarts)) {
	case Resume:
		return false
	case Restart:
		r.restart(w, err)
		return true
	case Stop:
		r.Stop()
		return false
	default: // Escalate
		r.escalate(w, err)
		return false
	}
}

// restart swaps in a fresh behavior and suspends the actor for an
// exponential backoff. The scheduling slot stays held (state remains
// scheduled) for the whole suspension — producers keep enqueueing into the
// preserved mailbox without double-scheduling — and the timer re-injects
// the actor when the backoff elapses.
func (r *Ref) restart(w *worker, err any) {
	r.restarts++
	if h, ok := r.behavior().(PreRestarter); ok {
		runHook(func() { h.PreRestart(err) })
	}
	if r.sup != nil && r.sup.factory != nil {
		w.local.IncObject() // the replacement behavior
		r.setBehavior(r.sup.factory())
	}
	d := r.baseBackoff()
	for i := int32(1); i < r.restarts && d < maxBackoff; i++ {
		d <<= 1
	}
	if d > maxBackoff {
		d = maxBackoff
	}
	time.AfterFunc(d, func() {
		// The actor still holds its slot; hand it to whichever worker
		// polls the inject queue next. After Shutdown this re-injects into
		// a dead scheduler, which is harmless: quiescence cannot have been
		// reached with accounted messages still queued here.
		r.sys.inject.Push(r)
		r.sys.signal()
	})
}

// escalate stops the failing actor and raises the failure to its
// supervisor as an internal system message (see the package comment for
// why this is asynchronous). Without a live supervisor the failure has
// reached the root of the tree.
func (r *Ref) escalate(w *worker, err any) {
	sup := r.Supervisor()
	r.Stop()
	if sup == nil || sup.stopped.Load() {
		r.sys.rootFailure(r, err)
		return
	}
	sup.enqueue(escalated{child: r, err: err}, r, w)
}

func (s *System) rootFailure(failed *Ref, err any) {
	s.rootFails.Add(1)
	if h := s.rootHandler.Load(); h != nil {
		runHook(func() { (*h)(failed, err) })
	}
}

// SetRootHandler installs a callback observing failures that escalate past
// the top of a supervision tree.
func (s *System) SetRootHandler(h RootHandler) {
	if h == nil {
		s.rootHandler.Store(nil)
		return
	}
	s.rootHandler.Store(&h)
}

// RootFailures returns the number of failures that escalated past the top
// of a supervision tree.
func (s *System) RootFailures() int64 { return s.rootFails.Load() }

// SetDeadLetterSink routes every dead letter — a message sent to a stopped
// actor, or drained from a stopped actor's mailbox — to ref, wrapped in a
// DeadLetter. Dead letters addressed to the sink itself, and DeadLetter
// wrappers that become dead in turn, are counted but not re-routed, so the
// sink cannot recurse.
func (s *System) SetDeadLetterSink(ref *Ref) { s.deadSink.Store(ref) }

// DeadLetterCount returns the number of messages dead-lettered so far.
func (s *System) DeadLetterCount() int64 { return s.deadCount.Load() }

// deadLetter accounts one undeliverable message (the fault-path metric
// DeadLetter plus the system counter) and forwards it to the sink when one
// is installed.
func (s *System) deadLetter(w *worker, to *Ref, msg any, sender *Ref) {
	s.deadCount.Add(1)
	if w != nil {
		w.local.IncDeadLetter()
	} else {
		metrics.IncDeadLetter()
	}
	sink := s.deadSink.Load()
	if sink == nil || sink == to || sink.stopped.Load() || s.stopped.Load() {
		return
	}
	switch msg.(type) {
	case DeadLetter, escalated:
		return // counted only: no re-wrapping, no recursion
	}
	sink.enqueue(DeadLetter{To: to, Msg: msg, Sender: sender}, sender, w)
}
