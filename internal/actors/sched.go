// Scheduler workers. Each worker owns a Chase–Lev deque of runnable actors
// (mailboxes whose idle→scheduled CAS it or a peer won). The search order is
// the classic work-stealing discipline: own deque (LIFO, locality), then a
// batch from the global inject queue, then stealing FIFO from a random
// victim. A worker that finds nothing parks on the wakeup channel; every
// enqueue signals at most one parked worker, so an idle system burns no CPU
// (the previous runtime's single global channel made every send a
// futex-guarded handoff instead).
package actors

import (
	"renaissance/internal/forkjoin"
	"renaissance/internal/metrics"
)

type worker struct {
	sys  *System
	id   int
	cell int // pinned in-flight stripe, see quiesce.go
	dq   forkjoin.Deque[Ref]
	rng  uint64
	// local is the worker's pinned metrics shard: per-message accounting
	// through it is one uncontended atomic, not a Default-recorder hash.
	local metrics.Local
	ctx   Context // reused across deliveries; valid only inside Receive
}

// injectBatch bounds how many runnable actors one worker transfers from the
// inject queue to its own deque per poll: enough to amortize the consumer
// latch, few enough that peers find surplus to steal.
const injectBatch = 16

func (w *worker) run() {
	s := w.sys
	defer s.wg.Done()
	for {
		if r := w.findRunnable(); r != nil {
			r.processBatch(w)
			continue
		}
		// Nothing visible anywhere. If a quiescence waiter is parked, this
		// is exactly the moment the in-flight sum may have reached zero —
		// signal it before parking (see quiesce.go for the protocol).
		if s.waiters.Load() > 0 {
			select {
			case s.quiesceCh <- struct{}{}:
				w.local.IncNotify()
			default:
			}
		}
		select {
		case <-s.done:
			return // shut down and fully drained
		default:
		}
		// Park protocol: advertise idleness, then re-verify emptiness.
		// A producer either sees idle > 0 and leaves a wake token, or
		// enqueued before our advertisement and the recheck finds it.
		s.idle.Add(1)
		if s.anyWork() {
			s.idle.Add(-1)
			continue
		}
		w.local.IncPark()
		select {
		case <-s.wake:
		case <-s.done:
		}
		s.idle.Add(-1)
	}
}

// findRunnable implements the three-level work search.
func (w *worker) findRunnable() *Ref {
	if r := w.dq.Pop(); r != nil {
		return r
	}
	if r := w.pollInject(); r != nil {
		return r
	}
	return w.steal()
}

// pollInject moves up to injectBatch runnable actors from the global inject
// queue into this worker's deque, returning the first. The queue is MPSC,
// so a single-consumer latch guards the drain; a worker that loses the
// latch moves on to stealing (the latch holder's surplus lands in a
// stealable deque within a few instructions).
func (s *System) pollInject(w *worker) *Ref {
	if s.inject.Empty() {
		return nil
	}
	if !s.latch.CompareAndSwap(false, true) {
		return nil
	}
	var first *Ref
	moved := 0
	for moved < injectBatch {
		r, ok := s.inject.Pop()
		if !ok {
			break // empty, or a producer is mid-link; don't spin latched
		}
		if first == nil {
			first = r
		} else {
			w.dq.Push(r)
		}
		moved++
	}
	s.latch.Store(false)
	if moved > 1 {
		s.signal() // surplus is stealable; wake a peer for it
	}
	return first
}

func (w *worker) pollInject() *Ref { return w.sys.pollInject(w) }

// steal scans the other workers' deques from a random start, taking the
// oldest runnable actor from the first non-empty one.
func (w *worker) steal() *Ref {
	workers := w.sys.workers
	n := len(workers)
	if n < 2 {
		return nil
	}
	w.rng = w.rng*6364136223846793005 + 1442695040888963407
	start := int((w.rng >> 33) % uint64(n))
	for i := 0; i < n; i++ {
		victim := workers[(start+i)%n]
		if victim == w {
			continue
		}
		if r := victim.dq.Steal(); r != nil {
			w.sys.Steals.Add(1)
			w.local.IncAtomic() // steal → atomic (a real scheduling event)
			return r
		}
	}
	return nil
}

// anyWork probes every queue a parked worker could be woken for. Called
// only on the park slow path.
func (s *System) anyWork() bool {
	if !s.inject.Empty() {
		return true
	}
	for _, w := range s.workers {
		if w.dq.Size() > 0 {
			return true
		}
	}
	return false
}

// signal wakes one parked worker, if any. Producers call it after making
// their work visible, which pairs with the idle-then-recheck park protocol
// to exclude lost wakeups.
func (s *System) signal() {
	if s.idle.Load() > 0 {
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
}
