package actors

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// boomBehavior panics on every string message and counts ints; it records
// lifecycle hook invocations so tests can assert the supervision protocol.
type boomBehavior struct {
	sum         atomic.Int64
	preRestarts atomic.Int64
	postStops   atomic.Int64
	lastErr     atomic.Value
}

func (b *boomBehavior) Receive(ctx *Context, msg any) {
	switch m := msg.(type) {
	case int:
		b.sum.Add(int64(m))
	case string:
		panic("boom: " + m)
	}
}

func (b *boomBehavior) PreRestart(err any) {
	b.preRestarts.Add(1)
	b.lastErr.Store(err)
}

func (b *boomBehavior) PostStop() { b.postStops.Add(1) }

func TestPanicInReceiveDoesNotKillWorker(t *testing.T) {
	// A panicking Receive must be absorbed by the supervision machinery:
	// the worker keeps scheduling other actors and the system quiesces.
	sys := NewSystem(2)
	defer sys.Shutdown()

	bad := sys.SpawnWith("bad", ReceiverFunc(func(ctx *Context, msg any) {
		panic("always")
	}), SpawnOpts{Strategy: AlwaysStop})
	var got atomic.Int64
	good := sys.Spawn("good", ReceiverFunc(func(ctx *Context, msg any) {
		got.Add(int64(msg.(int)))
	}))

	bad.Tell("first")
	for i := 1; i <= 100; i++ {
		good.Tell(i)
	}
	sys.AwaitQuiescence()
	if got.Load() != 5050 {
		t.Errorf("good actor sum = %d, want 5050", got.Load())
	}
}

func TestRestartPreservesMailbox(t *testing.T) {
	// Messages behind the failing one — and messages arriving during the
	// backoff suspension — are delivered to the restarted behavior.
	sys := NewSystem(2)
	defer sys.Shutdown()

	b := &boomBehavior{}
	a := sys.SpawnWith("b", b, SpawnOpts{
		Strategy: OneForOne{MaxRestarts: -1},
		Backoff:  100 * time.Microsecond,
	})
	a.Tell("die")
	const n = 50
	for i := 1; i <= n; i++ {
		a.Tell(i)
	}
	sys.AwaitQuiescence()
	if got := b.sum.Load(); got != n*(n+1)/2 {
		t.Errorf("sum after restart = %d, want %d (mailbox lost?)", got, n*(n+1)/2)
	}
	if b.preRestarts.Load() != 1 {
		t.Errorf("PreRestart ran %d times, want 1", b.preRestarts.Load())
	}
	if err, _ := b.lastErr.Load().(string); err != "boom: die" {
		t.Errorf("PreRestart saw %v, want boom: die", b.lastErr.Load())
	}
}

func TestRestartFactorySwapsBehavior(t *testing.T) {
	// With a Factory, Restart installs a fresh Receiver; without one the
	// old value is reused. The factory-built generation is observable.
	sys := NewSystem(2)
	defer sys.Shutdown()

	var gen atomic.Int64
	var lastGen atomic.Int64
	mk := func() Receiver {
		g := gen.Add(1)
		return ReceiverFunc(func(ctx *Context, msg any) {
			if msg == "die" {
				panic("die")
			}
			lastGen.Store(g)
		})
	}
	a := sys.SpawnWith("g", mk(), SpawnOpts{
		Strategy: OneForOne{MaxRestarts: -1},
		Factory:  mk,
		Backoff:  100 * time.Microsecond,
	})
	a.Tell("die")
	a.Tell("probe")
	sys.AwaitQuiescence()
	// The factory ran once for the initial behavior (generation 1) and once
	// on restart, so generation 2 must handle the probe.
	if lastGen.Load() != 2 {
		t.Errorf("probe handled by generation %d, want 2", lastGen.Load())
	}
}

func TestResumeKeepsStateAcrossFault(t *testing.T) {
	// Resume drops the failing message but keeps behavior state: the
	// counter is NOT reset, unlike Restart-with-factory.
	sys := NewSystem(2)
	defer sys.Shutdown()

	count := 0 // unsynchronized: Receive is serial per actor
	a := sys.SpawnWith("res", ReceiverFunc(func(ctx *Context, msg any) {
		if msg == "die" {
			panic("die")
		}
		count++
	}), SpawnOpts{Strategy: StrategyFunc(func(any, int) Directive { return Resume })})

	for i := 0; i < 10; i++ {
		a.Tell(i)
	}
	a.Tell("die")
	for i := 0; i < 10; i++ {
		a.Tell(i)
	}
	sys.AwaitQuiescence()
	if count != 20 {
		t.Errorf("count = %d, want 20 (state lost on Resume?)", count)
	}
}

func TestRestartLadderOverflowStopsAndDeadLetters(t *testing.T) {
	// An actor that keeps failing climbs the restart ladder, overflows to
	// Stop, runs PostStop once, and dead-letters everything still queued.
	sys := NewSystem(2)
	defer sys.Shutdown()

	b := &boomBehavior{}
	a := sys.SpawnWith("doomed", b, SpawnOpts{
		Strategy: OneForOne{MaxRestarts: 2, Overflow: Stop},
		Backoff:  100 * time.Microsecond,
	})
	// Three failures: restarts at 0 and 1, overflow at 2.
	a.Tell("a")
	a.Tell("b")
	a.Tell("c")
	a.Tell(1) // queued behind the fatal failure: becomes a dead letter
	sys.AwaitQuiescence()
	if !a.stopped.Load() {
		t.Fatal("actor not stopped after overflowing the restart ladder")
	}
	if got := b.preRestarts.Load(); got != 2 {
		t.Errorf("PreRestart ran %d times, want 2", got)
	}
	if got := b.postStops.Load(); got != 1 {
		t.Errorf("PostStop ran %d times, want 1", got)
	}
	if b.sum.Load() != 0 {
		t.Errorf("sum = %d, want 0 (message delivered after stop?)", b.sum.Load())
	}
	if sys.DeadLetterCount() == 0 {
		t.Error("queued message after stop was not dead-lettered")
	}
}

func TestEscalationClimbsToRootFailure(t *testing.T) {
	// leaf -> mid -> top, all escalating: one leaf failure stops the whole
	// chain and surfaces as exactly one root failure on the System.
	sys := NewSystem(2)
	defer sys.Shutdown()

	var rootSeen atomic.Int64
	var rootErr atomic.Value
	sys.SetRootHandler(func(failed *Ref, err any) {
		rootSeen.Add(1)
		rootErr.Store(err)
	})

	inert := ReceiverFunc(func(ctx *Context, msg any) {})
	top := sys.SpawnWith("top", inert, SpawnOpts{Strategy: AlwaysEscalate})
	mid := sys.SpawnWith("mid", inert, SpawnOpts{Supervisor: top, Strategy: AlwaysEscalate})
	leaf := sys.SpawnWith("leaf", ReceiverFunc(func(ctx *Context, msg any) {
		panic("leaf failure")
	}), SpawnOpts{Supervisor: mid, Strategy: AlwaysEscalate})

	leaf.Tell("go")
	sys.AwaitQuiescence()
	if got := sys.RootFailures(); got != 1 {
		t.Fatalf("RootFailures = %d, want 1", got)
	}
	if rootSeen.Load() != 1 {
		t.Errorf("root handler ran %d times, want 1", rootSeen.Load())
	}
	if err, _ := rootErr.Load().(string); err != "leaf failure" {
		t.Errorf("root handler saw %v, want leaf failure", rootErr.Load())
	}
	for _, r := range []*Ref{leaf, mid, top} {
		if !r.stopped.Load() {
			t.Errorf("%s not stopped by the escalation chain", r.Name())
		}
	}
}

func TestEscalationRestartsSupervisor(t *testing.T) {
	// A supervisor whose own strategy says Restart treats an escalated
	// child failure like its own: it restarts (fresh behavior via factory)
	// and keeps serving its mailbox.
	sys := NewSystem(2)
	defer sys.Shutdown()

	sup := &boomBehavior{}
	top := sys.SpawnWith("sup", sup, SpawnOpts{
		Strategy: OneForOne{MaxRestarts: -1},
		Backoff:  100 * time.Microsecond,
	})
	child := sys.SpawnWith("child", ReceiverFunc(func(ctx *Context, msg any) {
		panic("child failure")
	}), SpawnOpts{Supervisor: top, Strategy: AlwaysEscalate})

	child.Tell("go")
	top.Tell(7) // must still be served after the escalation-triggered restart
	sys.AwaitQuiescence()
	if !child.stopped.Load() {
		t.Error("escalating child not stopped")
	}
	if top.stopped.Load() {
		t.Error("supervisor stopped; its strategy said Restart")
	}
	if sup.preRestarts.Load() != 1 {
		t.Errorf("supervisor PreRestart ran %d times, want 1", sup.preRestarts.Load())
	}
	if sup.sum.Load() != 7 {
		t.Errorf("supervisor sum = %d, want 7 (mailbox lost on restart?)", sup.sum.Load())
	}
}

func TestDeadLetterSinkObservesFaultPath(t *testing.T) {
	// Undeliverable messages reach the sink wrapped in DeadLetter, and a
	// dead sink cannot recurse: letters addressed to it are counted only.
	sys := NewSystem(2)
	defer sys.Shutdown()

	var mu sync.Mutex
	var letters []DeadLetter
	sink := sys.Spawn("sink", ReceiverFunc(func(ctx *Context, msg any) {
		if dl, ok := msg.(DeadLetter); ok {
			mu.Lock()
			letters = append(letters, dl)
			mu.Unlock()
		}
	}))
	sys.SetDeadLetterSink(sink)

	target := sys.Spawn("target", ReceiverFunc(func(ctx *Context, msg any) {}))
	target.Stop()
	target.Tell("lost")
	sys.AwaitQuiescence()

	mu.Lock()
	n := len(letters)
	var first DeadLetter
	if n > 0 {
		first = letters[0]
	}
	mu.Unlock()
	if n != 1 {
		t.Fatalf("sink saw %d dead letters, want 1", n)
	}
	if first.To != target || first.Msg != "lost" {
		t.Errorf("dead letter = %+v, want To=target Msg=lost", first)
	}
	if sys.DeadLetterCount() != 1 {
		t.Errorf("DeadLetterCount = %d, want 1", sys.DeadLetterCount())
	}

	// Now kill the sink itself: a send to it must be counted, not rerouted
	// (which would recurse forever).
	sink.Stop()
	target.Tell("lost again")
	sys.AwaitQuiescence()
	if sys.DeadLetterCount() != 2 {
		t.Errorf("DeadLetterCount = %d, want 2", sys.DeadLetterCount())
	}
}

func TestBackoffRestartQuiesceRace(t *testing.T) {
	// A fault storm across many supervised actors — restarts suspended on
	// backoff timers while producers keep sending — must still quiesce:
	// every queued message is accounted and eventually delivered.
	sys := NewSystem(4)
	defer sys.Shutdown()

	const actors, msgs = 8, 200
	var delivered atomic.Int64
	refs := make([]*Ref, actors)
	for i := range refs {
		refs[i] = sys.SpawnWith("storm", ReceiverFunc(func(ctx *Context, msg any) {
			if msg.(int)%37 == 0 {
				panic("storm")
			}
			delivered.Add(1)
		}), SpawnOpts{
			Strategy: OneForOne{MaxRestarts: -1},
			Backoff:  50 * time.Microsecond,
		})
	}
	var wg sync.WaitGroup
	for _, r := range refs {
		wg.Add(1)
		go func(r *Ref) {
			defer wg.Done()
			for i := 1; i <= msgs; i++ {
				r.Tell(i)
			}
		}(r)
	}
	wg.Wait()
	sys.AwaitQuiescence()
	// 200/37 -> 5 panicking messages per actor (37, 74, ..., 185).
	want := int64(actors * (msgs - 5))
	if delivered.Load() != want {
		t.Errorf("delivered %d, want %d", delivered.Load(), want)
	}
}

func TestDefaultStrategyBoundsPlainSpawnFaults(t *testing.T) {
	// A plain Spawn gets DefaultStrategy: failures restart a bounded number
	// of times and then the actor stops instead of looping forever.
	sys := NewSystem(2)
	defer sys.Shutdown()

	a := sys.Spawn("plain", ReceiverFunc(func(ctx *Context, msg any) {
		panic("always fails")
	}))
	for i := 0; i < 10; i++ {
		a.Tell(i)
	}
	sys.AwaitQuiescence()
	if !a.stopped.Load() {
		t.Error("always-failing plain actor still running after default ladder")
	}
}
