package actors

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestTellDelivery(t *testing.T) {
	sys := NewSystem(2)
	defer sys.Shutdown()

	var got atomic.Int64
	a := sys.Spawn("adder", ReceiverFunc(func(ctx *Context, msg any) {
		got.Add(int64(msg.(int)))
	}))
	for i := 1; i <= 100; i++ {
		a.Tell(i)
	}
	sys.AwaitQuiescence()
	if got.Load() != 5050 {
		t.Errorf("sum = %d, want 5050", got.Load())
	}
}

func TestSequentialProcessing(t *testing.T) {
	// An actor must never process two messages concurrently.
	sys := NewSystem(4)
	defer sys.Shutdown()

	var inside atomic.Int32
	var violations atomic.Int32
	a := sys.Spawn("serial", ReceiverFunc(func(ctx *Context, msg any) {
		if inside.Add(1) != 1 {
			violations.Add(1)
		}
		time.Sleep(time.Microsecond)
		inside.Add(-1)
	}))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				a.Tell(i)
			}
		}()
	}
	wg.Wait()
	sys.AwaitQuiescence()
	if violations.Load() != 0 {
		t.Errorf("%d concurrent Receive invocations", violations.Load())
	}
}

func TestOrderingPerSender(t *testing.T) {
	// Messages from one goroutine to one actor arrive in send order.
	sys := NewSystem(3)
	defer sys.Shutdown()

	var mu sync.Mutex
	var order []int
	a := sys.Spawn("ordered", ReceiverFunc(func(ctx *Context, msg any) {
		mu.Lock()
		order = append(order, msg.(int))
		mu.Unlock()
	}))
	const n = 200
	for i := 0; i < n; i++ {
		a.Tell(i)
	}
	sys.AwaitQuiescence()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != n {
		t.Fatalf("delivered %d, want %d", len(order), n)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d; FIFO violated", i, v)
		}
	}
}

func TestReplyAndSender(t *testing.T) {
	sys := NewSystem(2)
	defer sys.Shutdown()

	echo := sys.Spawn("echo", ReceiverFunc(func(ctx *Context, msg any) {
		if ctx.Sender() == nil {
			t.Error("nil sender in ask")
			return
		}
		ctx.Reply("echo:" + msg.(string))
	}))
	select {
	case reply := <-echo.Ask("hi"):
		if reply != "echo:hi" {
			t.Errorf("reply = %v", reply)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ask timed out")
	}
}

func TestSpawnChildrenAndQuiescence(t *testing.T) {
	// A small fan-out tree computation: each node spawns children and the
	// total count is accumulated — the akka-uct shape in miniature.
	sys := NewSystem(4)
	defer sys.Shutdown()

	var count atomic.Int64
	var spawnNode func(depth int) *Ref
	spawnNode = func(depth int) *Ref {
		return sys.Spawn("node", ReceiverFunc(func(ctx *Context, msg any) {
			count.Add(1)
			if depth < 3 {
				for i := 0; i < 2; i++ {
					child := spawnNode(depth + 1)
					child.Tell("visit")
				}
			}
		}))
	}
	root := spawnNode(0)
	root.Tell("visit")
	sys.AwaitQuiescence()
	// Full binary tree of depth 3: 1+2+4+8 = 15 visits.
	if count.Load() != 15 {
		t.Errorf("visits = %d, want 15", count.Load())
	}
}

func TestStopBecomesDeadLetter(t *testing.T) {
	sys := NewSystem(1)
	defer sys.Shutdown()

	var received atomic.Int64
	a := sys.Spawn("stopme", ReceiverFunc(func(ctx *Context, msg any) {
		received.Add(1)
	}))
	a.Tell(1)
	sys.AwaitQuiescence()
	a.Stop()
	a.Tell(2)
	a.Tell(3)
	sys.AwaitQuiescence()
	if received.Load() != 1 {
		t.Errorf("received = %d, want 1 (post-stop messages dropped)", received.Load())
	}
	if _, ok := sys.Lookup("stopme"); ok {
		t.Error("stopped actor still registered")
	}
}

func TestLookupAndNames(t *testing.T) {
	sys := NewSystem(1)
	defer sys.Shutdown()

	a := sys.Spawn("worker", ReceiverFunc(func(*Context, any) {}))
	b := sys.Spawn("worker", ReceiverFunc(func(*Context, any) {}))
	if a.Name() == b.Name() {
		t.Errorf("duplicate names: %q vs %q", a.Name(), b.Name())
	}
	if ref, ok := sys.Lookup("worker"); !ok || ref != a {
		t.Error("lookup of original name failed")
	}
	if sys.ActorCount() != 2 {
		t.Errorf("ActorCount = %d, want 2", sys.ActorCount())
	}
}

func TestPingPong(t *testing.T) {
	// Two actors bouncing a counter — the reactors ping-pong workload shape.
	sys := NewSystem(2)
	defer sys.Shutdown()

	done := make(chan int, 1)
	var ping, pong *Ref
	pong = sys.Spawn("pong", ReceiverFunc(func(ctx *Context, msg any) {
		ctx.Reply(msg.(int) + 1)
	}))
	ping = sys.Spawn("ping", ReceiverFunc(func(ctx *Context, msg any) {
		n := msg.(int)
		if n >= 1000 {
			done <- n
			return
		}
		pong.TellFrom(n, ctx.Self())
	}))
	ping.Tell(0)
	select {
	case n := <-done:
		if n < 1000 {
			t.Errorf("final count = %d", n)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ping-pong deadlocked")
	}
}

func TestShutdownIdempotent(t *testing.T) {
	sys := NewSystem(1)
	sys.Spawn("x", ReceiverFunc(func(*Context, any) {}))
	sys.Shutdown()
	sys.Shutdown() // must not panic or deadlock
}

func TestTellAfterShutdownIsDropped(t *testing.T) {
	sys := NewSystem(1)
	var n atomic.Int64
	a := sys.Spawn("y", ReceiverFunc(func(*Context, any) { n.Add(1) }))
	a.Tell(1)
	sys.Shutdown()
	a.Tell(2) // dead letter, no panic
	if n.Load() != 1 {
		t.Errorf("processed = %d, want 1", n.Load())
	}
}
