// Package actors implements a message-passing actor runtime in the style of
// Akka and the Reactors framework, used by the akka-uct and reactors
// benchmarks (Table 1: "actors, message-passing"). Actors own a mailbox,
// process one message at a time, and are multiplexed over a fixed pool of
// scheduler workers.
//
// The runtime is lock-free on the per-message hot path:
//
//   - Each mailbox is a Vyukov-style intrusive MPSC queue (internal/mpsc)
//     with pooled envelope nodes: a send is one atomic swap plus one atomic
//     link store, and the consuming worker drains a batch wait-free without
//     taking a lock per message.
//   - Runnable actors are distributed over per-worker Chase–Lev deques
//     (internal/forkjoin.Deque) with work stealing and a global lock-free
//     inject queue for sends that originate off the scheduler; idle workers
//     park on a wakeup channel instead of spinning.
//   - The quiescence counter is striped into versioned per-worker cells and
//     summed with a double-collect scan (see quiesce.go), so in-flight
//     accounting never contends on one cache line.
//   - The name registry is sharded, so Spawn/Lookup/Stop serialize only
//     within one of 16 stripes.
//
// Per-message metric semantics (kept deterministic so PCA runs compare
// across versions): each send bumps atomic by 3 (in-flight stripe, mailbox
// swap, schedule CAS), each delivery bumps method by 1 (dispatch into the
// behavior) and atomic by 1 (in-flight decrement). Steals, parks, and
// notifies are scheduling events and are counted as they occur.
package actors

import (
	"errors"
	"fmt"
	"hash/maphash"
	"runtime"
	"sync"
	"sync/atomic"

	"renaissance/internal/metrics"
	"renaissance/internal/mpsc"
)

// ErrSystemStopped is returned by operations on a shut-down system.
var ErrSystemStopped = errors.New("actors: system stopped")

// A Receiver defines an actor's behavior: Receive is invoked for every
// delivered message, never concurrently for the same actor.
type Receiver interface {
	Receive(ctx *Context, msg any)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(ctx *Context, msg any)

// Receive calls the function.
func (f ReceiverFunc) Receive(ctx *Context, msg any) { f(ctx, msg) }

// regShards is the stripe count of the name registry. Spawn, Lookup, and
// Stop lock only the stripe their name hashes to.
const regShards = 16

type regShard struct {
	mu sync.Mutex
	m  map[string]*Ref
	_  [24]byte // keep neighbouring stripes off one cache line
}

var regSeed = maphash.MakeSeed()

// System is an actor system: per-worker run queues served by parked-when-idle
// worker goroutines, plus striped in-flight accounting for quiescence
// detection.
type System struct {
	workers []*worker
	inject  mpsc.Queue[*Ref] // runnable actors enqueued off-scheduler
	latch   atomic.Bool      // single-consumer latch for draining inject
	wake    chan struct{}
	done    chan struct{}
	wg      sync.WaitGroup
	stopped atomic.Bool
	idle    atomic.Int64
	// Steals counts successful run-queue steals, exposed for benches and
	// the scheduling ablation.
	Steals atomic.Int64

	cells     [maxCells]quiesceCell
	cellMask  int
	numCells  int
	waiters   atomic.Int64
	quiesceCh chan struct{}

	shards  [regShards]regShard
	nextID  atomic.Int64
	envPool *mpsc.Pool[envelope]

	// Fault-domain state (see supervision.go): the dead-letter sink and
	// counter, and the count/handler for failures escalating past the top
	// of a supervision tree.
	deadSink    atomic.Pointer[Ref]
	deadCount   atomic.Int64
	rootFails   atomic.Int64
	rootHandler atomic.Pointer[RootHandler]
}

// NewSystem creates an actor system with the given number of scheduler
// workers (0 means GOMAXPROCS).
func NewSystem(workers int) *System {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &System{
		wake:      make(chan struct{}, workers),
		done:      make(chan struct{}),
		quiesceCh: make(chan struct{}, 1),
		envPool:   mpsc.NewPool[envelope](),
	}
	s.inject.Init(mpsc.NewPool[*Ref]())
	s.numCells = quiesceCellCount(workers)
	s.cellMask = s.numCells - 1
	for i := range s.shards {
		s.shards[i].m = make(map[string]*Ref)
	}
	for i := 0; i < workers; i++ {
		w := &worker{
			sys:   s,
			id:    i,
			cell:  i & s.cellMask,
			rng:   uint64(i)*0x9E3779B97F4A7C15 + 1,
			local: metrics.AcquireAt(i),
		}
		w.ctx = Context{sys: s, w: w}
		s.workers = append(s.workers, w)
	}
	for _, w := range s.workers {
		s.wg.Add(1)
		go w.run()
	}
	return s
}

func (s *System) shardFor(name string) *regShard {
	return &s.shards[maphash.String(regSeed, name)&(regShards-1)]
}

// Spawn creates a new actor with the given name (a unique suffix is added
// when the name is already taken) and behavior, and returns its reference.
func (s *System) Spawn(name string, r Receiver) *Ref {
	return s.spawn(nil, name, r, nil)
}

// SpawnWith is Spawn with an explicit fault-domain configuration:
// supervisor, strategy, restart factory, and backoff (see supervision.go).
func (s *System) SpawnWith(name string, r Receiver, opts SpawnOpts) *Ref {
	return s.spawn(nil, name, r, supCellFor(opts))
}

func supCellFor(opts SpawnOpts) *supCell {
	return &supCell{
		supervisor: opts.Supervisor,
		strategy:   opts.Strategy,
		factory:    opts.Factory,
		backoff:    opts.Backoff,
	}
}

func (s *System) spawn(w *worker, name string, r Receiver, sup *supCell) *Ref {
	if s.stopped.Load() {
		panic(ErrSystemStopped)
	}
	if w != nil {
		w.local.IncObject() // the actor itself
	} else {
		metrics.IncObject()
	}
	ref := &Ref{sys: s, registered: true, sup: sup}
	ref.setBehavior(r)
	ref.mb.Init(s.envPool)
	base := name
	for {
		sh := s.shardFor(name)
		if w != nil {
			w.local.IncSynch()
		} else {
			metrics.IncSynch()
		}
		sh.mu.Lock()
		if _, taken := sh.m[name]; !taken {
			ref.name = name
			sh.m[name] = ref
			sh.mu.Unlock()
			return ref
		}
		sh.mu.Unlock()
		// The id counter is monotone, so a fresh suffix collides only with
		// a literal registration of that exact name; loop until free.
		name = fmt.Sprintf("%s-%d", base, s.nextID.Add(1))
	}
}

// Lookup returns the actor registered under name, if any.
func (s *System) Lookup(name string) (*Ref, bool) {
	sh := s.shardFor(name)
	metrics.IncSynch()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ref, ok := sh.m[name]
	return ref, ok
}

// ActorCount returns the number of live registered actors.
func (s *System) ActorCount() int {
	n := 0
	for i := range s.shards {
		metrics.IncSynch()
		s.shards[i].mu.Lock()
		n += len(s.shards[i].m)
		s.shards[i].mu.Unlock()
	}
	return n
}

// Shutdown stops the workers after in-flight messages drain. Pending
// messages that were already enqueued are still processed. A Tell racing
// Shutdown is delivered or becomes a dead letter; it never panics (the
// previous runtime could send on a closed run-queue channel here).
func (s *System) Shutdown() {
	if s.stopped.Swap(true) {
		return
	}
	s.AwaitQuiescence()
	close(s.done)
	s.wg.Wait()
}

// actor mailbox scheduling states
const (
	idle int32 = iota
	scheduled
)

// Ref is a reference to an actor; it is the only handle other code uses to
// communicate with it.
type Ref struct {
	sys  *System
	name string
	// recv is the current behavior. It is swapped on Restart (always under
	// the actor's scheduling slot) and read on every delivery; the atomic
	// pointer makes external readers (Ref.Stop's PostStop hook) safe too.
	recv atomic.Pointer[Receiver]

	mb         mpsc.Queue[envelope]
	state      atomic.Int32
	stopped    atomic.Bool
	registered bool // ephemeral Ask reply refs skip the registry
	// sup is the immutable fault-domain configuration (nil for plain
	// spawns: DefaultStrategy, no supervisor). restarts counts consecutive
	// restarts; it is touched only under the actor's scheduling slot and
	// reset by every clean delivery.
	sup      *supCell
	restarts int32
}

type envelope struct {
	msg    any
	sender *Ref
}

// Name returns the actor's registered name.
func (r *Ref) Name() string { return r.name }

// Tell enqueues a message for the actor with no sender.
func (r *Ref) Tell(msg any) { r.enqueue(msg, nil, nil) }

// TellFrom enqueues a message with an explicit sender reference.
func (r *Ref) TellFrom(msg any, sender *Ref) { r.enqueue(msg, sender, nil) }

// enqueue is the send hot path. w, when non-nil, is the scheduler worker on
// whose goroutine the send executes (sends made through a Context during
// Receive): its run queue and pinned metric shard and in-flight cell are
// used, so the whole send is three uncontended-or-lock-free atomics.
func (r *Ref) enqueue(msg any, sender *Ref, w *worker) {
	if w != nil && w.sys != r.sys {
		w = nil // cross-system send: the hint's queues belong elsewhere
	}
	if r.stopped.Load() || r.sys.stopped.Load() {
		r.sys.deadLetter(w, r, msg, sender)
		return
	}
	// Deterministic per-send accounting: in-flight bump + mailbox swap +
	// schedule CAS, counted identically however the send is scheduled.
	if w != nil {
		w.local.AddAtomic(3)
		r.sys.incInFlightAt(w.cell)
	} else {
		metrics.AddAtomic(3)
		r.sys.incInFlightAt(hashedCell(r.sys.cellMask))
	}
	r.mb.Push(envelope{msg, sender})
	r.schedule(w)
}

// schedule transitions the mailbox from idle to scheduled with a CAS and
// puts the actor on a run queue: the sending worker's own deque when the
// send originates on the scheduler, the lock-free inject queue otherwise.
// If the actor is already scheduled, the holder of its slot will observe
// the new message.
func (r *Ref) schedule(w *worker) {
	if r.state.CompareAndSwap(idle, scheduled) {
		if w != nil {
			w.dq.Push(r)
		} else {
			r.sys.inject.Push(r)
		}
		r.sys.signal()
	}
}

// batchSize bounds how many messages one scheduling slot processes, so a
// flooding actor cannot starve others (fair scheduling like Akka's
// throughput parameter). An exhausted batch requeues at the back of the
// global inject queue, behind every other runnable actor.
const batchSize = 64

// processBatch drains up to batchSize messages on worker w, which holds the
// actor's scheduling slot. Every popped envelope is accounted with exactly
// one messageDone, whether it was delivered, dead-lettered after a stop, or
// consumed by the supervision machinery — the quiescence sum depends on it.
func (r *Ref) processBatch(w *worker) {
	processed := 0
	for processed < batchSize {
		env, ok := r.mb.Pop()
		if !ok {
			if r.mb.Empty() {
				break
			}
			// A producer swapped the head but has not linked its node
			// yet; its next store lands imminently.
			runtime.Gosched()
			continue
		}
		processed++
		if r.stopped.Load() {
			// Stopped with queued messages: dead-letter them, keeping the
			// in-flight accounting so quiescence still reaches zero.
			r.sys.deadLetter(w, r, env.msg, env.sender)
			r.sys.messageDone(w)
			continue
		}
		if esc, ok := env.msg.(escalated); ok {
			// A child failure escalated here: apply this actor's own
			// strategy under its own slot (see supervision.go).
			r.sys.messageDone(w)
			if r.fail(w, esc.err) {
				return // suspended for a backoff restart; slot handed off
			}
			continue
		}
		failure, failed := r.deliver(w, env)
		r.sys.messageDone(w)
		if failed {
			if r.fail(w, failure) {
				return // suspended for a backoff restart; slot handed off
			}
			continue
		}
		if r.restarts != 0 {
			r.restarts = 0 // a clean delivery resets the backoff ladder
		}
	}
	if processed == batchSize && !r.mb.Empty() {
		// Fairness: keep the slot (state stays scheduled — producers must
		// not double-enqueue us) but go to the back of the global queue.
		r.sys.inject.Push(r)
		r.sys.signal()
		return
	}
	// Release the scheduling slot and reclaim it if messages raced in
	// after the emptiness check.
	r.state.Store(idle)
	if !r.mb.Empty() {
		r.schedule(w)
	}
}

// Stop marks the actor stopped: further messages become dead letters and
// queued messages are drained as dead letters (still accounted). The
// PostStop hook, when the behavior implements it, runs exactly once on the
// goroutine that won the stop.
func (r *Ref) Stop() {
	if r.stopped.Swap(true) {
		return
	}
	if h, ok := r.behavior().(PostStopper); ok {
		runHook(h.PostStop)
	}
	if !r.registered {
		return
	}
	sh := r.sys.shardFor(r.name)
	metrics.IncSynch()
	sh.mu.Lock()
	if sh.m[r.name] == r {
		delete(sh.m, r.name)
	}
	sh.mu.Unlock()
}

// Context is passed to Receive and exposes the runtime to behaviors. It is
// owned by the delivering scheduler worker and valid only for the duration
// of the Receive invocation; behaviors that need a handle past that must
// capture Self()/Sender() refs, not the Context.
type Context struct {
	sys    *System
	self   *Ref
	sender *Ref
	w      *worker
}

// Self returns the reference of the actor processing the message.
func (c *Context) Self() *Ref { return c.self }

// Sender returns the sending actor's reference, or nil.
func (c *Context) Sender() *Ref { return c.sender }

// System returns the actor system.
func (c *Context) System() *System { return c.sys }

// Spawn creates a child actor with the default fault domain (no
// supervisor, DefaultStrategy).
func (c *Context) Spawn(name string, r Receiver) *Ref {
	return c.sys.spawn(c.w, name, r, nil)
}

// SpawnWith creates a child actor with an explicit fault-domain
// configuration. The common tree shape passes Supervisor: c.Self().
func (c *Context) SpawnWith(name string, r Receiver, opts SpawnOpts) *Ref {
	return c.sys.spawn(c.w, name, r, supCellFor(opts))
}

// Send delivers msg to the target with this actor as the sender, scheduling
// the target on the delivering worker's own run queue — the fast path for
// actor-to-actor sends (an Akka-style implicit sender).
func (c *Context) Send(to *Ref, msg any) {
	to.enqueue(msg, c.self, c.w)
}

// Reply sends a message back to the sender, if there is one.
func (c *Context) Reply(msg any) {
	if c.sender != nil {
		c.sender.enqueue(msg, c.self, c.w)
	}
}

// Ask sends msg to the actor and returns a channel that receives the single
// reply, mirroring Akka's ask pattern. The reply target is an ephemeral,
// unregistered ref: repeated Asks take no registry locks, churn no name
// suffixes, and are allocation-flat.
func (r *Ref) Ask(msg any) <-chan any {
	reply := make(chan any, 1)
	metrics.IncObject()
	tmp := &Ref{sys: r.sys, name: "ask"}
	tmp.mb.Init(r.sys.envPool)
	tmp.setBehavior(ReceiverFunc(func(ctx *Context, m any) {
		select {
		case reply <- m:
		default: // a second reply after the first; drop it
		}
		ctx.Self().Stop()
	}))
	r.TellFrom(msg, tmp)
	return reply
}
