// Package actors implements a message-passing actor runtime in the style of
// Akka and the Reactors framework, used by the akka-uct and reactors
// benchmarks (Table 1: "actors, message-passing"). Actors own a mailbox,
// process one message at a time, and are multiplexed over a fixed pool of
// scheduler workers. Message sends and mailbox scheduling use atomic
// operations and mutex-protected queues, which is exactly the
// concurrency-primitive profile the paper attributes to actor workloads.
package actors

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"renaissance/internal/metrics"
)

// ErrSystemStopped is returned by operations on a shut-down system.
var ErrSystemStopped = errors.New("actors: system stopped")

// A Receiver defines an actor's behavior: Receive is invoked for every
// delivered message, never concurrently for the same actor.
type Receiver interface {
	Receive(ctx *Context, msg any)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(ctx *Context, msg any)

// Receive calls the function.
func (f ReceiverFunc) Receive(ctx *Context, msg any) { f(ctx, msg) }

// System is an actor system: a run queue served by worker goroutines, plus
// in-flight message accounting used for quiescence detection.
type System struct {
	runq     chan *Ref
	workers  int
	wg       sync.WaitGroup
	stopped  atomic.Bool
	inFlight atomic.Int64
	quiesce  chan struct{} // receives a token when inFlight drops to 0

	mu     sync.Mutex
	actors map[string]*Ref
	nextID atomic.Int64
}

// NewSystem creates an actor system with the given number of scheduler
// workers (0 means GOMAXPROCS).
func NewSystem(workers int) *System {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &System{
		runq:    make(chan *Ref, 1024),
		workers: workers,
		quiesce: make(chan struct{}, 1),
		actors:  make(map[string]*Ref),
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

func (s *System) worker() {
	defer s.wg.Done()
	for ref := range s.runq {
		ref.processBatch()
	}
}

// Spawn creates a new actor with the given name (a unique suffix is added
// when the name is already taken) and behavior, and returns its reference.
func (s *System) Spawn(name string, r Receiver) *Ref {
	if s.stopped.Load() {
		panic(ErrSystemStopped)
	}
	metrics.IncObject() // the actor itself
	ref := &Ref{sys: s, recv: r}
	metrics.IncSynch()
	s.mu.Lock()
	if _, taken := s.actors[name]; taken {
		name = fmt.Sprintf("%s-%d", name, s.nextID.Add(1))
	}
	ref.name = name
	s.actors[name] = ref
	s.mu.Unlock()
	return ref
}

// Lookup returns the actor registered under name, if any.
func (s *System) Lookup(name string) (*Ref, bool) {
	metrics.IncSynch()
	s.mu.Lock()
	defer s.mu.Unlock()
	ref, ok := s.actors[name]
	return ref, ok
}

// ActorCount returns the number of live actors.
func (s *System) ActorCount() int {
	metrics.IncSynch()
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.actors)
}

// AwaitQuiescence blocks until no messages are in flight. It is the
// termination-detection mechanism used by tree-computation workloads such
// as akka-uct.
func (s *System) AwaitQuiescence() {
	metrics.IncAtomic()
	if s.inFlight.Load() == 0 {
		return
	}
	metrics.IncPark()
	<-s.quiesce
}

// Shutdown stops the workers after the run queue drains. Pending messages
// that were already enqueued are still processed.
func (s *System) Shutdown() {
	if s.stopped.Swap(true) {
		return
	}
	s.AwaitQuiescence()
	close(s.runq)
	s.wg.Wait()
}

// actor mailbox scheduling states
const (
	idle int32 = iota
	scheduled
)

// Ref is a reference to an actor; it is the only handle other code uses to
// communicate with it.
type Ref struct {
	sys  *System
	name string
	recv Receiver

	mu      sync.Mutex
	queue   []envelope
	state   atomic.Int32
	stopped atomic.Bool
}

type envelope struct {
	msg    any
	sender *Ref
}

// Name returns the actor's registered name.
func (r *Ref) Name() string { return r.name }

// Tell enqueues a message for the actor with no sender.
func (r *Ref) Tell(msg any) { r.send(msg, nil) }

// TellFrom enqueues a message with an explicit sender reference.
func (r *Ref) TellFrom(msg any, sender *Ref) { r.send(msg, sender) }

func (r *Ref) send(msg any, sender *Ref) {
	if r.stopped.Load() || r.sys.stopped.Load() {
		return // dead letter
	}
	metrics.IncAtomic()
	r.sys.inFlight.Add(1)

	metrics.IncSynch()
	r.mu.Lock()
	r.queue = append(r.queue, envelope{msg, sender})
	r.mu.Unlock()

	r.schedule()
}

// schedule transitions the mailbox from idle to scheduled with a CAS and
// puts the actor on the run queue; if it is already scheduled the running
// worker will observe the new message.
func (r *Ref) schedule() {
	metrics.IncAtomic()
	if r.state.CompareAndSwap(idle, scheduled) {
		r.sys.runq <- r
	}
}

// batchSize bounds how many messages one scheduling slot processes, so a
// flooding actor cannot starve others (fair scheduling like Akka's
// throughput parameter).
const batchSize = 64

func (r *Ref) processBatch() {
	processed := 0
	for processed < batchSize {
		metrics.IncSynch()
		r.mu.Lock()
		if len(r.queue) == 0 {
			r.mu.Unlock()
			break
		}
		env := r.queue[0]
		r.queue = r.queue[1:]
		r.mu.Unlock()

		if !r.stopped.Load() {
			ctx := &Context{sys: r.sys, self: r, sender: env.sender}
			metrics.IncMethod() // dynamic dispatch into the behavior
			r.recv.Receive(ctx, env.msg)
		}
		r.sys.messageDone()
		processed++
	}

	// Release the scheduling slot and re-schedule if messages remain (or
	// raced in after the emptiness check).
	r.state.Store(idle)
	metrics.IncAtomic()
	metrics.IncSynch()
	r.mu.Lock()
	pending := len(r.queue)
	r.mu.Unlock()
	if pending > 0 {
		r.schedule()
	}
}

func (s *System) messageDone() {
	metrics.IncAtomic()
	if s.inFlight.Add(-1) == 0 {
		metrics.IncNotify()
		select {
		case s.quiesce <- struct{}{}:
		default:
		}
	}
}

// Stop marks the actor stopped: further messages become dead letters and
// queued messages are skipped (but still accounted).
func (r *Ref) Stop() {
	r.stopped.Store(true)
	metrics.IncSynch()
	r.sys.mu.Lock()
	delete(r.sys.actors, r.name)
	r.sys.mu.Unlock()
}

// Context is passed to Receive and exposes the runtime to behaviors.
type Context struct {
	sys    *System
	self   *Ref
	sender *Ref
}

// Self returns the reference of the actor processing the message.
func (c *Context) Self() *Ref { return c.self }

// Sender returns the sending actor's reference, or nil.
func (c *Context) Sender() *Ref { return c.sender }

// System returns the actor system.
func (c *Context) System() *System { return c.sys }

// Spawn creates a child actor.
func (c *Context) Spawn(name string, r Receiver) *Ref { return c.sys.Spawn(name, r) }

// Reply sends a message back to the sender, if there is one.
func (c *Context) Reply(msg any) {
	if c.sender != nil {
		c.sender.TellFrom(msg, c.self)
	}
}

// Ask sends msg to the actor and returns a channel that receives the single
// reply. It spawns a lightweight reply actor, mirroring Akka's ask pattern.
func (r *Ref) Ask(msg any) <-chan any {
	reply := make(chan any, 1)
	tmp := r.sys.Spawn("ask", ReceiverFunc(func(ctx *Context, m any) {
		reply <- m
		ctx.Self().Stop()
	}))
	r.TellFrom(msg, tmp)
	return reply
}
