package actors

// The pre-MPSC actor runtime, kept as a bench-local copy so the comparative
// benchmarks (bench_actors_test.go) measure the real seed hot path: a
// mutex-guarded slice mailbox (two lock acquisitions per message: append on
// send, shift on drain), one global run-queue channel shared by every
// worker, a single-mutex registry, and one global in-flight counter. Not
// compiled into the library; see `make bench` / BENCH_actors.txt.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"renaissance/internal/metrics"
)

type oldSystem struct {
	runq     chan *oldRef
	wg       sync.WaitGroup
	stopped  atomic.Bool
	inFlight atomic.Int64
	quiesce  chan struct{}

	mu     sync.Mutex
	actors map[string]*oldRef
	nextID atomic.Int64
}

func newOldSystem(workers int) *oldSystem {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &oldSystem{
		runq:    make(chan *oldRef, 1024),
		quiesce: make(chan struct{}, 1),
		actors:  make(map[string]*oldRef),
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for ref := range s.runq {
				ref.processBatch()
			}
		}()
	}
	return s
}

func (s *oldSystem) Spawn(name string, recv func(*oldContext, any)) *oldRef {
	metrics.IncObject()
	ref := &oldRef{sys: s, recv: recv}
	metrics.IncSynch()
	s.mu.Lock()
	if _, taken := s.actors[name]; taken {
		name = fmt.Sprintf("%s-%d", name, s.nextID.Add(1))
	}
	ref.name = name
	s.actors[name] = ref
	s.mu.Unlock()
	return ref
}

func (s *oldSystem) AwaitQuiescence() {
	metrics.IncAtomic()
	if s.inFlight.Load() == 0 {
		return
	}
	metrics.IncPark()
	<-s.quiesce
}

func (s *oldSystem) Shutdown() {
	if s.stopped.Swap(true) {
		return
	}
	s.AwaitQuiescence()
	close(s.runq)
	s.wg.Wait()
}

func (s *oldSystem) messageDone() {
	metrics.IncAtomic()
	if s.inFlight.Add(-1) == 0 {
		metrics.IncNotify()
		select {
		case s.quiesce <- struct{}{}:
		default:
		}
	}
}

type oldRef struct {
	sys  *oldSystem
	name string
	recv func(*oldContext, any)

	mu      sync.Mutex
	queue   []oldEnvelope
	state   atomic.Int32
	stopped atomic.Bool
}

type oldEnvelope struct {
	msg    any
	sender *oldRef
}

func (r *oldRef) Tell(msg any)                     { r.send(msg, nil) }
func (r *oldRef) TellFrom(msg any, sender *oldRef) { r.send(msg, sender) }

func (r *oldRef) send(msg any, sender *oldRef) {
	if r.stopped.Load() || r.sys.stopped.Load() {
		return
	}
	metrics.IncAtomic()
	r.sys.inFlight.Add(1)
	metrics.IncSynch()
	r.mu.Lock()
	r.queue = append(r.queue, oldEnvelope{msg, sender})
	r.mu.Unlock()
	r.schedule()
}

func (r *oldRef) schedule() {
	metrics.IncAtomic()
	if r.state.CompareAndSwap(idle, scheduled) {
		r.sys.runq <- r
	}
}

func (r *oldRef) processBatch() {
	processed := 0
	for processed < batchSize {
		metrics.IncSynch()
		r.mu.Lock()
		if len(r.queue) == 0 {
			r.mu.Unlock()
			break
		}
		env := r.queue[0]
		r.queue = r.queue[1:]
		r.mu.Unlock()

		if !r.stopped.Load() {
			ctx := &oldContext{sys: r.sys, self: r, sender: env.sender}
			metrics.IncMethod()
			r.recv(ctx, env.msg)
		}
		r.sys.messageDone()
		processed++
	}
	r.state.Store(idle)
	metrics.IncAtomic()
	metrics.IncSynch()
	r.mu.Lock()
	pending := len(r.queue)
	r.mu.Unlock()
	if pending > 0 {
		r.schedule()
	}
}

func (r *oldRef) Stop() {
	r.stopped.Store(true)
	metrics.IncSynch()
	r.sys.mu.Lock()
	delete(r.sys.actors, r.name)
	r.sys.mu.Unlock()
}

func (r *oldRef) Ask(msg any) <-chan any {
	reply := make(chan any, 1)
	tmp := r.sys.Spawn("ask", func(ctx *oldContext, m any) {
		reply <- m
		ctx.self.Stop()
	})
	r.TellFrom(msg, tmp)
	return reply
}

type oldContext struct {
	sys    *oldSystem
	self   *oldRef
	sender *oldRef
}

func (c *oldContext) Reply(msg any) {
	if c.sender != nil {
		c.sender.TellFrom(msg, c.self)
	}
}
