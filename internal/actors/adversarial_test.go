package actors

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// A Tell racing Shutdown must never panic (the previous runtime could send
// on the closed run-queue channel in this window) — the message is either
// delivered or becomes a dead letter. Run under -race -count=5 by `make
// stress`.
func TestSendShutdownRace(t *testing.T) {
	for round := 0; round < 50; round++ {
		sys := NewSystem(4)
		var received atomic.Int64
		a := sys.Spawn("target", ReceiverFunc(func(ctx *Context, msg any) {
			received.Add(1)
		}))

		const senders = 4
		const perSender = 200
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < senders; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for j := 0; j < perSender; j++ {
					a.Tell(j) // must never panic, even mid-Shutdown
				}
			}()
		}
		close(start)
		sys.Shutdown() // races the senders
		wg.Wait()
		if got := received.Load(); got > senders*perSender {
			t.Fatalf("received %d messages, sent only %d", got, senders*perSender)
		}
	}
}

// A flooding actor that always has mail must not starve its peers: the
// batch bound forces it to requeue at the back of the global inject queue,
// behind every other runnable actor. With a single worker this is a strict
// fairness test — the victim's one message must still be delivered while
// the flooder self-perpetuates.
func TestFloodingActorFairness(t *testing.T) {
	sys := NewSystem(1)
	defer sys.Shutdown()

	stop := make(chan struct{})
	flooder := sys.Spawn("flooder", ReceiverFunc(func(ctx *Context, msg any) {
		select {
		case <-stop:
		default:
			ctx.Send(ctx.Self(), msg) // keep our own mailbox hot forever
		}
	}))
	// Prime the flooder with a full batch so its slot is always exhausted.
	for i := 0; i < batchSize*2; i++ {
		flooder.Tell(i)
	}

	victimDone := make(chan struct{})
	victim := sys.Spawn("victim", ReceiverFunc(func(ctx *Context, msg any) {
		close(victimDone)
	}))
	victim.Tell("ping")

	select {
	case <-victimDone:
	case <-time.After(10 * time.Second):
		t.Fatal("victim starved by flooding actor; batch fairness broken")
	}
	close(stop)
	sys.AwaitQuiescence()
}

// AwaitQuiescence racing the final messageDone: the striped, versioned
// in-flight counter must never report quiescence while a forwarding chain
// still has a message in flight. Every round asserts the full count the
// instant AwaitQuiescence returns — an early report loses increments.
func TestQuiesceNotEarlyUnderChains(t *testing.T) {
	sys := NewSystem(4)
	defer sys.Shutdown()

	const chains = 8
	const chainLen = 20
	const rounds = 30

	var delivered atomic.Int64
	roots := make([]*Ref, chains)
	for c := 0; c < chains; c++ {
		next := sys.Spawn("sink", ReceiverFunc(func(ctx *Context, msg any) {
			delivered.Add(1)
		}))
		for i := 0; i < chainLen; i++ {
			target := next
			next = sys.Spawn("stage", ReceiverFunc(func(ctx *Context, msg any) {
				ctx.Send(target, msg)
			}))
		}
		roots[c] = next
	}

	for round := 1; round <= rounds; round++ {
		for _, root := range roots {
			root.Tell(round)
		}
		sys.AwaitQuiescence()
		if got := delivered.Load(); got != int64(round*chains) {
			t.Fatalf("round %d: AwaitQuiescence returned early: %d/%d deliveries",
				round, got, round*chains)
		}
	}
}

// Stop racing Tell: sends and the stop flag race freely; the run must be
// race-clean, quiescence must still be reached (skipped messages stay
// accounted), and no message may arrive after Stop's effects are visible.
func TestStopRacingTellQuiesces(t *testing.T) {
	for round := 0; round < 30; round++ {
		sys := NewSystem(2)
		var received atomic.Int64
		a := sys.Spawn("stopme", ReceiverFunc(func(ctx *Context, msg any) {
			received.Add(1)
		}))

		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				a.Tell(i)
			}
		}()
		runtime.Gosched()
		a.Stop()
		wg.Wait()
		sys.AwaitQuiescence() // must not hang on dropped/skipped accounting
		if got := received.Load(); got > 2000 {
			t.Fatalf("received %d > sent 2000", got)
		}
		sys.Shutdown()
	}
}

// Quiescence under adversarial load: a flooder with a bounded fuse, fan-in
// producers, and concurrent AwaitQuiescence callers must all agree on
// termination, with every send accounted.
func TestQuiesceUnderAdversarialLoad(t *testing.T) {
	sys := NewSystem(4)
	defer sys.Shutdown()

	var count atomic.Int64
	var expect int64

	// Flooder: each message below the fuse re-sends twice — a burst tree.
	const fuseDepth = 8
	var flooder *Ref
	flooder = sys.Spawn("burst", ReceiverFunc(func(ctx *Context, msg any) {
		count.Add(1)
		d := msg.(int)
		if d < fuseDepth {
			ctx.Send(ctx.Self(), d+1)
			ctx.Send(ctx.Self(), d+1)
		}
	}))
	flooder.Tell(0)
	expect += 1<<(fuseDepth+1) - 1

	// Fan-in from off-scheduler goroutines.
	sink := sys.Spawn("sink", ReceiverFunc(func(ctx *Context, msg any) {
		count.Add(1)
	}))
	const producers = 4
	const perProducer = 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				sink.Tell(i)
			}
		}()
	}
	expect += producers * perProducer
	wg.Wait() // all sends issued (and counted in flight) before awaiting

	done := make(chan struct{})
	for i := 0; i < 3; i++ { // concurrent waiters must all wake
		go func() {
			sys.AwaitQuiescence()
			done <- struct{}{}
		}()
	}
	for i := 0; i < 3; i++ {
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("AwaitQuiescence hung (missed wakeup)")
		}
	}
	if got := count.Load(); got != expect {
		t.Fatalf("delivered %d, want %d", got, expect)
	}
}

// Ask must not touch the registry: the reply target is an ephemeral ref, so
// repeated Asks churn no names and take no registry locks.
func TestAskEphemeralNotRegistered(t *testing.T) {
	sys := NewSystem(2)
	defer sys.Shutdown()

	echo := sys.Spawn("echo", ReceiverFunc(func(ctx *Context, msg any) {
		ctx.Reply(msg)
	}))
	for i := 0; i < 100; i++ {
		select {
		case got := <-echo.Ask(i):
			if got != i {
				t.Fatalf("ask %d: got %v", i, got)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("ask %d timed out", i)
		}
		if _, ok := sys.Lookup("ask"); ok {
			t.Fatal("Ask registered its reply actor")
		}
		if n := sys.ActorCount(); n != 1 {
			t.Fatalf("ActorCount = %d after %d asks, want 1 (no registry churn)", n, i+1)
		}
	}
}

// A flooded-then-drained mailbox must release its payload buffers: envelope
// nodes are pooled and their message references cleared on dequeue, so the
// GC can reclaim every payload. This is the regression test for the old
// mutex mailbox, whose `queue = queue[1:]` drain pinned the slice head (and
// everything it referenced) until the next reallocation.
func TestMailboxFloodDrainReleasesBuffers(t *testing.T) {
	sys := NewSystem(2)
	defer sys.Shutdown()

	a := sys.Spawn("hoarder", ReceiverFunc(func(ctx *Context, msg any) {}))

	type payload struct{ buf [4096]byte }
	const n = 200
	collected := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		p := &payload{}
		runtime.SetFinalizer(p, func(*payload) { collected <- struct{}{} })
		a.Tell(p)
	}
	sys.AwaitQuiescence() // mailbox fully drained

	if !a.mb.Empty() {
		t.Fatal("drained mailbox still holds envelopes")
	}
	deadline := time.After(10 * time.Second)
	for got := 0; got < n; {
		runtime.GC()
		select {
		case <-collected:
			got++
		case <-deadline:
			t.Fatalf("only %d/%d payloads collected; mailbox retains drained buffers", got, n)
		}
	}
}

// Registry sharding: concurrent Spawn/Lookup/Stop across many names must be
// race-clean and keep counts exact.
func TestRegistryShardedConcurrentSpawnStop(t *testing.T) {
	sys := NewSystem(4)
	defer sys.Shutdown()

	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			refs := make([]*Ref, 0, perG)
			for i := 0; i < perG; i++ {
				refs = append(refs, sys.Spawn("worker", ReceiverFunc(func(*Context, any) {})))
			}
			for _, r := range refs {
				if got, ok := sys.Lookup(r.Name()); !ok || got != r {
					t.Errorf("lookup %q failed after spawn", r.Name())
					return
				}
			}
			for _, r := range refs {
				r.Stop()
			}
		}()
	}
	wg.Wait()
	if n := sys.ActorCount(); n != 0 {
		t.Fatalf("ActorCount = %d after all stops, want 0", n)
	}
}

// The scheduler must actually steal: a single actor fanning out to children
// fills one worker's deque, and the other workers must take from it. Forces
// real parallelism — on one P the victim drains its own deque before a
// thief ever gets scheduled.
func TestStealAcrossWorkers(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))

	sys := NewSystem(4)
	defer sys.Shutdown()

	var hits atomic.Int64
	var spin atomic.Int64
	children := make([]*Ref, 256)
	for i := range children {
		children[i] = sys.Spawn("child", ReceiverFunc(func(ctx *Context, msg any) {
			for i := 0; i < 200; i++ { // give thieves a window
				spin.Add(1)
			}
			hits.Add(1)
		}))
	}
	fan := sys.Spawn("fan", ReceiverFunc(func(ctx *Context, msg any) {
		for _, c := range children {
			ctx.Send(c, msg) // all land on this worker's own deque
		}
	}))

	deadline := time.Now().Add(20 * time.Second)
	for round := 0; sys.Steals.Load() == 0; round++ {
		if time.Now().After(deadline) {
			t.Fatal("no steals observed; work stays pinned to one worker")
		}
		fan.Tell(round)
		sys.AwaitQuiescence()
	}
	if hits.Load() == 0 {
		t.Fatal("no child deliveries")
	}
}
