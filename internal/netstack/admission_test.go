package netstack

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// Admission control: with MaxQueue configured, a request arriving while
// MaxPending are in flight waits in the bounded accept queue instead of
// being shed, and completes once a permit frees up.
func TestAdmissionQueueAdmitsBeyondMaxPending(t *testing.T) {
	g := &gate{}
	srv, err := Serve("127.0.0.1:0", g.service)
	if err != nil {
		t.Fatal(err)
	}
	srv.MaxPending = 1
	srv.MaxQueue = 4
	srv.DrainTimeout = 100 * time.Millisecond
	defer srv.Close()

	cli, err := Dial(srv.Addr(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	hog := cli.Call([]byte("hog"))
	deadline := time.Now().Add(5 * time.Second)
	for g.count() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("server never parked the hog request")
		}
		time.Sleep(time.Millisecond)
	}

	// The second request saturates MaxPending and must queue, not shed.
	queuedDone := make(chan error, 1)
	go func() {
		_, err := cli.CallSync([]byte("queued"))
		queuedDone <- err
	}()
	// Give the queued request time to park in the admission queue, then
	// release the hog: both must complete, nothing shed or rejected.
	time.Sleep(50 * time.Millisecond)
	select {
	case err := <-queuedDone:
		t.Fatalf("queued request finished while capacity was exhausted: %v", err)
	default:
	}
	g.releaseAll()
	// The hog's release frees the permit, admitting the queued request;
	// release rounds until it lands in the service.
	for i := 0; i < 100; i++ {
		g.releaseAll()
		time.Sleep(2 * time.Millisecond)
	}
	if err := <-queuedDone; err != nil {
		t.Fatalf("queued request failed: %v", err)
	}
	if _, err := hog.Await(); err != nil {
		t.Fatalf("hog request failed: %v", err)
	}
	if shed := srv.Shed.Load(); shed != 0 {
		t.Errorf("Shed = %d with admission queue room, want 0", shed)
	}
	if rej := srv.Rejected.Load(); rej != 0 {
		t.Errorf("Rejected = %d with admission queue room, want 0", rej)
	}
}

// A full admission queue turns requests away with ErrRejected — typed
// distinctly from ErrShed — and bumps the Rejected counter, not Shed.
func TestAdmissionQueueRejectsWhenFull(t *testing.T) {
	g := &gate{}
	srv, err := Serve("127.0.0.1:0", g.service)
	if err != nil {
		t.Fatal(err)
	}
	srv.MaxPending = 1
	srv.MaxQueue = 1
	srv.DrainTimeout = 100 * time.Millisecond
	defer srv.Close()

	cli, err := Dial(srv.Addr(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	hog := cli.Call([]byte("hog"))
	deadline := time.Now().Add(5 * time.Second)
	for g.count() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("server never parked the hog request")
		}
		time.Sleep(time.Millisecond)
	}
	queuedDone := make(chan error, 1)
	go func() {
		_, err := cli.CallSync([]byte("queued"))
		queuedDone <- err
	}()
	// Wait for the second request to occupy the queue slot.
	for srv.queued.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never entered the admission queue")
		}
		time.Sleep(time.Millisecond)
	}

	// Permit held, queue slot held: the third request must be rejected.
	_, err = cli.CallSync([]byte("overflow"))
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("overflow call = %v, want ErrRejected", err)
	}
	if errors.Is(err, ErrShed) {
		t.Fatal("ErrRejected must be distinct from ErrShed")
	}
	if !Retryable(err) {
		t.Error("ErrRejected must be retryable")
	}
	if rej := srv.Rejected.Load(); rej == 0 {
		t.Error("Server.Rejected counter not bumped")
	}
	if shed := srv.Shed.Load(); shed != 0 {
		t.Errorf("Shed = %d, want 0: rejection must not count as shed", shed)
	}
	if cli.Rejected.Load() == 0 {
		t.Error("Client.Rejected counter not bumped")
	}

	for i := 0; i < 100; i++ {
		g.releaseAll()
		time.Sleep(2 * time.Millisecond)
	}
	if err := <-queuedDone; err != nil {
		t.Fatalf("queued request failed: %v", err)
	}
	if _, err := hog.Await(); err != nil {
		t.Fatalf("hog request failed: %v", err)
	}
}

// Regression for the shed/breaker classification bugfix: a shed response
// comes from a healthy-but-loaded server, so sustained shedding must leave
// the client's breaker closed. (Before the fix each shed fed
// Breaker.onFailure and an open-loop sweep measured breaker behavior
// instead of the saturation knee.)
func TestBreakerStaysClosedUnderSustainedShedding(t *testing.T) {
	g := &gate{}
	srv, err := Serve("127.0.0.1:0", g.service)
	if err != nil {
		t.Fatal(err)
	}
	srv.MaxPending = 1
	srv.DrainTimeout = 100 * time.Millisecond
	defer srv.Close()

	cli, err := Dial(srv.Addr(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.Breaker = NewBreaker(BreakerPolicy{Threshold: 2, Cooldown: time.Hour})

	hog := cli.Call([]byte("hog"))
	deadline := time.Now().Add(5 * time.Second)
	for g.count() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("server never parked the hog request")
		}
		time.Sleep(time.Millisecond)
	}

	// Far more consecutive sheds than the breaker threshold.
	const sheds = 20
	for i := 0; i < sheds; i++ {
		if _, err := cli.CallSync([]byte("x")); !errors.Is(err, ErrShed) {
			t.Fatalf("overload call %d = %v, want ErrShed", i, err)
		}
	}
	if state := cli.Breaker.State(); state != "closed" {
		t.Fatalf("breaker state = %s after %d sheds, want closed", state, sheds)
	}
	if got := cli.Shed.Load(); got != sheds {
		t.Errorf("Client.Shed = %d, want %d", got, sheds)
	}

	// The loaded-but-healthy server serves normally once the hog frees the
	// permit — no cooldown to wait out. Retries cover the window between
	// the hog's release and its permit returning.
	cli.Retry = RetryPolicy{Max: 20, Backoff: 2 * time.Millisecond, Seed: 1}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
				g.releaseAll()
			}
		}
	}()
	defer close(stop)
	resp, err := cli.CallSync([]byte("after"))
	if err != nil || !bytes.Equal(resp, []byte("done")) {
		t.Fatalf("post-shed call = (%q, %v), want (done, nil)", resp, err)
	}
	if _, err := hog.Await(); err != nil {
		t.Errorf("hog call failed: %v", err)
	}
}

// Satellite regression: the retry backoff schedule is bounded and
// deterministic. Doubling stops at MaxBackoff, every delay carries
// half-jitter in [base/2, base], and a pinned seed reproduces the exact
// schedule while different seeds decorrelate.
func TestRetryBackoffBoundedSchedule(t *testing.T) {
	p := RetryPolicy{Max: 10, Backoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, Seed: 1}
	base := func(n int) time.Duration {
		d := 10 * time.Millisecond
		for i := 1; i < n && d < p.MaxBackoff; i++ {
			d *= 2
		}
		if d > p.MaxBackoff {
			d = p.MaxBackoff
		}
		return d
	}
	for n := 1; n <= 10; n++ {
		d := p.delay(n, 42)
		b := base(n)
		if d < b/2 || d > b {
			t.Errorf("delay(%d) = %v outside jitter window [%v, %v]", n, d, b/2, b)
		}
		if d > p.MaxBackoff {
			t.Errorf("delay(%d) = %v exceeds MaxBackoff %v", n, d, p.MaxBackoff)
		}
		// Deterministic per (seed, nonce, attempt).
		if again := p.delay(n, 42); again != d {
			t.Errorf("delay(%d) not deterministic: %v vs %v", n, d, again)
		}
	}
	// From attempt 4 on (10ms << 3 = 80ms) the base is pinned at the cap.
	for n := 4; n <= 10; n++ {
		d := p.delay(n, 42)
		if d < p.MaxBackoff/2 {
			t.Errorf("capped delay(%d) = %v below half the cap", n, d)
		}
	}

	// Different seeds (and different nonces) must produce different
	// schedules somewhere — lockstep retries are the bug this fixes.
	q := p
	q.Seed = 2
	differs := false
	for n := 1; n <= 10; n++ {
		if p.delay(n, 42) != q.delay(n, 42) || p.delay(n, 42) != p.delay(n, 43) {
			differs = true
			break
		}
	}
	if !differs {
		t.Error("jitter identical across seeds and nonces")
	}

	// Defaults: zero-valued policy still bounded by DefaultMaxBackoff.
	var d0 RetryPolicy
	for n := 1; n <= 20; n++ {
		if d := d0.delay(n, 7); d > DefaultMaxBackoff {
			t.Errorf("default delay(%d) = %v exceeds DefaultMaxBackoff", n, d)
		}
	}
}
