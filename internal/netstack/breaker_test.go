package netstack

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"renaissance/internal/chaos"
	"renaissance/internal/futures"
)

func TestBreakerStateMachine(t *testing.T) {
	b := NewBreaker(BreakerPolicy{Threshold: 3, Cooldown: 20 * time.Millisecond})
	if b.State() != "closed" {
		t.Fatalf("initial state = %s", b.State())
	}
	// Threshold-1 failures keep it closed; one success resets the ladder.
	b.onFailure()
	b.onFailure()
	b.onSuccess()
	b.onFailure()
	b.onFailure()
	if b.State() != "closed" {
		t.Fatalf("state after interleaved failures = %s, want closed", b.State())
	}
	b.onFailure() // third consecutive: trips
	if b.State() != "open" {
		t.Fatalf("state after threshold failures = %s, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow while open = %v, want ErrBreakerOpen", err)
	}

	// After the cooldown exactly one probe is admitted.
	time.Sleep(25 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe not admitted after cooldown: %v", err)
	}
	if b.State() != "half-open" {
		t.Fatalf("state = %s, want half-open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("second concurrent probe admitted in half-open")
	}

	// A failed probe re-opens; a successful one closes.
	b.onFailure()
	if b.State() != "open" {
		t.Fatalf("state after failed probe = %s, want open", b.State())
	}
	time.Sleep(25 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe not admitted: %v", err)
	}
	b.onSuccess()
	if b.State() != "closed" {
		t.Fatalf("state after successful probe = %s, want closed", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("Allow after close: %v", err)
	}
}

func TestBreakerNilPassThrough(t *testing.T) {
	b := NewBreaker(BreakerPolicy{Threshold: 0}) // disabled
	if b != nil {
		t.Fatal("Threshold 0 did not disable the breaker")
	}
	if err := b.Allow(); err != nil {
		t.Errorf("nil breaker Allow = %v", err)
	}
	b.onSuccess()
	b.onFailure()
	if b.State() != "closed" {
		t.Errorf("nil breaker State = %s", b.State())
	}
}

func TestBreakerHalfOpenSingleProbeRace(t *testing.T) {
	b := NewBreaker(BreakerPolicy{Threshold: 1, Cooldown: 5 * time.Millisecond})
	b.onFailure()
	time.Sleep(10 * time.Millisecond)
	var wg sync.WaitGroup
	var wins int64
	var mu sync.Mutex
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.Allow() == nil {
				mu.Lock()
				wins++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if wins != 1 {
		t.Errorf("%d callers won the half-open probe slot, want 1", wins)
	}
}

// Satellite regression: retry classification. ErrShed, ErrBreakerOpen, IO
// and network failures, and injected chaos faults back off and retry;
// ErrClosed and application-level errors fail fast.
func TestRetryableClassification(t *testing.T) {
	retryable := []error{
		ErrShed,
		ErrBreakerOpen,
		fmt.Errorf("attempt 3: %w", ErrShed), // wrapped
		io.EOF,
		io.ErrUnexpectedEOF,
		io.ErrClosedPipe,
		net.ErrClosed,
		&net.OpError{Op: "read", Err: errors.New("connection reset")},
		&chaos.InjectedError{Point: "netstack.read"},
		fmt.Errorf("wrapped: %w", &chaos.InjectedError{Point: "netstack.write"}),
	}
	for _, err := range retryable {
		if !Retryable(err) {
			t.Errorf("Retryable(%v) = false, want true", err)
		}
	}
	final := []error{
		nil,
		ErrClosed,
		fmt.Errorf("call: %w", ErrClosed),
		errors.New("application rejected the request"),
	}
	for _, err := range final {
		if Retryable(err) {
			t.Errorf("Retryable(%v) = true, want false", err)
		}
	}
}

// gate is a service that parks requests until released, so tests can pin
// the server's in-flight count at will.
type gate struct {
	mu      sync.Mutex
	pending []*futures.Promise[[]byte]
}

func (g *gate) service(req []byte) *futures.Future[[]byte] {
	p := futures.NewPromise[[]byte]()
	g.mu.Lock()
	g.pending = append(g.pending, p)
	g.mu.Unlock()
	return p.Future()
}

func (g *gate) releaseAll() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, p := range g.pending {
		_ = p.Success([]byte("done"))
	}
	g.pending = nil
}

func (g *gate) count() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.pending)
}

func TestServerShedsBeyondMaxPending(t *testing.T) {
	g := &gate{}
	srv, err := Serve("127.0.0.1:0", g.service)
	if err != nil {
		t.Fatal(err)
	}
	srv.MaxPending = 2
	srv.DrainTimeout = 50 * time.Millisecond
	defer srv.Close()

	cli, err := Dial(srv.Addr(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Fill the pending window, waiting until the server holds both.
	f1 := cli.Call([]byte("a"))
	f2 := cli.Call([]byte("b"))
	deadline := time.Now().Add(5 * time.Second)
	for g.count() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("server never accepted the first two requests")
		}
		time.Sleep(time.Millisecond)
	}

	// The third request must be shed, typed as ErrShed, without retries.
	_, err = cli.CallSync([]byte("c"))
	if !errors.Is(err, ErrShed) {
		t.Fatalf("overload call = %v, want ErrShed", err)
	}
	if srv.Shed.Load() == 0 {
		t.Error("Server.Shed counter not bumped")
	}

	// Releasing the window lets both parked calls and new traffic through:
	// the shed response never poisoned the pooled connections.
	g.releaseAll()
	for _, f := range []*futures.Future[[]byte]{f1, f2} {
		resp, err := f.Await()
		if err != nil || !bytes.Equal(resp, []byte("done")) {
			t.Errorf("parked call = (%q, %v), want (done, nil)", resp, err)
		}
	}
	stop := make(chan struct{})
	var releaser sync.WaitGroup
	releaser.Add(1)
	go func() {
		defer releaser.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
				g.releaseAll()
			}
		}
	}()
	resp, err := cli.CallSync([]byte("after"))
	close(stop)
	releaser.Wait()
	if err != nil || !bytes.Equal(resp, []byte("done")) {
		t.Errorf("post-shed call = (%q, %v), want (done, nil)", resp, err)
	}
}

func TestClientRetriesShedRequests(t *testing.T) {
	// With a retry policy, a shed response backs off and retries; once the
	// window clears, the retry succeeds — load shedding composes with the
	// retry loop instead of failing the call outright.
	g := &gate{}
	srv, err := Serve("127.0.0.1:0", g.service)
	if err != nil {
		t.Fatal(err)
	}
	srv.MaxPending = 1
	srv.DrainTimeout = 50 * time.Millisecond
	defer srv.Close()

	cli, err := Dial(srv.Addr(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.Retry = RetryPolicy{Max: 5, Backoff: 5 * time.Millisecond}

	blocker := cli.Call([]byte("hog"))
	deadline := time.Now().Add(5 * time.Second)
	for g.count() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("server never parked the hog request")
		}
		time.Sleep(time.Millisecond)
	}

	// Free the window shortly after the second call starts retrying.
	go func() {
		time.Sleep(15 * time.Millisecond)
		for i := 0; i < 100; i++ {
			g.releaseAll()
			time.Sleep(2 * time.Millisecond)
		}
	}()
	resp, err := cli.CallSync([]byte("patient"))
	if err != nil || !bytes.Equal(resp, []byte("done")) {
		t.Fatalf("retried shed call = (%q, %v), want (done, nil)", resp, err)
	}
	if _, err := blocker.Await(); err != nil {
		t.Errorf("hog call failed: %v", err)
	}
}

func TestClientBreakerFailsFastAndRecovers(t *testing.T) {
	// After the server dies the breaker opens within Threshold failed
	// calls; further calls fail fast with ErrBreakerOpen instead of
	// redialing, until a half-open probe finds the service back.
	srv, err := Serve("127.0.0.1:0", echoService)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(srv.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.Breaker = NewBreaker(BreakerPolicy{Threshold: 2, Cooldown: 50 * time.Millisecond})
	cli.Timeout = 100 * time.Millisecond

	if resp, err := cli.CallSync([]byte("warm")); err != nil || !bytes.Equal(resp, []byte("warm")) {
		t.Fatalf("healthy call = (%q, %v)", resp, err)
	}
	srv.DrainTimeout = 10 * time.Millisecond
	_ = srv.Close()

	// Two failing calls trip the breaker (each call's attempts all fail).
	for i := 0; i < 2; i++ {
		if _, err := cli.CallSync([]byte("x")); err == nil {
			t.Fatal("call against closed server succeeded")
		}
	}
	if cli.Breaker.State() != "open" {
		t.Fatalf("breaker state = %s after repeated failures, want open", cli.Breaker.State())
	}
	if _, err := cli.CallSync([]byte("y")); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open-breaker call = %v, want ErrBreakerOpen", err)
	}

	// Bring a fresh server up on the same port so the half-open probe can
	// succeed and close the breaker again.
	srv2, err := Serve(srv.Addr(), echoService)
	if err != nil {
		t.Skipf("could not rebind %s: %v", srv.Addr(), err)
	}
	defer srv2.Close()
	time.Sleep(60 * time.Millisecond) // let the cooldown elapse
	cli.Retry = RetryPolicy{Max: 3, Backoff: 10 * time.Millisecond}
	resp, err := cli.CallSync([]byte("back"))
	if err != nil || !bytes.Equal(resp, []byte("back")) {
		t.Fatalf("post-recovery call = (%q, %v), want (back, nil)", resp, err)
	}
	if cli.Breaker.State() != "closed" {
		t.Errorf("breaker state = %s after recovery, want closed", cli.Breaker.State())
	}
}
