package netstack

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"renaissance/internal/futures"
)

// Regression: Server.Close used to block forever in wg.Wait because
// serveConn goroutines sat in readFrame on clients that never disconnect.
// With conn tracking + drain force-close, Close must return within the
// bounded drain window.
func TestServerCloseNeverDisconnectingClient(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoService)
	if err != nil {
		t.Fatal(err)
	}
	srv.DrainTimeout = 50 * time.Millisecond

	// A rude peer: connects, sends one request, then just sits there.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if resp, err := readFrame(conn); err != nil || string(resp) != "hi" {
		t.Fatalf("roundtrip = (%q, %v)", resp, err)
	}

	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Server.Close hung on a never-disconnecting client")
	}
}

// A service whose future never completes wedges the handler's drain; Close
// must still return, with ErrDrainTimeout.
func TestServerCloseWedgedService(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(req []byte) *futures.Future[[]byte] {
		return futures.NewPromise[[]byte]().Future() // never completed
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.DrainTimeout = 50 * time.Millisecond
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the server pick the request up

	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if !errors.Is(err, ErrDrainTimeout) {
			t.Errorf("close = %v, want ErrDrainTimeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Server.Close hung on a wedged service")
	}
}

// Regression: the client pool channel was never closed, so a Call racing
// Close could park forever on <-c.pool. The race must also be clean under
// the race detector.
func TestClientCallCloseRace(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoService)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for round := 0; round < 10; round++ {
		cli, err := Dial(srv.Addr(), 2)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Either a clean response or a close-related error; the
				// point is that the call terminates.
				_, _ = cli.CallSync([]byte("x"))
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = cli.Close()
		}()

		raceDone := make(chan struct{})
		go func() { wg.Wait(); close(raceDone) }()
		select {
		case <-raceDone:
		case <-time.After(10 * time.Second):
			t.Fatal("a Call racing Close parked forever")
		}
	}
}

func TestClientCallAfterCloseFailsFast(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoService)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := cli.CallSync([]byte("x"))
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("call after close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call after close parked")
	}
}

// Per-call deadline: a service that never answers must fail the call with
// a timeout instead of blocking CallSync forever.
func TestClientPerCallDeadline(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(req []byte) *futures.Future[[]byte] {
		return futures.NewPromise[[]byte]().Future() // never completed
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.DrainTimeout = 50 * time.Millisecond
	defer srv.Close()
	cli, err := Dial(srv.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.Timeout = 50 * time.Millisecond

	start := time.Now()
	_, err = cli.CallSync([]byte("never"))
	if err == nil {
		t.Fatal("call against silent service succeeded")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Errorf("err = %v, want net timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline not enforced: call took %v", elapsed)
	}

	// The timed-out connection was discarded; a redialed one still works
	// after the server starts answering. (Same client, fresh pool slot.)
	ok, err := Serve("127.0.0.1:0", echoService)
	if err != nil {
		t.Fatal(err)
	}
	defer ok.Close()
	cli2, err := Dial(ok.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	cli2.Timeout = time.Second
	if resp, err := cli2.CallSync([]byte("ok")); err != nil || string(resp) != "ok" {
		t.Errorf("healthy call = (%q, %v)", resp, err)
	}
}

// flakyEcho accepts connections, slamming the first n shut immediately and
// serving echo on the rest — a deterministic stand-in for transient
// connection failures.
func flakyEcho(t *testing.T, n int) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		accepted := 0
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepted++
			if accepted <= n {
				_ = conn.Close()
				continue
			}
			wg.Add(1)
			go func(conn net.Conn) {
				defer wg.Done()
				defer conn.Close()
				for {
					req, err := readFrame(conn)
					if err != nil {
						return
					}
					if err := writeFrame(conn, req); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), func() { _ = ln.Close(); wg.Wait() }
}

// Retry-with-backoff: the first pooled connection (and the first redial)
// die immediately; the retry policy must redial until a healthy connection
// answers.
func TestClientRetryBackoff(t *testing.T) {
	addr, stop := flakyEcho(t, 2)
	defer stop()

	cli, err := Dial(addr, 1) // conn #1: doomed
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.Retry = RetryPolicy{Max: 3, Backoff: 5 * time.Millisecond}

	resp, err := cli.CallSync([]byte("persistent"))
	if err != nil {
		t.Fatalf("call with retries failed: %v", err)
	}
	if !bytes.Equal(resp, []byte("persistent")) {
		t.Errorf("resp = %q", resp)
	}
}

func TestClientNoRetryByDefault(t *testing.T) {
	addr, stop := flakyEcho(t, 1)
	defer stop()
	cli, err := Dial(addr, 1) // conn #1: doomed
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.CallSync([]byte("x")); err == nil {
		t.Error("call over a dead connection succeeded without retries")
	}
}

// The pool must not shrink across discarded connections: poolSize serial
// failures followed by recoveries still leave every slot usable.
func TestClientPoolSurvivesDiscards(t *testing.T) {
	addr, stop := flakyEcho(t, 4)
	defer stop()
	cli, err := Dial(addr, 4) // all four initial conns doomed
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.Retry = RetryPolicy{Max: 2, Backoff: time.Millisecond}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := []byte(fmt.Sprintf("m-%d", i))
			resp, err := cli.CallSync(msg)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(resp, msg) {
				errs <- fmt.Errorf("mismatch %q vs %q", msg, resp)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
