package netstack

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"renaissance/internal/futures"
)

func echoService(req []byte) *futures.Future[[]byte] {
	return futures.Completed(append([]byte(nil), req...))
}

func startEcho(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv, err := Serve("127.0.0.1:0", echoService)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(srv.Addr(), 4)
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cli.Close()
		srv.Close()
	})
	return srv, cli
}

func TestEchoRoundTrip(t *testing.T) {
	_, cli := startEcho(t)
	resp, err := cli.CallSync([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "hello" {
		t.Errorf("resp = %q", resp)
	}
}

func TestEmptyPayload(t *testing.T) {
	_, cli := startEcho(t)
	resp, err := cli.CallSync(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 0 {
		t.Errorf("resp = %q, want empty", resp)
	}
}

func TestLargePayload(t *testing.T) {
	_, cli := startEcho(t)
	big := bytes.Repeat([]byte("x"), 1<<20)
	resp, err := cli.CallSync(big)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, big) {
		t.Error("large payload corrupted")
	}
}

func TestConcurrentCalls(t *testing.T) {
	srv, cli := startEcho(t)
	const calls = 100
	var wg sync.WaitGroup
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := []byte(fmt.Sprintf("msg-%d", i))
			resp, err := cli.CallSync(msg)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(resp, msg) {
				errs <- fmt.Errorf("mismatch: sent %q got %q", msg, resp)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if srv.Requests.Load() != calls {
		t.Errorf("server handled %d requests, want %d", srv.Requests.Load(), calls)
	}
}

func TestAsyncFutureComposition(t *testing.T) {
	_, cli := startEcho(t)
	f := futures.Map(cli.Call([]byte("ping")), func(b []byte) string {
		return strings.ToUpper(string(b))
	})
	v, err := f.Await()
	if err != nil || v != "PING" {
		t.Errorf("composed = (%q, %v)", v, err)
	}
}

func TestServiceError(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(req []byte) *futures.Future[[]byte] {
		return futures.Failed[[]byte](errors.New("backend down"))
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	resp, err := cli.CallSync([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(resp), "ERR:") {
		t.Errorf("resp = %q, want error marker", resp)
	}
}

func TestDeferredServiceResponse(t *testing.T) {
	// The service answers asynchronously, after the handler returned.
	srv, err := Serve("127.0.0.1:0", func(req []byte) *futures.Future[[]byte] {
		return futures.Async(func() ([]byte, error) {
			time.Sleep(10 * time.Millisecond)
			return append([]byte("late:"), req...), nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	resp, err := cli.CallSync([]byte("req"))
	if err != nil || string(resp) != "late:req" {
		t.Errorf("resp = (%q, %v)", resp, err)
	}
}

func TestClientCloseFailsCalls(t *testing.T) {
	srv, cli := startEcho(t)
	_ = srv
	cli.Close()
	_, err := cli.CallSync([]byte("x"))
	if err == nil {
		t.Error("call on closed client succeeded")
	}
	// Close is idempotent.
	if err := cli.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoService)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestDialBadAddress(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 1); err == nil {
		t.Skip("port 1 unexpectedly open")
	}
}

func TestFrameCodec(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("framed")
	if err := writeFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("decoded %q", got)
	}
	// Truncated frame errors.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 10, 'x'})
	if _, err := readFrame(&buf); err == nil {
		t.Error("truncated frame accepted")
	}
	// Oversized frame rejected.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := readFrame(&buf); err == nil {
		t.Error("oversized frame accepted")
	}
}
