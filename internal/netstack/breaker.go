// Client-side fault domain: a per-service circuit breaker and the retry
// classification that decides which errors are worth backing off on.
//
// The breaker is the classic three-state machine. Closed passes calls
// through and counts consecutive failures; Threshold failures open it.
// Open fails calls fast with ErrBreakerOpen until Cooldown elapses, then
// half-open admits exactly one probe: a successful probe closes the
// breaker, a failed one re-opens it for another Cooldown. All transitions
// are lock-free (state/failure/deadline atomics plus a probe CAS), so the
// breaker adds two atomic loads to a healthy call.
package netstack

import (
	"errors"
	"io"
	"net"
	"sync/atomic"
	"time"

	"renaissance/internal/chaos"
)

// ErrShed is returned by Client calls whose request the server rejected
// under load shedding (see Server.MaxPending). It is retryable: the
// request was never executed. A shed response is an overload signal from a
// live server, so it does not count against the circuit breaker's failure
// ladder.
var ErrShed = errors.New("netstack: request shed by server")

// ErrRejected is returned by Client calls whose request the server's
// admission control turned away because the bounded accept queue in front
// of MaxPending was full (see Server.MaxQueue). Like ErrShed it is
// retryable and breaker-neutral; the two are distinct so callers can tell
// queue overflow (rejected) from queueless shedding (shed).
var ErrRejected = errors.New("netstack: request rejected by admission control")

// ErrBreakerOpen is returned by Client calls failed fast by an open
// circuit breaker. It is retryable: a later attempt may find the breaker
// half-open and probe the service.
var ErrBreakerOpen = errors.New("netstack: circuit breaker open")

// DefaultCooldown is the open-state duration when BreakerPolicy.Cooldown
// is unset.
const DefaultCooldown = 100 * time.Millisecond

// BreakerPolicy configures a circuit breaker.
type BreakerPolicy struct {
	// Threshold is the consecutive-failure count that opens the breaker.
	Threshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe; 0 means DefaultCooldown.
	Cooldown time.Duration
}

// breaker states
const (
	breakerClosed int32 = iota
	breakerOpen
	breakerHalfOpen
)

// Breaker is a three-state circuit breaker shared by every call of one
// client (one service, in Finagle terms).
type Breaker struct {
	threshold int32
	cooldown  time.Duration
	state     atomic.Int32
	failures  atomic.Int32
	until     atomic.Int64 // unix nanos when the open state expires
	probing   atomic.Bool  // the single half-open probe slot
}

// NewBreaker creates a breaker from the policy; a Threshold <= 0 returns
// nil (breaker disabled), which every method treats as pass-through.
func NewBreaker(p BreakerPolicy) *Breaker {
	if p.Threshold <= 0 {
		return nil
	}
	cd := p.Cooldown
	if cd <= 0 {
		cd = DefaultCooldown
	}
	return &Breaker{threshold: int32(p.Threshold), cooldown: cd}
}

// State returns the current state as a string ("closed", "open",
// "half-open"), for logs and tests.
func (b *Breaker) State() string {
	if b == nil {
		return "closed"
	}
	switch b.state.Load() {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// Allow reports whether a call may proceed, transitioning open →
// half-open when the cooldown has elapsed. In half-open only one caller
// wins the probe slot; the rest fail fast.
func (b *Breaker) Allow() error {
	if b == nil {
		return nil
	}
	switch b.state.Load() {
	case breakerClosed:
		return nil
	case breakerOpen:
		if time.Now().UnixNano() < b.until.Load() {
			return ErrBreakerOpen
		}
		if !b.state.CompareAndSwap(breakerOpen, breakerHalfOpen) {
			return ErrBreakerOpen // another caller transitioned first
		}
		b.probing.Store(false)
		fallthrough
	default: // half-open: admit exactly one probe
		if b.probing.CompareAndSwap(false, true) {
			return nil
		}
		return ErrBreakerOpen
	}
}

// onSuccess records a successful call: it resets the failure ladder and
// closes the breaker from any state.
func (b *Breaker) onSuccess() {
	if b == nil {
		return
	}
	b.failures.Store(0)
	b.state.Store(breakerClosed)
	b.probing.Store(false)
}

// onFailure records a failed call: a failed half-open probe re-opens the
// breaker immediately; in closed, Threshold consecutive failures open it.
func (b *Breaker) onFailure() {
	if b == nil {
		return
	}
	if b.state.Load() == breakerHalfOpen {
		b.trip()
		return
	}
	if b.failures.Add(1) >= b.threshold {
		b.trip()
	}
}

func (b *Breaker) trip() {
	b.until.Store(time.Now().Add(b.cooldown).UnixNano())
	b.state.Store(breakerOpen)
	b.failures.Store(0)
	b.probing.Store(false)
}

// Retryable classifies a Client call error: true means transient — worth
// a backoff and another attempt (shed and rejected requests, an open
// breaker, IO and dial failures, injected faults) — false means retrying cannot help
// (closed client, application-level failures), so callers should fail
// fast. The client's own retry loop consults it, stopping early on a
// non-retryable error however many retries the policy allows.
func Retryable(err error) bool {
	if err == nil || errors.Is(err, ErrClosed) {
		return false
	}
	if errors.Is(err, ErrShed) || errors.Is(err, ErrRejected) || errors.Is(err, ErrBreakerOpen) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) || errors.Is(err, net.ErrClosed) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.ErrClosedPipe) {
		return true
	}
	var inj *chaos.InjectedError
	return errors.As(err, &inj)
}
