// Package netstack implements a small asynchronous request/response
// framework over TCP loopback in the style of Twitter Finagle on Netty,
// used by the finagle-http and finagle-chirper benchmarks (Table 1:
// "network stack, futures, atomics / message-passing"). As in the paper,
// network communication is encoded as multiple threads exercising the
// network stack within a single process over the loopback interface
// (paper §2.2).
//
// The wire protocol is a 4-byte big-endian length prefix followed by the
// payload. Servers answer each request with a service function returning a
// future; clients multiplex calls over a connection pool and return
// futures.
package netstack

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"renaissance/internal/futures"
	"renaissance/internal/metrics"
)

// MaxFrame bounds a single message; larger frames are rejected as corrupt.
const MaxFrame = 16 << 20

// ErrClosed is returned by calls on a closed client or server.
var ErrClosed = errors.New("netstack: closed")

// Service handles one request and eventually produces a response.
type Service func(req []byte) *futures.Future[[]byte]

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("netstack: frame of %d bytes exceeds limit", n)
	}
	metrics.IncArray()
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Server accepts loopback connections and serves requests with a Service.
type Server struct {
	ln     net.Listener
	svc    Service
	wg     sync.WaitGroup
	closed atomic.Bool
	// Requests counts served requests, for benchmark validation.
	Requests atomic.Int64
}

// Serve starts a server on the given address ("127.0.0.1:0" picks a free
// port).
func Serve(addr string, svc Service) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, svc: svc}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	var writeMu sync.Mutex
	var pending sync.WaitGroup
	for {
		req, err := readFrame(conn)
		if err != nil {
			break
		}
		metrics.IncAtomic()
		s.Requests.Add(1)
		metrics.IncIDynamic()
		fut := s.svc(req)
		pending.Add(1)
		fut.OnComplete(func(resp []byte, err error) {
			defer pending.Done()
			if err != nil {
				resp = append([]byte("ERR:"), err.Error()...)
			}
			metrics.IncSynch()
			writeMu.Lock()
			defer writeMu.Unlock()
			_ = writeFrame(conn, resp)
		})
	}
	pending.Wait()
}

// Close stops accepting and waits for in-flight connections to finish
// their current reads.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Client issues requests to a server over a pool of connections. Each
// pooled connection carries one request at a time (like a Finagle
// connection-pool client without HTTP/2-style multiplexing).
type Client struct {
	addr   string
	pool   chan net.Conn
	size   int
	closed atomic.Bool
	mu     sync.Mutex
	conns  []net.Conn
}

// Dial creates a client with the given connection-pool size.
func Dial(addr string, poolSize int) (*Client, error) {
	if poolSize <= 0 {
		poolSize = 4
	}
	c := &Client{addr: addr, pool: make(chan net.Conn, poolSize), size: poolSize}
	for i := 0; i < poolSize; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			_ = c.Close()
			return nil, err
		}
		c.mu.Lock()
		c.conns = append(c.conns, conn)
		c.mu.Unlock()
		c.pool <- conn
	}
	return c, nil
}

// Call sends the request and returns a future of the response. The request
// runs on its own goroutine; ordering across concurrent calls is not
// defined, matching asynchronous RPC clients.
func (c *Client) Call(req []byte) *futures.Future[[]byte] {
	p := futures.NewPromise[[]byte]()
	if c.closed.Load() {
		_ = p.Failure(ErrClosed)
		return p.Future()
	}
	go func() {
		metrics.IncPark()
		conn, ok := <-c.pool
		if !ok {
			_ = p.Failure(ErrClosed)
			return
		}
		resp, err := roundTrip(conn, req)
		// Return the connection before completing so dependent calls in
		// the continuation can acquire it.
		if c.closed.Load() {
			conn.Close()
		} else {
			c.pool <- conn
		}
		if err != nil {
			_ = p.Failure(err)
			return
		}
		_ = p.Success(resp)
	}()
	return p.Future()
}

func roundTrip(conn net.Conn, req []byte) ([]byte, error) {
	if err := writeFrame(conn, req); err != nil {
		return nil, err
	}
	return readFrame(conn)
}

// CallSync is a convenience blocking round trip.
func (c *Client) CallSync(req []byte) ([]byte, error) {
	return c.Call(req).Await()
}

// Close tears down the pool.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, conn := range c.conns {
		_ = conn.Close()
	}
	c.conns = nil
	return nil
}
