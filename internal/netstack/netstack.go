// Package netstack implements a small asynchronous request/response
// framework over TCP loopback in the style of Twitter Finagle on Netty,
// used by the finagle-http and finagle-chirper benchmarks (Table 1:
// "network stack, futures, atomics / message-passing"). As in the paper,
// network communication is encoded as multiple threads exercising the
// network stack within a single process over the loopback interface
// (paper §2.2).
//
// The wire protocol is a 4-byte big-endian length prefix followed by the
// payload. Servers answer each request with a service function returning a
// future; clients multiplex calls over a connection pool and return
// futures.
//
// Both endpoints have fault-tolerant teardown and deadline semantics: the
// server tracks live connections and force-closes them when a graceful
// drain exceeds its DrainTimeout, and the client supports per-call
// deadlines plus retry-with-backoff over redialed connections for
// transient dial/IO errors.
package netstack

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"renaissance/internal/chaos"
	"renaissance/internal/futures"
	"renaissance/internal/metrics"
)

// MaxFrame bounds a single message; larger frames are rejected as corrupt.
const MaxFrame = 16 << 20

// DefaultDrainTimeout bounds Server.Close's graceful-drain phase (and the
// post-force-close wait) when Server.DrainTimeout is unset.
const DefaultDrainTimeout = 2 * time.Second

// ErrClosed is returned by calls on a closed client or server.
var ErrClosed = errors.New("netstack: closed")

// ErrDrainTimeout is returned by Server.Close when connection handlers are
// still wedged after the live connections were force-closed — e.g. a
// service future that never completes.
var ErrDrainTimeout = errors.New("netstack: drain timeout exceeded")

// Service handles one request and eventually produces a response.
type Service func(req []byte) *futures.Future[[]byte]

// shedPayload is the reserved response payload announcing that the server
// dropped the request under load shedding; the client converts it to
// ErrShed. It rides the server's "ERR:"-prefix error convention.
var shedPayload = []byte("ERR:shed")

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	if chaos.Maybe("netstack.read") {
		return nil, chaos.Fail("netstack.read")
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("netstack: frame of %d bytes exceeds limit", n)
	}
	metrics.IncArray()
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	if chaos.Maybe("netstack.write") {
		return chaos.Fail("netstack.write")
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Server accepts loopback connections and serves requests with a Service.
type Server struct {
	ln     net.Listener
	svc    Service
	wg     sync.WaitGroup
	closed atomic.Bool
	// DrainTimeout bounds how long Close waits for connections to drain
	// gracefully before force-closing them (DefaultDrainTimeout when 0).
	DrainTimeout time.Duration
	// MaxPending bounds concurrently in-flight requests (accepted but not
	// yet answered) across all connections; excess requests are rejected
	// immediately with a shed response instead of queueing behind the
	// service. 0 disables shedding.
	MaxPending int

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	// Requests counts served requests, for benchmark validation.
	Requests atomic.Int64
	// Shed counts requests rejected under load shedding. Shed requests are
	// not counted in Requests — they never reached the service.
	Shed     atomic.Int64
	inFlight atomic.Int64
}

// Serve starts a server on the given address ("127.0.0.1:0" picks a free
// port).
func Serve(addr string, svc Service) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, svc: svc, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !s.track(conn) {
			_ = conn.Close() // lost the race with Close
			continue
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// track registers a live connection; it refuses (and the caller closes the
// conn) when the server is already shutting down, so no connection can slip
// past the force-close in Close.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.untrack(conn)
	defer conn.Close()
	var writeMu sync.Mutex
	var pending sync.WaitGroup
	for {
		req, err := readFrame(conn)
		if err != nil {
			break
		}
		if s.MaxPending > 0 && s.inFlight.Add(1) > int64(s.MaxPending) {
			// Bounded-queue load shedding: answer immediately with the
			// shed marker instead of queueing behind the service. A shed
			// request is a dropped message in the fault-path accounting.
			s.inFlight.Add(-1)
			s.Shed.Add(1)
			metrics.IncDeadLetter()
			metrics.IncSynch()
			writeMu.Lock()
			_ = writeFrame(conn, shedPayload)
			writeMu.Unlock()
			continue
		}
		metrics.IncAtomic()
		s.Requests.Add(1)
		metrics.IncIDynamic()
		fut := s.svc(req)
		pending.Add(1)
		fut.OnComplete(func(resp []byte, err error) {
			defer pending.Done()
			if s.MaxPending > 0 {
				s.inFlight.Add(-1)
			}
			if err != nil {
				resp = append([]byte("ERR:"), err.Error()...)
			}
			metrics.IncSynch()
			writeMu.Lock()
			defer writeMu.Unlock()
			_ = writeFrame(conn, resp)
		})
	}
	pending.Wait()
}

// Close stops accepting and tears the server down in two bounded phases:
// it first waits up to DrainTimeout for connections to drain gracefully
// (clients disconnecting on their own), then force-closes every live
// connection — unblocking handlers stuck in readFrame on peers that never
// disconnect — and waits up to DrainTimeout again for the handlers to
// finish. ErrDrainTimeout is returned if they still have not.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	err := s.ln.Close()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	drain := s.DrainTimeout
	if drain <= 0 {
		drain = DefaultDrainTimeout
	}
	timer := time.NewTimer(drain)
	defer timer.Stop()
	select {
	case <-done:
		return err
	case <-timer.C:
	}

	s.mu.Lock()
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()

	timer.Reset(drain)
	select {
	case <-done:
		return err
	case <-timer.C:
		return ErrDrainTimeout
	}
}

// RetryPolicy configures the client's handling of transient dial and IO
// errors: a failed round trip closes the bad connection and is retried on
// a freshly dialed one, sleeping Backoff (doubled each retry) between
// attempts.
type RetryPolicy struct {
	// Max is the number of retries after the first attempt; 0 disables
	// retrying.
	Max int
	// Backoff is the sleep before the first retry (doubled each further
	// retry). Defaults to 10ms when retries are enabled and Backoff is 0.
	Backoff time.Duration
}

// poolConn is one pool slot. Exactly poolSize tokens circulate through the
// pool channel, so a slot whose connection died (conn == nil) is redialed
// lazily by the next caller instead of shrinking the pool.
type poolConn struct {
	conn net.Conn
}

// Client issues requests to a server over a pool of connections. Each
// pooled connection carries one request at a time (like a Finagle
// connection-pool client without HTTP/2-style multiplexing).
type Client struct {
	addr string
	pool chan *poolConn
	size int
	// Timeout bounds each round trip (frame write + response read) when
	// > 0; a timed-out connection is discarded and redialed.
	Timeout time.Duration
	// Retry configures retry-with-backoff for transient dial/IO errors.
	// Only errors Retryable reports true for are retried; the rest fail
	// fast whatever Max allows.
	Retry RetryPolicy
	// Breaker, when non-nil (see NewBreaker), fail-fasts calls while the
	// service is unhealthy: every attempt consults it, every outcome feeds
	// it. Shed responses count as failures — sustained overload opens the
	// breaker and backpressure moves into the client.
	Breaker *Breaker

	closed atomic.Bool
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
}

// Dial creates a client with the given connection-pool size.
func Dial(addr string, poolSize int) (*Client, error) {
	if poolSize <= 0 {
		poolSize = 4
	}
	c := &Client{
		addr:  addr,
		pool:  make(chan *poolConn, poolSize),
		size:  poolSize,
		conns: make(map[net.Conn]struct{}),
	}
	for i := 0; i < poolSize; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			_ = c.Close()
			return nil, err
		}
		c.track(conn)
		c.pool <- &poolConn{conn: conn}
	}
	return c, nil
}

func (c *Client) track(conn net.Conn) {
	c.mu.Lock()
	c.conns[conn] = struct{}{}
	c.mu.Unlock()
}

// acquire checks a slot out of the pool, redialing its connection if a
// previous error discarded it. ErrClosed means the client was closed.
func (c *Client) acquire() (*poolConn, error) {
	metrics.IncPark()
	pc, ok := <-c.pool
	if !ok {
		return nil, ErrClosed
	}
	if pc.conn == nil {
		conn, err := net.Dial("tcp", c.addr)
		if err != nil {
			c.release(pc) // return the token so the pool does not shrink
			return nil, err
		}
		c.track(conn)
		pc.conn = conn
	}
	return pc, nil
}

// release returns a slot to the pool. If the client was closed meanwhile
// the slot's connection is torn down instead; the pool channel is only
// ever sent to under mu and before Close closes it, so the send cannot
// panic. The channel is buffered to the token count, so the send cannot
// block either.
func (c *Client) release(pc *poolConn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		if pc.conn != nil {
			delete(c.conns, pc.conn)
			_ = pc.conn.Close()
			pc.conn = nil
		}
		return
	}
	c.pool <- pc
}

// discard drops a slot's broken connection and returns the empty token to
// the pool for lazy redial.
func (c *Client) discard(pc *poolConn) {
	c.mu.Lock()
	if pc.conn != nil {
		delete(c.conns, pc.conn)
		_ = pc.conn.Close()
		pc.conn = nil
	}
	c.mu.Unlock()
	c.release(pc)
}

// Call sends the request and returns a future of the response. The request
// runs on its own goroutine; ordering across concurrent calls is not
// defined, matching asynchronous RPC clients. Transient dial/IO errors are
// retried per the client's RetryPolicy; each attempt is bounded by the
// client's Timeout.
func (c *Client) Call(req []byte) *futures.Future[[]byte] {
	p := futures.NewPromise[[]byte]()
	if c.closed.Load() {
		_ = p.Failure(ErrClosed)
		return p.Future()
	}
	go func() {
		attempts := 1 + c.Retry.Max
		backoff := c.Retry.Backoff
		if backoff <= 0 {
			backoff = 10 * time.Millisecond
		}
		var lastErr error
		for attempt := 0; attempt < attempts; attempt++ {
			if attempt > 0 {
				time.Sleep(backoff)
				backoff *= 2
			}
			if err := c.Breaker.Allow(); err != nil {
				// Fail fast without touching the pool; a later attempt may
				// find the breaker half-open and probe.
				lastErr = err
				continue
			}
			pc, err := c.acquire()
			if err == ErrClosed {
				_ = p.Failure(ErrClosed)
				return
			}
			if err != nil {
				c.Breaker.onFailure()
				lastErr = err // transient dial error; back off and retry
				continue
			}
			resp, err := c.roundTrip(pc.conn, req)
			if err == nil && bytes.Equal(resp, shedPayload) {
				// The server dropped the request under load; the
				// connection itself is healthy, so keep it pooled.
				c.Breaker.onFailure()
				c.release(pc)
				lastErr = ErrShed
				continue
			}
			if err == nil {
				c.Breaker.onSuccess()
				// Return the connection before completing so dependent
				// calls in the continuation can acquire it.
				c.release(pc)
				_ = p.Success(resp)
				return
			}
			c.Breaker.onFailure()
			lastErr = err
			c.discard(pc)
			if c.closed.Load() || !Retryable(err) {
				break
			}
		}
		_ = p.Failure(lastErr)
	}()
	return p.Future()
}

// roundTrip performs one request/response exchange, applying the client's
// per-call deadline when set.
func (c *Client) roundTrip(conn net.Conn, req []byte) ([]byte, error) {
	if c.Timeout > 0 {
		if err := conn.SetDeadline(time.Now().Add(c.Timeout)); err != nil {
			return nil, err
		}
		defer conn.SetDeadline(time.Time{})
	}
	if err := writeFrame(conn, req); err != nil {
		return nil, err
	}
	return readFrame(conn)
}

// CallSync is a convenience blocking round trip.
func (c *Client) CallSync(req []byte) ([]byte, error) {
	return c.Call(req).Await()
}

// Close tears down the pool. In-flight calls observe a connection error or
// ErrClosed; their slots are torn down on release instead of re-entering
// the pool. Closing the pool channel makes any Call parked in acquire fail
// with ErrClosed instead of waiting forever.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	close(c.pool)
	for pc := range c.pool { // drain idle tokens
		pc.conn = nil
	}
	for conn := range c.conns {
		_ = conn.Close()
	}
	c.conns = nil
	return nil
}
