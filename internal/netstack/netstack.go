// Package netstack implements a small asynchronous request/response
// framework over TCP loopback in the style of Twitter Finagle on Netty,
// used by the finagle-http and finagle-chirper benchmarks (Table 1:
// "network stack, futures, atomics / message-passing"). As in the paper,
// network communication is encoded as multiple threads exercising the
// network stack within a single process over the loopback interface
// (paper §2.2).
//
// The wire protocol is a 4-byte big-endian length prefix followed by the
// payload. Servers answer each request with a service function returning a
// future; clients multiplex calls over a connection pool and return
// futures.
//
// Both endpoints have fault-tolerant teardown and deadline semantics: the
// server tracks live connections and force-closes them when a graceful
// drain exceeds its DrainTimeout, and the client supports per-call
// deadlines plus retry-with-backoff over redialed connections for
// transient dial/IO errors.
package netstack

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"renaissance/internal/chaos"
	"renaissance/internal/futures"
	"renaissance/internal/metrics"
)

// MaxFrame bounds a single message; larger frames are rejected as corrupt.
const MaxFrame = 16 << 20

// DefaultDrainTimeout bounds Server.Close's graceful-drain phase (and the
// post-force-close wait) when Server.DrainTimeout is unset.
const DefaultDrainTimeout = 2 * time.Second

// ErrClosed is returned by calls on a closed client or server.
var ErrClosed = errors.New("netstack: closed")

// ErrDrainTimeout is returned by Server.Close when connection handlers are
// still wedged after the live connections were force-closed — e.g. a
// service future that never completes.
var ErrDrainTimeout = errors.New("netstack: drain timeout exceeded")

// Service handles one request and eventually produces a response.
type Service func(req []byte) *futures.Future[[]byte]

// shedPayload is the reserved response payload announcing that the server
// dropped the request under load shedding; the client converts it to
// ErrShed. It rides the server's "ERR:"-prefix error convention.
var shedPayload = []byte("ERR:shed")

// rejectPayload is the reserved response payload announcing that the
// admission queue in front of MaxPending was full; the client converts it
// to ErrRejected. Distinct from shedPayload so clients and load generators
// can tell "the service queue overflowed" (reject) from "the service was
// bypassed entirely" (shed, MaxQueue unset).
var rejectPayload = []byte("ERR:reject")

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	if chaos.Maybe("netstack.read") {
		return nil, chaos.Fail("netstack.read")
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("netstack: frame of %d bytes exceeds limit", n)
	}
	metrics.IncArray()
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	if chaos.Maybe("netstack.write") {
		return chaos.Fail("netstack.write")
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Server accepts loopback connections and serves requests with a Service.
type Server struct {
	ln     net.Listener
	svc    Service
	wg     sync.WaitGroup
	closed atomic.Bool
	// DrainTimeout bounds how long Close waits for connections to drain
	// gracefully before force-closing them (DefaultDrainTimeout when 0).
	DrainTimeout time.Duration
	// MaxPending bounds concurrently in-flight requests (accepted but not
	// yet answered) across all connections; excess requests are rejected
	// immediately with a shed response instead of queueing behind the
	// service. 0 disables shedding.
	MaxPending int
	// MaxQueue, when > 0 alongside MaxPending, is admission control: a
	// bounded accept queue in front of the MaxPending in-flight limit.
	// Requests arriving while MaxPending are in flight wait in the queue
	// (blocking their connection's read loop — per-connection
	// backpressure) instead of being shed; only when the queue itself is
	// full is the request turned away, with a typed rejection
	// (ErrRejected) distinct from shed. Both limits are latched on the
	// first request, so set them before serving traffic.
	MaxQueue int

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	// Requests counts served requests, for benchmark validation.
	Requests atomic.Int64
	// Shed counts requests rejected under load shedding. Shed requests are
	// not counted in Requests — they never reached the service.
	Shed atomic.Int64
	// Rejected counts requests turned away by admission control because
	// the accept queue was full. Like shed requests, they never reached
	// the service.
	Rejected atomic.Int64

	queued    atomic.Int64  // admission-queue occupancy
	admitOnce sync.Once     // latches MaxPending/MaxQueue into admitSem
	admitSem  chan struct{} // in-flight permits; nil when MaxPending == 0
	closing   chan struct{} // closed by Close; unblocks queued waiters
}

// Serve starts a server on the given address ("127.0.0.1:0" picks a free
// port).
func Serve(addr string, svc Service) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln: ln, svc: svc,
		conns:   make(map[net.Conn]struct{}),
		closing: make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !s.track(conn) {
			_ = conn.Close() // lost the race with Close
			continue
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// track registers a live connection; it refuses (and the caller closes the
// conn) when the server is already shutting down, so no connection can slip
// past the force-close in Close.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// admission returns the in-flight permit semaphore, latching MaxPending on
// first use (nil when shedding is disabled).
func (s *Server) admission() chan struct{} {
	s.admitOnce.Do(func() {
		if s.MaxPending > 0 {
			s.admitSem = make(chan struct{}, s.MaxPending)
		}
	})
	return s.admitSem
}

// admitVerdict is the fate of one request under admission control.
type admitVerdict int

const (
	admitServe   admitVerdict = iota // request holds an in-flight permit
	admitShed                        // over capacity, no queue: shed
	admitReject                      // admission queue full: typed rejection
	admitClosing                     // server shutting down while queued
)

// admit applies admission control to one request: a free in-flight permit
// admits it immediately; otherwise, if a bounded accept queue is
// configured (MaxQueue) and has room, the request waits in it for a permit
// — blocking this connection's read loop, which is the backpressure — and
// only a full queue turns the request away. With no queue the verdict is
// the legacy immediate shed.
func (s *Server) admit() admitVerdict {
	sem := s.admission()
	if sem == nil {
		return admitServe
	}
	select {
	case sem <- struct{}{}:
		return admitServe
	default:
	}
	if s.MaxQueue > 0 {
		if s.queued.Add(1) <= int64(s.MaxQueue) {
			defer s.queued.Add(-1)
			metrics.IncPark()
			select {
			case sem <- struct{}{}:
				return admitServe
			case <-s.closing:
				return admitClosing
			}
		}
		s.queued.Add(-1)
		return admitReject
	}
	return admitShed
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.untrack(conn)
	defer conn.Close()
	var writeMu sync.Mutex
	var pending sync.WaitGroup
loop:
	for {
		req, err := readFrame(conn)
		if err != nil {
			break
		}
		switch s.admit() {
		case admitShed:
			// Bounded load shedding: answer immediately with the shed
			// marker instead of queueing behind the service. A shed
			// request is a dropped message in the fault-path accounting.
			s.Shed.Add(1)
			metrics.IncDeadLetter()
			metrics.IncSynch()
			writeMu.Lock()
			_ = writeFrame(conn, shedPayload)
			writeMu.Unlock()
			continue
		case admitReject:
			// Admission-control rejection: the accept queue in front of
			// the service is full. Typed distinctly from shed so clients
			// can count queue overflow separately.
			s.Rejected.Add(1)
			metrics.IncDeadLetter()
			metrics.IncSynch()
			writeMu.Lock()
			_ = writeFrame(conn, rejectPayload)
			writeMu.Unlock()
			continue
		case admitClosing:
			break loop
		}
		metrics.IncAtomic()
		s.Requests.Add(1)
		metrics.IncIDynamic()
		fut := s.svc(req)
		pending.Add(1)
		fut.OnComplete(func(resp []byte, err error) {
			defer pending.Done()
			if sem := s.admitSem; sem != nil {
				<-sem
			}
			if err != nil {
				resp = append([]byte("ERR:"), err.Error()...)
			}
			metrics.IncSynch()
			writeMu.Lock()
			defer writeMu.Unlock()
			_ = writeFrame(conn, resp)
		})
	}
	pending.Wait()
}

// Close stops accepting and tears the server down in two bounded phases:
// it first waits up to DrainTimeout for connections to drain gracefully
// (clients disconnecting on their own), then force-closes every live
// connection — unblocking handlers stuck in readFrame on peers that never
// disconnect — and waits up to DrainTimeout again for the handlers to
// finish. ErrDrainTimeout is returned if they still have not.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	close(s.closing) // unblock requests waiting in the admission queue
	err := s.ln.Close()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	drain := s.DrainTimeout
	if drain <= 0 {
		drain = DefaultDrainTimeout
	}
	timer := time.NewTimer(drain)
	defer timer.Stop()
	select {
	case <-done:
		return err
	case <-timer.C:
	}

	s.mu.Lock()
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()

	timer.Reset(drain)
	select {
	case <-done:
		return err
	case <-timer.C:
		return ErrDrainTimeout
	}
}

// DefaultMaxBackoff caps the exponential retry backoff when
// RetryPolicy.MaxBackoff is unset. Without a cap the doubling schedule
// reaches multi-second sleeps after a handful of transient failures.
const DefaultMaxBackoff = 250 * time.Millisecond

// RetryPolicy configures the client's handling of transient dial and IO
// errors: a failed round trip closes the bad connection and is retried on
// a freshly dialed one, sleeping an exponentially growing, capped,
// jittered backoff between attempts.
type RetryPolicy struct {
	// Max is the number of retries after the first attempt; 0 disables
	// retrying.
	Max int
	// Backoff is the base sleep before the first retry (doubled each
	// further retry). Defaults to 10ms when retries are enabled and
	// Backoff is 0.
	Backoff time.Duration
	// MaxBackoff caps the doubling; 0 means DefaultMaxBackoff.
	MaxBackoff time.Duration
	// Seed feeds the deterministic jitter stream. Clients sharing a seed
	// still decorrelate per call, but a pinned seed makes the whole
	// schedule reproducible in tests. 0 is a valid seed.
	Seed int64
}

// mix64 is a splitmix64 finalizer: the stateless full-avalanche mixer
// behind the jitter stream (same construction as the chaos engine's
// decision streams).
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// delay returns the sleep before retry n (n ≥ 1) of the call identified by
// nonce: the base backoff doubled per retry and capped at MaxBackoff, then
// half-jittered — uniform in [d/2, d] as a pure function of (Seed, nonce,
// n) — so synchronized clients spread out instead of retrying in lockstep,
// and a pinned seed reproduces the exact schedule.
func (p RetryPolicy) delay(n int, nonce uint64) time.Duration {
	d := p.Backoff
	if d <= 0 {
		d = 10 * time.Millisecond
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = DefaultMaxBackoff
	}
	for i := 1; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	h := mix64(uint64(p.Seed) ^ mix64(nonce<<8^uint64(n)))
	frac := float64(h>>11) / float64(1<<53) // uniform in [0, 1)
	half := d / 2
	return half + time.Duration(frac*float64(half))
}

// poolConn is one pool slot. Exactly poolSize tokens circulate through the
// pool channel, so a slot whose connection died (conn == nil) is redialed
// lazily by the next caller instead of shrinking the pool.
type poolConn struct {
	conn net.Conn
}

// Client issues requests to a server over a pool of connections. Each
// pooled connection carries one request at a time (like a Finagle
// connection-pool client without HTTP/2-style multiplexing).
type Client struct {
	addr string
	pool chan *poolConn
	size int
	// Timeout bounds each round trip (frame write + response read) when
	// > 0; a timed-out connection is discarded and redialed.
	Timeout time.Duration
	// Retry configures retry-with-backoff for transient dial/IO errors.
	// Only errors Retryable reports true for are retried; the rest fail
	// fast whatever Max allows.
	Retry RetryPolicy
	// Breaker, when non-nil (see NewBreaker), fail-fasts calls while the
	// service is unhealthy: every attempt consults it, and every
	// *service* outcome feeds it. Shed and rejected responses are
	// deliberately neither failures nor successes: a loaded server is a
	// healthy server, so sustained overload must not flip the breaker
	// open (which would make an open-loop saturation sweep measure
	// breaker behavior instead of the queueing knee). Overload
	// backpressure lives in the retry backoff instead.
	Breaker *Breaker

	// Shed counts responses the server answered with the load-shedding
	// marker; Rejected counts admission-control rejections. Both are
	// per-attempt counts, kept separately from the breaker's
	// failure ladder.
	Shed     atomic.Int64
	Rejected atomic.Int64

	closed  atomic.Bool
	callSeq atomic.Uint64 // per-call nonce feeding the jitter stream
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
}

// Dial creates a client with the given connection-pool size.
func Dial(addr string, poolSize int) (*Client, error) {
	if poolSize <= 0 {
		poolSize = 4
	}
	c := &Client{
		addr:  addr,
		pool:  make(chan *poolConn, poolSize),
		size:  poolSize,
		conns: make(map[net.Conn]struct{}),
	}
	for i := 0; i < poolSize; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			_ = c.Close()
			return nil, err
		}
		c.track(conn)
		c.pool <- &poolConn{conn: conn}
	}
	return c, nil
}

func (c *Client) track(conn net.Conn) {
	c.mu.Lock()
	c.conns[conn] = struct{}{}
	c.mu.Unlock()
}

// acquire checks a slot out of the pool, redialing its connection if a
// previous error discarded it. ErrClosed means the client was closed.
func (c *Client) acquire() (*poolConn, error) {
	metrics.IncPark()
	pc, ok := <-c.pool
	if !ok {
		return nil, ErrClosed
	}
	if pc.conn == nil {
		conn, err := net.Dial("tcp", c.addr)
		if err != nil {
			c.release(pc) // return the token so the pool does not shrink
			return nil, err
		}
		c.track(conn)
		pc.conn = conn
	}
	return pc, nil
}

// release returns a slot to the pool. If the client was closed meanwhile
// the slot's connection is torn down instead; the pool channel is only
// ever sent to under mu and before Close closes it, so the send cannot
// panic. The channel is buffered to the token count, so the send cannot
// block either.
func (c *Client) release(pc *poolConn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		if pc.conn != nil {
			delete(c.conns, pc.conn)
			_ = pc.conn.Close()
			pc.conn = nil
		}
		return
	}
	c.pool <- pc
}

// discard drops a slot's broken connection and returns the empty token to
// the pool for lazy redial.
func (c *Client) discard(pc *poolConn) {
	c.mu.Lock()
	if pc.conn != nil {
		delete(c.conns, pc.conn)
		_ = pc.conn.Close()
		pc.conn = nil
	}
	c.mu.Unlock()
	c.release(pc)
}

// Call sends the request and returns a future of the response. The request
// runs on its own goroutine; ordering across concurrent calls is not
// defined, matching asynchronous RPC clients. Transient dial/IO errors are
// retried per the client's RetryPolicy; each attempt is bounded by the
// client's Timeout.
func (c *Client) Call(req []byte) *futures.Future[[]byte] {
	p := futures.NewPromise[[]byte]()
	if c.closed.Load() {
		_ = p.Failure(ErrClosed)
		return p.Future()
	}
	go func() {
		attempts := 1 + c.Retry.Max
		nonce := c.callSeq.Add(1)
		var lastErr error
		for attempt := 0; attempt < attempts; attempt++ {
			if attempt > 0 {
				time.Sleep(c.Retry.delay(attempt, nonce))
			}
			if err := c.Breaker.Allow(); err != nil {
				// Fail fast without touching the pool; a later attempt may
				// find the breaker half-open and probe.
				lastErr = err
				continue
			}
			pc, err := c.acquire()
			if err == ErrClosed {
				_ = p.Failure(ErrClosed)
				return
			}
			if err != nil {
				c.Breaker.onFailure()
				lastErr = err // transient dial error; back off and retry
				continue
			}
			resp, err := c.roundTrip(pc.conn, req)
			if err == nil && bytes.Equal(resp, shedPayload) {
				// The server dropped the request under load. The
				// connection is healthy and the server answered, so keep
				// the connection pooled, count the shed, back off, and
				// retry — without feeding the breaker's failure ladder: a
				// loaded server is not a dead one.
				c.Shed.Add(1)
				c.release(pc)
				lastErr = ErrShed
				continue
			}
			if err == nil && bytes.Equal(resp, rejectPayload) {
				// Admission control turned the request away: the accept
				// queue was full. Same handling as shed, counted
				// separately.
				c.Rejected.Add(1)
				c.release(pc)
				lastErr = ErrRejected
				continue
			}
			if err == nil {
				c.Breaker.onSuccess()
				// Return the connection before completing so dependent
				// calls in the continuation can acquire it.
				c.release(pc)
				_ = p.Success(resp)
				return
			}
			c.Breaker.onFailure()
			lastErr = err
			c.discard(pc)
			if c.closed.Load() || !Retryable(err) {
				break
			}
		}
		_ = p.Failure(lastErr)
	}()
	return p.Future()
}

// roundTrip performs one request/response exchange, applying the client's
// per-call deadline when set.
func (c *Client) roundTrip(conn net.Conn, req []byte) ([]byte, error) {
	if c.Timeout > 0 {
		if err := conn.SetDeadline(time.Now().Add(c.Timeout)); err != nil {
			return nil, err
		}
		defer conn.SetDeadline(time.Time{})
	}
	if err := writeFrame(conn, req); err != nil {
		return nil, err
	}
	return readFrame(conn)
}

// CallSync is a convenience blocking round trip.
func (c *Client) CallSync(req []byte) ([]byte, error) {
	return c.Call(req).Await()
}

// Close tears down the pool. In-flight calls observe a connection error or
// ErrClosed; their slots are torn down on release instead of re-entering
// the pool. Closing the pool channel makes any Call parked in acquire fail
// with ErrClosed instead of waiting forever.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	close(c.pool)
	for pc := range c.pool { // drain idle tokens
		pc.conn = nil
	}
	for conn := range c.conns {
		_ = conn.Close()
	}
	c.conns = nil
	return nil
}
