// Package mpsc implements a Vyukov-style intrusive multi-producer
// single-consumer queue with pooled nodes. It is the mailbox primitive of
// the actor runtime (each actor's mailbox is one Queue, drained in batches
// by whichever scheduler worker holds the actor's scheduling slot) and the
// run queue of the rx event-loop Scheduler.
//
// The producer side is lock-free: an enqueue is one atomic swap of the head
// pointer plus one atomic store to link the predecessor — no CAS loop, so
// enqueue throughput does not degrade under producer contention. The
// consumer side is wait-free except for a two-instruction window: if a
// producer has swapped the head but not yet linked its node, Pop reports
// "not ready" while Empty reports "not empty"; the consumer spins or goes
// off to other work until the producer's second store lands.
//
// Nodes are pooled. A Pool is shared across the queues of one subsystem
// (e.g. every mailbox of an actor System draws from one Pool), so a
// flooded-then-drained mailbox releases its buffers back for reuse instead
// of retaining them — the failure mode of the previous mutex mailbox, whose
// `queue = queue[1:]` drain pinned the slice head under flooding.
package mpsc

import (
	"sync"
	"sync/atomic"
)

// node is one pooled queue link. The value is cleared on dequeue so a
// drained queue retains no references through its stub node.
type node[T any] struct {
	next atomic.Pointer[node[T]]
	val  T
}

// A Pool recycles queue nodes across all queues initialized with it.
type Pool[T any] struct {
	p sync.Pool
}

// NewPool creates a node pool. One pool per subsystem: sharing maximizes
// reuse across queues with bursty, alternating load.
func NewPool[T any]() *Pool[T] {
	pl := &Pool[T]{}
	pl.p.New = func() any { return new(node[T]) }
	return pl
}

func (pl *Pool[T]) get() *node[T]  { return pl.p.Get().(*node[T]) }
func (pl *Pool[T]) put(n *node[T]) { pl.p.Put(n) }

// A Queue is an intrusive MPSC queue. Push and Empty may be called from any
// goroutine; Pop only by the single consumer. The zero Queue is not usable:
// call Init (or New) first.
type Queue[T any] struct {
	// head is the producer end: producers swap themselves in.
	head atomic.Pointer[node[T]]
	_    [56]byte
	// tail is the consumer end: it always points at the current stub node,
	// whose successors hold the queued values. Written only by the
	// consumer; read atomically by Empty probes from other goroutines.
	tail atomic.Pointer[node[T]]
	pool *Pool[T]
}

// New returns an initialized queue drawing nodes from pool.
func New[T any](pool *Pool[T]) *Queue[T] {
	q := &Queue[T]{}
	q.Init(pool)
	return q
}

// Init prepares an embedded queue for use. It must complete before any
// Push or Pop.
func (q *Queue[T]) Init(pool *Pool[T]) {
	stub := pool.get()
	stub.next.Store(nil)
	q.head.Store(stub)
	q.tail.Store(stub)
	q.pool = pool
}

// Push enqueues v. Safe from any goroutine; lock-free (one swap, one
// store, no retry loop).
func (q *Queue[T]) Push(v T) {
	n := q.pool.get()
	n.val = v
	n.next.Store(nil)
	prev := q.head.Swap(n)
	// Between the swap and this store the queue is "in flight": the node
	// is owned by the queue but not yet reachable from tail. Pop reports
	// not-ready and Empty reports non-empty until the store lands.
	prev.next.Store(n)
}

// Pop dequeues the oldest value. It returns ok == false either when the
// queue is empty or when the oldest push is still in flight (swapped but
// not linked); callers distinguish the two with Empty.
func (q *Queue[T]) Pop() (T, bool) {
	var zero T
	tail := q.tail.Load()
	next := tail.next.Load()
	if next == nil {
		return zero, false
	}
	v := next.val
	next.val = zero // next becomes the new stub; drop its value reference
	q.tail.Store(next)
	tail.next.Store(nil)
	q.pool.put(tail)
	return v, true
}

// Empty reports whether the queue holds no values (in-flight pushes count
// as present). From goroutines other than the consumer the answer is a
// snapshot that may go stale immediately; the scheduler uses it only as a
// parking hint, re-verified by the wakeup protocol.
func (q *Queue[T]) Empty() bool {
	return q.tail.Load() == q.head.Load()
}
