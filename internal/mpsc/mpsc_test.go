package mpsc

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

func drainOne[T any](q *Queue[T]) (T, bool) {
	for {
		v, ok := q.Pop()
		if ok {
			return v, true
		}
		if q.Empty() {
			var zero T
			return zero, false
		}
		runtime.Gosched() // a producer is mid-link; its store lands imminently
	}
}

func TestQueueFIFOSingleProducer(t *testing.T) {
	q := New(NewPool[int]())
	const n = 1000
	for i := 0; i < n; i++ {
		q.Push(i)
	}
	for i := 0; i < n; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d: got (%d, %v)", i, v, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("drained queue returned a value")
	}
	if !q.Empty() {
		t.Fatal("drained queue not empty")
	}
}

func TestQueueConcurrentProducersPerSenderOrder(t *testing.T) {
	type item struct{ producer, seq int }
	q := New(NewPool[item]())
	const producers = 8
	const perProducer = 5000

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Push(item{p, i})
			}
		}(p)
	}

	lastSeq := make([]int, producers)
	for i := range lastSeq {
		lastSeq[i] = -1
	}
	got := 0
	deadline := time.Now().Add(30 * time.Second)
	for got < producers*perProducer {
		v, ok := q.Pop()
		if !ok {
			if time.Now().After(deadline) {
				t.Fatalf("drained only %d/%d items", got, producers*perProducer)
			}
			runtime.Gosched()
			continue
		}
		if v.seq != lastSeq[v.producer]+1 {
			t.Fatalf("producer %d: seq %d after %d (per-sender FIFO violated)",
				v.producer, v.seq, lastSeq[v.producer])
		}
		lastSeq[v.producer] = v.seq
		got++
	}
	wg.Wait()
	if !q.Empty() {
		t.Fatal("queue not empty after full drain")
	}
}

// A flooded-then-drained queue must release its buffers: the chain collapses
// back to a single stub, the stub retains no value, and steady-state
// push/pop traffic recycles pooled nodes instead of allocating. This is the
// regression test for the old mutex mailbox's `queue = queue[1:]` leak,
// which retained every drained message until the next append reallocation.
func TestQueueFloodDrainRecyclesNodes(t *testing.T) {
	q := New(NewPool[*[]byte]())
	const flood = 10000
	for i := 0; i < flood; i++ {
		buf := make([]byte, 1024)
		q.Push(&buf)
	}
	for {
		if _, ok := q.Pop(); !ok {
			break
		}
	}

	// Structurally drained: tail == head means one stub and no chain.
	if q.tail.Load() != q.head.Load() {
		t.Fatal("drained queue still holds a chain of nodes")
	}
	// The stub must not pin the last message.
	if q.tail.Load().val != nil {
		t.Fatal("stub node retains the last drained value")
	}

	// Steady-state traffic is allocation-free modulo the pool: nodes come
	// back from the drain above. (sync.Pool may miss occasionally under GC;
	// allow a small average.)
	avg := testing.AllocsPerRun(1000, func() {
		q.Push(nil)
		q.Pop()
	})
	if avg > 0.1 {
		t.Errorf("steady-state push/pop allocates %.2f objects/op; nodes not recycled", avg)
	}
}

func TestQueueEmptyTransitions(t *testing.T) {
	q := New(NewPool[int]())
	for i := 0; i < 100; i++ {
		if !q.Empty() {
			t.Fatalf("iteration %d: fresh/drained queue not empty", i)
		}
		q.Push(i)
		if q.Empty() {
			t.Fatalf("iteration %d: queue with one item reports empty", i)
		}
		if v, ok := q.Pop(); !ok || v != i {
			t.Fatalf("iteration %d: pop got (%d, %v)", i, v, ok)
		}
	}
}

func BenchmarkQueuePushPop(b *testing.B) {
	q := New(NewPool[int]())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(i)
		q.Pop()
	}
}

// BenchmarkQueueContendedPush measures producer-side scalability: all Ps
// push, one goroutine drains. Compare against BenchmarkChannelContendedSend.
func BenchmarkQueueContendedPush(b *testing.B) {
	q := New(NewPool[int]())
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if _, ok := q.Pop(); !ok {
				select {
				case <-stop:
					return
				default:
					runtime.Gosched()
				}
			}
		}
	}()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q.Push(1)
		}
	})
	b.StopTimer()
	close(stop)
	wg.Wait()
}

func BenchmarkChannelContendedSend(b *testing.B) {
	ch := make(chan int, 1024)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-ch:
			case <-stop:
				return
			}
		}
	}()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			ch <- 1
		}
	})
	b.StopTimer()
	close(stop)
	wg.Wait()
}
