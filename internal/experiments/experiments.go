// Package experiments implements one driver per table and figure of the
// paper's evaluation, gluing the harness, the metric profiles, the PCA,
// the RVM compiler experiments, and the CK analysis together. The
// per-experiment index in DESIGN.md maps each driver to its paper
// artifact; EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"renaissance/internal/core"
	"renaissance/internal/metrics"
	"renaissance/internal/pca"
	"renaissance/internal/report"
	"renaissance/internal/stats"

	// Register all four suites.
	_ "renaissance/internal/bench/classic"
	_ "renaissance/internal/bench/fn"
	_ "renaissance/internal/bench/oo"
	_ "renaissance/internal/bench/renaissance"
)

// SuiteSymbols maps suites to their Figure 1 scatter symbols.
var SuiteSymbols = map[string]rune{
	core.SuiteRenaissance: 'R',
	core.SuiteOO:          'd', // DaCapo-like
	core.SuiteFn:          's', // ScalaBench-like
	core.SuiteClassic:     'j', // SPECjvm-like
}

// CollectProfiles runs every registered benchmark once at the given size
// factor and returns the per-benchmark metric profiles (the Table 7 data:
// one steady-state execution per benchmark, as in supplement §B).
func CollectProfiles(sizeFactor float64) ([]*metrics.Profile, error) {
	r := core.NewRunner()
	r.Config.SizeFactor = sizeFactor
	r.WarmupOverride = 1
	r.MeasuredOverride = 1
	var out []*metrics.Profile
	for _, spec := range core.Global.All() {
		res, err := r.Run(spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: profiling %s/%s: %w", spec.Suite, spec.Name, err)
		}
		out = append(out, res.Profile)
	}
	metrics.SortProfiles(out)
	return out, nil
}

// Diversity performs the §4 PCA over the normalized metric vectors.
type Diversity struct {
	Metrics  []metrics.Metric
	Profiles []*metrics.Profile
	PCA      *pca.Result
}

// Analyze runs the PCA. Rows are benchmarks, columns the 11 Table 2
// metrics normalized by reference cycles (§3.2), standardized inside the
// PCA (§4.2).
func Analyze(profiles []*metrics.Profile) (*Diversity, error) {
	x := make([][]float64, len(profiles))
	for i, p := range profiles {
		x[i] = p.Vector()
	}
	res, err := pca.Analyze(x)
	if err != nil {
		return nil, err
	}
	return &Diversity{Metrics: metrics.AllMetrics(), Profiles: profiles, PCA: res}, nil
}

// LoadingsTable renders Table 3: metric loadings on the first k PCs,
// sorted by absolute value per component.
func (d *Diversity) LoadingsTable(k int) *report.Table {
	t := &report.Table{Title: fmt.Sprintf("Table 3: metric loadings on the first %d PCs", k)}
	t.Headers = []string{"rank"}
	for c := 0; c < k; c++ {
		t.Headers = append(t.Headers, fmt.Sprintf("PC%d metric", c+1), "load.")
	}
	type entry struct {
		name string
		load float64
	}
	perPC := make([][]entry, k)
	for c := 0; c < k; c++ {
		for j, m := range d.Metrics {
			perPC[c] = append(perPC[c], entry{m.String(), d.PCA.Loadings[j][c]})
		}
		sort.Slice(perPC[c], func(a, b int) bool {
			return abs(perPC[c][a].load) > abs(perPC[c][b].load)
		})
	}
	for rank := 0; rank < len(d.Metrics); rank++ {
		row := []any{rank + 1}
		for c := 0; c < k; c++ {
			row = append(row, perPC[c][rank].name, fmt.Sprintf("%+.2f", perPC[c][rank].load))
		}
		t.AddRow(row...)
	}
	return t
}

// ExplainedVariance returns the cumulative variance captured by the first
// k components (the paper: "the first four components account for ~60%").
func (d *Diversity) ExplainedVariance(k int) float64 {
	total := 0.0
	for c := 0; c < k && c < len(d.PCA.ExplainedVariance); c++ {
		total += d.PCA.ExplainedVariance[c]
	}
	return total
}

// ScatterPoints returns the Figure 1 points for components (cx, cy),
// 0-indexed.
func (d *Diversity) ScatterPoints(cx, cy int) []report.ScatterPoint {
	pts := make([]report.ScatterPoint, len(d.Profiles))
	for i, p := range d.Profiles {
		pts[i] = report.ScatterPoint{
			X:      d.PCA.Scores[i][cx],
			Y:      d.PCA.Scores[i][cy],
			Symbol: SuiteSymbols[p.Suite],
			Label:  p.Benchmark,
		}
	}
	return pts
}

// SuiteSpread returns, per suite, the score range (max-min) along a
// component — the quantitative form of "Renaissance benchmarks are widely
// distributed along PC2" (§4.3).
func (d *Diversity) SuiteSpread(component int) map[string]float64 {
	lo := map[string]float64{}
	hi := map[string]float64{}
	for i, p := range d.Profiles {
		s := d.PCA.Scores[i][component]
		if _, ok := lo[p.Suite]; !ok {
			lo[p.Suite], hi[p.Suite] = s, s
			continue
		}
		if s < lo[p.Suite] {
			lo[p.Suite] = s
		}
		if s > hi[p.Suite] {
			hi[p.Suite] = s
		}
	}
	out := map[string]float64{}
	for suite := range lo {
		out[suite] = hi[suite] - lo[suite]
	}
	return out
}

// RateBars returns the Figure 2/3/4 data: each benchmark's rate for one
// metric (occurrences per reference cycle), scaled to occurrences per 10^9
// cycles for readability.
func RateBars(profiles []*metrics.Profile, m metrics.Metric) []report.Bar {
	bars := make([]report.Bar, 0, len(profiles))
	for _, p := range profiles {
		bars = append(bars, report.Bar{
			Label: p.Suite + "/" + p.Benchmark,
			Value: p.Rate(m) * 1e9,
		})
	}
	return bars
}

// Table7 renders the unnormalized metric counts for every benchmark.
func Table7(profiles []*metrics.Profile) *report.Table {
	t := &report.Table{Title: "Table 7: unnormalized metrics (single steady-state execution)"}
	t.Headers = []string{"suite", "benchmark"}
	for _, m := range metrics.AllMetrics() {
		t.Headers = append(t.Headers, m.String())
	}
	for _, p := range profiles {
		row := []any{p.Suite, p.Benchmark}
		for _, m := range metrics.AllMetrics() {
			if m == metrics.CPU {
				row = append(row, fmt.Sprintf("%.1f", p.CPUUtil))
				continue
			}
			row = append(row, p.Counts.Get(m))
		}
		t.AddRow(row...)
	}
	return t
}

// Table1 renders the benchmark inventory with descriptions and focus.
func Table1() *report.Table {
	t := &report.Table{Title: "Table 1: the Renaissance suite"}
	t.Headers = []string{"benchmark", "description", "focus"}
	for _, s := range core.Global.BySuite(core.SuiteRenaissance) {
		focus := ""
		for i, f := range s.Focus {
			if i > 0 {
				focus += ", "
			}
			focus += f
		}
		t.AddRow(s.Name, s.Description, focus)
	}
	return t
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// timedRun measures fn's wall time in milliseconds.
func timedRun(fn func() error) (float64, error) {
	start := time.Now()
	err := fn()
	return float64(time.Since(start)) / float64(time.Millisecond), err
}

// welchP computes the two-sided Welch p-value, degrading gracefully to 1.0
// when there is not enough data.
func welchP(a, b []float64) float64 {
	res, err := stats.WelchTTest(a, b)
	if err != nil {
		return 1
	}
	return res.P
}

// SuiteSourceDirs maps each suite to the repository directories holding
// its implementation and the substrates it exercises (the CK analysis
// scope, playing the role of "classes loaded by the benchmark" in §7.1).
func SuiteSourceDirs(root string) map[string][]string {
	j := func(parts ...string) string {
		return filepath.Join(append([]string{root}, parts...)...)
	}
	return map[string][]string{
		core.SuiteRenaissance: {
			j("internal", "bench", "renaissance"),
			j("internal", "actors"), j("internal", "forkjoin"), j("internal", "stm"),
			j("internal", "futures"), j("internal", "streams"), j("internal", "rx"),
			j("internal", "rdd"), j("internal", "netstack"), j("internal", "memdb"),
			j("internal", "graphdb"), j("internal", "minilang"), j("internal", "rvm"),
		},
		core.SuiteOO: {
			j("internal", "bench", "oo"),
			j("internal", "memdb"), j("internal", "minilang"), j("internal", "rvm"),
		},
		core.SuiteFn: {
			j("internal", "bench", "fn"),
			j("internal", "streams"), j("internal", "actors"), j("internal", "minilang"),
			j("internal", "rvm"), j("internal", "rvm", "ir"), j("internal", "rvm", "opt"),
		},
		core.SuiteClassic: {
			j("internal", "bench", "classic"),
			j("internal", "memdb"), j("internal", "minilang"), j("internal", "rvm"),
		},
	}
}
