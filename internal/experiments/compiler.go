package experiments

import (
	"fmt"
	"sort"
	"time"

	"renaissance/internal/report"
	"renaissance/internal/rvm"
	"renaissance/internal/rvm/cachesim"
	"renaissance/internal/rvm/ir"
	"renaissance/internal/rvm/jit"
	"renaissance/internal/rvm/kernels"
	"renaissance/internal/rvm/opt"
	"renaissance/internal/stats"
)

// KernelSuiteLabels maps kernel suites to the paper's suite names for
// report output.
var KernelSuiteLabels = map[string]string{
	kernels.SuiteRenaissance: "Renaissance",
	kernels.SuiteDaCapo:      "DaCapo",
	kernels.SuiteScalaBench:  "ScalaBench",
	kernels.SuiteSPECjvm:     "SPECjvm2008",
}

// ImpactCell is one cell of Figure 5 / Tables 12–15: the impact of one
// optimization on one benchmark.
type ImpactCell struct {
	Suite     string
	Benchmark string
	Opt       string
	// Impact is the relative change in deterministic execution cycles when
	// the optimization is disabled (positive = optimization helps), the
	// paper's §6 measure.
	Impact float64
	// P is the Welch's t-test p-value over repeated wall-clock timings of
	// the two configurations.
	P float64
}

// MeasureImpacts evaluates all seven §5 optimizations on every kernel of
// every suite. reps wall-clock repetitions per configuration feed the
// significance test.
func MeasureImpacts(scale, reps int) ([]ImpactCell, error) {
	if reps < 2 {
		reps = 2
	}
	var out []ImpactCell
	for _, spec := range kernels.Specs() {
		prog, err := kernels.Build(spec, scale)
		if err != nil {
			return nil, err
		}
		full, err := jit.Compile(prog, opt.OptPipeline())
		if err != nil {
			return nil, fmt.Errorf("impact: %s/%s: %w", spec.Suite, spec.Name, err)
		}
		for _, optName := range opt.PaperOptimizations() {
			disabled, err := jit.Compile(prog, opt.OptPipeline().Disable(optName))
			if err != nil {
				return nil, err
			}
			// Interleave the two configurations so slow environmental
			// drift hits both sample sets equally.
			fullCycles, disCycles, fullTimes, disTimes, err := runPairedReps(full, disabled, reps)
			if err != nil {
				return nil, fmt.Errorf("impact: %s/%s -%s: %w", spec.Suite, spec.Name, optName, err)
			}
			impact := 0.0
			if fullCycles > 0 {
				impact = float64(disCycles-fullCycles) / float64(fullCycles)
			}
			// Winsorized filtering removes timing outliers before the
			// significance test, as in the paper's supplement §C.
			out = append(out, ImpactCell{
				Suite:     spec.Suite,
				Benchmark: spec.Name,
				Opt:       optName,
				Impact:    impact,
				P:         welchP(stats.Winsorize(fullTimes, 0.1), stats.Winsorize(disTimes, 0.1)),
			})
		}
	}
	return out, nil
}

// runOnce executes the kernel once in calibrated mode, returning the
// deterministic cycle count and the wall time in milliseconds.
func runOnce(c *jit.Compiled) (int64, float64, error) {
	var stats *ir.Stats
	ms, err := timedRun(func() error {
		_, s, err := c.RunCalibrated()
		stats = s
		return err
	})
	if err != nil {
		return 0, 0, err
	}
	return stats.Cycles, ms, nil
}

// runPairedReps interleaves calibrated executions of two configurations,
// returning both deterministic cycle counts and paired wall-time samples.
func runPairedReps(a, b *jit.Compiled, reps int) (aCycles, bCycles int64, aTimes, bTimes []float64, err error) {
	for i := 0; i < reps; i++ {
		var ms float64
		aCycles, ms, err = runOnce(a)
		if err != nil {
			return 0, 0, nil, nil, err
		}
		aTimes = append(aTimes, ms)
		bCycles, ms, err = runOnce(b)
		if err != nil {
			return 0, 0, nil, nil, err
		}
		bTimes = append(bTimes, ms)
	}
	return aCycles, bCycles, aTimes, bTimes, nil
}

// ImpactSummary aggregates cells the way §6 reports Figure 5: per suite,
// how many of the 7 optimizations have >= threshold impact on some
// benchmark at significance alpha, and the median significant impact.
type ImpactSummary struct {
	Suite          string
	OptsWithImpact int
	MedianImpact   float64
}

// Summarize computes the §6 headline numbers.
func Summarize(cells []ImpactCell, threshold, alpha float64) []ImpactSummary {
	type key struct{ suite, opt string }
	hit := map[key]bool{}
	sigImpacts := map[string][]float64{}
	suites := map[string]bool{}
	for _, c := range cells {
		suites[c.Suite] = true
		if c.P <= alpha {
			sigImpacts[c.Suite] = append(sigImpacts[c.Suite], c.Impact)
			if c.Impact >= threshold {
				hit[key{c.Suite, c.Opt}] = true
			}
		}
	}
	var out []ImpactSummary
	for suite := range suites {
		n := 0
		for _, o := range opt.PaperOptimizations() {
			if hit[key{suite, o}] {
				n++
			}
		}
		med := stats.Median(positive(sigImpacts[suite]))
		out = append(out, ImpactSummary{Suite: suite, OptsWithImpact: n, MedianImpact: med})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Suite < out[j].Suite })
	return out
}

func positive(xs []float64) []float64 {
	var out []float64
	for _, x := range xs {
		if x > 0 {
			out = append(out, x)
		}
	}
	return out
}

// ImpactTable renders one suite's Tables 12–15 block: rows are benchmarks,
// columns the seven optimizations (impact% and p-value), in the paper's
// column order AC, DS, EAWA, GM, LV, LLC, MHS.
func ImpactTable(cells []ImpactCell, suite string) *report.Table {
	order := opt.PaperOptimizations()
	t := &report.Table{Title: fmt.Sprintf("Optimization impact — %s kernels", KernelSuiteLabels[suite])}
	t.Headers = []string{"benchmark"}
	for _, o := range order {
		t.Headers = append(t.Headers, o, "p")
	}
	byBench := map[string]map[string]ImpactCell{}
	var names []string
	for _, c := range cells {
		if c.Suite != suite {
			continue
		}
		if byBench[c.Benchmark] == nil {
			byBench[c.Benchmark] = map[string]ImpactCell{}
			names = append(names, c.Benchmark)
		}
		byBench[c.Benchmark][c.Opt] = c
	}
	sort.Strings(names)
	for _, name := range names {
		row := []any{name}
		for _, o := range order {
			c := byBench[name][o]
			row = append(row, fmt.Sprintf("%+.1f%%", 100*c.Impact), fmt.Sprintf("%.0f%%", 100*c.P))
		}
		t.AddRow(row...)
	}
	return t
}

// CompilerRow is one Figure 6 entry: the opt pipeline's speedup over the
// baseline pipeline with a confidence interval from wall-time repetitions.
type CompilerRow struct {
	Suite     string
	Benchmark string
	// Speedup is baselineCycles / optCycles (deterministic; > 1 means the
	// optimizing pipeline wins).
	Speedup float64
	// CILo/CIHi bound the wall-time ratio at 99% confidence.
	CILo, CIHi float64
}

// CompareCompilers runs every kernel under both pipelines (Figure 6).
func CompareCompilers(scale, reps int) ([]CompilerRow, error) {
	if reps < 2 {
		reps = 2
	}
	var out []CompilerRow
	for _, spec := range kernels.Specs() {
		prog, err := kernels.Build(spec, scale)
		if err != nil {
			return nil, err
		}
		base, err := jit.Compile(prog, opt.BaselinePipeline())
		if err != nil {
			return nil, err
		}
		full, err := jit.Compile(prog, opt.OptPipeline())
		if err != nil {
			return nil, err
		}
		baseCycles, optCycles, baseTimes, optTimes, err := runPairedReps(base, full, reps)
		if err != nil {
			return nil, err
		}
		row := CompilerRow{Suite: spec.Suite, Benchmark: spec.Name}
		if optCycles > 0 {
			row.Speedup = float64(baseCycles) / float64(optCycles)
		}
		ratios := make([]float64, 0, reps)
		for i := 0; i < reps && i < len(baseTimes) && i < len(optTimes); i++ {
			if optTimes[i] > 0 {
				ratios = append(ratios, baseTimes[i]/optTimes[i])
			}
		}
		if mean, hw, err := stats.MeanCI(stats.Winsorize(ratios, 0.1), 0.99); err == nil {
			row.CILo, row.CIHi = mean-hw, mean+hw
		}
		out = append(out, row)
	}
	return out, nil
}

// CodeSizeRow is one Figure 7 entry.
type CodeSizeRow struct {
	Suite      string
	Benchmark  string
	HotSize    int // compiled IR instructions in hot methods
	HotMethods int
}

// CodeSizes compiles and runs every kernel under the opt pipeline and
// reports the hot compiled-code footprint (Figure 7). Methods consuming at
// least 0.1% of cycles count as hot.
func CodeSizes(scale int) ([]CodeSizeRow, error) {
	var out []CodeSizeRow
	for _, spec := range kernels.Specs() {
		prog, err := kernels.Build(spec, scale)
		if err != nil {
			return nil, err
		}
		c, err := jit.Compile(prog, opt.OptPipeline())
		if err != nil {
			return nil, err
		}
		_, st, err := c.Run()
		if err != nil {
			return nil, err
		}
		size, count := c.HotCodeSize(st, 0.001)
		out = append(out, CodeSizeRow{Suite: spec.Suite, Benchmark: spec.Name, HotSize: size, HotMethods: count})
	}
	return out, nil
}

// CompileTimes measures Table 16: the share of total compilation time each
// optimization pass consumes, aggregated over all kernels.
func CompileTimes(scale int) (map[string]float64, error) {
	pipe := opt.OptPipeline()
	for _, spec := range kernels.Specs() {
		prog, err := kernels.Build(spec, scale)
		if err != nil {
			return nil, err
		}
		if _, err := jit.Compile(prog, pipe); err != nil {
			return nil, err
		}
	}
	var total time.Duration
	for _, d := range pipe.PassTime {
		total += d
	}
	out := map[string]float64{}
	if total == 0 {
		return out, nil
	}
	for name, d := range pipe.PassTime {
		out[name] = float64(d) / float64(total)
	}
	return out, nil
}

// GuardProfile reproduces the §5.5 guard-execution table on the
// log-regression kernel: executed guard counts by kind, with and without
// speculative guard motion.
func GuardProfile(scale int) (with, without map[string]int64, err error) {
	spec, ok := kernels.Lookup(kernels.SuiteRenaissance, "log-regression")
	if !ok {
		return nil, nil, fmt.Errorf("guard profile: kernel missing")
	}
	prog, err := kernels.Build(spec, scale)
	if err != nil {
		return nil, nil, err
	}
	run := func(pipe *opt.Pipeline) (map[string]int64, error) {
		c, err := jit.Compile(prog, pipe)
		if err != nil {
			return nil, err
		}
		_, st, err := c.Run()
		if err != nil {
			return nil, err
		}
		return st.GuardsExecuted, nil
	}
	with, err = run(opt.OptPipeline())
	if err != nil {
		return nil, nil, err
	}
	without, err = run(opt.OptPipeline().Disable(opt.NameGM))
	return with, without, err
}

// MHSMethodProfile reproduces the §5.4 hottest-methods table on the
// scrabble kernel: per-method cycles with and without method-handle
// simplification.
func MHSMethodProfile(scale int) (with, without []jit.HotMethod, err error) {
	spec, ok := kernels.Lookup(kernels.SuiteRenaissance, "scrabble")
	if !ok {
		return nil, nil, fmt.Errorf("mhs profile: kernel missing")
	}
	prog, err := kernels.Build(spec, scale)
	if err != nil {
		return nil, nil, err
	}
	run := func(pipe *opt.Pipeline) ([]jit.HotMethod, error) {
		c, err := jit.Compile(prog, pipe)
		if err != nil {
			return nil, err
		}
		_, st, err := c.Run()
		if err != nil {
			return nil, err
		}
		return c.HotMethods(st), nil
	}
	with, err = run(opt.OptPipeline())
	if err != nil {
		return nil, nil, err
	}
	without, err = run(opt.OptPipeline().Disable(opt.NameMHS))
	return with, without, err
}

// KernelProfile returns the bytecode-level metric counters of one kernel
// (the RVM rows of Table 7).
func KernelProfile(suite, name string, scale int) (rvm.Counters, error) {
	spec, ok := kernels.Lookup(suite, name)
	if !ok {
		return rvm.Counters{}, fmt.Errorf("no kernel %s/%s", suite, name)
	}
	prog, err := kernels.Build(spec, scale)
	if err != nil {
		return rvm.Counters{}, err
	}
	vm := rvm.NewInterp(prog)
	vm.Fuel = 2_000_000_000
	if _, err := vm.Run(); err != nil {
		return rvm.Counters{}, err
	}
	return vm.Counters, nil
}

// CompileTimeDelta measures Table 16 the paper's way: the relative
// reduction in total compilation time when one optimization is disabled,
// aggregated over all kernels.
func CompileTimeDelta(scale int) (map[string]float64, error) {
	progs := make([]*rvm.Program, 0, 68)
	for _, spec := range kernels.Specs() {
		p, err := kernels.Build(spec, scale)
		if err != nil {
			return nil, err
		}
		progs = append(progs, p)
	}
	compileAll := func(disable string) (time.Duration, error) {
		total := time.Duration(0)
		for _, p := range progs {
			pipe := opt.OptPipeline()
			if disable != "" {
				pipe.Disable(disable)
			}
			c, err := jit.Compile(p, pipe)
			if err != nil {
				return 0, err
			}
			total += c.CompileTime
		}
		return total, nil
	}
	// Warm the runtime so the first measured configuration is not charged
	// for cold caches, then take the minimum of three passes per
	// configuration (compilation times are small and right-skewed).
	if _, err := compileAll(""); err != nil {
		return nil, err
	}
	measure := func(disable string) (time.Duration, error) {
		best := time.Duration(0)
		for i := 0; i < 3; i++ {
			d, err := compileAll(disable)
			if err != nil {
				return 0, err
			}
			if best == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}
	full, err := measure("")
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, o := range opt.PaperOptimizations() {
		reduced, err := measure(o)
		if err != nil {
			return nil, err
		}
		out[o] = float64(full-reduced) / float64(full)
	}
	return out, nil
}

// KernelCacheProfile runs one kernel under the opt pipeline with the
// cache simulator attached and returns per-level accesses and misses —
// the hardware-counter half of Table 2's cachemiss metric, simulated.
func KernelCacheProfile(suite, name string, scale int) (map[string][2]int64, error) {
	spec, ok := kernels.Lookup(suite, name)
	if !ok {
		return nil, fmt.Errorf("no kernel %s/%s", suite, name)
	}
	prog, err := kernels.Build(spec, scale)
	if err != nil {
		return nil, err
	}
	c, err := jit.Compile(prog, opt.OptPipeline())
	if err != nil {
		return nil, err
	}
	sim := cachesim.New(nil)
	if _, _, err := c.RunTraced(sim); err != nil {
		return nil, err
	}
	return sim.Counts(), nil
}
