package experiments

import (
	"bytes"
	"testing"

	"renaissance/internal/core"
	"renaissance/internal/metrics"
	"renaissance/internal/rvm/kernels"
	"renaissance/internal/rvm/opt"
)

// collectOnce caches the (slow) profile collection across tests.
var cachedProfiles []*metrics.Profile

func profiles(t *testing.T) []*metrics.Profile {
	t.Helper()
	if cachedProfiles == nil {
		ps, err := CollectProfiles(0.05)
		if err != nil {
			t.Fatal(err)
		}
		cachedProfiles = ps
	}
	return cachedProfiles
}

func TestCollectProfilesCoversAllSuites(t *testing.T) {
	ps := profiles(t)
	if len(ps) != 68 {
		t.Fatalf("profiles = %d, want 68", len(ps))
	}
	bySuite := map[string]int{}
	for _, p := range ps {
		bySuite[p.Suite]++
		if p.RefCycles <= 0 {
			t.Errorf("%s/%s has no reference cycles", p.Suite, p.Benchmark)
		}
	}
	if bySuite[core.SuiteRenaissance] != 21 || bySuite[core.SuiteClassic] != 21 ||
		bySuite[core.SuiteOO] != 14 || bySuite[core.SuiteFn] != 12 {
		t.Errorf("suite counts: %v", bySuite)
	}
}

func TestDiversityPCA(t *testing.T) {
	d, err := Analyze(profiles(t))
	if err != nil {
		t.Fatal(err)
	}
	// First four components must capture a meaningful variance share (the
	// paper reports ~60%).
	ev := d.ExplainedVariance(4)
	if ev < 0.4 || ev > 1.0001 {
		t.Errorf("explained variance of 4 PCs = %.2f", ev)
	}
	// Renaissance must spread at least as widely as the classic suite
	// along the concurrency-correlated components (Figure 1's claim).
	maxSpreadPC := 0.0
	for c := 1; c < 4; c++ {
		spread := d.SuiteSpread(c)
		ratio := spread[core.SuiteRenaissance] / (spread[core.SuiteClassic] + 1e-9)
		if ratio > maxSpreadPC {
			maxSpreadPC = ratio
		}
	}
	if maxSpreadPC < 1 {
		t.Errorf("renaissance never spreads wider than classic on PC2-PC4 (best ratio %.2f)", maxSpreadPC)
	}

	// Table 3 renders.
	var buf bytes.Buffer
	if err := d.LoadingsTable(4).Write(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty loadings table")
	}
	// Figure 1 renders.
	pts := d.ScatterPoints(0, 1)
	if len(pts) != len(profiles(t)) {
		t.Errorf("scatter points = %d", len(pts))
	}
}

func TestRateBarsAndTables(t *testing.T) {
	ps := profiles(t)
	bars := RateBars(ps, metrics.Atomic)
	if len(bars) != len(ps) {
		t.Fatalf("bars = %d", len(bars))
	}
	var buf bytes.Buffer
	if err := Table7(ps).Write(&buf); err != nil {
		t.Fatal(err)
	}
	if err := Table1().Write(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 100 {
		t.Error("tables rendered empty")
	}
}

func TestImpactPipelineSmall(t *testing.T) {
	// Run the full impact methodology on a small subset shape: reuse the
	// full function but validate only aggregate structure (the kernels
	// test exercises headline numbers; this test checks the experiment
	// plumbing end to end).
	cells, err := MeasureImpacts(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 68*7 {
		t.Fatalf("cells = %d, want %d", len(cells), 68*7)
	}
	summaries := Summarize(cells, 0.05, 1.0) // alpha=1: ignore noise gating here
	if len(summaries) != 4 {
		t.Fatalf("summaries = %d", len(summaries))
	}
	byName := map[string]ImpactSummary{}
	for _, s := range summaries {
		byName[s.Suite] = s
	}
	// The paper's headline: all 7 optimizations matter on Renaissance;
	// fewer on the other suites.
	if got := byName[kernels.SuiteRenaissance].OptsWithImpact; got < 6 {
		t.Errorf("renaissance opts with >=5%% impact = %d, want >= 6", got)
	}
	if got := byName[kernels.SuiteDaCapo].OptsWithImpact; got >= byName[kernels.SuiteRenaissance].OptsWithImpact {
		t.Errorf("dacapo opts (%d) should trail renaissance (%d)",
			got, byName[kernels.SuiteRenaissance].OptsWithImpact)
	}

	var buf bytes.Buffer
	if err := ImpactTable(cells, kernels.SuiteRenaissance).Write(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty impact table")
	}
}

func TestCompareCompilers(t *testing.T) {
	rows, err := CompareCompilers(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 68 {
		t.Fatalf("rows = %d", len(rows))
	}
	wins := 0
	for _, r := range rows {
		if r.Speedup > 1 {
			wins++
		}
	}
	// Figure 6: the optimizing pipeline wins on most benchmarks (51/68 in
	// the paper).
	if wins*4 < len(rows)*3 {
		t.Errorf("opt pipeline wins %d/%d", wins, len(rows))
	}
}

func TestCodeSizesShape(t *testing.T) {
	rows, err := CodeSizes(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 68 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Figure 7: SPECjvm-like kernels are considerably smaller on average.
	avg := func(suite string) float64 {
		total, n := 0, 0
		for _, r := range rows {
			if r.Suite == suite {
				total += r.HotSize
				n++
			}
		}
		return float64(total) / float64(n)
	}
	if avg(kernels.SuiteSPECjvm) >= avg(kernels.SuiteRenaissance) {
		t.Errorf("specjvm hot code (%.0f) should be smaller than renaissance (%.0f)",
			avg(kernels.SuiteSPECjvm), avg(kernels.SuiteRenaissance))
	}
}

func TestCompileTimes(t *testing.T) {
	shares, err := CompileTimes(1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, s := range shares {
		total += s
	}
	if total < 0.99 || total > 1.01 {
		t.Errorf("shares sum to %.3f", total)
	}
	for _, o := range opt.PaperOptimizations() {
		if _, ok := shares[o]; !ok {
			t.Errorf("no compile-time share for %s", o)
		}
	}
}

func TestGuardProfile(t *testing.T) {
	with, without, err := GuardProfile(1)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(m map[string]int64) int64 {
		t := int64(0)
		for _, v := range m {
			t += v
		}
		return t
	}
	// §5.5: guard motion reduced executed guards by 83%; require a large
	// reduction and the appearance of Speculative rows.
	if sum(with)*2 > sum(without) {
		t.Errorf("guards with GM (%d) not well below without (%d)", sum(with), sum(without))
	}
	if with["Speculative BoundsCheck"] == 0 && with["Speculative NullCheck"] == 0 {
		t.Errorf("no speculative guards recorded: %v", with)
	}
	if without["Speculative BoundsCheck"] != 0 {
		t.Errorf("speculative guards present with GM disabled: %v", without)
	}
}

func TestMHSMethodProfile(t *testing.T) {
	with, without, err := MHSMethodProfile(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(with) == 0 || len(without) == 0 {
		t.Fatal("empty method profiles")
	}
	var withTotal, withoutTotal int64
	for _, h := range with {
		withTotal += h.Cycles
	}
	for _, h := range without {
		withoutTotal += h.Cycles
	}
	// §5.4: MHS reduces total time (350ms -> 303ms in the paper's table).
	if withTotal >= withoutTotal {
		t.Errorf("MHS total cycles %d not below %d", withTotal, withoutTotal)
	}
}

func TestKernelProfile(t *testing.T) {
	c, err := KernelProfile(kernels.SuiteRenaissance, "fj-kmeans", 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Synch == 0 {
		t.Errorf("fj-kmeans kernel has no synch events")
	}
	if _, err := KernelProfile("nope", "nope", 1); err == nil {
		t.Error("bogus kernel accepted")
	}
}

func TestSuiteSourceDirs(t *testing.T) {
	dirs := SuiteSourceDirs("../..")
	if len(dirs) != 4 {
		t.Fatalf("suites = %d", len(dirs))
	}
	for suite, ds := range dirs {
		if len(ds) == 0 {
			t.Errorf("suite %s has no source dirs", suite)
		}
	}
}

func TestKernelCacheProfile(t *testing.T) {
	counts, err := KernelCacheProfile(kernels.SuiteRenaissance, "scrabble", 1)
	if err != nil {
		t.Fatal(err)
	}
	if counts["L1D"][0] == 0 {
		t.Error("no L1 accesses traced")
	}
	if counts["L1D"][1] > counts["L1D"][0] {
		t.Error("more misses than accesses")
	}
	if _, err := KernelCacheProfile("nope", "nope", 1); err == nil {
		t.Error("bogus kernel accepted")
	}
}
