package loadgen

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"renaissance/internal/core"
	"renaissance/internal/hdr"
	"renaissance/internal/netstack"
)

// The arrival schedule is fixed before the run, deterministic per seed,
// and Poisson: exponential inter-arrival gaps with mean 1/rate.
func TestArrivalScheduleDeterministicPoisson(t *testing.T) {
	const rate = 5000.0
	d := 2 * time.Second
	a := arrivalOffsets(7, rate, d)
	b := arrivalOffsets(7, rate, d)
	if len(a) != len(b) {
		t.Fatalf("same seed, different schedule lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at arrival %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := arrivalOffsets(8, rate, d)
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical schedules")
		}
	}
	// Mean arrivals ≈ rate·duration within a loose Poisson tolerance.
	want := rate * d.Seconds()
	if got := float64(len(a)); math.Abs(got-want) > 5*math.Sqrt(want) {
		t.Errorf("arrivals = %g, want ≈ %g", got, want)
	}
	// Offsets are increasing and within the duration.
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatal("arrival offsets not monotone")
		}
	}
	if a[len(a)-1] >= d {
		t.Error("arrival past the run duration")
	}
}

// stallTarget serves in serviceTime, except that the stallAfter-th request
// triggers a single stall of stallFor during which every request blocks —
// the "server pause" of the coordinated-omission literature (GC pause,
// page fault, packet loss recovery).
type stallTarget struct {
	serviceTime time.Duration
	stallAfter  int64
	stallFor    time.Duration
	sends       atomic.Int64
	stalled     atomic.Bool
	mu          sync.RWMutex
}

func (s *stallTarget) Send(uint64) error {
	if s.sends.Add(1) == s.stallAfter && s.stalled.CompareAndSwap(false, true) {
		go func() {
			s.mu.Lock()
			time.Sleep(s.stallFor)
			s.mu.Unlock()
		}()
		// Let the writer take the lock so the stall window opens now.
		time.Sleep(2 * time.Millisecond)
	}
	s.mu.RLock()
	//lint:ignore SA2001 the critical section is the stall barrier itself
	s.mu.RUnlock()
	time.Sleep(s.serviceTime)
	return nil
}

func (s *stallTarget) Close() error { return nil }

// The acceptance-criteria demonstration: the same server stall is nearly
// invisible to the closed-loop measurement (each worker contributes one
// stalled sample, then the loop stops offering load) but dominates the
// open-loop p99, because every request the schedule intended to send
// during the stall measures it.
func TestOpenLoopSeesStallClosedLoopHides(t *testing.T) {
	const (
		service    = 100 * time.Microsecond
		stallAfter = 500
		stall      = 300 * time.Millisecond
	)
	closedTarget := &stallTarget{serviceTime: service, stallAfter: stallAfter, stallFor: stall}
	closed, err := RunClosed(closedTarget, 4, 1000) // 4000 requests, 4 see the stall
	if err != nil {
		t.Fatal(err)
	}

	openTarget := &stallTarget{serviceTime: service, stallAfter: stallAfter, stallFor: stall}
	open, err := Run(openTarget, Options{Rate: 2000, Duration: 1500 * time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	if closed.Completed == 0 || open.Completed == 0 {
		t.Fatalf("no completions: closed=%d open=%d", closed.Completed, open.Completed)
	}
	closedP99 := closed.PercentileMillis(0.99)
	openP99 := open.PercentileMillis(0.99)
	stallMs := float64(stall) / float64(time.Millisecond)

	// Closed loop: at most one stalled sample per worker out of 1000, so
	// the stall cannot reach p99.
	if closedP99 >= stallMs/2 {
		t.Errorf("closed-loop p99 = %.1fms; expected the stall (%.0fms) to be hidden below %.0fms",
			closedP99, stallMs, stallMs/2)
	}
	// Open loop: ~600 of ~3000 intended arrivals land in the stall window
	// and measure it against their intended send time.
	if openP99 <= closedP99 {
		t.Errorf("open-loop p99 = %.2fms not strictly above closed-loop p99 = %.2fms", openP99, closedP99)
	}
	if openP99 < 2*closedP99 {
		t.Errorf("open-loop p99 = %.2fms, want ≥ 2× closed-loop %.2fms under a %.0fms stall",
			openP99, closedP99, stallMs)
	}
	if openP99 < stallMs/4 {
		t.Errorf("open-loop p99 = %.2fms does not reflect the %.0fms stall", openP99, stallMs)
	}
}

// queueTarget models a service with fixed concurrency and service time —
// capacity = concurrency/serviceTime requests per second — so a sweep has
// a real knee to find.
type queueTarget struct {
	sem     chan struct{}
	service time.Duration
}

func newQueueTarget(concurrency int, service time.Duration) *queueTarget {
	return &queueTarget{sem: make(chan struct{}, concurrency), service: service}
}

func (q *queueTarget) Send(uint64) error {
	q.sem <- struct{}{}
	time.Sleep(q.service)
	<-q.sem
	return nil
}

func (q *queueTarget) Close() error { return nil }

func TestSweepFindsSaturationKnee(t *testing.T) {
	// Capacity 4/1ms = 4000 req/s; the sweep crosses it.
	factory := func() (Target, error) { return newQueueTarget(4, time.Millisecond), nil }
	rates := []float64{250, 1000, 12000}
	points, err := Sweep(factory, rates, Options{Duration: 400 * time.Millisecond, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(rates) {
		t.Fatalf("sweep returned %d points, want %d", len(points), len(rates))
	}
	for _, pt := range points {
		if pt.Result.Completed == 0 {
			t.Fatalf("rate %g completed nothing", pt.Rate)
		}
		if pt.Result.Hist.Count() == 0 {
			t.Fatalf("rate %g produced an empty histogram", pt.Rate)
		}
	}
	knee := Knee(points, 0)
	if knee < 1 {
		t.Fatalf("Knee = %d; the 12000 req/s point (3× capacity) must be past the knee", knee)
	}
	// Past the knee the tail is queueing: p99 far above the lowest rate's.
	below, above := points[0].Result, points[knee].Result
	if above.PercentileMillis(0.99) <= below.PercentileMillis(0.99) {
		t.Errorf("p99 at knee (%.2fms) not above baseline p99 (%.2fms)",
			above.PercentileMillis(0.99), below.PercentileMillis(0.99))
	}
}

func TestKneeEdgeCases(t *testing.T) {
	mk := func(p50, p99 time.Duration, completed int64) *Result {
		r := &Result{Hist: newHistFrom(p50, p99), Completed: completed}
		return r
	}
	// Flat sweep: no knee.
	flat := []SweepPoint{
		{Rate: 100, Result: mk(time.Millisecond, 2*time.Millisecond, 10)},
		{Rate: 200, Result: mk(time.Millisecond, 2*time.Millisecond, 10)},
	}
	if got := Knee(flat, 8); got != -1 {
		t.Errorf("Knee(flat) = %d, want -1", got)
	}
	// Divergent second point.
	div := []SweepPoint{
		{Rate: 100, Result: mk(time.Millisecond, 2*time.Millisecond, 10)},
		{Rate: 200, Result: mk(time.Millisecond, 50*time.Millisecond, 10)},
	}
	if got := Knee(div, 8); got != 1 {
		t.Errorf("Knee(divergent) = %d, want 1", got)
	}
	// Zero-completion points are skipped, not treated as saturated.
	gap := []SweepPoint{
		{Rate: 100, Result: mk(time.Millisecond, 2*time.Millisecond, 10)},
		{Rate: 200, Result: &Result{Hist: hdr.New()}},
		{Rate: 400, Result: mk(time.Millisecond, 2*time.Millisecond, 10)},
	}
	if got := Knee(gap, 8); got != -1 {
		t.Errorf("Knee(gap) = %d, want -1", got)
	}
}

// newHistFrom builds a histogram whose p50/p99 approximate the given
// values: 98 samples at p50, 2 at p99 (the nearest-rank p99 of 100
// samples is the 99th smallest).
func newHistFrom(p50, p99 time.Duration) *hdr.Histogram {
	h := hdr.New()
	for i := 0; i < 98; i++ {
		h.RecordDuration(p50)
	}
	h.RecordDuration(p99)
	h.RecordDuration(p99)
	return h
}

// errorTarget classifies failures for accounting tests.
type errorTarget struct{ err error }

func (e *errorTarget) Send(uint64) error { return e.err }
func (e *errorTarget) Close() error      { return nil }

func TestErrorClassification(t *testing.T) {
	for _, tc := range []struct {
		err   error
		check func(r *Result) int64
		name  string
	}{
		{netstack.ErrShed, func(r *Result) int64 { return r.Shed }, "shed"},
		{netstack.ErrRejected, func(r *Result) int64 { return r.Rejected }, "rejected"},
	} {
		res, err := Run(&errorTarget{err: tc.err}, Options{Rate: 1000, Duration: 100 * time.Millisecond, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed != 0 {
			t.Errorf("%s: Completed = %d, want 0", tc.name, res.Completed)
		}
		if got := tc.check(res); got != res.Offered-res.Dropped {
			t.Errorf("%s: counter = %d, want %d", tc.name, got, res.Offered-res.Dropped)
		}
		if res.Hist.Count() != 0 {
			t.Errorf("%s: failed requests must not pollute the latency histogram", tc.name)
		}
	}
}

func TestTargetRegistry(t *testing.T) {
	// The registry is process-global and duplicate registration panics,
	// so stay idempotent under -count>1 reruns.
	if !HasTarget("loadgen-test-target") {
		RegisterTarget("loadgen-test-target", func(cfg core.Config) (Target, error) {
			return newQueueTarget(1, time.Microsecond), nil
		})
	}
	if !HasTarget("loadgen-test-target") {
		t.Fatal("registered target not found")
	}
	tgt, err := NewTarget("loadgen-test-target", core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()
	if err := tgt.Send(0); err != nil {
		t.Fatal(err)
	}
	if _, err := NewTarget("no-such-target", core.DefaultConfig()); err == nil {
		t.Fatal("unknown target did not error")
	}
	found := false
	for _, n := range TargetNames() {
		if n == "loadgen-test-target" {
			found = true
		}
	}
	if !found {
		t.Error("TargetNames missing registered target")
	}
}

func TestMaxOutstandingDropsAreCounted(t *testing.T) {
	// A target that completes nothing during the offered window forces
	// the safety valve: arrivals beyond MaxOutstanding are dropped and
	// counted. The release fires after the window so Run's drain phase
	// can finish.
	block := make(chan struct{})
	go func() {
		time.Sleep(150 * time.Millisecond)
		close(block)
	}()
	tgt := &blockingTarget{block: block}
	res, err := Run(tgt, Options{Rate: 2000, Duration: 100 * time.Millisecond, Seed: 1, MaxOutstanding: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Error("expected dropped arrivals with MaxOutstanding=4 and a wedged target")
	}
	if res.Dropped+4 != res.Offered {
		t.Errorf("Offered=%d Dropped=%d: accounting must cover every arrival", res.Offered, res.Dropped)
	}
}

type blockingTarget struct{ block chan struct{} }

func (b *blockingTarget) Send(uint64) error { <-b.block; return nil }
func (b *blockingTarget) Close() error      { return nil }
