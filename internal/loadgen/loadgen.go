// Package loadgen is the coordinated-omission-safe serving tier's load
// generator (DESIGN.md §11). It drives a Target open-loop: request arrival
// times come from a seeded Poisson process fixed *before* the run, and
// each response's latency is recorded against the request's intended
// arrival time, not the moment the generator actually managed to send it.
//
// The distinction is the whole point. A closed-loop driver (each client
// waits for its previous response) lets a stalled server silently pause
// the offered load: during an N-millisecond stall a closed loop records
// one N-millisecond sample per client and simply issues fewer requests,
// so the stall nearly vanishes from the percentiles — Gil Tene's
// "coordinated omission". The open-loop generator keeps offering load on
// the intended schedule; every request that should have been sent during
// the stall measures the stall, and the recorded distribution is the one
// a production user population (which does not politely stop clicking)
// would experience. The steady-state EMSE work in PAPERS.md
// (arXiv:2209.15369) makes the companion argument: latency
// *distributions*, not means, are the production-relevant signal.
//
// Latencies land in an hdr.Histogram, so per-generator histograms merge
// losslessly and p50/p99/p99.9 survive millions of requests. Targets
// register by benchmark name (the finagle workloads register theirs), and
// Sweep walks offered load upward to find the saturation knee.
package loadgen

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"renaissance/internal/core"
	"renaissance/internal/hdr"
	"renaissance/internal/netstack"
)

// A Target is one service under load: Send issues request seq and blocks
// until its response. Implementations must be safe for concurrent Sends —
// an open-loop generator overlaps requests whenever the service is slower
// than the arrival process.
type Target interface {
	Send(seq uint64) error
	Close() error
}

// TargetFactory builds a fresh target (service plus client) for one
// measurement; sweeps call it once per offered rate so points do not
// contaminate each other.
type TargetFactory func(cfg core.Config) (Target, error)

var targets sync.Map // string -> TargetFactory

// RegisterTarget registers a target factory under a benchmark name.
// Duplicate registration panics, matching the benchmark registry.
func RegisterTarget(name string, f TargetFactory) {
	if _, dup := targets.LoadOrStore(name, f); dup {
		panic(fmt.Sprintf("loadgen: duplicate target %s", name))
	}
}

// NewTarget builds the named target.
func NewTarget(name string, cfg core.Config) (Target, error) {
	v, ok := targets.Load(name)
	if !ok {
		return nil, fmt.Errorf("loadgen: no open-loop target registered for %q", name)
	}
	return v.(TargetFactory)(cfg)
}

// HasTarget reports whether a target is registered under name.
func HasTarget(name string) bool {
	_, ok := targets.Load(name)
	return ok
}

// TargetNames returns the registered target names, sorted.
func TargetNames() []string {
	var out []string
	targets.Range(func(k, _ any) bool {
		out = append(out, k.(string))
		return true
	})
	sort.Strings(out)
	return out
}

// DefaultMaxOutstanding caps concurrently in-flight requests when
// Options.MaxOutstanding is unset — a generator-side safety valve far
// above any sane operating point, so a wedged target cannot spawn
// unbounded goroutines. Arrivals refused by the cap are counted in
// Result.Dropped, never silently discarded from the accounting.
const DefaultMaxOutstanding = 1 << 16

// Options configures one open-loop measurement.
type Options struct {
	// Rate is the offered load in requests per second; must be > 0.
	Rate float64
	// Duration is how long load is offered (1s when 0). The run then
	// drains in-flight requests before returning.
	Duration time.Duration
	// Seed fixes the Poisson arrival schedule (the `-chaos.seed`
	// determinism convention: same seed, same intended send times).
	Seed int64
	// MaxOutstanding caps in-flight requests (DefaultMaxOutstanding
	// when 0).
	MaxOutstanding int
}

// Result is the outcome of one measurement at one offered rate.
type Result struct {
	// Rate is the offered load (requests/second); 0 for closed-loop runs.
	Rate float64
	// Offered counts scheduled arrivals; Completed successful responses.
	Offered   int64
	Completed int64
	// Shed and Rejected count overload turn-aways (netstack.ErrShed /
	// netstack.ErrRejected); Errors everything else.
	Shed     int64
	Rejected int64
	Errors   int64
	// Dropped counts arrivals refused by the MaxOutstanding safety valve.
	Dropped int64
	// Elapsed spans first arrival to last drained response.
	Elapsed time.Duration
	// Hist holds the latency distribution of completed requests —
	// measured from *intended* send time for open-loop runs, from actual
	// send time for closed-loop runs.
	Hist *hdr.Histogram
}

// Throughput returns completed requests per second over the run.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Elapsed.Seconds()
}

// PercentileMillis returns the q-th latency quantile in milliseconds.
func (r *Result) PercentileMillis(q float64) float64 {
	return float64(r.Hist.Quantile(q)) / float64(time.Millisecond)
}

// arrivalOffsets fixes the Poisson arrival schedule before the run: the
// deterministic (per seed) offsets from the run's start at which requests
// are *intended* to be sent, with exponential inter-arrival gaps of mean
// 1/rate. Pinning the schedule up front is what makes the measurement
// coordinated-omission-safe — a stall in the target cannot retroactively
// thin the schedule.
func arrivalOffsets(seed int64, rate float64, d time.Duration) []time.Duration {
	rng := rand.New(rand.NewSource(seed))
	var out []time.Duration
	offset := time.Duration(0)
	for {
		offset += time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		if offset >= d {
			return out
		}
		out = append(out, offset)
	}
}

// Run drives the target open-loop per the options and returns the
// latency distribution measured against intended send times.
func Run(t Target, opt Options) (*Result, error) {
	if opt.Rate <= 0 {
		return nil, errors.New("loadgen: Rate must be > 0")
	}
	if opt.Duration <= 0 {
		opt.Duration = time.Second
	}
	maxOut := opt.MaxOutstanding
	if maxOut <= 0 {
		maxOut = DefaultMaxOutstanding
	}
	schedule := arrivalOffsets(opt.Seed, opt.Rate, opt.Duration)

	res := &Result{Rate: opt.Rate, Hist: hdr.New()}
	var completed, shed, rejected, errs atomic.Int64
	sem := make(chan struct{}, maxOut)
	var wg sync.WaitGroup
	start := time.Now()
	for seq, offset := range schedule {
		intended := start.Add(offset)
		// Sleep until the intended send time; when the generator is
		// behind (send-time slip), fire immediately — the latency is
		// measured from `intended` either way, so slip shows up as
		// latency instead of disappearing from the schedule.
		if d := time.Until(intended); d > 0 {
			time.Sleep(d)
		}
		res.Offered++
		select {
		case sem <- struct{}{}:
		default:
			res.Dropped++ // safety valve, reported, never silent
			continue
		}
		wg.Add(1)
		go func(seq uint64, intended time.Time) {
			defer wg.Done()
			defer func() { <-sem }()
			err := t.Send(seq)
			lat := time.Since(intended)
			switch {
			case err == nil:
				res.Hist.RecordDuration(lat)
				completed.Add(1)
			case errors.Is(err, netstack.ErrShed):
				shed.Add(1)
			case errors.Is(err, netstack.ErrRejected):
				rejected.Add(1)
			default:
				errs.Add(1)
			}
		}(uint64(seq), intended)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Completed = completed.Load()
	res.Shed = shed.Load()
	res.Rejected = rejected.Load()
	res.Errors = errs.Load()
	return res, nil
}

// RunClosed drives the target closed-loop — `clients` workers, each
// issuing `perClient` requests back-to-back, latency measured from the
// *actual* send time — the measurement style the finagle workloads used
// before this tier existed. It exists for A/B comparison: under a server
// stall it under-reports tail latency (each worker contributes one
// stalled sample and stops offering load), which is exactly the
// coordinated omission the open-loop Run avoids. See
// TestOpenLoopSeesStallClosedLoopHides.
func RunClosed(t Target, clients, perClient int) (*Result, error) {
	if clients <= 0 || perClient <= 0 {
		return nil, errors.New("loadgen: clients and perClient must be > 0")
	}
	res := &Result{Hist: hdr.New()}
	var completed, shed, rejected, errs atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				seq := uint64(c*perClient + i)
				sent := time.Now()
				err := t.Send(seq)
				switch {
				case err == nil:
					res.Hist.RecordDuration(time.Since(sent))
					completed.Add(1)
				case errors.Is(err, netstack.ErrShed):
					shed.Add(1)
				case errors.Is(err, netstack.ErrRejected):
					rejected.Add(1)
				default:
					errs.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Offered = int64(clients * perClient)
	res.Completed = completed.Load()
	res.Shed = shed.Load()
	res.Rejected = rejected.Load()
	res.Errors = errs.Load()
	return res, nil
}
