package loadgen

import (
	"errors"
	"sort"
)

// SweepPoint is one offered rate of a saturation sweep with its measured
// result.
type SweepPoint struct {
	Rate   float64
	Result *Result
}

// DefaultKneeFactor is the p99-vs-p50 divergence ratio that marks a sweep
// point as saturated when no factor is given.
const DefaultKneeFactor = 8.0

// Sweep walks the offered load upward through rates (sorted ascending),
// building a fresh target per point so queue state from one rate cannot
// leak into the next, and returns the per-rate results.
func Sweep(factory func() (Target, error), rates []float64, opt Options) ([]SweepPoint, error) {
	if len(rates) == 0 {
		return nil, errors.New("loadgen: empty sweep")
	}
	sorted := append([]float64(nil), rates...)
	sort.Float64s(sorted)
	out := make([]SweepPoint, 0, len(sorted))
	for _, rate := range sorted {
		t, err := factory()
		if err != nil {
			return out, err
		}
		o := opt
		o.Rate = rate
		res, err := Run(t, o)
		cerr := t.Close()
		if err != nil {
			return out, err
		}
		if cerr != nil {
			return out, cerr
		}
		out = append(out, SweepPoint{Rate: rate, Result: res})
	}
	return out, nil
}

// Knee returns the index of the first sweep point past the saturation
// knee, or -1 when every point is below it. A point is saturated when its
// p99 has diverged from its own p50 by at least factor (the service keeps
// a healthy median but its tail is queueing), or when its p99 exceeds
// factor times the p99 of the sweep's lowest rate (deep saturation, where
// the whole distribution — median included — has shifted up and the
// p99/p50 ratio alone flattens out again). factor <= 0 means
// DefaultKneeFactor. Points that completed nothing are skipped: an
// all-shed point says the admission path saturated, not the service
// latency.
func Knee(points []SweepPoint, factor float64) int {
	if factor <= 0 {
		factor = DefaultKneeFactor
	}
	baseline := 0.0
	for i, pt := range points {
		r := pt.Result
		if r == nil || r.Completed == 0 {
			continue
		}
		p50 := r.PercentileMillis(0.50)
		p99 := r.PercentileMillis(0.99)
		if baseline == 0 {
			baseline = p99
			if i == 0 {
				continue // the lowest rate defines the baseline
			}
		}
		if p99 >= factor*p50 || (baseline > 0 && p99 >= factor*baseline) {
			return i
		}
	}
	return -1
}
