package futures

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPromiseSuccess(t *testing.T) {
	p := NewPromise[int]()
	f := p.Future()
	if _, _, ok := f.Poll(); ok {
		t.Error("future complete before promise fulfilled")
	}
	if err := p.Success(7); err != nil {
		t.Fatal(err)
	}
	v, err := f.Await()
	if err != nil || v != 7 {
		t.Errorf("Await = (%v, %v), want (7, nil)", v, err)
	}
	if v, err, ok := f.Poll(); !ok || v != 7 || err != nil {
		t.Errorf("Poll = (%v, %v, %v)", v, err, ok)
	}
}

func TestPromiseFailure(t *testing.T) {
	p := NewPromise[string]()
	boom := errors.New("boom")
	if err := p.Failure(boom); err != nil {
		t.Fatal(err)
	}
	_, err := p.Future().Await()
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestDoubleCompletion(t *testing.T) {
	p := NewPromise[int]()
	if err := p.Success(1); err != nil {
		t.Fatal(err)
	}
	if err := p.Success(2); !errors.Is(err, ErrAlreadyCompleted) {
		t.Errorf("second Success err = %v", err)
	}
	if err := p.Failure(errors.New("x")); !errors.Is(err, ErrAlreadyCompleted) {
		t.Errorf("Failure after Success err = %v", err)
	}
	if v, _ := p.Future().Await(); v != 1 {
		t.Errorf("value = %d, want first completion 1", v)
	}
}

func TestTrySuccessRace(t *testing.T) {
	p := NewPromise[int]()
	var wins atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if p.TrySuccess(i) {
				wins.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if wins.Load() != 1 {
		t.Errorf("winners = %d, want exactly 1", wins.Load())
	}
}

func TestOnCompleteBeforeAndAfter(t *testing.T) {
	p := NewPromise[int]()
	var order []string
	var mu sync.Mutex
	record := func(s string) func(int, error) {
		return func(int, error) {
			mu.Lock()
			order = append(order, s)
			mu.Unlock()
		}
	}
	p.Future().OnComplete(record("before"))
	_ = p.Success(1)
	p.Future().OnComplete(record("after"))
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "before" || order[1] != "after" {
		t.Errorf("order = %v", order)
	}
}

func TestCompletedAndFailed(t *testing.T) {
	v, err := Completed(3).Await()
	if v != 3 || err != nil {
		t.Errorf("Completed = (%v, %v)", v, err)
	}
	boom := errors.New("boom")
	if _, err := Failed[int](boom).Await(); !errors.Is(err, boom) {
		t.Errorf("Failed err = %v", err)
	}
}

func TestAsync(t *testing.T) {
	f := Async(func() (int, error) { return 5, nil })
	if v, err := f.Await(); v != 5 || err != nil {
		t.Errorf("Async = (%v, %v)", v, err)
	}
	boom := errors.New("boom")
	f2 := Async(func() (int, error) { return 0, boom })
	if _, err := f2.Await(); !errors.Is(err, boom) {
		t.Errorf("Async err = %v", err)
	}
}

func TestMapFlatMapChain(t *testing.T) {
	f := Completed(10)
	g := Map(f, func(v int) int { return v * 2 })
	h := FlatMap(g, func(v int) *Future[string] {
		return Async(func() (string, error) {
			if v == 20 {
				return "twenty", nil
			}
			return "", errors.New("wrong")
		})
	})
	v, err := h.Await()
	if err != nil || v != "twenty" {
		t.Errorf("chain = (%v, %v)", v, err)
	}
}

func TestMapErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	f := Failed[int](boom)
	calls := 0
	g := Map(f, func(v int) int { calls++; return v })
	if _, err := g.Await(); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	if calls != 0 {
		t.Error("Map function ran despite failure")
	}
	h := FlatMap(f, func(int) *Future[int] { calls++; return Completed(0) })
	if _, err := h.Await(); !errors.Is(err, boom) {
		t.Errorf("FlatMap err = %v", err)
	}
	if calls != 0 {
		t.Error("FlatMap function ran despite failure")
	}
}

func TestZip(t *testing.T) {
	a := Async(func() (int, error) { return 1, nil })
	b := Async(func() (string, error) { return "x", nil })
	pair, err := Zip(a, b).Await()
	if err != nil || pair.A != 1 || pair.B != "x" {
		t.Errorf("Zip = (%+v, %v)", pair, err)
	}
}

func TestSequence(t *testing.T) {
	fs := []*Future[int]{Completed(1), Async(func() (int, error) { return 2, nil }), Completed(3)}
	vs, err := Sequence(fs).Await()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 || vs[0] != 1 || vs[1] != 2 || vs[2] != 3 {
		t.Errorf("Sequence = %v", vs)
	}
	// Empty sequence completes immediately.
	if vs, err := Sequence[int](nil).Await(); err != nil || vs != nil {
		t.Errorf("empty Sequence = (%v, %v)", vs, err)
	}
	// Failure propagates.
	boom := errors.New("boom")
	bad := []*Future[int]{Completed(1), Failed[int](boom)}
	if _, err := Sequence(bad).Await(); !errors.Is(err, boom) {
		t.Errorf("Sequence err = %v", err)
	}
}

func TestFirstCompletedOf(t *testing.T) {
	slow := Async(func() (int, error) { time.Sleep(50 * time.Millisecond); return 1, nil })
	fast := Completed(2)
	v, err := FirstCompletedOf([]*Future[int]{slow, fast}).Await()
	if err != nil || v != 2 {
		t.Errorf("FirstCompletedOf = (%v, %v), want fast value 2", v, err)
	}
}

func TestDoneChannelSelect(t *testing.T) {
	p := NewPromise[int]()
	select {
	case <-p.Future().Done():
		t.Fatal("done before completion")
	default:
	}
	_ = p.Success(1)
	select {
	case <-p.Future().Done():
	case <-time.After(time.Second):
		t.Fatal("done channel never closed")
	}
}

func TestConcurrentCallbacksAllRun(t *testing.T) {
	p := NewPromise[int]()
	var count atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Future().OnComplete(func(int, error) { count.Add(1) })
		}()
	}
	// Complete concurrently with registrations.
	go func() { _ = p.Success(9) }()
	wg.Wait()
	// All registrations either ran synchronously or were enqueued; wait
	// briefly for any in-flight callback executions.
	deadline := time.Now().Add(2 * time.Second)
	for count.Load() != 50 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if count.Load() != 50 {
		t.Errorf("callbacks run = %d, want 50", count.Load())
	}
}

func TestAwaitTimeout(t *testing.T) {
	// Incomplete future: times out with ErrTimeout.
	p := NewPromise[int]()
	start := time.Now()
	_, err := p.Future().AwaitTimeout(20 * time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("AwaitTimeout did not respect the deadline")
	}

	// The future is unaffected: it can still complete and be awaited.
	_ = p.Success(7)
	if v, err := p.Future().AwaitTimeout(time.Second); err != nil || v != 7 {
		t.Errorf("after completion = (%d, %v)", v, err)
	}

	// Completed future returns immediately with its value or error.
	if v, err := Completed(3).AwaitTimeout(time.Nanosecond); err != nil || v != 3 {
		t.Errorf("completed = (%d, %v)", v, err)
	}
	boom := errors.New("boom")
	if _, err := Failed[int](boom).AwaitTimeout(time.Second); !errors.Is(err, boom) {
		t.Errorf("failed future err = %v, want boom", err)
	}
}
