// Package futures implements composable futures and promises in the style
// of Twitter Util / Scala futures (SIP-14), used by the future-genetic and
// finagle-chirper benchmarks (Table 1: "task-parallel, contention" and
// "network stack, futures, atomics"). Completion uses an atomic state
// transition; continuations registered with Map/FlatMap/OnComplete are
// closure dispatches, which is what the paper's idynamic metric estimates.
package futures

import (
	"errors"
	"sync"
	"time"

	"renaissance/internal/metrics"
)

// ErrAlreadyCompleted is returned when a promise is completed twice.
var ErrAlreadyCompleted = errors.New("futures: promise already completed")

// ErrTimeout is returned by AwaitTimeout when the deadline elapses before
// the future completes.
var ErrTimeout = errors.New("futures: await timed out")

// Future is a read handle on an eventually available value of type T.
type Future[T any] struct {
	mu        sync.Mutex
	done      chan struct{}
	value     T
	err       error
	completed bool
	callbacks []func(T, error)
}

// Promise is the write handle that completes its future exactly once.
type Promise[T any] struct {
	f    *Future[T]
	once sync.Once
}

// NewPromise creates an incomplete promise/future pair.
func NewPromise[T any]() *Promise[T] {
	metrics.IncObject()
	return &Promise[T]{f: &Future[T]{done: make(chan struct{})}}
}

// Future returns the promise's future.
func (p *Promise[T]) Future() *Future[T] { return p.f }

// Success completes the future with a value. It returns
// ErrAlreadyCompleted if the promise was completed before.
func (p *Promise[T]) Success(v T) error { return p.complete(v, nil) }

// Failure completes the future with an error.
func (p *Promise[T]) Failure(err error) error {
	var zero T
	return p.complete(zero, err)
}

// TrySuccess completes the future with a value if it is not yet completed,
// reporting whether this call won the race — the idiom finagle-chirper-like
// services use for request hedging.
func (p *Promise[T]) TrySuccess(v T) bool { return p.complete(v, nil) == nil }

func (p *Promise[T]) complete(v T, err error) error {
	won := false
	p.once.Do(func() {
		won = true
		f := p.f
		metrics.IncSynch()
		f.mu.Lock()
		f.value, f.err, f.completed = v, err, true
		cbs := f.callbacks
		f.callbacks = nil
		f.mu.Unlock()
		metrics.IncAtomic() // publication of the completed state
		close(f.done)
		metrics.IncNotify()
		for _, cb := range cbs {
			metrics.IncIDynamic()
			cb(v, err)
		}
	})
	if !won {
		return ErrAlreadyCompleted
	}
	return nil
}

// OnComplete registers a continuation invoked with the result; if the
// future is already complete the continuation runs synchronously.
func (f *Future[T]) OnComplete(cb func(T, error)) {
	metrics.IncSynch()
	f.mu.Lock()
	if !f.completed {
		f.callbacks = append(f.callbacks, cb)
		f.mu.Unlock()
		return
	}
	v, err := f.value, f.err
	f.mu.Unlock()
	metrics.IncIDynamic()
	cb(v, err)
}

// Await blocks until the future completes and returns its result.
func (f *Future[T]) Await() (T, error) {
	metrics.IncPark()
	<-f.done
	return f.value, f.err
}

// AwaitTimeout blocks until the future completes or d elapses, returning
// ErrTimeout in the latter case. The future itself is unaffected: it may
// still complete later and can be awaited again.
func (f *Future[T]) AwaitTimeout(d time.Duration) (T, error) {
	metrics.IncPark()
	// An already-completed future must return its result even when the
	// timeout is zero or expired; without this check the select below
	// chooses randomly between the two ready channels.
	select {
	case <-f.done:
		return f.value, f.err
	default:
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-f.done:
		return f.value, f.err
	case <-timer.C:
		var zero T
		return zero, ErrTimeout
	}
}

// Poll returns the result if the future is complete.
func (f *Future[T]) Poll() (v T, err error, ok bool) {
	select {
	case <-f.done:
		return f.value, f.err, true
	default:
		var zero T
		return zero, nil, false
	}
}

// Done returns a channel closed upon completion, for use in select.
func (f *Future[T]) Done() <-chan struct{} { return f.done }

// Completed returns a future that is already successfully completed.
func Completed[T any](v T) *Future[T] {
	p := NewPromise[T]()
	_ = p.Success(v)
	return p.f
}

// Failed returns a future that is already completed with err.
func Failed[T any](err error) *Future[T] {
	p := NewPromise[T]()
	_ = p.Failure(err)
	return p.f
}

// Async runs fn on a new goroutine and returns its future.
func Async[T any](fn func() (T, error)) *Future[T] {
	p := NewPromise[T]()
	go func() {
		metrics.IncIDynamic()
		v, err := fn()
		if err != nil {
			_ = p.Failure(err)
			return
		}
		_ = p.Success(v)
	}()
	return p.f
}

// Map returns a future holding fn applied to f's value; errors pass
// through.
func Map[T, U any](f *Future[T], fn func(T) U) *Future[U] {
	p := NewPromise[U]()
	f.OnComplete(func(v T, err error) {
		if err != nil {
			_ = p.Failure(err)
			return
		}
		metrics.IncIDynamic()
		_ = p.Success(fn(v))
	})
	return p.f
}

// FlatMap chains an asynchronous continuation.
func FlatMap[T, U any](f *Future[T], fn func(T) *Future[U]) *Future[U] {
	p := NewPromise[U]()
	f.OnComplete(func(v T, err error) {
		if err != nil {
			_ = p.Failure(err)
			return
		}
		metrics.IncIDynamic()
		fn(v).OnComplete(func(u U, err error) {
			if err != nil {
				_ = p.Failure(err)
				return
			}
			_ = p.Success(u)
		})
	})
	return p.f
}

// Zip pairs the results of two futures.
func Zip[T, U any](a *Future[T], b *Future[U]) *Future[struct {
	A T
	B U
}] {
	return FlatMap(a, func(av T) *Future[struct {
		A T
		B U
	}] {
		return Map(b, func(bv U) struct {
			A T
			B U
		} {
			return struct {
				A T
				B U
			}{av, bv}
		})
	})
}

// Sequence converts a slice of futures into a future of the slice of
// results, failing fast on the first error.
func Sequence[T any](fs []*Future[T]) *Future[[]T] {
	p := NewPromise[[]T]()
	n := len(fs)
	if n == 0 {
		_ = p.Success(nil)
		return p.f
	}
	metrics.IncArray()
	results := make([]T, n)
	var mu sync.Mutex
	remaining := n
	for i, f := range fs {
		i, f := i, f
		f.OnComplete(func(v T, err error) {
			if err != nil {
				_ = p.Failure(err)
				return
			}
			metrics.IncSynch()
			mu.Lock()
			results[i] = v
			remaining--
			last := remaining == 0
			mu.Unlock()
			if last {
				_ = p.Success(results)
			}
		})
	}
	return p.f
}

// FirstCompletedOf completes with the first future to complete.
func FirstCompletedOf[T any](fs []*Future[T]) *Future[T] {
	p := NewPromise[T]()
	for _, f := range fs {
		f.OnComplete(func(v T, err error) {
			if err != nil {
				_ = p.Failure(err)
				return
			}
			p.TrySuccess(v)
		})
	}
	return p.f
}
