package renaissance

import (
	"fmt"
	"sync"

	"renaissance/internal/core"
	"renaissance/internal/graphdb"
	"renaissance/internal/memdb"
)

func init() {
	register("db-shootout",
		"Parallel shootout across the in-memory key-value engines.",
		[]string{"query-processing", "data structures"}, newDBShootout)
	register("neo4j-analytics",
		"Analytical queries and transactions on the property-graph store.",
		[]string{"query processing", "transactions"}, newNeo4jAnalytics)
}

// --- db-shootout ---

type dbShootoutWorkload struct {
	keys    int
	ops     int
	workers int
	lens    []int
}

func newDBShootout(cfg core.Config) (core.Workload, error) {
	return &dbShootoutWorkload{
		keys:    cfg.Scale(2000),
		ops:     cfg.Scale(4000),
		workers: 4,
	}, nil
}

func (w *dbShootoutWorkload) RunIteration() error {
	w.lens = w.lens[:0]
	for _, engine := range memdb.Engines() {
		// Load phase.
		for i := 0; i < w.keys; i++ {
			engine.Put(fmt.Sprintf("key-%06d", i), []byte{byte(i), byte(i >> 8)})
		}
		// Parallel mixed phase: the same deterministic op stream split
		// across workers (disjoint key ranges avoid cross-engine
		// divergence from racy overwrites).
		var wg sync.WaitGroup
		for g := 0; g < w.workers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				state := uint64(g + 1)
				lo := g * w.keys / w.workers
				hi := (g + 1) * w.keys / w.workers
				for i := 0; i < w.ops/w.workers; i++ {
					state = state*6364136223846793005 + 1442695040888963407
					k := lo + int((state>>33)%uint64(hi-lo))
					key := fmt.Sprintf("key-%06d", k)
					switch (state >> 20) % 10 {
					case 0, 1, 2, 3, 4, 5: // reads dominate
						engine.Get(key)
					case 6, 7:
						engine.Put(key, []byte{byte(i)})
					case 8:
						engine.Range(key, key+"~", func(string, []byte) bool { return false })
					case 9:
						engine.Delete(key)
						engine.Put(key, []byte{byte(i)}) // keep key population stable
					}
				}
			}(g)
		}
		wg.Wait()
		w.lens = append(w.lens, engine.Len())
	}
	return nil
}

func (w *dbShootoutWorkload) Validate() error {
	if len(w.lens) != 3 {
		return fmt.Errorf("db-shootout: %d engines ran", len(w.lens))
	}
	for i := 1; i < len(w.lens); i++ {
		if w.lens[i] != w.lens[0] {
			return fmt.Errorf("db-shootout: engines disagree on size: %v", w.lens)
		}
	}
	if w.lens[0] != w.keys {
		return fmt.Errorf("db-shootout: size %d, want %d", w.lens[0], w.keys)
	}
	return nil
}

// --- neo4j-analytics ---

type neo4jWorkload struct {
	users   int
	follows int
	txOps   int
	checked bool
}

func newNeo4jAnalytics(cfg core.Config) (core.Workload, error) {
	return &neo4jWorkload{
		users:   cfg.Scale(300),
		follows: 6,
		txOps:   cfg.Scale(120),
	}, nil
}

func (w *neo4jWorkload) RunIteration() error {
	g := graphdb.New()

	// Build a follower graph in batched transactions.
	ids := make([]graphdb.NodeID, w.users)
	const batch = 50
	for lo := 0; lo < w.users; lo += batch {
		tx := g.WriteTx()
		hi := lo + batch
		if hi > w.users {
			hi = w.users
		}
		for i := lo; i < hi; i++ {
			id, err := tx.CreateNode("User", map[string]any{"region": i % 4})
			if err != nil {
				return err
			}
			ids[i] = id
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	tx := g.WriteTx()
	for i := 0; i < w.users; i++ {
		for k := 1; k <= w.follows; k++ {
			if err := tx.Relate(ids[i], ids[(i+k*k)%w.users], "FOLLOWS", nil); err != nil {
				return err
			}
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}

	// Concurrent analytics + write transactions.
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for worker := 0; worker < 2; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < w.txOps; i++ {
				switch i % 4 {
				case 0:
					rows := g.Match("User", "FOLLOWS", "User")
					if len(rows) < w.users*w.follows {
						errCh <- fmt.Errorf("neo4j-analytics: %d FOLLOWS rows, want >= %d",
							len(rows), w.users*w.follows)
						return
					}
				case 1:
					byRegion := g.AggregateByProp("User", "region")
					total := 0
					for _, n := range byRegion {
						total += n
					}
					if total != w.users {
						errCh <- fmt.Errorf("neo4j-analytics: aggregate covers %d users", total)
						return
					}
				case 2:
					if d := g.ShortestPath(ids[0], ids[w.users/2], "FOLLOWS"); d < 0 {
						errCh <- fmt.Errorf("neo4j-analytics: no path across the graph")
						return
					}
				case 3:
					wtx := g.WriteTx()
					id, err := wtx.CreateNode("Post", map[string]any{"by": worker})
					if err == nil {
						err = wtx.Relate(ids[(worker*31+i)%w.users], id, "POSTED", nil)
					}
					if err == nil {
						err = wtx.Commit()
					}
					if err != nil {
						errCh <- err
						return
					}
				}
			}
		}(worker)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return err
	}
	top := g.TopDegree("User", 5)
	if len(top) != 5 {
		return fmt.Errorf("neo4j-analytics: top-degree query returned %d rows", len(top))
	}
	w.checked = true
	return nil
}

func (w *neo4jWorkload) Validate() error {
	if !w.checked {
		return fmt.Errorf("neo4j-analytics: queries never verified")
	}
	return nil
}
