package renaissance

import (
	"testing"

	"renaissance/internal/core"
)

// paperBenchmarks is the Table 1 inventory.
var paperBenchmarks = []string{
	"akka-uct", "als", "chi-square", "db-shootout", "dec-tree", "dotty",
	"finagle-chirper", "finagle-http", "fj-kmeans", "future-genetic",
	"log-regression", "movie-lens", "naive-bayes", "neo4j-analytics",
	"page-rank", "philosophers", "reactors", "rx-scrabble", "scrabble",
	"stm-bench7", "streams-mnemonics",
}

func TestAll21Registered(t *testing.T) {
	specs := core.Global.BySuite(core.SuiteRenaissance)
	if len(specs) != 21 {
		t.Fatalf("registered %d renaissance benchmarks, want 21", len(specs))
	}
	for _, name := range paperBenchmarks {
		if _, ok := core.Global.Lookup(core.SuiteRenaissance, name); !ok {
			t.Errorf("benchmark %q not registered", name)
		}
	}
	for _, s := range specs {
		if s.Description == "" || len(s.Focus) == 0 {
			t.Errorf("benchmark %q missing description or focus", s.Name)
		}
	}
}

// TestEveryBenchmarkRunsAndValidates executes each benchmark once at a
// small size factor and checks the validation hook.
func TestEveryBenchmarkRunsAndValidates(t *testing.T) {
	for _, name := range paperBenchmarks {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, ok := core.Global.Lookup(core.SuiteRenaissance, name)
			if !ok {
				t.Fatal("not registered")
			}
			r := core.NewRunner()
			r.Config.SizeFactor = 0.1
			r.WarmupOverride = 1
			r.MeasuredOverride = 1
			res, err := r.Run(spec)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !res.Validated {
				t.Error("benchmark has no validation")
			}
			if res.Profile == nil || res.Profile.RefCycles <= 0 {
				t.Error("no profile collected")
			}
		})
	}
}

// TestMetricProfilesMatchTable1Focus spot-checks that the benchmarks'
// metric profiles reflect their Table 1 focus: the STM benchmarks are
// atomic-heavy, the actor benchmarks park/notify, the streams benchmarks
// execute closure dispatch.
func TestMetricProfilesMatchTable1Focus(t *testing.T) {
	run := func(name string) map[string]float64 {
		spec, _ := core.Global.Lookup(core.SuiteRenaissance, name)
		r := core.NewRunner()
		r.Config.SizeFactor = 0.1
		r.WarmupOverride = 1
		r.MeasuredOverride = 1
		res, err := r.Run(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := map[string]float64{}
		for _, m := range []struct {
			key string
			idx int
		}{
			{"synch", 0}, {"wait", 1}, {"notify", 2}, {"atomic", 3},
			{"park", 4}, {"object", 7}, {"method", 9}, {"idynamic", 10},
		} {
			out[m.key] = float64(res.Profile.Counts.Counts[m.idx])
		}
		return out
	}

	stm := run("philosophers")
	// With per-ref waiter wakeup, synch is zero by design (no mutex on
	// any STM path) and notify only registers when a Retry-er actually
	// parked — both only appear under contention, which is rare on a
	// single core. Assert on the always-present STM signals: CAS/version
	// traffic and ref allocation.
	if stm["atomic"] == 0 || stm["object"] == 0 {
		t.Errorf("philosophers profile lacks STM signals: %v", stm)
	}
	uct := run("akka-uct")
	if uct["atomic"] == 0 || uct["method"] == 0 {
		t.Errorf("akka-uct profile lacks sends/dispatch: %v", uct)
	}
	scr := run("scrabble")
	if scr["idynamic"] == 0 {
		t.Errorf("scrabble profile lacks idynamic: %v", scr)
	}
	if scr["idynamic"] <= uct["idynamic"] {
		t.Errorf("scrabble idynamic (%v) should exceed akka-uct (%v)",
			scr["idynamic"], uct["idynamic"])
	}
}

// TestSTMBench7Variants runs the read-mostly and write-heavy STMBench7
// mixes (not part of the registered Table 1 inventory) end to end: both
// must hold the sum invariant, and the read-mostly mix must keep its long
// traversals consistent under whatever short-transfer load it generates.
func TestSTMBench7Variants(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.SizeFactor = 0.2
	for _, tc := range []struct {
		name string
		mix  sbMix
	}{
		{"read-mostly", sbMixReadHeavy},
		{"write-heavy", sbMixWriteHeavy},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			w, err := newSTMBench7Mix(cfg, tc.mix)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.RunIteration(); err != nil {
				t.Fatal(err)
			}
			if err := w.(interface{ Validate() error }).Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
