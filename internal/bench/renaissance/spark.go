package renaissance

import (
	"fmt"
	"math"

	"renaissance/internal/core"
	"renaissance/internal/rdd"
)

func init() {
	register("als",
		"Alternating Least Squares matrix factorization on the RDD engine.",
		[]string{"data-parallel", "compute-bound"}, newALS)
	register("chi-square",
		"Parallel chi-square feature test on the RDD engine.",
		[]string{"data-parallel", "machine learning"}, newChiSquare)
	register("dec-tree",
		"Classification decision tree on the RDD engine.",
		[]string{"data-parallel", "machine learning"}, newDecTree)
	register("log-regression",
		"Logistic regression by parallel gradient descent.",
		[]string{"data-parallel", "machine learning"}, newLogRegression)
	register("movie-lens",
		"ALS-based recommender over a synthetic ratings matrix.",
		[]string{"data-parallel", "compute-bound"}, newMovieLens)
	register("naive-bayes",
		"Multinomial naive Bayes on the RDD engine.",
		[]string{"data-parallel", "machine learning"}, newNaiveBayes)
	register("page-rank",
		"PageRank over a synthetic web graph on the RDD engine.",
		[]string{"data-parallel", "atomics"}, newPageRank)
}

// syntheticPoints generates a two-class Gaussian dataset with the classes
// shifted symmetrically about the origin, so a bias-free linear model (the
// logistic regression kernel has no intercept) can separate them.
func syntheticPoints(cfg core.Config, n, dim int, stream string) []rdd.LabeledPoint {
	rng := cfg.Rand(stream)
	pts := make([]rdd.LabeledPoint, n)
	for i := range pts {
		label := i % 2
		shift := float64(label*2-1) * 1.25
		f := make([]float64, dim)
		for j := range f {
			f[j] = rng.NormFloat64() + shift
		}
		pts[i] = rdd.LabeledPoint{Features: f, Label: label}
	}
	return pts
}

func accuracy(pts []rdd.LabeledPoint, predict func([]float64) int) float64 {
	correct := 0
	for _, p := range pts {
		if predict(p.Features) == p.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(pts))
}

// --- als ---

type alsWorkload struct {
	ratings []rdd.Rating
	graph   *rdd.RatingsGraph
	rank    int
	rmse    float64
}

func newALS(cfg core.Config) (core.Workload, error) {
	rng := cfg.Rand("als")
	users, items, rank := cfg.Scale(60), cfg.Scale(40), 4
	trueU := make([][]float64, users)
	trueI := make([][]float64, items)
	for u := range trueU {
		trueU[u] = randomVec(rng, rank)
	}
	for i := range trueI {
		trueI[i] = randomVec(rng, rank)
	}
	var ratings []rdd.Rating
	for u := 0; u < users; u++ {
		for i := 0; i < items; i++ {
			if rng.Float64() < 0.4 {
				dot := 0.0
				for k := 0; k < rank; k++ {
					dot += trueU[u][k] * trueI[i][k]
				}
				ratings = append(ratings, rdd.Rating{User: u, Item: i, Value: dot})
			}
		}
	}
	// The rating graph is grouped into CSR once at setup; the measured
	// iteration is pure alternating solves (the seed re-grouped the
	// ratings inside every ALS call).
	return &alsWorkload{ratings: ratings, graph: rdd.NewRatingsGraph(ratings), rank: rank}, nil
}

func randomVec(rng interface{ Float64() float64 }, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()
	}
	return v
}

func (w *alsWorkload) RunIteration() error {
	model, err := rdd.ALSTrain(w.graph, w.rank, 8, 0.01, 7)
	if err != nil {
		return err
	}
	w.rmse = model.RMSE(w.ratings)
	return nil
}

func (w *alsWorkload) Validate() error {
	if w.rmse > 0.15 {
		return fmt.Errorf("als: RMSE %.4f exceeds 0.15", w.rmse)
	}
	return nil
}

// --- chi-square ---

type chiSquareWorkload struct {
	points []rdd.LabeledPoint
	stats  []float64
}

func newChiSquare(cfg core.Config) (core.Workload, error) {
	rng := cfg.Rand("chi-square")
	n := cfg.Scale(4000)
	const dim = 12
	pts := make([]rdd.LabeledPoint, n)
	for i := range pts {
		label := i % 2
		f := make([]float64, dim)
		// Feature 0 is strongly label-dependent; the rest are noise.
		f[0] = float64(label)
		if rng.Float64() < 0.1 {
			f[0] = float64(1 - label)
		}
		for j := 1; j < dim; j++ {
			f[j] = float64(rng.Intn(4))
		}
		pts[i] = rdd.LabeledPoint{Features: f, Label: label}
	}
	return &chiSquareWorkload{points: pts}, nil
}

func (w *chiSquareWorkload) RunIteration() error {
	w.stats = rdd.ChiSquare(rdd.Parallelize(w.points, 8), 2, len(w.points[0].Features), 4)
	return nil
}

func (w *chiSquareWorkload) Validate() error {
	if len(w.stats) == 0 {
		return fmt.Errorf("chi-square: no statistics computed")
	}
	for j := 1; j < len(w.stats); j++ {
		if w.stats[0] <= w.stats[j] {
			return fmt.Errorf("chi-square: informative feature (%.1f) did not dominate noise feature %d (%.1f)",
				w.stats[0], j, w.stats[j])
		}
	}
	return nil
}

// --- dec-tree ---

type decTreeWorkload struct {
	points []rdd.LabeledPoint
	acc    float64
}

func newDecTree(cfg core.Config) (core.Workload, error) {
	return &decTreeWorkload{points: syntheticPoints(cfg, cfg.Scale(3000), 8, "dec-tree")}, nil
}

func (w *decTreeWorkload) RunIteration() error {
	tree, err := rdd.DecisionTree(rdd.Parallelize(w.points, 8), 2, 6, 4)
	if err != nil {
		return err
	}
	w.acc = accuracy(w.points, tree.Predict)
	return nil
}

func (w *decTreeWorkload) Validate() error {
	if w.acc < 0.75 {
		return fmt.Errorf("dec-tree: accuracy %.3f below 0.75", w.acc)
	}
	return nil
}

// --- log-regression ---

type logRegWorkload struct {
	points []rdd.LabeledPoint
	acc    float64
}

func newLogRegression(cfg core.Config) (core.Workload, error) {
	return &logRegWorkload{points: syntheticPoints(cfg, cfg.Scale(4000), 10, "log-regression")}, nil
}

func (w *logRegWorkload) RunIteration() error {
	weights, err := rdd.LogisticRegression(rdd.Parallelize(w.points, 8), 40, 1.0)
	if err != nil {
		return err
	}
	w.acc = accuracy(w.points, func(f []float64) int {
		if rdd.PredictLogistic(weights, f) > 0.5 {
			return 1
		}
		return 0
	})
	return nil
}

func (w *logRegWorkload) Validate() error {
	if w.acc < 0.8 {
		return fmt.Errorf("log-regression: accuracy %.3f below 0.8", w.acc)
	}
	return nil
}

// --- movie-lens ---

type movieLensWorkload struct {
	ratings []rdd.Rating
	graph   *rdd.RatingsGraph
	rated   map[int]map[int]bool
	recs    int
}

func newMovieLens(cfg core.Config) (core.Workload, error) {
	rng := cfg.Rand("movie-lens")
	users, movies := cfg.Scale(50), cfg.Scale(35)
	if users < 12 {
		users = 12
	}
	if movies < 9 {
		movies = 9
	}
	w := &movieLensWorkload{rated: make(map[int]map[int]bool)}
	for u := 0; u < users; u++ {
		w.rated[u] = make(map[int]bool)
		for m := 0; m < movies; m++ {
			if rng.Float64() < 0.3 || m == u%movies {
				// Preference structure: users like movies congruent mod 3.
				base := 2.0
				if u%3 == m%3 {
					base = 4.5
				}
				w.ratings = append(w.ratings, rdd.Rating{User: u, Item: m, Value: base + rng.Float64()})
				w.rated[u][m] = true
			}
		}
	}
	w.graph = rdd.NewRatingsGraph(w.ratings)
	return w, nil
}

func (w *movieLensWorkload) RunIteration() error {
	model, err := rdd.ALSTrain(w.graph, 4, 6, 0.05, 11)
	if err != nil {
		return err
	}
	w.recs = 0
	for u := 0; u < 10; u++ {
		w.recs += len(model.Recommend(u, w.rated[u], 5))
	}
	return nil
}

func (w *movieLensWorkload) Validate() error {
	if w.recs == 0 {
		return fmt.Errorf("movie-lens: no recommendations produced")
	}
	return nil
}

// --- naive-bayes ---

type naiveBayesWorkload struct {
	points []rdd.LabeledPoint
	acc    float64
}

func newNaiveBayes(cfg core.Config) (core.Workload, error) {
	rng := cfg.Rand("naive-bayes")
	n := cfg.Scale(5000)
	const dim = 16
	pts := make([]rdd.LabeledPoint, n)
	for i := range pts {
		label := i % 3
		f := make([]float64, dim)
		for j := range f {
			base := 1.0
			if j%3 == label {
				base = 6.0
			}
			f[j] = base + float64(rng.Intn(3))
		}
		pts[i] = rdd.LabeledPoint{Features: f, Label: label}
	}
	return &naiveBayesWorkload{points: pts}, nil
}

func (w *naiveBayesWorkload) RunIteration() error {
	model, err := rdd.NaiveBayes(rdd.Parallelize(w.points, 8), 3, len(w.points[0].Features))
	if err != nil {
		return err
	}
	w.acc = accuracy(w.points, model.Predict)
	return nil
}

func (w *naiveBayesWorkload) Validate() error {
	if w.acc < 0.9 {
		return fmt.Errorf("naive-bayes: accuracy %.3f below 0.9", w.acc)
	}
	return nil
}

// --- page-rank ---

type pageRankWorkload struct {
	graph *rdd.Graph
	n     int
	ranks map[int]float64
}

func newPageRank(cfg core.Config) (core.Workload, error) {
	rng := cfg.Rand("page-rank")
	n := cfg.Scale(600)
	var edges []rdd.Pair[int, int]
	for v := 0; v < n; v++ {
		// Every vertex links to its successor (strong connectivity) plus a
		// few preferential links toward low-numbered "hub" vertices.
		edges = append(edges, rdd.KV(v, (v+1)%n))
		for k := 0; k < 3; k++ {
			edges = append(edges, rdd.KV(v, rng.Intn(v/4+1)))
		}
	}
	// The web graph is compacted into a CSR edge array once at setup; the
	// measured iteration is pure rank propagation (the seed re-derived
	// the link groups with a shuffle every iteration).
	return &pageRankWorkload{graph: rdd.NewGraph(edges), n: n}, nil
}

func (w *pageRankWorkload) RunIteration() error {
	w.ranks = w.graph.PageRank(10, 0.85)
	return nil
}

func (w *pageRankWorkload) Validate() error {
	if len(w.ranks) != w.n {
		return fmt.Errorf("page-rank: %d ranked vertices, want %d", len(w.ranks), w.n)
	}
	total := 0.0
	for _, r := range w.ranks {
		total += r
	}
	// Rank mass is conserved exactly now that dangling mass is
	// redistributed (the seed kernel dropped it, which is why this check
	// used to need a 1% tolerance).
	if math.Abs(total-float64(w.n)) > 1e-6*float64(w.n) {
		return fmt.Errorf("page-rank: total rank %.6f deviates from %d", total, w.n)
	}
	// Hub vertices must outrank the median.
	if w.ranks[0] <= 1.0 {
		return fmt.Errorf("page-rank: hub rank %.3f not above average", w.ranks[0])
	}
	return nil
}
