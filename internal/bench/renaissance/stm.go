package renaissance

import (
	"fmt"
	"runtime"
	"sync"

	"renaissance/internal/core"
	"renaissance/internal/stm"
)

func init() {
	register("philosophers",
		"Dining philosophers on the TL2 software transactional memory.",
		[]string{"STM", "atomics", "guarded blocks"}, newPhilosophers)
	register("stm-bench7",
		"Mixed STM operations over a shared object graph with invariants.",
		[]string{"STM", "atomics"}, newSTMBench7)
}

// stmWorkers derives the worker count from the config so -cpu sweeps
// actually vary contention: the Threads hint wins, otherwise the current
// GOMAXPROCS.
func stmWorkers(cfg core.Config, min int) int {
	n := cfg.Threads
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < min {
		n = min
	}
	return n
}

type philosophersWorkload struct {
	philosophers int
	meals        int
	eaten        []*stm.Ref
}

func newPhilosophers(cfg core.Config) (core.Workload, error) {
	return &philosophersWorkload{
		// The paper's table runs five philosophers; scale up with the
		// parallelism hint so wider machines see more fork contention.
		philosophers: stmWorkers(cfg, 5),
		meals:        cfg.Scale(120),
	}, nil
}

func (w *philosophersWorkload) RunIteration() error {
	n := w.philosophers
	forks := make([]*stm.Ref, n)
	w.eaten = make([]*stm.Ref, n)
	for i := range forks {
		forks[i] = stm.NewRef(false) // false = free
		w.eaten[i] = stm.NewRef(0)
	}

	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			left, right := forks[p], forks[(p+1)%n]
			mine := w.eaten[p]
			for m := 0; m < w.meals; m++ {
				// Acquire both forks atomically, retrying (blocking on the
				// STM's guarded-block wait) while either is taken.
				_ = stm.Atomically(func(tx *stm.Tx) error {
					if tx.Read(left).(bool) || tx.Read(right).(bool) {
						tx.Retry()
					}
					tx.Write(left, true)
					tx.Write(right, true)
					return nil
				})
				// Eat, then release.
				_ = stm.Atomically(func(tx *stm.Tx) error {
					tx.Write(mine, tx.Read(mine).(int)+1)
					tx.Write(left, false)
					tx.Write(right, false)
					return nil
				})
			}
		}(p)
	}
	wg.Wait()
	return nil
}

func (w *philosophersWorkload) Validate() error {
	for p, ref := range w.eaten {
		if got := stm.ReadAtomic(ref).(int); got != w.meals {
			return fmt.Errorf("philosophers: philosopher %d ate %d meals, want %d", p, got, w.meals)
		}
	}
	return nil
}

// sbMix is an STMBench7-style operation mix, in percent: short transfers
// (the frequent small write), long read-only traversals of the whole
// graph, and regional updates (balanced multi-ref mutations within one
// assembly, bumping its version stamp). The remainder up to 100 falls to
// transfers.
type sbMix struct {
	traversalPct int
	regionalPct  int
}

var (
	sbMixDefault   = sbMix{traversalPct: 25, regionalPct: 25}
	sbMixReadHeavy = sbMix{traversalPct: 80, regionalPct: 10}
	sbMixWriteHeavy = sbMix{traversalPct: 5, regionalPct: 15}
)

// sbAssembly is one node of the STMBench7-like object graph: a tree of
// assemblies whose leaves own the atomic parts (value refs under the sum
// invariant). Every assembly carries a version-stamp ref that regional
// updates bump and traversals read, so a full traversal's read set covers
// the whole structure, not just the leaves — the shape that exercises TL2
// timestamp extension.
type sbAssembly struct {
	stamp    *stm.Ref // int, bumped by regional updates
	children []*sbAssembly
	parts    []*stm.Ref // leaf atomic parts; non-nil only at the bottom
}

const (
	sbFanout = 3
	sbDepth  = 3 // 3^3 = 27 bottom assemblies
)

// stmBench7Workload mirrors STMBench7's mix over a deep shared object
// graph, traversed and mutated by concurrent transactions, with a global
// sum invariant (mutations are balanced transfers).
type stmBench7Workload struct {
	root    *sbAssembly
	bottom  []*sbAssembly // assemblies that own parts
	leaves  []*stm.Ref    // all atomic parts, flat
	total   int
	ops     int
	workers int
	mix     sbMix
}

func newSTMBench7(cfg core.Config) (core.Workload, error) {
	return newSTMBench7Mix(cfg, sbMixDefault)
}

// newSTMBench7Mix builds the workload with an explicit operation mix; the
// read-mostly and write-heavy variants (sbMixReadHeavy, sbMixWriteHeavy)
// are exercised by tests and benchmarks without altering the registered
// Table 1 inventory.
func newSTMBench7Mix(cfg core.Config, mix sbMix) (core.Workload, error) {
	nLeaves := cfg.Scale(216)
	if nLeaves < 8 {
		nLeaves = 8
	}
	w := &stmBench7Workload{
		ops:     cfg.Scale(400),
		workers: stmWorkers(cfg, 2),
		mix:     mix,
	}
	perBottom := nLeaves / intPow(sbFanout, sbDepth)
	if perBottom < 1 {
		perBottom = 1
	}
	w.root = w.buildAssembly(sbDepth, perBottom)
	return w, nil
}

func intPow(b, e int) int {
	n := 1
	for i := 0; i < e; i++ {
		n *= b
	}
	return n
}

func (w *stmBench7Workload) buildAssembly(depth, perBottom int) *sbAssembly {
	a := &sbAssembly{stamp: stm.NewRef(0)}
	if depth == 0 {
		a.parts = make([]*stm.Ref, perBottom)
		for i := range a.parts {
			a.parts[i] = stm.NewRef(100)
			w.total += 100
			w.leaves = append(w.leaves, a.parts[i])
		}
		w.bottom = append(w.bottom, a)
		return a
	}
	a.children = make([]*sbAssembly, sbFanout)
	for i := range a.children {
		a.children[i] = w.buildAssembly(depth-1, perBottom)
	}
	return a
}

// traverse walks the whole graph inside tx, reading every assembly stamp
// and summing every atomic part.
func traverse(tx *stm.Tx, a *sbAssembly) int {
	_ = tx.Read(a.stamp)
	sum := 0
	for _, p := range a.parts {
		sum += tx.Read(p).(int)
	}
	for _, c := range a.children {
		sum += traverse(tx, c)
	}
	return sum
}

func (w *stmBench7Workload) RunIteration() error {
	var wg sync.WaitGroup
	n := len(w.leaves)
	errs := make([]error, w.workers)
	for g := 0; g < w.workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			state := uint64(g*2654435761 + 12345)
			next := func(bound int) int {
				state = state*6364136223846793005 + 1442695040888963407
				return int((state >> 33) % uint64(bound))
			}
			for i := 0; i < w.ops; i++ {
				p := next(100)
				switch {
				case p < w.mix.traversalPct:
					// Long read-only structural traversal: must always
					// observe the invariant, even while short transfers
					// commit underneath (timestamp extension keeps this
					// from livelocking).
					if err := stm.Atomically(func(tx *stm.Tx) error {
						if sum := traverse(tx, w.root); sum != w.total {
							return fmt.Errorf("stm-bench7: snapshot sum %d != %d", sum, w.total)
						}
						return nil
					}); err != nil && errs[g] == nil {
						errs[g] = err
					}
				case p < w.mix.traversalPct+w.mix.regionalPct:
					// Regional update: balanced transfers inside one
					// bottom assembly, stamping it.
					a := w.bottom[next(len(w.bottom))]
					if len(a.parts) < 2 {
						continue
					}
					_ = stm.Atomically(func(tx *stm.Tx) error {
						for k := 0; k+1 < len(a.parts); k += 2 {
							src, dst := a.parts[k], a.parts[k+1]
							sv := tx.Read(src).(int)
							dv := tx.Read(dst).(int)
							tx.Write(src, sv-2)
							tx.Write(dst, dv+2)
						}
						tx.Write(a.stamp, tx.Read(a.stamp).(int)+1)
						return nil
					})
				default:
					// Short transfer: the frequent small operation.
					a, b := next(n), next(n)
					if a == b {
						continue
					}
					_ = stm.Atomically(func(tx *stm.Tx) error {
						av := tx.Read(w.leaves[a]).(int)
						bv := tx.Read(w.leaves[b]).(int)
						tx.Write(w.leaves[a], av-1)
						tx.Write(w.leaves[b], bv+1)
						return nil
					})
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (w *stmBench7Workload) Validate() error {
	sum := 0
	for _, r := range w.leaves {
		sum += stm.ReadAtomic(r).(int)
	}
	if sum != w.total {
		return fmt.Errorf("stm-bench7: final sum %d, want %d (invariant broken)", sum, w.total)
	}
	return nil
}
