package renaissance

import (
	"fmt"
	"sync"

	"renaissance/internal/core"
	"renaissance/internal/stm"
)

func init() {
	register("philosophers",
		"Dining philosophers on the TL2 software transactional memory.",
		[]string{"STM", "atomics", "guarded blocks"}, newPhilosophers)
	register("stm-bench7",
		"Mixed STM operations over a shared object graph with invariants.",
		[]string{"STM", "atomics"}, newSTMBench7)
}

type philosophersWorkload struct {
	philosophers int
	meals        int
	eaten        []*stm.Ref
}

func newPhilosophers(cfg core.Config) (core.Workload, error) {
	return &philosophersWorkload{
		philosophers: 5,
		meals:        cfg.Scale(120),
	}, nil
}

func (w *philosophersWorkload) RunIteration() error {
	n := w.philosophers
	forks := make([]*stm.Ref, n)
	w.eaten = make([]*stm.Ref, n)
	for i := range forks {
		forks[i] = stm.NewRef(false) // false = free
		w.eaten[i] = stm.NewRef(0)
	}

	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			left, right := forks[p], forks[(p+1)%n]
			mine := w.eaten[p]
			for m := 0; m < w.meals; m++ {
				// Acquire both forks atomically, retrying (blocking on the
				// STM's guarded-block wait) while either is taken.
				_ = stm.Atomically(func(tx *stm.Tx) error {
					if tx.Read(left).(bool) || tx.Read(right).(bool) {
						tx.Retry()
					}
					tx.Write(left, true)
					tx.Write(right, true)
					return nil
				})
				// Eat, then release.
				_ = stm.Atomically(func(tx *stm.Tx) error {
					tx.Write(mine, tx.Read(mine).(int)+1)
					tx.Write(left, false)
					tx.Write(right, false)
					return nil
				})
			}
		}(p)
	}
	wg.Wait()
	return nil
}

func (w *philosophersWorkload) Validate() error {
	for p, ref := range w.eaten {
		if got := stm.ReadAtomic(ref).(int); got != w.meals {
			return fmt.Errorf("philosophers: philosopher %d ate %d meals, want %d", p, got, w.meals)
		}
	}
	return nil
}

// stmBench7Workload mirrors STMBench7's mix: a shared object graph (here a
// grid of refs), traversed and mutated by concurrent transactions, with a
// global sum invariant (mutations are balanced transfers).
type stmBench7Workload struct {
	refs    []*stm.Ref
	total   int
	ops     int
	workers int
}

func newSTMBench7(cfg core.Config) (core.Workload, error) {
	n := cfg.Scale(64)
	if n < 8 {
		n = 8
	}
	w := &stmBench7Workload{
		refs:    make([]*stm.Ref, n),
		ops:     cfg.Scale(400),
		workers: 4,
	}
	for i := range w.refs {
		w.refs[i] = stm.NewRef(100)
		w.total += 100
	}
	return w, nil
}

func (w *stmBench7Workload) RunIteration() error {
	var wg sync.WaitGroup
	n := len(w.refs)
	for g := 0; g < w.workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			state := uint64(g*2654435761 + 12345)
			next := func(bound int) int {
				state = state*6364136223846793005 + 1442695040888963407
				return int((state >> 33) % uint64(bound))
			}
			for i := 0; i < w.ops; i++ {
				switch next(4) {
				case 0, 1: // short transfer (the frequent small operation)
					a, b := next(n), next(n)
					if a == b {
						continue
					}
					_ = stm.Atomically(func(tx *stm.Tx) error {
						av := tx.Read(w.refs[a]).(int)
						bv := tx.Read(w.refs[b]).(int)
						tx.Write(w.refs[a], av-1)
						tx.Write(w.refs[b], bv+1)
						return nil
					})
				case 2: // long traversal (read-only structural operation)
					_ = stm.Atomically(func(tx *stm.Tx) error {
						sum := 0
						for _, r := range w.refs {
							sum += tx.Read(r).(int)
						}
						if sum != w.total {
							return fmt.Errorf("stm-bench7: snapshot sum %d != %d", sum, w.total)
						}
						return nil
					})
				case 3: // regional update (balanced multi-ref mutation)
					base := next(n - 4)
					_ = stm.Atomically(func(tx *stm.Tx) error {
						for k := 0; k < 2; k++ {
							src, dst := w.refs[base+k], w.refs[base+k+2]
							sv := tx.Read(src).(int)
							dv := tx.Read(dst).(int)
							tx.Write(src, sv-2)
							tx.Write(dst, dv+2)
						}
						return nil
					})
				}
			}
		}(g)
	}
	wg.Wait()
	return nil
}

func (w *stmBench7Workload) Validate() error {
	sum := 0
	for _, r := range w.refs {
		sum += stm.ReadAtomic(r).(int)
	}
	if sum != w.total {
		return fmt.Errorf("stm-bench7: final sum %d, want %d (invariant broken)", sum, w.total)
	}
	return nil
}
