package renaissance

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"renaissance/internal/core"
	"renaissance/internal/futures"
	"renaissance/internal/hdr"
	"renaissance/internal/loadgen"
	"renaissance/internal/memdb"
	"renaissance/internal/netstack"
)

func init() {
	register("finagle-http",
		"High server load over the loopback request/response framework.",
		[]string{"network stack", "message-passing"}, newFinagleHTTP)
	register("finagle-chirper",
		"A microblogging service with futures and atomic counters over loopback.",
		[]string{"network stack", "futures", "atomics"}, newFinagleChirper)
	loadgen.RegisterTarget("finagle-http", newFinagleHTTPTarget)
	loadgen.RegisterTarget("finagle-chirper", newFinagleChirperTarget)
}

// clientShare splits total requests over clients without losing the
// remainder: client c issues count requests with sequence numbers starting
// at start. The first total%clients clients carry one extra request.
// (The old split used total/clients for every client, silently dropping
// total%clients requests whenever the division wasn't even — and the
// served-count validation compared against the same truncated product, so
// the loss was invisible.)
func clientShare(total, clients, c int) (start, count int) {
	per := total / clients
	extra := total % clients
	count = per
	if c < extra {
		count++
	}
	start = c*per + min(c, extra)
	return start, count
}

// --- finagle-http ---

type finagleHTTPWorkload struct {
	requests int
	clients  int
	served   int64
	lat      *hdr.Histogram
}

func newFinagleHTTP(cfg core.Config) (core.Workload, error) {
	return &finagleHTTPWorkload{
		requests: cfg.Scale(600),
		clients:  4,
		lat:      hdr.New(),
	}, nil
}

func (w *finagleHTTPWorkload) RunIteration() error {
	srv, err := netstack.Serve("127.0.0.1:0", func(req []byte) *futures.Future[[]byte] {
		// Echo with a small header, like a trivial HTTP handler.
		resp := append([]byte("OK:"), req...)
		return futures.Completed(resp)
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	var wg sync.WaitGroup
	errCh := make(chan error, w.clients)
	for c := 0; c < w.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli, err := netstack.Dial(srv.Addr(), 2)
			if err != nil {
				errCh <- err
				return
			}
			defer cli.Close()
			start, count := clientShare(w.requests, w.clients, c)
			buf := make([]byte, 8)
			for i := 0; i < count; i++ {
				binary.BigEndian.PutUint64(buf, uint64(start+i))
				sent := time.Now()
				resp, err := cli.CallSync(buf)
				if err != nil {
					errCh <- err
					return
				}
				w.lat.RecordDuration(time.Since(sent))
				if len(resp) != len(buf)+3 {
					errCh <- fmt.Errorf("finagle-http: bad response length %d", len(resp))
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return err
	}
	w.served = srv.Requests.Load()
	if w.served != int64(w.requests) {
		return fmt.Errorf("finagle-http: served %d, want %d", w.served, w.requests)
	}
	return nil
}

func (w *finagleHTTPWorkload) Validate() error {
	if w.served == 0 {
		return fmt.Errorf("finagle-http: nothing served")
	}
	return nil
}

// LatencyHistogram implements core.LatencyReporter: per-request round-trip
// latencies, summarized into the run result's percentile block.
func (w *finagleHTTPWorkload) LatencyHistogram() *hdr.Histogram { return w.lat }

// --- finagle-chirper ---

// chirper protocol: first byte is the op ('P' post, 'F' fetch feed),
// followed by a 4-byte user id and the payload.

type chirperService struct {
	mu    sync.Mutex
	feeds map[uint32][][]byte
	posts atomic.Int64
	// cache memoizes assembled 'F' responses in a memdb store, keyed by
	// the raw 4-byte user id. Fetches fill it while holding the feed lock;
	// posts invalidate under the same lock, so a cached entry always
	// reflects every post that preceded its fill.
	cache     memdb.Store
	cacheHit  atomic.Int64
	cacheMiss atomic.Int64
}

func newChirperService() *chirperService {
	return &chirperService{
		feeds: make(map[uint32][][]byte),
		cache: memdb.NewShardedHash(16),
	}
}

func (s *chirperService) handle(req []byte) *futures.Future[[]byte] {
	if len(req) < 5 {
		return futures.Completed([]byte("ERR"))
	}
	op := req[0]
	user := binary.BigEndian.Uint32(req[1:5])
	key := string(req[1:5])
	switch op {
	case 'P':
		s.posts.Add(1)
		msg := append([]byte(nil), req[5:]...)
		s.mu.Lock()
		s.feeds[user] = append(s.feeds[user], msg)
		// Invalidate under the feed lock: a concurrent fetch fills the
		// cache under the same lock, so it either sees this post or is
		// invalidated by it — never a stale fill surviving the post.
		s.cache.Delete(key)
		s.mu.Unlock()
		return futures.Completed([]byte("ACK"))
	case 'F':
		if v, ok := s.cache.Get(key); ok {
			s.cacheHit.Add(1)
			return futures.Completed(v)
		}
		s.cacheMiss.Add(1)
		// Asynchronous fetch: assemble the feed on another goroutine, the
		// future-composition shape of the original service.
		return futures.Async(func() ([]byte, error) {
			s.mu.Lock()
			defer s.mu.Unlock()
			total := 0
			for _, m := range s.feeds[user] {
				total += len(m)
			}
			out := make([]byte, 4, 4+total)
			binary.BigEndian.PutUint32(out, uint32(len(s.feeds[user])))
			for _, m := range s.feeds[user] {
				out = append(out, m...)
			}
			s.cache.Put(key, out)
			return out, nil
		})
	default:
		return futures.Completed([]byte("ERR"))
	}
}

type finagleChirperWorkload struct {
	users     int
	postsPer  int
	verified  atomic.Int64
	cacheHits atomic.Int64
	lat       *hdr.Histogram
}

func newFinagleChirper(cfg core.Config) (core.Workload, error) {
	return &finagleChirperWorkload{
		users:    8,
		postsPer: cfg.Scale(40),
		lat:      hdr.New(),
	}, nil
}

func (w *finagleChirperWorkload) RunIteration() error {
	svc := newChirperService()
	srv, err := netstack.Serve("127.0.0.1:0", svc.handle)
	if err != nil {
		return err
	}
	defer srv.Close()

	w.verified.Store(0)
	var wg sync.WaitGroup
	errCh := make(chan error, w.users)
	for u := 0; u < w.users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			cli, err := netstack.Dial(srv.Addr(), 2)
			if err != nil {
				errCh <- err
				return
			}
			defer cli.Close()

			post := make([]byte, 5+8)
			post[0] = 'P'
			binary.BigEndian.PutUint32(post[1:5], uint32(u))
			// Post messages; every few posts, asynchronously fetch and
			// verify the feed with a future continuation.
			for i := 0; i < w.postsPer; i++ {
				binary.BigEndian.PutUint64(post[5:], uint64(i))
				sent := time.Now()
				if _, err := cli.CallSync(post); err != nil {
					errCh <- err
					return
				}
				w.lat.RecordDuration(time.Since(sent))
				if i%8 == 7 || i == w.postsPer-1 {
					fetch := make([]byte, 5)
					fetch[0] = 'F'
					binary.BigEndian.PutUint32(fetch[1:5], uint32(u))
					wantLen := uint32(i + 1)
					sent = time.Now()
					first, err := cli.CallSync(fetch)
					if err != nil {
						errCh <- err
						return
					}
					w.lat.RecordDuration(time.Since(sent))
					if len(first) < 4 || binary.BigEndian.Uint32(first) != wantLen {
						errCh <- fmt.Errorf("finagle-chirper: user %d feed mismatch at post %d", u, i)
						return
					}
					// Fetch again with no intervening post: the reply must
					// come from the memdb cache and match byte-for-byte —
					// the cache-coherence check.
					f := futures.Map(cli.Call(fetch), func(resp []byte) bool {
						return bytes.Equal(resp, first)
					})
					same, err := f.Await()
					if err != nil {
						errCh <- err
						return
					}
					if !same {
						errCh <- fmt.Errorf("finagle-chirper: user %d cached feed diverged at post %d", u, i)
						return
					}
					w.verified.Add(1)
				}
			}
		}(u)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return err
	}
	if got := svc.posts.Load(); got != int64(w.users*w.postsPer) {
		return fmt.Errorf("finagle-chirper: %d posts recorded, want %d", got, w.users*w.postsPer)
	}
	// Each verify point is one cold fetch (fill) plus one cached re-fetch;
	// posts in between invalidate, so hits and misses both equal the
	// verify count.
	verified := w.verified.Load()
	if hits := svc.cacheHit.Load(); hits != verified {
		return fmt.Errorf("finagle-chirper: %d cache hits, want %d", hits, verified)
	}
	if misses := svc.cacheMiss.Load(); misses != verified {
		return fmt.Errorf("finagle-chirper: %d cache misses, want %d", misses, verified)
	}
	w.cacheHits.Add(svc.cacheHit.Load())
	return nil
}

func (w *finagleChirperWorkload) Validate() error {
	if w.verified.Load() == 0 {
		return fmt.Errorf("finagle-chirper: no feeds verified")
	}
	if w.cacheHits.Load() == 0 {
		return fmt.Errorf("finagle-chirper: feed cache never hit")
	}
	return nil
}

// LatencyHistogram implements core.LatencyReporter.
func (w *finagleChirperWorkload) LatencyHistogram() *hdr.Histogram { return w.lat }

// --- open-loop targets ---

// Open-loop serving targets for the loadgen tier: each builds a fresh
// loopback server behind admission control (bounded accept queue in front
// of the in-flight limit) plus a pooled client, so a saturation sweep
// measures the service's queueing behavior, not leftover state.

// targetMaxPending and targetMaxQueue shape the admission path of the
// open-loop targets: up to targetMaxPending requests execute while
// targetMaxQueue more wait; beyond that the server rejects (ErrRejected)
// instead of queueing unboundedly.
const (
	targetMaxPending = 128
	targetMaxQueue   = 512
	targetPoolSize   = 32
)

type finagleHTTPTarget struct {
	srv *netstack.Server
	cli *netstack.Client
}

func newFinagleHTTPTarget(cfg core.Config) (loadgen.Target, error) {
	srv, err := netstack.Serve("127.0.0.1:0", func(req []byte) *futures.Future[[]byte] {
		return futures.Completed(append([]byte("OK:"), req...))
	})
	if err != nil {
		return nil, err
	}
	srv.MaxPending = targetMaxPending
	srv.MaxQueue = targetMaxQueue
	cli, err := netstack.Dial(srv.Addr(), targetPoolSize)
	if err != nil {
		srv.Close()
		return nil, err
	}
	return &finagleHTTPTarget{srv: srv, cli: cli}, nil
}

func (t *finagleHTTPTarget) Send(seq uint64) error {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], seq)
	resp, err := t.cli.CallSync(buf[:])
	if err != nil {
		return err
	}
	if len(resp) != len(buf)+3 {
		return fmt.Errorf("finagle-http: bad response length %d", len(resp))
	}
	return nil
}

func (t *finagleHTTPTarget) Close() error {
	cerr := t.cli.Close()
	serr := t.srv.Close()
	if cerr != nil {
		return cerr
	}
	return serr
}

type finagleChirperTarget struct {
	svc   *chirperService
	srv   *netstack.Server
	cli   *netstack.Client
	users uint32
}

func newFinagleChirperTarget(cfg core.Config) (loadgen.Target, error) {
	svc := newChirperService()
	srv, err := netstack.Serve("127.0.0.1:0", svc.handle)
	if err != nil {
		return nil, err
	}
	srv.MaxPending = targetMaxPending
	srv.MaxQueue = targetMaxQueue
	cli, err := netstack.Dial(srv.Addr(), targetPoolSize)
	if err != nil {
		srv.Close()
		return nil, err
	}
	return &finagleChirperTarget{svc: svc, srv: srv, cli: cli, users: 8}, nil
}

// Send derives the request deterministically from seq — user seq%users,
// one fetch per eight requests, posts otherwise — so the same loadgen seed
// replays the same request stream against the service.
func (t *finagleChirperTarget) Send(seq uint64) error {
	user := uint32(seq) % t.users
	if seq%8 == 7 {
		fetch := make([]byte, 5)
		fetch[0] = 'F'
		binary.BigEndian.PutUint32(fetch[1:5], user)
		resp, err := t.cli.CallSync(fetch)
		if err != nil {
			return err
		}
		if len(resp) < 4 {
			return fmt.Errorf("finagle-chirper: short feed response (%d bytes)", len(resp))
		}
		return nil
	}
	post := make([]byte, 5+8)
	post[0] = 'P'
	binary.BigEndian.PutUint32(post[1:5], user)
	binary.BigEndian.PutUint64(post[5:], seq)
	resp, err := t.cli.CallSync(post)
	if err != nil {
		return err
	}
	if !bytes.Equal(resp, []byte("ACK")) {
		return fmt.Errorf("finagle-chirper: post not acked: %q", resp)
	}
	return nil
}

func (t *finagleChirperTarget) Close() error {
	cerr := t.cli.Close()
	serr := t.srv.Close()
	if cerr != nil {
		return cerr
	}
	return serr
}
