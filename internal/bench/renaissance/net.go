package renaissance

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"renaissance/internal/core"
	"renaissance/internal/futures"
	"renaissance/internal/netstack"
)

func init() {
	register("finagle-http",
		"High server load over the loopback request/response framework.",
		[]string{"network stack", "message-passing"}, newFinagleHTTP)
	register("finagle-chirper",
		"A microblogging service with futures and atomic counters over loopback.",
		[]string{"network stack", "futures", "atomics"}, newFinagleChirper)
}

// --- finagle-http ---

type finagleHTTPWorkload struct {
	requests int
	clients  int
	served   int64
}

func newFinagleHTTP(cfg core.Config) (core.Workload, error) {
	return &finagleHTTPWorkload{
		requests: cfg.Scale(600),
		clients:  4,
	}, nil
}

func (w *finagleHTTPWorkload) RunIteration() error {
	srv, err := netstack.Serve("127.0.0.1:0", func(req []byte) *futures.Future[[]byte] {
		// Echo with a small header, like a trivial HTTP handler.
		resp := append([]byte("OK:"), req...)
		return futures.Completed(resp)
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	var wg sync.WaitGroup
	errCh := make(chan error, w.clients)
	perClient := w.requests / w.clients
	for c := 0; c < w.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli, err := netstack.Dial(srv.Addr(), 2)
			if err != nil {
				errCh <- err
				return
			}
			defer cli.Close()
			buf := make([]byte, 8)
			for i := 0; i < perClient; i++ {
				binary.BigEndian.PutUint64(buf, uint64(c*perClient+i))
				resp, err := cli.CallSync(buf)
				if err != nil {
					errCh <- err
					return
				}
				if len(resp) != len(buf)+3 {
					errCh <- fmt.Errorf("finagle-http: bad response length %d", len(resp))
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return err
	}
	w.served = srv.Requests.Load()
	if w.served != int64(perClient*w.clients) {
		return fmt.Errorf("finagle-http: served %d, want %d", w.served, perClient*w.clients)
	}
	return nil
}

func (w *finagleHTTPWorkload) Validate() error {
	if w.served == 0 {
		return fmt.Errorf("finagle-http: nothing served")
	}
	return nil
}

// --- finagle-chirper ---

// chirper protocol: first byte is the op ('P' post, 'F' fetch feed),
// followed by a 4-byte user id and the payload.

type chirperService struct {
	mu    sync.Mutex
	feeds map[uint32][][]byte
	posts atomic.Int64
}

func (s *chirperService) handle(req []byte) *futures.Future[[]byte] {
	if len(req) < 5 {
		return futures.Completed([]byte("ERR"))
	}
	op := req[0]
	user := binary.BigEndian.Uint32(req[1:5])
	switch op {
	case 'P':
		s.posts.Add(1)
		msg := append([]byte(nil), req[5:]...)
		s.mu.Lock()
		s.feeds[user] = append(s.feeds[user], msg)
		s.mu.Unlock()
		return futures.Completed([]byte("ACK"))
	case 'F':
		// Asynchronous fetch: assemble the feed on another goroutine, the
		// future-composition shape of the original service.
		return futures.Async(func() ([]byte, error) {
			s.mu.Lock()
			defer s.mu.Unlock()
			total := 0
			for _, m := range s.feeds[user] {
				total += len(m)
			}
			out := make([]byte, 4, 4+total)
			binary.BigEndian.PutUint32(out, uint32(len(s.feeds[user])))
			for _, m := range s.feeds[user] {
				out = append(out, m...)
			}
			return out, nil
		})
	default:
		return futures.Completed([]byte("ERR"))
	}
}

type finagleChirperWorkload struct {
	users    int
	postsPer int
	verified atomic.Int64
}

func newFinagleChirper(cfg core.Config) (core.Workload, error) {
	return &finagleChirperWorkload{
		users:    8,
		postsPer: cfg.Scale(40),
	}, nil
}

func (w *finagleChirperWorkload) RunIteration() error {
	svc := &chirperService{feeds: make(map[uint32][][]byte)}
	srv, err := netstack.Serve("127.0.0.1:0", svc.handle)
	if err != nil {
		return err
	}
	defer srv.Close()

	w.verified.Store(0)
	var wg sync.WaitGroup
	errCh := make(chan error, w.users)
	for u := 0; u < w.users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			cli, err := netstack.Dial(srv.Addr(), 2)
			if err != nil {
				errCh <- err
				return
			}
			defer cli.Close()

			post := make([]byte, 5+8)
			post[0] = 'P'
			binary.BigEndian.PutUint32(post[1:5], uint32(u))
			// Post messages; every few posts, asynchronously fetch and
			// verify the feed with a future continuation.
			for i := 0; i < w.postsPer; i++ {
				binary.BigEndian.PutUint64(post[5:], uint64(i))
				if _, err := cli.CallSync(post); err != nil {
					errCh <- err
					return
				}
				if i%8 == 7 || i == w.postsPer-1 {
					fetch := make([]byte, 5)
					fetch[0] = 'F'
					binary.BigEndian.PutUint32(fetch[1:5], uint32(u))
					wantLen := uint32(i + 1)
					f := futures.Map(cli.Call(fetch), func(resp []byte) bool {
						return len(resp) >= 4 && binary.BigEndian.Uint32(resp) == wantLen
					})
					okResp, err := f.Await()
					if err != nil {
						errCh <- err
						return
					}
					if !okResp {
						errCh <- fmt.Errorf("finagle-chirper: user %d feed mismatch at post %d", u, i)
						return
					}
					w.verified.Add(1)
				}
			}
		}(u)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return err
	}
	if got := svc.posts.Load(); got != int64(w.users*w.postsPer) {
		return fmt.Errorf("finagle-chirper: %d posts recorded, want %d", got, w.users*w.postsPer)
	}
	return nil
}

func (w *finagleChirperWorkload) Validate() error {
	if w.verified.Load() == 0 {
		return fmt.Errorf("finagle-chirper: no feeds verified")
	}
	return nil
}
