// Package renaissance implements the 21 benchmarks of Table 1 as native Go
// workloads on this repository's from-scratch substrates: the actor
// runtime, the RDD data-parallel engine, the TL2 STM, the fork-join pool,
// streams and Rx pipelines, futures, the loopback network framework, the
// in-memory key-value engines, the property-graph store, and the minilang
// compiler. Each benchmark mirrors its original's concurrency profile
// (Table 1's "Focus" column); workload sizes are scaled by the harness
// Config so one iteration takes tens to hundreds of milliseconds at
// SizeFactor 1.
//
// Importing this package (blank import) registers every benchmark in the
// harness's global registry.
package renaissance

import (
	"time"

	"renaissance/internal/core"
)

// spec is a local helper wiring a benchmark into the registry with the
// suite's defaults (2 warmup + 5 measured iterations, matching the
// warmup/steady-state split of §4.1 at laptop scale, and a generous
// per-benchmark deadline so one wedged workload cannot hang a sweep).
func register(name, description string, focus []string, setup func(core.Config) (core.Workload, error)) {
	core.Register(core.Spec{
		Name:        name,
		Suite:       core.SuiteRenaissance,
		Description: description,
		Focus:       focus,
		Warmup:      2,
		Measured:    5,
		Timeout:     2 * time.Minute,
		Setup:       setup,
	})
}
