package renaissance

import (
	"fmt"
	"sync/atomic"

	"renaissance/internal/actors"
	"renaissance/internal/core"
)

func init() {
	register("akka-uct",
		"Unbalanced Cobwebbed Tree computation on the actor runtime.",
		[]string{"actors", "message-passing"},
		newAkkaUCT)
	register("reactors",
		"A set of message-passing workloads (ping-pong, fan-in counting, pipelines).",
		[]string{"actors", "message-passing", "critical sections"},
		newReactors)
}

// uctWorkload expands an unbalanced tree of actors: every visited node
// spawns a deterministic, skewed number of children, reproducing the UCT
// benchmark's non-uniform actor load.
type uctWorkload struct {
	cfg      core.Config
	maxDepth int
	expected int64
	visits   atomic.Int64
}

func newAkkaUCT(cfg core.Config) (core.Workload, error) {
	w := &uctWorkload{cfg: cfg, maxDepth: 9}
	w.expected = countUCTNodes(0, 1, w.maxDepth)
	return w, nil
}

// fanout gives the deterministic, skewed child count of a node: wide near
// one flank of the tree, narrow elsewhere (the "unbalanced cobweb"). The
// expected branching factor is kept above 1 so the bounded-depth tree
// stays supercritical.
func fanout(depth int, path int64) int {
	if depth < 3 {
		return 3 // full crown: the tree cannot die out near the root
	}
	h := uint64(path)*1099511628211 + uint64(depth)*0x9E3779B97F4A7C15
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	switch h % 7 {
	case 0, 1:
		return 0
	case 2, 3:
		return 1
	case 4, 5:
		return 2
	default:
		return 3
	}
}

func countUCTNodes(depth int, path int64, maxDepth int) int64 {
	n := int64(1)
	if depth >= maxDepth {
		return n
	}
	k := fanout(depth, path)
	for c := 0; c < k; c++ {
		n += countUCTNodes(depth+1, path*4+int64(c)+1, maxDepth)
	}
	return n
}

type uctVisit struct {
	depth int
	path  int64
}

func (w *uctWorkload) RunIteration() error {
	w.visits.Store(0)
	sys := actors.NewSystem(4)
	defer sys.Shutdown()

	var behavior actors.ReceiverFunc
	behavior = func(ctx *actors.Context, msg any) {
		v := msg.(uctVisit)
		w.visits.Add(1)
		if v.depth >= w.maxDepth {
			return
		}
		k := fanout(v.depth, v.path)
		for c := 0; c < k; c++ {
			// Children join their parent's fault domain: a panicking node
			// (e.g. chaos-injected) restarts with its mailbox intact
			// instead of stopping the whole tree computation; the behavior
			// is stateless, so restart needs no factory.
			child := ctx.SpawnWith("uct", behavior, actors.SpawnOpts{
				Supervisor: ctx.Self(),
				Strategy:   actors.OneForOne{MaxRestarts: 3, Overflow: actors.Escalate},
			})
			// ctx.Send pushes onto this worker's own run queue (no inject
			// contention); idle workers steal the surplus.
			ctx.Send(child, uctVisit{v.depth + 1, v.path*4 + int64(c) + 1})
		}
	}
	root := sys.Spawn("root", behavior)
	root.Tell(uctVisit{0, 1})
	sys.AwaitQuiescence()
	if got := w.visits.Load(); got != w.expected {
		return fmt.Errorf("akka-uct: visited %d nodes, expected %d", got, w.expected)
	}
	return nil
}

func (w *uctWorkload) Validate() error {
	if w.expected < 10 {
		return fmt.Errorf("akka-uct: degenerate tree of %d nodes", w.expected)
	}
	return nil
}

// reactorsWorkload runs three message-passing micro-protocols per
// iteration: ping-pong pairs, a fan-in counter, and a forwarding pipeline.
type reactorsWorkload struct {
	cfg    core.Config
	rounds int
	pairs  int
	total  atomic.Int64
}

func newReactors(cfg core.Config) (core.Workload, error) {
	return &reactorsWorkload{
		cfg:    cfg,
		rounds: cfg.Scale(300),
		pairs:  4,
	}, nil
}

func (w *reactorsWorkload) RunIteration() error {
	sys := actors.NewSystem(4)
	defer sys.Shutdown()

	// Ping-pong pairs.
	done := make(chan int, w.pairs)
	for p := 0; p < w.pairs; p++ {
		pong := sys.Spawn("pong", actors.ReceiverFunc(func(ctx *actors.Context, msg any) {
			ctx.Reply(msg.(int) + 1)
		}))
		var ping *actors.Ref
		rounds := w.rounds
		ping = sys.Spawn("ping", actors.ReceiverFunc(func(ctx *actors.Context, msg any) {
			n := msg.(int)
			if n >= rounds {
				done <- n
				return
			}
			ctx.Send(pong, n)
		}))
		ping.Tell(0)
	}

	// Fan-in: many producers, one counter.
	counter := sys.Spawn("counter", actors.ReceiverFunc(func(ctx *actors.Context, msg any) {
		w.total.Add(int64(msg.(int)))
	}))
	for p := 0; p < 8; p++ {
		p := p
		producer := sys.Spawn("producer", actors.ReceiverFunc(func(ctx *actors.Context, msg any) {
			for i := 0; i < w.rounds/8; i++ {
				ctx.Send(counter, p+1)
			}
		}))
		producer.Tell("go")
	}

	// Pipeline: forward a token through a chain.
	const chainLen = 16
	final := sys.Spawn("sink", actors.ReceiverFunc(func(ctx *actors.Context, msg any) {
		w.total.Add(1)
	}))
	next := final
	for i := 0; i < chainLen; i++ {
		target := next
		next = sys.Spawn("stage", actors.ReceiverFunc(func(ctx *actors.Context, msg any) {
			ctx.Send(target, msg)
		}))
	}
	for i := 0; i < w.rounds/4; i++ {
		next.Tell(i)
	}

	for p := 0; p < w.pairs; p++ {
		<-done
	}
	sys.AwaitQuiescence()
	return nil
}

func (w *reactorsWorkload) Validate() error {
	if w.total.Load() == 0 {
		return fmt.Errorf("reactors: no messages accounted")
	}
	return nil
}
