package renaissance

import (
	"fmt"
	"sync"

	"renaissance/internal/core"
	"renaissance/internal/minilang"
	"renaissance/internal/rvm"
)

func init() {
	register("dotty",
		"Compiles a minilang source corpus with the full compiler pipeline.",
		[]string{"data-structures", "synchronization"}, newDotty)
}

// dottyWorkload compiles a corpus of source units (lex, parse, typecheck,
// codegen) and executes each compiled unit, with a shared symbol cache
// guarded by a mutex — the compiler-as-benchmark shape of the original
// dotty workload.
type dottyWorkload struct {
	corpus []string
	want   []int64 // per-unit expected checksums (computed at setup)

	mu    sync.Mutex
	cache map[string]int
}

func newDotty(cfg core.Config) (core.Workload, error) {
	w := &dottyWorkload{
		corpus: minilang.Corpus(cfg.Scale(24)),
		cache:  make(map[string]int),
	}
	for i, src := range w.corpus {
		p, err := minilang.Compile(src)
		if err != nil {
			return nil, fmt.Errorf("dotty: corpus unit %d: %w", i, err)
		}
		// Setup cross-checks the interpreter tiers on every unit: the
		// baseline tier-0 checksum is the reference, and a run with
		// quickening forced must agree before the measured iterations
		// (which use the configured default tier) are trusted.
		vm0 := rvm.NewInterp(p)
		vm0.Tier = rvm.TierBaseline
		v, err := vm0.Run()
		if err != nil {
			return nil, fmt.Errorf("dotty: corpus unit %d run: %w", i, err)
		}
		vm1 := rvm.NewInterp(p)
		vm1.Tier = rvm.TierQuick
		v1, err := vm1.Run()
		if err != nil {
			return nil, fmt.Errorf("dotty: corpus unit %d tier-1 run: %w", i, err)
		}
		if !v.Equal(v1) || vm0.Counters != vm1.Counters {
			return nil, fmt.Errorf("dotty: corpus unit %d tier divergence: tier0=%v tier1=%v", i, v, v1)
		}
		w.want = append(w.want, v.AsInt())
	}
	return w, nil
}

func (w *dottyWorkload) RunIteration() error {
	var wg sync.WaitGroup
	errCh := make(chan error, len(w.corpus))
	// Compile units concurrently, the way a compiler daemon compiles
	// multiple files, sharing a lock-guarded cache of unit fingerprints.
	sem := make(chan struct{}, 4)
	for i, src := range w.corpus {
		wg.Add(1)
		go func(i int, src string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			p, err := minilang.Compile(src)
			if err != nil {
				errCh <- err
				return
			}
			v, err := rvm.NewInterp(p).Run()
			if err != nil {
				errCh <- err
				return
			}
			if v.AsInt() != w.want[i] {
				errCh <- fmt.Errorf("dotty: unit %d checksum %d, want %d", i, v.AsInt(), w.want[i])
				return
			}
			w.mu.Lock()
			w.cache[src[:24]] = int(v.AsInt())
			w.mu.Unlock()
		}(i, src)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return err
	}
	return nil
}

func (w *dottyWorkload) Validate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.cache) == 0 {
		return fmt.Errorf("dotty: nothing compiled")
	}
	return nil
}
