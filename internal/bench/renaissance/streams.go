package renaissance

import (
	"fmt"
	"strings"

	"renaissance/internal/core"
	"renaissance/internal/rx"
	"renaissance/internal/streams"
)

func init() {
	register("scrabble",
		"Solves the Scrabble puzzle with the streams library.",
		[]string{"data-parallel", "memory-bound"}, newScrabble)
	register("rx-scrabble",
		"Solves the Scrabble puzzle with the Rx observable library.",
		[]string{"streaming"}, newRxScrabble)
	register("streams-mnemonics",
		"Computes phone mnemonics with stream flat-maps.",
		[]string{"data-parallel", "memory-bound"}, newMnemonics)
}

// scrabbleScores are the standard letter scores.
var scrabbleScores = map[rune]int{
	'a': 1, 'b': 3, 'c': 3, 'd': 2, 'e': 1, 'f': 4, 'g': 2, 'h': 4,
	'i': 1, 'j': 8, 'k': 5, 'l': 1, 'm': 3, 'n': 1, 'o': 1, 'p': 3,
	'q': 10, 'r': 1, 's': 1, 't': 1, 'u': 1, 'v': 4, 'w': 4, 'x': 8,
	'y': 4, 'z': 10,
}

// wordCorpus deterministically generates a pseudo-English word list.
func wordCorpus(cfg core.Config, n int) []string {
	rng := cfg.Rand("scrabble-words")
	syllables := []string{"ba", "re", "to", "qua", "zen", "lix", "mor", "da", "pi", "shu", "gr", "ost", "an", "el"}
	words := make([]string, n)
	for i := range words {
		var b strings.Builder
		parts := 2 + rng.Intn(3)
		for p := 0; p < parts; p++ {
			b.WriteString(syllables[rng.Intn(len(syllables))])
		}
		words[i] = b.String()
	}
	return words
}

// availableLetters is the letter rack the puzzle plays against.
const availableLetters = "aabdeeilmnorstuz"

// rackHistogram counts the rack's letters.
func rackHistogram() map[rune]int {
	h := map[rune]int{}
	for _, r := range availableLetters {
		h[r]++
	}
	return h
}

// scrabbleScore scores a word against the rack, or -1 if unplayable.
func scrabbleScore(word string, rack map[rune]int) int {
	used := map[rune]int{}
	score := 0
	for _, r := range word {
		used[r]++
		if used[r] > rack[r] {
			return -1
		}
		score += scrabbleScores[r]
	}
	return score
}

// referenceBest computes the expected answer with a straightforward loop.
func referenceBest(words []string) int {
	rack := rackHistogram()
	best := 0
	for _, w := range words {
		if s := scrabbleScore(w, rack); s > best {
			best = s
		}
	}
	return best
}

type scrabbleWorkload struct {
	words []string
	want  int
	got   int
}

func newScrabble(cfg core.Config) (core.Workload, error) {
	words := wordCorpus(cfg, cfg.Scale(20000))
	return &scrabbleWorkload{words: words, want: referenceBest(words)}, nil
}

func (w *scrabbleWorkload) RunIteration() error {
	rack := rackHistogram()
	// The stream pipeline of the original: build per-word histograms via
	// grouping, filter playable words, map to scores, take the maximum.
	scored := streams.Map(
		streams.FromSlice(w.words).Filter(func(word string) bool {
			hist := streams.GroupBy(streams.FromSlice([]rune(word)), func(r rune) rune { return r })
			for r, g := range hist {
				if len(g) > rack[r] {
					return false
				}
			}
			return true
		}),
		func(word string) int {
			return streams.Reduce(streams.FromSlice([]rune(word)), 0,
				func(acc int, r rune) int { return acc + scrabbleScores[r] })
		})
	best := streams.Reduce(scored, 0, func(a, b int) int {
		if b > a {
			return b
		}
		return a
	})
	w.got = best
	return nil
}

func (w *scrabbleWorkload) Validate() error {
	if w.got != w.want {
		return fmt.Errorf("scrabble: best score %d, want %d", w.got, w.want)
	}
	return nil
}

type rxScrabbleWorkload struct {
	words []string
	want  int
	got   int
}

func newRxScrabble(cfg core.Config) (core.Workload, error) {
	words := wordCorpus(cfg, cfg.Scale(12000))
	return &rxScrabbleWorkload{words: words, want: referenceBest(words)}, nil
}

func (w *rxScrabbleWorkload) RunIteration() error {
	rack := rackHistogram()
	scores := rx.Map(
		rx.Filter(rx.FromSlice(w.words), func(word string) bool {
			used := map[rune]int{}
			for _, r := range word {
				used[r]++
				if used[r] > rack[r] {
					return false
				}
			}
			return true
		}),
		func(word string) int {
			s := 0
			for _, r := range word {
				s += scrabbleScores[r]
			}
			return s
		})
	best, err := rx.Reduce(scores, 0, func(a, b int) int {
		if b > a {
			return b
		}
		return a
	}).BlockingFirst()
	if err != nil {
		return err
	}
	w.got = best
	return nil
}

func (w *rxScrabbleWorkload) Validate() error {
	if w.got != w.want {
		return fmt.Errorf("rx-scrabble: best score %d, want %d", w.got, w.want)
	}
	return nil
}

// phone keypad letters, as in the original Phone Mnemonics benchmark.
var keypad = map[rune]string{
	'2': "abc", '3': "def", '4': "ghi", '5': "jkl",
	'6': "mno", '7': "pqrs", '8': "tuv", '9': "wxyz",
}

type mnemonicsWorkload struct {
	numbers []string
	want    int
	got     int
}

func newMnemonics(cfg core.Config) (core.Workload, error) {
	rng := cfg.Rand("mnemonics")
	count := cfg.Scale(40)
	numbers := make([]string, count)
	for i := range numbers {
		var b strings.Builder
		for d := 0; d < 6; d++ {
			b.WriteRune(rune('2' + rng.Intn(8)))
		}
		numbers[i] = b.String()
	}
	w := &mnemonicsWorkload{numbers: numbers}
	// Expected total expansions: product of keypad sizes per number.
	for _, num := range numbers {
		n := 1
		for _, d := range num {
			n *= len(keypad[d])
		}
		w.want += n
	}
	return w, nil
}

func (w *mnemonicsWorkload) RunIteration() error {
	total := 0
	for _, number := range w.numbers {
		s := streams.Of("")
		for _, digit := range number {
			letters := keypad[digit]
			s = streams.FlatMap(s, func(prefix string) streams.Stream[string] {
				out := make([]string, 0, len(letters))
				for _, l := range letters {
					out = append(out, prefix+string(l))
				}
				return streams.FromSlice(out)
			})
		}
		total += s.Count()
	}
	w.got = total
	return nil
}

func (w *mnemonicsWorkload) Validate() error {
	if w.got != w.want {
		return fmt.Errorf("streams-mnemonics: %d expansions, want %d", w.got, w.want)
	}
	return nil
}
