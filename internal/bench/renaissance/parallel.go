package renaissance

import (
	"fmt"
	"math"
	"sort"

	"renaissance/internal/core"
	"renaissance/internal/forkjoin"
	"renaissance/internal/futures"
)

func init() {
	register("fj-kmeans",
		"K-means clustering on the fork-join pool.",
		[]string{"task-parallel", "concurrent data structures"}, newFJKMeans)
	register("future-genetic",
		"Genetic function optimization with futures.",
		[]string{"task-parallel", "contention"}, newFutureGenetic)
}

// --- fj-kmeans ---

type fjKMeansWorkload struct {
	points    [][2]float64
	k         int
	rounds    int
	centroids [][2]float64
}

func newFJKMeans(cfg core.Config) (core.Workload, error) {
	rng := cfg.Rand("fj-kmeans")
	n := cfg.Scale(6000)
	const k = 5
	w := &fjKMeansWorkload{k: k, rounds: 8}
	// Points clustered around k well-separated centers.
	for i := 0; i < n; i++ {
		c := i % k
		cx, cy := float64(c*10), float64((c%2)*10)
		w.points = append(w.points, [2]float64{
			cx + rng.NormFloat64(), cy + rng.NormFloat64(),
		})
	}
	return w, nil
}

type kmAccum struct {
	sums   [][2]float64
	counts []int
}

func (w *fjKMeansWorkload) RunIteration() error {
	pool := forkjoin.NewPool(4)
	defer pool.Close()

	// Points are generated round-robin by cluster, so the first k points
	// belong to k distinct clusters — a deterministic, well-spread
	// initialization.
	centroids := make([][2]float64, w.k)
	copy(centroids, w.points[:w.k])

	for round := 0; round < w.rounds; round++ {
		// Assignment + partial sums via recursive fork-join over the
		// point range.
		var assign func(lo, hi int) forkjoin.Fn
		assign = func(lo, hi int) forkjoin.Fn {
			return func(worker *forkjoin.Worker) any {
				if hi-lo <= 512 {
					acc := kmAccum{sums: make([][2]float64, w.k), counts: make([]int, w.k)}
					for _, p := range w.points[lo:hi] {
						best, bestD := 0, math.Inf(1)
						for c, ct := range centroids {
							dx, dy := p[0]-ct[0], p[1]-ct[1]
							if d := dx*dx + dy*dy; d < bestD {
								best, bestD = c, d
							}
						}
						acc.sums[best][0] += p[0]
						acc.sums[best][1] += p[1]
						acc.counts[best]++
					}
					return acc
				}
				mid := (lo + hi) / 2
				left := worker.Fork(assign(lo, mid))
				right := assign(mid, hi)(worker).(kmAccum)
				leftAcc := worker.Join(left).(kmAccum)
				for c := 0; c < w.k; c++ {
					right.sums[c][0] += leftAcc.sums[c][0]
					right.sums[c][1] += leftAcc.sums[c][1]
					right.counts[c] += leftAcc.counts[c]
				}
				return right
			}
		}
		acc := pool.Invoke(assign(0, len(w.points))).(kmAccum)
		for c := 0; c < w.k; c++ {
			if acc.counts[c] > 0 {
				centroids[c][0] = acc.sums[c][0] / float64(acc.counts[c])
				centroids[c][1] = acc.sums[c][1] / float64(acc.counts[c])
			}
		}
	}
	w.centroids = centroids
	return nil
}

func (w *fjKMeansWorkload) Validate() error {
	if len(w.centroids) != w.k {
		return fmt.Errorf("fj-kmeans: %d centroids", len(w.centroids))
	}
	// Centroids must be distinct and near the generating centers.
	var xs []float64
	for _, c := range w.centroids {
		xs = append(xs, c[0])
	}
	sort.Float64s(xs)
	for i := 1; i < len(xs); i++ {
		if xs[i]-xs[i-1] < 2 {
			return fmt.Errorf("fj-kmeans: centroids collapsed: %v", xs)
		}
	}
	return nil
}

// --- future-genetic ---

type futureGeneticWorkload struct {
	population int
	gens       int
	dim        int
	firstBest  float64
	best       float64
}

func newFutureGenetic(cfg core.Config) (core.Workload, error) {
	return &futureGeneticWorkload{
		population: cfg.Scale(64),
		gens:       cfg.Scale(30),
		dim:        8,
	}, nil
}

// fitness is the (negated) sphere function: maximal at the origin.
func fitness(genome []float64) float64 {
	s := 0.0
	for _, g := range genome {
		s += g * g
	}
	return -s
}

func (w *futureGeneticWorkload) RunIteration() error {
	// Deterministic xorshift so evolution reproduces across runs.
	state := uint64(0x9E3779B97F4A7C15)
	next := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state%2048)/1024 - 1
	}

	pop := make([][]float64, w.population)
	for i := range pop {
		g := make([]float64, w.dim)
		for j := range g {
			g[j] = next() * 10
		}
		pop[i] = g
	}

	type scored struct {
		genome []float64
		fit    float64
	}
	for gen := 0; gen < w.gens; gen++ {
		// Evaluate the population concurrently with futures (the Jenetics
		// executor shape).
		futs := make([]*futures.Future[scored], len(pop))
		for i, g := range pop {
			g := g
			futs[i] = futures.Async(func() (scored, error) {
				return scored{g, fitness(g)}, nil
			})
		}
		all, err := futures.Sequence(futs).Await()
		if err != nil {
			return err
		}
		sort.Slice(all, func(i, j int) bool { return all[i].fit > all[j].fit })
		w.best = all[0].fit
		if gen == 0 {
			w.firstBest = w.best
		}

		// Elitism + mutation: the top half breeds the next generation.
		for i := w.population / 2; i < w.population; i++ {
			parent := all[i-w.population/2].genome
			child := make([]float64, w.dim)
			for j := range child {
				child[j] = parent[j] * 0.7
				if int(state)%5 == 0 {
					child[j] += next()
				}
			}
			pop[i] = child
		}
		for i := 0; i < w.population/2; i++ {
			pop[i] = all[i].genome
		}
	}
	return nil
}

func (w *futureGeneticWorkload) Validate() error {
	// Elitism makes the best fitness non-decreasing, and the 0.7-shrink
	// breeding improves it strictly on the sphere function.
	if w.best < w.firstBest {
		return fmt.Errorf("future-genetic: best fitness regressed %.3f -> %.3f", w.firstBest, w.best)
	}
	if w.gens >= 3 && w.best <= w.firstBest {
		return fmt.Errorf("future-genetic: no improvement from %.3f over %d generations", w.firstBest, w.gens)
	}
	return nil
}
