package fn

import (
	"fmt"
	"strings"

	"renaissance/internal/actors"
	"renaissance/internal/core"
	"renaissance/internal/minilang"
	"renaissance/internal/rvm"
	"renaissance/internal/rvm/ir"
	"renaissance/internal/rvm/opt"
	"renaissance/internal/streams"
)

func init() {
	register("actors", "Lightweight actor ping-pong rings.", newActors)
	register("apparat", "Bytecode transformation: compile and optimize minilang units.", newApparat)
	register("factorie", "Factor-graph-style iterative belief counting.", newFactorie)
	register("kiama", "Rewriting-based expression simplification to a fixpoint.", newKiama)
	register("scalac", "Compile a minilang corpus (functional compiler style).", newScalac)
	register("scaladoc", "Extract documentation models from parsed sources.", newScaladoc)
	register("scalap", "Decode compiled method signatures from class tables.", newScalap)
	register("scalariform", "Pretty-print source through tokenize/format pipelines.", newScalariform)
	register("scalatest", "Run a functional assertion suite over generated cases.", newScalatest)
	register("scalaxb", "Data-binding transformation over record streams.", newScalaxb)
	register("specs", "Specification matching over behavior streams.", newSpecs)
	register("tmt", "Topic-model-like iterative count redistribution.", newTmt)
}

// --- actors: light ping-pong rings ---

type fnActorsWorkload struct {
	rings  int
	rounds int
}

func newActors(cfg core.Config) (core.Workload, error) {
	return &fnActorsWorkload{rings: 3, rounds: cfg.Scale(200)}, nil
}

func (w *fnActorsWorkload) RunIteration() error {
	sys := actors.NewSystem(2)
	defer sys.Shutdown()
	done := make(chan struct{}, w.rings)
	for r := 0; r < w.rings; r++ {
		// A ring of 4 actors passing a counter around.
		const ringSize = 4
		refs := make([]*actors.Ref, ringSize)
		for i := 0; i < ringSize; i++ {
			i := i
			refs[i] = sys.Spawn("ring", actors.ReceiverFunc(func(ctx *actors.Context, msg any) {
				n := msg.(int)
				if n >= w.rounds*ringSize {
					select {
					case done <- struct{}{}:
					default:
					}
					return
				}
				ctx.Send(refs[(i+1)%ringSize], n+1)
			}))
		}
		refs[0].Tell(0)
	}
	for r := 0; r < w.rings; r++ {
		<-done
	}
	sys.AwaitQuiescence()
	return nil
}

// --- apparat: compile + optimize bytecode ---

type apparatWorkload struct {
	corpus []string
	sizes  []int
}

func newApparat(cfg core.Config) (core.Workload, error) {
	return &apparatWorkload{corpus: minilang.Corpus(cfg.Scale(8))}, nil
}

func (w *apparatWorkload) RunIteration() error {
	w.sizes = w.sizes[:0]
	for _, src := range w.corpus {
		p, err := minilang.Compile(src)
		if err != nil {
			return err
		}
		prog, err := ir.BuildProgram(p)
		if err != nil {
			return err
		}
		opt.OptPipeline().Compile(prog)
		total := 0
		for _, f := range prog.Funcs {
			total += f.Size()
		}
		w.sizes = append(w.sizes, total)
	}
	return nil
}

func (w *apparatWorkload) Validate() error {
	for i, s := range w.sizes {
		if s == 0 {
			return fmt.Errorf("apparat: unit %d compiled to nothing", i)
		}
	}
	return nil
}

// --- factorie: iterative counting ---

type factorieWorkload struct {
	docs   [][]int
	topics int
	iters  int
	counts [][]float64
}

func newFactorie(cfg core.Config) (core.Workload, error) {
	rng := cfg.Rand("factorie")
	w := &factorieWorkload{topics: 6, iters: 10}
	for d := 0; d < cfg.Scale(120); d++ {
		doc := make([]int, 40)
		for i := range doc {
			doc[i] = rng.Intn(200)
		}
		w.docs = append(w.docs, doc)
	}
	return w, nil
}

func (w *factorieWorkload) RunIteration() error {
	// Soft-assign words to topics by iterating normalized counts — an
	// EM-flavored counting loop over maps and slices.
	wordTopic := make(map[int][]float64)
	for it := 0; it < w.iters; it++ {
		next := make(map[int][]float64)
		for d, doc := range w.docs {
			allocated(1)
			for _, word := range doc {
				probs, ok := wordTopic[word]
				if !ok {
					probs = make([]float64, w.topics)
					for t := range probs {
						probs[t] = 1
					}
				}
				// Bias by document identity to break symmetry.
				t := (word + d) % w.topics
				upd := append([]float64(nil), probs...)
				upd[t] += 0.5
				// Normalize.
				sum := 0.0
				for _, v := range upd {
					sum += v
				}
				for i := range upd {
					upd[i] /= sum
				}
				next[word] = upd
			}
		}
		wordTopic = next
	}
	w.counts = nil
	for _, probs := range wordTopic {
		w.counts = append(w.counts, probs)
	}
	return nil
}

func (w *factorieWorkload) Validate() error {
	if len(w.counts) == 0 {
		return fmt.Errorf("factorie: no word-topic distributions")
	}
	for _, probs := range w.counts {
		sum := 0.0
		for _, p := range probs {
			sum += p
		}
		if sum < 0.99 || sum > 1.01 {
			return fmt.Errorf("factorie: distribution sums to %.4f", sum)
		}
	}
	return nil
}

// --- kiama: rewriting to fixpoint ---

// term is a tiny expression language for the rewriter.
type term struct {
	op   string // "num", "+", "*"
	val  int
	l, r *term
}

func num(v int) *term            { allocated(1); return &term{op: "num", val: v} }
func add(l, r *term) *term       { allocated(1); return &term{op: "+", l: l, r: r} }
func mul(l, r *term) *term       { allocated(1); return &term{op: "*", l: l, r: r} }
func (t *term) isNum(v int) bool { return t.op == "num" && t.val == v }

type kiamaWorkload struct {
	exprs []*term
	total int
}

func newKiama(cfg core.Config) (core.Workload, error) {
	rng := cfg.Rand("kiama")
	w := &kiamaWorkload{}
	var build func(depth int) *term
	build = func(depth int) *term {
		if depth == 0 {
			return num(rng.Intn(5)) // includes 0s and 1s for the identities
		}
		l, r := build(depth-1), build(depth-1)
		if rng.Intn(2) == 0 {
			return add(l, r)
		}
		return mul(l, r)
	}
	for i := 0; i < cfg.Scale(60); i++ {
		w.exprs = append(w.exprs, build(7))
	}
	return w, nil
}

// rewrite applies algebraic simplifications bottom-up; it returns the
// rewritten term and whether anything changed.
func rewrite(t *term) (*term, bool) {
	if t.op == "num" {
		return t, false
	}
	l, cl := rewrite(t.l)
	r, cr := rewrite(t.r)
	changed := cl || cr
	switch {
	case t.op == "+" && l.isNum(0):
		return r, true
	case t.op == "+" && r.isNum(0):
		return l, true
	case t.op == "*" && (l.isNum(0) || r.isNum(0)):
		return num(0), true
	case t.op == "*" && l.isNum(1):
		return r, true
	case t.op == "*" && r.isNum(1):
		return l, true
	case l.op == "num" && r.op == "num":
		if t.op == "+" {
			return num(l.val + r.val), true
		}
		return num(l.val * r.val), true
	}
	if changed {
		if t.op == "+" {
			return add(l, r), true
		}
		return mul(l, r), true
	}
	return t, false
}

func eval(t *term) int {
	switch t.op {
	case "num":
		return t.val
	case "+":
		return eval(t.l) + eval(t.r)
	default:
		return eval(t.l) * eval(t.r)
	}
}

func (w *kiamaWorkload) RunIteration() error {
	w.total = 0
	for _, e := range w.exprs {
		want := eval(e)
		cur := e
		for {
			next, changed := rewrite(cur)
			cur = next
			if !changed {
				break
			}
		}
		if cur.op != "num" {
			return fmt.Errorf("kiama: rewriting did not reach a normal form")
		}
		if cur.val != want {
			return fmt.Errorf("kiama: rewrite changed value %d -> %d", want, cur.val)
		}
		w.total += cur.val
	}
	return nil
}

// --- scalac / scaladoc / scalap / scalariform ---

type scalacWorkload struct{ corpus []string }

func newScalac(cfg core.Config) (core.Workload, error) {
	return &scalacWorkload{corpus: minilang.Corpus(cfg.Scale(14))}, nil
}

func (w *scalacWorkload) RunIteration() error {
	for _, src := range w.corpus {
		if _, err := minilang.Compile(src); err != nil {
			return err
		}
	}
	return nil
}

type scaladocWorkload struct {
	corpus []string
	docs   int
}

func newScaladoc(cfg core.Config) (core.Workload, error) {
	return &scaladocWorkload{corpus: minilang.Corpus(cfg.Scale(18))}, nil
}

func (w *scaladocWorkload) RunIteration() error {
	w.docs = 0
	for _, src := range w.corpus {
		ast, err := minilang.Parse(src)
		if err != nil {
			return err
		}
		// Build documentation entries with a stream pipeline.
		entries := streams.Map(streams.FromSlice(ast.Funcs),
			func(fn *minilang.FuncDecl) string {
				params := make([]string, len(fn.Params))
				for i, p := range fn.Params {
					params[i] = p.Name + ": " + p.Type.String()
				}
				return fn.Name + "(" + strings.Join(params, ", ") + "): " + fn.Ret.String()
			}).ToSlice()
		w.docs += len(entries)
	}
	return nil
}

func (w *scaladocWorkload) Validate() error {
	if w.docs == 0 {
		return fmt.Errorf("scaladoc: no entries")
	}
	return nil
}

type scalapWorkload struct {
	programs []*rvm.Program
	decoded  int
}

func newScalap(cfg core.Config) (core.Workload, error) {
	w := &scalapWorkload{}
	for _, src := range minilang.Corpus(cfg.Scale(16)) {
		p, err := minilang.Compile(src)
		if err != nil {
			return nil, err
		}
		w.programs = append(w.programs, p)
	}
	return w, nil
}

func (w *scalapWorkload) RunIteration() error {
	w.decoded = 0
	for _, p := range w.programs {
		// "Decode" each method: disassemble its code and build a
		// signature string, the scalap shape of reading class files.
		for _, m := range p.Methods() {
			var b strings.Builder
			fmt.Fprintf(&b, "%s/%d:", m.QualifiedName(), m.NArgs)
			for _, in := range m.Code {
				b.WriteByte(' ')
				b.WriteString(in.Op.String())
			}
			if b.Len() == 0 {
				return fmt.Errorf("scalap: empty decode")
			}
			w.decoded++
		}
	}
	return nil
}

func (w *scalapWorkload) Validate() error {
	if w.decoded == 0 {
		return fmt.Errorf("scalap: nothing decoded")
	}
	return nil
}

type scalariformWorkload struct {
	corpus []string
}

func newScalariform(cfg core.Config) (core.Workload, error) {
	return &scalariformWorkload{corpus: minilang.Corpus(cfg.Scale(20))}, nil
}

func (w *scalariformWorkload) RunIteration() error {
	for _, src := range w.corpus {
		toks, err := minilang.Lex(src)
		if err != nil {
			return err
		}
		// Reformat: join tokens with canonical spacing, then re-lex and
		// compare the token stream (format must preserve tokens).
		var b strings.Builder
		for _, t := range toks {
			if t.Kind == minilang.TokEOF {
				break
			}
			b.WriteString(t.Text)
			b.WriteByte(' ')
		}
		again, err := minilang.Lex(b.String())
		if err != nil {
			return err
		}
		if len(again) != len(toks) {
			return fmt.Errorf("scalariform: token count changed %d -> %d", len(toks), len(again))
		}
	}
	return nil
}

// --- scalatest ---

type scalatestWorkload struct {
	cases  int
	passed int
}

func newScalatest(cfg core.Config) (core.Workload, error) {
	return &scalatestWorkload{cases: cfg.Scale(5000)}, nil
}

func (w *scalatestWorkload) RunIteration() error {
	w.passed = 0
	// Property-style assertions over generated inputs, evaluated through
	// stream pipelines of matcher closures.
	results := streams.Map(streams.Range(0, w.cases), func(i int) bool {
		a, b := i%97, i%89
		sum := a + b
		prod := a * b
		return sum >= a && sum >= b && prod%2 == (a%2)*(b%2)%2 && (a-b)+(b-a) == 0
	})
	w.passed = results.Filter(func(ok bool) bool { return ok }).Count()
	return nil
}

func (w *scalatestWorkload) Validate() error {
	if w.passed != w.cases {
		return fmt.Errorf("scalatest: %d/%d assertions passed", w.passed, w.cases)
	}
	return nil
}

// --- scalaxb: data binding ---

type rawRecord struct {
	ID     int
	Fields map[string]string
}

type boundRecord struct {
	ID    int
	Name  string
	Score int
}

type scalaxbWorkload struct {
	raw   []rawRecord
	bound int
}

func newScalaxb(cfg core.Config) (core.Workload, error) {
	n := cfg.Scale(4000)
	w := &scalaxbWorkload{}
	for i := 0; i < n; i++ {
		allocated(1)
		w.raw = append(w.raw, rawRecord{
			ID: i,
			Fields: map[string]string{
				"name":  fmt.Sprintf("entity-%d", i),
				"score": fmt.Sprintf("%d", i%100),
			},
		})
	}
	return w, nil
}

func (w *scalaxbWorkload) RunIteration() error {
	bound := streams.Map(streams.FromSlice(w.raw), func(r rawRecord) boundRecord {
		allocated(1)
		score := 0
		fmt.Sscanf(r.Fields["score"], "%d", &score)
		return boundRecord{ID: r.ID, Name: r.Fields["name"], Score: score}
	}).ToSlice()
	w.bound = len(bound)
	for i, b := range bound {
		if b.ID != i || b.Score != i%100 {
			return fmt.Errorf("scalaxb: record %d bound incorrectly: %+v", i, b)
		}
	}
	return nil
}

func (w *scalaxbWorkload) Validate() error {
	if w.bound != len(w.raw) {
		return fmt.Errorf("scalaxb: bound %d of %d", w.bound, len(w.raw))
	}
	return nil
}

// --- specs ---

type specsWorkload struct {
	cases int
}

func newSpecs(cfg core.Config) (core.Workload, error) {
	return &specsWorkload{cases: cfg.Scale(3000)}, nil
}

func (w *specsWorkload) RunIteration() error {
	// Behavior specifications: group generated behaviors by subject and
	// verify each group's invariant functionally.
	type behavior struct {
		subject string
		value   int
	}
	behaviors := streams.Map(streams.Range(0, w.cases), func(i int) behavior {
		return behavior{subject: fmt.Sprintf("s%d", i%25), value: i}
	})
	groups := streams.GroupBy(behaviors, func(b behavior) string { return b.subject })
	if len(groups) == 0 {
		return fmt.Errorf("specs: no groups")
	}
	for subject, bs := range groups {
		prev := -1
		for _, b := range bs {
			if b.value <= prev {
				return fmt.Errorf("specs: %s not ordered", subject)
			}
			prev = b.value
		}
	}
	return nil
}

// --- tmt ---

type tmtWorkload struct {
	docs     int
	words    int
	iters    int
	residual float64
}

func newTmt(cfg core.Config) (core.Workload, error) {
	return &tmtWorkload{docs: cfg.Scale(150), words: 300, iters: 12}, nil
}

func (w *tmtWorkload) RunIteration() error {
	// Iterative count redistribution between a doc-topic and word-topic
	// matrix, normalizing each round (the training loop shape of TMT).
	const topics = 8
	docTopic := make([][]float64, w.docs)
	for d := range docTopic {
		docTopic[d] = make([]float64, topics)
		for t := range docTopic[d] {
			docTopic[d][t] = float64((d+t)%5 + 1)
		}
	}
	wordTopic := make([][]float64, w.words)
	for v := range wordTopic {
		wordTopic[v] = make([]float64, topics)
		for t := range wordTopic[v] {
			wordTopic[v][t] = float64((v*t)%7 + 1)
		}
	}
	normalize := func(m [][]float64) {
		for _, row := range m {
			sum := 0.0
			for _, v := range row {
				sum += v
			}
			for i := range row {
				row[i] /= sum
			}
		}
	}
	normalize(docTopic)
	normalize(wordTopic)
	for it := 0; it < w.iters; it++ {
		for d := range docTopic {
			for t := 0; t < topics; t++ {
				// Blend with the topic's average word probability.
				avg := 0.0
				for v := d % 37; v < w.words; v += 37 {
					avg += wordTopic[v][t]
				}
				docTopic[d][t] = 0.7*docTopic[d][t] + 0.3*avg
			}
		}
		normalize(docTopic)
	}
	// Residual: distributions must stay normalized.
	w.residual = 0
	for _, row := range docTopic {
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if sum > 1 {
			w.residual += sum - 1
		} else {
			w.residual += 1 - sum
		}
	}
	return nil
}

func (w *tmtWorkload) Validate() error {
	if w.residual > 1e-6*float64(w.docs) {
		return fmt.Errorf("tmt: normalization residual %g", w.residual)
	}
	return nil
}
