// Package fn implements 12 ScalaBench-like workloads: functional,
// collection-heavy programs with high allocation rates and closure
// dispatch — the paper's characterization of Scala programs, which
// "exhibit a significantly different behavior compared to Java programs"
// (§1). The workloads lean on the streams library, whose higher-order
// operations record the idynamic metric the way Scala closures compile to
// invokedynamic on modern JVMs.
//
// Importing this package registers the workloads under core.SuiteFn.
package fn

import (
	"time"

	"renaissance/internal/core"
	"renaissance/internal/metrics"
)

func register(name, description string, setup func(core.Config) (core.Workload, error)) {
	core.Register(core.Spec{
		Name:        name,
		Suite:       core.SuiteFn,
		Description: description,
		Focus:       []string{"functional", "collections"},
		Warmup:      2,
		Measured:    5,
		Timeout:     2 * time.Minute,
		Setup:       setup,
	})
}

func allocated(n int64) { metrics.AddObject(n) }
