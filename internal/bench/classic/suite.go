// Package classic implements 21 SPECjvm2008-like workloads: compute-bound
// numeric kernels, codecs, and serializers that exercise classic compiler
// optimizations rather than concurrency (the paper's §8 characterization:
// "most of the SPECjvm2008 benchmarks are considerably smaller ... and do
// not use a lot of object-oriented abstractions"). They provide the
// low-allocation / high-CPU cluster of the PCA comparison (Figure 1).
//
// Importing this package registers the workloads under core.SuiteClassic.
package classic

import (
	"time"

	"renaissance/internal/core"
	"renaissance/internal/metrics"
)

func register(name, description string, setup func(core.Config) (core.Workload, error)) {
	core.Register(core.Spec{
		Name:        name,
		Suite:       core.SuiteClassic,
		Description: description,
		Focus:       []string{"compute-bound"},
		Warmup:      2,
		Measured:    5,
		Timeout:     2 * time.Minute,
		Setup:       setup,
	})
}

// lcg is the deterministic generator the numeric kernels share.
type lcg uint64

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l)
}

func (l *lcg) float() float64 {
	return float64(l.next()>>11) / float64(1<<53)
}

// note records a coarse allocation event for workloads that build large
// numeric buffers, keeping the suite's object/array profile honest without
// per-element instrumentation noise.
func noteArrays(n int64) { metrics.AddArray(n) }
