package classic

import (
	"bytes"
	"encoding/json"
	"encoding/xml"
	"fmt"
	"math"
	"math/big"
	"strings"

	"renaissance/internal/core"
	"renaissance/internal/memdb"
	"renaissance/internal/metrics"
	"renaissance/internal/minilang"
	"renaissance/internal/rvm"
)

func init() {
	register("compress", "Run-length + delta compression round trip.", newCompress)
	register("crypto.aes", "Stream-cipher encryption round trip.", newCryptoAES)
	register("crypto.rsa", "Modular-exponentiation encrypt/decrypt round trip.", newCryptoRSA)
	register("crypto.signverify", "Hash-and-modpow signing and verification.", newSignVerify)
	register("mpegaudio", "DCT-II analysis over audio-like frames.", newMpegAudio)
	register("serial", "JSON serialization round trip of record graphs.", newSerial)
	register("xml.transform", "XML parse and transformation.", newXMLTransform)
	register("xml.validation", "XML parse and structural validation.", newXMLValidation)
	register("compiler.compiler", "Compile a minilang corpus (compiler front end).", newCompilerCompiler)
	register("compiler.sunflow", "Compile and execute a minilang corpus.", newCompilerSunflow)
	register("derby", "Single-threaded B-tree query mix (embedded database).", newDerby)
	register("sunflow", "Ray-sphere rendering of a procedural scene.", newSunflow)
}

// --- compress ---

type compressWorkload struct {
	input []byte
}

func newCompress(cfg core.Config) (core.Workload, error) {
	n := cfg.Scale(400_000)
	var r lcg = 5
	buf := make([]byte, n)
	noteArrays(1)
	// Compressible structure: long runs with occasional noise.
	v := byte(0)
	for i := range buf {
		if r.next()%19 == 0 {
			v = byte(r.next())
		}
		buf[i] = v
	}
	return &compressWorkload{input: buf}, nil
}

// rle encodes (count, byte) pairs with a 255 cap.
func rle(in []byte) []byte {
	var out []byte
	for i := 0; i < len(in); {
		j := i
		for j < len(in) && in[j] == in[i] && j-i < 255 {
			j++
		}
		out = append(out, byte(j-i), in[i])
		i = j
	}
	return out
}

func unrle(in []byte) []byte {
	var out []byte
	for i := 0; i+1 < len(in); i += 2 {
		for k := 0; k < int(in[i]); k++ {
			out = append(out, in[i+1])
		}
	}
	return out
}

func (w *compressWorkload) RunIteration() error {
	enc := rle(w.input)
	dec := unrle(enc)
	if !bytes.Equal(dec, w.input) {
		return fmt.Errorf("compress: round trip mismatch")
	}
	if len(enc) >= len(w.input) {
		return fmt.Errorf("compress: no compression achieved (%d >= %d)", len(enc), len(w.input))
	}
	return nil
}

// --- crypto.aes (stream cipher) ---

type cryptoAESWorkload struct {
	plain []byte
}

func newCryptoAES(cfg core.Config) (core.Workload, error) {
	n := cfg.Scale(500_000)
	var r lcg = 21
	buf := make([]byte, n)
	noteArrays(1)
	for i := range buf {
		buf[i] = byte(r.next())
	}
	return &cryptoAESWorkload{plain: buf}, nil
}

// xorshiftStream generates a keystream from a 64-bit key.
func xorshiftStream(key uint64, out []byte) {
	s := key
	for i := 0; i < len(out); i += 8 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		v := s
		for b := 0; b < 8 && i+b < len(out); b++ {
			out[i+b] = byte(v)
			v >>= 8
		}
	}
}

func (w *cryptoAESWorkload) RunIteration() error {
	stream := make([]byte, len(w.plain))
	xorshiftStream(0xDEADBEEFCAFE, stream)
	ct := make([]byte, len(w.plain))
	for i := range ct {
		ct[i] = w.plain[i] ^ stream[i]
	}
	for i := range ct {
		ct[i] ^= stream[i]
	}
	if !bytes.Equal(ct, w.plain) {
		return fmt.Errorf("crypto.aes: round trip mismatch")
	}
	return nil
}

// --- crypto.rsa ---

type cryptoRSAWorkload struct {
	n, e, d  *big.Int
	messages []*big.Int
}

func newCryptoRSA(cfg core.Config) (core.Workload, error) {
	// Small fixed RSA parameters (p=61403, q=56809 class primes scaled
	// up): deterministic toy key big enough to exercise big-int modpow.
	p := big.NewInt(1000003)
	q := big.NewInt(999983)
	n := new(big.Int).Mul(p, q)
	phi := new(big.Int).Mul(new(big.Int).Sub(p, big.NewInt(1)), new(big.Int).Sub(q, big.NewInt(1)))
	e := big.NewInt(65537)
	d := new(big.Int).ModInverse(e, phi)
	if d == nil {
		return nil, fmt.Errorf("crypto.rsa: bad key")
	}
	count := cfg.Scale(150)
	var r lcg = 31
	msgs := make([]*big.Int, count)
	for i := range msgs {
		msgs[i] = new(big.Int).SetUint64(r.next() % 999999000000)
	}
	return &cryptoRSAWorkload{n: n, e: e, d: d, messages: msgs}, nil
}

func (w *cryptoRSAWorkload) RunIteration() error {
	for _, m := range w.messages {
		c := new(big.Int).Exp(m, w.e, w.n)
		back := new(big.Int).Exp(c, w.d, w.n)
		if back.Cmp(m) != 0 {
			return fmt.Errorf("crypto.rsa: decrypt mismatch")
		}
	}
	return nil
}

// --- crypto.signverify ---

type signVerifyWorkload struct {
	rsa  *cryptoRSAWorkload
	docs [][]byte
}

func newSignVerify(cfg core.Config) (core.Workload, error) {
	inner, err := newCryptoRSA(cfg)
	if err != nil {
		return nil, err
	}
	rsa := inner.(*cryptoRSAWorkload)
	var r lcg = 77
	docs := make([][]byte, cfg.Scale(200))
	for i := range docs {
		doc := make([]byte, 256)
		for j := range doc {
			doc[j] = byte(r.next())
		}
		docs[i] = doc
	}
	return &signVerifyWorkload{rsa: rsa, docs: docs}, nil
}

func fnvHash(b []byte) uint64 {
	var h uint64 = 14695981039346656037
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

func (w *signVerifyWorkload) RunIteration() error {
	for _, doc := range w.docs {
		digest := new(big.Int).SetUint64(fnvHash(doc) % 999999000000)
		sig := new(big.Int).Exp(digest, w.rsa.d, w.rsa.n)
		recovered := new(big.Int).Exp(sig, w.rsa.e, w.rsa.n)
		if recovered.Cmp(digest) != 0 {
			return fmt.Errorf("crypto.signverify: verification failed")
		}
	}
	return nil
}

// --- mpegaudio ---

type mpegAudioWorkload struct {
	frames   [][]float64
	checksum float64
}

func newMpegAudio(cfg core.Config) (core.Workload, error) {
	frames := cfg.Scale(300)
	const frameLen = 128
	var r lcg = 17
	w := &mpegAudioWorkload{}
	noteArrays(int64(frames) + 1)
	for f := 0; f < frames; f++ {
		fr := make([]float64, frameLen)
		for i := range fr {
			fr[i] = math.Sin(float64(i)*0.1*float64(f%7+1)) + 0.1*(r.float()-0.5)
		}
		w.frames = append(w.frames, fr)
	}
	return w, nil
}

// dct2 computes the (naive) DCT-II of a frame.
func dct2(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		s := 0.0
		for i := 0; i < n; i++ {
			s += x[i] * math.Cos(math.Pi/float64(n)*(float64(i)+0.5)*float64(k))
		}
		out[k] = s
	}
	return out
}

func (w *mpegAudioWorkload) RunIteration() error {
	w.checksum = 0
	for _, fr := range w.frames {
		spec := dct2(fr)
		// Energy in the low band dominates for sinusoidal input.
		for k := 0; k < 8; k++ {
			w.checksum += math.Abs(spec[k])
		}
	}
	return nil
}

func (w *mpegAudioWorkload) Validate() error {
	if w.checksum <= 0 {
		return fmt.Errorf("mpegaudio: empty spectrum")
	}
	return nil
}

// --- serial ---

type record struct {
	ID       int            `json:"id"`
	Name     string         `json:"name"`
	Tags     []string       `json:"tags"`
	Attrs    map[string]int `json:"attrs"`
	Children []record       `json:"children,omitempty"`
}

type serialWorkload struct {
	records []record
}

func newSerial(cfg core.Config) (core.Workload, error) {
	n := cfg.Scale(300)
	w := &serialWorkload{}
	for i := 0; i < n; i++ {
		metrics.IncObject()
		w.records = append(w.records, record{
			ID:    i,
			Name:  fmt.Sprintf("record-%d", i),
			Tags:  []string{"alpha", "beta", fmt.Sprintf("t%d", i%7)},
			Attrs: map[string]int{"a": i, "b": i * i},
			Children: []record{
				{ID: i * 10, Name: "child", Tags: []string{"leaf"}},
			},
		})
	}
	return w, nil
}

func (w *serialWorkload) RunIteration() error {
	blob, err := json.Marshal(w.records)
	if err != nil {
		return err
	}
	var back []record
	if err := json.Unmarshal(blob, &back); err != nil {
		return err
	}
	if len(back) != len(w.records) || back[len(back)-1].ID != w.records[len(w.records)-1].ID {
		return fmt.Errorf("serial: round trip mismatch")
	}
	return nil
}

// --- xml ---

type xmlDoc struct {
	XMLName xml.Name  `xml:"catalog"`
	Items   []xmlItem `xml:"item"`
}

type xmlItem struct {
	ID    int    `xml:"id,attr"`
	Name  string `xml:"name"`
	Price int    `xml:"price"`
}

func xmlCorpus(n int) string {
	var b strings.Builder
	b.WriteString("<catalog>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `<item id="%d"><name>widget-%d</name><price>%d</price></item>`, i, i, i*3+1)
	}
	b.WriteString("</catalog>")
	return b.String()
}

type xmlTransformWorkload struct {
	src   string
	items int
}

func newXMLTransform(cfg core.Config) (core.Workload, error) {
	n := cfg.Scale(800)
	return &xmlTransformWorkload{src: xmlCorpus(n), items: n}, nil
}

func (w *xmlTransformWorkload) RunIteration() error {
	var doc xmlDoc
	if err := xml.Unmarshal([]byte(w.src), &doc); err != nil {
		return err
	}
	// Transform: discount prices and re-serialize.
	for i := range doc.Items {
		doc.Items[i].Price = doc.Items[i].Price * 9 / 10
	}
	out, err := xml.Marshal(doc)
	if err != nil {
		return err
	}
	if !bytes.Contains(out, []byte("widget-0")) {
		return fmt.Errorf("xml.transform: output lost items")
	}
	return nil
}

type xmlValidationWorkload struct {
	src   string
	items int
}

func newXMLValidation(cfg core.Config) (core.Workload, error) {
	n := cfg.Scale(1200)
	return &xmlValidationWorkload{src: xmlCorpus(n), items: n}, nil
}

func (w *xmlValidationWorkload) RunIteration() error {
	var doc xmlDoc
	if err := xml.Unmarshal([]byte(w.src), &doc); err != nil {
		return err
	}
	if len(doc.Items) != w.items {
		return fmt.Errorf("xml.validation: %d items, want %d", len(doc.Items), w.items)
	}
	for i, it := range doc.Items {
		if it.ID != i || it.Price != i*3+1 {
			return fmt.Errorf("xml.validation: item %d corrupt", i)
		}
	}
	return nil
}

// --- compiler.* ---

type compilerWorkload struct {
	corpus  []string
	execute bool
}

func newCompilerCompiler(cfg core.Config) (core.Workload, error) {
	return &compilerWorkload{corpus: minilang.Corpus(cfg.Scale(16))}, nil
}

func newCompilerSunflow(cfg core.Config) (core.Workload, error) {
	return &compilerWorkload{corpus: minilang.Corpus(cfg.Scale(10)), execute: true}, nil
}

func (w *compilerWorkload) RunIteration() error {
	for i, src := range w.corpus {
		p, err := minilang.Compile(src)
		if err != nil {
			return fmt.Errorf("compiler: unit %d: %w", i, err)
		}
		if w.execute {
			if _, err := rvm.NewInterp(p).Run(); err != nil {
				return fmt.Errorf("compiler: unit %d run: %w", i, err)
			}
		}
	}
	return nil
}

// --- derby ---

type derbyWorkload struct {
	rows int
	db   memdb.Store
}

func newDerby(cfg core.Config) (core.Workload, error) {
	return &derbyWorkload{rows: cfg.Scale(3000)}, nil
}

func (w *derbyWorkload) RunIteration() error {
	w.db = memdb.NewBTree()
	for i := 0; i < w.rows; i++ {
		w.db.Put(fmt.Sprintf("row-%08d", i), []byte{byte(i), byte(i >> 8)})
	}
	// Point queries and range scans.
	var r lcg = 3
	found := 0
	for q := 0; q < w.rows/2; q++ {
		k := int(r.next() % uint64(w.rows))
		if _, ok := w.db.Get(fmt.Sprintf("row-%08d", k)); ok {
			found++
		}
	}
	scanned := 0
	w.db.Range("row-00000100", "row-00000200", func(string, []byte) bool {
		scanned++
		return true
	})
	if found != w.rows/2 {
		return fmt.Errorf("derby: %d/%d point queries hit", found, w.rows/2)
	}
	if w.rows >= 200 && scanned != 100 {
		return fmt.Errorf("derby: range scanned %d rows, want 100", scanned)
	}
	return nil
}

// --- sunflow ---

type sunflowWorkload struct {
	size     int
	coverage int
}

func newSunflow(cfg core.Config) (core.Workload, error) {
	return &sunflowWorkload{size: cfg.Scale(160)}, nil
}

func (w *sunflowWorkload) RunIteration() error {
	n := w.size
	// Ray-cast a grid of pixels against three spheres.
	type sphere struct{ cx, cy, cz, r float64 }
	spheres := []sphere{
		{0, 0, 5, 1.5}, {1.5, 0.8, 7, 1.0}, {-1.2, -0.6, 6, 0.8},
	}
	w.coverage = 0
	for py := 0; py < n; py++ {
		for px := 0; px < n; px++ {
			// Ray from origin through the pixel on a virtual plane z=1.
			dx := (float64(px)/float64(n) - 0.5) * 2
			dy := (float64(py)/float64(n) - 0.5) * 2
			dz := 1.0
			norm := math.Sqrt(dx*dx + dy*dy + dz*dz)
			dx, dy, dz = dx/norm, dy/norm, dz/norm
			for _, s := range spheres {
				// |o + t d - c|^2 = r^2 with o = 0.
				b := -2 * (dx*s.cx + dy*s.cy + dz*s.cz)
				c := s.cx*s.cx + s.cy*s.cy + s.cz*s.cz - s.r*s.r
				if b*b-4*c >= 0 {
					w.coverage++
					break
				}
			}
		}
	}
	return nil
}

func (w *sunflowWorkload) Validate() error {
	total := w.size * w.size
	if w.coverage == 0 || w.coverage >= total {
		return fmt.Errorf("sunflow: implausible coverage %d/%d", w.coverage, total)
	}
	return nil
}
