package classic

import (
	"fmt"
	"math"
	"math/cmplx"

	"renaissance/internal/core"
)

func init() {
	register("scimark.fft.large", "Radix-2 FFT round trip, large input.", newFFT(1<<14))
	register("scimark.fft.small", "Radix-2 FFT round trip, small input.", newFFT(1<<10))
	register("scimark.lu.large", "LU factorization with partial pivoting, large matrix.", newLU(120))
	register("scimark.lu.small", "LU factorization with partial pivoting, small matrix.", newLU(48))
	register("scimark.sor.large", "Successive over-relaxation on a large grid.", newSOR(160))
	register("scimark.sor.small", "Successive over-relaxation on a small grid.", newSOR(64))
	register("scimark.sparse.large", "Sparse matrix-vector multiplication, large.", newSparse(6000, 6))
	register("scimark.sparse.small", "Sparse matrix-vector multiplication, small.", newSparse(1500, 6))
	register("scimark.monte_carlo", "Monte Carlo estimation of pi.", newMonteCarlo)
}

// --- FFT ---

type fftWorkload struct {
	data []complex128
	orig []complex128
}

func newFFT(size int) func(core.Config) (core.Workload, error) {
	return func(cfg core.Config) (core.Workload, error) {
		n := cfg.Scale(size)
		// Round down to a power of two.
		p := 1
		for p*2 <= n {
			p *= 2
		}
		var r lcg = 42
		data := make([]complex128, p)
		noteArrays(2)
		for i := range data {
			data[i] = complex(r.float()-0.5, r.float()-0.5)
		}
		orig := append([]complex128(nil), data...)
		return &fftWorkload{data: data, orig: orig}, nil
	}
}

// fft performs an in-place iterative radix-2 transform (inverse when
// inv is true).
func fft(a []complex128, inv bool) {
	n := len(a)
	// Bit reversal.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if inv {
			ang = -ang
		}
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := a[i+j]
				v := a[i+j+length/2] * w
				a[i+j] = u + v
				a[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
	if inv {
		for i := range a {
			a[i] /= complex(float64(n), 0)
		}
	}
}

func (w *fftWorkload) RunIteration() error {
	fft(w.data, false)
	fft(w.data, true)
	return nil
}

func (w *fftWorkload) Validate() error {
	for i := range w.data {
		if cmplx.Abs(w.data[i]-w.orig[i]) > 1e-9 {
			return fmt.Errorf("fft: round trip diverged at %d", i)
		}
	}
	return nil
}

// --- LU ---

type luWorkload struct {
	a        [][]float64
	n        int
	residual float64
}

func newLU(size int) func(core.Config) (core.Workload, error) {
	return func(cfg core.Config) (core.Workload, error) {
		n := cfg.Scale(size)
		if n < 4 {
			n = 4
		}
		var r lcg = 7
		a := make([][]float64, n)
		noteArrays(int64(n) + 1)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = r.float() - 0.5
			}
			a[i][i] += float64(n) // diagonal dominance
		}
		return &luWorkload{a: a, n: n}, nil
	}
}

func (w *luWorkload) RunIteration() error {
	n := w.n
	// Copy, factorize, and solve a system to exercise the triangular
	// sweeps as well.
	lu := make([][]float64, n)
	for i := range lu {
		lu[i] = append([]float64(nil), w.a[i]...)
	}
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	for col := 0; col < n; col++ {
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(lu[r][col]) > math.Abs(lu[p][col]) {
				p = r
			}
		}
		lu[col], lu[p] = lu[p], lu[col]
		piv[col], piv[p] = piv[p], piv[col]
		for r := col + 1; r < n; r++ {
			f := lu[r][col] / lu[col][col]
			lu[r][col] = f
			for c := col + 1; c < n; c++ {
				lu[r][c] -= f * lu[col][c]
			}
		}
	}
	// Solve A x = b with b = row sums (so x = all ones).
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += w.a[piv[i]][j]
		}
		b[i] = s
	}
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			b[i] -= lu[i][j] * b[j]
		}
	}
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			b[i] -= lu[i][j] * b[j]
		}
		b[i] /= lu[i][i]
	}
	w.residual = 0
	for i := range b {
		w.residual += math.Abs(b[i] - 1)
	}
	return nil
}

func (w *luWorkload) Validate() error {
	if w.residual > 1e-6*float64(w.n) {
		return fmt.Errorf("lu: residual %g too large", w.residual)
	}
	return nil
}

// --- SOR ---

type sorWorkload struct {
	n     int
	iters int
	grid  [][]float64
}

func newSOR(size int) func(core.Config) (core.Workload, error) {
	return func(cfg core.Config) (core.Workload, error) {
		n := cfg.Scale(size)
		if n < 8 {
			n = 8
		}
		return &sorWorkload{n: n, iters: 30}, nil
	}
}

func (w *sorWorkload) RunIteration() error {
	n := w.n
	g := make([][]float64, n)
	noteArrays(int64(n) + 1)
	for i := range g {
		g[i] = make([]float64, n)
	}
	// Hot boundary on one edge.
	for j := 0; j < n; j++ {
		g[0][j] = 100
	}
	const omega = 1.25
	for it := 0; it < w.iters; it++ {
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				g[i][j] = omega*0.25*(g[i-1][j]+g[i+1][j]+g[i][j-1]+g[i][j+1]) +
					(1-omega)*g[i][j]
			}
		}
	}
	w.grid = g
	return nil
}

func (w *sorWorkload) Validate() error {
	// Heat must have diffused into the interior, monotone by row.
	if w.grid[1][w.n/2] <= w.grid[w.n-2][w.n/2] {
		return fmt.Errorf("sor: no gradient from hot edge (%.3f vs %.3f)",
			w.grid[1][w.n/2], w.grid[w.n-2][w.n/2])
	}
	if w.grid[1][w.n/2] <= 0 {
		return fmt.Errorf("sor: interior stayed cold")
	}
	return nil
}

// --- sparse matvec ---

type sparseWorkload struct {
	n        int
	nnzPer   int
	cols     [][]int
	vals     [][]float64
	checksum float64
}

func newSparse(size, nnzPer int) func(core.Config) (core.Workload, error) {
	return func(cfg core.Config) (core.Workload, error) {
		n := cfg.Scale(size)
		if n < 16 {
			n = 16
		}
		var r lcg = 13
		w := &sparseWorkload{n: n, nnzPer: nnzPer}
		w.cols = make([][]int, n)
		w.vals = make([][]float64, n)
		noteArrays(int64(2*n) + 2)
		for i := 0; i < n; i++ {
			w.cols[i] = make([]int, nnzPer)
			w.vals[i] = make([]float64, nnzPer)
			for k := 0; k < nnzPer; k++ {
				w.cols[i][k] = int(r.next() % uint64(n))
				w.vals[i][k] = r.float()
			}
		}
		return w, nil
	}
}

func (w *sparseWorkload) RunIteration() error {
	x := make([]float64, w.n)
	y := make([]float64, w.n)
	for i := range x {
		x[i] = 1
	}
	for pass := 0; pass < 20; pass++ {
		for i := 0; i < w.n; i++ {
			s := 0.0
			for k := 0; k < w.nnzPer; k++ {
				s += w.vals[i][k] * x[w.cols[i][k]]
			}
			y[i] = s
		}
		// Normalize to keep values bounded, then swap.
		max := 0.0
		for _, v := range y {
			if math.Abs(v) > max {
				max = math.Abs(v)
			}
		}
		if max == 0 {
			return fmt.Errorf("sparse: zero vector")
		}
		for i := range y {
			y[i] /= max
		}
		x, y = y, x
	}
	w.checksum = 0
	for _, v := range x {
		w.checksum += v
	}
	return nil
}

func (w *sparseWorkload) Validate() error {
	if math.IsNaN(w.checksum) || w.checksum == 0 {
		return fmt.Errorf("sparse: bad checksum %v", w.checksum)
	}
	return nil
}

// --- monte carlo ---

type monteCarloWorkload struct {
	samples int
	pi      float64
}

func newMonteCarlo(cfg core.Config) (core.Workload, error) {
	return &monteCarloWorkload{samples: cfg.Scale(2_000_000)}, nil
}

func (w *monteCarloWorkload) RunIteration() error {
	var r lcg = 99
	inside := 0
	for i := 0; i < w.samples; i++ {
		x := r.float()
		y := r.float()
		if x*x+y*y <= 1 {
			inside++
		}
	}
	w.pi = 4 * float64(inside) / float64(w.samples)
	return nil
}

func (w *monteCarloWorkload) Validate() error {
	if math.Abs(w.pi-math.Pi) > 0.05 {
		return fmt.Errorf("monte_carlo: pi estimate %.4f too far off", w.pi)
	}
	return nil
}
