// Package bench_test verifies the baseline suites end to end: inventory
// counts matching the paper's Table 6 and single-iteration runs with
// validation at reduced size.
package bench_test

import (
	"testing"

	"renaissance/internal/core"

	_ "renaissance/internal/bench/classic"
	_ "renaissance/internal/bench/fn"
	_ "renaissance/internal/bench/oo"
	_ "renaissance/internal/bench/renaissance"
)

func TestSuiteInventories(t *testing.T) {
	// Table 6 of the paper: 14 DaCapo, 12 ScalaBench, 21 SPECjvm2008
	// benchmarks, plus the 21 Renaissance benchmarks of Table 1.
	want := map[string]int{
		core.SuiteRenaissance: 21,
		core.SuiteOO:          14,
		core.SuiteFn:          12,
		core.SuiteClassic:     21,
	}
	for suite, n := range want {
		got := len(core.Global.BySuite(suite))
		if got != n {
			t.Errorf("suite %s has %d benchmarks, want %d", suite, got, n)
		}
	}
}

func TestBaselineSuitesRunAndValidate(t *testing.T) {
	for _, suite := range []string{core.SuiteOO, core.SuiteFn, core.SuiteClassic} {
		for _, spec := range core.Global.BySuite(suite) {
			spec := spec
			t.Run(suite+"/"+spec.Name, func(t *testing.T) {
				r := core.NewRunner()
				r.Config.SizeFactor = 0.05
				r.WarmupOverride = 1
				r.MeasuredOverride = 1
				res, err := r.Run(spec)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if res.Profile == nil || res.Profile.RefCycles <= 0 {
					t.Error("no profile")
				}
			})
		}
	}
}

// TestSuiteProfilesContrast reproduces the core PCA intuition (Figure 1):
// the classic (SPECjvm-like) suite must show far lower object-allocation
// and dynamic-dispatch rates than the oo and fn suites, and the
// renaissance suite must dominate the concurrency counters.
func TestSuiteProfilesContrast(t *testing.T) {
	avgRate := func(suite string, metric int) float64 {
		specs := core.Global.BySuite(suite)
		total, n := 0.0, 0
		for _, spec := range specs {
			r := core.NewRunner()
			r.Config.SizeFactor = 0.05
			r.WarmupOverride = 1
			r.MeasuredOverride = 1
			res, err := r.Run(spec)
			if err != nil {
				t.Fatalf("%s/%s: %v", suite, spec.Name, err)
			}
			total += float64(res.Profile.Counts.Counts[metric])
			n++
		}
		return total / float64(n)
	}

	const (
		atomicIdx = 3
		parkIdx   = 4
		objectIdx = 7
		methodIdx = 9
	)
	renAtomic := avgRate(core.SuiteRenaissance, atomicIdx)
	classicAtomic := avgRate(core.SuiteClassic, atomicIdx)
	if renAtomic <= classicAtomic*3 {
		t.Errorf("renaissance atomic avg (%.0f) should dwarf classic (%.0f)", renAtomic, classicAtomic)
	}
	ooMethod := avgRate(core.SuiteOO, methodIdx)
	classicMethod := avgRate(core.SuiteClassic, methodIdx)
	if ooMethod <= classicMethod {
		t.Errorf("oo dispatch avg (%.0f) should exceed classic (%.0f)", ooMethod, classicMethod)
	}
	fnObject := avgRate(core.SuiteFn, objectIdx)
	classicObject := avgRate(core.SuiteClassic, objectIdx)
	if fnObject <= classicObject {
		t.Errorf("fn allocation avg (%.0f) should exceed classic (%.0f)", fnObject, classicObject)
	}
	renPark := avgRate(core.SuiteRenaissance, parkIdx)
	if renPark <= 0 {
		t.Errorf("renaissance park avg (%.0f) should be positive", renPark)
	}
}
