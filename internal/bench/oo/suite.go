// Package oo implements 14 DaCapo-like workloads: object-oriented,
// allocation- and dispatch-heavy applications with little modern
// concurrency — the paper's characterization of DaCapo, whose original
// motivation was "to understand memory behavior of complex Java
// applications" (§8). Virtual dispatch happens through Go interfaces and
// is recorded via the metrics package at each polymorphic call site, the
// same instrumentation boundary the paper's DiSL profiler uses.
//
// Importing this package registers the workloads under core.SuiteOO.
package oo

import (
	"time"

	"renaissance/internal/core"
	"renaissance/internal/metrics"
)

func register(name, description string, setup func(core.Config) (core.Workload, error)) {
	core.Register(core.Spec{
		Name:        name,
		Suite:       core.SuiteOO,
		Description: description,
		Focus:       []string{"object-oriented"},
		Warmup:      2,
		Measured:    5,
		Timeout:     2 * time.Minute,
		Setup:       setup,
	})
}

// dispatch records one interface-dispatched call (the invokevirtual /
// invokeinterface analogue).
func dispatch() { metrics.IncMethod() }

// allocated records n object allocations.
func allocated(n int64) { metrics.AddObject(n) }
