package oo

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"

	"renaissance/internal/core"
	"renaissance/internal/memdb"
	"renaissance/internal/minilang"
	"renaissance/internal/rvm"
)

func init() {
	register("avrora", "Discrete-event microcontroller simulation.", newAvrora)
	register("batik", "Polygon rasterization onto a coverage grid.", newBatik)
	register("eclipse", "Workspace model build: parse and index a source corpus.", newEclipse)
	register("fop", "Greedy paragraph-to-line layout of generated text.", newFop)
	register("h2", "Embedded-database table operations on the B-tree engine.", newH2)
	register("jython", "Interpret compiled minilang programs on the RVM.", newJython)
	register("luindex", "Build an inverted text index.", newLuindex)
	register("lusearch-fix", "Query an inverted text index.", newLusearch)
	register("pmd", "Static analysis rules over minilang syntax trees.", newPMD)
	register("sunflow", "Object-oriented ray tracing with shape polymorphism.", newOOSunflow)
	register("tomcat", "Request routing through handler-object chains.", newTomcat)
	register("tradebeans", "Order matching over bean-style object graphs.", newTrade("tradebeans", 1))
	register("tradesoap", "Order matching with serialized message envelopes.", newTrade("tradesoap", 2))
	register("xalan", "Tree-to-tree transformation of a document model.", newXalan)
}

// --- avrora: discrete event simulation ---

// device is the polymorphic simulation component.
type device interface {
	tick(now int64) (next int64, work int)
}

type timerDev struct{ period int64 }
type uartDev struct{ state int }
type adcDev struct{ acc int }

func (d *timerDev) tick(now int64) (int64, int) { return now + d.period, 1 }
func (d *uartDev) tick(now int64) (int64, int) {
	d.state = (d.state*31 + 7) % 97
	return now + int64(3+d.state%5), d.state % 3
}
func (d *adcDev) tick(now int64) (int64, int) {
	d.acc += int(now % 13)
	return now + 11, d.acc % 2
}

type event struct {
	at  int64
	dev device
}

type eventQueue []event

func (q eventQueue) Len() int           { return len(q) }
func (q eventQueue) Less(i, j int) bool { return q[i].at < q[j].at }
func (q eventQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)        { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any          { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

type avroraWorkload struct {
	horizon int64
	events  int
}

func newAvrora(cfg core.Config) (core.Workload, error) {
	return &avroraWorkload{horizon: int64(cfg.Scale(60000))}, nil
}

func (w *avroraWorkload) RunIteration() error {
	var q eventQueue
	for i := 0; i < 8; i++ {
		allocated(1)
		var d device
		switch i % 3 {
		case 0:
			d = &timerDev{period: int64(5 + i)}
		case 1:
			d = &uartDev{state: i}
		default:
			d = &adcDev{}
		}
		heap.Push(&q, event{int64(i), d})
	}
	w.events = 0
	for q.Len() > 0 {
		e := heap.Pop(&q).(event)
		if e.at > w.horizon {
			break
		}
		dispatch()
		next, _ := e.dev.tick(e.at)
		w.events++
		heap.Push(&q, event{next, e.dev})
	}
	return nil
}

func (w *avroraWorkload) Validate() error {
	if w.events < int(w.horizon/20) {
		return fmt.Errorf("avrora: only %d events simulated", w.events)
	}
	return nil
}

// --- batik: polygon rasterization ---

type batikWorkload struct {
	size    int
	covered int
}

func newBatik(cfg core.Config) (core.Workload, error) {
	return &batikWorkload{size: cfg.Scale(250)}, nil
}

func (w *batikWorkload) RunIteration() error {
	n := w.size
	grid := make([]bool, n*n)
	// Rasterize a fan of triangles with the half-plane test.
	type pt struct{ x, y float64 }
	inTri := func(p, a, b, c pt) bool {
		sign := func(p1, p2, p3 pt) float64 {
			return (p1.x-p3.x)*(p2.y-p3.y) - (p2.x-p3.x)*(p1.y-p3.y)
		}
		d1, d2, d3 := sign(p, a, b), sign(p, b, c), sign(p, c, a)
		neg := d1 < 0 || d2 < 0 || d3 < 0
		pos := d1 > 0 || d2 > 0 || d3 > 0
		return !(neg && pos)
	}
	center := pt{float64(n) / 2, float64(n) / 2}
	for t := 0; t < 12; t++ {
		allocated(1)
		a := center
		b := pt{float64((t * 37) % n), float64((t * 61) % n)}
		c := pt{float64((t*53 + 20) % n), float64((t*29 + 40) % n)}
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				if inTri(pt{float64(x), float64(y)}, a, b, c) {
					grid[y*n+x] = true
				}
			}
		}
	}
	w.covered = 0
	for _, v := range grid {
		if v {
			w.covered++
		}
	}
	return nil
}

func (w *batikWorkload) Validate() error {
	if w.covered == 0 || w.covered >= w.size*w.size {
		return fmt.Errorf("batik: implausible coverage %d", w.covered)
	}
	return nil
}

// --- eclipse: workspace build ---

type eclipseWorkload struct {
	corpus []string
	index  map[string][]int
}

func newEclipse(cfg core.Config) (core.Workload, error) {
	return &eclipseWorkload{corpus: minilang.Corpus(cfg.Scale(20))}, nil
}

func (w *eclipseWorkload) RunIteration() error {
	w.index = make(map[string][]int)
	for i, src := range w.corpus {
		ast, err := minilang.Parse(src)
		if err != nil {
			return err
		}
		if err := minilang.Check(ast); err != nil {
			return err
		}
		for _, fn := range ast.Funcs {
			allocated(1)
			w.index[fn.Name] = append(w.index[fn.Name], i)
		}
	}
	return nil
}

func (w *eclipseWorkload) Validate() error {
	if len(w.index["main"]) != len(w.corpus) {
		return fmt.Errorf("eclipse: indexed %d mains, want %d", len(w.index["main"]), len(w.corpus))
	}
	return nil
}

// --- fop: text layout ---

type fopWorkload struct {
	words []string
	width int
	lines int
}

func newFop(cfg core.Config) (core.Workload, error) {
	var words []string
	base := []string{"the", "formatting", "objects", "processor", "lays", "out",
		"paragraphs", "into", "justified", "lines", "of", "fixed", "width"}
	n := cfg.Scale(20000)
	for i := 0; i < n; i++ {
		words = append(words, base[i%len(base)])
	}
	return &fopWorkload{words: words, width: 72}, nil
}

func (w *fopWorkload) RunIteration() error {
	w.lines = 0
	col := 0
	for _, word := range w.words {
		need := len(word)
		if col > 0 {
			need++
		}
		if col+need > w.width {
			w.lines++
			col = len(word)
		} else {
			col += need
		}
	}
	if col > 0 {
		w.lines++
	}
	return nil
}

func (w *fopWorkload) Validate() error {
	if w.lines == 0 {
		return fmt.Errorf("fop: no lines laid out")
	}
	// Every line fits the measure by construction; sanity check density.
	if w.lines > len(w.words) {
		return fmt.Errorf("fop: more lines than words")
	}
	return nil
}

// --- h2: embedded table operations ---

type h2Workload struct {
	rows int
}

func newH2(cfg core.Config) (core.Workload, error) {
	return &h2Workload{rows: cfg.Scale(2500)}, nil
}

func (w *h2Workload) RunIteration() error {
	table := memdb.NewBTree()
	// Insert, update, select, and aggregate — a TPC-ish single-user mix.
	for i := 0; i < w.rows; i++ {
		table.Put(fmt.Sprintf("acct-%07d", i), []byte{byte(i), byte(i >> 8), 0})
	}
	for i := 0; i < w.rows; i += 3 {
		key := fmt.Sprintf("acct-%07d", i)
		if v, ok := table.Get(key); ok {
			v2 := append([]byte(nil), v...)
			v2[2]++
			table.Put(key, v2)
		}
	}
	updated := 0
	table.Range("acct-", "acct-~", func(k string, v []byte) bool {
		if len(v) == 3 && v[2] > 0 {
			updated++
		}
		return true
	})
	want := (w.rows + 2) / 3
	if updated != want {
		return fmt.Errorf("h2: %d updated rows, want %d", updated, want)
	}
	return nil
}

// --- jython: interpret programs ---

type jythonWorkload struct {
	programs []*rvm.Program
	want     []int64
}

func newJython(cfg core.Config) (core.Workload, error) {
	w := &jythonWorkload{}
	for _, src := range minilang.Corpus(cfg.Scale(12)) {
		p, err := minilang.Compile(src)
		if err != nil {
			return nil, err
		}
		v, err := rvm.NewInterp(p).Run()
		if err != nil {
			return nil, err
		}
		w.programs = append(w.programs, p)
		w.want = append(w.want, v.AsInt())
	}
	return w, nil
}

func (w *jythonWorkload) RunIteration() error {
	for i, p := range w.programs {
		v, err := rvm.NewInterp(p).Run()
		if err != nil {
			return err
		}
		if v.AsInt() != w.want[i] {
			return fmt.Errorf("jython: program %d returned %d, want %d", i, v.AsInt(), w.want[i])
		}
	}
	return nil
}

// --- luindex / lusearch ---

func textCorpus(cfg core.Config, docs int) []string {
	vocab := []string{"renaissance", "benchmark", "parallel", "virtual", "machine",
		"compiler", "optimization", "thread", "memory", "object", "stream",
		"actor", "future", "atomic", "lock", "graph", "index", "query"}
	rng := cfg.Rand("text-corpus")
	out := make([]string, docs)
	for d := range out {
		var b strings.Builder
		for k := 0; k < 60; k++ {
			b.WriteString(vocab[rng.Intn(len(vocab))])
			b.WriteByte(' ')
		}
		out[d] = b.String()
	}
	return out
}

func buildIndex(docs []string) map[string][]int {
	idx := make(map[string][]int)
	for d, doc := range docs {
		seen := map[string]bool{}
		for _, tok := range strings.Fields(doc) {
			if !seen[tok] {
				seen[tok] = true
				allocated(1)
				idx[tok] = append(idx[tok], d)
			}
		}
	}
	return idx
}

type luindexWorkload struct {
	docs  []string
	terms int
}

func newLuindex(cfg core.Config) (core.Workload, error) {
	return &luindexWorkload{docs: textCorpus(cfg, cfg.Scale(400))}, nil
}

func (w *luindexWorkload) RunIteration() error {
	idx := buildIndex(w.docs)
	w.terms = len(idx)
	return nil
}

func (w *luindexWorkload) Validate() error {
	if w.terms == 0 {
		return fmt.Errorf("luindex: empty index")
	}
	return nil
}

type lusearchWorkload struct {
	idx     map[string][]int
	queries []string
	hits    int
}

func newLusearch(cfg core.Config) (core.Workload, error) {
	docs := textCorpus(cfg, cfg.Scale(300))
	queries := []string{"parallel machine", "benchmark optimization", "atomic lock",
		"graph query", "stream actor future"}
	var all []string
	for i := 0; i < cfg.Scale(2000); i++ {
		all = append(all, queries[i%len(queries)])
	}
	return &lusearchWorkload{idx: buildIndex(docs), queries: all}, nil
}

func (w *lusearchWorkload) RunIteration() error {
	w.hits = 0
	for _, q := range w.queries {
		// Conjunctive query: intersect posting lists.
		var result []int
		for t, term := range strings.Fields(q) {
			posting := w.idx[term]
			if t == 0 {
				result = append([]int(nil), posting...)
				continue
			}
			var merged []int
			i, j := 0, 0
			for i < len(result) && j < len(posting) {
				switch {
				case result[i] == posting[j]:
					merged = append(merged, result[i])
					i++
					j++
				case result[i] < posting[j]:
					i++
				default:
					j++
				}
			}
			result = merged
		}
		w.hits += len(result)
	}
	return nil
}

func (w *lusearchWorkload) Validate() error {
	if w.hits == 0 {
		return fmt.Errorf("lusearch: no hits")
	}
	return nil
}

// --- pmd: AST analysis rules ---

type pmdWorkload struct {
	asts       []*minilang.ProgramAST
	violations int
}

func newPMD(cfg core.Config) (core.Workload, error) {
	w := &pmdWorkload{}
	for _, src := range minilang.Corpus(cfg.Scale(24)) {
		ast, err := minilang.Parse(src)
		if err != nil {
			return nil, err
		}
		w.asts = append(w.asts, ast)
	}
	return w, nil
}

// countStmts walks statements, applying two "rules": deep nesting and
// long functions.
func countStmts(b *minilang.Block, depth int, violations *int) int {
	n := 0
	for _, s := range b.Stmts {
		n++
		switch s := s.(type) {
		case *minilang.If:
			if depth >= 3 {
				*violations++
			}
			n += countStmts(s.Then, depth+1, violations)
			if s.Else != nil {
				n += countStmts(s.Else, depth+1, violations)
			}
		case *minilang.While:
			n += countStmts(s.Body, depth+1, violations)
		}
	}
	return n
}

func (w *pmdWorkload) RunIteration() error {
	w.violations = 0
	total := 0
	for _, ast := range w.asts {
		for _, fn := range ast.Funcs {
			dispatch()
			n := countStmts(fn.Body, 0, &w.violations)
			if n > 50 {
				w.violations++
			}
			total += n
		}
	}
	if total == 0 {
		return fmt.Errorf("pmd: no statements analyzed")
	}
	return nil
}

// --- sunflow (oo variant): shape polymorphism ---

type shape interface{ hit(x, y float64) bool }

type circle struct{ cx, cy, r float64 }
type square struct{ cx, cy, half float64 }
type ring struct{ cx, cy, inner, outer float64 }

func (c circle) hit(x, y float64) bool {
	dx, dy := x-c.cx, y-c.cy
	return dx*dx+dy*dy <= c.r*c.r
}
func (s square) hit(x, y float64) bool {
	dx, dy := x-s.cx, y-s.cy
	return dx >= -s.half && dx <= s.half && dy >= -s.half && dy <= s.half
}
func (r ring) hit(x, y float64) bool {
	dx, dy := x-r.cx, y-r.cy
	d := dx*dx + dy*dy
	return d >= r.inner*r.inner && d <= r.outer*r.outer
}

type ooSunflowWorkload struct {
	size    int
	shapes  []shape
	covered int
}

func newOOSunflow(cfg core.Config) (core.Workload, error) {
	n := cfg.Scale(220)
	if n < 20 {
		n = 20
	}
	// Shape geometry scales with the grid so coverage stays partial at
	// every size factor.
	s := float64(n)
	var shapes []shape
	for i := 0; i < 9; i++ {
		allocated(1)
		fi := float64(i)
		switch i % 3 {
		case 0:
			shapes = append(shapes, circle{fi * s * 0.09, fi * s * 0.07, s * 0.08})
		case 1:
			shapes = append(shapes, square{fi * s * 0.08, s*0.55 - fi*s*0.04, s * 0.06})
		default:
			shapes = append(shapes, ring{s*0.45 - fi*s*0.03, fi * s * 0.1, s * 0.03, s * 0.07})
		}
	}
	return &ooSunflowWorkload{size: n, shapes: shapes}, nil
}

func (w *ooSunflowWorkload) RunIteration() error {
	w.covered = 0
	for y := 0; y < w.size; y++ {
		for x := 0; x < w.size; x++ {
			for _, s := range w.shapes {
				dispatch()
				if s.hit(float64(x), float64(y)) {
					w.covered++
					break
				}
			}
		}
	}
	return nil
}

func (w *ooSunflowWorkload) Validate() error {
	if w.covered == 0 || w.covered >= w.size*w.size {
		return fmt.Errorf("sunflow: implausible coverage %d", w.covered)
	}
	return nil
}

// --- tomcat: request routing ---

type handler interface {
	serve(path string, depth int) int
}

type staticHandler struct{ weight int }
type paramHandler struct{ weight int }
type chainHandler struct {
	next handler
	add  int
}

func (h staticHandler) serve(path string, depth int) int { return h.weight + len(path) }
func (h paramHandler) serve(path string, depth int) int  { return h.weight * (depth + 1) }
func (h chainHandler) serve(path string, depth int) int {
	dispatch()
	return h.add + h.next.serve(path, depth+1)
}

type tomcatWorkload struct {
	routes   map[string]handler
	requests []string
	total    int
}

func newTomcat(cfg core.Config) (core.Workload, error) {
	routes := map[string]handler{}
	paths := []string{"/", "/index", "/api/users", "/api/orders", "/static/app.js", "/health"}
	for i, p := range paths {
		allocated(1)
		var h handler
		if i%2 == 0 {
			h = staticHandler{weight: i + 1}
		} else {
			h = paramHandler{weight: i + 2}
		}
		// Wrap in a middleware chain.
		for d := 0; d < 3; d++ {
			h = chainHandler{next: h, add: d}
		}
		routes[p] = h
	}
	var reqs []string
	n := cfg.Scale(30000)
	for i := 0; i < n; i++ {
		reqs = append(reqs, paths[i%len(paths)])
	}
	return &tomcatWorkload{routes: routes, requests: reqs}, nil
}

func (w *tomcatWorkload) RunIteration() error {
	w.total = 0
	for _, r := range w.requests {
		h, ok := w.routes[r]
		if !ok {
			return fmt.Errorf("tomcat: no route for %s", r)
		}
		dispatch()
		w.total += h.serve(r, 0)
	}
	return nil
}

func (w *tomcatWorkload) Validate() error {
	if w.total == 0 {
		return fmt.Errorf("tomcat: no work")
	}
	return nil
}

// --- tradebeans / tradesoap: order matching ---

type order struct {
	id    int
	buy   bool
	price int
	qty   int
}

type tradeWorkload struct {
	name     string
	envelope int // tradesoap wraps orders in string envelopes
	orders   []order
	matched  int
}

func newTrade(name string, envelope int) func(core.Config) (core.Workload, error) {
	return func(cfg core.Config) (core.Workload, error) {
		var r lcgState = 91
		n := cfg.Scale(8000)
		w := &tradeWorkload{name: name, envelope: envelope}
		for i := 0; i < n; i++ {
			w.orders = append(w.orders, order{
				id:    i,
				buy:   r.next()%2 == 0,
				price: 90 + int(r.next()%21),
				qty:   1 + int(r.next()%10),
			})
		}
		return w, nil
	}
}

type lcgState uint64

func (l *lcgState) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l) >> 33
}

func (w *tradeWorkload) RunIteration() error {
	// Price-sorted books with greedy matching.
	var bids, asks []order
	w.matched = 0
	for _, o := range w.orders {
		allocated(1)
		if w.envelope > 1 {
			// tradesoap: serialize/deserialize an envelope per order.
			env := fmt.Sprintf("<order id=%d buy=%v price=%d qty=%d/>", o.id, o.buy, o.price, o.qty)
			if !strings.Contains(env, "price") {
				return fmt.Errorf("%s: bad envelope", w.name)
			}
		}
		if o.buy {
			bids = append(bids, o)
		} else {
			asks = append(asks, o)
		}
	}
	sort.Slice(bids, func(i, j int) bool { return bids[i].price > bids[j].price })
	sort.Slice(asks, func(i, j int) bool { return asks[i].price < asks[j].price })
	bi, ai := 0, 0
	for bi < len(bids) && ai < len(asks) && bids[bi].price >= asks[ai].price {
		q := bids[bi].qty
		if asks[ai].qty < q {
			q = asks[ai].qty
		}
		bids[bi].qty -= q
		asks[ai].qty -= q
		w.matched += q
		if bids[bi].qty == 0 {
			bi++
		}
		if asks[ai].qty == 0 {
			ai++
		}
	}
	return nil
}

func (w *tradeWorkload) Validate() error {
	if w.matched == 0 {
		return fmt.Errorf("%s: no trades matched", w.name)
	}
	return nil
}

// --- xalan: document transformation ---

type node struct {
	tag      string
	text     string
	children []*node
}

type xalanWorkload struct {
	root  *node
	nodes int
}

func newXalan(cfg core.Config) (core.Workload, error) {
	// Build a document tree.
	var build func(depth, fan int) *node
	count := 0
	build = func(depth, fan int) *node {
		count++
		allocated(1)
		n := &node{tag: fmt.Sprintf("e%d", depth), text: strings.Repeat("x", depth)}
		if depth > 0 {
			for i := 0; i < fan; i++ {
				n.children = append(n.children, build(depth-1, fan))
			}
		}
		return n
	}
	depth := 6
	fan := 3
	if cfg.SizeFactor < 0.5 {
		depth = 5
	}
	root := build(depth, fan)
	return &xalanWorkload{root: root, nodes: count}, nil
}

// transform maps a tree to a new tree, uppercasing tags and reversing
// children (a stylesheet-ish structural rewrite).
func transform(n *node) *node {
	allocated(1)
	out := &node{tag: strings.ToUpper(n.tag), text: n.text}
	for i := len(n.children) - 1; i >= 0; i-- {
		out.children = append(out.children, transform(n.children[i]))
	}
	return out
}

func countNodes(n *node) int {
	c := 1
	for _, ch := range n.children {
		c += countNodes(ch)
	}
	return c
}

func (w *xalanWorkload) RunIteration() error {
	for pass := 0; pass < 20; pass++ {
		out := transform(w.root)
		if countNodes(out) != w.nodes {
			return fmt.Errorf("xalan: transformed tree has wrong size")
		}
	}
	return nil
}
