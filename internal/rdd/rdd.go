// Package rdd implements an in-process data-parallel engine in the style
// of Apache Spark (Zaharia et al., HotCloud 2010): resilient datasets are
// split into partitions, narrow transformations (map, filter) compose
// lazily per partition, wide transformations (reduceByKey, join) insert a
// hash shuffle, and actions evaluate partitions in parallel. It is the
// substrate of the paper's Spark-based benchmarks — als, chi-square,
// dec-tree, log-regression, movie-lens, naive-bayes, and page-rank
// (Table 1: "data-parallel, machine learning / compute-bound / atomics").
//
// Internally the engine is built around four mechanisms (DESIGN.md §7,
// §14):
//
//   - Fused pipelines: a narrow transformation does not materialize an
//     intermediate slice. Each stage is a push-based sink over its
//     parent's pipeline, so a Map→Filter→FlatMap chain evaluates a
//     partition in one pass with a single output allocation at the next
//     materialization boundary (an action, a Cache, or a shuffle write).
//   - Shared execution: partition tasks, shuffle producers/consumers, and
//     aggregates all run as partition-granular work on the process-wide
//     fork–join pool (forkjoin.Shared), never as one goroutine per
//     partition.
//   - Lock-free shuffle: wide dependencies exchange pairs through a
//     private [producer][bucket] staging matrix followed by per-bucket
//     concatenation — no mutex is acquired on the shuffle hot path.
//   - Lineage-based recovery (recovery.go, lineage.go): a failed
//     partition attempt is recomputed from the nearest materialized
//     ancestor under a bounded retry budget; failed shuffle exchanges
//     retry under fresh epochs; Checkpoint truncates lineage; straggler
//     speculation (opt-in) duplicates slow partitions first-writer-wins.
package rdd

import (
	"errors"
	"hash/maphash"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"

	"renaissance/internal/chaos"
	"renaissance/internal/metrics"
)

// ErrEmpty is returned by Reduce on an empty dataset.
var ErrEmpty = errors.New("rdd: empty dataset")

// RDD is a partitioned, lazily evaluated dataset of T.
type RDD[T any] struct {
	numPartitions int

	// iterate is the fused compute representation: it pushes partition
	// p's elements into sink, stopping early when sink returns false.
	// Narrow transformations compose here without materializing.
	iterate func(p int, sink func(T) bool)

	// sizeHint estimates partition p's element count so materialization
	// can allocate its output once. It is a hint, not a contract: Filter
	// keeps its parent's (an upper bound), FlatMap's output may grow past
	// it.
	sizeHint func(p int) int

	// cache, when non-nil, holds one publication slot per partition (see
	// Cache and cachedPartition).
	cache []cacheSlot[T]

	// lin records how this dataset was derived (lineage.go); nil on
	// directly constructed datasets, which recovery treats as sources.
	lin *lineage

	// wideEpochs points at the exchange-attempt counter of a wide or
	// checkpointed dataset (nil for narrow ones); see ShuffleEpochs.
	wideEpochs *atomic.Int64
}

// cacheSlot memoizes one partition: an atomic publication pointer for the
// lock-free read path, and a mutex serializing the first computation so a
// partition is never evaluated twice by racing actions. Unlike the
// sync.Once this replaces, a panic during materialization releases the
// mutex with the slot still empty — the partition can be recomputed —
// instead of permanently marking the Once done with a nil value that
// every later action would silently read as an empty partition.
type cacheSlot[T any] struct {
	mu  sync.Mutex
	val atomic.Pointer[[]T]
}

// defaultPartitions is the Parallelize partition count when none is given.
const defaultPartitions = 8

// shuffleGrowth bounds how far a wide transformation may grow the
// partition count over max(parent partitions, GOMAXPROCS); see
// clampPartitions.
const shuffleGrowth = 4

// clampPartitions is the engine's single partition-count rule; every
// operation that accepts a partition count resolves it here.
//
//   - requested <= 0 inherits fallback: defaultPartitions for
//     Parallelize, the parent's count for wide transformations.
//   - The count never exceeds limit: Parallelize caps at len(data) (a
//     partition can't hold less than one element), and wide
//     transformations cap at shuffleGrowth × max(parent partitions,
//     GOMAXPROCS) — buckets beyond that are guaranteed empty-partition
//     churn, each one a scheduled task that computes nothing.
//   - The result is at least 1, so an empty dataset still has one (empty)
//     partition.
func clampPartitions(requested, fallback, limit int) int {
	p := requested
	if p <= 0 {
		p = fallback
	}
	if p > limit {
		p = limit
	}
	if p < 1 {
		p = 1
	}
	return p
}

// shuffleLimit is the wide-transformation cap fed to clampPartitions.
func shuffleLimit(parentPartitions int) int {
	limit := runtime.GOMAXPROCS(0)
	if parentPartitions > limit {
		limit = parentPartitions
	}
	return shuffleGrowth * limit
}

// Parallelize splits data into the given number of partitions (0 means 8;
// see clampPartitions for the clamping rule).
func Parallelize[T any](data []T, partitions int) *RDD[T] {
	partitions = clampPartitions(partitions, defaultPartitions, len(data))
	metrics.IncObject()
	n := len(data)
	return &RDD[T]{
		numPartitions: partitions,
		lin:           newLineage("parallelize", depSource, nil),
		sizeHint: func(p int) int {
			return (p+1)*n/partitions - p*n/partitions
		},
		iterate: func(p int, sink func(T) bool) {
			lo, hi := p*n/partitions, (p+1)*n/partitions
			for _, x := range data[lo:hi] {
				if !sink(x) {
					return
				}
			}
		},
	}
}

// NumPartitions returns the partition count.
func (r *RDD[T]) NumPartitions() int { return r.numPartitions }

// Cache memoizes partition contents: each partition is computed at most
// once across all downstream actions. A cached dataset is a fusion
// barrier — downstream stages read the memoized slice instead of
// re-running the upstream pipeline — and a recovery barrier: downstream
// recomputes replay from the memoized slice, never the upstream chain.
func (r *RDD[T]) Cache() *RDD[T] {
	if r.cache == nil {
		r.cache = make([]cacheSlot[T], r.numPartitions)
		r.lin = newLineage("cache", depBarrier, r.lin)
	}
	return r
}

// run streams partition p through sink, reading from the cache when the
// dataset is cached. This is how narrow children consume their parent:
// elements flow stage to stage without intermediate slices.
func (r *RDD[T]) run(p int, sink func(T) bool) {
	if r.cache != nil {
		for _, x := range r.cachedPartition(p) {
			if !sink(x) {
				return
			}
		}
		return
	}
	r.iterate(p, sink)
}

// materialize evaluates partition p into a slice: the whole fused
// pipeline runs in one pass into a single size-hinted allocation, with
// the attempt's cancellation checked at the strided sink guard.
func (r *RDD[T]) materialize(ctx *taskCtx, p int) []T {
	loc := metrics.Acquire()
	loc.IncArray()
	out := make([]T, 0, r.sizeHint(p))
	r.iterate(p, guardSink(ctx, func(x T) bool {
		out = append(out, x)
		return true
	}))
	return out
}

// cachedPartition returns partition p's memoized contents, computing and
// publishing them on first use. Racing actions serialize on the slot
// mutex (the loser waits and reads the winner's slice — each partition is
// still computed exactly once per success); a failed attempt leaves the
// slot empty for the next action's recompute.
func (r *RDD[T]) cachedPartition(p int) []T {
	s := &r.cache[p]
	if v := s.val.Load(); v != nil {
		return *v
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if v := s.val.Load(); v == nil {
		part := r.materialize(noCtx, p)
		s.val.Store(&part)
	}
	return *s.val.Load()
}

// partition evaluates one partition to a slice (the materialization
// boundary used by actions and by MapPartitions).
func (r *RDD[T]) partition(p int) []T { return r.partitionCtx(noCtx, p) }

// partitionCtx is partition under an attempt's cancellation context.
func (r *RDD[T]) partitionCtx(ctx *taskCtx, p int) []T {
	metrics.IncMethod()
	if r.cache != nil {
		return r.cachedPartition(p)
	}
	return r.materialize(ctx, p)
}

// collectPartitions evaluates every partition on the recovery-aware
// partition scheduler (recovery.go), re-panicking a persistent failure's
// *forkjoin.TaskError at the join — the legacy action contract.
func collectPartitions[T any](r *RDD[T]) [][]T {
	parts, err := collectPartitionsE(r)
	if err != nil {
		panic(err)
	}
	return parts
}

// Map applies fn to every element (narrow dependency, fused).
func Map[T, U any](r *RDD[T], fn func(T) U) *RDD[U] {
	metrics.IncObject()
	return &RDD[U]{
		numPartitions: r.numPartitions,
		lin:           newLineage("map", depNarrow, r.lin),
		sizeHint:      r.sizeHint,
		iterate: func(p int, sink func(U) bool) {
			// One shard-pinned handle per partition pass: the per-element
			// closure-dispatch bumps below are the engine's hottest
			// instrumentation path.
			loc := metrics.Acquire()
			r.run(p, func(x T) bool {
				loc.IncIDynamic()
				return sink(fn(x))
			})
		},
	}
}

// Filter keeps the elements satisfying pred (narrow dependency, fused).
func (r *RDD[T]) Filter(pred func(T) bool) *RDD[T] {
	metrics.IncObject()
	return &RDD[T]{
		numPartitions: r.numPartitions,
		lin:           newLineage("filter", depNarrow, r.lin),
		sizeHint:      r.sizeHint, // upper bound: filtering only shrinks
		iterate: func(p int, sink func(T) bool) {
			loc := metrics.Acquire()
			r.run(p, func(x T) bool {
				loc.IncIDynamic()
				if pred(x) {
					return sink(x)
				}
				return true
			})
		},
	}
}

// FlatMap maps each element to zero or more outputs (narrow dependency,
// fused).
func FlatMap[T, U any](r *RDD[T], fn func(T) []U) *RDD[U] {
	metrics.IncObject()
	return &RDD[U]{
		numPartitions: r.numPartitions,
		lin:           newLineage("flatMap", depNarrow, r.lin),
		sizeHint:      r.sizeHint, // a guess; the output may outgrow it
		iterate: func(p int, sink func(U) bool) {
			loc := metrics.Acquire()
			r.run(p, func(x T) bool {
				loc.IncIDynamic()
				for _, u := range fn(x) {
					if !sink(u) {
						return false
					}
				}
				return true
			})
		},
	}
}

// MapPartitions transforms whole partitions at once. The parent partition
// is materialized (fn needs the full slice), so it is a fusion barrier
// like Cache.
func MapPartitions[T, U any](r *RDD[T], fn func([]T) []U) *RDD[U] {
	metrics.IncObject()
	return &RDD[U]{
		numPartitions: r.numPartitions,
		lin:           newLineage("mapPartitions", depNarrow, r.lin),
		sizeHint:      r.sizeHint,
		iterate: func(p int, sink func(U) bool) {
			metrics.IncIDynamic()
			for _, u := range fn(r.partition(p)) {
				if !sink(u) {
					return
				}
			}
		},
	}
}

// Collect evaluates the dataset and returns all elements.
func (r *RDD[T]) Collect() []T {
	parts := collectPartitions(r)
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	metrics.IncArray()
	out := make([]T, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Count returns the number of elements. The fused pipeline streams
// through a counter — nothing is materialized.
func (r *RDD[T]) Count() int {
	n, err := r.CountE()
	if err != nil {
		panic(err)
	}
	return n
}

// Reduce folds all elements with fn; partitions are folded in parallel
// (streaming through the fused pipeline) and partial results combined in
// partition order. A persistent partition failure re-panics at the join.
func (r *RDD[T]) Reduce(fn func(T, T) T) (T, error) {
	acc, err := r.ReduceE(fn)
	if err != nil && err != ErrEmpty {
		panic(err)
	}
	return acc, err
}

// Aggregate folds each partition from zero() with seqOp, then merges the
// per-partition accumulators with combOp (Spark's treeAggregate shape,
// flattened). Each partition streams through its fused pipeline directly
// into the accumulator. A persistent partition failure re-panics at the
// join.
func Aggregate[T, A any](r *RDD[T], zero func() A, seqOp func(A, T) A, combOp func(A, A) A) A {
	acc, err := AggregateE(r, zero, seqOp, combOp)
	if err != nil {
		panic(err)
	}
	return acc
}

// Pair is a key-value record for pair-RDD operations.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// KV constructs a Pair.
func KV[K comparable, V any](k K, v V) Pair[K, V] { return Pair[K, V]{k, v} }

// shuffleSeed makes hashKey deterministic within a process while varying
// across processes (like Go's own map hashing).
var shuffleSeed = maphash.MakeSeed()

// hashKey produces the shuffle bucket of a key. maphash.Comparable
// hashes any comparable key through the runtime's memory hash, so
// struct, float, and pointer keys spread across buckets like ints and
// strings do. (The previous hand-rolled fallback mixed one constant byte
// for non-int/string keys, collapsing every such shuffle into a single
// bucket.)
func hashKey[K comparable](k K, buckets int) int {
	return int(maphash.Comparable(shuffleSeed, k) % uint64(buckets))
}

// stagingRow is one producer's private row of the shuffle exchange
// matrix: one append buffer per output bucket. Rows are pooled and reused
// across shuffles, so steady-state shuffle writes land in warm,
// pre-grown buffers.
type stagingRow[K comparable, V any] struct {
	buckets [][]Pair[K, V]
}

// stagingPools holds one sync.Pool of rows per concrete pair type
// (package-level variables cannot be generic, so pools are keyed by
// reflect.Type).
var stagingPools sync.Map // reflect.Type -> *sync.Pool

func stagingPoolFor[K comparable, V any]() *sync.Pool {
	key := reflect.TypeOf((*stagingRow[K, V])(nil))
	if p, ok := stagingPools.Load(key); ok {
		return p.(*sync.Pool)
	}
	p, _ := stagingPools.LoadOrStore(key, &sync.Pool{
		New: func() any { return new(stagingRow[K, V]) },
	})
	return p.(*sync.Pool)
}

// getStagingRow returns a row with numBuckets empty, capacity-retaining
// buffers; fresh buffers are size-hinted at hint/numBuckets elements.
func getStagingRow[K comparable, V any](pool *sync.Pool, numBuckets, hint int) *stagingRow[K, V] {
	row := pool.Get().(*stagingRow[K, V])
	// One logical buffer acquisition per producer row, counted whether or
	// not the pool had a warm row: sync.Pool hits depend on GC and
	// scheduling timing, and metric counts must be run-to-run stable.
	metrics.Acquire().IncArray()
	if cap(row.buckets) < numBuckets {
		row.buckets = make([][]Pair[K, V], numBuckets)
	}
	row.buckets = row.buckets[:numBuckets]
	per := hint/numBuckets + 1
	for i := range row.buckets {
		if row.buckets[i] == nil {
			row.buckets[i] = make([]Pair[K, V], 0, per)
		} else {
			row.buckets[i] = row.buckets[i][:0]
		}
	}
	return row
}

// putStagingRow recycles a row, dropping element references so pooled
// buffers don't pin shuffled data for the GC.
func putStagingRow[K comparable, V any](pool *sync.Pool, row *stagingRow[K, V]) {
	for i := range row.buckets {
		clear(row.buckets[i])
		row.buckets[i] = row.buckets[i][:0]
	}
	pool.Put(row)
}

// shuffle hash-partitions the parent's pairs into numPartitions buckets
// with a two-phase lock-free exchange:
//
// Phase 1 — producers: each parent partition streams its fused pipeline
// directly into a private row of the [producer][bucket] staging matrix.
// No two producers share state, so there is nothing to lock (the seed
// implementation serialized producers behind per-bucket mutexes here —
// the synchronization point the paper's page-rank "atomics" focus calls
// out).
//
// Phase 2 — consumers: each output bucket concatenates its column of the
// matrix with one exact-sized allocation.
//
// Both phases run as partition jobs on the recovery engine (runParts):
// a producer or consumer that panics — user code or an injected
// rdd.shuffle fault — is retried per partition under the task budget,
// and only a persistent failure panics out of shuffle, unwinding into
// the enclosing exchange whose next consumer retries under a fresh
// epoch. Staging rows owned by failed or abandoned attempts are
// recycled via the job's discard callback.
func shuffle[K comparable, V any](r *RDD[Pair[K, V]], numPartitions int) [][]Pair[K, V] {
	producers := r.numPartitions
	pool := stagingPoolFor[K, V]()

	metrics.IncArray()
	discardRow := func(row *stagingRow[K, V]) {
		if row != nil {
			putStagingRow(pool, row)
		}
	}
	staging, err := runParts(producers, false, func(ctx *taskCtx, p int) *stagingRow[K, V] {
		if chaos.Maybe("rdd.shuffle") {
			// A failing producer used to poison this shuffle's sync.Once
			// forever; now the attempt's staging is discarded and the
			// partition retries, with a persistent failure unwinding into
			// the exchange for an epoch-level retry.
			panic(&chaos.InjectedError{Point: "rdd.shuffle"})
		}
		metrics.IncMethod()
		row := getStagingRow[K, V](pool, numPartitions, r.sizeHint(p))
		r.run(p, guardSink(ctx, func(kv Pair[K, V]) bool {
			b := hashKey(kv.Key, numPartitions)
			row.buckets[b] = append(row.buckets[b], kv)
			return true
		}))
		if ctx.stopped {
			discardRow(row)
			return nil
		}
		return row
	}, discardRow)
	if err != nil {
		panic(err)
	}

	metrics.IncArray()
	buckets, err := runParts(numPartitions, false, func(ctx *taskCtx, b int) []Pair[K, V] {
		loc := metrics.Acquire()
		total := 0
		for _, row := range staging {
			total += len(row.buckets[b])
		}
		loc.IncArray()
		out := make([]Pair[K, V], 0, total)
		for _, row := range staging {
			out = append(out, row.buckets[b]...)
		}
		return out
	}, nil)
	for _, row := range staging {
		putStagingRow(pool, row)
	}
	if err != nil {
		panic(err)
	}
	return buckets
}

// ReduceByKey merges the values of each key with fn, shuffling into
// numPartitions output partitions (0 keeps the parent's count; see
// clampPartitions).
func ReduceByKey[K comparable, V any](r *RDD[Pair[K, V]], numPartitions int, fn func(V, V) V) *RDD[Pair[K, V]] {
	metrics.IncObject()
	numPartitions = clampPartitions(numPartitions, r.numPartitions, shuffleLimit(r.numPartitions))
	ex := &exchange[[][]Pair[K, V]]{}
	ensure := func() [][]Pair[K, V] {
		return ex.ensure(func() [][]Pair[K, V] { return shuffle(r, numPartitions) })
	}
	return &RDD[Pair[K, V]]{
		numPartitions: numPartitions,
		lin:           newLineage("reduceByKey", depWide, r.lin),
		wideEpochs:    &ex.epoch,
		sizeHint: func(p int) int {
			return len(ensure()[p])
		},
		iterate: func(p int, sink func(Pair[K, V]) bool) {
			buckets := ensure()
			loc := metrics.Acquire()
			loc.IncObject()
			agg := make(map[K]V, len(buckets[p]))
			for _, kv := range buckets[p] {
				if old, ok := agg[kv.Key]; ok {
					loc.IncIDynamic()
					agg[kv.Key] = fn(old, kv.Value)
				} else {
					agg[kv.Key] = kv.Value
				}
			}
			for k, v := range agg {
				if !sink(Pair[K, V]{k, v}) {
					return
				}
			}
		},
	}
}

// GroupByKey gathers all values of each key.
func GroupByKey[K comparable, V any](r *RDD[Pair[K, V]], numPartitions int) *RDD[Pair[K, []V]] {
	metrics.IncObject()
	numPartitions = clampPartitions(numPartitions, r.numPartitions, shuffleLimit(r.numPartitions))
	ex := &exchange[[][]Pair[K, V]]{}
	ensure := func() [][]Pair[K, V] {
		return ex.ensure(func() [][]Pair[K, V] { return shuffle(r, numPartitions) })
	}
	return &RDD[Pair[K, []V]]{
		numPartitions: numPartitions,
		lin:           newLineage("groupByKey", depWide, r.lin),
		wideEpochs:    &ex.epoch,
		sizeHint: func(p int) int {
			return len(ensure()[p])
		},
		iterate: func(p int, sink func(Pair[K, []V]) bool) {
			buckets := ensure()
			metrics.IncObject()
			agg := make(map[K][]V)
			for _, kv := range buckets[p] {
				agg[kv.Key] = append(agg[kv.Key], kv.Value)
			}
			for k, vs := range agg {
				if !sink(Pair[K, []V]{k, vs}) {
					return
				}
			}
		},
	}
}

// MapValues transforms pair values, preserving keys and partitioning.
func MapValues[K comparable, V, W any](r *RDD[Pair[K, V]], fn func(V) W) *RDD[Pair[K, W]] {
	return Map(r, func(kv Pair[K, V]) Pair[K, W] {
		return Pair[K, W]{kv.Key, fn(kv.Value)}
	})
}

// Join inner-joins two pair datasets on their keys.
func Join[K comparable, V, W any](a *RDD[Pair[K, V]], b *RDD[Pair[K, W]], numPartitions int) *RDD[Pair[K, struct {
	Left  V
	Right W
}]] {
	type joined = struct {
		Left  V
		Right W
	}
	metrics.IncObject()
	numPartitions = clampPartitions(numPartitions, a.numPartitions, shuffleLimit(a.numPartitions))
	// One exchange covers both sides: a failure in either shuffle discards
	// the attempt and the next consumer retries the pair under one fresh
	// epoch, so the two sides can never publish from different attempts.
	type sides struct {
		left  [][]Pair[K, V]
		right [][]Pair[K, W]
	}
	ex := &exchange[sides]{}
	ensure := func() sides {
		return ex.ensure(func() sides {
			return sides{shuffle(a, numPartitions), shuffle(b, numPartitions)}
		})
	}
	return &RDD[Pair[K, joined]]{
		numPartitions: numPartitions,
		lin:           newLineage("join", depWide, a.lin),
		wideEpochs:    &ex.epoch,
		sizeHint: func(p int) int {
			return len(ensure().right[p])
		},
		iterate: func(p int, sink func(Pair[K, joined]) bool) {
			s := ensure()
			metrics.IncObject()
			left := make(map[K][]V)
			for _, kv := range s.left[p] {
				left[kv.Key] = append(left[kv.Key], kv.Value)
			}
			for _, kw := range s.right[p] {
				for _, v := range left[kw.Key] {
					if !sink(Pair[K, joined]{kw.Key, joined{v, kw.Value}}) {
						return
					}
				}
			}
		},
	}
}

// CollectAsMap evaluates a pair dataset into a map (later keys overwrite).
func CollectAsMap[K comparable, V any](r *RDD[Pair[K, V]]) map[K]V {
	metrics.IncObject()
	out := make(map[K]V)
	for _, kv := range r.Collect() {
		out[kv.Key] = kv.Value
	}
	return out
}
