// Package rdd implements an in-process data-parallel engine in the style
// of Apache Spark (Zaharia et al., HotCloud 2010): resilient datasets are
// split into partitions, narrow transformations (map, filter) compose
// lazily per partition, wide transformations (reduceByKey, join) insert a
// hash shuffle, and actions evaluate partitions in parallel. It is the
// substrate of the paper's Spark-based benchmarks — als, chi-square,
// dec-tree, log-regression, movie-lens, naive-bayes, and page-rank
// (Table 1: "data-parallel, machine learning / compute-bound / atomics").
package rdd

import (
	"errors"
	"sync"

	"renaissance/internal/metrics"
)

// ErrEmpty is returned by Reduce on an empty dataset.
var ErrEmpty = errors.New("rdd: empty dataset")

// RDD is a partitioned, lazily evaluated dataset of T.
type RDD[T any] struct {
	numPartitions int
	compute       func(part int) []T

	cacheOnce []sync.Once
	cached    [][]T
}

// Parallelize splits data into the given number of partitions (0 means 8).
func Parallelize[T any](data []T, partitions int) *RDD[T] {
	if partitions <= 0 {
		partitions = 8
	}
	if partitions > len(data) && len(data) > 0 {
		partitions = len(data)
	}
	if len(data) == 0 {
		partitions = 1
	}
	metrics.IncObject()
	n := len(data)
	return &RDD[T]{
		numPartitions: partitions,
		compute: func(p int) []T {
			lo := p * n / partitions
			hi := (p + 1) * n / partitions
			return data[lo:hi]
		},
	}
}

// NumPartitions returns the partition count.
func (r *RDD[T]) NumPartitions() int { return r.numPartitions }

// Cache memoizes partition contents: each partition is computed at most
// once across all downstream actions.
func (r *RDD[T]) Cache() *RDD[T] {
	if r.cacheOnce != nil {
		return r
	}
	r.cacheOnce = make([]sync.Once, r.numPartitions)
	r.cached = make([][]T, r.numPartitions)
	inner := r.compute
	r.compute = func(p int) []T {
		r.cacheOnce[p].Do(func() {
			r.cached[p] = inner(p)
		})
		return r.cached[p]
	}
	return r
}

// partition evaluates one partition.
func (r *RDD[T]) partition(p int) []T {
	metrics.IncMethod()
	return r.compute(p)
}

// collectPartitions evaluates every partition concurrently, one goroutine
// per partition (Spark task granularity).
func collectPartitions[T any](r *RDD[T]) [][]T {
	metrics.IncArray()
	out := make([][]T, r.numPartitions)
	var wg sync.WaitGroup
	for p := 0; p < r.numPartitions; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			out[p] = r.partition(p)
		}(p)
	}
	metrics.IncPark()
	wg.Wait()
	return out
}

// Map applies fn to every element (narrow dependency).
func Map[T, U any](r *RDD[T], fn func(T) U) *RDD[U] {
	metrics.IncObject()
	return &RDD[U]{
		numPartitions: r.numPartitions,
		compute: func(p int) []U {
			in := r.partition(p)
			// One shard-pinned handle per partition task: the per-element
			// closure-dispatch bumps below are the engine's hottest
			// instrumentation path.
			loc := metrics.Acquire()
			loc.IncArray()
			out := make([]U, len(in))
			for i, x := range in {
				loc.IncIDynamic()
				out[i] = fn(x)
			}
			return out
		},
	}
}

// Filter keeps the elements satisfying pred (narrow dependency).
func (r *RDD[T]) Filter(pred func(T) bool) *RDD[T] {
	metrics.IncObject()
	return &RDD[T]{
		numPartitions: r.numPartitions,
		compute: func(p int) []T {
			in := r.partition(p)
			loc := metrics.Acquire()
			loc.IncArray()
			out := make([]T, 0, len(in))
			for _, x := range in {
				loc.IncIDynamic()
				if pred(x) {
					out = append(out, x)
				}
			}
			return out
		},
	}
}

// FlatMap maps each element to zero or more outputs (narrow dependency).
func FlatMap[T, U any](r *RDD[T], fn func(T) []U) *RDD[U] {
	metrics.IncObject()
	return &RDD[U]{
		numPartitions: r.numPartitions,
		compute: func(p int) []U {
			in := r.partition(p)
			loc := metrics.Acquire()
			loc.IncArray()
			var out []U
			for _, x := range in {
				loc.IncIDynamic()
				out = append(out, fn(x)...)
			}
			return out
		},
	}
}

// MapPartitions transforms whole partitions at once.
func MapPartitions[T, U any](r *RDD[T], fn func([]T) []U) *RDD[U] {
	metrics.IncObject()
	return &RDD[U]{
		numPartitions: r.numPartitions,
		compute: func(p int) []U {
			metrics.IncIDynamic()
			return fn(r.partition(p))
		},
	}
}

// Collect evaluates the dataset and returns all elements.
func (r *RDD[T]) Collect() []T {
	parts := collectPartitions(r)
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	metrics.IncArray()
	out := make([]T, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Count returns the number of elements.
func (r *RDD[T]) Count() int {
	parts := collectPartitions(r)
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	return n
}

// Reduce folds all elements with fn; partitions are folded in parallel and
// partial results combined.
func (r *RDD[T]) Reduce(fn func(T, T) T) (T, error) {
	parts := collectPartitions(r)
	var acc T
	have := false
	for _, part := range parts {
		for _, x := range part {
			if !have {
				acc, have = x, true
				continue
			}
			metrics.IncIDynamic()
			acc = fn(acc, x)
		}
	}
	if !have {
		return acc, ErrEmpty
	}
	return acc, nil
}

// Aggregate folds each partition from zero() with seqOp, then merges the
// per-partition accumulators with combOp (Spark's treeAggregate shape,
// flattened).
func Aggregate[T, A any](r *RDD[T], zero func() A, seqOp func(A, T) A, combOp func(A, A) A) A {
	partials := make([]A, r.numPartitions)
	var wg sync.WaitGroup
	for p := 0; p < r.numPartitions; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			loc := metrics.Acquire()
			loc.IncIDynamic()
			acc := zero()
			for _, x := range r.partition(p) {
				loc.IncIDynamic()
				acc = seqOp(acc, x)
			}
			partials[p] = acc
		}(p)
	}
	metrics.IncPark()
	wg.Wait()
	metrics.IncIDynamic()
	acc := zero()
	for _, p := range partials {
		metrics.IncIDynamic()
		acc = combOp(acc, p)
	}
	return acc
}

// Pair is a key-value record for pair-RDD operations.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// KV constructs a Pair.
func KV[K comparable, V any](k K, v V) Pair[K, V] { return Pair[K, V]{k, v} }

// hashKey produces the shuffle bucket of a key.
func hashKey[K comparable](k K, buckets int) int {
	// FNV-style hash over the key's string formatting would allocate;
	// instead use a map-free scheme via Go's built-in map hashing proxy:
	// format-free switch on common key kinds.
	var h uint64 = 14695981039346656037
	mix := func(b byte) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	switch v := any(k).(type) {
	case int:
		for i := 0; i < 8; i++ {
			mix(byte(uint64(v) >> (8 * i)))
		}
	case int32:
		for i := 0; i < 4; i++ {
			mix(byte(uint32(v) >> (8 * i)))
		}
	case int64:
		for i := 0; i < 8; i++ {
			mix(byte(uint64(v) >> (8 * i)))
		}
	case string:
		for i := 0; i < len(v); i++ {
			mix(v[i])
		}
	default:
		// Fallback: distribute via a per-key map (rare in this codebase).
		mix(0x9e)
	}
	return int(h % uint64(buckets))
}

// shuffle hash-partitions the parent's pairs into numPartitions buckets.
// Each parent partition is processed by its own goroutine; bucket appends
// are guarded by per-bucket locks, which is where data-parallel frameworks
// spend their synchronization (the paper's page-rank "atomics" focus).
func shuffle[K comparable, V any](r *RDD[Pair[K, V]], numPartitions int) [][]Pair[K, V] {
	if numPartitions <= 0 {
		numPartitions = r.numPartitions
	}
	buckets := make([][]Pair[K, V], numPartitions)
	locks := make([]sync.Mutex, numPartitions)
	var wg sync.WaitGroup
	for p := 0; p < r.numPartitions; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			// Stage pairs locally per bucket to shorten critical sections.
			loc := metrics.Acquire()
			loc.IncArray()
			local := make([][]Pair[K, V], numPartitions)
			for _, kv := range r.partition(p) {
				b := hashKey(kv.Key, numPartitions)
				local[b] = append(local[b], kv)
			}
			for b, pairs := range local {
				if len(pairs) == 0 {
					continue
				}
				// Bump before acquiring so the hold time stays minimal.
				loc.IncSynch()
				locks[b].Lock()
				buckets[b] = append(buckets[b], pairs...)
				locks[b].Unlock()
			}
		}(p)
	}
	metrics.IncPark()
	wg.Wait()
	return buckets
}

// ReduceByKey merges the values of each key with fn, shuffling into
// numPartitions output partitions (0 keeps the parent's count).
func ReduceByKey[K comparable, V any](r *RDD[Pair[K, V]], numPartitions int, fn func(V, V) V) *RDD[Pair[K, V]] {
	metrics.IncObject()
	if numPartitions <= 0 {
		numPartitions = r.numPartitions
	}
	var once sync.Once
	var buckets [][]Pair[K, V]
	return &RDD[Pair[K, V]]{
		numPartitions: numPartitions,
		compute: func(p int) []Pair[K, V] {
			once.Do(func() { buckets = shuffle(r, numPartitions) })
			loc := metrics.Acquire()
			loc.IncObject()
			agg := make(map[K]V)
			for _, kv := range buckets[p] {
				if old, ok := agg[kv.Key]; ok {
					loc.IncIDynamic()
					agg[kv.Key] = fn(old, kv.Value)
				} else {
					agg[kv.Key] = kv.Value
				}
			}
			metrics.IncArray()
			out := make([]Pair[K, V], 0, len(agg))
			for k, v := range agg {
				out = append(out, Pair[K, V]{k, v})
			}
			return out
		},
	}
}

// GroupByKey gathers all values of each key.
func GroupByKey[K comparable, V any](r *RDD[Pair[K, V]], numPartitions int) *RDD[Pair[K, []V]] {
	metrics.IncObject()
	if numPartitions <= 0 {
		numPartitions = r.numPartitions
	}
	var once sync.Once
	var buckets [][]Pair[K, V]
	return &RDD[Pair[K, []V]]{
		numPartitions: numPartitions,
		compute: func(p int) []Pair[K, []V] {
			once.Do(func() { buckets = shuffle(r, numPartitions) })
			metrics.IncObject()
			agg := make(map[K][]V)
			for _, kv := range buckets[p] {
				agg[kv.Key] = append(agg[kv.Key], kv.Value)
			}
			metrics.IncArray()
			out := make([]Pair[K, []V], 0, len(agg))
			for k, vs := range agg {
				out = append(out, Pair[K, []V]{k, vs})
			}
			return out
		},
	}
}

// MapValues transforms pair values, preserving keys and partitioning.
func MapValues[K comparable, V, W any](r *RDD[Pair[K, V]], fn func(V) W) *RDD[Pair[K, W]] {
	return Map(r, func(kv Pair[K, V]) Pair[K, W] {
		return Pair[K, W]{kv.Key, fn(kv.Value)}
	})
}

// Join inner-joins two pair datasets on their keys.
func Join[K comparable, V, W any](a *RDD[Pair[K, V]], b *RDD[Pair[K, W]], numPartitions int) *RDD[Pair[K, struct {
	Left  V
	Right W
}]] {
	type joined = struct {
		Left  V
		Right W
	}
	metrics.IncObject()
	if numPartitions <= 0 {
		numPartitions = a.numPartitions
	}
	var once sync.Once
	var leftBuckets [][]Pair[K, V]
	var rightBuckets [][]Pair[K, W]
	return &RDD[Pair[K, joined]]{
		numPartitions: numPartitions,
		compute: func(p int) []Pair[K, joined] {
			once.Do(func() {
				leftBuckets = shuffle(a, numPartitions)
				rightBuckets = shuffle(b, numPartitions)
			})
			metrics.IncObject()
			left := make(map[K][]V)
			for _, kv := range leftBuckets[p] {
				left[kv.Key] = append(left[kv.Key], kv.Value)
			}
			metrics.IncArray()
			var out []Pair[K, joined]
			for _, kw := range rightBuckets[p] {
				for _, v := range left[kw.Key] {
					out = append(out, Pair[K, joined]{kw.Key, joined{v, kw.Value}})
				}
			}
			return out
		},
	}
}

// CollectAsMap evaluates a pair dataset into a map (later keys overwrite).
func CollectAsMap[K comparable, V any](r *RDD[Pair[K, V]]) map[K]V {
	metrics.IncObject()
	out := make(map[K]V)
	for _, kv := range r.Collect() {
		out[kv.Key] = kv.Value
	}
	return out
}
