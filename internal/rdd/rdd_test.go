package rdd

import (
	"math/rand"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func ints(n int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	return xs
}

func TestParallelizeCollect(t *testing.T) {
	r := Parallelize(ints(100), 8)
	if r.NumPartitions() != 8 {
		t.Errorf("partitions = %d", r.NumPartitions())
	}
	got := r.Collect()
	if !reflect.DeepEqual(got, ints(100)) {
		t.Errorf("Collect mismatch")
	}
	if r.Count() != 100 {
		t.Errorf("Count = %d", r.Count())
	}
}

func TestParallelizeEdgeCases(t *testing.T) {
	empty := Parallelize([]int{}, 4)
	if empty.Count() != 0 {
		t.Errorf("empty count = %d", empty.Count())
	}
	small := Parallelize([]int{1, 2}, 16)
	if small.NumPartitions() > 2 {
		t.Errorf("small dataset got %d partitions", small.NumPartitions())
	}
	if got := small.Collect(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("small Collect = %v", got)
	}
	defaulted := Parallelize(ints(100), 0)
	if defaulted.NumPartitions() != 8 {
		t.Errorf("default partitions = %d", defaulted.NumPartitions())
	}
}

func TestMapFilterFlatMap(t *testing.T) {
	r := Parallelize(ints(10), 3)
	doubled := Map(r, func(x int) int { return x * 2 }).Collect()
	for i, v := range doubled {
		if v != i*2 {
			t.Fatalf("Map[%d] = %d", i, v)
		}
	}
	evens := r.Filter(func(x int) bool { return x%2 == 0 }).Count()
	if evens != 5 {
		t.Errorf("evens = %d", evens)
	}
	fm := FlatMap(r, func(x int) []int { return []int{x, x} }).Count()
	if fm != 20 {
		t.Errorf("FlatMap count = %d", fm)
	}
}

func TestMapPartitions(t *testing.T) {
	r := Parallelize(ints(10), 2)
	sums := MapPartitions(r, func(part []int) []int {
		s := 0
		for _, v := range part {
			s += v
		}
		return []int{s}
	}).Collect()
	total := 0
	for _, s := range sums {
		total += s
	}
	if total != 45 {
		t.Errorf("partition sums total = %d", total)
	}
	if len(sums) != 2 {
		t.Errorf("partition sums = %v", sums)
	}
}

func TestReduceAndAggregate(t *testing.T) {
	r := Parallelize(ints(101), 7)
	sum, err := r.Reduce(func(a, b int) int { return a + b })
	if err != nil || sum != 5050 {
		t.Errorf("Reduce = (%d, %v)", sum, err)
	}
	if _, err := Parallelize([]int{}, 1).Reduce(func(a, b int) int { return a + b }); err == nil {
		t.Error("Reduce of empty should error")
	}
	agg := Aggregate(r,
		func() int { return 0 },
		func(a, x int) int { return a + x },
		func(a, b int) int { return a + b })
	if agg != 5050 {
		t.Errorf("Aggregate = %d", agg)
	}
}

func TestCacheComputesOnce(t *testing.T) {
	var computations atomic.Int64
	base := Parallelize(ints(10), 2)
	counted := Map(base, func(x int) int {
		computations.Add(1)
		return x
	}).Cache()
	_ = counted.Collect()
	first := computations.Load()
	_ = counted.Collect()
	_ = counted.Count()
	if computations.Load() != first {
		t.Errorf("cached RDD recomputed: %d -> %d", first, computations.Load())
	}
	if first != 10 {
		t.Errorf("first pass computed %d elements", first)
	}
}

func TestReduceByKey(t *testing.T) {
	words := []string{"a", "b", "a", "c", "b", "a"}
	pairs := Map(Parallelize(words, 3), func(w string) Pair[string, int] { return KV(w, 1) })
	counts := CollectAsMap(ReduceByKey(pairs, 4, func(a, b int) int { return a + b }))
	want := map[string]int{"a": 3, "b": 2, "c": 1}
	if !reflect.DeepEqual(counts, want) {
		t.Errorf("counts = %v", counts)
	}
}

func TestGroupByKey(t *testing.T) {
	pairs := Parallelize([]Pair[int, string]{
		KV(1, "x"), KV(2, "y"), KV(1, "z"),
	}, 2)
	groups := CollectAsMap(GroupByKey(pairs, 3))
	if len(groups[1]) != 2 || len(groups[2]) != 1 {
		t.Errorf("groups = %v", groups)
	}
}

func TestMapValues(t *testing.T) {
	pairs := Parallelize([]Pair[string, int]{KV("a", 1), KV("b", 2)}, 1)
	got := CollectAsMap(MapValues(pairs, func(v int) int { return v * 10 }))
	if got["a"] != 10 || got["b"] != 20 {
		t.Errorf("MapValues = %v", got)
	}
}

func TestJoin(t *testing.T) {
	left := Parallelize([]Pair[int, string]{KV(1, "l1"), KV(2, "l2"), KV(3, "l3")}, 2)
	right := Parallelize([]Pair[int, int]{KV(1, 10), KV(2, 20), KV(2, 21), KV(4, 40)}, 2)
	joined := Join(left, right, 3).Collect()
	if len(joined) != 3 { // keys 1 (1 pair) and 2 (2 pairs)
		t.Fatalf("join size = %d: %v", len(joined), joined)
	}
	seen := map[int][]int{}
	for _, j := range joined {
		seen[j.Key] = append(seen[j.Key], j.Value.Right)
	}
	if len(seen[1]) != 1 || len(seen[2]) != 2 {
		t.Errorf("join structure = %v", seen)
	}
}

// Property: word count via ReduceByKey matches a sequential map count.
func TestPropertyWordCount(t *testing.T) {
	f := func(raw []uint8, parts uint8) bool {
		words := make([]string, len(raw))
		for i, b := range raw {
			words[i] = string(rune('a' + int(b)%5))
		}
		p := int(parts%6) + 1
		pairs := Map(Parallelize(words, p), func(w string) Pair[string, int] { return KV(w, 1) })
		got := CollectAsMap(ReduceByKey(pairs, p, func(a, b int) int { return a + b }))
		want := map[string]int{}
		for _, w := range words {
			want[w]++
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLogisticRegressionSeparable(t *testing.T) {
	// Linearly separable data: x > 0 => label 1.
	rng := rand.New(rand.NewSource(1))
	var points []LabeledPoint
	for i := 0; i < 400; i++ {
		x := rng.Float64()*2 - 1
		label := 0
		if x > 0 {
			label = 1
		}
		points = append(points, LabeledPoint{Features: []float64{x, 1}, Label: label})
	}
	w, err := LogisticRegression(Parallelize(points, 4), 200, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, p := range points {
		pred := 0
		if PredictLogistic(w, p.Features) > 0.5 {
			pred = 1
		}
		if pred == p.Label {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(points)); acc < 0.95 {
		t.Errorf("accuracy = %.2f, want >= 0.95", acc)
	}
}

func TestNaiveBayes(t *testing.T) {
	// Class 0 heavy on feature 0, class 1 heavy on feature 1.
	var points []LabeledPoint
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		label := i % 2
		f := make([]float64, 2)
		f[label] = float64(5 + rng.Intn(5))
		f[1-label] = float64(rng.Intn(2))
		points = append(points, LabeledPoint{Features: f, Label: label})
	}
	m, err := NaiveBayes(Parallelize(points, 4), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, p := range points {
		if m.Predict(p.Features) == p.Label {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(points)); acc < 0.95 {
		t.Errorf("accuracy = %.2f", acc)
	}
	if _, err := NaiveBayes(Parallelize([]LabeledPoint{}, 1), 2, 2); err == nil {
		t.Error("empty NaiveBayes should error")
	}
}

func TestChiSquare(t *testing.T) {
	// Feature 0 is perfectly predictive; feature 1 is uniform noise.
	var points []LabeledPoint
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 400; i++ {
		label := i % 2
		points = append(points, LabeledPoint{
			Features: []float64{float64(label), float64(rng.Intn(2))},
			Label:    label,
		})
	}
	stats := ChiSquare(Parallelize(points, 4), 2, 2, 2)
	if len(stats) != 2 {
		t.Fatalf("stats = %v", stats)
	}
	if stats[0] <= stats[1] {
		t.Errorf("predictive feature chi2 %.1f <= noise chi2 %.1f", stats[0], stats[1])
	}
	if stats[0] < 100 {
		t.Errorf("predictive chi2 = %.1f, suspiciously small", stats[0])
	}
}

func TestDecisionTree(t *testing.T) {
	// XOR-ish 2D data solvable with depth-3 axis-aligned splits.
	var points []LabeledPoint
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		x, y := rng.Float64(), rng.Float64()
		label := 0
		if (x > 0.5) != (y > 0.5) {
			label = 1
		}
		points = append(points, LabeledPoint{Features: []float64{x, y}, Label: label})
	}
	tree, err := DecisionTree(Parallelize(points, 4), 2, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() < 2 {
		t.Errorf("tree depth = %d, expected actual splits", tree.Depth())
	}
	correct := 0
	for _, p := range points {
		if tree.Predict(p.Features) == p.Label {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(points)); acc < 0.9 {
		t.Errorf("accuracy = %.2f", acc)
	}
}

func TestDecisionTreePureLeaf(t *testing.T) {
	points := []LabeledPoint{
		{Features: []float64{1}, Label: 1},
		{Features: []float64{2}, Label: 1},
	}
	tree, err := DecisionTree(Parallelize(points, 1), 2, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.IsLeaf() || tree.Prediction != 1 {
		t.Errorf("pure data should give a leaf predicting 1; got %+v", tree)
	}
}

func TestSolveLinearSystem(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, ok := SolveLinearSystem(a, b)
	if !ok {
		t.Fatal("singular?")
	}
	// 2x + y = 5; x + 3y = 10 => x = 1, y = 3.
	if len(x) != 2 || abs(x[0]-1) > 1e-9 || abs(x[1]-3) > 1e-9 {
		t.Errorf("solution = %v", x)
	}
	// Singular system.
	if _, ok := SolveLinearSystem([][]float64{{1, 1}, {2, 2}}, []float64{1, 2}); ok {
		t.Error("singular system solved")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestALSReconstructsRatings(t *testing.T) {
	// Generate ratings from a true low-rank model and check ALS recovers
	// low RMSE.
	rng := rand.New(rand.NewSource(5))
	const users, items, rank = 20, 15, 3
	trueU := make([][]float64, users)
	trueI := make([][]float64, items)
	for u := range trueU {
		trueU[u] = randomVector(rng, rank)
	}
	for i := range trueI {
		trueI[i] = randomVector(rng, rank)
	}
	var ratings []Rating
	for u := 0; u < users; u++ {
		for i := 0; i < items; i++ {
			if rng.Float64() < 0.6 {
				dot := 0.0
				for k := 0; k < rank; k++ {
					dot += trueU[u][k] * trueI[i][k]
				}
				ratings = append(ratings, Rating{u, i, dot})
			}
		}
	}
	model, err := ALS(Parallelize(ratings, 4), rank, 12, 0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rmse := model.RMSE(ratings); rmse > 0.1 {
		t.Errorf("RMSE = %.4f, want <= 0.1", rmse)
	}
	if _, err := ALS(Parallelize([]Rating{}, 1), 2, 1, 0.1, 1); err == nil {
		t.Error("empty ALS should error")
	}
}

func TestALSRecommend(t *testing.T) {
	ratings := []Rating{
		{0, 0, 5}, {0, 1, 5}, {1, 0, 5}, {1, 1, 5}, {1, 2, 5}, {2, 2, 1},
	}
	model, err := ALS(Parallelize(ratings, 2), 2, 10, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	recs := model.Recommend(0, map[int]bool{0: true, 1: true}, 5)
	if len(recs) != 1 || recs[0] != 2 {
		t.Errorf("recs = %v, want [2]", recs)
	}
}

func TestPageRank(t *testing.T) {
	// Star graph: everyone links to vertex 0, which links to 1.
	edges := []Pair[int, int]{
		KV(1, 0), KV(2, 0), KV(3, 0), KV(4, 0), KV(0, 1),
	}
	ranks := PageRank(Parallelize(edges, 2), 20, 0.85)
	if len(ranks) != 5 {
		t.Fatalf("ranks = %v", ranks)
	}
	if ranks[0] <= ranks[2] || ranks[0] <= ranks[3] {
		t.Errorf("hub rank %0.3f not dominant: %v", ranks[0], ranks)
	}
	if ranks[1] <= ranks[2] {
		t.Errorf("vertex 1 (linked by hub) should outrank leaves: %v", ranks)
	}
}

func TestPageRankSumConservation(t *testing.T) {
	// On a graph where every vertex has out-links, total rank stays near N.
	var edges []Pair[int, int]
	const n = 10
	for i := 0; i < n; i++ {
		edges = append(edges, KV(i, (i+1)%n), KV(i, (i+3)%n))
	}
	ranks := PageRank(Parallelize(edges, 3), 30, 0.85)
	total := 0.0
	for _, r := range ranks {
		total += r
	}
	if abs(total-float64(n)) > 0.01 {
		t.Errorf("total rank = %.4f, want ~%d", total, n)
	}
}

func TestHashKeyDistribution(t *testing.T) {
	buckets := make([]int, 8)
	for i := 0; i < 8000; i++ {
		buckets[hashKey(i, 8)]++
	}
	for b, n := range buckets {
		if n < 500 || n > 1500 {
			t.Errorf("bucket %d has %d of 8000 keys; poor distribution", b, n)
		}
	}
	// Strings and int64 hash without panic and deterministically.
	if hashKey("hello", 16) != hashKey("hello", 16) {
		t.Error("string hash not deterministic")
	}
	if hashKey(int64(42), 4) != hashKey(int64(42), 4) {
		t.Error("int64 hash not deterministic")
	}
	sort.Ints(buckets)
}
