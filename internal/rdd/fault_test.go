package rdd

import (
	"errors"
	"reflect"
	"testing"

	"renaissance/internal/forkjoin"
)

func TestCollectEPanicSurfacesTaskError(t *testing.T) {
	r := Map(Parallelize(ints(100), 8), func(x int) int {
		if x == 42 {
			panic("element failure")
		}
		return x * 2
	})
	got, err := r.CollectE()
	var te *forkjoin.TaskError
	if !errors.As(err, &te) {
		t.Fatalf("CollectE error = %v, want *forkjoin.TaskError", err)
	}
	if te.Value != "element failure" {
		t.Errorf("TaskError.Value = %v, want element failure", te.Value)
	}
	if got != nil {
		t.Errorf("CollectE returned data %v alongside an error", got)
	}
}

func TestCollectECleanMatchesCollect(t *testing.T) {
	r := Map(Parallelize(ints(50), 4), func(x int) int { return x + 1 })
	got, err := r.CollectE()
	if err != nil {
		t.Fatalf("CollectE: %v", err)
	}
	if !reflect.DeepEqual(got, r.Collect()) {
		t.Error("CollectE and Collect disagree on a clean pipeline")
	}
}

func TestCountEAndReduceESurfaceErrors(t *testing.T) {
	bad := Parallelize(ints(64), 8).Filter(func(x int) bool {
		if x == 7 {
			panic("filter failure")
		}
		return x%2 == 0
	})
	if _, err := bad.CountE(); err == nil {
		t.Error("CountE returned nil error for a panicking pipeline")
	}
	if _, err := bad.ReduceE(func(a, b int) int { return a + b }); err == nil {
		t.Error("ReduceE returned nil error for a panicking pipeline")
	}

	good := Parallelize(ints(64), 8)
	n, err := good.CountE()
	if err != nil || n != 64 {
		t.Errorf("CountE = (%d, %v), want (64, nil)", n, err)
	}
	sum, err := good.ReduceE(func(a, b int) int { return a + b })
	if err != nil || sum != 64*63/2 {
		t.Errorf("ReduceE = (%d, %v), want (%d, nil)", sum, err, 64*63/2)
	}
}

func TestReduceEEmptyDataset(t *testing.T) {
	empty := Parallelize([]int{}, 4)
	if _, err := empty.ReduceE(func(a, b int) int { return a + b }); !errors.Is(err, ErrEmpty) {
		t.Errorf("ReduceE on empty = %v, want ErrEmpty", err)
	}
}

func TestAggregateEFaultAndClean(t *testing.T) {
	r := Parallelize(ints(100), 8)
	sum, err := AggregateE(r,
		func() int { return 0 },
		func(a, x int) int { return a + x },
		func(a, b int) int { return a + b })
	if err != nil || sum != 4950 {
		t.Errorf("AggregateE = (%d, %v), want (4950, nil)", sum, err)
	}

	bad := Map(r, func(x int) int {
		if x == 99 {
			panic("agg failure")
		}
		return x
	})
	if _, err := AggregateE(bad,
		func() int { return 0 },
		func(a, x int) int { return a + x },
		func(a, b int) int { return a + b }); err == nil {
		t.Error("AggregateE returned nil error for a panicking pipeline")
	}
}

func TestLegacyCollectStillPanicsOnFault(t *testing.T) {
	// The legacy action keeps the fork/join re-panic contract so existing
	// callers see failures exactly as before.
	defer func() {
		if _, ok := recover().(*forkjoin.TaskError); !ok {
			t.Fatal("Collect did not re-panic a *forkjoin.TaskError")
		}
	}()
	Map(Parallelize(ints(32), 4), func(x int) int {
		if x == 10 {
			panic("legacy rdd")
		}
		return x
	}).Collect()
	t.Fatal("Collect returned normally")
}

func TestCollectEAfterFaultPipelineReusable(t *testing.T) {
	// A failed action must not poison the shared executor: the same (narrow)
	// pipeline evaluated again without the fault succeeds.
	var arm = true
	r := Map(Parallelize(ints(40), 8), func(x int) int {
		if arm && x == 0 {
			panic("one-shot")
		}
		return x
	})
	if _, err := r.CollectE(); err == nil {
		t.Fatal("armed pipeline did not fail")
	}
	arm = false
	got, err := r.CollectE()
	if err != nil || len(got) != 40 {
		t.Fatalf("re-evaluation = (%d elems, %v), want (40, nil)", len(got), err)
	}
}
