package rdd

import (
	"math/rand"
	"testing"
)

// Steady-state allocation guards for the hot ML iterations. The flat
// kernels' working set (factor matrices, rank accumulators, scratch) is
// allocated once per training run and pooled, so a steady-state
// iteration's only allocations are the fixed fork–join overhead of its
// parallel-for calls (measured: 12 per iteration — parJob, done channel,
// helper tasks). The bound below leaves headroom for executors with more
// workers while still catching any per-row or per-edge allocation
// sneaking back in (the seed kernels allocated per rating map entry and
// per edge contribution pair — thousands per iteration at these sizes).
const mlIterAllocBound = 48

// TestALSIterationAllocs pins the allocations of one full alternating
// iteration (both solveFactors passes) over a pre-built graph.
func TestALSIterationAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	rng := rand.New(rand.NewSource(17))
	g := NewRatingsGraph(syntheticRatings(rng, 60, 40, 4))
	model, err := ALSTrain(g, 4, 1, 0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		solveFactors(g.byUser, model.Users, model.Items, 0.01)
		solveFactors(g.byItem, model.Items, model.Users, 0.01)
	})
	if allocs > mlIterAllocBound {
		t.Fatalf("ALS iteration allocated %.1f objects, want <= %d", allocs, mlIterAllocBound)
	}
}

// TestPageRankIterationAllocs pins the allocations of one rank
// propagation step over a pre-built CSR graph and reused prState.
func TestPageRankIterationAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	rng := rand.New(rand.NewSource(19))
	const n = 600
	var edges []Pair[int, int]
	for v := 0; v < n; v++ {
		edges = append(edges, KV(v, (v+1)%n))
		for k := 0; k < 3; k++ {
			edges = append(edges, KV(v, rng.Intn(v/4+1)))
		}
	}
	st := NewGraph(edges).newPRState(0.85)
	st.step() // warm
	allocs := testing.AllocsPerRun(20, func() { st.step() })
	if allocs > mlIterAllocBound {
		t.Fatalf("PageRank step allocated %.1f objects, want <= %d", allocs, mlIterAllocBound)
	}
}
