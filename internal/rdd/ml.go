package rdd

import (
	"errors"
	"math"

	"renaissance/internal/forkjoin"
	"renaissance/internal/metrics"
)

// This file implements the machine-learning kernels that Spark MLlib
// provides to the paper's benchmarks: logistic regression, multinomial
// naive Bayes, chi-square testing, decision trees, alternating least
// squares, and PageRank. Each kernel is expressed with the RDD operations
// above, so the data-parallel execution (partition tasks, shuffles,
// tree-aggregation) matches the benchmarks' concurrency profile.

// LabeledPoint is a feature vector with a class label.
type LabeledPoint struct {
	Features []float64
	Label    int
}

// ErrBadInput is returned when a kernel receives inconsistent data.
var ErrBadInput = errors.New("rdd: inconsistent training data")

// sigmoid is the logistic link function.
func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// LogisticRegression fits binary logistic regression (labels 0/1) with
// batch gradient descent, computing each gradient with a parallel
// tree-aggregate over the points — the log-regression benchmark kernel.
func LogisticRegression(points *RDD[LabeledPoint], iterations int, learningRate float64) ([]float64, error) {
	first := points.Collect()
	if len(first) == 0 {
		return nil, ErrEmpty
	}
	dim := len(first[0].Features)
	points.Cache()

	weights := make([]float64, dim)
	n := float64(len(first))
	for it := 0; it < iterations; it++ {
		w := weights
		grad := Aggregate(points,
			func() []float64 { metrics.IncArray(); return make([]float64, dim) },
			func(acc []float64, p LabeledPoint) []float64 {
				if len(p.Features) != dim {
					return acc
				}
				z := 0.0
				for j, x := range p.Features {
					z += w[j] * x
				}
				err := sigmoid(z) - float64(p.Label)
				for j, x := range p.Features {
					acc[j] += err * x
				}
				return acc
			},
			func(a, b []float64) []float64 {
				for j := range a {
					a[j] += b[j]
				}
				return a
			})
		for j := range weights {
			weights[j] -= learningRate * grad[j] / n
		}
	}
	return weights, nil
}

// PredictLogistic returns the probability of class 1 for the features.
func PredictLogistic(weights, features []float64) float64 {
	z := 0.0
	for j, x := range features {
		z += weights[j] * x
	}
	return sigmoid(z)
}

// NaiveBayesModel is a fitted multinomial naive Bayes classifier.
type NaiveBayesModel struct {
	ClassLogPrior []float64   // log P(class)
	FeatureLogPr  [][]float64 // [class][feature] log P(feature|class)
}

// NaiveBayes fits a multinomial model with Laplace smoothing over
// non-negative feature counts — the naive-bayes benchmark kernel.
func NaiveBayes(points *RDD[LabeledPoint], numClasses, numFeatures int) (*NaiveBayesModel, error) {
	type acc struct {
		classCounts   []float64
		featureTotals [][]float64
	}
	zero := func() *acc {
		metrics.IncObject()
		a := &acc{
			classCounts:   make([]float64, numClasses),
			featureTotals: make([][]float64, numClasses),
		}
		for c := range a.featureTotals {
			a.featureTotals[c] = make([]float64, numFeatures)
		}
		return a
	}
	res := Aggregate(points, zero,
		func(a *acc, p LabeledPoint) *acc {
			if p.Label < 0 || p.Label >= numClasses || len(p.Features) != numFeatures {
				return a
			}
			a.classCounts[p.Label]++
			for j, x := range p.Features {
				a.featureTotals[p.Label][j] += x
			}
			return a
		},
		func(a, b *acc) *acc {
			for c := range a.classCounts {
				a.classCounts[c] += b.classCounts[c]
				for j := range a.featureTotals[c] {
					a.featureTotals[c][j] += b.featureTotals[c][j]
				}
			}
			return a
		})

	total := 0.0
	for _, c := range res.classCounts {
		total += c
	}
	if total == 0 {
		return nil, ErrEmpty
	}
	m := &NaiveBayesModel{
		ClassLogPrior: make([]float64, numClasses),
		FeatureLogPr:  make([][]float64, numClasses),
	}
	for c := 0; c < numClasses; c++ {
		m.ClassLogPrior[c] = math.Log((res.classCounts[c] + 1) / (total + float64(numClasses)))
		m.FeatureLogPr[c] = make([]float64, numFeatures)
		rowSum := 0.0
		for _, v := range res.featureTotals[c] {
			rowSum += v
		}
		for j, v := range res.featureTotals[c] {
			m.FeatureLogPr[c][j] = math.Log((v + 1) / (rowSum + float64(numFeatures)))
		}
	}
	return m, nil
}

// Predict returns the most likely class for the feature counts.
func (m *NaiveBayesModel) Predict(features []float64) int {
	best, bestScore := 0, math.Inf(-1)
	for c := range m.ClassLogPrior {
		score := m.ClassLogPrior[c]
		for j, x := range features {
			score += x * m.FeatureLogPr[c][j]
		}
		if score > bestScore {
			best, bestScore = c, score
		}
	}
	return best
}

// ChiSquare computes the chi-square independence statistic of every
// feature against the label over discretized features (values are bucketed
// by floor) — the chi-square benchmark kernel. It returns one statistic
// per feature.
func ChiSquare(points *RDD[LabeledPoint], numClasses, numFeatures, numBuckets int) []float64 {
	// Contingency tables: [feature][bucket][class] counts.
	type tables [][][]float64
	zero := func() tables {
		metrics.IncObject()
		t := make(tables, numFeatures)
		for f := range t {
			t[f] = make([][]float64, numBuckets)
			for b := range t[f] {
				t[f][b] = make([]float64, numClasses)
			}
		}
		return t
	}
	res := Aggregate(points, zero,
		func(t tables, p LabeledPoint) tables {
			if p.Label < 0 || p.Label >= numClasses {
				return t
			}
			for f := 0; f < numFeatures && f < len(p.Features); f++ {
				b := int(p.Features[f])
				if b < 0 {
					b = 0
				}
				if b >= numBuckets {
					b = numBuckets - 1
				}
				t[f][b][p.Label]++
			}
			return t
		},
		func(a, b tables) tables {
			for f := range a {
				for bk := range a[f] {
					for c := range a[f][bk] {
						a[f][bk][c] += b[f][bk][c]
					}
				}
			}
			return a
		})

	stats := make([]float64, numFeatures)
	for f := 0; f < numFeatures; f++ {
		rowTotals := make([]float64, numBuckets)
		colTotals := make([]float64, numClasses)
		grand := 0.0
		for b := 0; b < numBuckets; b++ {
			for c := 0; c < numClasses; c++ {
				v := res[f][b][c]
				rowTotals[b] += v
				colTotals[c] += v
				grand += v
			}
		}
		if grand == 0 {
			continue
		}
		chi := 0.0
		for b := 0; b < numBuckets; b++ {
			for c := 0; c < numClasses; c++ {
				expected := rowTotals[b] * colTotals[c] / grand
				if expected > 0 {
					d := res[f][b][c] - expected
					chi += d * d / expected
				}
			}
		}
		stats[f] = chi
	}
	return stats
}

// TreeNode is a node of a fitted classification decision tree.
type TreeNode struct {
	Feature     int
	Threshold   float64
	Left, Right *TreeNode
	Prediction  int // leaf prediction when Left == nil
}

// IsLeaf reports whether the node is a leaf.
func (n *TreeNode) IsLeaf() bool { return n.Left == nil }

// Predict classifies features by walking the tree.
func (n *TreeNode) Predict(features []float64) int {
	for !n.IsLeaf() {
		if features[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Prediction
}

// Depth returns the tree height (a single leaf has depth 1).
func (n *TreeNode) Depth() int {
	if n.IsLeaf() {
		return 1
	}
	l, r := n.Left.Depth(), n.Right.Depth()
	if l > r {
		return l + 1
	}
	return r + 1
}

// DecisionTree fits a CART-style classification tree: at every node the
// Gini-best (feature, threshold) split is selected from per-feature
// histograms computed with a parallel aggregate over the node's points —
// the dec-tree benchmark kernel.
func DecisionTree(points *RDD[LabeledPoint], numClasses, maxDepth, minLeaf int) (*TreeNode, error) {
	data := points.Collect()
	if len(data) == 0 {
		return nil, ErrEmpty
	}
	if minLeaf < 1 {
		minLeaf = 1
	}
	return growTree(data, numClasses, maxDepth, minLeaf), nil
}

const treeHistogramBins = 16

func growTree(data []LabeledPoint, numClasses, depth, minLeaf int) *TreeNode {
	counts := make([]int, numClasses)
	for _, p := range data {
		if p.Label >= 0 && p.Label < numClasses {
			counts[p.Label]++
		}
	}
	majority, best := 0, -1
	pure := true
	for c, n := range counts {
		if n > best {
			majority, best = c, n
		}
		if n != 0 && n != len(data) {
			pure = false
		}
	}
	if depth <= 1 || pure || len(data) < 2*minLeaf {
		metrics.IncObject()
		return &TreeNode{Prediction: majority}
	}

	numFeatures := len(data[0].Features)
	bestGini := math.Inf(1)
	bestFeature, bestThreshold := -1, 0.0

	// Histogram split search per feature, computed in parallel over
	// feature chunks (the data-parallel inner loop of MLlib's tree
	// trainer).
	type split struct {
		gini      float64
		feature   int
		threshold float64
	}
	featureIdx := make([]int, numFeatures)
	for i := range featureIdx {
		featureIdx[i] = i
	}
	results := parMapSlice(featureIdx, func(f int) split {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, p := range data {
			v := p.Features[f]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi <= lo {
			return split{gini: math.Inf(1)}
		}
		// Class histogram per bin.
		var hist [treeHistogramBins][]int
		for b := range hist {
			hist[b] = make([]int, numClasses)
		}
		binWidth := (hi - lo) / treeHistogramBins
		for _, p := range data {
			b := int((p.Features[f] - lo) / binWidth)
			if b >= treeHistogramBins {
				b = treeHistogramBins - 1
			}
			hist[b][p.Label]++
		}
		bestLocal := split{gini: math.Inf(1)}
		leftCounts := make([]int, numClasses)
		leftN := 0
		total := len(data)
		for b := 0; b < treeHistogramBins-1; b++ {
			for c, n := range hist[b] {
				leftCounts[c] += n
				leftN += n
			}
			rightN := total - leftN
			if leftN == 0 || rightN == 0 {
				continue
			}
			gl, gr := 1.0, 1.0
			for c := 0; c < numClasses; c++ {
				pl := float64(leftCounts[c]) / float64(leftN)
				pr := float64(counts[c]-leftCounts[c]) / float64(rightN)
				gl -= pl * pl
				gr -= pr * pr
			}
			weighted := (float64(leftN)*gl + float64(rightN)*gr) / float64(total)
			if weighted < bestLocal.gini {
				bestLocal = split{weighted, f, lo + binWidth*float64(b+1)}
			}
		}
		return bestLocal
	})
	for _, s := range results {
		if s.gini < bestGini {
			bestGini, bestFeature, bestThreshold = s.gini, s.feature, s.threshold
		}
	}
	if bestFeature < 0 {
		metrics.IncObject()
		return &TreeNode{Prediction: majority}
	}

	metrics.IncArray()
	var left, right []LabeledPoint
	for _, p := range data {
		if p.Features[bestFeature] <= bestThreshold {
			left = append(left, p)
		} else {
			right = append(right, p)
		}
	}
	if len(left) < minLeaf || len(right) < minLeaf {
		metrics.IncObject()
		return &TreeNode{Prediction: majority}
	}
	metrics.IncObject()
	return &TreeNode{
		Feature:   bestFeature,
		Threshold: bestThreshold,
		Left:      growTree(left, numClasses, depth-1, minLeaf),
		Right:     growTree(right, numClasses, depth-1, minLeaf),
	}
}

// parMapSlice evaluates fn over xs on the shared work-stealing executor,
// one chunk per element (element counts here are small and elements
// coarse: features, users).
func parMapSlice[T any, U any](xs []T, fn func(T) U) []U {
	out := make([]U, len(xs))
	forkjoin.For(len(xs), 1, func(lo, hi int) {
		loc := metrics.Acquire()
		for i := lo; i < hi; i++ {
			loc.IncIDynamic()
			out[i] = fn(xs[i])
		}
	})
	return out
}
