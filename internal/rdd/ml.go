package rdd

import (
	"errors"
	"fmt"
	"math"

	"renaissance/internal/forkjoin"
	"renaissance/internal/lin"
	"renaissance/internal/metrics"
)

// This file implements the machine-learning kernels that Spark MLlib
// provides to the paper's benchmarks: logistic regression, multinomial
// naive Bayes, chi-square testing, decision trees (alternating least
// squares and PageRank live in als.go and graph.go). Each kernel packs
// its input into the flat row-major layout of internal/lin once per call
// and then runs chunked parallel-for passes on the shared work-stealing
// executor, accumulating into flat per-chunk tables that merge in fixed
// chunk order — so results are deterministic at any GOMAXPROCS. Chunk
// boundaries mirror the input RDD's partition boundaries, preserving the
// seed kernels' partition-ordered aggregation semantics.

// LabeledPoint is a feature vector with a class label.
type LabeledPoint struct {
	Features []float64
	Label    int
}

// ErrBadInput is returned when a kernel receives inconsistent data.
var ErrBadInput = errors.New("rdd: inconsistent training data")

// sigmoid is the logistic link function.
func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// packPoints collects the dataset into one flat row-major feature matrix
// plus a label vector — the layout every kernel pass streams over. A
// dimension-mismatched point is an error: the seed kernels silently
// dropped such points inside the aggregator, skewing whatever statistic
// was being accumulated.
func packPoints(points *RDD[LabeledPoint]) (*lin.Mat, []int32, error) {
	data := points.Collect()
	if len(data) == 0 {
		return nil, nil, ErrEmpty
	}
	dim := len(data[0].Features)
	loc := metrics.Acquire()
	loc.AddArray(2)
	x := lin.NewMat(len(data), dim)
	labels := make([]int32, len(data))
	for i, p := range data {
		if len(p.Features) != dim {
			return nil, nil, fmt.Errorf("%w: point %d has %d features, want %d",
				ErrBadInput, i, len(p.Features), dim)
		}
		copy(x.Row(i), p.Features)
		labels[i] = int32(p.Label)
	}
	return x, labels, nil
}

// mlChunks mirrors the input's partition count so per-chunk accumulators
// merge in the same grouping and order the seed's per-partition
// Aggregate used.
func mlChunks(points *RDD[LabeledPoint], n int) int {
	parts := points.NumPartitions()
	if parts > n {
		parts = n
	}
	if parts < 1 {
		parts = 1
	}
	return parts
}

// LogisticRegression fits binary logistic regression (labels 0/1) with
// batch gradient descent — the log-regression benchmark kernel. The
// points are packed once into a flat feature matrix; each gradient pass
// is a chunked parallel-for where chunk c folds rows
// [c·n/parts, (c+1)·n/parts) into its own flat gradient row (one
// unrolled Dot and one Axpy per point), and the per-chunk gradients
// merge in chunk order. It returns ErrBadInput for dimension-mismatched
// points, which the seed silently dropped from the gradient.
func LogisticRegression(points *RDD[LabeledPoint], iterations int, learningRate float64) ([]float64, error) {
	x, labels, err := packPoints(points)
	if err != nil {
		return nil, err
	}
	n, dim := x.Rows, x.Cols
	parts := mlChunks(points, n)
	metrics.Acquire().AddArray(2)
	// One gradient accumulator per chunk, rows padded onto disjoint
	// cache lines (a bare dim-wide row is ~one line, so neighboring
	// chunks would false-share on every point).
	grads := lin.NewMat(parts, lin.PadStride(dim))
	weights := make([]float64, dim)
	for it := 0; it < iterations; it++ {
		w := weights
		// forPartsRetry, not For: a failed chunk re-clears its private
		// gradient row and recomputes, so a transient fault costs one
		// chunk replay instead of the whole pass.
		if err := forPartsRetry(parts, func(_ *taskCtx, c int) {
			loc := metrics.Acquire()
			g := grads.Row(c)[:dim]
			clear(g)
			rlo, rhi := c*n/parts, (c+1)*n/parts
			loc.AddIDynamic(int64(rhi - rlo))
			for i := rlo; i < rhi; i++ {
				row := x.Row(i)
				e := sigmoid(lin.Dot(w, row)) - float64(labels[i])
				lin.Axpy(e, row, g)
			}
		}); err != nil {
			return nil, err
		}
		// Merge in fixed chunk order, then descend.
		g := grads.Row(0)[:dim]
		for c := 1; c < parts; c++ {
			lin.Axpy(1, grads.Row(c)[:dim], g)
		}
		lin.Axpy(-learningRate/float64(n), g, weights)
	}
	return weights, nil
}

// PredictLogistic returns the probability of class 1 for the features.
func PredictLogistic(weights, features []float64) float64 {
	return sigmoid(lin.Dot(weights, features))
}

// NaiveBayesModel is a fitted multinomial naive Bayes classifier.
type NaiveBayesModel struct {
	ClassLogPrior []float64   // log P(class)
	FeatureLogPr  [][]float64 // [class][feature] log P(feature|class)
}

// NaiveBayes fits a multinomial model with Laplace smoothing over
// non-negative feature counts — the naive-bayes benchmark kernel. Each
// partition streams through the fused pipeline (no materialized copy)
// into one flat table of numClasses×(numFeatures+1) floats (class count
// in column 0, feature totals after), replacing the seed's per-partition
// struct of nested slices; tables merge in partition order. Points with
// an out-of-range label or feature count are skipped, as in the seed.
func NaiveBayes(points *RDD[LabeledPoint], numClasses, numFeatures int) (*NaiveBayesModel, error) {
	parts := points.NumPartitions()
	stride := numFeatures + 1
	width := numClasses * stride
	metrics.Acquire().IncArray()
	// Per-partition count tables, rows padded onto disjoint cache lines.
	tab := lin.NewMat(parts, lin.PadStride(width))
	// Each attempt clears its private table row first, so a recompute
	// after a mid-stream fault never double-counts.
	if err := forPartsRetry(parts, func(ctx *taskCtx, c int) {
		loc := metrics.Acquire()
		acc := tab.Row(c)[:width]
		clear(acc)
		points.run(c, guardSink(ctx, func(p LabeledPoint) bool {
			loc.IncIDynamic()
			if p.Label < 0 || p.Label >= numClasses || len(p.Features) != numFeatures {
				return true
			}
			row := acc[p.Label*stride : (p.Label+1)*stride]
			row[0]++
			lin.Axpy(1, p.Features, row[1:])
			return true
		}))
	}); err != nil {
		return nil, err
	}
	res := tab.Row(0)[:width]
	for c := 1; c < parts; c++ {
		lin.Axpy(1, tab.Row(c)[:width], res)
	}

	total := 0.0
	for class := 0; class < numClasses; class++ {
		total += res[class*stride]
	}
	if total == 0 {
		return nil, ErrEmpty
	}
	m := &NaiveBayesModel{
		ClassLogPrior: make([]float64, numClasses),
		FeatureLogPr:  make([][]float64, numClasses),
	}
	for c := 0; c < numClasses; c++ {
		row := res[c*stride : (c+1)*stride]
		m.ClassLogPrior[c] = math.Log((row[0] + 1) / (total + float64(numClasses)))
		m.FeatureLogPr[c] = make([]float64, numFeatures)
		rowSum := 0.0
		for _, v := range row[1:] {
			rowSum += v
		}
		for j, v := range row[1:] {
			m.FeatureLogPr[c][j] = math.Log((v + 1) / (rowSum + float64(numFeatures)))
		}
	}
	return m, nil
}

// Predict returns the most likely class for the feature counts.
func (m *NaiveBayesModel) Predict(features []float64) int {
	best, bestScore := 0, math.Inf(-1)
	for c := range m.ClassLogPrior {
		score := m.ClassLogPrior[c] + lin.Dot(features, m.FeatureLogPr[c])
		if score > bestScore {
			best, bestScore = c, score
		}
	}
	return best
}

// ChiSquare computes the chi-square independence statistic of every
// feature against the label over discretized features (values are bucketed
// by floor) — the chi-square benchmark kernel. It returns one statistic
// per feature. Each partition streams through the fused pipeline into
// one flat [feature][bucket][class] contingency array (the seed
// allocated a three-level nested slice per partition), merged in
// partition order.
func ChiSquare(points *RDD[LabeledPoint], numClasses, numFeatures, numBuckets int) []float64 {
	parts := points.NumPartitions()
	stride := numBuckets * numClasses // one feature's table
	width := numFeatures * stride
	metrics.Acquire().IncArray()
	// Per-partition tables, rows padded onto disjoint cache lines.
	tab := lin.NewMat(parts, lin.PadStride(width))
	// Attempts clear their private table row first — recompute-safe, like
	// NaiveBayes. A persistent failure re-panics (legacy action contract).
	if err := forPartsRetry(parts, func(ctx *taskCtx, c int) {
		loc := metrics.Acquire()
		acc := tab.Row(c)[:width]
		clear(acc)
		points.run(c, guardSink(ctx, func(p LabeledPoint) bool {
			loc.IncIDynamic()
			if p.Label < 0 || p.Label >= numClasses {
				return true
			}
			for f := 0; f < numFeatures && f < len(p.Features); f++ {
				b := int(p.Features[f])
				if b < 0 {
					b = 0
				}
				if b >= numBuckets {
					b = numBuckets - 1
				}
				acc[f*stride+b*numClasses+p.Label]++
			}
			return true
		}))
	}); err != nil {
		panic(err)
	}
	res := tab.Row(0)[:width]
	for c := 1; c < parts; c++ {
		lin.Axpy(1, tab.Row(c)[:width], res)
	}

	stats := make([]float64, numFeatures)
	rowTotals := make([]float64, numBuckets)
	colTotals := make([]float64, numClasses)
	for f := 0; f < numFeatures; f++ {
		ft := res[f*stride : (f+1)*stride]
		clear(rowTotals)
		clear(colTotals)
		grand := 0.0
		for b := 0; b < numBuckets; b++ {
			for c := 0; c < numClasses; c++ {
				v := ft[b*numClasses+c]
				rowTotals[b] += v
				colTotals[c] += v
				grand += v
			}
		}
		if grand == 0 {
			continue
		}
		chi := 0.0
		for b := 0; b < numBuckets; b++ {
			for c := 0; c < numClasses; c++ {
				expected := rowTotals[b] * colTotals[c] / grand
				if expected > 0 {
					d := ft[b*numClasses+c] - expected
					chi += d * d / expected
				}
			}
		}
		stats[f] = chi
	}
	return stats
}

// TreeNode is a node of a fitted classification decision tree.
type TreeNode struct {
	Feature     int
	Threshold   float64
	Left, Right *TreeNode
	Prediction  int // leaf prediction when Left == nil
}

// IsLeaf reports whether the node is a leaf.
func (n *TreeNode) IsLeaf() bool { return n.Left == nil }

// Predict classifies features by walking the tree.
func (n *TreeNode) Predict(features []float64) int {
	for !n.IsLeaf() {
		if features[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Prediction
}

// Depth returns the tree height (a single leaf has depth 1).
func (n *TreeNode) Depth() int {
	if n.IsLeaf() {
		return 1
	}
	l, r := n.Left.Depth(), n.Right.Depth()
	if l > r {
		return l + 1
	}
	return r + 1
}

// DecisionTree fits a CART-style classification tree: at every node the
// Gini-best (feature, threshold) split is selected from per-feature
// histograms computed in parallel over the features — the dec-tree
// benchmark kernel. The points are packed once into a flat row-major
// feature matrix; tree nodes then work on index subsets, so a split
// partitions two int32 index slices instead of copying LabeledPoint
// structs, and every histogram fill walks one flat column-strided array.
func DecisionTree(points *RDD[LabeledPoint], numClasses, maxDepth, minLeaf int) (*TreeNode, error) {
	x, labels, err := packPoints(points)
	if err != nil {
		return nil, err
	}
	if minLeaf < 1 {
		minLeaf = 1
	}
	metrics.IncArray()
	idx := make([]int32, x.Rows)
	for i := range idx {
		idx[i] = int32(i)
	}
	t := &treeBuilder{x: x, labels: labels, numClasses: numClasses, minLeaf: minLeaf}
	return t.grow(idx, maxDepth), nil
}

const treeHistogramBins = 16

// treeBuilder carries the flat training set through the recursion.
type treeBuilder struct {
	x          *lin.Mat
	labels     []int32
	numClasses int
	minLeaf    int
}

// split is one feature's best histogram split.
type split struct {
	gini      float64
	feature   int
	threshold float64
}

func (t *treeBuilder) grow(idx []int32, depth int) *TreeNode {
	counts := make([]int, t.numClasses)
	for _, i := range idx {
		if l := int(t.labels[i]); l >= 0 && l < t.numClasses {
			counts[l]++
		}
	}
	majority, best := 0, -1
	pure := true
	for c, n := range counts {
		if n > best {
			majority, best = c, n
		}
		if n != 0 && n != len(idx) {
			pure = false
		}
	}
	if depth <= 1 || pure || len(idx) < 2*t.minLeaf {
		metrics.IncObject()
		return &TreeNode{Prediction: majority}
	}

	numFeatures := t.x.Cols
	// Histogram split search, parallel per feature on the shared
	// work-stealing executor (the data-parallel inner loop of MLlib's
	// tree trainer). Results land in a fixed per-feature slot, so the
	// arg-min below is deterministic.
	metrics.IncArray()
	results := make([]split, numFeatures)
	forkjoin.For(numFeatures, 1, func(flo, fhi int) {
		loc := metrics.Acquire()
		for f := flo; f < fhi; f++ {
			loc.IncIDynamic()
			results[f] = t.bestSplit(idx, f, counts)
		}
	})
	bestGini := math.Inf(1)
	bestFeature, bestThreshold := -1, 0.0
	for _, s := range results {
		if s.gini < bestGini {
			bestGini, bestFeature, bestThreshold = s.gini, s.feature, s.threshold
		}
	}
	if bestFeature < 0 {
		metrics.IncObject()
		return &TreeNode{Prediction: majority}
	}

	metrics.IncArray()
	left := make([]int32, 0, len(idx))
	right := make([]int32, 0, len(idx))
	for _, i := range idx {
		if t.x.At(int(i), bestFeature) <= bestThreshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.minLeaf || len(right) < t.minLeaf {
		metrics.IncObject()
		return &TreeNode{Prediction: majority}
	}
	metrics.IncObject()
	return &TreeNode{
		Feature:   bestFeature,
		Threshold: bestThreshold,
		Left:      t.grow(left, depth-1),
		Right:     t.grow(right, depth-1),
	}
}

// bestSplit scans feature f over the node's points: one pass for the
// range, one histogram fill into a flat [bin][class] table, then the
// Gini sweep over bin boundaries — the same arithmetic as the seed, over
// flat storage.
func (t *treeBuilder) bestSplit(idx []int32, f int, counts []int) split {
	nc := t.numClasses
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, i := range idx {
		v := t.x.At(int(i), f)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi <= lo {
		return split{gini: math.Inf(1)}
	}
	var hist [treeHistogramBins * 8]int32 // flat [bin][class], stack-backed for nc <= 8
	h := hist[:]
	if nc > 8 {
		h = make([]int32, treeHistogramBins*nc)
	} else {
		h = h[:treeHistogramBins*nc]
		clear(h)
	}
	binWidth := (hi - lo) / treeHistogramBins
	for _, i := range idx {
		b := int((t.x.At(int(i), f) - lo) / binWidth)
		if b >= treeHistogramBins {
			b = treeHistogramBins - 1
		}
		h[b*nc+int(t.labels[i])]++
	}
	bestLocal := split{gini: math.Inf(1)}
	var leftCounts [8]int
	lc := leftCounts[:]
	if nc > 8 {
		lc = make([]int, nc)
	} else {
		lc = lc[:nc]
		clear(lc)
	}
	leftN := 0
	total := len(idx)
	for b := 0; b < treeHistogramBins-1; b++ {
		for c := 0; c < nc; c++ {
			lc[c] += int(h[b*nc+c])
			leftN += int(h[b*nc+c])
		}
		rightN := total - leftN
		if leftN == 0 || rightN == 0 {
			continue
		}
		gl, gr := 1.0, 1.0
		for c := 0; c < nc; c++ {
			pl := float64(lc[c]) / float64(leftN)
			pr := float64(counts[c]-lc[c]) / float64(rightN)
			gl -= pl * pl
			gr -= pr * pr
		}
		weighted := (float64(leftN)*gl + float64(rightN)*gr) / float64(total)
		if weighted < bestLocal.gini {
			bestLocal = split{weighted, f, lo + binWidth*float64(b+1)}
		}
	}
	return bestLocal
}

// parMapSlice evaluates fn over xs on the shared work-stealing executor,
// one chunk per element (element counts here are small and elements
// coarse: features, users). The live kernels now use forkjoin.For
// directly over flat storage; this helper remains for the seed-kernel
// baselines kept verbatim in the differential tests.
func parMapSlice[T any, U any](xs []T, fn func(T) U) []U {
	out := make([]U, len(xs))
	forkjoin.For(len(xs), 1, func(lo, hi int) {
		loc := metrics.Acquire()
		for i := lo; i < hi; i++ {
			loc.IncIDynamic()
			out[i] = fn(xs[i])
		}
	})
	return out
}
