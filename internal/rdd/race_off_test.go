//go:build !race

package rdd

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
