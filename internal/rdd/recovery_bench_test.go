package rdd

import (
	"sync"
	"testing"

	"renaissance/internal/forkjoin"
	"renaissance/internal/metrics"
)

// Fault-free overhead of the lineage recovery engine (DESIGN.md §14,
// EXPERIMENTS.md "Recovery overhead"): each pair runs the same workload
// through the recovery-backed engine path and through an in-package
// replica of the pre-recovery path (plain forkjoin parallel-for actions,
// sync.Once-guarded shuffle), so the delta is exactly what lineage
// tracking, per-partition retry accounting, and the quiescence handshake
// cost when nothing fails. Run via `make bench` at -cpu 1,2,4,8; output
// lands in BENCH_rdd.txt.

// legacyCollect is the pre-recovery Collect: partitions evaluated by the
// chunked parallel-for, a failure re-panicked at the join, no retry
// bookkeeping.
func legacyCollect[T any](r *RDD[T]) []T {
	metrics.IncArray()
	parts := make([][]T, r.numPartitions)
	forkjoin.For(r.numPartitions, 1, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			parts[p] = r.partition(p)
		}
	})
	total := 0
	for _, pt := range parts {
		total += len(pt)
	}
	metrics.IncArray()
	out := make([]T, 0, total)
	for _, pt := range parts {
		out = append(out, pt...)
	}
	return out
}

// legacyShuffle is the pre-recovery two-phase exchange: both phases on the
// plain parallel-for, no per-partition retry, no staging discard path.
// (Callers guarded it with a sync.Once; the Once itself is free, so it is
// not replicated per iteration here.)
func legacyShuffle[K comparable, V any](r *RDD[Pair[K, V]], numPartitions int) [][]Pair[K, V] {
	producers := r.numPartitions
	pool := stagingPoolFor[K, V]()
	metrics.IncArray()
	staging := make([]*stagingRow[K, V], producers)
	forkjoin.For(producers, 1, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			metrics.IncMethod()
			row := getStagingRow[K, V](pool, numPartitions, r.sizeHint(p))
			r.run(p, func(kv Pair[K, V]) bool {
				b := hashKey(kv.Key, numPartitions)
				row.buckets[b] = append(row.buckets[b], kv)
				return true
			})
			staging[p] = row
		}
	})
	metrics.IncArray()
	buckets := make([][]Pair[K, V], numPartitions)
	forkjoin.For(numPartitions, 1, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			loc := metrics.Acquire()
			total := 0
			for _, row := range staging {
				total += len(row.buckets[b])
			}
			loc.IncArray()
			out := make([]Pair[K, V], 0, total)
			for _, row := range staging {
				out = append(out, row.buckets[b]...)
			}
			buckets[b] = out
		}
	})
	for _, row := range staging {
		putStagingRow(pool, row)
	}
	return buckets
}

func BenchmarkRecoveryOverheadCollect(b *testing.B) {
	data := ints(pipelineElems)
	r := Map(Map(Parallelize(data, pipelineParts), benchMul).Filter(benchOdd), benchDec)

	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pipelineSink = len(legacyCollect(r))
		}
	})
	b.Run("recovery", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pipelineSink = len(r.Collect())
		}
	})
}

func BenchmarkRecoveryOverheadShuffle(b *testing.B) {
	pairs := make([]Pair[int, int], shuffleElems)
	for i := range pairs {
		pairs[i] = KV(i%shuffleKeys, i)
	}
	r := Parallelize(pairs, shuffleParts)

	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var once sync.Once
			var buckets [][]Pair[int, int]
			once.Do(func() { buckets = legacyShuffle(r, shuffleBuckets) })
			pipelineSink = len(buckets[0])
		}
	})
	b.Run("recovery", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buckets := shuffle(r, shuffleBuckets)
			pipelineSink = len(buckets[0])
		}
	})
}

func BenchmarkRecoveryOverheadALS(b *testing.B) {
	ratings := benchRatings()
	r := Parallelize(ratings, 8)

	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			all := legacyCollect(r)
			if _, err := ALSTrain(NewRatingsGraph(all), 4, 8, 0.01, 7); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recovery", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ALS(r, 4, 8, 0.01, 7); err != nil {
				b.Fatal(err)
			}
		}
	})
}
