// Adversarial tests for the lineage recovery engine: injected-fault
// recompute, retry-budget exhaustion, recovery racing concurrent actions
// on a shared cache, shuffle epoch retries, speculative-duplicate
// suppression, and checkpoint lineage truncation. Names match the stress
// regex in the Makefile so `make stress` shakes them under -race.
package rdd

import (
	"errors"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"renaissance/internal/chaos"
	"renaissance/internal/forkjoin"
)

// chaosQuiet configures the chaos engine with only the named points armed
// (global rate 0) and restores a dormant engine and the default retry
// budget when the test ends.
func chaosQuiet(t *testing.T, seed int64, rates map[string]float64) {
	t.Helper()
	chaos.Configure(seed, 0)
	for name, r := range rates {
		chaos.SetRate(name, r)
	}
	t.Cleanup(func() {
		chaos.Configure(seed, 0)
		chaos.Disable()
		SetTaskRetries(-1)
	})
}

func TestRecomputeRecoversInjectedTaskFaults(t *testing.T) {
	// Every first attempt fails (rdd.task at rate 1); every recompute
	// succeeds (rdd.recompute dormant). The action must still deliver the
	// exact fault-free result, with one recompute per partition.
	chaosQuiet(t, 11, map[string]float64{"rdd.task": 1})
	SetTaskRetries(3)

	r := Map(Parallelize(ints(200), 8), func(x int) int { return x * 3 })
	got, err := r.CollectE()
	if err != nil {
		t.Fatalf("CollectE under full first-attempt injection: %v", err)
	}
	want := make([]int, 200)
	for i := range want {
		want[i] = i * 3
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("recovered result differs from fault-free result")
	}
	if fires := chaos.FireCount("rdd.task"); fires < 8 {
		t.Errorf("rdd.task fired %d times, want >= 8 (one per partition)", fires)
	}
	if fires := chaos.FireCount("rdd.recompute"); fires != 0 {
		t.Errorf("rdd.recompute fired %d times while dormant", fires)
	}
}

func TestRetryBudgetExhaustionSurfacesTaskError(t *testing.T) {
	// Both the first attempt and every recompute fail: the budget is spent
	// and the final injected fault surfaces as a *forkjoin.TaskError, the
	// pre-recovery action contract.
	chaosQuiet(t, 11, map[string]float64{"rdd.task": 1, "rdd.recompute": 1})
	SetTaskRetries(2)

	r := Map(Parallelize(ints(64), 4), func(x int) int { return x + 1 })
	_, err := r.CollectE()
	var te *forkjoin.TaskError
	if !errors.As(err, &te) {
		t.Fatalf("CollectE error = %v, want *forkjoin.TaskError", err)
	}
	var inj *chaos.InjectedError
	if !errors.As(err, &inj) {
		t.Fatalf("TaskError does not wrap the injected fault: %v", err)
	}
	if inj.Point != "rdd.task" && inj.Point != "rdd.recompute" {
		t.Errorf("injected fault from point %q, want an rdd point", inj.Point)
	}

	// The failure must not poison anything: disarm and the same pipeline
	// evaluates cleanly.
	chaos.Configure(11, 0)
	if got, err := r.CollectE(); err != nil || len(got) != 64 {
		t.Fatalf("re-evaluation after exhaustion = (%d elems, %v), want (64, nil)", len(got), err)
	}
}

func TestRecomputeRacingConcurrentActionsOnCachedRDD(t *testing.T) {
	// Concurrent actions race over one cached RDD while first attempts
	// fail half the time. Recovery re-runs partitions — cache fills
	// included — and every action must agree with the fault-free result;
	// the cache must still compute each partition's *published* value
	// exactly once per fill (no torn or partial slices observable).
	chaosQuiet(t, 7, map[string]float64{"rdd.task": 0.5})
	SetTaskRetries(10)

	base := Map(Parallelize(ints(400), 8), func(x int) int { return x * 7 }).Cache()
	wantSum := 0
	for _, x := range ints(400) {
		wantSum += x * 7
	}

	const actors = 6
	var wg sync.WaitGroup
	errs := make([]error, actors)
	for a := 0; a < actors; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			if a%2 == 0 {
				n, err := base.CountE()
				if err == nil && n != 400 {
					err = errors.New("count mismatch")
				}
				errs[a] = err
				return
			}
			sum, err := base.ReduceE(func(x, y int) int { return x + y })
			if err == nil && sum != wantSum {
				err = errors.New("sum mismatch")
			}
			errs[a] = err
		}(a)
	}
	wg.Wait()
	for a, err := range errs {
		if err != nil {
			t.Fatalf("concurrent action %d: %v", a, err)
		}
	}
}

func TestShuffleEpochRetryAfterInjectedExchangeFault(t *testing.T) {
	// While rdd.shuffle fires at rate 1, every exchange attempt fails and
	// the action degrades to a TaskError once the budgets are spent — the
	// exchange is NOT poisoned: disarming the point, the next action
	// retries the whole two-phase shuffle under a fresh epoch and
	// succeeds.
	chaosQuiet(t, 3, map[string]float64{"rdd.shuffle": 1})
	SetTaskRetries(1)

	pairs := Map(Parallelize(ints(120), 6), func(x int) Pair[int, int] {
		return Pair[int, int]{x % 10, x}
	})
	sums := ReduceByKey(pairs, 4, func(a, b int) int { return a + b })

	if _, err := sums.CollectE(); err == nil {
		t.Fatal("action succeeded while every exchange attempt was failing")
	}
	failedEpochs := sums.ShuffleEpochs()
	if failedEpochs < 1 {
		t.Fatalf("ShuffleEpochs = %d after failed exchange attempts, want >= 1", failedEpochs)
	}

	chaos.Configure(3, 0) // disarm; next consumer retries under a fresh epoch
	got, err := sums.CollectE()
	if err != nil {
		t.Fatalf("post-fault exchange retry failed: %v", err)
	}
	if sums.ShuffleEpochs() <= failedEpochs {
		t.Errorf("ShuffleEpochs = %d, want > %d (a fresh epoch per retried exchange)",
			sums.ShuffleEpochs(), failedEpochs)
	}
	want := map[int]int{}
	for _, x := range ints(120) {
		want[x%10] += x
	}
	gotMap := map[int]int{}
	for _, kv := range got {
		gotMap[kv.Key] = kv.Value
	}
	if !reflect.DeepEqual(gotMap, want) {
		t.Fatal("retried exchange produced different sums than fault-free")
	}
}

func TestSpeculativeDuplicateSuppression(t *testing.T) {
	// One straggler partition stalls until cancelled; speculation
	// duplicates it. Exactly one value per partition publishes (the
	// loser's is discarded through the discard callback), and no attempt
	// outlives runParts — entered and exited counts match at return.
	prev := SetSpeculation(true)
	prevFloor := specMinRuntime.Swap(int64(10 * time.Microsecond))
	t.Cleanup(func() {
		SetSpeculation(prev)
		specMinRuntime.Store(prevFloor)
	})

	const n = 8
	const straggler = 5
	var entered, exited, discards atomic.Int32
	var entries [n]atomic.Int32

	out, err := runParts(n, true, func(ctx *taskCtx, p int) int {
		entered.Add(1)
		defer exited.Add(1)
		if p == straggler && entries[p].Add(1) == 1 {
			// The original attempt: stall until the winning duplicate's
			// publish cancels us (bounded by a deadline so a suppression
			// bug fails the test instead of hanging it).
			deadline := time.Now().Add(5 * time.Second)
			for !ctx.cancel.Load() {
				if time.Now().After(deadline) {
					t.Error("straggler was never cancelled")
					break
				}
				time.Sleep(50 * time.Microsecond)
			}
			ctx.stopped = true
			return -1 // must never publish
		}
		return p * 10
	}, func(v int) { discards.Add(1) })

	if err != nil {
		t.Fatalf("runParts: %v", err)
	}
	for p := 0; p < n; p++ {
		if out[p] != p*10 {
			t.Fatalf("out[%d] = %d, want %d (loser published?)", p, out[p], p*10)
		}
	}
	if got := entries[straggler].Load(); got != 2 {
		t.Fatalf("straggler ran %d attempts, want 2 (original + one duplicate)", got)
	}
	if entered.Load() != exited.Load() {
		t.Fatalf("attempt leak: %d entered, %d exited after runParts returned",
			entered.Load(), exited.Load())
	}
	if discards.Load() != 1 {
		t.Errorf("discards = %d, want exactly 1 (the suppressed original)", discards.Load())
	}
}

func TestCheckpointTruncatesLineage(t *testing.T) {
	base := Parallelize(ints(100), 5)
	full := Map(base, func(x int) int { return x + 1 }).
		Filter(func(x int) bool { return x%2 == 0 })

	cp := full.Checkpoint()
	tail := Map(cp, func(x int) int { return x * 2 })

	if got := full.Lineage(); got != "filter <- map <- parallelize" {
		t.Errorf("pre-checkpoint lineage = %q", got)
	}
	if got := tail.Lineage(); got != "map <- checkpoint" {
		t.Errorf("post-checkpoint lineage = %q, want truncation at the checkpoint", got)
	}
	if d := full.RecomputeDepth(); d != 2 {
		t.Errorf("full.RecomputeDepth = %d, want 2", d)
	}
	if d := tail.RecomputeDepth(); d != 1 {
		t.Errorf("tail.RecomputeDepth = %d, want 1 (checkpoint is the barrier)", d)
	}

	if e := cp.ShuffleEpochs(); e != 0 {
		t.Errorf("ShuffleEpochs = %d before any action, want 0", e)
	}
	want := Map(full, func(x int) int { return x * 2 }).Collect()
	if got := tail.Collect(); !reflect.DeepEqual(got, want) {
		t.Fatal("checkpointed pipeline result differs from direct evaluation")
	}
	if e := cp.ShuffleEpochs(); e != 1 {
		t.Errorf("ShuffleEpochs = %d after one clean materialization, want 1", e)
	}
	// Re-running the action reads the materialized checkpoint: no new epoch.
	tail.Collect()
	if e := cp.ShuffleEpochs(); e != 1 {
		t.Errorf("ShuffleEpochs = %d after a second action, want still 1", e)
	}
}

// TestChaosDifferentialBitIdentical asserts the recovery engine's core
// guarantee: under injected faults on every rdd chaos point at rates up to
// 0.05, every action's result — through mid-chain Cache and Checkpoint,
// narrow and wide dependencies, and the ML kernels — is bit-identical to
// the fault-free run.
func TestChaosDifferentialBitIdentical(t *testing.T) {
	type results struct {
		collected []int
		count     int
		sum       int
		cached    []int
		ckpt      []int
		byKey     map[int]int
		grouped   map[int][]int
		joined    []Pair[int, struct{ Left, Right int }]
		nbPrior   []float64
		chi       []float64
		logw      []float64
		ranks     map[int]float64
	}

	run := func() results {
		var r results
		base := Parallelize(ints(300), 8)

		narrow := Map(base, func(x int) int { return x*x - x })
		r.collected = narrow.Collect()
		r.count = narrow.Count()
		var err error
		r.sum, err = narrow.ReduceE(func(a, b int) int { return a + b })
		if err != nil {
			t.Fatalf("ReduceE: %v", err)
		}

		cached := Map(base, func(x int) int { return x + 13 }).Cache()
		r.cached = Map(cached, func(x int) int { return x * 2 }).Collect()

		ckpt := Map(base, func(x int) int { return x - 5 }).Checkpoint()
		r.ckpt = ckpt.Filter(func(x int) bool { return x%3 == 0 }).Collect()

		pairs := Map(base, func(x int) Pair[int, int] { return Pair[int, int]{x % 17, x} })
		r.byKey = CollectAsMap(ReduceByKey(pairs, 4, func(a, b int) int { return a + b }))
		r.grouped = CollectAsMap(GroupByKey(pairs, 4))

		left := Map(base, func(x int) Pair[int, int] { return Pair[int, int]{x % 11, x} })
		right := Map(base, func(x int) Pair[int, int] { return Pair[int, int]{x % 11, x * 2} })
		joined := Join(left, right, 4).Collect()
		sort.Slice(joined, func(i, j int) bool {
			a, b := joined[i], joined[j]
			if a.Key != b.Key {
				return a.Key < b.Key
			}
			if a.Value.Left != b.Value.Left {
				return a.Value.Left < b.Value.Left
			}
			return a.Value.Right < b.Value.Right
		})
		r.joined = joined

		points := Map(base, func(x int) LabeledPoint {
			return LabeledPoint{
				Label:    x % 2,
				Features: []float64{float64(x%7) + 1, float64(x%5) + 1, float64(x % 3)},
			}
		})
		nb, err := NaiveBayes(points, 2, 3)
		if err != nil {
			t.Fatalf("NaiveBayes: %v", err)
		}
		r.nbPrior = nb.ClassLogPrior
		r.chi = ChiSquare(points, 2, 3, 4)
		r.logw, err = LogisticRegression(points, 5, 0.1)
		if err != nil {
			t.Fatalf("LogisticRegression: %v", err)
		}

		var edges []Pair[int, int]
		for i := 0; i < 60; i++ {
			edges = append(edges,
				Pair[int, int]{i, (i*i + 1) % 60},
				Pair[int, int]{i, (i + 7) % 60})
		}
		r.ranks = NewGraph(edges).PageRank(10, 0.85)
		return r
	}

	chaos.Disable()
	SetTaskRetries(10)
	t.Cleanup(func() {
		chaos.Disable()
		SetTaskRetries(-1)
	})
	want := run()

	for _, seed := range []int64{1, 7, 13} {
		for _, rate := range []float64{0.01, 0.05} {
			chaos.Configure(seed, 0)
			for _, pt := range []string{"rdd.task", "rdd.recompute", "rdd.shuffle"} {
				chaos.SetRate(pt, rate)
			}
			got := run()
			// Read fire counts before Configure resets them. At rate 0.01 a
			// seed can legitimately fire nothing; at 0.05 over hundreds of
			// trials a silent run means the points aren't wired in.
			fires := chaos.FireCount("rdd.task") +
				chaos.FireCount("rdd.recompute") + chaos.FireCount("rdd.shuffle")
			chaos.Configure(seed, 0)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed=%d rate=%g: chaos run diverged from fault-free run", seed, rate)
			}
			if rate >= 0.05 && fires == 0 {
				t.Fatalf("seed=%d rate=%g: no rdd faults fired — differential proved nothing", seed, rate)
			}
		}
	}
}
