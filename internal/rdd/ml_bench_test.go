package rdd

import (
	"math/rand"
	"testing"
)

// Seed-vs-lin benchmark pairs for every ML kernel the flat-memory layer
// replaced, at the spark-family benchmarks' scale-1.0 sizes. The "seed"
// sub-benchmarks run the verbatim baselines from seedml_test.go
// (including their per-call grouping, exactly as the seed benchmark
// iterations paid for it); the "lin" sub-benchmarks run the live kernels
// over pre-built graphs, matching what a benchmark iteration now
// measures. `make bench` records these at -cpu 1,2,4,8 into BENCH_ml.txt.

func benchRatings() []Rating {
	rng := rand.New(rand.NewSource(7))
	return syntheticRatings(rng, 60, 40, 4)
}

func BenchmarkMLALS(b *testing.B) {
	ratings := benchRatings()
	rdd := Parallelize(ratings, 8)
	b.Run("seed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := seedALS(rdd, 4, 8, 0.01, 7); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lin", func(b *testing.B) {
		g := NewRatingsGraph(ratings)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ALSTrain(g, 4, 8, 0.01, 7); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchEdges() []Pair[int, int] {
	rng := rand.New(rand.NewSource(9))
	const n = 600
	var edges []Pair[int, int]
	for v := 0; v < n; v++ {
		edges = append(edges, KV(v, (v+1)%n))
		for k := 0; k < 3; k++ {
			edges = append(edges, KV(v, rng.Intn(v/4+1)))
		}
	}
	return edges
}

func BenchmarkMLPageRank(b *testing.B) {
	edges := benchEdges()
	rdd := Parallelize(edges, 8)
	b.Run("seed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			seedPageRank(rdd, 10, 0.85)
		}
	})
	b.Run("lin", func(b *testing.B) {
		g := NewGraph(edges)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.PageRank(10, 0.85)
		}
	})
}

func BenchmarkMLLogReg(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	pts := Parallelize(syntheticLabeled(rng, 4000, 10), 8)
	b.Run("seed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := seedLogisticRegression(pts, 40, 1.0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lin", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := LogisticRegression(pts, 40, 1.0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkMLNaiveBayes(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	const n, dim, classes = 5000, 16, 3
	raw := make([]LabeledPoint, n)
	for i := range raw {
		label := i % classes
		f := make([]float64, dim)
		for j := range f {
			base := 1.0
			if j%classes == label {
				base = 6.0
			}
			f[j] = base + float64(rng.Intn(3))
		}
		raw[i] = LabeledPoint{Features: f, Label: label}
	}
	pts := Parallelize(raw, 8)
	b.Run("seed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := seedNaiveBayes(pts, classes, dim); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lin", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := NaiveBayes(pts, classes, dim); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkMLChiSquare(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	const n, dim = 4000, 12
	raw := make([]LabeledPoint, n)
	for i := range raw {
		label := i % 2
		f := make([]float64, dim)
		f[0] = float64(label)
		if rng.Float64() < 0.1 {
			f[0] = float64(1 - label)
		}
		for j := 1; j < dim; j++ {
			f[j] = float64(rng.Intn(4))
		}
		raw[i] = LabeledPoint{Features: f, Label: label}
	}
	pts := Parallelize(raw, 8)
	b.Run("seed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			seedChiSquare(pts, 2, dim, 4)
		}
	})
	b.Run("lin", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ChiSquare(pts, 2, dim, 4)
		}
	})
}

func BenchmarkMLDecTree(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	pts := Parallelize(syntheticLabeled(rng, 3000, 8), 8)
	b.Run("seed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := seedDecisionTree(pts, 2, 6, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lin", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := DecisionTree(pts, 2, 6, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
}
