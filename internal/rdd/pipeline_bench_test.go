package rdd

import (
	"sync"
	"testing"

	"renaissance/internal/forkjoin"
	"renaissance/internal/metrics"
)

// Benchmarks comparing the PR 3 engine against the seed design, with the
// seed reimplemented here as an in-package baseline so both run on the
// same runtime and executor:
//
//   - BenchmarkPipelineFusedVsMaterialized: narrow chains evaluated by
//     the fused push pipeline vs the seed's one-intermediate-slice-per-
//     stage evaluation. The mapFilterMap variant has no per-element user
//     allocations, so its fused allocs/op directly exposes the
//     one-output-allocation-per-partition property; the flatMap variant
//     adds a slice-returning FlatMap stage on both sides.
//   - BenchmarkShuffleLockedVsExchange: the seed's per-bucket-mutex
//     shuffle vs the two-phase lock-free staging-matrix exchange.
//
// Run via `make bench` at -cpu 1,2,4,8 (note in EXPERIMENTS.md: the
// container has one physical core).

const (
	pipelineElems = 1 << 16
	pipelineParts = 8
)

var pipelineSink int

// The stage functions are marked noinline so both engines pay the same
// call and escape costs; otherwise the baseline's direct loops let the
// compiler stack-allocate benchDup's result while the fused pipeline's
// closure chain forces it to the heap, skewing the comparison.
//
//go:noinline
func benchMul(x int) int { return x*3 + 1 }

//go:noinline
func benchOdd(x int) bool { return x&1 == 1 }

//go:noinline
func benchDup(x int) []int { return []int{x, x + 1} }

//go:noinline
func benchDec(x int) int { return x - 1 }

// materializedEval is the seed evaluation discipline for one partition of
// the benchmark chain: every narrow stage allocates a full intermediate
// slice and bumps the same per-element metrics the seed engine did.
func materializedEval(seg []int, loc metrics.Local, withFlatMap bool) []int {
	loc.IncArray()
	s1 := make([]int, len(seg))
	for i, x := range seg {
		loc.IncIDynamic()
		s1[i] = benchMul(x)
	}
	loc.IncArray()
	s2 := make([]int, 0, len(s1))
	for _, x := range s1 {
		loc.IncIDynamic()
		if benchOdd(x) {
			s2 = append(s2, x)
		}
	}
	s3 := s2
	if withFlatMap {
		loc.IncArray()
		s3 = make([]int, 0, 2*len(s2))
		for _, x := range s2 {
			loc.IncIDynamic()
			s3 = append(s3, benchDup(x)...)
		}
	}
	loc.IncArray()
	s4 := make([]int, len(s3))
	for i, x := range s3 {
		loc.IncIDynamic()
		s4[i] = benchDec(x)
	}
	return s4
}

func benchMaterialized(b *testing.B, data []int, withFlatMap bool) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts := make([][]int, pipelineParts)
		forkjoin.For(pipelineParts, 1, func(lo, hi int) {
			loc := metrics.Acquire()
			for p := lo; p < hi; p++ {
				plo := p * len(data) / pipelineParts
				phi := (p + 1) * len(data) / pipelineParts
				parts[p] = materializedEval(data[plo:phi], loc, withFlatMap)
			}
		})
		total := 0
		for _, pt := range parts {
			total += len(pt)
		}
		out := make([]int, 0, total)
		for _, pt := range parts {
			out = append(out, pt...)
		}
		pipelineSink = len(out)
	}
}

func benchFused(b *testing.B, r *RDD[int]) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipelineSink = len(r.Collect())
	}
}

func BenchmarkPipelineFusedVsMaterialized(b *testing.B) {
	data := ints(pipelineElems)

	// Map→Filter→Map: no per-element user allocations, so fused allocs/op
	// is pure engine cost — one output buffer per partition plus the
	// constant Collect/executor overhead, independent of element count.
	b.Run("mapFilterMap", func(b *testing.B) {
		b.Run("fused", func(b *testing.B) {
			r := Map(Map(Parallelize(data, pipelineParts), benchMul).Filter(benchOdd), benchDec)
			benchFused(b, r)
		})
		b.Run("materialized", func(b *testing.B) {
			benchMaterialized(b, data, false)
		})
	})

	// Map→Filter→FlatMap→Map: both sides pay benchDup's per-element
	// slice; the delta is the engine's intermediate materialization.
	b.Run("flatMapChain", func(b *testing.B) {
		b.Run("fused", func(b *testing.B) {
			r := Map(FlatMap(Map(Parallelize(data, pipelineParts), benchMul).Filter(benchOdd), benchDup), benchDec)
			benchFused(b, r)
		})
		b.Run("materialized", func(b *testing.B) {
			benchMaterialized(b, data, true)
		})
	})
}

const (
	shuffleElems   = 1 << 15
	shuffleParts   = 8
	shuffleBuckets = 8
	shuffleKeys    = 1024
)

func BenchmarkShuffleLockedVsExchange(b *testing.B) {
	pairs := make([]Pair[int, int], shuffleElems)
	for i := range pairs {
		pairs[i] = KV(i%shuffleKeys, i)
	}
	r := Parallelize(pairs, shuffleParts)

	b.Run("locked", func(b *testing.B) {
		// Seed implementation: goroutine per producer, per-producer local
		// staging, appends serialized behind per-bucket mutexes.
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out := make([][]Pair[int, int], shuffleBuckets)
			locks := make([]sync.Mutex, shuffleBuckets)
			var wg sync.WaitGroup
			for p := 0; p < shuffleParts; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					local := make([][]Pair[int, int], shuffleBuckets)
					r.run(p, func(kv Pair[int, int]) bool {
						bk := hashKey(kv.Key, shuffleBuckets)
						local[bk] = append(local[bk], kv)
						return true
					})
					for bk, ps := range local {
						if len(ps) == 0 {
							continue
						}
						locks[bk].Lock()
						out[bk] = append(out[bk], ps...)
						locks[bk].Unlock()
					}
				}(p)
			}
			wg.Wait()
			pipelineSink = len(out[0])
		}
	})

	b.Run("exchange", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out := shuffle(r, shuffleBuckets)
			pipelineSink = len(out[0])
		}
	})
}
