// Lineage-based partition recovery (DESIGN.md §14). Every action and
// shuffle phase evaluates its partitions through runParts, the engine's
// recovery-aware partition scheduler:
//
//   - Bounded recompute: a partition attempt that fails — an organic
//     panic, a *forkjoin.TaskError from a nested job, or an injected
//     chaos fault — is recomputed from the partition's lineage (the fused
//     pipeline re-runs from the nearest materialized ancestor: a cached
//     partition, a published shuffle exchange, or a checkpoint) under a
//     bounded per-partition retry budget with seeded-jitter backoff.
//     When the budget is spent the final *forkjoin.TaskError surfaces
//     from the action exactly as before this engine existed.
//   - Straggler speculation (off by default, like Spark's
//     spark.speculation): once most siblings have published, a partition
//     running far past the completed-sibling median gets one speculative
//     duplicate; the first writer wins publication and the loser is
//     cancelled mid-stream via its taskCtx and its value discarded.
//   - Caller-runs discipline: like forkjoin's parallel-for, the calling
//     goroutine claims and evaluates partitions itself while pool workers
//     help opportunistically (forkjoin.Pool.Help), so a nested runParts —
//     a shuffle exchange evaluated inside a consumer partition — always
//     makes progress even when every worker is busy.
//
// Chaos points: "rdd.task" fires before every first partition attempt
// (and every speculative duplicate), "rdd.recompute" before every retry,
// so a chaos sweep exercises both the failure and the recovery paths.
package rdd

import (
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"renaissance/internal/chaos"
	"renaissance/internal/forkjoin"
	"renaissance/internal/metrics"
)

// defaultTaskRetries is the default per-partition recompute budget: extra
// attempts after the first, per partition, per action.
const defaultTaskRetries = 3

var taskRetries atomic.Int32

func init() { taskRetries.Store(defaultTaskRetries) }

// SetTaskRetries sets the per-partition recompute budget (extra attempts
// after the first) and returns the previous value. n < 0 restores the
// default. The CLI exposes this as -rdd.retries.
func SetTaskRetries(n int) int {
	if n < 0 {
		n = defaultTaskRetries
	}
	return int(taskRetries.Swap(int32(n)))
}

// TaskRetries returns the current per-partition recompute budget.
func TaskRetries() int { return int(taskRetries.Load()) }

// specEnabled gates straggler speculation. Default off: speculative
// duplicates are timing-triggered, so enabling them makes the engine's
// metric counts (rddspec, plus the duplicates' pipeline bumps) depend on
// scheduling — acceptable in a recovery-focused run, not in the default
// profile-characterization runs. Spark ships the same default
// (spark.speculation=false).
var specEnabled atomic.Bool

// SetSpeculation toggles straggler speculation and returns the previous
// setting. The CLI exposes this as -rdd.speculate.
func SetSpeculation(on bool) bool { return specEnabled.Swap(on) }

// Speculation tuning. The quantile and multiplier mirror Spark's
// speculation.quantile (0.75) and speculation.multiplier; the floor keeps
// micro-partitions from speculating on scheduler noise. specMinRuntime is
// a variable so the adversarial tests can shrink it.
const (
	specQuantileNum = 3 // at least 3/4 of the partitions must have published
	specQuantileDen = 4
	specMultiplier  = 4
	specTick        = 200 * time.Microsecond
)

var specMinRuntime atomic.Int64

func init() { specMinRuntime.Store(int64(time.Millisecond)) }

// Retry backoff: exponential from backoffBase, capped, with deterministic
// jitter mixed from (chaos seed, partition, attempt) — reproducible under
// a pinned chaos seed, decorrelated across partitions.
const (
	backoffBase = 50 * time.Microsecond
	backoffMax  = 5 * time.Millisecond
)

// mix64 is a splitmix64 finalizer (full avalanche), the same mixer the
// chaos engine uses for its decision streams.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// recoveryBackoff sleeps before retry number attempt (1-based) of
// partition p: half the exponential step plus seeded jitter over the
// other half, so concurrent recomputes de-synchronize deterministically.
func recoveryBackoff(p, attempt int) {
	shift := uint(attempt)
	if shift > 8 {
		shift = 8
	}
	d := backoffBase << shift
	if d > backoffMax {
		d = backoffMax
	}
	h := mix64(uint64(chaos.Seed())<<32 ^ uint64(p)<<16 ^ uint64(attempt))
	time.Sleep(d/2 + time.Duration(h%uint64(d/2+1)))
}

// taskCtx is the per-attempt execution context threaded into a partition
// computation. A losing speculative duplicate (or any attempt of a job
// that already failed) has its cancel flag set; the compute body observes
// it at strided sink checks, sets stopped, and bails — its partial value
// is discarded, never published.
type taskCtx struct {
	cancel  *atomic.Bool
	stopped bool
}

// noCtx is the context of uncancellable evaluation paths (legacy helpers,
// cache fills under the slot mutex).
var noCtx = &taskCtx{}

// cancelCheckMask strides the cancellation poll: the guarded sink checks
// the cancel flag once every 256 elements, so the fault-free per-element
// cost is a local counter increment and a mask, not an atomic load.
const cancelCheckMask = 255

// guardSink wraps sink with the strided cancellation check. With no
// cancel flag (noCtx) the sink is returned unwrapped — zero overhead on
// uncancellable paths.
func guardSink[T any](ctx *taskCtx, sink func(T) bool) func(T) bool {
	if ctx.cancel == nil {
		return sink
	}
	n := 0
	return func(x T) bool {
		n++
		if n&cancelCheckMask == 0 && ctx.cancel.Load() {
			ctx.stopped = true
			return false
		}
		return sink(x)
	}
}

// partState is the per-partition scheduling state of one runParts job.
type partState struct {
	cancel     atomic.Bool
	published  atomic.Bool
	speculated atomic.Bool
	start      atomic.Int64 // ns since job start, +1 (0 = not started)
	dur        atomic.Int64 // published attempt's runtime, ns
}

// partJob is the shared state of one runParts invocation: the claim
// counter, per-partition states, the first-failure slot, the completion
// barrier, and the inflight/terminal quiescence handshake that joins
// every *started* attempt before the call returns.
//
// Helpers submitted to the pool are deliberately NOT joined — only
// attempts that actually started are. Joining submitted-but-unstarted
// helpers deadlocks the nested case this engine exists for: a shuffle
// exchange evaluated inside a consumer partition runs while every pool
// worker is blocked on the exchange mutex, so the nested job's helpers
// would never be scheduled. A helper that fires after the job completed
// finds the claim counter drained and exits without touching anything
// (the same completion-quiet discipline as forkjoin's For helpers).
type partJob[R any] struct {
	n       int
	compute func(*taskCtx, int) R
	discard func(R)
	out     []R
	st      []partState

	next      atomic.Int64
	remaining atomic.Int64
	failure   atomic.Pointer[forkjoin.TaskError]
	aborted   atomic.Bool
	barrier   chan struct{}
	closeOnce sync.Once

	// Quiescence: inflight counts started-and-unfinished attempt loops
	// (helpers and speculative duplicates; the caller's own drain needs no
	// tracking). After the barrier releases, the caller sets terminal and
	// waits for quiesced iff inflight is still nonzero; the last exiting
	// attempt observes terminal and closes quiesced. Both orders of the
	// final store/load pair are covered by the seq-cst atomics.
	inflight atomic.Int64
	terminal atomic.Bool
	qOnce    sync.Once
	quiesced chan struct{}

	t0   time.Time
	spec bool
}

// exit balances one enter (an attempt-loop start); the last exit after
// the job turned terminal releases the quiescence channel.
func (j *partJob[R]) exit() {
	if j.inflight.Add(-1) == 0 && j.terminal.Load() {
		j.qOnce.Do(func() { close(j.quiesced) })
	}
}

// quiesce waits until every started attempt has finished. Called by the
// owner after the barrier released, so no new helper can claim work (the
// counter is drained or the job is aborted) and the wait is bounded by
// the in-flight attempts' cancellation latency.
func (j *partJob[R]) quiesce() {
	j.terminal.Store(true)
	if j.inflight.Load() == 0 {
		return
	}
	<-j.quiesced
}

// runParts evaluates compute(ctx, p) for every partition p in [0, n) with
// bounded recompute and (when allowSpec and speculation is enabled)
// straggler speculation, returning the published values in partition
// order. On persistent failure it returns the final *forkjoin.TaskError
// after discarding any published values (so a failed shuffle exchange can
// recycle its staging rows before the retry's fresh epoch). discard, when
// non-nil, also receives the values of cancelled and losing attempts.
func runParts[R any](n int, allowSpec bool, compute func(*taskCtx, int) R, discard func(R)) ([]R, error) {
	if n <= 0 {
		return nil, nil
	}
	loc := metrics.Acquire()
	loc.IncArray()
	j := &partJob[R]{
		n:        n,
		compute:  compute,
		discard:  discard,
		out:      make([]R, n),
		st:       make([]partState, n),
		barrier:  make(chan struct{}),
		quiesced: make(chan struct{}),
		t0:       time.Now(),
		spec:     allowSpec && specEnabled.Load(),
	}
	j.remaining.Store(int64(n))

	if n > 1 {
		pool := forkjoin.Shared()
		helpers := pool.Parallelism()
		if helpers > n-1 {
			helpers = n - 1
		}
		for i := 0; i < helpers; i++ {
			if !pool.Help(func() {
				j.inflight.Add(1)
				defer j.exit()
				j.drain(metrics.Acquire())
			}) {
				break // queue full or pool closed; the caller still finishes
			}
		}
	}
	// Straggler watching runs on a dedicated control-plane goroutine (the
	// analogue of Spark's driver-side speculation monitor), not on the
	// caller: the caller participates in partition evaluation, so it may
	// itself be executing the straggler it would need to speculate. The
	// watcher is joined before return.
	var watcherDone chan struct{}
	if j.spec {
		watcherDone = make(chan struct{})
		go func() {
			defer close(watcherDone)
			j.specWatch()
		}()
	}
	j.drain(loc)
	loc.IncPark()
	<-j.barrier
	loc.IncNotify()
	if watcherDone != nil {
		<-watcherDone
	}
	j.quiesce()

	if te := j.failure.Load(); te != nil {
		if j.discard != nil {
			for p := range j.out {
				if j.st[p].published.Load() {
					j.discard(j.out[p])
				}
			}
		}
		return nil, te
	}
	return j.out, nil
}

// forPartsRetry evaluates body(ctx, p) for every partition under the
// recompute budget with speculation force-disabled: the recovery
// primitive for kernels that accumulate into shared per-partition state
// in place (naive Bayes, chi-square, logistic regression, the PageRank
// scatter). Their bodies are idempotent — every attempt starts by
// clearing its accumulator row — but two attempts of the same partition
// must never run concurrently, which rules out duplicates.
func forPartsRetry(n int, body func(ctx *taskCtx, p int)) error {
	_, err := runParts(n, false, func(ctx *taskCtx, p int) struct{} {
		body(ctx, p)
		return struct{}{}
	}, nil)
	return err
}

// drain claims and evaluates partitions until the range is exhausted or
// the job aborts — the same guided self-scheduling loop as forkjoin's
// parJob, at partition granularity with recovery per claim.
func (j *partJob[R]) drain(loc metrics.Local) {
	for {
		if j.aborted.Load() {
			return
		}
		p := int(j.next.Add(1)) - 1
		if p >= j.n {
			return
		}
		// Counted per successful claim, like a parallel-for chunk claim.
		loc.IncAtomic()
		j.runAttempts(p)
	}
}

// runAttempts drives partition p through the bounded recompute loop:
// evaluate, and on failure back off and recompute until the budget is
// spent, then record the final TaskError and abort the job.
func (j *partJob[R]) runAttempts(p int) {
	st := &j.st[p]
	st.start.Store(time.Since(j.t0).Nanoseconds() + 1)
	budget := TaskRetries()
	for attempt := 0; ; attempt++ {
		if st.published.Load() || j.aborted.Load() {
			return // a speculative duplicate won, or a sibling already failed the job
		}
		point := "rdd.task"
		if attempt > 0 {
			point = "rdd.recompute"
			metrics.IncRddRecompute()
		}
		v, stopped, te := j.attempt(p, point)
		if te == nil {
			if stopped {
				if j.discard != nil {
					j.discard(v)
				}
				return
			}
			j.publish(p, v)
			return
		}
		if attempt >= budget {
			j.fail(p, te)
			return
		}
		recoveryBackoff(p, attempt+1)
	}
}

// attempt runs one evaluation of partition p under a recover that
// converts any panic — organic, nested *forkjoin.TaskError, or injected
// chaos fault — into the attempt's *forkjoin.TaskError.
func (j *partJob[R]) attempt(p int, point string) (v R, stopped bool, te *forkjoin.TaskError) {
	defer func() {
		if r := recover(); r != nil {
			if t, ok := r.(*forkjoin.TaskError); ok {
				te = t
			} else {
				te = &forkjoin.TaskError{Index: p, Value: r, Stack: debug.Stack()}
			}
		}
	}()
	if chaos.Maybe(point) {
		panic(&chaos.InjectedError{Point: point})
	}
	ctx := &taskCtx{cancel: &j.st[p].cancel}
	v = j.compute(ctx, p)
	return v, ctx.stopped, nil
}

// publish records partition p's value, first writer wins: the losing
// attempt of a speculated partition has its value discarded and — via the
// shared cancel flag — any still-running duplicate is told to stop.
func (j *partJob[R]) publish(p int, v R) {
	st := &j.st[p]
	if !st.published.CompareAndSwap(false, true) {
		if j.discard != nil {
			j.discard(v)
		}
		return
	}
	st.dur.Store(time.Since(j.t0).Nanoseconds() - (st.start.Load() - 1))
	st.cancel.Store(true) // suppress the losing duplicate, if any
	j.out[p] = v
	if j.remaining.Add(-1) == 0 {
		j.closeOnce.Do(func() { close(j.barrier) })
	}
}

// fail records the job's first failure — unless a speculative duplicate
// already delivered the partition — and aborts the siblings.
func (j *partJob[R]) fail(p int, te *forkjoin.TaskError) {
	if j.st[p].published.Load() {
		return
	}
	j.failure.CompareAndSwap(nil, te)
	j.abort()
}

// abort cancels every in-flight attempt and releases the barrier so the
// caller stops waiting; unclaimed partitions are swallowed by the aborted
// check at the top of the drain and attempt loops.
func (j *partJob[R]) abort() {
	j.aborted.Store(true)
	for i := range j.st {
		j.st[i].cancel.Store(true)
	}
	j.closeOnce.Do(func() { close(j.barrier) })
}

// specWatch scans for stragglers on a periodic tick until the job's
// barrier releases. It runs on its own goroutine so it stays responsive
// while every executor — the caller included — is busy in long partition
// attempts.
func (j *partJob[R]) specWatch() {
	tick := time.NewTicker(specTick)
	defer tick.Stop()
	for {
		select {
		case <-j.barrier:
			return
		case <-tick.C:
			j.speculate()
		}
	}
}

// speculate launches duplicates for stragglers: once at least
// specQuantileNum/specQuantileDen of the partitions have published, any
// started, unpublished, not-yet-speculated partition running longer than
// specMultiplier times the published-sibling median (with an absolute
// floor) gets exactly one speculative duplicate.
func (j *partJob[R]) speculate() {
	done := int64(j.n) - j.remaining.Load()
	if int(done)*specQuantileDen < j.n*specQuantileNum {
		return
	}
	durs := make([]int64, 0, done)
	for i := range j.st {
		if j.st[i].published.Load() {
			durs = append(durs, j.st[i].dur.Load())
		}
	}
	if len(durs) == 0 {
		return
	}
	sort.Slice(durs, func(a, b int) bool { return durs[a] < durs[b] })
	threshold := durs[len(durs)/2] * specMultiplier
	if floor := specMinRuntime.Load(); threshold < floor {
		threshold = floor
	}
	now := time.Since(j.t0).Nanoseconds()
	for p := range j.st {
		st := &j.st[p]
		start := st.start.Load()
		if start == 0 || st.published.Load() || st.speculated.Load() {
			continue
		}
		if now-(start-1) <= threshold {
			continue
		}
		if !st.speculated.CompareAndSwap(false, true) {
			continue
		}
		metrics.IncRddSpec()
		dup := p
		// inflight registration happens inside the task, not here: a
		// submitted-but-unscheduled duplicate must not block quiescence
		// (when it finally fires the partition is published and it exits
		// at the guard in duplicate).
		run := func() {
			j.inflight.Add(1)
			defer j.exit()
			j.duplicate(dup)
		}
		if !forkjoin.Shared().Help(run) {
			run() // no helper slot free; the watcher runs the duplicate itself
		}
	}
}

// duplicate is one speculative attempt: a single evaluation (no retry
// chain — the original attempt is still the partition's retrier),
// publishing only if it beats the original.
func (j *partJob[R]) duplicate(p int) {
	if j.st[p].published.Load() || j.aborted.Load() {
		return
	}
	v, stopped, te := j.attempt(p, "rdd.task")
	if te != nil || stopped {
		if te == nil && j.discard != nil {
			j.discard(v)
		}
		return
	}
	j.publish(p, v)
}
