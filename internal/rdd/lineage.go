// Lineage metadata and recovery barriers (DESIGN.md §14). Every RDD
// records how it was derived — its dependency chain — so partition
// recovery is meaningful and debuggable: a failed partition replays its
// fused pipeline from the nearest materialized ancestor, and
// RecomputeDepth reports how many narrow stages that replay spans before
// hitting a barrier (the data source, a published shuffle exchange, a
// cache, or a checkpoint).
package rdd

import (
	"strings"
	"sync"
	"sync/atomic"

	"renaissance/internal/metrics"
)

// dep classifies one link of an RDD's lineage chain.
type dep int8

const (
	// depSource: Parallelize — the data is resident, nothing upstream to
	// recompute.
	depSource dep = iota
	// depNarrow: map/filter/flatMap/mapPartitions — recompute replays the
	// parent partition through the fused pipeline.
	depNarrow
	// depWide: a shuffle — once the exchange has published, downstream
	// recomputes read the materialized buckets instead of re-shuffling.
	depWide
	// depBarrier: cache or checkpoint — an explicitly materialized
	// recovery barrier that truncates recompute depth.
	depBarrier
)

// lineage is one node of the recorded dependency chain. It is metadata
// only — a few words per transformation — never the data: truncating the
// *data* lineage (Checkpoint) is about dropping the closure chain that
// pins upstream partitions, which lives in the RDD's iterate field, not
// here.
type lineage struct {
	op     string
	dep    dep
	parent *lineage
}

func newLineage(op string, d dep, parent *lineage) *lineage {
	return &lineage{op: op, dep: d, parent: parent}
}

// Lineage renders the dependency chain child-first, e.g.
// "filter <- map <- parallelize". A checkpointed dataset's chain is
// truncated at the checkpoint, like Spark's toDebugString.
func (r *RDD[T]) Lineage() string {
	var ops []string
	for l := r.lin; l != nil; l = l.parent {
		ops = append(ops, l.op)
	}
	return strings.Join(ops, " <- ")
}

// RecomputeDepth reports how many narrow stages a failed partition of
// this dataset replays before reaching a recovery barrier: 0 for sources,
// wide datasets (the published exchange is the barrier), caches, and
// checkpoints. It is a static property of the chain — it does not track
// whether a cache or exchange has actually materialized yet.
func (r *RDD[T]) RecomputeDepth() int {
	d := 0
	for l := r.lin; l != nil && l.dep == depNarrow; l = l.parent {
		d++
	}
	return d
}

// ShuffleEpochs reports how many exchange attempts this dataset's wide
// dependency (or checkpoint materialization) has started: 0 before any
// action and for narrow datasets, 1 after a clean exchange, more when
// failed attempts were retried under fresh epochs.
func (r *RDD[T]) ShuffleEpochs() int64 {
	if r.wideEpochs == nil {
		return 0
	}
	return r.wideEpochs.Load()
}

// exchange is the retryable materialization point of a wide dependency —
// the epoch-tagged replacement for the sync.Once that used to guard a
// shuffle. A successful attempt publishes its payload once (readers after
// that are a single atomic load); a failed attempt leaves the slot empty
// and releases the mutex, so the next consumer retries the whole
// computation under a fresh epoch instead of inheriting a poisoned Once
// whose nil buckets every downstream partition would crash on forever.
type exchange[T any] struct {
	mu    sync.Mutex
	out   atomic.Pointer[T]
	epoch atomic.Int64
}

// ensure returns the published payload, computing it under the mutex on
// first use. compute may panic (a producer's retry budget exhausted, an
// injected rdd.shuffle fault): the panic unwinds through the calling
// consumer's own recovery loop, which retries ensure — a fresh epoch —
// under its own recompute budget, bounding the total attempts.
func (e *exchange[T]) ensure(compute func() T) T {
	if v := e.out.Load(); v != nil {
		return *v
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if v := e.out.Load(); v != nil {
		return *v
	}
	e.epoch.Add(1)
	v := compute()
	e.out.Store(&v)
	return v
}

// Checkpoint returns a dataset with the same contents whose first
// evaluation materializes every partition (with partition recovery) and
// truncates the lineage: the upstream pipeline — and the data it pins —
// becomes unreachable once the checkpoint has published, and downstream
// recomputes replay from the checkpointed slices instead of the full
// chain. Deep iterative pipelines checkpoint between rounds to bound
// their recompute depth, exactly as in Spark; unlike Spark the
// materialization is in-memory, not on disk (DESIGN.md §14 lists the
// deliberate divergences).
func (r *RDD[T]) Checkpoint() *RDD[T] {
	metrics.IncObject()
	ex := &exchange[[][]T]{}
	// The parent reference lives in a cell the materializer clears: after
	// a successful checkpoint the closure chain below holds only ex and
	// the cell, so the whole upstream pipeline is garbage.
	cell := &struct{ parent *RDD[T] }{parent: r}
	ensure := func() [][]T {
		return ex.ensure(func() [][]T {
			parts, err := collectPartitionsE(cell.parent)
			if err != nil {
				panic(err)
			}
			cell.parent = nil // truncate the data lineage
			return parts
		})
	}
	return &RDD[T]{
		numPartitions: r.numPartitions,
		lin:           newLineage("checkpoint", depBarrier, nil),
		wideEpochs:    &ex.epoch,
		sizeHint:      func(p int) int { return len(ensure()[p]) },
		iterate: func(p int, sink func(T) bool) {
			for _, x := range ensure()[p] {
				if !sink(x) {
					return
				}
			}
		},
	}
}
