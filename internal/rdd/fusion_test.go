package rdd

import (
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// refMap/refFilter/refFlatMap are the unfused seed semantics: one full
// intermediate slice per stage, evaluated sequentially. The fused engine
// must be element-for-element identical to chains of these.
func refMap[T, U any](in []T, fn func(T) U) []U {
	out := make([]U, len(in))
	for i, x := range in {
		out[i] = fn(x)
	}
	return out
}

func refFilter[T any](in []T, pred func(T) bool) []T {
	out := make([]T, 0, len(in))
	for _, x := range in {
		if pred(x) {
			out = append(out, x)
		}
	}
	return out
}

func refFlatMap[T, U any](in []T, fn func(T) []U) []U {
	var out []U
	for _, x := range in {
		out = append(out, fn(x)...)
	}
	return out
}

// TestPropertyFusedMatchesSequential checks that an arbitrary narrow
// chain over arbitrary data and partitioning — optionally with a Cache()
// inserted mid-chain — produces exactly the seed's per-stage-slice
// results, in order.
func TestPropertyFusedMatchesSequential(t *testing.T) {
	double := func(x int) int { return x*3 + 1 }
	odd := func(x int) bool { return x%2 != 0 }
	mirror := func(x int) []int { return []int{x, -x} }
	dec := func(x int) int { return x - 1 }

	f := func(raw []int16, parts uint8, cachePos uint8) bool {
		data := make([]int, len(raw))
		for i, v := range raw {
			data[i] = int(v)
		}
		p := int(parts%10) + 1

		r := Parallelize(data, p)
		s1 := Map(r, double)
		if cachePos%3 == 0 {
			s1.Cache()
		}
		s2 := s1.Filter(odd)
		s3 := FlatMap(s2, mirror)
		if cachePos%3 == 1 {
			s3.Cache()
		}
		s4 := Map(s3, dec)

		want := refMap(refFlatMap(refFilter(refMap(data, double), odd), mirror), dec)
		got := s4.Collect()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		// Count must agree with Collect, and a second Collect (replaying
		// the pipeline, or reading the cache) must be identical.
		if s4.Count() != len(want) {
			return false
		}
		return reflect.DeepEqual(s4.Collect(), got) || len(got) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFusedCacheComputesOnceMidChain verifies the Cache() interaction:
// a cache in the middle of a fused chain is a fusion barrier that
// evaluates its upstream exactly once, while downstream stages replay
// from the memoized slices.
func TestFusedCacheComputesOnceMidChain(t *testing.T) {
	var upstream atomic.Int64
	base := Parallelize(ints(100), 4)
	counted := Map(base, func(x int) int {
		upstream.Add(1)
		return x * 2
	}).Cache()
	tail := Map(counted.Filter(func(x int) bool { return x%4 == 0 }), func(x int) int { return x + 1 })

	first := tail.Collect()
	if got := upstream.Load(); got != 100 {
		t.Fatalf("first action computed %d upstream elements, want 100", got)
	}
	_ = tail.Collect()
	_ = tail.Count()
	if got := upstream.Load(); got != 100 {
		t.Errorf("cached upstream recomputed: %d evaluations after three actions", got)
	}
	want := refMap(refFilter(refMap(ints(100), func(x int) int { return x * 2 }),
		func(x int) bool { return x%4 == 0 }), func(x int) int { return x + 1 })
	if !reflect.DeepEqual(first, want) {
		t.Errorf("cached chain mismatch: got %v", first[:min(len(first), 10)])
	}
}

// TestFusedEmptyPartitions drives fused chains whose partitions go empty
// (filter-all, empty source) through every action.
func TestFusedEmptyPartitions(t *testing.T) {
	empty := Parallelize([]int{}, 4)
	if empty.NumPartitions() != 1 {
		t.Errorf("empty dataset partitions = %d, want 1", empty.NumPartitions())
	}
	chain := FlatMap(Map(empty, func(x int) int { return x }).Filter(func(int) bool { return true }),
		func(x int) []int { return []int{x} })
	if got := chain.Collect(); len(got) != 0 {
		t.Errorf("empty chain Collect = %v", got)
	}
	if got := chain.Count(); got != 0 {
		t.Errorf("empty chain Count = %d", got)
	}
	if _, err := chain.Reduce(func(a, b int) int { return a + b }); err != ErrEmpty {
		t.Errorf("empty Reduce err = %v", err)
	}

	// Non-empty source whose filter drops everything: downstream stages
	// see empty partitions but the pipeline still runs.
	none := Parallelize(ints(50), 7).Filter(func(int) bool { return false })
	if got := Map(none, func(x int) int { return x }).Count(); got != 0 {
		t.Errorf("filtered-out Count = %d", got)
	}
	agg := Aggregate(none, func() int { return 0 },
		func(a, x int) int { return a + x }, func(a, b int) int { return a + b })
	if agg != 0 {
		t.Errorf("filtered-out Aggregate = %d", agg)
	}
}

// TestPartitionClampRule pins the engine-wide partition-count rule
// (clampPartitions): Parallelize caps at len(data), wide transformations
// cap at shuffleLimit, results stay correct after clamping.
func TestPartitionClampRule(t *testing.T) {
	if got := Parallelize(ints(3), 100).NumPartitions(); got != 3 {
		t.Errorf("Parallelize clamp = %d, want 3", got)
	}
	if got := Parallelize(ints(100), 0).NumPartitions(); got != defaultPartitions {
		t.Errorf("Parallelize default = %d", got)
	}

	pairs := Map(Parallelize(ints(60), 4), func(x int) Pair[int, int] { return KV(x % 9, 1) })
	huge := ReduceByKey(pairs, 1<<20, func(a, b int) int { return a + b })
	if limit := shuffleLimit(4); huge.NumPartitions() > limit {
		t.Errorf("ReduceByKey partitions = %d, above limit %d", huge.NumPartitions(), limit)
	}
	counts := CollectAsMap(huge)
	for k := 0; k < 9; k++ {
		want := 60 / 9
		if k < 60%9 {
			want++
		}
		if counts[k] != want {
			t.Errorf("clamped ReduceByKey[%d] = %d, want %d", k, counts[k], want)
		}
	}
	if got := GroupByKey(pairs, -7).NumPartitions(); got != 4 {
		t.Errorf("GroupByKey(-7) partitions = %d, want parent 4", got)
	}
}

// pointKey is a struct key of the kind the seed hashKey degenerated on
// (its default branch mixed one constant byte, landing every struct key
// in a single bucket).
type pointKey struct {
	X, Y float64
	Tag  uint8
}

// TestHashKeyStructKeyDistribution is the regression test for the
// hashKey fallback: struct keys must spread roughly evenly.
func TestHashKeyStructKeyDistribution(t *testing.T) {
	const n, buckets = 8000, 8
	hist := make([]int, buckets)
	for i := 0; i < n; i++ {
		k := pointKey{X: float64(i), Y: float64(i % 97), Tag: uint8(i)}
		hist[hashKey(k, buckets)]++
	}
	for b, c := range hist {
		if c < n/buckets/2 || c > n/buckets*3/2 {
			t.Errorf("struct-key bucket %d has %d of %d keys; poor distribution %v", b, c, n, hist)
		}
	}
	// Float keys too (previously also constant-byte hashed).
	histF := make([]int, buckets)
	for i := 0; i < n; i++ {
		histF[hashKey(float64(i)*1.7, buckets)]++
	}
	for b, c := range histF {
		if c < n/buckets/2 || c > n/buckets*3/2 {
			t.Errorf("float-key bucket %d has %d of %d keys: %v", b, c, n, histF)
		}
	}
	if hashKey(pointKey{1, 2, 3}, 16) != hashKey(pointKey{1, 2, 3}, 16) {
		t.Error("struct hash not deterministic in-process")
	}
}

// TestStructKeyedShuffleSpreadsBuckets checks end to end that a shuffle
// over struct keys actually distributes across output partitions instead
// of collapsing into one, and aggregates correctly.
func TestStructKeyedShuffleSpreadsBuckets(t *testing.T) {
	const keys = 64
	var data []Pair[pointKey, int]
	for i := 0; i < 1024; i++ {
		k := pointKey{X: float64(i % keys), Y: float64((i % keys) * 2)}
		data = append(data, KV(k, 1))
	}
	r := Parallelize(data, 8)
	buckets := shuffle(r, 8)
	nonEmpty := 0
	for _, b := range buckets {
		if len(b) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 6 {
		t.Errorf("struct-keyed shuffle used %d of 8 buckets; keys collapsed", nonEmpty)
	}
	counts := CollectAsMap(ReduceByKey(r, 8, func(a, b int) int { return a + b }))
	if len(counts) != keys {
		t.Fatalf("distinct keys = %d, want %d", len(counts), keys)
	}
	for k, c := range counts {
		if c != 1024/keys {
			t.Errorf("key %v count = %d, want %d", k, c, 1024/keys)
		}
	}
}

// TestShuffleExchangeRace runs overlapping shuffles (shared staging-row
// pool, shared executor) from concurrent goroutines; run under -race by
// make stress.
func TestShuffleExchangeRace(t *testing.T) {
	words := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 15; iter++ {
				n := 200 + 50*g + iter
				pairs := Map(Parallelize(ints(n), 5), func(x int) Pair[string, int] {
					return KV(words[x%len(words)], 1)
				})
				counts := CollectAsMap(ReduceByKey(pairs, 4, func(a, b int) int { return a + b }))
				total := 0
				for _, c := range counts {
					total += c
				}
				if total != n {
					t.Errorf("goroutine %d iter %d: shuffled total = %d, want %d", g, iter, total, n)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestFusedActionsRace overlaps fused-pipeline actions (Collect, Count,
// Aggregate) including cached datasets across goroutines; run under
// -race by make stress.
func TestFusedActionsRace(t *testing.T) {
	shared := Map(Parallelize(ints(500), 8), func(x int) int { return x * 2 }).Cache()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 10; iter++ {
				if got := shared.Count(); got != 500 {
					t.Errorf("Count = %d", got)
					return
				}
				sum := Aggregate(shared, func() int { return 0 },
					func(a, x int) int { return a + x }, func(a, b int) int { return a + b })
				if sum != 500*499 {
					t.Errorf("Aggregate = %d, want %d", sum, 500*499)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestShuffledRDDSortedCollect double-checks shuffled iterate semantics:
// collecting a ReduceByKey result twice yields the same multiset.
func TestShuffledRDDSortedCollect(t *testing.T) {
	pairs := Map(Parallelize(ints(97), 6), func(x int) Pair[int, int] { return KV(x % 13, x) })
	r := ReduceByKey(pairs, 0, func(a, b int) int { return a + b })
	norm := func(kvs []Pair[int, int]) []Pair[int, int] {
		out := append([]Pair[int, int](nil), kvs...)
		sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
		return out
	}
	a, b := norm(r.Collect()), norm(r.Collect())
	if !reflect.DeepEqual(a, b) {
		t.Errorf("repeated Collect of shuffled RDD differs: %v vs %v", a, b)
	}
	if len(a) != 13 {
		t.Errorf("distinct keys = %d, want 13", len(a))
	}
}
