package rdd

import (
	"math"
	"math/rand"
	"sort"

	"renaissance/internal/forkjoin"
	"renaissance/internal/lin"
	"renaissance/internal/metrics"
)

// Rating is one (user, item, rating) observation, the input of the als and
// movie-lens benchmarks.
type Rating struct {
	User, Item int
	Value      float64
}

// RatingsGraph is the bipartite user–item rating graph pre-grouped into
// CSR form, built once at workload setup. The seed kernel re-grouped the
// ratings on every ALS call — GroupByKey + CollectAsMap rebuilt two
// hash-maps-of-slices per benchmark iteration — where the alternating
// solves only ever need a per-id adjacency scan. Here each side is three
// flat arrays (lin.CSR) over compacted int32 ids: byUser's row u lists
// (item row, rating) pairs, byItem's row i lists (user row, rating)
// pairs. External ids are compacted in sorted order, so factor-matrix
// row r corresponds to the r-th smallest external id and every
// computation over the graph is deterministic.
type RatingsGraph struct {
	userIDs, itemIDs []int
	userIdx, itemIdx map[int]int32
	byUser, byItem   *lin.CSR
}

// NewRatingsGraph groups the ratings into both CSR orientations. Call it
// once per dataset (benchmark setup), not per training run.
func NewRatingsGraph(ratings []Rating) *RatingsGraph {
	loc := metrics.Acquire()
	// The id compaction and the two CSR builds are the grouping work the
	// seed re-did every iteration; count its allocations where they now
	// happen — once, at setup.
	loc.IncObject()
	loc.AddArray(2 * 3) // two CSRs, three flat arrays each
	g := &RatingsGraph{
		userIdx: make(map[int]int32),
		itemIdx: make(map[int]int32),
	}
	for _, r := range ratings {
		if _, ok := g.userIdx[r.User]; !ok {
			g.userIdx[r.User] = 0
			g.userIDs = append(g.userIDs, r.User)
		}
		if _, ok := g.itemIdx[r.Item]; !ok {
			g.itemIdx[r.Item] = 0
			g.itemIDs = append(g.itemIDs, r.Item)
		}
	}
	sort.Ints(g.userIDs)
	sort.Ints(g.itemIDs)
	for i, id := range g.userIDs {
		g.userIdx[id] = int32(i)
	}
	for i, id := range g.itemIDs {
		g.itemIdx[id] = int32(i)
	}
	uSrc := make([]int32, len(ratings))
	uDst := make([]int32, len(ratings))
	vals := make([]float64, len(ratings))
	for k, r := range ratings {
		uSrc[k] = g.userIdx[r.User]
		uDst[k] = g.itemIdx[r.Item]
		vals[k] = r.Value
	}
	g.byUser = lin.NewCSR(len(g.userIDs), uSrc, uDst, vals)
	// Reuse the buffers transposed for the item side.
	uSrc, uDst = uDst, uSrc
	g.byItem = lin.NewCSR(len(g.itemIDs), uSrc, uDst, vals)
	return g
}

// NumUsers returns the number of distinct users.
func (g *RatingsGraph) NumUsers() int { return len(g.userIDs) }

// NumItems returns the number of distinct items.
func (g *RatingsGraph) NumItems() int { return len(g.itemIDs) }

// NumRatings returns the number of observations.
func (g *RatingsGraph) NumRatings() int { return g.byUser.NumEdges() }

// ALSModel holds the fitted latent factors as dense id-indexed flat
// matrices: row r of Users/Items is the factor vector of the r-th
// smallest external user/item id (the seed stored map[int][]float64 —
// one pointer-chased allocation per id).
type ALSModel struct {
	Rank         int
	Users, Items *lin.Mat
	userIdx      map[int]int32
	itemIDs      []int
}

// ALS fits latent factors by alternating least squares with L2
// regularization: holding the item factors fixed, every user's factor
// vector is the solution of a rank×rank normal-equation system, solved in
// parallel across users, and vice versa — the als benchmark kernel
// (Table 1: "data-parallel, compute-bound"). The ratings are grouped into
// a RatingsGraph internally; callers that train repeatedly over the same
// dataset (the benchmark harness) should build the graph once with
// NewRatingsGraph and call ALSTrain.
func ALS(ratings *RDD[Rating], rank, iterations int, lambda float64, seed int64) (*ALSModel, error) {
	all := ratings.Collect()
	if len(all) == 0 {
		return nil, ErrEmpty
	}
	return ALSTrain(NewRatingsGraph(all), rank, iterations, lambda, seed)
}

// ALSTrain runs the alternating least-squares iterations over a
// pre-grouped rating graph. Factor rows are initialized in sorted-id
// order from the seeded rng (deterministic; the seed kernel initialized
// in map-iteration order, which was not), and every iteration rewrites
// both factor matrices in place: the per-id normal equations
// (Yᵀ·Y + λ·nᵢ·I)·x = Yᵀ·b are accumulated with lower-triangle rank-1
// updates into pooled scratch and solved by in-place Cholesky — the
// system is SPD by construction since λ·nᵢ > 0. Steady-state iterations
// allocate nothing beyond the executor's fixed fork–join overhead.
func ALSTrain(g *RatingsGraph, rank, iterations int, lambda float64, seed int64) (*ALSModel, error) {
	if g == nil || g.NumRatings() == 0 {
		return nil, ErrEmpty
	}
	rng := rand.New(rand.NewSource(seed))
	metrics.Acquire().AddArray(2) // the two factor matrices
	model := &ALSModel{
		Rank:    rank,
		Users:   lin.NewMat(g.NumUsers(), rank),
		Items:   lin.NewMat(g.NumItems(), rank),
		userIdx: g.userIdx,
		itemIDs: g.itemIDs,
	}
	for i := range model.Users.Data {
		model.Users.Data[i] = rng.Float64()
	}
	for i := range model.Items.Data {
		model.Items.Data[i] = rng.Float64()
	}
	for it := 0; it < iterations; it++ {
		solveFactors(g.byUser, model.Users, model.Items, lambda)
		solveFactors(g.byItem, model.Items, model.Users, lambda)
	}
	return model, nil
}

// solveFactors recomputes every row of target from its normal equations,
// holding other fixed: row u gathers its CSR adjacency (counterpart rows
// y and ratings b), accumulates A = Σ y·yᵀ (lower triangle only) and
// x = Σ b·y, adds the λ·n ridge, and Cholesky-solves in place — x
// accumulates directly in target's row, so the only working memory is
// the rank×rank scratch matrix, pooled per executor chunk. Rows are
// independent (target and other are distinct matrices), so the
// parallel-for needs no synchronization beyond the join barrier.
func solveFactors(adj *lin.CSR, target, other *lin.Mat, lambda float64) {
	rank := target.Cols
	forkjoin.For(adj.NumRows(), 0, func(lo, hi int) {
		s := lin.GetScratch()
		loc := metrics.Acquire()
		for u := lo; u < hi; u++ {
			cols, vals := adj.RowCols(u), adj.RowVals(u)
			loc.AddIDynamic(int64(len(cols)))
			a := s.MatN(rank)
			x := target.Row(u)
			clear(x)
			for k, c := range cols {
				y := other.Row(int(c))
				lin.Syr(a, 1, y)
				lin.Axpy(vals[k], y, x)
			}
			reg := lambda * float64(len(cols))
			for i := 0; i < rank; i++ {
				a.Data[i*rank+i] += reg
			}
			if !lin.CholeskySolve(a, x, x) {
				// Seed semantics: a numerically singular system yields the
				// zero vector (cannot happen while λ·n > 0, but the guard
				// keeps the contract for λ = 0 callers).
				clear(x)
			}
		}
		lin.PutScratch(s)
	})
}

// UserFactor returns the factor row of the external user id.
func (m *ALSModel) UserFactor(user int) ([]float64, bool) {
	r, ok := m.userIdx[user]
	if !ok {
		return nil, false
	}
	return m.Users.Row(int(r)), true
}

// ItemFactor returns the factor row of the external item id.
func (m *ALSModel) ItemFactor(item int) ([]float64, bool) {
	var idx int32 = -1
	// itemIDs is sorted; binary-search the compacted row.
	lo, hi := 0, len(m.itemIDs)
	for lo < hi {
		mid := (lo + hi) / 2
		if m.itemIDs[mid] < item {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(m.itemIDs) && m.itemIDs[lo] == item {
		idx = int32(lo)
	}
	if idx < 0 {
		return nil, false
	}
	return m.Items.Row(int(idx)), true
}

// Predict returns the model's rating estimate for (user, item); unknown
// ids predict 0.
func (m *ALSModel) Predict(user, item int) float64 {
	u, okU := m.UserFactor(user)
	v, okI := m.ItemFactor(item)
	if !okU || !okI {
		return 0
	}
	return lin.Dot(u, v)
}

// RMSE computes the root-mean-square error of the model on the ratings.
func (m *ALSModel) RMSE(ratings []Rating) float64 {
	if len(ratings) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range ratings {
		d := m.Predict(r.User, r.Item) - r.Value
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(ratings)))
}

// Recommend returns the top-n unrated items for the user, by predicted
// rating (the movie-lens recommender step). Ties break toward the lower
// item id, as in the seed kernel.
func (m *ALSModel) Recommend(user int, rated map[int]bool, n int) []int {
	type scored struct {
		item  int
		score float64
	}
	u, okU := m.UserFactor(user)
	var cands []scored
	for r, item := range m.itemIDs {
		if rated[item] {
			continue
		}
		score := 0.0
		if okU {
			score = lin.Dot(u, m.Items.Row(r))
		}
		cands = append(cands, scored{item, score})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].item < cands[j].item
	})
	if n > len(cands) {
		n = len(cands)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = cands[i].item
	}
	return out
}

func randomVector(rng *rand.Rand, n int) []float64 {
	metrics.IncArray()
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()
	}
	return v
}

func newMatrix(n int) [][]float64 {
	metrics.IncArray()
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	return m
}

// SolveLinearSystem solves a·x = b by Gaussian elimination with partial
// pivoting. It reports false for (numerically) singular systems. The
// matrix a is modified in place. The ALS solver now uses lin.CholeskySolve
// (the normal equations are SPD, and Cholesky halves the flops); this
// general solver remains the package's dense-solve API for non-symmetric
// systems and the differential baseline the Cholesky path is
// property-tested against.
func SolveLinearSystem(a [][]float64, b []float64) ([]float64, bool) {
	n := len(a)
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, false
		}
		a[col], a[pivot] = a[pivot], a[col]
		x[col], x[pivot] = x[pivot], x[col]
		// Eliminate.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	// Back-substitute.
	for col := n - 1; col >= 0; col-- {
		sum := x[col]
		for c := col + 1; c < n; c++ {
			sum -= a[col][c] * x[c]
		}
		x[col] = sum / a[col][col]
	}
	return x, true
}
