package rdd

import (
	"math"
	"math/rand"
	"sort"

	"renaissance/internal/metrics"
)

// Rating is one (user, item, rating) observation, the input of the als and
// movie-lens benchmarks.
type Rating struct {
	User, Item int
	Value      float64
}

// ALSModel holds the fitted latent factors.
type ALSModel struct {
	Rank        int
	UserFactors map[int][]float64
	ItemFactors map[int][]float64
}

// ALS fits latent factors by alternating least squares with L2
// regularization: holding the item factors fixed, every user's factor
// vector is the solution of a rank×rank normal-equation system, solved in
// parallel across users via the RDD machinery, and vice versa — the als
// benchmark kernel (Table 1: "data-parallel, compute-bound").
func ALS(ratings *RDD[Rating], rank, iterations int, lambda float64, seed int64) (*ALSModel, error) {
	all := ratings.Collect()
	if len(all) == 0 {
		return nil, ErrEmpty
	}
	ratings.Cache()

	byUser := GroupByKey(Map(ratings, func(r Rating) Pair[int, Rating] {
		return KV(r.User, r)
	}), 0)
	byItem := GroupByKey(Map(ratings, func(r Rating) Pair[int, Rating] {
		return KV(r.Item, r)
	}), 0)
	userRatings := CollectAsMap(byUser)
	itemRatings := CollectAsMap(byItem)

	rng := rand.New(rand.NewSource(seed))
	model := &ALSModel{
		Rank:        rank,
		UserFactors: make(map[int][]float64, len(userRatings)),
		ItemFactors: make(map[int][]float64, len(itemRatings)),
	}
	for u := range userRatings {
		model.UserFactors[u] = randomVector(rng, rank)
	}
	for i := range itemRatings {
		model.ItemFactors[i] = randomVector(rng, rank)
	}

	for it := 0; it < iterations; it++ {
		solveSide(userRatings, model.UserFactors, model.ItemFactors, rank, lambda,
			func(r Rating) int { return r.Item })
		solveSide(itemRatings, model.ItemFactors, model.UserFactors, rank, lambda,
			func(r Rating) int { return r.User })
	}
	return model, nil
}

// solveSide updates every factor vector on one side of the bipartite
// rating graph, in parallel.
func solveSide(ratingsOf map[int][]Rating, target, other map[int][]float64,
	rank int, lambda float64, counterpart func(Rating) int) {

	ids := make([]int, 0, len(ratingsOf))
	for id := range ratingsOf {
		ids = append(ids, id)
	}
	sort.Ints(ids) // deterministic iteration order
	factors := parMapSlice(ids, func(id int) []float64 {
		rs := ratingsOf[id]
		// Normal equations: (Y^T Y + λ n I) x = Y^T b.
		a := newMatrix(rank)
		b := make([]float64, rank)
		for _, r := range rs {
			y := other[counterpart(r)]
			for i := 0; i < rank; i++ {
				b[i] += r.Value * y[i]
				for j := 0; j < rank; j++ {
					a[i][j] += y[i] * y[j]
				}
			}
		}
		reg := lambda * float64(len(rs))
		for i := 0; i < rank; i++ {
			a[i][i] += reg
		}
		x, ok := SolveLinearSystem(a, b)
		if !ok {
			return make([]float64, rank)
		}
		return x
	})
	for i, id := range ids {
		target[id] = factors[i]
	}
}

func randomVector(rng *rand.Rand, n int) []float64 {
	metrics.IncArray()
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()
	}
	return v
}

func newMatrix(n int) [][]float64 {
	metrics.IncArray()
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	return m
}

// Predict returns the model's rating estimate for (user, item); unknown
// ids predict 0.
func (m *ALSModel) Predict(user, item int) float64 {
	u, okU := m.UserFactors[user]
	v, okI := m.ItemFactors[item]
	if !okU || !okI {
		return 0
	}
	dot := 0.0
	for i := range u {
		dot += u[i] * v[i]
	}
	return dot
}

// RMSE computes the root-mean-square error of the model on the ratings.
func (m *ALSModel) RMSE(ratings []Rating) float64 {
	if len(ratings) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range ratings {
		d := m.Predict(r.User, r.Item) - r.Value
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(ratings)))
}

// Recommend returns the top-n unrated items for the user, by predicted
// rating (the movie-lens recommender step).
func (m *ALSModel) Recommend(user int, rated map[int]bool, n int) []int {
	type scored struct {
		item  int
		score float64
	}
	var cands []scored
	for item := range m.ItemFactors {
		if rated[item] {
			continue
		}
		cands = append(cands, scored{item, m.Predict(user, item)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].item < cands[j].item
	})
	if n > len(cands) {
		n = len(cands)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = cands[i].item
	}
	return out
}

// SolveLinearSystem solves a·x = b by Gaussian elimination with partial
// pivoting. It reports false for (numerically) singular systems. The
// matrix a is modified in place.
func SolveLinearSystem(a [][]float64, b []float64) ([]float64, bool) {
	n := len(a)
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, false
		}
		a[col], a[pivot] = a[pivot], a[col]
		x[col], x[pivot] = x[pivot], x[col]
		// Eliminate.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	// Back-substitute.
	for col := n - 1; col >= 0; col-- {
		sum := x[col]
		for c := col + 1; c < n; c++ {
			sum -= a[col][c] * x[c]
		}
		x[col] = sum / a[col][col]
	}
	return x, true
}

// PageRank runs the iterative PageRank computation over the edge list with
// the given damping and iteration count — the page-rank benchmark kernel
// (Table 1: "data-parallel, atomics"). It returns the rank of every vertex
// that has at least one outgoing or incoming edge.
func PageRank(edges *RDD[Pair[int, int]], iterations int, damping float64) map[int]float64 {
	edges.Cache()
	links := GroupByKey(edges, 0).Cache()

	// All vertices (sources and sinks).
	metrics.IncObject()
	vertices := make(map[int]bool)
	for _, e := range edges.Collect() {
		vertices[e.Key] = true
		vertices[e.Value] = true
	}

	ranks := make(map[int]float64, len(vertices))
	for v := range vertices {
		ranks[v] = 1.0
	}

	for it := 0; it < iterations; it++ {
		// Contributions via flatMap over the link partitions.
		contribs := FlatMap(links, func(kv Pair[int, []int]) []Pair[int, float64] {
			r := ranks[kv.Key]
			share := r / float64(len(kv.Value))
			metrics.IncArray()
			out := make([]Pair[int, float64], len(kv.Value))
			for i, dst := range kv.Value {
				out[i] = KV(dst, share)
			}
			return out
		})
		summed := CollectAsMap(ReduceByKey(contribs, 0, func(a, b float64) float64 { return a + b }))
		for v := range vertices {
			ranks[v] = (1 - damping) + damping*summed[v]
		}
	}
	return ranks
}
