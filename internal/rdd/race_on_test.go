//go:build race

package rdd

// raceEnabled reports whether the race detector is compiled in. Alloc
// and timing-sensitive regression tests skip under -race: instrumented
// builds allocate shadow state that would trip testing.AllocsPerRun.
const raceEnabled = true
