package rdd

// The seed ML kernels, kept verbatim as in-test differential baselines
// and the "seed" side of the BENCH_ml.txt benchmark pairs (the PR 4/6/8
// convention: the replaced algorithm survives in the test binary so the
// comparison outlives future edits to the live path). These are the
// map-keyed, pointer-chasing implementations that internal/lin's flat
// layout replaced: map[int][]float64 ALS factors re-grouped per call,
// per-iteration FlatMap/ReduceByKey/CollectAsMap PageRank, nested-slice
// aggregation tables. Only the names carry a seed prefix; the bodies are
// unchanged except where they call each other.

import (
	"math"
	"math/rand"
	"sort"

	"renaissance/internal/metrics"
)

// seedALSModel holds the fitted latent factors (seed layout).
type seedALSModel struct {
	Rank        int
	UserFactors map[int][]float64
	ItemFactors map[int][]float64
}

// seedALS is the seed ALS kernel: the ratings are re-grouped with
// GroupByKey+CollectAsMap on every call, factors are map-keyed slices
// initialized in map-iteration order, and each normal-equation system is
// solved with pivoted Gaussian elimination.
func seedALS(ratings *RDD[Rating], rank, iterations int, lambda float64, seed int64) (*seedALSModel, error) {
	all := ratings.Collect()
	if len(all) == 0 {
		return nil, ErrEmpty
	}
	ratings.Cache()

	byUser := GroupByKey(Map(ratings, func(r Rating) Pair[int, Rating] {
		return KV(r.User, r)
	}), 0)
	byItem := GroupByKey(Map(ratings, func(r Rating) Pair[int, Rating] {
		return KV(r.Item, r)
	}), 0)
	userRatings := CollectAsMap(byUser)
	itemRatings := CollectAsMap(byItem)

	rng := rand.New(rand.NewSource(seed))
	model := &seedALSModel{
		Rank:        rank,
		UserFactors: make(map[int][]float64, len(userRatings)),
		ItemFactors: make(map[int][]float64, len(itemRatings)),
	}
	for u := range userRatings {
		model.UserFactors[u] = randomVector(rng, rank)
	}
	for i := range itemRatings {
		model.ItemFactors[i] = randomVector(rng, rank)
	}

	for it := 0; it < iterations; it++ {
		seedSolveSide(userRatings, model.UserFactors, model.ItemFactors, rank, lambda,
			func(r Rating) int { return r.Item })
		seedSolveSide(itemRatings, model.ItemFactors, model.UserFactors, rank, lambda,
			func(r Rating) int { return r.User })
	}
	return model, nil
}

// seedSolveSide updates every factor vector on one side of the bipartite
// rating graph, in parallel (seed algorithm).
func seedSolveSide(ratingsOf map[int][]Rating, target, other map[int][]float64,
	rank int, lambda float64, counterpart func(Rating) int) {

	ids := make([]int, 0, len(ratingsOf))
	for id := range ratingsOf {
		ids = append(ids, id)
	}
	sort.Ints(ids) // deterministic iteration order
	factors := parMapSlice(ids, func(id int) []float64 {
		rs := ratingsOf[id]
		// Normal equations: (Y^T Y + λ n I) x = Y^T b.
		a := newMatrix(rank)
		b := make([]float64, rank)
		for _, r := range rs {
			y := other[counterpart(r)]
			for i := 0; i < rank; i++ {
				b[i] += r.Value * y[i]
				for j := 0; j < rank; j++ {
					a[i][j] += y[i] * y[j]
				}
			}
		}
		reg := lambda * float64(len(rs))
		for i := 0; i < rank; i++ {
			a[i][i] += reg
		}
		x, ok := SolveLinearSystem(a, b)
		if !ok {
			return make([]float64, rank)
		}
		return x
	})
	for i, id := range ids {
		target[id] = factors[i]
	}
}

// seedPredict returns the seed model's rating estimate for (user, item).
func (m *seedALSModel) Predict(user, item int) float64 {
	u, okU := m.UserFactors[user]
	v, okI := m.ItemFactors[item]
	if !okU || !okI {
		return 0
	}
	dot := 0.0
	for i := range u {
		dot += u[i] * v[i]
	}
	return dot
}

// RMSE computes the root-mean-square error of the seed model.
func (m *seedALSModel) RMSE(ratings []Rating) float64 {
	if len(ratings) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range ratings {
		d := m.Predict(r.User, r.Item) - r.Value
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(ratings)))
}

// seedPageRank is the seed kernel: link groups re-derived by GroupByKey,
// and every iteration runs a FlatMap (one allocated pair per edge), a
// ReduceByKey shuffle, and a CollectAsMap into a fresh rank map. Rank
// mass at dangling (sink) vertices is silently dropped — the bug the
// live kernel fixes by redistribution.
func seedPageRank(edges *RDD[Pair[int, int]], iterations int, damping float64) map[int]float64 {
	edges.Cache()
	links := GroupByKey(edges, 0).Cache()

	// All vertices (sources and sinks).
	metrics.IncObject()
	vertices := make(map[int]bool)
	for _, e := range edges.Collect() {
		vertices[e.Key] = true
		vertices[e.Value] = true
	}

	ranks := make(map[int]float64, len(vertices))
	for v := range vertices {
		ranks[v] = 1.0
	}

	for it := 0; it < iterations; it++ {
		// Contributions via flatMap over the link partitions.
		contribs := FlatMap(links, func(kv Pair[int, []int]) []Pair[int, float64] {
			r := ranks[kv.Key]
			share := r / float64(len(kv.Value))
			metrics.IncArray()
			out := make([]Pair[int, float64], len(kv.Value))
			for i, dst := range kv.Value {
				out[i] = KV(dst, share)
			}
			return out
		})
		summed := CollectAsMap(ReduceByKey(contribs, 0, func(a, b float64) float64 { return a + b }))
		for v := range vertices {
			ranks[v] = (1 - damping) + damping*summed[v]
		}
	}
	return ranks
}

// seedLogisticRegression is the seed kernel: a per-iteration parallel
// tree-aggregate allocating a fresh gradient slice per partition, and —
// the bug the live kernel surfaces as ErrBadInput — dimension-mismatched
// points silently dropped from the gradient.
func seedLogisticRegression(points *RDD[LabeledPoint], iterations int, learningRate float64) ([]float64, error) {
	first := points.Collect()
	if len(first) == 0 {
		return nil, ErrEmpty
	}
	dim := len(first[0].Features)
	points.Cache()

	weights := make([]float64, dim)
	n := float64(len(first))
	for it := 0; it < iterations; it++ {
		w := weights
		grad := Aggregate(points,
			func() []float64 { metrics.IncArray(); return make([]float64, dim) },
			func(acc []float64, p LabeledPoint) []float64 {
				if len(p.Features) != dim {
					return acc
				}
				z := 0.0
				for j, x := range p.Features {
					z += w[j] * x
				}
				err := sigmoid(z) - float64(p.Label)
				for j, x := range p.Features {
					acc[j] += err * x
				}
				return acc
			},
			func(a, b []float64) []float64 {
				for j := range a {
					a[j] += b[j]
				}
				return a
			})
		for j := range weights {
			weights[j] -= learningRate * grad[j] / n
		}
	}
	return weights, nil
}

// seedNaiveBayes is the seed kernel: per-partition accumulator structs
// of nested slices.
func seedNaiveBayes(points *RDD[LabeledPoint], numClasses, numFeatures int) (*NaiveBayesModel, error) {
	type acc struct {
		classCounts   []float64
		featureTotals [][]float64
	}
	zero := func() *acc {
		metrics.IncObject()
		a := &acc{
			classCounts:   make([]float64, numClasses),
			featureTotals: make([][]float64, numClasses),
		}
		for c := range a.featureTotals {
			a.featureTotals[c] = make([]float64, numFeatures)
		}
		return a
	}
	res := Aggregate(points, zero,
		func(a *acc, p LabeledPoint) *acc {
			if p.Label < 0 || p.Label >= numClasses || len(p.Features) != numFeatures {
				return a
			}
			a.classCounts[p.Label]++
			for j, x := range p.Features {
				a.featureTotals[p.Label][j] += x
			}
			return a
		},
		func(a, b *acc) *acc {
			for c := range a.classCounts {
				a.classCounts[c] += b.classCounts[c]
				for j := range a.featureTotals[c] {
					a.featureTotals[c][j] += b.featureTotals[c][j]
				}
			}
			return a
		})

	total := 0.0
	for _, c := range res.classCounts {
		total += c
	}
	if total == 0 {
		return nil, ErrEmpty
	}
	m := &NaiveBayesModel{
		ClassLogPrior: make([]float64, numClasses),
		FeatureLogPr:  make([][]float64, numClasses),
	}
	for c := 0; c < numClasses; c++ {
		m.ClassLogPrior[c] = math.Log((res.classCounts[c] + 1) / (total + float64(numClasses)))
		m.FeatureLogPr[c] = make([]float64, numFeatures)
		rowSum := 0.0
		for _, v := range res.featureTotals[c] {
			rowSum += v
		}
		for j, v := range res.featureTotals[c] {
			m.FeatureLogPr[c][j] = math.Log((v + 1) / (rowSum + float64(numFeatures)))
		}
	}
	return m, nil
}

// seedChiSquare is the seed kernel: three-level nested contingency
// tables allocated per partition.
func seedChiSquare(points *RDD[LabeledPoint], numClasses, numFeatures, numBuckets int) []float64 {
	// Contingency tables: [feature][bucket][class] counts.
	type tables [][][]float64
	zero := func() tables {
		metrics.IncObject()
		t := make(tables, numFeatures)
		for f := range t {
			t[f] = make([][]float64, numBuckets)
			for b := range t[f] {
				t[f][b] = make([]float64, numClasses)
			}
		}
		return t
	}
	res := Aggregate(points, zero,
		func(t tables, p LabeledPoint) tables {
			if p.Label < 0 || p.Label >= numClasses {
				return t
			}
			for f := 0; f < numFeatures && f < len(p.Features); f++ {
				b := int(p.Features[f])
				if b < 0 {
					b = 0
				}
				if b >= numBuckets {
					b = numBuckets - 1
				}
				t[f][b][p.Label]++
			}
			return t
		},
		func(a, b tables) tables {
			for f := range a {
				for bk := range a[f] {
					for c := range a[f][bk] {
						a[f][bk][c] += b[f][bk][c]
					}
				}
			}
			return a
		})

	stats := make([]float64, numFeatures)
	for f := 0; f < numFeatures; f++ {
		rowTotals := make([]float64, numBuckets)
		colTotals := make([]float64, numClasses)
		grand := 0.0
		for b := 0; b < numBuckets; b++ {
			for c := 0; c < numClasses; c++ {
				v := res[f][b][c]
				rowTotals[b] += v
				colTotals[c] += v
				grand += v
			}
		}
		if grand == 0 {
			continue
		}
		chi := 0.0
		for b := 0; b < numBuckets; b++ {
			for c := 0; c < numClasses; c++ {
				expected := rowTotals[b] * colTotals[c] / grand
				if expected > 0 {
					d := res[f][b][c] - expected
					chi += d * d / expected
				}
			}
		}
		stats[f] = chi
	}
	return stats
}

// seedDecisionTree is the seed kernel: tree growth over []LabeledPoint
// with per-node left/right point-struct copies.
func seedDecisionTree(points *RDD[LabeledPoint], numClasses, maxDepth, minLeaf int) (*TreeNode, error) {
	data := points.Collect()
	if len(data) == 0 {
		return nil, ErrEmpty
	}
	if minLeaf < 1 {
		minLeaf = 1
	}
	return seedGrowTree(data, numClasses, maxDepth, minLeaf), nil
}

func seedGrowTree(data []LabeledPoint, numClasses, depth, minLeaf int) *TreeNode {
	counts := make([]int, numClasses)
	for _, p := range data {
		if p.Label >= 0 && p.Label < numClasses {
			counts[p.Label]++
		}
	}
	majority, best := 0, -1
	pure := true
	for c, n := range counts {
		if n > best {
			majority, best = c, n
		}
		if n != 0 && n != len(data) {
			pure = false
		}
	}
	if depth <= 1 || pure || len(data) < 2*minLeaf {
		metrics.IncObject()
		return &TreeNode{Prediction: majority}
	}

	numFeatures := len(data[0].Features)
	bestGini := math.Inf(1)
	bestFeature, bestThreshold := -1, 0.0

	// Histogram split search per feature, computed in parallel over
	// feature chunks (the data-parallel inner loop of MLlib's tree
	// trainer).
	type split struct {
		gini      float64
		feature   int
		threshold float64
	}
	featureIdx := make([]int, numFeatures)
	for i := range featureIdx {
		featureIdx[i] = i
	}
	results := parMapSlice(featureIdx, func(f int) split {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, p := range data {
			v := p.Features[f]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi <= lo {
			return split{gini: math.Inf(1)}
		}
		// Class histogram per bin.
		var hist [treeHistogramBins][]int
		for b := range hist {
			hist[b] = make([]int, numClasses)
		}
		binWidth := (hi - lo) / treeHistogramBins
		for _, p := range data {
			b := int((p.Features[f] - lo) / binWidth)
			if b >= treeHistogramBins {
				b = treeHistogramBins - 1
			}
			hist[b][p.Label]++
		}
		bestLocal := split{gini: math.Inf(1)}
		leftCounts := make([]int, numClasses)
		leftN := 0
		total := len(data)
		for b := 0; b < treeHistogramBins-1; b++ {
			for c, n := range hist[b] {
				leftCounts[c] += n
				leftN += n
			}
			rightN := total - leftN
			if leftN == 0 || rightN == 0 {
				continue
			}
			gl, gr := 1.0, 1.0
			for c := 0; c < numClasses; c++ {
				pl := float64(leftCounts[c]) / float64(leftN)
				pr := float64(counts[c]-leftCounts[c]) / float64(rightN)
				gl -= pl * pl
				gr -= pr * pr
			}
			weighted := (float64(leftN)*gl + float64(rightN)*gr) / float64(total)
			if weighted < bestLocal.gini {
				bestLocal = split{weighted, f, lo + binWidth*float64(b+1)}
			}
		}
		return bestLocal
	})
	for _, s := range results {
		if s.gini < bestGini {
			bestGini, bestFeature, bestThreshold = s.gini, s.feature, s.threshold
		}
	}
	if bestFeature < 0 {
		metrics.IncObject()
		return &TreeNode{Prediction: majority}
	}

	metrics.IncArray()
	var left, right []LabeledPoint
	for _, p := range data {
		if p.Features[bestFeature] <= bestThreshold {
			left = append(left, p)
		} else {
			right = append(right, p)
		}
	}
	if len(left) < minLeaf || len(right) < minLeaf {
		metrics.IncObject()
		return &TreeNode{Prediction: majority}
	}
	metrics.IncObject()
	return &TreeNode{
		Feature:   bestFeature,
		Threshold: bestThreshold,
		Left:      seedGrowTree(left, numClasses, depth-1, minLeaf),
		Right:     seedGrowTree(right, numClasses, depth-1, minLeaf),
	}
}
