// Error-surfacing actions. The legacy actions (Collect, Count, Reduce,
// Aggregate) follow the fork–join discipline of re-panicking a partition
// task's failure at the join; these variants run the same fused pipelines
// through forkjoin.ForE and return the first failure as a *forkjoin.
// TaskError instead. A failing partition cancels its unclaimed siblings,
// so the action returns promptly without leaking executor helpers.
//
// A panic inside a shuffle (wide dependency) poisons that shuffle's
// sync.Once: the exchange is not retried, and downstream partitions that
// need its buckets fail in turn. That is deliberate degradation — the
// action surfaces an error and every executor unwinds — rather than a
// partial silent result.
package rdd

import (
	"renaissance/internal/forkjoin"
	"renaissance/internal/metrics"
)

// collectPartitionsE evaluates every partition like collectPartitions,
// returning the first partition failure instead of panicking.
func collectPartitionsE[T any](r *RDD[T]) ([][]T, error) {
	metrics.IncArray()
	out := make([][]T, r.numPartitions)
	err := forkjoin.ForE(r.numPartitions, 1, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			out[p] = r.partition(p)
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CollectE evaluates the dataset and returns all elements, surfacing a
// partition panic as an error.
func (r *RDD[T]) CollectE() ([]T, error) {
	parts, err := collectPartitionsE(r)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	metrics.IncArray()
	out := make([]T, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// CountE counts elements like Count, surfacing a partition panic as an
// error.
func (r *RDD[T]) CountE() (int, error) {
	counts := make([]int, r.numPartitions)
	err := forkjoin.ForE(r.numPartitions, 1, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			metrics.IncMethod()
			n := 0
			r.run(p, func(T) bool { n++; return true })
			counts[p] = n
		}
	})
	if err != nil {
		return 0, err
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	return total, nil
}

// ReduceE folds all elements like Reduce, surfacing a partition panic as
// an error (ErrEmpty still reports an empty dataset).
func (r *RDD[T]) ReduceE(fn func(T, T) T) (T, error) {
	type partial struct {
		acc  T
		have bool
	}
	partials := make([]partial, r.numPartitions)
	var zero T
	err := forkjoin.ForE(r.numPartitions, 1, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			metrics.IncMethod()
			loc := metrics.Acquire()
			var acc T
			have := false
			r.run(p, func(x T) bool {
				if !have {
					acc, have = x, true
					return true
				}
				loc.IncIDynamic()
				acc = fn(acc, x)
				return true
			})
			partials[p] = partial{acc, have}
		}
	})
	if err != nil {
		return zero, err
	}
	acc, have := zero, false
	for _, pt := range partials {
		if !pt.have {
			continue
		}
		if !have {
			acc, have = pt.acc, true
			continue
		}
		metrics.IncIDynamic()
		acc = fn(acc, pt.acc)
	}
	if !have {
		return acc, ErrEmpty
	}
	return acc, nil
}

// AggregateE folds like Aggregate, surfacing a partition panic as an
// error.
func AggregateE[T, A any](r *RDD[T], zero func() A, seqOp func(A, T) A, combOp func(A, A) A) (A, error) {
	partials := make([]A, r.numPartitions)
	err := forkjoin.ForE(r.numPartitions, 1, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			metrics.IncMethod()
			loc := metrics.Acquire()
			loc.IncIDynamic()
			acc := zero()
			r.run(p, func(x T) bool {
				loc.IncIDynamic()
				acc = seqOp(acc, x)
				return true
			})
			partials[p] = acc
		}
	})
	var out A
	if err != nil {
		return out, err
	}
	metrics.IncIDynamic()
	out = zero()
	for _, p := range partials {
		metrics.IncIDynamic()
		out = combOp(out, p)
	}
	return out, nil
}
