// Error-surfacing actions. The legacy actions (Collect, Count, Reduce,
// Aggregate) follow the fork–join discipline of re-panicking a partition
// task's failure at the join; these variants run the same fused pipelines
// through the recovery engine (runParts) and return the first *persistent*
// failure as a *forkjoin.TaskError instead. A partition panic — user code,
// a nested shuffle, an injected chaos fault — no longer fails the action
// outright: the partition is recomputed from its lineage under the
// per-partition retry budget (SetTaskRetries), and only when the budget is
// spent does the final TaskError surface. A persistently failing partition
// cancels its unclaimed siblings, so the action still returns promptly
// without leaking executor helpers.
//
// A panic inside a shuffle (wide dependency) no longer poisons the
// exchange: the failed attempt's staging is discarded, and the next
// consumer retries the whole exchange under a fresh epoch (see
// exchange.ensure in lineage.go). Only persistent failure — every retry
// exhausted — degrades to the pre-recovery behavior of one error
// surfacing from the enclosing action.
package rdd

import (
	"renaissance/internal/metrics"
)

// collectPartitionsE evaluates every partition like collectPartitions
// with per-partition recovery (and straggler speculation, when enabled),
// returning a persistent partition failure instead of panicking.
func collectPartitionsE[T any](r *RDD[T]) ([][]T, error) {
	return runParts(r.numPartitions, true, func(ctx *taskCtx, p int) []T {
		return r.partitionCtx(ctx, p)
	}, nil)
}

// CollectE evaluates the dataset and returns all elements, surfacing a
// persistent partition failure as an error.
func (r *RDD[T]) CollectE() ([]T, error) {
	parts, err := collectPartitionsE(r)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	metrics.IncArray()
	out := make([]T, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// CountE counts elements like Count, surfacing a persistent partition
// failure as an error.
func (r *RDD[T]) CountE() (int, error) {
	counts, err := runParts(r.numPartitions, true, func(ctx *taskCtx, p int) int {
		metrics.IncMethod()
		n := 0
		r.run(p, guardSink(ctx, func(T) bool { n++; return true }))
		return n
	}, nil)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	return total, nil
}

// ReduceE folds all elements like Reduce, surfacing a persistent
// partition failure as an error (ErrEmpty still reports an empty
// dataset).
func (r *RDD[T]) ReduceE(fn func(T, T) T) (T, error) {
	type partial struct {
		acc  T
		have bool
	}
	var zero T
	partials, err := runParts(r.numPartitions, true, func(ctx *taskCtx, p int) partial {
		metrics.IncMethod()
		loc := metrics.Acquire()
		var acc T
		have := false
		r.run(p, guardSink(ctx, func(x T) bool {
			if !have {
				acc, have = x, true
				return true
			}
			loc.IncIDynamic()
			acc = fn(acc, x)
			return true
		}))
		return partial{acc, have}
	}, nil)
	if err != nil {
		return zero, err
	}
	acc, have := zero, false
	for _, pt := range partials {
		if !pt.have {
			continue
		}
		if !have {
			acc, have = pt.acc, true
			continue
		}
		metrics.IncIDynamic()
		acc = fn(acc, pt.acc)
	}
	if !have {
		return acc, ErrEmpty
	}
	return acc, nil
}

// AggregateE folds like Aggregate, surfacing a persistent partition
// failure as an error.
func AggregateE[T, A any](r *RDD[T], zero func() A, seqOp func(A, T) A, combOp func(A, A) A) (A, error) {
	partials, err := runParts(r.numPartitions, true, func(ctx *taskCtx, p int) A {
		metrics.IncMethod()
		loc := metrics.Acquire()
		loc.IncIDynamic()
		acc := zero()
		r.run(p, guardSink(ctx, func(x T) bool {
			loc.IncIDynamic()
			acc = seqOp(acc, x)
			return true
		}))
		return acc
	}, nil)
	var out A
	if err != nil {
		return out, err
	}
	metrics.IncIDynamic()
	out = zero()
	for _, p := range partials {
		metrics.IncIDynamic()
		out = combOp(out, p)
	}
	return out, nil
}
