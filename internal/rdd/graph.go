package rdd

import (
	"sort"

	"renaissance/internal/forkjoin"
	"renaissance/internal/lin"
	"renaissance/internal/metrics"
)

// Graph is a directed graph compacted into a CSR edge array, built once
// at workload setup — the flat-memory substrate of the page-rank kernel
// (Table 1: "data-parallel, atomics"). The seed kernel kept the graph as
// an RDD of pairs and re-derived everything per iteration: a FlatMap
// allocating one contribution pair per edge, a ReduceByKey shuffle, and
// a CollectAsMap rebuilding a hash map of ranks. Here the adjacency is
// three flat arrays scanned sequentially, vertex ids are compacted in
// sorted order (ranks live in dense []float64, not map[int]float64), and
// the per-iteration state is two dense vectors.
type Graph struct {
	ids      []int
	idx      map[int]int32
	out      *lin.CSR
	dangling []int32 // vertices with no outgoing edge
}

// NewGraph compacts the edge list into CSR adjacency. Entries keep input
// order (stable counting sort), so rank accumulation is deterministic.
func NewGraph(edges []Pair[int, int]) *Graph {
	loc := metrics.Acquire()
	loc.IncObject()
	loc.AddArray(3) // the CSR's flat arrays
	g := &Graph{idx: make(map[int]int32)}
	add := func(v int) {
		if _, ok := g.idx[v]; !ok {
			g.idx[v] = 0
			g.ids = append(g.ids, v)
		}
	}
	for _, e := range edges {
		add(e.Key)
		add(e.Value)
	}
	sort.Ints(g.ids)
	for i, id := range g.ids {
		g.idx[id] = int32(i)
	}
	src := make([]int32, len(edges))
	dst := make([]int32, len(edges))
	for k, e := range edges {
		src[k] = g.idx[e.Key]
		dst[k] = g.idx[e.Value]
	}
	g.out = lin.NewCSR(len(g.ids), src, dst, nil)
	for v := 0; v < g.out.NumRows(); v++ {
		if g.out.Degree(v) == 0 {
			g.dangling = append(g.dangling, int32(v))
		}
	}
	return g
}

// GraphFrom collects an edge RDD into a Graph.
func GraphFrom(edges *RDD[Pair[int, int]]) *Graph {
	return NewGraph(edges.Collect())
}

// NumVertices returns the number of distinct vertices.
func (g *Graph) NumVertices() int { return len(g.ids) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return g.out.NumEdges() }

// prParts is the fixed partition count of the PageRank scatter phase.
// It is fixed (not GOMAXPROCS-derived) so the accumulator merge order —
// and therefore every floating-point result — is identical at any -cpu
// setting; it matches the engine's defaultPartitions.
const prParts = defaultPartitions

// prState is the per-run PageRank working set: the rank vectors and the
// [partition][vertex] dense accumulator matrix, allocated once per
// PageRank call and reused across iterations (the seed allocated one
// pair per edge plus shuffle buckets plus a rank map per iteration).
type prState struct {
	g          *Graph
	damping    float64
	ranks, out []float64
	acc        *lin.Mat // prParts × n contribution accumulators
}

func (g *Graph) newPRState(damping float64) *prState {
	n := g.NumVertices()
	metrics.Acquire().AddArray(3)
	st := &prState{
		g:       g,
		damping: damping,
		ranks:   make([]float64, n),
		out:     make([]float64, n),
		// Rows padded onto disjoint cache lines: partitions scatter into
		// their own row concurrently, and an unpadded row boundary would
		// false-share between neighbors.
		acc: lin.NewMat(prParts, lin.PadStride(n)),
	}
	for i := range st.ranks {
		st.ranks[i] = 1.0
	}
	return st
}

// step advances the ranks by one PageRank iteration:
//
// Scatter — the sources are split into prParts fixed ranges; each range
// streams its CSR rows, scattering rank/degree contributions into its own
// dense accumulator row (no atomics, no sharing; the seed shuffled
// one allocated pair per edge here). Dangling (sink) vertices have no
// rows to scatter, so their mass is summed separately.
//
// Merge — each vertex folds its accumulator column in fixed partition
// order and applies the damping update. Dangling mass is redistributed
// uniformly (standard PageRank), so total rank is conserved exactly: the
// seed simply dropped it, which is why the benchmark's mass check needed
// a 1% tolerance.
//
// The scatter runs on the recovery engine (forPartsRetry): each attempt
// clears its private accumulator row first, so a faulted range replays
// alone instead of failing the whole iteration. The merge stays on the
// plain chunked parallel-for — it is allocation-free per chunk, and
// keeping it off the recovery path preserves the engine's per-iteration
// allocation bound (ml_alloc_test.go).
func (s *prState) step() {
	n := s.g.NumVertices()
	if err := forPartsRetry(prParts, func(_ *taskCtx, p int) {
		loc := metrics.Acquire()
		row := s.acc.Row(p)[:n]
		clear(row)
		vlo, vhi := p*n/prParts, (p+1)*n/prParts
		edges := 0
		for v := vlo; v < vhi; v++ {
			cols := s.g.out.RowCols(v)
			if len(cols) == 0 {
				continue
			}
			share := s.ranks[v] / float64(len(cols))
			for _, dst := range cols {
				row[dst] += share
			}
			edges += len(cols)
		}
		loc.AddIDynamic(int64(edges))
	}); err != nil {
		panic(err)
	}
	danglingMass := 0.0
	for _, v := range s.g.dangling {
		danglingMass += s.ranks[v]
	}
	base := (1 - s.damping) + s.damping*danglingMass/float64(n)
	stride := s.acc.Cols
	forkjoin.For(n, 0, func(lo, hi int) {
		metrics.Acquire().AddIDynamic(int64(hi - lo))
		for v := lo; v < hi; v++ {
			sum := 0.0
			for p := 0; p < prParts; p++ {
				sum += s.acc.Data[p*stride+v]
			}
			s.out[v] = base + s.damping*sum
		}
	})
	s.ranks, s.out = s.out, s.ranks
}

// PageRank runs the iterative computation over the pre-built graph and
// returns the rank of every vertex by external id. Rank mass is conserved
// exactly (dangling mass is redistributed uniformly), so Σ ranks equals
// the vertex count up to floating-point rounding.
func (g *Graph) PageRank(iterations int, damping float64) map[int]float64 {
	n := g.NumVertices()
	if n == 0 {
		return map[int]float64{}
	}
	st := g.newPRState(damping)
	for it := 0; it < iterations; it++ {
		st.step()
	}
	metrics.IncObject()
	out := make(map[int]float64, n)
	for i, id := range g.ids {
		out[id] = st.ranks[i]
	}
	return out
}

// PageRank runs the iterative PageRank computation over the edge list
// with the given damping and iteration count — the page-rank benchmark
// kernel. It returns the rank of every vertex that has at least one
// outgoing or incoming edge. Callers that iterate over a fixed graph
// (the benchmark harness) should build it once with NewGraph/GraphFrom
// and call Graph.PageRank, keeping the grouping out of the measured
// iteration.
func PageRank(edges *RDD[Pair[int, int]], iterations int, damping float64) map[int]float64 {
	return GraphFrom(edges).PageRank(iterations, damping)
}
