package rdd

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"renaissance/internal/lin"
)

// Differential tests: the flat-memory kernels (internal/lin layouts)
// against the seed kernels kept verbatim in seedml_test.go, on shared
// seeded inputs. Counting kernels must agree essentially exactly;
// floating-point kernels get tolerances sized to the summation-order
// difference the 4-way-unrolled Dot/Axpy introduces.

func maxAbsDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

// --- Cholesky vs Gaussian elimination ---

// TestCholeskySolveDifferentialSPD property-tests lin.CholeskySolve
// against the seed SolveLinearSystem on random SPD systems: same
// solution up to conditioning.
func TestCholeskySolveDifferentialSPD(t *testing.T) {
	check := func(seed int64, sizeRaw uint8) bool {
		n := int(sizeRaw%10) + 1
		rng := rand.New(rand.NewSource(seed))
		// SPD by construction: A = MᵀM + (0.5+u)·n·I.
		m := make([]float64, n*n)
		for i := range m {
			m[i] = rng.NormFloat64()
		}
		ridge := (0.5 + rng.Float64()) * float64(n)
		a := lin.NewMat(n, n)
		ga := newMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += m[k*n+i] * m[k*n+j]
				}
				if i == j {
					s += ridge
				}
				a.Set(i, j, s)
				ga[i][j] = s
			}
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}

		want, okSeed := SolveLinearSystem(ga, b)
		x := make([]float64, n)
		okLin := lin.CholeskySolve(a, b, x)
		if okSeed != okLin {
			t.Logf("seed=%d n=%d: solver disagreement seed=%v lin=%v", seed, n, okSeed, okLin)
			return false
		}
		if !okSeed {
			return true
		}
		if d := maxAbsDiff(want, x); d > 1e-8 {
			t.Logf("seed=%d n=%d: max solution diff %g", seed, n, d)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// --- ALS ---

func syntheticRatings(rng *rand.Rand, users, items, rank int) []Rating {
	trueU := make([][]float64, users)
	trueI := make([][]float64, items)
	for u := range trueU {
		trueU[u] = randomVector(rng, rank)
	}
	for i := range trueI {
		trueI[i] = randomVector(rng, rank)
	}
	var ratings []Rating
	for u := 0; u < users; u++ {
		for i := 0; i < items; i++ {
			if rng.Float64() < 0.5 {
				dot := 0.0
				for k := 0; k < rank; k++ {
					dot += trueU[u][k] * trueI[i][k]
				}
				ratings = append(ratings, Rating{User: u, Item: i, Value: dot})
			}
		}
	}
	return ratings
}

// TestALSDifferentialOneStep injects identical factor initializations
// into both solvers and compares the factors after one alternating
// half-step. The seed's full training loop initializes factors in
// map-iteration order, so only the solve itself — not end-to-end
// training — can be pinned exactly.
func TestALSDifferentialOneStep(t *testing.T) {
	const rank, lambda = 5, 0.07
	rng := rand.New(rand.NewSource(41))
	ratings := syntheticRatings(rng, 30, 20, rank)
	g := NewRatingsGraph(ratings)

	// Shared deterministic init, keyed by compacted row so both layouts
	// see the same values.
	users := lin.NewMat(g.NumUsers(), rank)
	items := lin.NewMat(g.NumItems(), rank)
	initRng := rand.New(rand.NewSource(99))
	for i := range users.Data {
		users.Data[i] = initRng.Float64()
	}
	for i := range items.Data {
		items.Data[i] = initRng.Float64()
	}
	userMap := make(map[int][]float64, g.NumUsers())
	itemMap := make(map[int][]float64, g.NumItems())
	for r, id := range g.userIDs {
		userMap[id] = append([]float64(nil), users.Row(r)...)
	}
	for r, id := range g.itemIDs {
		itemMap[id] = append([]float64(nil), items.Row(r)...)
	}
	userRatings := make(map[int][]Rating)
	for _, r := range ratings {
		userRatings[r.User] = append(userRatings[r.User], r)
	}

	solveFactors(g.byUser, users, items, lambda)
	seedSolveSide(userRatings, userMap, itemMap, rank, lambda,
		func(r Rating) int { return r.Item })

	for r, id := range g.userIDs {
		if d := maxAbsDiff(users.Row(r), userMap[id]); d > 1e-8 {
			t.Fatalf("user %d: factor diff %g after one half-step", id, d)
		}
	}
}

// TestALSDifferentialRMSE trains both implementations end-to-end on the
// same ratings and requires matching fit quality. (Exact factor equality
// is impossible: the seed initializes in map-iteration order.)
func TestALSDifferentialRMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ratings := syntheticRatings(rng, 40, 30, 4)
	rdd := Parallelize(ratings, 8)

	linModel, err := ALS(rdd, 4, 10, 0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	seedModel, err := seedALS(rdd, 4, 10, 0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	linRMSE, seedRMSE := linModel.RMSE(ratings), seedModel.RMSE(ratings)
	if linRMSE > 0.05 || seedRMSE > 0.05 {
		t.Fatalf("poor fit: lin RMSE %.4f, seed RMSE %.4f", linRMSE, seedRMSE)
	}
	if math.Abs(linRMSE-seedRMSE) > 0.02 {
		t.Fatalf("fit quality diverged: lin RMSE %.4f vs seed RMSE %.4f", linRMSE, seedRMSE)
	}
}

// --- PageRank ---

// TestPageRankDifferentialNoDangling: on a graph where every vertex has
// an outgoing edge the dangling fix is a no-op, so the CSR kernel must
// reproduce the seed's shuffle-based ranks (up to summation order).
func TestPageRankDifferentialNoDangling(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 150
	var edges []Pair[int, int]
	for v := 0; v < n; v++ {
		edges = append(edges, KV(v, (v+1)%n))
		for k := 0; k < 3; k++ {
			edges = append(edges, KV(v, rng.Intn(n)))
		}
	}
	rdd := Parallelize(edges, 8)

	got := PageRank(rdd, 12, 0.85)
	want := seedPageRank(rdd, 12, 0.85)
	if len(got) != len(want) {
		t.Fatalf("rank count %d, want %d", len(got), len(want))
	}
	for v, w := range want {
		if d := math.Abs(got[v] - w); d > 1e-9 {
			t.Fatalf("vertex %d: rank %.12f vs seed %.12f (diff %g)", v, got[v], w, d)
		}
	}
}

// TestPageRankDifferentialDangling documents the seed bug the live
// kernel fixes: on a star graph (hub → k sinks) the seed drops the
// sinks' rank mass every iteration, while the live kernel redistributes
// it and conserves Σ ranks = |V| exactly.
func TestPageRankDifferentialDangling(t *testing.T) {
	const k = 20
	var edges []Pair[int, int]
	for v := 1; v <= k; v++ {
		edges = append(edges, KV(0, v))
	}
	rdd := Parallelize(edges, 4)
	n := float64(k + 1)

	sum := func(ranks map[int]float64) float64 {
		s := 0.0
		for _, r := range ranks {
			s += r
		}
		return s
	}
	got := PageRank(rdd, 10, 0.85)
	if d := math.Abs(sum(got) - n); d > 1e-9*n {
		t.Fatalf("live kernel lost rank mass: Σ=%.9f want %.0f", sum(got), n)
	}
	seed := seedPageRank(rdd, 10, 0.85)
	if lost := n - sum(seed); lost < 0.5 {
		t.Fatalf("expected the seed kernel to lose dangling mass, Σ=%.9f (lost %.3f)", sum(seed), lost)
	}
}

// --- Logistic regression ---

func syntheticLabeled(rng *rand.Rand, n, dim int) []LabeledPoint {
	pts := make([]LabeledPoint, n)
	for i := range pts {
		label := i % 2
		shift := float64(label*2-1) * 1.25
		f := make([]float64, dim)
		for j := range f {
			f[j] = rng.NormFloat64() + shift
		}
		pts[i] = LabeledPoint{Features: f, Label: label}
	}
	return pts
}

func TestLogRegressionDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := Parallelize(syntheticLabeled(rng, 800, 8), 8)

	got, err := LogisticRegression(pts, 25, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := seedLogisticRegression(pts, 25, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(got, want); d > 1e-6 {
		t.Fatalf("weights diverged from seed kernel: max diff %g", d)
	}
}

// TestLogisticRegressionDimMismatch: the live kernel surfaces
// dimension-mismatched points as ErrBadInput; the seed silently dropped
// them from the gradient.
func TestLogisticRegressionDimMismatch(t *testing.T) {
	pts := []LabeledPoint{
		{Features: []float64{1, 2}, Label: 0},
		{Features: []float64{3}, Label: 1}, // short row
		{Features: []float64{4, 5}, Label: 1},
	}
	_, err := LogisticRegression(Parallelize(pts, 2), 3, 0.1)
	if !errors.Is(err, ErrBadInput) {
		t.Fatalf("err = %v, want ErrBadInput", err)
	}
	if _, err := seedLogisticRegression(Parallelize(pts, 2), 3, 0.1); err != nil {
		t.Fatalf("seed kernel unexpectedly rejected the input: %v", err)
	}
	// DecisionTree packs through the same path and must agree.
	if _, err := DecisionTree(Parallelize(pts, 2), 2, 3, 1); !errors.Is(err, ErrBadInput) {
		t.Fatalf("DecisionTree err = %v, want ErrBadInput", err)
	}
}

// --- Naive Bayes ---

func TestNaiveBayesDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const n, dim, classes = 1200, 12, 3
	pts := make([]LabeledPoint, n)
	for i := range pts {
		label := i % classes
		f := make([]float64, dim)
		for j := range f {
			base := 1.0
			if j%classes == label {
				base = 6.0
			}
			f[j] = base + float64(rng.Intn(3))
		}
		pts[i] = LabeledPoint{Features: f, Label: label}
	}
	rdd := Parallelize(pts, 8)

	got, err := NaiveBayes(rdd, classes, dim)
	if err != nil {
		t.Fatal(err)
	}
	want, err := seedNaiveBayes(rdd, classes, dim)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(got.ClassLogPrior, want.ClassLogPrior); d > 1e-12 {
		t.Fatalf("class log-priors diverged: max diff %g", d)
	}
	for c := 0; c < classes; c++ {
		if d := maxAbsDiff(got.FeatureLogPr[c], want.FeatureLogPr[c]); d > 1e-12 {
			t.Fatalf("class %d feature log-probs diverged: max diff %g", c, d)
		}
	}
}

// --- Chi-square ---

func TestChiSquareDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	const n, dim = 1000, 10
	pts := make([]LabeledPoint, n)
	for i := range pts {
		label := i % 2
		f := make([]float64, dim)
		f[0] = float64(label)
		if rng.Float64() < 0.1 {
			f[0] = float64(1 - label)
		}
		for j := 1; j < dim; j++ {
			f[j] = float64(rng.Intn(4))
		}
		pts[i] = LabeledPoint{Features: f, Label: label}
	}
	rdd := Parallelize(pts, 8)

	got := ChiSquare(rdd, 2, dim, 4)
	want := seedChiSquare(rdd, 2, dim, 4)
	// Pure integer counting feeding identical statistic arithmetic: the
	// results must agree to the last bit (tolerance only guards exotic
	// FMA contraction).
	if d := maxAbsDiff(got, want); d > 1e-12 {
		t.Fatalf("chi-square stats diverged: max diff %g", d)
	}
}

// --- Decision tree ---

func sameTree(a, b *TreeNode) bool {
	if a.IsLeaf() != b.IsLeaf() {
		return false
	}
	if a.IsLeaf() {
		return a.Prediction == b.Prediction
	}
	return a.Feature == b.Feature && a.Threshold == b.Threshold &&
		sameTree(a.Left, b.Left) && sameTree(a.Right, b.Right)
}

// TestDecTreeDifferential: index-subset recursion over the flat matrix
// performs the identical histogram arithmetic in the identical order, so
// the fitted trees must match node for node.
func TestDecTreeDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pts := Parallelize(syntheticLabeled(rng, 900, 6), 8)

	got, err := DecisionTree(pts, 2, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := seedDecisionTree(pts, 2, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !sameTree(got, want) {
		t.Fatalf("trees diverged: lin depth %d vs seed depth %d", got.Depth(), want.Depth())
	}
}
