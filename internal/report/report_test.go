package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tab := &Table{Title: "T", Headers: []string{"name", "value"}}
	tab.AddRow("short", 1)
	tab.AddRow("a-much-longer-name", 2.5)
	var buf bytes.Buffer
	if err := tab.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "T" {
		t.Errorf("title line = %q", lines[0])
	}
	// Header and separator must align to the widest cell.
	if !strings.HasPrefix(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "------------------") {
		t.Errorf("separator = %q", lines[2])
	}
	if !strings.Contains(out, "a-much-longer-name") || !strings.Contains(out, "2.5") {
		t.Errorf("rows missing:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Headers: []string{"a", "b"}}
	tab.AddRow("plain", `with "quote", comma`)
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"with ""quote"", comma"`) {
		t.Errorf("CSV escaping wrong:\n%s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("CSV header wrong:\n%s", out)
	}
}

func TestBarChart(t *testing.T) {
	var buf bytes.Buffer
	bars := []Bar{
		{Label: "big", Value: 10, Mark: "*"},
		{Label: "small", Value: 2.5},
		{Label: "negative", Value: -5},
	}
	if err := BarChart(&buf, "chart", bars, 20); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "####################") {
		t.Errorf("max bar not full width:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Errorf("negative sign missing:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Errorf("mark missing:\n%s", out)
	}
	// Zero-only bars must not divide by zero.
	if err := BarChart(&buf, "zero", []Bar{{Label: "z", Value: 0}}, 10); err != nil {
		t.Fatal(err)
	}
}

func TestScatter(t *testing.T) {
	var buf bytes.Buffer
	pts := []ScatterPoint{
		{X: 0, Y: 0, Symbol: 'A'},
		{X: 1, Y: 1, Symbol: 'B'},
		{X: 0.5, Y: 0.5, Symbol: 'C'},
	}
	if err := Scatter(&buf, "title", "x", "y", pts, 30, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, sym := range []string{"A", "B", "C"} {
		if !strings.Contains(out, sym) {
			t.Errorf("symbol %s missing:\n%s", sym, out)
		}
	}
	// Collisions of distinct symbols render '+'.
	buf.Reset()
	coll := []ScatterPoint{{X: 0, Y: 0, Symbol: 'A'}, {X: 0, Y: 0, Symbol: 'B'}, {X: 1, Y: 1, Symbol: 'Z'}}
	if err := Scatter(&buf, "t", "x", "y", coll, 10, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "+") {
		t.Errorf("collision marker missing:\n%s", buf.String())
	}
	// Empty input.
	buf.Reset()
	if err := Scatter(&buf, "t", "x", "y", nil, 10, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no points") {
		t.Error("empty scatter not handled")
	}
}

func TestSortBarsDesc(t *testing.T) {
	bars := []Bar{{Value: 1}, {Value: 5}, {Value: 3}}
	SortBarsDesc(bars)
	if bars[0].Value != 5 || bars[2].Value != 1 {
		t.Errorf("sorted = %v", bars)
	}
}
