// Package report renders the paper's tables and figures as text: aligned
// tables, horizontal bar charts (Figures 2–6), and character-grid scatter
// plots (Figure 1). Everything writes to an io.Writer so the analyze CLI
// and the benchmark harness can share the renderers.
package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for p := len(cell); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		_, err := fmt.Fprintf(w, "%s\n", strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the table as CSV (for downstream plotting).
func (t *Table) WriteCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.Headers))
	for i, h := range t.Headers {
		cells[i] = esc(h)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Bar is one horizontal bar-chart entry.
type Bar struct {
	Label string
	Value float64
	// Mark annotates the bar (e.g. "*" for statistically significant).
	Mark string
}

// BarChart renders horizontal bars scaled to width characters, with
// negative values extending left of the axis.
func BarChart(w io.Writer, title string, bars []Bar, width int) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	maxAbs := 0.0
	maxLabel := 0
	for _, b := range bars {
		if math.Abs(b.Value) > maxAbs {
			maxAbs = math.Abs(b.Value)
		}
		if len(b.Label) > maxLabel {
			maxLabel = len(b.Label)
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	for _, b := range bars {
		n := int(math.Round(math.Abs(b.Value) / maxAbs * float64(width)))
		bar := strings.Repeat("#", n)
		sign := " "
		if b.Value < 0 {
			sign = "-"
		}
		if _, err := fmt.Fprintf(w, "  %-*s %s%-*s %8.2f %s\n",
			maxLabel, b.Label, sign, width, bar, b.Value, b.Mark); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// ScatterPoint is one point of a text scatter plot.
type ScatterPoint struct {
	X, Y   float64
	Symbol rune // one symbol per suite, as in Figure 1's legend
	Label  string
}

// Scatter renders points on a cols×rows character grid with axis ranges
// derived from the data (the Figure 1 renderer).
func Scatter(w io.Writer, title, xLabel, yLabel string, pts []ScatterPoint, cols, rows int) error {
	if len(pts) == 0 {
		_, err := fmt.Fprintf(w, "%s\n  (no points)\n", title)
		return err
	}
	minX, maxX := pts[0].X, pts[0].X
	minY, maxY := pts[0].Y, pts[0].Y
	for _, p := range pts {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, rows)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", cols))
	}
	for _, p := range pts {
		c := int((p.X - minX) / (maxX - minX) * float64(cols-1))
		r := rows - 1 - int((p.Y-minY)/(maxY-minY)*float64(rows-1))
		if grid[r][c] != ' ' && grid[r][c] != p.Symbol {
			grid[r][c] = '+' // collision of different suites
		} else {
			grid[r][c] = p.Symbol
		}
	}
	if _, err := fmt.Fprintf(w, "%s  (y: %s, x: %s)\n", title, yLabel, xLabel); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %7.2f +%s\n", maxY, strings.Repeat("-", cols)); err != nil {
		return err
	}
	for _, row := range grid {
		if _, err := fmt.Fprintf(w, "          |%s\n", string(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "  %7.2f +%s\n            %-8.2f%*s%.2f\n\n",
		minY, strings.Repeat("-", cols), minX, cols-14, "", maxX)
	return err
}

// SortBarsDesc orders bars by value, descending.
func SortBarsDesc(bars []Bar) {
	sort.Slice(bars, func(i, j int) bool { return bars[i].Value > bars[j].Value })
}
