package report

import "fmt"

// SweepRow is one offered-rate measurement of an open-loop saturation
// sweep, pre-extracted into plain numbers so the renderer stays free of
// harness dependencies. Latencies are milliseconds.
type SweepRow struct {
	Rate       float64
	Throughput float64
	P50        float64
	P90        float64
	P99        float64
	P999       float64
	Completed  int64
	Shed       int64
	Rejected   int64
	Errors     int64
	Dropped    int64
	// Knee marks the first row past the saturation knee (p99 diverged
	// from p50); rendered as a marker column.
	Knee bool
}

// SweepTable renders a saturation sweep: one row per offered rate with
// throughput, the latency percentile ladder, and overload accounting. The
// knee row carries a "<- knee" marker — the offered load where the tail
// diverges and the service has saturated.
func SweepTable(title string, rows []SweepRow) *Table {
	t := &Table{
		Title: title,
		Headers: []string{"rate/s", "tput/s", "p50 ms", "p90 ms", "p99 ms",
			"p99.9 ms", "ok", "shed", "reject", "err", "drop", ""},
	}
	for _, r := range rows {
		mark := ""
		if r.Knee {
			mark = "<- knee"
		}
		t.AddRow(
			fmt.Sprintf("%.0f", r.Rate),
			fmt.Sprintf("%.0f", r.Throughput),
			fmt.Sprintf("%.3f", r.P50),
			fmt.Sprintf("%.3f", r.P90),
			fmt.Sprintf("%.3f", r.P99),
			fmt.Sprintf("%.3f", r.P999),
			r.Completed, r.Shed, r.Rejected, r.Errors, r.Dropped, mark)
	}
	return t
}
