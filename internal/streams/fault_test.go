package streams

import (
	"errors"
	"sync/atomic"
	"testing"

	"renaissance/internal/forkjoin"
)

func TestParMapEPanicSurfacesTaskError(t *testing.T) {
	xs := make([]int, 200)
	for i := range xs {
		xs[i] = i
	}
	got, err := ParMapE(xs, 4, func(x int) int {
		if x == 123 {
			panic("map failure")
		}
		return x * x
	})
	var te *forkjoin.TaskError
	if !errors.As(err, &te) || te.Value != "map failure" {
		t.Fatalf("ParMapE error = %v, want TaskError(map failure)", err)
	}
	if got != nil {
		t.Errorf("ParMapE returned data alongside an error")
	}

	clean, err := ParMapE(xs, 4, func(x int) int { return x + 1 })
	if err != nil || len(clean) != len(xs) || clean[10] != 11 {
		t.Errorf("clean ParMapE = (%d elems, %v)", len(clean), err)
	}
}

func TestParReduceEFaultAndClean(t *testing.T) {
	xs := make([]int, 100)
	for i := range xs {
		xs[i] = i
	}
	sum, err := ParReduceE(xs, 4,
		func() int { return 0 },
		func(a, x int) int { return a + x },
		func(a, b int) int { return a + b })
	if err != nil || sum != 4950 {
		t.Errorf("ParReduceE = (%d, %v), want (4950, nil)", sum, err)
	}

	_, err = ParReduceE(xs, 4,
		func() int { return 0 },
		func(a, x int) int {
			if x == 50 {
				panic("fold failure")
			}
			return a + x
		},
		func(a, b int) int { return a + b })
	if err == nil {
		t.Error("ParReduceE returned nil error for a panicking fold")
	}
}

func TestParForEachEPanicDoesNotWedge(t *testing.T) {
	xs := make([]int, 500)
	var visited atomic.Int64
	err := ParForEachE(xs, 8, func(int) {
		if visited.Add(1) == 100 {
			panic("foreach failure")
		}
	})
	if err == nil {
		t.Error("ParForEachE returned nil error for a panicking body")
	}
	if err := ParForEachE(xs, 8, func(int) {}); err != nil {
		t.Errorf("clean ParForEachE after a fault: %v", err)
	}
}
