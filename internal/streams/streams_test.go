package streams

import (
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestBasicPipeline(t *testing.T) {
	got := Map(Range(1, 11).Filter(func(x int) bool { return x%2 == 0 }),
		func(x int) int { return x * x }).ToSlice()
	want := []int{4, 16, 36, 64, 100}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("pipeline = %v, want %v", got, want)
	}
}

func TestOfAndFromSlice(t *testing.T) {
	if got := Of(1, 2, 3).Count(); got != 3 {
		t.Errorf("Of count = %d", got)
	}
	xs := []string{"a", "b"}
	if got := FromSlice(xs).ToSlice(); !reflect.DeepEqual(got, xs) {
		t.Errorf("FromSlice = %v", got)
	}
	// Streams over slices are reusable.
	s := FromSlice(xs)
	if s.Count() != 2 || s.Count() != 2 {
		t.Error("slice stream not reusable")
	}
}

func TestGenerate(t *testing.T) {
	got := Generate(4, func(i int) int { return i * 10 }).ToSlice()
	if !reflect.DeepEqual(got, []int{0, 10, 20, 30}) {
		t.Errorf("Generate = %v", got)
	}
}

func TestLimitSkip(t *testing.T) {
	if got := Range(0, 100).Limit(3).ToSlice(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("Limit = %v", got)
	}
	if got := Range(0, 5).Skip(3).ToSlice(); !reflect.DeepEqual(got, []int{3, 4}) {
		t.Errorf("Skip = %v", got)
	}
	if got := Range(0, 3).Limit(0).Count(); got != 0 {
		t.Errorf("Limit(0) = %d", got)
	}
	if got := Range(0, 3).Skip(10).Count(); got != 0 {
		t.Errorf("Skip beyond end = %d", got)
	}
}

func TestTakeWhile(t *testing.T) {
	got := Range(0, 10).TakeWhile(func(x int) bool { return x < 4 }).ToSlice()
	if !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Errorf("TakeWhile = %v", got)
	}
}

func TestFlatMapLaziness(t *testing.T) {
	calls := 0
	s := FlatMap(Range(0, 1000), func(x int) Stream[int] {
		calls++
		return Of(x, x)
	})
	got := s.Limit(4).ToSlice()
	if !reflect.DeepEqual(got, []int{0, 0, 1, 1}) {
		t.Errorf("FlatMap = %v", got)
	}
	if calls > 3 {
		t.Errorf("FlatMap evaluated %d inner streams; not lazy", calls)
	}
}

func TestReduce(t *testing.T) {
	sum := Reduce(Range(1, 101), 0, func(a, x int) int { return a + x })
	if sum != 5050 {
		t.Errorf("Reduce sum = %d", sum)
	}
	concat := Reduce(Of("a", "b", "c"), "", func(a, x string) string { return a + x })
	if concat != "abc" {
		t.Errorf("Reduce concat = %q", concat)
	}
}

func TestMatchAndFirst(t *testing.T) {
	s := Range(0, 10)
	if !s.AnyMatch(func(x int) bool { return x == 7 }) {
		t.Error("AnyMatch(7) = false")
	}
	if s.AnyMatch(func(x int) bool { return x > 100 }) {
		t.Error("AnyMatch(>100) = true")
	}
	if !s.AllMatch(func(x int) bool { return x < 10 }) {
		t.Error("AllMatch(<10) = false")
	}
	if s.AllMatch(func(x int) bool { return x < 5 }) {
		t.Error("AllMatch(<5) = true")
	}
	if v, ok := s.First(); !ok || v != 0 {
		t.Errorf("First = (%d, %v)", v, ok)
	}
	if _, ok := Of[int]().First(); ok {
		t.Error("First of empty stream found something")
	}
}

func TestSorted(t *testing.T) {
	got := Of(3, 1, 2).Sorted(func(a, b int) bool { return a < b }).ToSlice()
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("Sorted = %v", got)
	}
}

func TestMaxBy(t *testing.T) {
	words := Of("a", "abc", "ab")
	w, ok := MaxBy(words, func(s string) int { return len(s) })
	if !ok || w != "abc" {
		t.Errorf("MaxBy = (%q, %v)", w, ok)
	}
	if _, ok := MaxBy(Of[string](), func(string) int { return 0 }); ok {
		t.Error("MaxBy of empty stream found something")
	}
}

func TestGroupByToMapDistinct(t *testing.T) {
	words := Of("apple", "avocado", "banana", "blueberry", "cherry")
	groups := GroupBy(words, func(s string) byte { return s[0] })
	if len(groups['a']) != 2 || len(groups['b']) != 2 || len(groups['c']) != 1 {
		t.Errorf("GroupBy = %v", groups)
	}
	m := ToMap(words, func(s string) string { return s }, func(s string) int { return len(s) })
	if m["banana"] != 6 {
		t.Errorf("ToMap = %v", m)
	}
	d := Distinct(Of(1, 2, 1, 3, 2)).ToSlice()
	if !reflect.DeepEqual(d, []int{1, 2, 3}) {
		t.Errorf("Distinct = %v", d)
	}
}

func TestPeek(t *testing.T) {
	var seen []int
	_ = Range(0, 3).Peek(func(x int) { seen = append(seen, x) }).ToSlice()
	if !reflect.DeepEqual(seen, []int{0, 1, 2}) {
		t.Errorf("Peek saw %v", seen)
	}
}

func TestWordHistogram(t *testing.T) {
	// The scrabble benchmark's core shape: histogram of characters.
	word := "benchmark"
	hist := GroupBy(FromSlice([]rune(word)), func(r rune) rune { return r })
	if len(hist['b']) != 1 || len(hist['e']) != 1 {
		t.Errorf("hist = %v", hist)
	}
	total := 0
	for _, g := range hist {
		total += len(g)
	}
	if total != len(word) {
		t.Errorf("histogram total = %d, want %d", total, len(word))
	}
}

func TestParMap(t *testing.T) {
	xs := make([]int, 1000)
	for i := range xs {
		xs[i] = i
	}
	got := ParMap(xs, 4, func(x int) int { return x * 2 })
	for i, v := range got {
		if v != i*2 {
			t.Fatalf("ParMap[%d] = %d, want %d", i, v, i*2)
		}
	}
	if got := ParMap([]int{}, 4, func(x int) int { return x }); len(got) != 0 {
		t.Errorf("ParMap empty = %v", got)
	}
}

func TestParReduce(t *testing.T) {
	xs := make([]int, 10000)
	for i := range xs {
		xs[i] = 1
	}
	sum := ParReduce(xs, 8,
		func() int { return 0 },
		func(a, x int) int { return a + x },
		func(a, b int) int { return a + b })
	if sum != 10000 {
		t.Errorf("ParReduce = %d", sum)
	}
}

func TestParForEach(t *testing.T) {
	xs := []int{1, 2, 3, 4, 5}
	results := make([]int, len(xs))
	idx := func(x int) int { return x - 1 }
	ParForEach(xs, 3, func(x int) { results[idx(x)] = x * x })
	if !reflect.DeepEqual(results, []int{1, 4, 9, 16, 25}) {
		t.Errorf("ParForEach results = %v", results)
	}
}

func TestSplitIndex(t *testing.T) {
	cases := []struct {
		n, k, chunks int
	}{
		{0, 4, 0}, {1, 4, 1}, {10, 3, 3}, {10, 10, 10}, {3, 10, 3},
	}
	for _, c := range cases {
		chunks := splitIndex(c.n, c.k)
		if len(chunks) != c.chunks {
			t.Errorf("splitIndex(%d,%d) has %d chunks, want %d", c.n, c.k, len(chunks), c.chunks)
		}
		covered := 0
		prev := 0
		for _, ch := range chunks {
			if ch[0] != prev {
				t.Errorf("splitIndex(%d,%d) gap at %d", c.n, c.k, ch[0])
			}
			covered += ch[1] - ch[0]
			prev = ch[1]
		}
		if covered != c.n {
			t.Errorf("splitIndex(%d,%d) covers %d", c.n, c.k, covered)
		}
	}
}

// Property: ParMap equals sequential Map for arbitrary inputs and worker
// counts.
func TestPropertyParMapMatchesMap(t *testing.T) {
	f := func(xs []int16, w uint8) bool {
		workers := int(w%8) + 1
		fn := func(x int16) int { return int(x) * 3 }
		par := ParMap(xs, workers, fn)
		seq := Map(FromSlice(xs), fn).ToSlice()
		if len(par) != len(seq) {
			return false
		}
		for i := range par {
			if par[i] != seq[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: GroupBy preserves all elements.
func TestPropertyGroupByPartition(t *testing.T) {
	f := func(words []string) bool {
		groups := GroupBy(FromSlice(words), func(s string) int { return len(s) })
		total := 0
		for l, g := range groups {
			total += len(g)
			for _, w := range g {
				if len(w) != l {
					return false
				}
			}
		}
		return total == len(words)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMnemonicsShape(t *testing.T) {
	// The streams-mnemonics core: expanding digit strings through
	// letter alternatives with FlatMap.
	digitLetters := map[rune]string{'2': "ABC", '3': "DEF"}
	expand := func(s Stream[string], digit rune) Stream[string] {
		return FlatMap(s, func(prefix string) Stream[string] {
			letters := digitLetters[digit]
			out := make([]string, 0, len(letters))
			for _, l := range letters {
				out = append(out, prefix+string(l))
			}
			return FromSlice(out)
		})
	}
	s := Of("")
	for _, d := range "23" {
		s = expand(s, d)
	}
	got := s.ToSlice()
	if len(got) != 9 {
		t.Fatalf("mnemonics count = %d, want 9", len(got))
	}
	sort.Strings(got)
	if got[0] != "AD" || !strings.HasPrefix(got[8], "C") {
		t.Errorf("mnemonics = %v", got)
	}
}
