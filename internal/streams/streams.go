// Package streams implements a lazy, composable stream library in the
// style of the Java 8 Stream API (JEP 107), used by the scrabble and
// streams-mnemonics benchmarks (Table 1: "data-parallel, memory-bound").
// Every user function passed to a higher-order operation is a closure
// dispatch, recorded as the paper's idynamic metric; parallel terminal
// operations split the source across workers like parallel streams split
// spliterators.
package streams

import (
	"runtime"
	"sort"

	"renaissance/internal/forkjoin"
	"renaissance/internal/metrics"
)

// Stream is a lazy sequence of T. Operations build a pipeline that runs
// when a terminal operation consumes it. A Stream may be consumed multiple
// times if its source supports it (slice sources do).
type Stream[T any] struct {
	forEach func(yield func(T) bool)
}

// FromSlice returns a stream over the slice's elements.
func FromSlice[T any](xs []T) Stream[T] {
	return Stream[T]{forEach: func(yield func(T) bool) {
		for _, x := range xs {
			if !yield(x) {
				return
			}
		}
	}}
}

// Of returns a stream of the given elements.
func Of[T any](xs ...T) Stream[T] { return FromSlice(xs) }

// Generate returns a stream of fn(0), fn(1), ..., fn(n-1).
func Generate[T any](n int, fn func(int) T) Stream[T] {
	return Stream[T]{forEach: func(yield func(T) bool) {
		for i := 0; i < n; i++ {
			metrics.IncIDynamic()
			if !yield(fn(i)) {
				return
			}
		}
	}}
}

// Range returns a stream of the ints in [lo, hi).
func Range(lo, hi int) Stream[int] {
	return Stream[int]{forEach: func(yield func(int) bool) {
		for i := lo; i < hi; i++ {
			if !yield(i) {
				return
			}
		}
	}}
}

// Filter keeps the elements satisfying pred.
func (s Stream[T]) Filter(pred func(T) bool) Stream[T] {
	return Stream[T]{forEach: func(yield func(T) bool) {
		s.forEach(func(x T) bool {
			metrics.IncIDynamic()
			if pred(x) {
				return yield(x)
			}
			return true
		})
	}}
}

// Peek invokes fn on each element passing through.
func (s Stream[T]) Peek(fn func(T)) Stream[T] {
	return Stream[T]{forEach: func(yield func(T) bool) {
		s.forEach(func(x T) bool {
			metrics.IncIDynamic()
			fn(x)
			return yield(x)
		})
	}}
}

// Limit truncates the stream to at most n elements.
func (s Stream[T]) Limit(n int) Stream[T] {
	return Stream[T]{forEach: func(yield func(T) bool) {
		remaining := n
		s.forEach(func(x T) bool {
			if remaining <= 0 {
				return false
			}
			remaining--
			return yield(x)
		})
	}}
}

// Skip drops the first n elements.
func (s Stream[T]) Skip(n int) Stream[T] {
	return Stream[T]{forEach: func(yield func(T) bool) {
		dropped := 0
		s.forEach(func(x T) bool {
			if dropped < n {
				dropped++
				return true
			}
			return yield(x)
		})
	}}
}

// TakeWhile keeps elements until pred first fails.
func (s Stream[T]) TakeWhile(pred func(T) bool) Stream[T] {
	return Stream[T]{forEach: func(yield func(T) bool) {
		s.forEach(func(x T) bool {
			metrics.IncIDynamic()
			if !pred(x) {
				return false
			}
			return yield(x)
		})
	}}
}

// ForEach applies fn to every element.
func (s Stream[T]) ForEach(fn func(T)) {
	s.forEach(func(x T) bool {
		metrics.IncIDynamic()
		fn(x)
		return true
	})
}

// ToSlice collects the stream into a slice.
func (s Stream[T]) ToSlice() []T {
	metrics.IncArray()
	var out []T
	s.forEach(func(x T) bool {
		out = append(out, x)
		return true
	})
	return out
}

// Count returns the number of elements.
func (s Stream[T]) Count() int {
	n := 0
	s.forEach(func(T) bool {
		n++
		return true
	})
	return n
}

// AnyMatch reports whether any element satisfies pred (short-circuiting).
func (s Stream[T]) AnyMatch(pred func(T) bool) bool {
	found := false
	s.forEach(func(x T) bool {
		metrics.IncIDynamic()
		if pred(x) {
			found = true
			return false
		}
		return true
	})
	return found
}

// AllMatch reports whether every element satisfies pred.
func (s Stream[T]) AllMatch(pred func(T) bool) bool {
	ok := true
	s.forEach(func(x T) bool {
		metrics.IncIDynamic()
		if !pred(x) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// First returns the first element, if any.
func (s Stream[T]) First() (T, bool) {
	var out T
	found := false
	s.forEach(func(x T) bool {
		out, found = x, true
		return false
	})
	return out, found
}

// Sorted returns a stream of the elements in the order defined by less.
// It is a stateful operation that buffers the whole stream.
func (s Stream[T]) Sorted(less func(a, b T) bool) Stream[T] {
	return Stream[T]{forEach: func(yield func(T) bool) {
		buf := s.ToSlice()
		sort.SliceStable(buf, func(i, j int) bool {
			metrics.IncIDynamic()
			return less(buf[i], buf[j])
		})
		for _, x := range buf {
			if !yield(x) {
				return
			}
		}
	}}
}

// Map transforms each element with fn.
func Map[T, U any](s Stream[T], fn func(T) U) Stream[U] {
	return Stream[U]{forEach: func(yield func(U) bool) {
		s.forEach(func(x T) bool {
			metrics.IncIDynamic()
			return yield(fn(x))
		})
	}}
}

// FlatMap maps each element to a stream and concatenates the results.
func FlatMap[T, U any](s Stream[T], fn func(T) Stream[U]) Stream[U] {
	return Stream[U]{forEach: func(yield func(U) bool) {
		s.forEach(func(x T) bool {
			metrics.IncIDynamic()
			stop := false
			fn(x).forEach(func(u U) bool {
				if !yield(u) {
					stop = true
					return false
				}
				return true
			})
			return !stop
		})
	}}
}

// Reduce folds the stream left-to-right starting from init.
func Reduce[T, A any](s Stream[T], init A, fn func(A, T) A) A {
	acc := init
	s.forEach(func(x T) bool {
		metrics.IncIDynamic()
		acc = fn(acc, x)
		return true
	})
	return acc
}

// MaxBy returns the maximum element under the score function.
func MaxBy[T any](s Stream[T], score func(T) int) (T, bool) {
	var best T
	bestScore, found := 0, false
	s.forEach(func(x T) bool {
		metrics.IncIDynamic()
		sc := score(x)
		if !found || sc > bestScore {
			best, bestScore, found = x, sc, true
		}
		return true
	})
	return best, found
}

// GroupBy collects the elements into buckets keyed by key(x).
func GroupBy[T any, K comparable](s Stream[T], key func(T) K) map[K][]T {
	metrics.IncObject()
	out := make(map[K][]T)
	s.forEach(func(x T) bool {
		metrics.IncIDynamic()
		k := key(x)
		out[k] = append(out[k], x)
		return true
	})
	return out
}

// ToMap collects the elements into a map of key(x) to value(x); later keys
// overwrite earlier ones.
func ToMap[T any, K comparable, V any](s Stream[T], key func(T) K, value func(T) V) map[K]V {
	metrics.IncObject()
	out := make(map[K]V)
	s.forEach(func(x T) bool {
		metrics.AddIDynamic(2)
		out[key(x)] = value(x)
		return true
	})
	return out
}

// Distinct removes duplicate elements (first occurrence wins).
func Distinct[T comparable](s Stream[T]) Stream[T] {
	return Stream[T]{forEach: func(yield func(T) bool) {
		metrics.IncObject()
		seen := make(map[T]struct{})
		s.forEach(func(x T) bool {
			if _, dup := seen[x]; dup {
				return true
			}
			seen[x] = struct{}{}
			return yield(x)
		})
	}}
}

// parallelWorkers resolves the worker-count argument.
func parallelWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// ParMap applies fn to every element of xs with at most the given number
// of concurrent executors (0 = GOMAXPROCS) and returns the results in
// order — the parallel stream map. Chunks run on the shared work-stealing
// pool (forkjoin.Shared) rather than on per-chunk goroutines, so
// parallel-stream terminals and RDD partition tasks share one bounded
// executor.
func ParMap[T, U any](xs []T, workers int, fn func(T) U) []U {
	workers = parallelWorkers(workers)
	metrics.IncArray()
	out := make([]U, len(xs))
	forkjoin.Shared().ForMax(len(xs), 0, workers, func(lo, hi int) {
		loc := metrics.Acquire()
		for i := lo; i < hi; i++ {
			loc.IncIDynamic()
			out[i] = fn(xs[i])
		}
	})
	return out
}

// ParMapE is ParMap surfacing a panicking fn as an error (the first
// failure; remaining chunks are cancelled) instead of re-panicking at the
// join. The partially filled result is discarded.
func ParMapE[T, U any](xs []T, workers int, fn func(T) U) ([]U, error) {
	workers = parallelWorkers(workers)
	metrics.IncArray()
	out := make([]U, len(xs))
	err := forkjoin.Shared().ForMaxE(len(xs), 0, workers, func(lo, hi int) {
		loc := metrics.Acquire()
		for i := lo; i < hi; i++ {
			loc.IncIDynamic()
			out[i] = fn(xs[i])
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ParReduce folds xs in parallel: each worker folds its chunk with fold
// starting from init(), and merge combines the per-worker accumulators.
func ParReduce[T, A any](xs []T, workers int, init func() A, fold func(A, T) A, merge func(A, A) A) A {
	workers = parallelWorkers(workers)
	chunks := splitIndex(len(xs), workers)
	partials := make([]A, len(chunks))
	forkjoin.Shared().ForMax(len(chunks), 1, workers, func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			loc := metrics.Acquire()
			loc.IncIDynamic()
			acc := init()
			for i := chunks[ci][0]; i < chunks[ci][1]; i++ {
				loc.IncIDynamic()
				acc = fold(acc, xs[i])
			}
			partials[ci] = acc
		}
	})
	metrics.IncIDynamic()
	acc := init()
	for _, p := range partials {
		metrics.IncIDynamic()
		acc = merge(acc, p)
	}
	return acc
}

// ParReduceE is ParReduce surfacing a panicking fold/init as an error.
func ParReduceE[T, A any](xs []T, workers int, init func() A, fold func(A, T) A, merge func(A, A) A) (A, error) {
	workers = parallelWorkers(workers)
	chunks := splitIndex(len(xs), workers)
	partials := make([]A, len(chunks))
	var zero A
	err := forkjoin.Shared().ForMaxE(len(chunks), 1, workers, func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			loc := metrics.Acquire()
			loc.IncIDynamic()
			acc := init()
			for i := chunks[ci][0]; i < chunks[ci][1]; i++ {
				loc.IncIDynamic()
				acc = fold(acc, xs[i])
			}
			partials[ci] = acc
		}
	})
	if err != nil {
		return zero, err
	}
	metrics.IncIDynamic()
	acc := init()
	for _, p := range partials {
		metrics.IncIDynamic()
		acc = merge(acc, p)
	}
	return acc, nil
}

// ParForEach applies fn to every element with at most the given number of
// concurrent executors, on the shared work-stealing pool.
func ParForEach[T any](xs []T, workers int, fn func(T)) {
	workers = parallelWorkers(workers)
	forkjoin.Shared().ForMax(len(xs), 0, workers, func(lo, hi int) {
		loc := metrics.Acquire()
		for i := lo; i < hi; i++ {
			loc.IncIDynamic()
			fn(xs[i])
		}
	})
}

// ParForEachE is ParForEach surfacing a panicking fn as an error.
func ParForEachE[T any](xs []T, workers int, fn func(T)) error {
	workers = parallelWorkers(workers)
	return forkjoin.Shared().ForMaxE(len(xs), 0, workers, func(lo, hi int) {
		loc := metrics.Acquire()
		for i := lo; i < hi; i++ {
			loc.IncIDynamic()
			fn(xs[i])
		}
	})
}

// splitIndex partitions [0, n) into at most k non-empty contiguous ranges.
func splitIndex(n, k int) [][2]int {
	if n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	out := make([][2]int, 0, k)
	for i := 0; i < k; i++ {
		lo := i * n / k
		hi := (i + 1) * n / k
		if hi > lo {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}
