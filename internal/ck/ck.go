// Package ck computes the six Chidamber–Kemerer object-oriented design
// metrics (WMC, DIT, NOC, CBO, RFC, LCOM) that the paper's §7.1 uses to
// compare suite complexity. The paper runs ckjm over the classes a JVM
// benchmark loads; here the metrics are computed over Go source with
// go/ast: named struct/interface types play the role of classes, methods
// with receivers are class methods, and struct embedding plays the role of
// inheritance (embedding is Go's mechanism for implementation reuse, so
// DIT/NOC measure the same reuse-depth notion).
package ck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
)

// ClassMetrics holds the six CK metrics of one type.
type ClassMetrics struct {
	Name string
	Pkg  string
	WMC  int // weighted methods per class (method count)
	DIT  int // depth of the "inheritance" (embedding) tree
	NOC  int // number of children (types embedding this one)
	CBO  int // coupling: distinct analyzed types referenced
	RFC  int // response: methods + distinct calls they make
	LCOM int // lack of cohesion: method pairs sharing no field
}

// Report is the analysis result over a set of packages.
type Report struct {
	Classes []ClassMetrics
	// TypeCount is the number of analyzed types ("loaded classes").
	TypeCount int
}

// classInfo is the intermediate per-type record.
type classInfo struct {
	name       string
	pkg        string
	fields     map[string]bool // named fields
	embedded   []string        // embedded type names
	fieldTypes []ast.Expr      // field type expressions (coupling edges)
	methods    []*ast.FuncDecl
}

// AnalyzeDirs parses the given directories (non-recursively) and computes
// CK metrics over all named struct and interface types found.
func AnalyzeDirs(dirs []string) (*Report, error) {
	classes := map[string]*classInfo{}
	fset := token.NewFileSet()

	for _, dir := range dirs {
		pkgs, err := parser.ParseDir(fset, dir, nil, 0)
		if err != nil {
			return nil, fmt.Errorf("ck: parsing %s: %w", dir, err)
		}
		for pkgName, pkg := range pkgs {
			for _, file := range pkg.Files {
				collectTypes(file, pkgName, classes)
			}
		}
		// Second pass for methods (receivers may precede type decls).
		for pkgName, pkg := range pkgs {
			for _, file := range pkg.Files {
				collectMethods(file, pkgName, classes)
			}
		}
	}
	return buildReport(classes), nil
}

func collectTypes(file *ast.File, pkg string, classes map[string]*classInfo) {
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			ci := &classInfo{name: ts.Name.Name, pkg: pkg, fields: map[string]bool{}}
			switch t := ts.Type.(type) {
			case *ast.StructType:
				for _, f := range t.Fields.List {
					ci.fieldTypes = append(ci.fieldTypes, f.Type)
					if len(f.Names) == 0 {
						// Embedded field: record the base type name.
						if name := baseTypeName(f.Type); name != "" {
							ci.embedded = append(ci.embedded, name)
						}
						continue
					}
					for _, n := range f.Names {
						ci.fields[n.Name] = true
					}
				}
			case *ast.InterfaceType:
				for _, m := range t.Methods.List {
					if len(m.Names) == 0 {
						if name := baseTypeName(m.Type); name != "" {
							ci.embedded = append(ci.embedded, name)
						}
					}
				}
			default:
				// Named basic/slice/map types can still carry methods.
			}
			classes[ci.name] = ci
		}
	}
}

func collectMethods(file *ast.File, pkg string, classes map[string]*classInfo) {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
			continue
		}
		recv := baseTypeName(fd.Recv.List[0].Type)
		if ci, ok := classes[recv]; ok && ci.pkg == pkg {
			ci.methods = append(ci.methods, fd)
		}
	}
}

// baseTypeName unwraps pointers/generics/selectors to the base identifier.
func baseTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return baseTypeName(t.X)
	case *ast.SelectorExpr:
		return t.Sel.Name
	case *ast.IndexExpr:
		return baseTypeName(t.X)
	case *ast.IndexListExpr:
		return baseTypeName(t.X)
	}
	return ""
}

func buildReport(classes map[string]*classInfo) *Report {
	// NOC: reverse embedding edges.
	children := map[string]int{}
	for _, ci := range classes {
		for _, e := range ci.embedded {
			if _, ok := classes[e]; ok {
				children[e]++
			}
		}
	}

	// DIT with memoization (cycle-guarded).
	ditMemo := map[string]int{}
	var dit func(name string, seen map[string]bool) int
	dit = func(name string, seen map[string]bool) int {
		if d, ok := ditMemo[name]; ok {
			return d
		}
		if seen[name] {
			return 0
		}
		seen[name] = true
		ci, ok := classes[name]
		if !ok {
			return 0
		}
		max := 0
		for _, e := range ci.embedded {
			if _, ok := classes[e]; !ok {
				continue
			}
			if d := dit(e, seen) + 1; d > max {
				max = d
			}
		}
		ditMemo[name] = max
		return max
	}

	rep := &Report{TypeCount: len(classes)}
	names := make([]string, 0, len(classes))
	for n := range classes {
		names = append(names, n)
	}
	sort.Strings(names)

	for _, name := range names {
		ci := classes[name]
		m := ClassMetrics{Name: name, Pkg: ci.pkg, WMC: len(ci.methods)}
		m.DIT = dit(name, map[string]bool{})
		m.NOC = children[name]
		m.CBO = coupling(ci, classes)
		m.RFC = response(ci)
		m.LCOM = cohesion(ci)
		rep.Classes = append(rep.Classes, m)
	}
	return rep
}

// coupling counts distinct analyzed types referenced by the class's fields
// and methods.
func coupling(ci *classInfo, classes map[string]*classInfo) int {
	refs := map[string]bool{}
	see := func(name string) {
		if name != "" && name != ci.name {
			if _, ok := classes[name]; ok {
				refs[name] = true
			}
		}
	}
	for _, e := range ci.embedded {
		see(e)
	}
	for _, ft := range ci.fieldTypes {
		ast.Inspect(ft, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				see(id.Name)
			}
			return true
		})
	}
	for _, fd := range ci.methods {
		ast.Inspect(fd, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				see(id.Name)
			}
			return true
		})
	}
	return len(refs)
}

// response counts the class's methods plus the distinct method/function
// names its method bodies invoke.
func response(ci *classInfo) int {
	calls := map[string]bool{}
	for _, fd := range ci.methods {
		ast.Inspect(fd, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				calls[fun.Name] = true
			case *ast.SelectorExpr:
				calls[fun.Sel.Name] = true
			}
			return true
		})
	}
	return len(ci.methods) + len(calls)
}

// cohesion computes LCOM = max(0, P - Q): P method pairs sharing no
// receiver field, Q pairs sharing at least one.
func cohesion(ci *classInfo) int {
	// Per-method accessed receiver fields.
	var fieldSets []map[string]bool
	for _, fd := range ci.methods {
		if len(fd.Recv.List[0].Names) == 0 {
			fieldSets = append(fieldSets, map[string]bool{})
			continue
		}
		recvName := fd.Recv.List[0].Names[0].Name
		set := map[string]bool{}
		ast.Inspect(fd, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == recvName && ci.fields[sel.Sel.Name] {
				set[sel.Sel.Name] = true
			}
			return true
		})
		fieldSets = append(fieldSets, set)
	}
	p, q := 0, 0
	for i := 0; i < len(fieldSets); i++ {
		for j := i + 1; j < len(fieldSets); j++ {
			shared := false
			for f := range fieldSets[i] {
				if fieldSets[j][f] {
					shared = true
					break
				}
			}
			if shared {
				q++
			} else {
				p++
			}
		}
	}
	if p > q {
		return p - q
	}
	return 0
}

// Summary aggregates a report the way Table 4 does: sum and average of
// each metric over all classes.
type Summary struct {
	Sum ClassMetrics
	Avg [6]float64 // WMC, DIT, CBO, NOC, RFC, LCOM
	N   int
}

// Summarize computes the Table 4 aggregation.
func (r *Report) Summarize() Summary {
	var s Summary
	s.N = len(r.Classes)
	for _, c := range r.Classes {
		s.Sum.WMC += c.WMC
		s.Sum.DIT += c.DIT
		s.Sum.NOC += c.NOC
		s.Sum.CBO += c.CBO
		s.Sum.RFC += c.RFC
		s.Sum.LCOM += c.LCOM
	}
	if s.N > 0 {
		n := float64(s.N)
		s.Avg = [6]float64{
			float64(s.Sum.WMC) / n, float64(s.Sum.DIT) / n, float64(s.Sum.CBO) / n,
			float64(s.Sum.NOC) / n, float64(s.Sum.RFC) / n, float64(s.Sum.LCOM) / n,
		}
	}
	return s
}
