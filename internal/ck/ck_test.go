package ck

import (
	"os"
	"path/filepath"
	"testing"
)

// writeTestPackage creates a temp dir with a small Go package of known CK
// structure.
func writeTestPackage(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	src := `package sample

type Base struct {
	id int
}

func (b *Base) ID() int { return b.id }
func (b *Base) SetID(v int) { b.id = v }

type Derived struct {
	Base
	name string
}

func (d *Derived) Name() string { return d.name }
func (d *Derived) Describe() string { return d.Name() }

type Other struct {
	ref *Derived
	n   int
}

func (o *Other) Use() int { return o.ref.Name2() }
func (o *Other) Count() int { return o.n }

type Leaf struct {
	Derived
}
`
	if err := os.WriteFile(filepath.Join(dir, "sample.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func analyze(t *testing.T) map[string]ClassMetrics {
	t.Helper()
	rep, err := AnalyzeDirs([]string{writeTestPackage(t)})
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]ClassMetrics{}
	for _, c := range rep.Classes {
		out[c.Name] = c
	}
	return out
}

func TestWMC(t *testing.T) {
	m := analyze(t)
	if m["Base"].WMC != 2 || m["Derived"].WMC != 2 || m["Other"].WMC != 2 || m["Leaf"].WMC != 0 {
		t.Errorf("WMC: base=%d derived=%d other=%d leaf=%d",
			m["Base"].WMC, m["Derived"].WMC, m["Other"].WMC, m["Leaf"].WMC)
	}
}

func TestDIT(t *testing.T) {
	m := analyze(t)
	if m["Base"].DIT != 0 {
		t.Errorf("Base DIT = %d", m["Base"].DIT)
	}
	if m["Derived"].DIT != 1 {
		t.Errorf("Derived DIT = %d", m["Derived"].DIT)
	}
	if m["Leaf"].DIT != 2 {
		t.Errorf("Leaf DIT = %d", m["Leaf"].DIT)
	}
}

func TestNOC(t *testing.T) {
	m := analyze(t)
	if m["Base"].NOC != 1 {
		t.Errorf("Base NOC = %d", m["Base"].NOC)
	}
	if m["Derived"].NOC != 1 {
		t.Errorf("Derived NOC = %d", m["Derived"].NOC)
	}
	if m["Other"].NOC != 0 {
		t.Errorf("Other NOC = %d", m["Other"].NOC)
	}
}

func TestCBOAndRFC(t *testing.T) {
	m := analyze(t)
	// Other references Derived (field + method body).
	if m["Other"].CBO < 1 {
		t.Errorf("Other CBO = %d, want >= 1", m["Other"].CBO)
	}
	// Derived.Describe calls Name: RFC = 2 methods + >=1 call.
	if m["Derived"].RFC < 3 {
		t.Errorf("Derived RFC = %d, want >= 3", m["Derived"].RFC)
	}
}

func TestLCOM(t *testing.T) {
	m := analyze(t)
	// Base: both methods access `id` -> Q=1, P=0 -> LCOM 0.
	if m["Base"].LCOM != 0 {
		t.Errorf("Base LCOM = %d, want 0", m["Base"].LCOM)
	}
	// Other: Use touches ref, Count touches n -> disjoint pair -> LCOM 1.
	if m["Other"].LCOM != 1 {
		t.Errorf("Other LCOM = %d, want 1", m["Other"].LCOM)
	}
}

func TestSummarize(t *testing.T) {
	rep, err := AnalyzeDirs([]string{writeTestPackage(t)})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summarize()
	if s.N != 4 {
		t.Fatalf("N = %d", s.N)
	}
	if s.Sum.WMC != 6 {
		t.Errorf("sum WMC = %d, want 6", s.Sum.WMC)
	}
	if s.Avg[0] != 1.5 {
		t.Errorf("avg WMC = %g, want 1.5", s.Avg[0])
	}
	if rep.TypeCount != 4 {
		t.Errorf("TypeCount = %d", rep.TypeCount)
	}
}

func TestAnalyzeRealPackages(t *testing.T) {
	// The repository's own substrate packages must analyze cleanly and
	// produce plausible metrics.
	rep, err := AnalyzeDirs([]string{
		"../actors", "../stm", "../memdb", "../rvm",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TypeCount < 10 {
		t.Errorf("analyzed only %d types", rep.TypeCount)
	}
	s := rep.Summarize()
	if s.Sum.WMC == 0 || s.Sum.RFC == 0 {
		t.Errorf("implausible summary: %+v", s.Sum)
	}
}

func TestBadDir(t *testing.T) {
	if _, err := AnalyzeDirs([]string{"/nonexistent-dir-xyz"}); err == nil {
		t.Error("missing directory accepted")
	}
}
