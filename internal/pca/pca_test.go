package pca

import (
	"math"
	"math/rand"
	"testing"
)

func TestAnalyzeShapeErrors(t *testing.T) {
	if _, err := Analyze(nil); err == nil {
		t.Error("want error for empty matrix")
	}
	if _, err := Analyze([][]float64{{}}); err == nil {
		t.Error("want error for zero columns")
	}
	if _, err := Analyze([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("want error for ragged matrix")
	}
}

// TestPerfectCorrelation checks that two perfectly correlated variables
// collapse onto one component carrying all variance.
func TestPerfectCorrelation(t *testing.T) {
	x := [][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}, {5, 10}}
	res, err := Analyze(x)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExplainedVariance[0] < 0.999 {
		t.Errorf("PC1 explains %g, want ~1", res.ExplainedVariance[0])
	}
	// Loadings of the two variables on PC1 should be equal in magnitude.
	if math.Abs(math.Abs(res.Loadings[0][0])-math.Abs(res.Loadings[1][0])) > 1e-9 {
		t.Errorf("PC1 loadings %g vs %g, want equal magnitude",
			res.Loadings[0][0], res.Loadings[1][0])
	}
}

// TestIndependentVariables checks that uncorrelated standardized variables
// yield eigenvalues near 1 each.
func TestIndependentVariables(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 2000
	x := make([][]float64, n)
	for i := range x {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	res, err := Analyze(x)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range res.Eigenvalues {
		if v < 0.8 || v > 1.2 {
			t.Errorf("eigenvalue[%d] = %g, want ~1", k, v)
		}
	}
}

// TestEigenvalueSumEqualsVariance: for standardized data the eigenvalues sum
// to the number of non-degenerate variables.
func TestEigenvalueSum(t *testing.T) {
	x := [][]float64{
		{1, 10, 3}, {2, 8, 1}, {3, 11, 4}, {4, 7, 2}, {5, 12, 6},
	}
	res, err := Analyze(x)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range res.Eigenvalues {
		sum += v
	}
	if math.Abs(sum-3) > 1e-9 {
		t.Errorf("eigenvalue sum = %g, want 3", sum)
	}
	// Eigenvalues are sorted descending.
	for i := 1; i < len(res.Eigenvalues); i++ {
		if res.Eigenvalues[i] > res.Eigenvalues[i-1]+1e-12 {
			t.Errorf("eigenvalues not descending: %v", res.Eigenvalues)
		}
	}
}

// TestLoadingsOrthonormal checks L^T L = I.
func TestLoadingsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, k := 50, 5
	x := make([][]float64, n)
	for i := range x {
		x[i] = make([]float64, k)
		base := rng.NormFloat64()
		for j := range x[i] {
			x[i][j] = base*float64(j) + rng.NormFloat64()
		}
	}
	res, err := Analyze(x)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < k; a++ {
		for b := 0; b < k; b++ {
			dot := 0.0
			for j := 0; j < k; j++ {
				dot += res.Loadings[j][a] * res.Loadings[j][b]
			}
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(dot-want) > 1e-8 {
				t.Errorf("L^T L [%d][%d] = %g, want %g", a, b, dot, want)
			}
		}
	}
}

// TestScoresVariance: the sample variance of the scores on component k
// equals eigenvalue k.
func TestScoresVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, k := 120, 4
	x := make([][]float64, n)
	for i := range x {
		x[i] = make([]float64, k)
		shared := rng.NormFloat64()
		for j := range x[i] {
			x[i][j] = shared + 0.5*rng.NormFloat64()
		}
	}
	res, err := Analyze(x)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < k; c++ {
		mean := 0.0
		for i := 0; i < n; i++ {
			mean += res.Scores[i][c]
		}
		mean /= float64(n)
		ss := 0.0
		for i := 0; i < n; i++ {
			d := res.Scores[i][c] - mean
			ss += d * d
		}
		v := ss / float64(n-1)
		if math.Abs(v-res.Eigenvalues[c]) > 1e-6*math.Max(1, res.Eigenvalues[c]) {
			t.Errorf("score variance on PC%d = %g, want eigenvalue %g",
				c+1, v, res.Eigenvalues[c])
		}
	}
}

// TestDegenerateColumn: a constant column must not produce NaNs.
func TestDegenerateColumn(t *testing.T) {
	x := [][]float64{{1, 7, 2}, {2, 7, 4}, {3, 7, 6}}
	res, err := Analyze(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Scores {
		for _, s := range res.Scores[i] {
			if math.IsNaN(s) {
				t.Fatal("NaN score with degenerate column")
			}
		}
	}
	for _, v := range res.Eigenvalues {
		if math.IsNaN(v) || v < -1e-9 {
			t.Fatalf("bad eigenvalue %g", v)
		}
	}
}

// TestKnownTwoByTwo checks the analytic solution for a 2x2 correlation
// matrix with correlation r: eigenvalues 1+r and 1-r.
func TestKnownTwoByTwo(t *testing.T) {
	// Construct data with controlled correlation.
	rng := rand.New(rand.NewSource(19))
	n := 5000
	r := 0.6
	x := make([][]float64, n)
	for i := range x {
		a := rng.NormFloat64()
		b := r*a + math.Sqrt(1-r*r)*rng.NormFloat64()
		x[i] = []float64{a, b}
	}
	res, err := Analyze(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Eigenvalues[0]-(1+r)) > 0.06 {
		t.Errorf("lambda1 = %g, want ~%g", res.Eigenvalues[0], 1+r)
	}
	if math.Abs(res.Eigenvalues[1]-(1-r)) > 0.06 {
		t.Errorf("lambda2 = %g, want ~%g", res.Eigenvalues[1], 1-r)
	}
}
