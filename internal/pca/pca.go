// Package pca implements principal component analysis as used in the
// paper's diversity study (§4.2): metric vectors are standardized to zero
// mean and unit variance, the correlation structure is decomposed with a
// symmetric Jacobi eigensolver, and the benchmarks are projected onto the
// principal components (scores) while the metric weights form the loadings
// of Table 3.
package pca

import (
	"errors"
	"math"
	"sort"
)

// ErrBadShape is returned when the input matrix is empty or ragged.
var ErrBadShape = errors.New("pca: input matrix must be non-empty and rectangular")

// Result holds the outcome of a PCA.
type Result struct {
	// Loadings[j][k] is the loading of variable j on principal component k
	// (the eigenvector matrix L of the paper's S = YL).
	Loadings [][]float64
	// Scores[i][k] is the projection of observation i onto component k.
	Scores [][]float64
	// Eigenvalues are the variances of the components, descending.
	Eigenvalues []float64
	// ExplainedVariance[k] is Eigenvalues[k] / sum(Eigenvalues).
	ExplainedVariance []float64
	// Means and StdDevs are the per-variable standardization parameters.
	Means, StdDevs []float64
}

// Analyze standardizes the N×K observation matrix X (rows are observations,
// columns are variables) and returns the principal components.
//
// Variables with zero variance carry no information; they are kept in the
// output with zero loadings so that indices line up with the input columns.
func Analyze(x [][]float64) (*Result, error) {
	n := len(x)
	if n == 0 {
		return nil, ErrBadShape
	}
	k := len(x[0])
	if k == 0 {
		return nil, ErrBadShape
	}
	for _, row := range x {
		if len(row) != k {
			return nil, ErrBadShape
		}
	}

	means := make([]float64, k)
	stds := make([]float64, k)
	for j := 0; j < k; j++ {
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += x[i][j]
		}
		means[j] = sum / float64(n)
	}
	for j := 0; j < k; j++ {
		ss := 0.0
		for i := 0; i < n; i++ {
			d := x[i][j] - means[j]
			ss += d * d
		}
		if n > 1 {
			stds[j] = math.Sqrt(ss / float64(n-1))
		}
	}

	// Standardized matrix Y.
	y := make([][]float64, n)
	for i := range y {
		y[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			if stds[j] > 0 {
				y[i][j] = (x[i][j] - means[j]) / stds[j]
			}
		}
	}

	// Covariance of Y (= correlation matrix of X for non-degenerate
	// columns).
	cov := make([][]float64, k)
	for a := range cov {
		cov[a] = make([]float64, k)
	}
	if n > 1 {
		for a := 0; a < k; a++ {
			for b := a; b < k; b++ {
				s := 0.0
				for i := 0; i < n; i++ {
					s += y[i][a] * y[i][b]
				}
				s /= float64(n - 1)
				cov[a][b] = s
				cov[b][a] = s
			}
		}
	}

	evals, evecs := jacobiEigen(cov)

	// Sort components by descending eigenvalue.
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return evals[order[a]] > evals[order[b]] })

	loadings := make([][]float64, k)
	for j := 0; j < k; j++ {
		loadings[j] = make([]float64, k)
		for c := 0; c < k; c++ {
			loadings[j][c] = evecs[j][order[c]]
		}
	}
	sortedVals := make([]float64, k)
	total := 0.0
	for c := 0; c < k; c++ {
		v := evals[order[c]]
		if v < 0 && v > -1e-12 {
			v = 0 // clamp numerical noise
		}
		sortedVals[c] = v
		total += v
	}
	explained := make([]float64, k)
	for c := 0; c < k; c++ {
		if total > 0 {
			explained[c] = sortedVals[c] / total
		}
	}

	// Canonicalize eigenvector signs: make the largest-magnitude loading of
	// each component positive, so results are stable across runs.
	for c := 0; c < k; c++ {
		maxAbs, argmax := 0.0, 0
		for j := 0; j < k; j++ {
			if a := math.Abs(loadings[j][c]); a > maxAbs {
				maxAbs, argmax = a, j
			}
		}
		if loadings[argmax][c] < 0 {
			for j := 0; j < k; j++ {
				loadings[j][c] = -loadings[j][c]
			}
		}
	}

	// Scores S = Y L.
	scores := make([][]float64, n)
	for i := 0; i < n; i++ {
		scores[i] = make([]float64, k)
		for c := 0; c < k; c++ {
			s := 0.0
			for j := 0; j < k; j++ {
				s += y[i][j] * loadings[j][c]
			}
			scores[i][c] = s
		}
	}

	return &Result{
		Loadings:          loadings,
		Scores:            scores,
		Eigenvalues:       sortedVals,
		ExplainedVariance: explained,
		Means:             means,
		StdDevs:           stds,
	}, nil
}

// jacobiEigen computes all eigenvalues and eigenvectors of the symmetric
// matrix a using the cyclic Jacobi rotation method. It returns the
// eigenvalues and the matrix of column eigenvectors.
func jacobiEigen(a [][]float64) ([]float64, [][]float64) {
	n := len(a)
	// Work on a copy.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
	}
	v := identity(n)

	for sweep := 0; sweep < 100; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-300 {
					continue
				}
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(m, v, p, q, c, s, n)
			}
		}
	}

	evals := make([]float64, n)
	for i := 0; i < n; i++ {
		evals[i] = m[i][i]
	}
	return evals, v
}

func identity(n int) [][]float64 {
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		v[i][i] = 1
	}
	return v
}

// rotate applies the Jacobi rotation J(p,q,θ) to m (two-sided) and
// accumulates it into the eigenvector matrix v (one-sided).
func rotate(m, v [][]float64, p, q int, c, s float64, n int) {
	for i := 0; i < n; i++ {
		mip, miq := m[i][p], m[i][q]
		m[i][p] = c*mip - s*miq
		m[i][q] = s*mip + c*miq
	}
	for j := 0; j < n; j++ {
		mpj, mqj := m[p][j], m[q][j]
		m[p][j] = c*mpj - s*mqj
		m[q][j] = s*mpj + c*mqj
	}
	for i := 0; i < n; i++ {
		vip, viq := v[i][p], v[i][q]
		v[i][p] = c*vip - s*viq
		v[i][q] = s*vip + c*viq
	}
}
