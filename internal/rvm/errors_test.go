package rvm

import (
	"errors"
	"strings"
	"testing"
)

// trap runs a single-method program and returns the error.
func trap(t *testing.T, classes []*Class, code func(a *Asm)) error {
	t.Helper()
	p := NewProgram()
	for _, c := range classes {
		if err := p.AddClass(c); err != nil {
			t.Fatal(err)
		}
	}
	a := NewAsm()
	code(a)
	m := a.MustBuild("main", 0)
	m.Static = true
	mainC := NewClass("Main", nil)
	mainC.AddMethod(m)
	if err := p.AddClass(mainC); err != nil {
		t.Fatal(err)
	}
	p.Entry = m
	_, err := NewInterp(p).Run()
	return err
}

func TestTrapNoSuchClass(t *testing.T) {
	err := trap(t, nil, func(a *Asm) { a.Sym(OpNew, "Ghost").Op(OpReturn) })
	if !errors.Is(err, ErrNoSuchClass) {
		t.Errorf("err = %v", err)
	}
}

func TestTrapNoSuchField(t *testing.T) {
	cell := NewClass("Cell", nil, "x")
	err := trap(t, []*Class{cell}, func(a *Asm) {
		a.Sym(OpNew, "Cell").Sym(OpGetField, "missing").Op(OpReturn)
	})
	if !errors.Is(err, ErrNoSuchField) {
		t.Errorf("getfield err = %v", err)
	}
	err = trap(t, []*Class{NewClass("Cell2", nil, "x")}, func(a *Asm) {
		a.Sym(OpNew, "Cell2").ConstInt(1).Sym(OpPutField, "missing").ConstInt(0).Op(OpReturn)
	})
	if !errors.Is(err, ErrNoSuchField) {
		t.Errorf("putfield err = %v", err)
	}
}

func TestTrapNoSuchMethod(t *testing.T) {
	err := trap(t, nil, func(a *Asm) {
		a.Invoke(OpInvokeStatic, "Main.ghost", 0).Op(OpReturn)
	})
	if !errors.Is(err, ErrNoSuchMethod) {
		t.Errorf("static err = %v", err)
	}
	base := NewClass("Thing", nil)
	err = trap(t, []*Class{base}, func(a *Asm) {
		a.Sym(OpNew, "Thing").Invoke(OpInvokeVirtual, "ghost", 1).Op(OpReturn)
	})
	if !errors.Is(err, ErrNoSuchMethod) {
		t.Errorf("virtual err = %v", err)
	}
	err = trap(t, nil, func(a *Asm) {
		a.Sym(OpInvokeDynamic, "nodots").Op(OpReturn)
	})
	if !errors.Is(err, ErrNoSuchMethod) {
		t.Errorf("bad qualified name err = %v", err)
	}
}

func TestTrapNullTargets(t *testing.T) {
	cases := []func(a *Asm){
		func(a *Asm) { a.Op(OpConstNull).ConstInt(1).Sym(OpPutField, "x").ConstInt(0).Op(OpReturn) },
		func(a *Asm) { a.Op(OpConstNull).ConstInt(0).Op(OpALoad).Op(OpReturn) },
		func(a *Asm) { a.Op(OpConstNull).ConstInt(0).ConstInt(1).Op(OpAStore).ConstInt(0).Op(OpReturn) },
		func(a *Asm) { a.Op(OpConstNull).Op(OpArrayLen).Op(OpReturn) },
		func(a *Asm) { a.Op(OpConstNull).Op(OpMonitorEnter).ConstInt(0).Op(OpReturn) },
		func(a *Asm) { a.Op(OpConstNull).Op(OpMonitorExit).ConstInt(0).Op(OpReturn) },
		func(a *Asm) { a.Op(OpConstNull).Invoke(OpInvokeVirtual, "m", 1).Op(OpReturn) },
		func(a *Asm) { a.Op(OpConstNull).ConstInt(1).ConstInt(2).Sym(OpCAS, "x").Op(OpReturn) },
		func(a *Asm) { a.Op(OpConstNull).ConstInt(1).Sym(OpAtomicAdd, "x").Op(OpReturn) },
		func(a *Asm) { a.Op(OpConstNull).ConstInt(1).Invoke(OpInvokeHandle, "", 1).Op(OpReturn) },
	}
	for i, code := range cases {
		if err := trap(t, nil, code); !errors.Is(err, ErrNullPointer) {
			t.Errorf("case %d: err = %v, want null pointer", i, err)
		}
	}
}

func TestTrapNegativeArraySize(t *testing.T) {
	err := trap(t, nil, func(a *Asm) {
		a.ConstInt(-3).Op(OpNewArray).Op(OpReturn)
	})
	if err == nil || !strings.Contains(err.Error(), "negative array size") {
		t.Errorf("err = %v", err)
	}
}

func TestTrapStackUnderflow(t *testing.T) {
	err := trap(t, nil, func(a *Asm) { a.Op(OpAdd).Op(OpReturn) })
	if !errors.Is(err, ErrStack) {
		t.Errorf("err = %v", err)
	}
	err = trap(t, nil, func(a *Asm) { a.Op(OpPop).ConstInt(0).Op(OpReturn) })
	if !errors.Is(err, ErrStack) {
		t.Errorf("pop err = %v", err)
	}
	err = trap(t, nil, func(a *Asm) { a.Op(OpDup).Op(OpReturn) })
	if !errors.Is(err, ErrStack) {
		t.Errorf("dup err = %v", err)
	}
}

func TestTrapCallDepth(t *testing.T) {
	p := NewProgram()
	a := NewAsm()
	a.Invoke(OpInvokeStatic, "Main.main", 0).Op(OpReturn)
	m := a.MustBuild("main", 0)
	m.Static = true
	mainC := NewClass("Main", nil)
	mainC.AddMethod(m)
	_ = p.AddClass(mainC)
	p.Entry = m
	_, err := NewInterp(p).Run()
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Errorf("err = %v", err)
	}
}

func TestTrapWrongArity(t *testing.T) {
	p := NewProgram()
	callee := NewAsm()
	callee.Load(0).Op(OpReturn)
	one := callee.MustBuild("one", 1)
	one.Static = true
	a := NewAsm()
	a.Invoke(OpInvokeStatic, "Main.one", 0).Op(OpReturn) // zero args to a 1-arg method
	m := a.MustBuild("main", 0)
	m.Static = true
	mainC := NewClass("Main", nil)
	mainC.AddMethod(m)
	mainC.AddMethod(one)
	_ = p.AddClass(mainC)
	p.Entry = m
	_, err := NewInterp(p).Run()
	if err == nil || !strings.Contains(err.Error(), "expects") {
		t.Errorf("err = %v", err)
	}
}

func TestRunWithoutEntry(t *testing.T) {
	p := NewProgram()
	if _, err := NewInterp(p).Run(); err == nil {
		t.Error("run without entry accepted")
	}
}

func TestUnknownOpcode(t *testing.T) {
	m := &Method{Name: "bad", NLocals: 0, Code: []Instr{{Op: Opcode(200)}}}
	m.Static = true
	p := NewProgram()
	mainC := NewClass("Main", nil)
	mainC.AddMethod(m)
	_ = p.AddClass(mainC)
	p.Entry = m
	if _, err := NewInterp(p).Run(); err == nil || !strings.Contains(err.Error(), "unknown opcode") {
		t.Errorf("err = %v", err)
	}
	if got := Opcode(200).String(); !strings.Contains(got, "op(200)") {
		t.Errorf("opcode name = %q", got)
	}
}

func TestValueHelpers(t *testing.T) {
	if !Null().IsNull() || Int(1).IsNull() {
		t.Error("IsNull wrong")
	}
	if Int(3).AsFloat() != 3.0 || Float(2.5).AsInt() != 2 {
		t.Error("conversions wrong")
	}
	if Null().AsInt() != 0 || Null().AsFloat() != 0 {
		t.Error("null conversions wrong")
	}
	if Ref(nil).Kind() != KindNull {
		t.Error("Ref(nil) should be null")
	}
	m := &Method{Name: "f"}
	h := Handle(m)
	if h.AsHandle() != m || !h.Truthy() {
		t.Error("handle accessors wrong")
	}
	if Handle(nil).Truthy() {
		t.Error("nil handle truthy")
	}
	if !Float(0.5).Truthy() || Float(0).Truthy() || !Int(1).Truthy() || Int(0).Truthy() {
		t.Error("numeric truthiness wrong")
	}
	obj := NewObject(NewClass("C", nil))
	if !Ref(obj).Truthy() || Ref(obj).AsRef() != obj {
		t.Error("ref accessors wrong")
	}
	// Equality across kinds.
	if !Int(2).Equal(Float(2.0)) {
		t.Error("numeric cross-kind equality failed")
	}
	if Int(1).Equal(Null()) || !Null().Equal(Null()) {
		t.Error("null equality wrong")
	}
	if !h.Equal(Handle(m)) || h.Equal(Handle(&Method{Name: "g"})) {
		t.Error("handle equality wrong")
	}
	for _, v := range []Value{Int(1), Float(1.5), Null(), h, Ref(obj)} {
		if v.String() == "" {
			t.Error("empty value string")
		}
	}
	if m.QualifiedName() != "f" {
		t.Errorf("classless method name = %q", m.QualifiedName())
	}
}
