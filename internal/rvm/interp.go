package rvm

import (
	"errors"
	"fmt"
	"strings"
)

// Interpreter errors (VM traps).
var (
	ErrNullPointer   = errors.New("rvm: null pointer")
	ErrBounds        = errors.New("rvm: array index out of bounds")
	ErrDivByZero     = errors.New("rvm: division by zero")
	ErrNoSuchMethod  = errors.New("rvm: method not found")
	ErrNoSuchField   = errors.New("rvm: field not found")
	ErrNoSuchClass   = errors.New("rvm: class not found")
	ErrBadCast       = errors.New("rvm: bad cast")
	ErrStack         = errors.New("rvm: operand stack underflow")
	ErrFuelExhausted = errors.New("rvm: execution fuel exhausted")
	ErrBadMonitor    = errors.New("rvm: unbalanced monitor exit")
	ErrNotInterface  = errors.New("rvm: receiver does not implement interface")
)

// Counters are the dynamic event counts of one execution, matching the
// paper's Table 2 instrumentation categories.
type Counters struct {
	Executed int64 // total instructions
	Synch    int64 // monitor enters
	Wait     int64
	Notify   int64
	Atomic   int64 // CAS + atomic add + monitor lock-word operations
	Park     int64
	Object   int64
	Array    int64
	Method   int64 // virtual/interface/handle dispatches
	IDynamic int64 // invokedynamic executions
}

// Interp executes bytecode with reference semantics. It is sequential: the
// concurrency opcodes have their single-threaded semantics (a CAS on a
// private object always succeeds, monitors recursion-count) and are fully
// accounted in Counters; the cost model in rvm/ir charges their real
// expense. This mirrors the paper's soundness arguments, which reason about
// single-thread observable effects (§5).
type Interp struct {
	Program *Program
	// Fuel bounds the number of executed instructions (0 = default 200M).
	Fuel int64
	// MaxDepth bounds the call stack (0 = 512).
	MaxDepth int

	Counters Counters
	fuel     int64
}

// NewInterp creates an interpreter for the program.
func NewInterp(p *Program) *Interp { return &Interp{Program: p} }

// Run executes the program's entry method with the given arguments.
func (vm *Interp) Run(args ...Value) (Value, error) {
	if vm.Program.Entry == nil {
		return Null(), errors.New("rvm: program has no entry method")
	}
	return vm.Call(vm.Program.Entry, args...)
}

// Call executes a method with the given arguments.
func (vm *Interp) Call(m *Method, args ...Value) (Value, error) {
	vm.fuel = vm.Fuel
	if vm.fuel == 0 {
		vm.fuel = 200_000_000
	}
	maxDepth := vm.MaxDepth
	if maxDepth == 0 {
		maxDepth = 512
	}
	return vm.invoke(m, args, 0, maxDepth)
}

func (vm *Interp) invoke(m *Method, args []Value, depth, maxDepth int) (Value, error) {
	if depth > maxDepth {
		return Null(), fmt.Errorf("rvm: call depth exceeded in %s", m.QualifiedName())
	}
	if len(args) != m.NArgs {
		return Null(), fmt.Errorf("rvm: %s expects %d args, got %d", m.QualifiedName(), m.NArgs, len(args))
	}
	locals := make([]Value, m.NLocals)
	copy(locals, args)
	var stack []Value

	push := func(v Value) { stack = append(stack, v) }
	pop := func() (Value, error) {
		if len(stack) == 0 {
			return Null(), fmt.Errorf("%w in %s", ErrStack, m.QualifiedName())
		}
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v, nil
	}
	pop2 := func() (a, b Value, err error) {
		b, err = pop()
		if err != nil {
			return
		}
		a, err = pop()
		return
	}

	pc := 0
	for pc >= 0 && pc < len(m.Code) {
		vm.fuel--
		if vm.fuel < 0 {
			return Null(), ErrFuelExhausted
		}
		vm.Counters.Executed++
		in := m.Code[pc]
		next := pc + 1
		switch in.Op {
		case OpNop:

		case OpConstInt:
			push(Int(in.I))
		case OpConstFloat:
			push(Float(in.F))
		case OpConstNull:
			push(Null())
		case OpLoad:
			push(locals[in.A])
		case OpStore:
			v, err := pop()
			if err != nil {
				return Null(), err
			}
			locals[in.A] = v
		case OpPop:
			if _, err := pop(); err != nil {
				return Null(), err
			}
		case OpDup:
			if len(stack) == 0 {
				return Null(), ErrStack
			}
			push(stack[len(stack)-1])

		case OpAdd, OpSub, OpMul, OpDiv, OpRem:
			a, b, err := pop2()
			if err != nil {
				return Null(), err
			}
			v, err := arith(in.Op, a, b)
			if err != nil {
				return Null(), err
			}
			push(v)
		case OpNeg:
			a, err := pop()
			if err != nil {
				return Null(), err
			}
			if a.Kind() == KindFloat {
				push(Float(-a.AsFloat()))
			} else {
				push(Int(-a.AsInt()))
			}

		case OpCmpLT, OpCmpLE, OpCmpGT, OpCmpGE, OpCmpEQ, OpCmpNE:
			a, b, err := pop2()
			if err != nil {
				return Null(), err
			}
			push(boolVal(compare(in.Op, a, b)))

		case OpJump:
			next = in.A
		case OpJumpIf:
			v, err := pop()
			if err != nil {
				return Null(), err
			}
			if v.Truthy() {
				next = in.A
			}
		case OpJumpIfNot:
			v, err := pop()
			if err != nil {
				return Null(), err
			}
			if !v.Truthy() {
				next = in.A
			}
		case OpReturn:
			return pop()
		case OpReturnVoid:
			return Null(), nil

		case OpNew:
			c, ok := vm.Program.Class(in.S)
			if !ok {
				return Null(), fmt.Errorf("%w: %s", ErrNoSuchClass, in.S)
			}
			vm.Counters.Object++
			push(Ref(NewObject(c)))
		case OpGetField:
			o, err := pop()
			if err != nil {
				return Null(), err
			}
			obj := o.AsRef()
			if obj == nil {
				return Null(), fmt.Errorf("%w: getfield %s in %s", ErrNullPointer, in.S, m.QualifiedName())
			}
			idx, ok := obj.Class.FieldIndex(in.S)
			if !ok {
				return Null(), fmt.Errorf("%w: %s.%s", ErrNoSuchField, obj.Class.Name, in.S)
			}
			push(obj.Fields[idx])
		case OpPutField:
			o, v, err := pop2()
			if err != nil {
				return Null(), err
			}
			obj := o.AsRef()
			if obj == nil {
				return Null(), fmt.Errorf("%w: putfield %s", ErrNullPointer, in.S)
			}
			idx, ok := obj.Class.FieldIndex(in.S)
			if !ok {
				return Null(), fmt.Errorf("%w: %s.%s", ErrNoSuchField, obj.Class.Name, in.S)
			}
			obj.Fields[idx] = v
		case OpNewArray:
			n, err := pop()
			if err != nil {
				return Null(), err
			}
			ln := n.AsInt()
			if ln < 0 {
				return Null(), fmt.Errorf("rvm: negative array size %d", ln)
			}
			vm.Counters.Array++
			push(Ref(NewArray(int(ln))))
		case OpALoad:
			arr, idx, err := pop2()
			if err != nil {
				return Null(), err
			}
			obj := arr.AsRef()
			if obj == nil {
				return Null(), fmt.Errorf("%w: aload", ErrNullPointer)
			}
			i := idx.AsInt()
			if i < 0 || i >= int64(len(obj.Elems)) {
				return Null(), fmt.Errorf("%w: %d of %d", ErrBounds, i, len(obj.Elems))
			}
			push(obj.Elems[i])
		case OpAStore:
			v, err := pop()
			if err != nil {
				return Null(), err
			}
			arr, idx, err := pop2()
			if err != nil {
				return Null(), err
			}
			obj := arr.AsRef()
			if obj == nil {
				return Null(), fmt.Errorf("%w: astore", ErrNullPointer)
			}
			i := idx.AsInt()
			if i < 0 || i >= int64(len(obj.Elems)) {
				return Null(), fmt.Errorf("%w: %d of %d", ErrBounds, i, len(obj.Elems))
			}
			obj.Elems[i] = v
		case OpArrayLen:
			arr, err := pop()
			if err != nil {
				return Null(), err
			}
			obj := arr.AsRef()
			if obj == nil {
				return Null(), fmt.Errorf("%w: arraylen", ErrNullPointer)
			}
			push(Int(int64(len(obj.Elems))))

		case OpInvokeStatic:
			callee, err := vm.resolveStatic(in.S)
			if err != nil {
				return Null(), err
			}
			args, err := popN(&stack, in.A)
			if err != nil {
				return Null(), err
			}
			ret, err := vm.invoke(callee, args, depth+1, maxDepth)
			if err != nil {
				return Null(), err
			}
			push(ret)
		case OpInvokeVirtual, OpInvokeInterface:
			args, err := popN(&stack, in.A)
			if err != nil {
				return Null(), err
			}
			if len(args) == 0 || args[0].AsRef() == nil {
				return Null(), fmt.Errorf("%w: invoke %s", ErrNullPointer, in.S)
			}
			recv := args[0].AsRef()
			callee, ok := recv.Class.ResolveMethod(in.S)
			if !ok {
				return Null(), fmt.Errorf("%w: %s.%s", ErrNoSuchMethod, recv.Class.Name, in.S)
			}
			vm.Counters.Method++
			ret, err := vm.invoke(callee, args, depth+1, maxDepth)
			if err != nil {
				return Null(), err
			}
			push(ret)
		case OpInvokeDynamic:
			// Bootstrap: resolve the target once and push a method handle
			// (the lambda-creation shape of JSR 292).
			callee, err := vm.resolveStatic(in.S)
			if err != nil {
				return Null(), err
			}
			vm.Counters.IDynamic++
			push(Handle(callee))
		case OpInvokeHandle:
			args, err := popN(&stack, in.A)
			if err != nil {
				return Null(), err
			}
			h, err := pop()
			if err != nil {
				return Null(), err
			}
			target := h.AsHandle()
			if target == nil {
				return Null(), fmt.Errorf("%w: invokehandle on %s", ErrNullPointer, h)
			}
			vm.Counters.Method++
			ret, err := vm.invoke(target, args, depth+1, maxDepth)
			if err != nil {
				return Null(), err
			}
			push(ret)

		case OpMonitorEnter:
			o, err := pop()
			if err != nil {
				return Null(), err
			}
			obj := o.AsRef()
			if obj == nil {
				return Null(), fmt.Errorf("%w: monitorenter", ErrNullPointer)
			}
			obj.monitorDepth++
			vm.Counters.Synch++
			vm.Counters.Atomic++ // lock-word CAS
		case OpMonitorExit:
			o, err := pop()
			if err != nil {
				return Null(), err
			}
			obj := o.AsRef()
			if obj == nil {
				return Null(), fmt.Errorf("%w: monitorexit", ErrNullPointer)
			}
			if obj.monitorDepth <= 0 {
				return Null(), ErrBadMonitor
			}
			obj.monitorDepth--
			vm.Counters.Atomic++
		case OpCAS:
			nv, err := pop()
			if err != nil {
				return Null(), err
			}
			o, exp, err := pop2()
			if err != nil {
				return Null(), err
			}
			obj := o.AsRef()
			if obj == nil {
				return Null(), fmt.Errorf("%w: cas %s", ErrNullPointer, in.S)
			}
			idx, ok := obj.Class.FieldIndex(in.S)
			if !ok {
				return Null(), fmt.Errorf("%w: %s.%s", ErrNoSuchField, obj.Class.Name, in.S)
			}
			vm.Counters.Atomic++
			if obj.Fields[idx].Equal(exp) {
				obj.Fields[idx] = nv
				push(Int(1))
			} else {
				push(Int(0))
			}
		case OpAtomicAdd:
			o, delta, err := pop2()
			if err != nil {
				return Null(), err
			}
			obj := o.AsRef()
			if obj == nil {
				return Null(), fmt.Errorf("%w: atomicadd %s", ErrNullPointer, in.S)
			}
			idx, ok := obj.Class.FieldIndex(in.S)
			if !ok {
				return Null(), fmt.Errorf("%w: %s.%s", ErrNoSuchField, obj.Class.Name, in.S)
			}
			vm.Counters.Atomic++
			old := obj.Fields[idx]
			obj.Fields[idx] = Int(old.AsInt() + delta.AsInt())
			push(old)
		case OpPark:
			vm.Counters.Park++
		case OpWait:
			if _, err := pop(); err != nil {
				return Null(), err
			}
			vm.Counters.Wait++
		case OpNotify:
			if _, err := pop(); err != nil {
				return Null(), err
			}
			vm.Counters.Notify++

		case OpInstanceOf:
			o, err := pop()
			if err != nil {
				return Null(), err
			}
			push(boolVal(vm.isInstance(o, in.S)))
		case OpCheckCast:
			o, err := pop()
			if err != nil {
				return Null(), err
			}
			if !o.IsNull() && !vm.isInstance(o, in.S) {
				return Null(), fmt.Errorf("%w: to %s", ErrBadCast, in.S)
			}
			push(o)

		default:
			return Null(), fmt.Errorf("rvm: unknown opcode %d at %s:%d", in.Op, m.QualifiedName(), pc)
		}
		pc = next
	}
	return Null(), nil // fell off the end: implicit void return
}

func (vm *Interp) isInstance(v Value, className string) bool {
	obj := v.AsRef()
	if obj == nil {
		return false
	}
	target, ok := vm.Program.Class(className)
	if ok {
		return obj.Class.IsSubclassOf(target)
	}
	// Unknown class names are treated as interface names.
	return obj.Class.Implements(className)
}

// resolveStatic resolves "Class.method".
func (vm *Interp) resolveStatic(qualified string) (*Method, error) {
	dot := strings.LastIndexByte(qualified, '.')
	if dot < 0 {
		return nil, fmt.Errorf("%w: %q is not Class.method", ErrNoSuchMethod, qualified)
	}
	c, ok := vm.Program.Class(qualified[:dot])
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchClass, qualified[:dot])
	}
	mth, ok := c.Methods[qualified[dot+1:]]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchMethod, qualified)
	}
	return mth, nil
}

func popN(stack *[]Value, n int) ([]Value, error) {
	s := *stack
	if len(s) < n {
		return nil, ErrStack
	}
	args := make([]Value, n)
	copy(args, s[len(s)-n:])
	*stack = s[:len(s)-n]
	return args, nil
}

func arith(op Opcode, a, b Value) (Value, error) {
	if a.Kind() == KindFloat || b.Kind() == KindFloat {
		x, y := a.AsFloat(), b.AsFloat()
		switch op {
		case OpAdd:
			return Float(x + y), nil
		case OpSub:
			return Float(x - y), nil
		case OpMul:
			return Float(x * y), nil
		case OpDiv:
			if y == 0 {
				return Null(), ErrDivByZero
			}
			return Float(x / y), nil
		case OpRem:
			if y == 0 {
				return Null(), ErrDivByZero
			}
			return Float(float64(int64(x) % int64(y))), nil
		}
	}
	x, y := a.AsInt(), b.AsInt()
	switch op {
	case OpAdd:
		return Int(x + y), nil
	case OpSub:
		return Int(x - y), nil
	case OpMul:
		return Int(x * y), nil
	case OpDiv:
		if y == 0 {
			return Null(), ErrDivByZero
		}
		return Int(x / y), nil
	case OpRem:
		if y == 0 {
			return Null(), ErrDivByZero
		}
		return Int(x % y), nil
	}
	return Null(), fmt.Errorf("rvm: bad arithmetic opcode %s", op)
}

func compare(op Opcode, a, b Value) bool {
	if a.Kind() == KindRef || b.Kind() == KindRef || a.Kind() == KindNull || b.Kind() == KindNull ||
		a.Kind() == KindHandle || b.Kind() == KindHandle {
		eq := a.Equal(b)
		switch op {
		case OpCmpEQ:
			return eq
		case OpCmpNE:
			return !eq
		default:
			return false
		}
	}
	if a.Kind() == KindFloat || b.Kind() == KindFloat {
		x, y := a.AsFloat(), b.AsFloat()
		switch op {
		case OpCmpLT:
			return x < y
		case OpCmpLE:
			return x <= y
		case OpCmpGT:
			return x > y
		case OpCmpGE:
			return x >= y
		case OpCmpEQ:
			return x == y
		case OpCmpNE:
			return x != y
		}
	}
	x, y := a.AsInt(), b.AsInt()
	switch op {
	case OpCmpLT:
		return x < y
	case OpCmpLE:
		return x <= y
	case OpCmpGT:
		return x > y
	case OpCmpGE:
		return x >= y
	case OpCmpEQ:
		return x == y
	case OpCmpNE:
		return x != y
	}
	return false
}

func boolVal(b bool) Value {
	if b {
		return Int(1)
	}
	return Int(0)
}
