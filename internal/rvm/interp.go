package rvm

import (
	"errors"
	"fmt"
	"strings"
)

// Interpreter errors (VM traps).
var (
	ErrNullPointer   = errors.New("rvm: null pointer")
	ErrBounds        = errors.New("rvm: array index out of bounds")
	ErrDivByZero     = errors.New("rvm: division by zero")
	ErrNoSuchMethod  = errors.New("rvm: method not found")
	ErrNoSuchField   = errors.New("rvm: field not found")
	ErrNoSuchClass   = errors.New("rvm: class not found")
	ErrBadCast       = errors.New("rvm: bad cast")
	ErrStack         = errors.New("rvm: operand stack underflow")
	ErrFuelExhausted = errors.New("rvm: execution fuel exhausted")
	ErrBadMonitor    = errors.New("rvm: unbalanced monitor exit")
	ErrNotInterface  = errors.New("rvm: receiver does not implement interface")
)

// Counters are the dynamic event counts of one execution, matching the
// paper's Table 2 instrumentation categories. They are tier-invariant:
// tier-1 superinstructions bump Executed once per fused original
// instruction (staged so traps observe tier-0's count-before-execute
// value) and inline-cache hits still bump Method, so the same program
// produces the same Counters at every tier. The one deliberate
// divergence is where ErrFuelExhausted fires: fuel is charged per basic
// block, so exhaustion lands within one block of the per-instruction
// budget (see DESIGN.md §10).
type Counters struct {
	Executed int64 // total instructions
	Synch    int64 // monitor enters
	Wait     int64
	Notify   int64
	Atomic   int64 // CAS + atomic add + monitor lock-word operations
	Park     int64
	Object   int64
	Array    int64
	Method   int64 // virtual/interface/handle dispatches
	IDynamic int64 // invokedynamic executions
}

// Interp executes bytecode with reference semantics. It is sequential: the
// concurrency opcodes have their single-threaded semantics (a CAS on a
// private object always succeeds, monitors recursion-count) and are fully
// accounted in Counters; the cost model in rvm/ir charges their real
// expense. This mirrors the paper's soundness arguments, which reason about
// single-thread observable effects (§5).
//
// Execution is tiered (see profile.go): verified methods run on pooled
// flat frames with block-granularity fuel (tier-0); under TierAuto hot
// methods are quickened to superinstruction dispatch with inline caches
// (tier-1), entered either at the next invocation or mid-loop by on-stack
// replacement. Methods that fail verification (unknown opcodes,
// deliberate underflows, inconsistent join depths) run on the original
// dynamic-stack path with unchanged seed semantics. All tiering state is
// per-interpreter, so concurrent interpreters may share one Program.
type Interp struct {
	Program *Program
	// Fuel bounds the number of executed instructions (0 = default 200M).
	Fuel int64
	// MaxDepth bounds the call stack (0 = 512).
	MaxDepth int
	// Tier selects the execution policy (default DefaultTier at
	// NewInterp; the zero value is TierAuto).
	Tier TierPolicy

	Counters Counters
	fuel     int64

	states map[*Method]*mstate
	pool   []*frame

	prof    bool
	opProf  []int64
	qopProf []int64
}

// NewInterp creates an interpreter for the program.
func NewInterp(p *Program) *Interp { return &Interp{Program: p, Tier: DefaultTier} }

// Run executes the program's entry method with the given arguments.
func (vm *Interp) Run(args ...Value) (Value, error) {
	if vm.Program.Entry == nil {
		return Null(), errors.New("rvm: program has no entry method")
	}
	return vm.Call(vm.Program.Entry, args...)
}

// Call executes a method with the given arguments.
func (vm *Interp) Call(m *Method, args ...Value) (Value, error) {
	vm.fuel = vm.Fuel
	if vm.fuel == 0 {
		vm.fuel = 200_000_000
	}
	maxDepth := vm.MaxDepth
	if maxDepth == 0 {
		maxDepth = 512
	}
	vm.prof = vm.Tier != TierBaseline && profilingEnabled.Load()
	if vm.prof && vm.opProf == nil {
		vm.opProf = make([]int64, numOpcodes)
		vm.qopProf = make([]int64, qopCount)
	}
	v, err := vm.invoke(m, args, 0, maxDepth)
	if vm.prof {
		vm.flushProfile()
	}
	return v, err
}

// invoke dispatches one call to the method's current tier.
func (vm *Interp) invoke(m *Method, args []Value, depth, maxDepth int) (Value, error) {
	if depth > maxDepth {
		return Null(), fmt.Errorf("rvm: call depth exceeded in %s", m.QualifiedName())
	}
	if len(args) != m.NArgs {
		return Null(), fmt.Errorf("rvm: %s expects %d args, got %d", m.QualifiedName(), m.NArgs, len(args))
	}
	st := vm.state(m)
	if vm.Tier != TierBaseline {
		st.invocations++
	}
	if st.q != nil {
		return vm.runQuick(st, args, depth, maxDepth)
	}
	if !st.noQuick && st.flat &&
		(vm.Tier == TierQuick ||
			(vm.Tier == TierAuto && (st.invocations >= TierUpInvocations || st.backedges >= TierUpBackedges))) {
		vm.quicken(st)
		if st.q != nil {
			return vm.runQuick(st, args, depth, maxDepth)
		}
	}
	if !st.flat {
		return vm.runDynamic(m, args, depth, maxDepth)
	}
	return vm.runFlat(st, m, args, depth, maxDepth)
}

// runFlat executes a verified method on the tier-0 flat-frame path.
func (vm *Interp) runFlat(st *mstate, m *Method, args []Value, depth, maxDepth int) (Value, error) {
	fr := vm.acquire(m.NLocals + st.maxStack)
	copy(fr.regs, args)
	fr.depth, fr.maxDepth = depth, maxDepth
	v, err := vm.flatLoop(st, m, fr, depth, maxDepth)
	vm.release(fr)
	return v, err
}

// flatLoop is the tier-0 switch interpreter over a flat frame: locals and
// operand stack share fr.regs, verified depths make per-pop underflow
// checks unnecessary, fuel is charged per basic block, and (under
// TierAuto) backedges and virtual-call receivers are profiled. A taken
// backward branch that crosses the quickening threshold tiers up mid-loop
// via on-stack replacement: the quickened code resumes on the same frame
// at the branch-target leader.
func (vm *Interp) flatLoop(st *mstate, m *Method, fr *frame, depth, maxDepth int) (Value, error) {
	code := m.Code
	charges := st.charges
	regs := fr.regs
	base := m.NLocals
	sp := base
	profile := vm.prof
	auto := vm.Tier == TierAuto

	pc := 0
	for pc >= 0 && pc < len(code) {
		if c := charges[pc]; c != 0 {
			vm.fuel -= int64(c)
			if vm.fuel < 0 {
				return Null(), ErrFuelExhausted
			}
		}
		vm.Counters.Executed++
		in := code[pc]
		if profile {
			vm.opProf[in.Op]++
		}
		next := pc + 1
		switch in.Op {
		case OpNop:

		case OpConstInt:
			regs[sp] = Int(in.I)
			sp++
		case OpConstFloat:
			regs[sp] = Float(in.F)
			sp++
		case OpConstNull:
			regs[sp] = Null()
			sp++
		case OpLoad:
			regs[sp] = regs[in.A]
			sp++
		case OpStore:
			sp--
			regs[in.A] = regs[sp]
		case OpPop:
			sp--
		case OpDup:
			regs[sp] = regs[sp-1]
			sp++

		case OpAdd, OpSub, OpMul, OpDiv, OpRem:
			b := regs[sp-1]
			a := regs[sp-2]
			sp--
			if v, ok := arithFast(in.Op, a, b); ok {
				regs[sp-1] = v
			} else {
				v, err := arith(in.Op, a, b)
				if err != nil {
					return Null(), err
				}
				regs[sp-1] = v
			}
		case OpNeg:
			a := regs[sp-1]
			if a.Kind() == KindFloat {
				regs[sp-1] = Float(-a.AsFloat())
			} else {
				regs[sp-1] = Int(-a.AsInt())
			}

		case OpCmpLT, OpCmpLE, OpCmpGT, OpCmpGE, OpCmpEQ, OpCmpNE:
			b := regs[sp-1]
			a := regs[sp-2]
			sp--
			regs[sp-1] = boolVal(cmpFast(in.Op, a, b))

		case OpJump:
			next = in.A
		case OpJumpIf:
			sp--
			if regs[sp].Truthy() {
				next = in.A
			}
		case OpJumpIfNot:
			sp--
			if !regs[sp].Truthy() {
				next = in.A
			}
		case OpReturn:
			sp--
			return regs[sp], nil
		case OpReturnVoid:
			return Null(), nil

		case OpNew:
			c, ok := vm.Program.Class(in.S)
			if !ok {
				return Null(), fmt.Errorf("%w: %s", ErrNoSuchClass, in.S)
			}
			vm.Counters.Object++
			regs[sp] = Ref(NewObject(c))
			sp++
		case OpGetField:
			obj := regs[sp-1].AsRef()
			if obj == nil {
				return Null(), fmt.Errorf("%w: getfield %s in %s", ErrNullPointer, in.S, m.QualifiedName())
			}
			idx, ok := obj.Class.FieldIndex(in.S)
			if !ok {
				return Null(), fmt.Errorf("%w: %s.%s", ErrNoSuchField, obj.Class.Name, in.S)
			}
			regs[sp-1] = obj.Fields[idx]
		case OpPutField:
			v := regs[sp-1]
			obj := regs[sp-2].AsRef()
			sp -= 2
			if obj == nil {
				return Null(), fmt.Errorf("%w: putfield %s", ErrNullPointer, in.S)
			}
			idx, ok := obj.Class.FieldIndex(in.S)
			if !ok {
				return Null(), fmt.Errorf("%w: %s.%s", ErrNoSuchField, obj.Class.Name, in.S)
			}
			obj.Fields[idx] = v
		case OpNewArray:
			ln := regs[sp-1].AsInt()
			if ln < 0 {
				return Null(), fmt.Errorf("rvm: negative array size %d", ln)
			}
			vm.Counters.Array++
			regs[sp-1] = Ref(NewArray(int(ln)))
		case OpALoad:
			i := regs[sp-1].AsInt()
			obj := regs[sp-2].AsRef()
			sp--
			if obj == nil {
				return Null(), fmt.Errorf("%w: aload", ErrNullPointer)
			}
			if i < 0 || i >= int64(len(obj.Elems)) {
				return Null(), fmt.Errorf("%w: %d of %d", ErrBounds, i, len(obj.Elems))
			}
			regs[sp-1] = obj.Elems[i]
		case OpAStore:
			v := regs[sp-1]
			i := regs[sp-2].AsInt()
			obj := regs[sp-3].AsRef()
			sp -= 3
			if obj == nil {
				return Null(), fmt.Errorf("%w: astore", ErrNullPointer)
			}
			if i < 0 || i >= int64(len(obj.Elems)) {
				return Null(), fmt.Errorf("%w: %d of %d", ErrBounds, i, len(obj.Elems))
			}
			obj.Elems[i] = v
		case OpArrayLen:
			obj := regs[sp-1].AsRef()
			if obj == nil {
				return Null(), fmt.Errorf("%w: arraylen", ErrNullPointer)
			}
			regs[sp-1] = Int(int64(len(obj.Elems)))

		case OpInvokeStatic:
			callee, err := vm.resolveStatic(in.S)
			if err != nil {
				return Null(), err
			}
			sp -= in.A
			ret, err := vm.invoke(callee, regs[sp:sp+in.A], depth+1, maxDepth)
			if err != nil {
				return Null(), err
			}
			regs[sp] = ret
			sp++
		case OpInvokeVirtual, OpInvokeInterface:
			sp -= in.A
			callArgs := regs[sp : sp+in.A]
			var recv *Object
			if in.A > 0 {
				recv = callArgs[0].AsRef()
			}
			if recv == nil {
				return Null(), fmt.Errorf("%w: invoke %s", ErrNullPointer, in.S)
			}
			callee, ok := recv.Class.ResolveMethod(in.S)
			if !ok {
				return Null(), fmt.Errorf("%w: %s.%s", ErrNoSuchMethod, recv.Class.Name, in.S)
			}
			if auto {
				st.profileSite(pc, recv.Class)
			}
			vm.Counters.Method++
			ret, err := vm.invoke(callee, callArgs, depth+1, maxDepth)
			if err != nil {
				return Null(), err
			}
			regs[sp] = ret
			sp++
		case OpInvokeDynamic:
			// Bootstrap: resolve the target once and push a method handle
			// (the lambda-creation shape of JSR 292).
			callee, err := vm.resolveStatic(in.S)
			if err != nil {
				return Null(), err
			}
			vm.Counters.IDynamic++
			regs[sp] = Handle(callee)
			sp++
		case OpInvokeHandle:
			sp -= in.A + 1
			h := regs[sp]
			target := h.AsHandle()
			if target == nil {
				return Null(), fmt.Errorf("%w: invokehandle on %s", ErrNullPointer, h)
			}
			vm.Counters.Method++
			ret, err := vm.invoke(target, regs[sp+1:sp+1+in.A], depth+1, maxDepth)
			if err != nil {
				return Null(), err
			}
			regs[sp] = ret
			sp++

		case OpMonitorEnter:
			sp--
			obj := regs[sp].AsRef()
			if obj == nil {
				return Null(), fmt.Errorf("%w: monitorenter", ErrNullPointer)
			}
			obj.monitorDepth++
			vm.Counters.Synch++
			vm.Counters.Atomic++ // lock-word CAS
		case OpMonitorExit:
			sp--
			obj := regs[sp].AsRef()
			if obj == nil {
				return Null(), fmt.Errorf("%w: monitorexit", ErrNullPointer)
			}
			if obj.monitorDepth <= 0 {
				return Null(), ErrBadMonitor
			}
			obj.monitorDepth--
			vm.Counters.Atomic++
		case OpCAS:
			nv := regs[sp-1]
			exp := regs[sp-2]
			obj := regs[sp-3].AsRef()
			sp -= 3
			if obj == nil {
				return Null(), fmt.Errorf("%w: cas %s", ErrNullPointer, in.S)
			}
			idx, ok := obj.Class.FieldIndex(in.S)
			if !ok {
				return Null(), fmt.Errorf("%w: %s.%s", ErrNoSuchField, obj.Class.Name, in.S)
			}
			vm.Counters.Atomic++
			if obj.Fields[idx].Equal(exp) {
				obj.Fields[idx] = nv
				regs[sp] = Int(1)
			} else {
				regs[sp] = Int(0)
			}
			sp++
		case OpAtomicAdd:
			delta := regs[sp-1]
			obj := regs[sp-2].AsRef()
			sp -= 2
			if obj == nil {
				return Null(), fmt.Errorf("%w: atomicadd %s", ErrNullPointer, in.S)
			}
			idx, ok := obj.Class.FieldIndex(in.S)
			if !ok {
				return Null(), fmt.Errorf("%w: %s.%s", ErrNoSuchField, obj.Class.Name, in.S)
			}
			vm.Counters.Atomic++
			old := obj.Fields[idx]
			obj.Fields[idx] = Int(old.AsInt() + delta.AsInt())
			regs[sp] = old
			sp++
		case OpPark:
			vm.Counters.Park++
		case OpWait:
			sp--
			vm.Counters.Wait++
		case OpNotify:
			sp--
			vm.Counters.Notify++

		case OpInstanceOf:
			regs[sp-1] = boolVal(vm.isInstance(regs[sp-1], in.S))
		case OpCheckCast:
			o := regs[sp-1]
			if !o.IsNull() && !vm.isInstance(o, in.S) {
				return Null(), fmt.Errorf("%w: to %s", ErrBadCast, in.S)
			}

		default:
			return Null(), fmt.Errorf("rvm: unknown opcode %d at %s:%d", in.Op, m.QualifiedName(), pc)
		}
		// Backedge profiling and OSR tier-up (TierAuto only): after a
		// taken backward branch, continue in quickened code on this very
		// frame — both tiers share the flat frame layout.
		if auto && next <= pc {
			switch in.Op {
			case OpJump, OpJumpIf, OpJumpIfNot:
				st.backedges++
				if st.q == nil && !st.noQuick && st.backedges >= TierUpBackedges {
					vm.quicken(st)
				}
				if st.q != nil {
					if qpc, ok := st.q.entry[next]; ok {
						fr.q = st.q
						fr.sp = sp
						return vm.dispatch(fr, qpc)
					}
				}
			}
		}
		pc = next
	}
	return Null(), nil // fell off the end: implicit void return
}

// runDynamic is the pre-verification interpreter: a growable operand
// stack with per-pop underflow checks and per-instruction fuel. Methods
// that fail verification (hand-built tests, adversarial bytecode) keep
// these exact seed semantics.
func (vm *Interp) runDynamic(m *Method, args []Value, depth, maxDepth int) (Value, error) {
	locals := make([]Value, m.NLocals)
	copy(locals, args)
	var stack []Value

	push := func(v Value) { stack = append(stack, v) }
	pop := func() (Value, error) {
		if len(stack) == 0 {
			return Null(), fmt.Errorf("%w in %s", ErrStack, m.QualifiedName())
		}
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v, nil
	}
	pop2 := func() (a, b Value, err error) {
		b, err = pop()
		if err != nil {
			return
		}
		a, err = pop()
		return
	}

	pc := 0
	for pc >= 0 && pc < len(m.Code) {
		vm.fuel--
		if vm.fuel < 0 {
			return Null(), ErrFuelExhausted
		}
		vm.Counters.Executed++
		in := m.Code[pc]
		next := pc + 1
		switch in.Op {
		case OpNop:

		case OpConstInt:
			push(Int(in.I))
		case OpConstFloat:
			push(Float(in.F))
		case OpConstNull:
			push(Null())
		case OpLoad:
			push(locals[in.A])
		case OpStore:
			v, err := pop()
			if err != nil {
				return Null(), err
			}
			locals[in.A] = v
		case OpPop:
			if _, err := pop(); err != nil {
				return Null(), err
			}
		case OpDup:
			if len(stack) == 0 {
				return Null(), ErrStack
			}
			push(stack[len(stack)-1])

		case OpAdd, OpSub, OpMul, OpDiv, OpRem:
			a, b, err := pop2()
			if err != nil {
				return Null(), err
			}
			v, err := arith(in.Op, a, b)
			if err != nil {
				return Null(), err
			}
			push(v)
		case OpNeg:
			a, err := pop()
			if err != nil {
				return Null(), err
			}
			if a.Kind() == KindFloat {
				push(Float(-a.AsFloat()))
			} else {
				push(Int(-a.AsInt()))
			}

		case OpCmpLT, OpCmpLE, OpCmpGT, OpCmpGE, OpCmpEQ, OpCmpNE:
			a, b, err := pop2()
			if err != nil {
				return Null(), err
			}
			push(boolVal(compare(in.Op, a, b)))

		case OpJump:
			next = in.A
		case OpJumpIf:
			v, err := pop()
			if err != nil {
				return Null(), err
			}
			if v.Truthy() {
				next = in.A
			}
		case OpJumpIfNot:
			v, err := pop()
			if err != nil {
				return Null(), err
			}
			if !v.Truthy() {
				next = in.A
			}
		case OpReturn:
			return pop()
		case OpReturnVoid:
			return Null(), nil

		case OpNew:
			c, ok := vm.Program.Class(in.S)
			if !ok {
				return Null(), fmt.Errorf("%w: %s", ErrNoSuchClass, in.S)
			}
			vm.Counters.Object++
			push(Ref(NewObject(c)))
		case OpGetField:
			o, err := pop()
			if err != nil {
				return Null(), err
			}
			obj := o.AsRef()
			if obj == nil {
				return Null(), fmt.Errorf("%w: getfield %s in %s", ErrNullPointer, in.S, m.QualifiedName())
			}
			idx, ok := obj.Class.FieldIndex(in.S)
			if !ok {
				return Null(), fmt.Errorf("%w: %s.%s", ErrNoSuchField, obj.Class.Name, in.S)
			}
			push(obj.Fields[idx])
		case OpPutField:
			o, v, err := pop2()
			if err != nil {
				return Null(), err
			}
			obj := o.AsRef()
			if obj == nil {
				return Null(), fmt.Errorf("%w: putfield %s", ErrNullPointer, in.S)
			}
			idx, ok := obj.Class.FieldIndex(in.S)
			if !ok {
				return Null(), fmt.Errorf("%w: %s.%s", ErrNoSuchField, obj.Class.Name, in.S)
			}
			obj.Fields[idx] = v
		case OpNewArray:
			n, err := pop()
			if err != nil {
				return Null(), err
			}
			ln := n.AsInt()
			if ln < 0 {
				return Null(), fmt.Errorf("rvm: negative array size %d", ln)
			}
			vm.Counters.Array++
			push(Ref(NewArray(int(ln))))
		case OpALoad:
			arr, idx, err := pop2()
			if err != nil {
				return Null(), err
			}
			obj := arr.AsRef()
			if obj == nil {
				return Null(), fmt.Errorf("%w: aload", ErrNullPointer)
			}
			i := idx.AsInt()
			if i < 0 || i >= int64(len(obj.Elems)) {
				return Null(), fmt.Errorf("%w: %d of %d", ErrBounds, i, len(obj.Elems))
			}
			push(obj.Elems[i])
		case OpAStore:
			v, err := pop()
			if err != nil {
				return Null(), err
			}
			arr, idx, err := pop2()
			if err != nil {
				return Null(), err
			}
			obj := arr.AsRef()
			if obj == nil {
				return Null(), fmt.Errorf("%w: astore", ErrNullPointer)
			}
			i := idx.AsInt()
			if i < 0 || i >= int64(len(obj.Elems)) {
				return Null(), fmt.Errorf("%w: %d of %d", ErrBounds, i, len(obj.Elems))
			}
			obj.Elems[i] = v
		case OpArrayLen:
			arr, err := pop()
			if err != nil {
				return Null(), err
			}
			obj := arr.AsRef()
			if obj == nil {
				return Null(), fmt.Errorf("%w: arraylen", ErrNullPointer)
			}
			push(Int(int64(len(obj.Elems))))

		case OpInvokeStatic:
			callee, err := vm.resolveStatic(in.S)
			if err != nil {
				return Null(), err
			}
			args, err := popN(&stack, in.A)
			if err != nil {
				return Null(), err
			}
			ret, err := vm.invoke(callee, args, depth+1, maxDepth)
			if err != nil {
				return Null(), err
			}
			push(ret)
		case OpInvokeVirtual, OpInvokeInterface:
			args, err := popN(&stack, in.A)
			if err != nil {
				return Null(), err
			}
			if len(args) == 0 || args[0].AsRef() == nil {
				return Null(), fmt.Errorf("%w: invoke %s", ErrNullPointer, in.S)
			}
			recv := args[0].AsRef()
			callee, ok := recv.Class.ResolveMethod(in.S)
			if !ok {
				return Null(), fmt.Errorf("%w: %s.%s", ErrNoSuchMethod, recv.Class.Name, in.S)
			}
			vm.Counters.Method++
			ret, err := vm.invoke(callee, args, depth+1, maxDepth)
			if err != nil {
				return Null(), err
			}
			push(ret)
		case OpInvokeDynamic:
			// Bootstrap: resolve the target once and push a method handle
			// (the lambda-creation shape of JSR 292).
			callee, err := vm.resolveStatic(in.S)
			if err != nil {
				return Null(), err
			}
			vm.Counters.IDynamic++
			push(Handle(callee))
		case OpInvokeHandle:
			args, err := popN(&stack, in.A)
			if err != nil {
				return Null(), err
			}
			h, err := pop()
			if err != nil {
				return Null(), err
			}
			target := h.AsHandle()
			if target == nil {
				return Null(), fmt.Errorf("%w: invokehandle on %s", ErrNullPointer, h)
			}
			vm.Counters.Method++
			ret, err := vm.invoke(target, args, depth+1, maxDepth)
			if err != nil {
				return Null(), err
			}
			push(ret)

		case OpMonitorEnter:
			o, err := pop()
			if err != nil {
				return Null(), err
			}
			obj := o.AsRef()
			if obj == nil {
				return Null(), fmt.Errorf("%w: monitorenter", ErrNullPointer)
			}
			obj.monitorDepth++
			vm.Counters.Synch++
			vm.Counters.Atomic++ // lock-word CAS
		case OpMonitorExit:
			o, err := pop()
			if err != nil {
				return Null(), err
			}
			obj := o.AsRef()
			if obj == nil {
				return Null(), fmt.Errorf("%w: monitorexit", ErrNullPointer)
			}
			if obj.monitorDepth <= 0 {
				return Null(), ErrBadMonitor
			}
			obj.monitorDepth--
			vm.Counters.Atomic++
		case OpCAS:
			nv, err := pop()
			if err != nil {
				return Null(), err
			}
			o, exp, err := pop2()
			if err != nil {
				return Null(), err
			}
			obj := o.AsRef()
			if obj == nil {
				return Null(), fmt.Errorf("%w: cas %s", ErrNullPointer, in.S)
			}
			idx, ok := obj.Class.FieldIndex(in.S)
			if !ok {
				return Null(), fmt.Errorf("%w: %s.%s", ErrNoSuchField, obj.Class.Name, in.S)
			}
			vm.Counters.Atomic++
			if obj.Fields[idx].Equal(exp) {
				obj.Fields[idx] = nv
				push(Int(1))
			} else {
				push(Int(0))
			}
		case OpAtomicAdd:
			o, delta, err := pop2()
			if err != nil {
				return Null(), err
			}
			obj := o.AsRef()
			if obj == nil {
				return Null(), fmt.Errorf("%w: atomicadd %s", ErrNullPointer, in.S)
			}
			idx, ok := obj.Class.FieldIndex(in.S)
			if !ok {
				return Null(), fmt.Errorf("%w: %s.%s", ErrNoSuchField, obj.Class.Name, in.S)
			}
			vm.Counters.Atomic++
			old := obj.Fields[idx]
			obj.Fields[idx] = Int(old.AsInt() + delta.AsInt())
			push(old)
		case OpPark:
			vm.Counters.Park++
		case OpWait:
			if _, err := pop(); err != nil {
				return Null(), err
			}
			vm.Counters.Wait++
		case OpNotify:
			if _, err := pop(); err != nil {
				return Null(), err
			}
			vm.Counters.Notify++

		case OpInstanceOf:
			o, err := pop()
			if err != nil {
				return Null(), err
			}
			push(boolVal(vm.isInstance(o, in.S)))
		case OpCheckCast:
			o, err := pop()
			if err != nil {
				return Null(), err
			}
			if !o.IsNull() && !vm.isInstance(o, in.S) {
				return Null(), fmt.Errorf("%w: to %s", ErrBadCast, in.S)
			}
			push(o)

		default:
			return Null(), fmt.Errorf("rvm: unknown opcode %d at %s:%d", in.Op, m.QualifiedName(), pc)
		}
		pc = next
	}
	return Null(), nil // fell off the end: implicit void return
}

func (vm *Interp) isInstance(v Value, className string) bool {
	obj := v.AsRef()
	if obj == nil {
		return false
	}
	target, ok := vm.Program.Class(className)
	if ok {
		return obj.Class.IsSubclassOf(target)
	}
	// Unknown class names are treated as interface names.
	return obj.Class.Implements(className)
}

// resolveStatic resolves "Class.method".
func (vm *Interp) resolveStatic(qualified string) (*Method, error) {
	dot := strings.LastIndexByte(qualified, '.')
	if dot < 0 {
		return nil, fmt.Errorf("%w: %q is not Class.method", ErrNoSuchMethod, qualified)
	}
	c, ok := vm.Program.Class(qualified[:dot])
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchClass, qualified[:dot])
	}
	mth, ok := c.Methods[qualified[dot+1:]]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchMethod, qualified)
	}
	return mth, nil
}

func popN(stack *[]Value, n int) ([]Value, error) {
	s := *stack
	if len(s) < n {
		return nil, ErrStack
	}
	args := make([]Value, n)
	copy(args, s[len(s)-n:])
	*stack = s[:len(s)-n]
	return args, nil
}

func arith(op Opcode, a, b Value) (Value, error) {
	if a.Kind() == KindFloat || b.Kind() == KindFloat {
		x, y := a.AsFloat(), b.AsFloat()
		switch op {
		case OpAdd:
			return Float(x + y), nil
		case OpSub:
			return Float(x - y), nil
		case OpMul:
			return Float(x * y), nil
		case OpDiv:
			if y == 0 {
				return Null(), ErrDivByZero
			}
			return Float(x / y), nil
		case OpRem:
			if y == 0 {
				return Null(), ErrDivByZero
			}
			return Float(float64(int64(x) % int64(y))), nil
		}
	}
	x, y := a.AsInt(), b.AsInt()
	switch op {
	case OpAdd:
		return Int(x + y), nil
	case OpSub:
		return Int(x - y), nil
	case OpMul:
		return Int(x * y), nil
	case OpDiv:
		if y == 0 {
			return Null(), ErrDivByZero
		}
		return Int(x / y), nil
	case OpRem:
		if y == 0 {
			return Null(), ErrDivByZero
		}
		return Int(x % y), nil
	}
	return Null(), fmt.Errorf("rvm: bad arithmetic opcode %s", op)
}

func compare(op Opcode, a, b Value) bool {
	if a.Kind() == KindRef || b.Kind() == KindRef || a.Kind() == KindNull || b.Kind() == KindNull ||
		a.Kind() == KindHandle || b.Kind() == KindHandle {
		eq := a.Equal(b)
		switch op {
		case OpCmpEQ:
			return eq
		case OpCmpNE:
			return !eq
		default:
			return false
		}
	}
	if a.Kind() == KindFloat || b.Kind() == KindFloat {
		x, y := a.AsFloat(), b.AsFloat()
		switch op {
		case OpCmpLT:
			return x < y
		case OpCmpLE:
			return x <= y
		case OpCmpGT:
			return x > y
		case OpCmpGE:
			return x >= y
		case OpCmpEQ:
			return x == y
		case OpCmpNE:
			return x != y
		}
	}
	x, y := a.AsInt(), b.AsInt()
	switch op {
	case OpCmpLT:
		return x < y
	case OpCmpLE:
		return x <= y
	case OpCmpGT:
		return x > y
	case OpCmpGE:
		return x >= y
	case OpCmpEQ:
		return x == y
	case OpCmpNE:
		return x != y
	}
	return false
}

func boolVal(b bool) Value {
	if b {
		return Int(1)
	}
	return Int(0)
}
