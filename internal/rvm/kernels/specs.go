package kernels

// The per-benchmark pattern mixes. Each kernel's weights are derived from
// the paper's published profile of that benchmark: the Table 7 metric
// counts (which primitives the benchmark exercises) and the Tables 12–15
// optimization responses (which §5 optimizations move it). The headline
// couplings reproduced here:
//
//	fj-kmeans         — synchronized-heavy    → LLC  (+71% in the paper)
//	finagle-chirper   — atomic-heavy churn    → EAWA (+24%)
//	future-genetic    — shared PRNG CAS pairs → AC   (+24%), MHS (+25%)
//	scrabble          — stream lambdas        → MHS  (+22%)
//	streams-mnemonics — dup-simulation chains → DBDS (+22%)
//	log-regression    — bounds-checked loops  → GM   (+15%)
//	als               — vectorizable loops    → GM (+11%), LV (+10%)
//	scimark.lu.small  — dense numeric loops   → GM (+137%), LV (+58%)
//
// Suites mirror the paper's four: renaissance, dacapo, scalabench,
// specjvm.
const (
	SuiteRenaissance = "renaissance"
	SuiteDaCapo      = "dacapo"
	SuiteScalaBench  = "scalabench"
	SuiteSPECjvm     = "specjvm"
)

// Specs returns all 68 kernel specs in suite order.
func Specs() []Spec {
	var out []Spec
	out = append(out, RenaissanceSpecs()...)
	out = append(out, DaCapoSpecs()...)
	out = append(out, ScalaBenchSpecs()...)
	out = append(out, SPECjvmSpecs()...)
	return out
}

// BySuite filters the specs of one suite.
func BySuite(suite string) []Spec {
	var out []Spec
	for _, s := range Specs() {
		if s.Suite == suite {
			out = append(out, s)
		}
	}
	return out
}

// Lookup finds a spec by suite and name.
func Lookup(suite, name string) (Spec, bool) {
	for _, s := range Specs() {
		if s.Suite == suite && s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// RenaissanceSpecs returns the 21 Table 1 kernels.
func RenaissanceSpecs() []Spec {
	r := func(name string, w Weights) Spec { return Spec{Name: name, Suite: SuiteRenaissance, W: w} }
	return []Spec{
		r("akka-uct", Weights{Events: 400, Alloc: 350, Virtual: 300, CASSingle: 200, CASChurn: 60, Lambda: 60, Bounds: 250, Framework: 400, FrameworkDepth: 32}),
		r("als", Weights{Vector: 500, Bounds: 250, Float: 1200, Lambda: 80, Framework: 250, FrameworkDepth: 30}),
		r("chi-square", Weights{CASRetry: 300, TypeChain: 420, CASChurn: 120, Bounds: 400, Vector: 150, Lambda: 200, Framework: 250, FrameworkDepth: 28}),
		r("db-shootout", Weights{Bounds: 700, Virtual: 500, Alloc: 400, SyncScattered: 200, Framework: 300, FrameworkDepth: 30}),
		r("dec-tree", Weights{Bounds: 500, Vector: 150, Virtual: 300, Float: 400, Framework: 350, FrameworkDepth: 30}),
		r("dotty", Weights{Lambda: 950, Virtual: 600, Alloc: 500, TypeChain: 250, SyncScattered: 300, Framework: 300, FrameworkDepth: 40}),
		r("finagle-chirper", Weights{CASChurn: 600, Lambda: 200, Events: 200, Virtual: 150, Framework: 300, FrameworkDepth: 32}),
		r("finagle-http", Weights{Events: 400, Alloc: 400, TypeChain: 250, Virtual: 300, CASSingle: 150, Framework: 300, FrameworkDepth: 30}),
		r("fj-kmeans", Weights{SyncLoop: 2600, Bounds: 20, CASSingle: 80, Float: 250, Framework: 120, FrameworkDepth: 24}),
		r("future-genetic", Weights{CASRetry: 2600, Lambda: 1800, CASChurn: 120, Bounds: 20, Events: 100, Framework: 130, FrameworkDepth: 24}),
		r("log-regression", Weights{Bounds: 3400, Vector: 120, Float: 300, Lambda: 80, Framework: 300, FrameworkDepth: 30}),
		r("movie-lens", Weights{Bounds: 150, Vector: 80, Virtual: 300, Alloc: 300, Lambda: 150, Events: 100, Framework: 300, FrameworkDepth: 30}),
		r("naive-bayes", Weights{Bounds: 2400, Float: 300, Vector: 80, CASSingle: 80, Framework: 250, FrameworkDepth: 28}),
		r("neo4j-analytics", Weights{Virtual: 700, Alloc: 500, Bounds: 700, TypeChain: 150, SyncScattered: 200, Lambda: 150, Framework: 350, FrameworkDepth: 36}),
		r("page-rank", Weights{Bounds: 200, CASSingle: 300, Alloc: 300, Vector: 60, Framework: 300, FrameworkDepth: 28}),
		r("philosophers", Weights{Events: 600, CASSingle: 500, SyncScattered: 300, Alloc: 150, Framework: 250, FrameworkDepth: 26}),
		r("reactors", Weights{Events: 700, Virtual: 400, Alloc: 350, CASSingle: 250, SyncScattered: 150, Framework: 250, FrameworkDepth: 26}),
		r("rx-scrabble", Weights{Lambda: 120, Virtual: 350, Alloc: 300, Bounds: 200, Events: 120, Framework: 300, FrameworkDepth: 30}),
		r("scrabble", Weights{Lambda: 2000, Bounds: 200, Alloc: 200, TypeChain: 100, Framework: 250, FrameworkDepth: 28}),
		r("stm-bench7", Weights{CASSingle: 600, Events: 350, TypeChain: 250, Bounds: 250, Alloc: 200, Framework: 250, FrameworkDepth: 26}),
		r("streams-mnemonics", Weights{TypeChain: 4800, Lambda: 500, Alloc: 120, Framework: 100, FrameworkDepth: 26}),
	}
}

// DaCapoSpecs returns the 14 DaCapo-like kernels (the paper's Table 13
// rows): object-oriented, allocation-heavy, little modern concurrency; the
// only strong optimization response is duplication simulation on a few
// members (eclipse, jython, tradebeans).
func DaCapoSpecs() []Spec {
	d := func(name string, w Weights) Spec { return Spec{Name: name, Suite: SuiteDaCapo, W: w} }
	return []Spec{
		d("avrora", Weights{Virtual: 700, Events: 300, Bounds: 120, SyncScattered: 150, Framework: 400, FrameworkDepth: 28}),
		d("batik", Weights{Virtual: 600, Alloc: 400, Float: 300, Bounds: 100, Framework: 350, FrameworkDepth: 26}),
		d("eclipse", Weights{Virtual: 800, Alloc: 600, TypeChain: 1400, Bounds: 120, SyncScattered: 200, Framework: 500, FrameworkDepth: 34}),
		d("fop", Weights{Virtual: 600, Alloc: 500, Bounds: 100, TypeChain: 120, Framework: 380, FrameworkDepth: 28}),
		d("h2", Weights{Bounds: 250, Virtual: 500, SyncScattered: 350, Alloc: 300, TypeChain: 250, Framework: 400, FrameworkDepth: 30}),
		d("jython", Weights{Virtual: 900, Alloc: 600, TypeChain: 1400, Bounds: 100, Framework: 450, FrameworkDepth: 32}),
		d("luindex", Weights{Bounds: 220, Virtual: 400, Alloc: 300, TypeChain: 500, Framework: 350, FrameworkDepth: 26}),
		d("lusearch-fix", Weights{Bounds: 220, Virtual: 450, Alloc: 350, SyncScattered: 120, Framework: 350, FrameworkDepth: 26}),
		d("pmd", Weights{Virtual: 700, Alloc: 500, TypeChain: 150, Bounds: 100, Framework: 400, FrameworkDepth: 30}),
		d("sunflow", Weights{Float: 800, Bounds: 150, Virtual: 300, TypeChain: 700, Alloc: 200, Framework: 300, FrameworkDepth: 24}),
		d("tomcat", Weights{Virtual: 600, Alloc: 450, SyncScattered: 300, Events: 200, Bounds: 100, Framework: 420, FrameworkDepth: 30}),
		d("tradebeans", Weights{Virtual: 700, Alloc: 550, TypeChain: 1900, Bounds: 120, SyncScattered: 200, Framework: 450, FrameworkDepth: 32}),
		d("tradesoap", Weights{Virtual: 750, Alloc: 600, Bounds: 120, SyncScattered: 250, Events: 120, Framework: 450, FrameworkDepth: 32}),
		d("xalan", Weights{Virtual: 650, Bounds: 150, Alloc: 350, SyncScattered: 300, Framework: 400, FrameworkDepth: 28}),
	}
}

// ScalaBenchSpecs returns the 12 ScalaBench-like kernels (Table 14):
// functional, allocation- and dispatch-heavy, with guard-motion responses
// on the numeric members (scalap, tmt) and duplication-simulation
// responses on the rewriting-heavy ones (factorie, scalaxb).
func ScalaBenchSpecs() []Spec {
	s := func(name string, w Weights) Spec { return Spec{Name: name, Suite: SuiteScalaBench, W: w} }
	return []Spec{
		s("actors", Weights{Events: 600, Virtual: 400, Alloc: 350, CASSingle: 200, Framework: 300, FrameworkDepth: 26}),
		s("apparat", Weights{Virtual: 700, Alloc: 500, Bounds: 300, CASRetry: 60, Framework: 350, FrameworkDepth: 28}),
		s("factorie", Weights{Alloc: 700, Virtual: 550, TypeChain: 1400, Float: 300, Bounds: 150, Framework: 350, FrameworkDepth: 28}),
		s("kiama", Weights{Virtual: 600, Alloc: 450, TypeChain: 800, Bounds: 120, Framework: 320, FrameworkDepth: 26}),
		s("scalac", Weights{Virtual: 800, Alloc: 600, TypeChain: 250, Bounds: 150, SyncScattered: 100, Framework: 420, FrameworkDepth: 30}),
		s("scaladoc", Weights{Virtual: 700, Alloc: 550, TypeChain: 180, Bounds: 140, Framework: 400, FrameworkDepth: 28}),
		s("scalap", Weights{Bounds: 2600, Virtual: 450, Alloc: 300, TypeChain: 140, Framework: 300, FrameworkDepth: 26}),
		s("scalariform", Weights{Virtual: 550, Alloc: 450, TypeChain: 170, Bounds: 150, Framework: 340, FrameworkDepth: 26}),
		s("scalatest", Weights{Virtual: 550, Alloc: 450, Events: 200, Bounds: 120, Framework: 330, FrameworkDepth: 26}),
		s("scalaxb", Weights{TypeChain: 1500, Bounds: 1800, Virtual: 450, Alloc: 350, Framework: 320, FrameworkDepth: 26}),
		s("specs", Weights{Virtual: 500, Alloc: 400, Events: 150, Bounds: 120, Framework: 320, FrameworkDepth: 26}),
		s("tmt", Weights{Bounds: 4200, Float: 450, Virtual: 350, Alloc: 300, Framework: 280, FrameworkDepth: 24}),
	}
}

// SPECjvmSpecs returns the 21 SPECjvm2008-like kernels (Table 15):
// compute-bound numeric and codec workloads with few objects and almost no
// framework code. The scimark members carry the paper's largest
// guard-motion and vectorization responses (lu.small: GM +137%, LV +58%).
func SPECjvmSpecs() []Spec {
	s := func(name string, w Weights) Spec { return Spec{Name: name, Suite: SuiteSPECjvm, W: w} }
	return []Spec{
		s("compiler.compiler", Weights{Virtual: 600, Alloc: 450, Bounds: 250, TypeChain: 150, Framework: 60, FrameworkDepth: 5}),
		s("compiler.sunflow", Weights{Virtual: 600, Alloc: 500, Bounds: 250, TypeChain: 140, Framework: 60, FrameworkDepth: 5}),
		s("compress", Weights{Bounds: 30, Float: 1600, Vector: 80, Framework: 40, FrameworkDepth: 3}),
		s("crypto.aes", Weights{Bounds: 20, Float: 1500, Vector: 0, Framework: 40, FrameworkDepth: 3}),
		s("crypto.rsa", Weights{Float: 900, Bounds: 40, Framework: 40, FrameworkDepth: 3}),
		s("crypto.signverify", Weights{Bounds: 450, Float: 700, Framework: 40, FrameworkDepth: 3}),
		s("derby", Weights{Bounds: 250, Virtual: 500, SyncScattered: 400, Alloc: 350, Events: 150, Framework: 80, FrameworkDepth: 6}),
		s("mpegaudio", Weights{Bounds: 120, Float: 900, Vector: 60, Framework: 40, FrameworkDepth: 3}),
		s("scimark.fft.large", Weights{Float: 1600, Bounds: 10, Vector: 0, Framework: 30, FrameworkDepth: 2}),
		s("scimark.fft.small", Weights{Float: 1600, Bounds: 12, Vector: 0, Framework: 30, FrameworkDepth: 2}),
		s("scimark.lu.large", Weights{Bounds: 2100, Vector: 1100, Float: 400, Framework: 30, FrameworkDepth: 2}),
		s("scimark.lu.small", Weights{Bounds: 7000, Vector: 4400, Float: 40}),
		s("scimark.monte_carlo", Weights{Float: 1200, TypeChain: 500, Bounds: 80, Framework: 30, FrameworkDepth: 2}),
		s("scimark.sor.large", Weights{Bounds: 3200, Float: 250, Vector: 60, Framework: 30, FrameworkDepth: 2}),
		s("scimark.sor.small", Weights{Bounds: 3250, Float: 250, Vector: 60, Framework: 30, FrameworkDepth: 2}),
		s("scimark.sparse.large", Weights{Bounds: 900, Float: 450, Framework: 30, FrameworkDepth: 2}),
		s("scimark.sparse.small", Weights{Bounds: 900, Float: 470, Framework: 30, FrameworkDepth: 2}),
		s("serial", Weights{Bounds: 300, Virtual: 450, Alloc: 400, TypeChain: 180, Framework: 60, FrameworkDepth: 5}),
		s("sunflow", Weights{Float: 900, Bounds: 250, Virtual: 250, Alloc: 200, Framework: 50, FrameworkDepth: 4}),
		s("xml.transform", Weights{Virtual: 550, Bounds: 280, Alloc: 400, TypeChain: 160, Framework: 60, FrameworkDepth: 5}),
		s("xml.validation", Weights{Bounds: 300, Virtual: 500, Alloc: 350, TypeChain: 140, Framework: 60, FrameworkDepth: 5}),
	}
}
