package kernels

import (
	"testing"

	"renaissance/internal/rvm"
	"renaissance/internal/rvm/ir"
	"renaissance/internal/rvm/jit"
	"renaissance/internal/rvm/opt"
)

func TestSpecsInventory(t *testing.T) {
	all := Specs()
	if len(all) != 68 {
		t.Fatalf("total specs = %d, want 68 (21+14+12+21)", len(all))
	}
	counts := map[string]int{}
	names := map[string]bool{}
	for _, s := range all {
		counts[s.Suite]++
		key := s.Suite + "/" + s.Name
		if names[key] {
			t.Errorf("duplicate spec %s", key)
		}
		names[key] = true
	}
	want := map[string]int{
		SuiteRenaissance: 21, SuiteDaCapo: 14, SuiteScalaBench: 12, SuiteSPECjvm: 21,
	}
	for suite, n := range want {
		if counts[suite] != n {
			t.Errorf("suite %s has %d specs, want %d", suite, counts[suite], n)
		}
	}
	if got := len(BySuite(SuiteRenaissance)); got != 21 {
		t.Errorf("BySuite(renaissance) = %d", got)
	}
	if _, ok := Lookup(SuiteRenaissance, "fj-kmeans"); !ok {
		t.Error("Lookup(fj-kmeans) failed")
	}
	if _, ok := Lookup(SuiteRenaissance, "nope"); ok {
		t.Error("Lookup of bogus name succeeded")
	}
}

// TestAllKernelsDifferential builds every kernel at a small scale and
// checks that the bytecode interpreter, the baseline pipeline, and the
// full optimizing pipeline all compute the same checksum.
func TestAllKernelsDifferential(t *testing.T) {
	for _, spec := range Specs() {
		spec := spec
		t.Run(spec.Suite+"/"+spec.Name, func(t *testing.T) {
			p, err := Build(spec, 1)
			if err != nil {
				t.Fatal(err)
			}
			ref := rvm.NewInterp(p)
			ref.Fuel = 2_000_000_000
			want, err := ref.Run()
			if err != nil {
				t.Fatalf("bytecode reference: %v", err)
			}
			for _, pipe := range []*opt.Pipeline{opt.BaselinePipeline(), opt.OptPipeline()} {
				c, err := jit.Compile(p, pipe)
				if err != nil {
					t.Fatalf("%s compile: %v", pipe.Name, err)
				}
				got, stats, err := c.Run()
				if err != nil {
					t.Fatalf("%s run: %v", pipe.Name, err)
				}
				if !got.Equal(want) {
					t.Errorf("%s checksum = %v, want %v", pipe.Name, got, want)
				}
				if stats.Cycles <= 0 {
					t.Errorf("%s charged no cycles", pipe.Name)
				}
			}
		})
	}
}

// TestOptBeatsBaselineOnMostKernels reproduces the Figure 6 expectation:
// the optimizing pipeline wins on the large majority of kernels.
func TestOptBeatsBaselineOnMostKernels(t *testing.T) {
	wins, total := 0, 0
	for _, spec := range Specs() {
		p, err := Build(spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		base, err := jit.Compile(p, opt.BaselinePipeline())
		if err != nil {
			t.Fatal(err)
		}
		full, err := jit.Compile(p, opt.OptPipeline())
		if err != nil {
			t.Fatal(err)
		}
		_, bs, err := base.Run()
		if err != nil {
			t.Fatal(err)
		}
		_, fs, err := full.Run()
		if err != nil {
			t.Fatal(err)
		}
		total++
		if fs.Cycles < bs.Cycles {
			wins++
		}
	}
	if wins*4 < total*3 {
		t.Errorf("opt pipeline wins %d/%d kernels; expected >= 75%%", wins, total)
	}
}

// TestHeadlineImpacts checks the paper's marquee benchmark-optimization
// couplings: the coupled optimization must have a clearly positive impact
// on its benchmark.
func TestHeadlineImpacts(t *testing.T) {
	cases := []struct {
		bench     string
		opt       string
		minImpact float64
	}{
		{"fj-kmeans", opt.NameLLC, 0.30},
		{"finagle-chirper", opt.NameEAWA, 0.10},
		{"future-genetic", opt.NameAC, 0.05},
		{"future-genetic", opt.NameMHS, 0.05},
		{"scrabble", opt.NameMHS, 0.10},
		{"streams-mnemonics", opt.NameDBDS, 0.05},
		{"log-regression", opt.NameGM, 0.08},
		{"als", opt.NameLV, 0.04},
	}
	for _, c := range cases {
		spec, ok := Lookup(SuiteRenaissance, c.bench)
		if !ok {
			t.Fatalf("missing spec %s", c.bench)
		}
		p, err := Build(spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		impact, with, without, err := jit.MeasureImpact(p, c.opt)
		if err != nil {
			t.Fatalf("%s/%s: %v", c.bench, c.opt, err)
		}
		if impact < c.minImpact {
			t.Errorf("%s: impact of %s = %.1f%% (with=%d without=%d), want >= %.0f%%",
				c.bench, c.opt, 100*impact, with, without, 100*c.minImpact)
		}
	}
}

// TestSPECjvmGuardMotionDominance: the paper's biggest GM effects are on
// scimark.lu (+69%/+137%) where disabling GM also disables vectorization.
func TestSPECjvmGuardMotionDominance(t *testing.T) {
	spec, ok := Lookup(SuiteSPECjvm, "scimark.lu.small")
	if !ok {
		t.Fatal("missing scimark.lu.small")
	}
	p, err := Build(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	impact, _, _, err := jit.MeasureImpact(p, opt.NameGM)
	if err != nil {
		t.Fatal(err)
	}
	if impact < 0.3 {
		t.Errorf("GM impact on scimark.lu.small = %.1f%%, want >= 30%%", 100*impact)
	}
	// Disabling GM must also stop vectorization (the §5.6 interaction).
	disabled, err := jit.Compile(p, opt.OptPipeline().Disable(opt.NameGM))
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := disabled.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ops[ir.OpVecArith] != 0 {
		t.Errorf("vector ops executed with GM disabled: %d", stats.Ops[ir.OpVecArith])
	}
}

// TestScaleGrowsWork checks the scale knob.
func TestScaleGrowsWork(t *testing.T) {
	spec, _ := Lookup(SuiteRenaissance, "scrabble")
	p1, err := Build(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Build(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := jit.Compile(p1, opt.BaselinePipeline())
	c2, _ := jit.Compile(p2, opt.BaselinePipeline())
	_, s1, err := c1.Run()
	if err != nil {
		t.Fatal(err)
	}
	_, s2, err := c2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if s2.Cycles < s1.Cycles*3/2 {
		t.Errorf("scale 2 cycles (%d) not ~2x scale 1 (%d)", s2.Cycles, s1.Cycles)
	}
}

// TestEmptyWeights rejects a spec with no patterns.
func TestEmptyWeights(t *testing.T) {
	if _, err := Build(Spec{Name: "x", Suite: "y"}, 1); err == nil {
		t.Error("empty weights accepted")
	}
}

// TestKernelMetricProfiles spot-checks that kernels exhibit the metric
// profile their benchmark has in Table 7 (e.g. fj-kmeans is synch-heavy,
// finagle-chirper atomic-heavy, scrabble idynamic-heavy).
func TestKernelMetricProfiles(t *testing.T) {
	profile := func(name string) rvm.Counters {
		spec, ok := Lookup(SuiteRenaissance, name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		p, err := Build(spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		vm := rvm.NewInterp(p)
		vm.Fuel = 2_000_000_000
		if _, err := vm.Run(); err != nil {
			t.Fatal(err)
		}
		return vm.Counters
	}
	fj := profile("fj-kmeans")
	chirper := profile("finagle-chirper")
	scrabble := profile("scrabble")

	if fj.Synch <= chirper.Synch || fj.Synch <= scrabble.Synch {
		t.Errorf("fj-kmeans synch (%d) should dominate (chirper %d, scrabble %d)",
			fj.Synch, chirper.Synch, scrabble.Synch)
	}
	if chirper.Atomic <= scrabble.Atomic {
		t.Errorf("finagle-chirper atomic (%d) should exceed scrabble (%d)",
			chirper.Atomic, scrabble.Atomic)
	}
	if scrabble.IDynamic <= fj.IDynamic {
		t.Errorf("scrabble idynamic (%d) should exceed fj-kmeans (%d)",
			scrabble.IDynamic, fj.IDynamic)
	}
}
