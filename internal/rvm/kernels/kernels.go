// Package kernels builds the RVM bytecode kernels used by the compiler
// experiments (Figures 5, 6, 7 and Tables 12–16). The paper measures its
// optimizations on 68 benchmarks across four suites; each kernel here is
// synthesized from a per-benchmark mix of code patterns, where the mix is
// derived from the benchmark's published metric profile (Table 7) and
// optimization response (Tables 12–15):
//
//   - CASRetry — consecutive CAS retry loops (§5.3's shape; responds to AC)
//   - CASSingle — a single CAS retry loop (atomic traffic with no AC fusion)
//   - CASChurn — short-lived objects mutated with CAS (§5.1; responds to EAWA)
//   - SyncLoop — lock/unlock around a small loop body (§5.2; responds to LLC)
//   - SyncScattered — synchronization that LLC cannot legally coarsen
//   - Lambda — method-handle invocation of a lambda (§5.4; responds to MHS)
//   - Bounds — guard-dense array loops (§5.5; responds to GM)
//   - Vector — element-wise array arithmetic (§5.6; responds to GM+LV)
//   - TypeChain — repeated type tests after merges (§5.7; responds to DBDS)
//   - Virtual — megamorphic virtual dispatch (OO baseline behavior)
//   - Alloc — escaping allocation churn (memory pressure)
//   - Events — park / wait / notify traffic (concurrency metrics)
//   - Float — scalar floating-point compute (SPECjvm-like kernels)
//
// DESIGN.md documents this synthesis as the substitution for running the
// original Java workloads on a JVM.
package kernels

import (
	"fmt"

	"renaissance/internal/rvm"
)

// Weights gives the per-pattern iteration counts of one kernel (before
// scaling).
type Weights struct {
	CASRetry      int
	CASSingle     int
	CASChurn      int
	SyncLoop      int
	SyncScattered int
	Lambda        int
	Bounds        int
	Vector        int
	TypeChain     int
	Virtual       int
	Alloc         int
	Events        int
	Float         int
	// Framework simulates framework/library code: FrameworkDepth distinct
	// medium-sized methods (too big to inline) dispatched round-robin for
	// Framework iterations. Application-class suites (Renaissance, DaCapo,
	// ScalaBench) execute far more distinct hot methods than the SPECjvm
	// kernels — the Figure 7 and Table 5 contrast.
	Framework      int
	FrameworkDepth int
}

// Spec names one benchmark kernel.
type Spec struct {
	Name  string
	Suite string
	W     Weights
}

// Build synthesizes the kernel program for the spec. The scale multiplies
// every pattern's iteration count (scale 1 yields a kernel of roughly
// 10^5 executed IR instructions).
func Build(spec Spec, scale int) (*rvm.Program, error) {
	if scale < 1 {
		scale = 1
	}
	p := rvm.NewProgram()
	for _, c := range supportClasses() {
		if err := p.AddClass(c); err != nil {
			return nil, err
		}
	}

	main := rvm.NewClass("Main", nil)
	addLambda(main)

	type patternCall struct {
		method string
		iters  int
	}
	var calls []patternCall
	addPattern := func(name string, weight int, build func(n int) *rvm.Method) {
		if weight <= 0 {
			return
		}
		n := weight * scale
		m := build(n)
		m.Static = true
		main.AddMethod(m)
		calls = append(calls, patternCall{m.Name, n})
	}

	w := spec.W
	addPattern("casRetry", w.CASRetry, buildCASRetry)
	addPattern("casSingle", w.CASSingle, buildCASSingle)
	addPattern("casChurn", w.CASChurn, buildCASChurn)
	addPattern("syncLoop", w.SyncLoop, buildSyncLoop)
	addPattern("syncScattered", w.SyncScattered, buildSyncScattered)
	addPattern("lambda", w.Lambda, buildLambda)
	addPattern("bounds", w.Bounds, buildBounds)
	addPattern("vector", w.Vector, buildVector)
	addPattern("typeChain", w.TypeChain, buildTypeChain)
	addPattern("virtual", w.Virtual, buildVirtual)
	addPattern("alloc", w.Alloc, buildAlloc)
	addPattern("events", w.Events, buildEvents)
	addPattern("floatk", w.Float, buildFloat)
	if w.Framework > 0 && w.FrameworkDepth > 0 {
		for _, m := range buildFrameworkMethods(w.FrameworkDepth) {
			m.Static = true
			main.AddMethod(m)
		}
		drv := buildFrameworkDriver(w.FrameworkDepth)
		drv.Static = true
		main.AddMethod(drv)
		calls = append(calls, patternCall{drv.Name, w.Framework * scale})
	}
	if len(calls) == 0 {
		return nil, fmt.Errorf("kernels: %s/%s has no pattern weights", spec.Suite, spec.Name)
	}

	// main: checksum = sum of the pattern results.
	a := rvm.NewAsm()
	a.ConstInt(0).Store(0)
	for _, c := range calls {
		a.Load(0)
		a.ConstInt(int64(c.iters))
		a.Invoke(rvm.OpInvokeStatic, "Main."+c.method, 1)
		a.Op(rvm.OpAdd)
		a.Store(0)
	}
	a.Load(0).Op(rvm.OpReturn)
	entry := a.MustBuild("main", 0)
	entry.Static = true
	main.AddMethod(entry)

	if err := p.AddClass(main); err != nil {
		return nil, err
	}
	p.Entry = entry
	return p, nil
}

// supportClasses returns the class library the patterns use.
func supportClasses() []*rvm.Class {
	cell := rvm.NewClass("Cell", nil, "x")
	counter := rvm.NewClass("Counter", nil, "x")
	lock := rvm.NewClass("Lock", nil, "v")
	box := rvm.NewClass("Box", nil, "payload")

	base := rvm.NewClass("Base", nil)
	bm := rvm.NewAsm()
	bm.Load(1).ConstInt(1).Op(rvm.OpAdd).Op(rvm.OpReturn)
	base.AddMethod(bm.MustBuild("work", 2))

	derived := rvm.NewClass("Derived", base)
	dm := rvm.NewAsm()
	dm.Load(1).ConstInt(2).Op(rvm.OpMul).Op(rvm.OpReturn)
	derived.AddMethod(dm.MustBuild("work", 2))

	other := rvm.NewClass("Other", nil)
	om := rvm.NewAsm()
	om.Load(1).ConstInt(3).Op(rvm.OpAdd).Op(rvm.OpReturn)
	other.AddMethod(om.MustBuild("work", 2))

	return []*rvm.Class{cell, counter, lock, box, base, derived, other}
}

// addLambda installs the lambda body that the Lambda pattern invokes
// through a method handle: x*3 + 1 (cheap enough that call overhead
// dominates, as in the paper's scrabble histogram lambda).
func addLambda(main *rvm.Class) {
	l := rvm.NewAsm()
	l.Load(0).ConstInt(3).Op(rvm.OpMul).ConstInt(1).Op(rvm.OpAdd).Op(rvm.OpReturn)
	m := l.MustBuild("lambdaBody", 1)
	m.Static = true
	main.AddMethod(m)
}

// buildCASRetry emits the §5.3 shape: an outer loop running two
// consecutive CAS retry loops on a shared cell (x = x*3, then x = x+1).
func buildCASRetry(n int) *rvm.Method {
	a := rvm.NewAsm()
	a.Sym(rvm.OpNew, "Cell").Store(1)
	a.Load(1).ConstInt(1).Sym(rvm.OpPutField, "x")
	a.ConstInt(0).Store(2)
	a.Label("outer")
	a.Load(2).Load(0).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "exit")
	a.Label("retry1")
	a.Load(1).Sym(rvm.OpGetField, "x").Store(3)
	a.Load(3).ConstInt(3).Op(rvm.OpMul).ConstInt(1000000007).Op(rvm.OpRem).Store(4)
	a.Load(1).Load(3).Load(4).Sym(rvm.OpCAS, "x").Jump(rvm.OpJumpIfNot, "retry1")
	a.Label("retry2")
	a.Load(1).Sym(rvm.OpGetField, "x").Store(5)
	a.Load(5).ConstInt(1).Op(rvm.OpAdd).Store(6)
	a.Load(1).Load(5).Load(6).Sym(rvm.OpCAS, "x").Jump(rvm.OpJumpIfNot, "retry2")
	a.Load(2).ConstInt(1).Op(rvm.OpAdd).Store(2)
	a.Jump(rvm.OpJump, "outer")
	a.Label("exit")
	a.Load(1).Sym(rvm.OpGetField, "x").Op(rvm.OpReturn)
	return a.MustBuild("casRetry", 1)
}

// buildCASSingle emits one CAS retry loop per outer iteration — atomic
// traffic that AC cannot fuse (there is no adjacent second loop).
func buildCASSingle(n int) *rvm.Method {
	a := rvm.NewAsm()
	a.Sym(rvm.OpNew, "Cell").Store(1)
	a.Load(1).ConstInt(7).Sym(rvm.OpPutField, "x")
	a.ConstInt(0).Store(2)
	a.Label("outer")
	a.Load(2).Load(0).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "exit")
	a.Label("retry")
	a.Load(1).Sym(rvm.OpGetField, "x").Store(3)
	a.Load(3).ConstInt(5).Op(rvm.OpMul).ConstInt(999983).Op(rvm.OpRem).Store(4)
	a.Load(1).Load(3).Load(4).Sym(rvm.OpCAS, "x").Jump(rvm.OpJumpIfNot, "retry")
	a.Load(2).ConstInt(1).Op(rvm.OpAdd).Store(2)
	a.Jump(rvm.OpJump, "outer")
	a.Label("exit")
	a.Load(1).Sym(rvm.OpGetField, "x").Op(rvm.OpReturn)
	return a.MustBuild("casSingle", 1)
}

// buildCASChurn emits the §5.1 shape: a fresh counter object per
// iteration, initialized, CASed twice, locked once, and discarded — the
// java.util.Random / Promise usage pattern EAWA scalar-replaces.
func buildCASChurn(n int) *rvm.Method {
	a := rvm.NewAsm()
	a.ConstInt(0).Store(1) // acc
	a.ConstInt(0).Store(2) // i
	a.Label("head")
	a.Load(2).Load(0).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "exit")
	a.Sym(rvm.OpNew, "Counter").Store(3)
	a.Load(3).ConstInt(0).Sym(rvm.OpPutField, "x")
	a.Load(3).ConstInt(0).ConstInt(7).Sym(rvm.OpCAS, "x").Op(rvm.OpPop)
	a.Load(3).ConstInt(7).ConstInt(9).Sym(rvm.OpCAS, "x").Op(rvm.OpPop)
	a.Load(3).Op(rvm.OpMonitorEnter)
	a.Load(3).Sym(rvm.OpGetField, "x").Load(1).Op(rvm.OpAdd).Store(1)
	a.Load(3).Op(rvm.OpMonitorExit)
	a.Load(2).ConstInt(1).Op(rvm.OpAdd).Store(2)
	a.Jump(rvm.OpJump, "head")
	a.Label("exit")
	a.Load(1).Op(rvm.OpReturn)
	return a.MustBuild("casChurn", 1)
}

// buildSyncLoop emits the §5.2 shape: every iteration locks the same
// monitor around a tiny critical region (the synchronized-collection-in-a-
// loop pattern), which LLC tiles into chunks of C iterations.
func buildSyncLoop(n int) *rvm.Method {
	a := rvm.NewAsm()
	a.Sym(rvm.OpNew, "Lock").Store(1)
	a.ConstInt(0).Store(2)
	a.Label("head")
	a.Load(2).Load(0).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "exit")
	a.Load(1).Op(rvm.OpMonitorEnter)
	a.Load(1).Load(1).Sym(rvm.OpGetField, "v").Load(2).Op(rvm.OpAdd).Sym(rvm.OpPutField, "v")
	a.Load(1).Op(rvm.OpMonitorExit)
	a.Load(2).ConstInt(1).Op(rvm.OpAdd).Store(2)
	a.Jump(rvm.OpJump, "head")
	a.Label("exit")
	a.Load(1).Sym(rvm.OpGetField, "v").Op(rvm.OpReturn)
	return a.MustBuild("syncLoop", 1)
}

// buildSyncScattered takes the same lock but calls a helper inside the
// critical region, which LLC must refuse to coarsen (calls may acquire
// other locks — the paper's legality side condition).
func buildSyncScattered(n int) *rvm.Method {
	a := rvm.NewAsm()
	a.Sym(rvm.OpNew, "Lock").Store(1)
	a.ConstInt(0).Store(2)
	a.Label("head")
	a.Load(2).Load(0).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "exit")
	a.Load(1).Op(rvm.OpMonitorEnter)
	a.Load(1).Load(1).Sym(rvm.OpGetField, "v").Load(2).Invoke(rvm.OpInvokeStatic, "Main.lambdaBody", 1).Op(rvm.OpAdd).Sym(rvm.OpPutField, "v")
	a.Load(1).Op(rvm.OpMonitorExit)
	a.Load(2).ConstInt(1).Op(rvm.OpAdd).Store(2)
	a.Jump(rvm.OpJump, "head")
	a.Label("exit")
	a.Load(1).Sym(rvm.OpGetField, "v").Op(rvm.OpReturn)
	return a.MustBuild("syncScattered", 1)
}

// buildLambda emits the §5.4 shape: an invokedynamic bootstrap produces a
// method handle that the loop invokes per element — MHS devirtualizes the
// handle call and inlining absorbs the lambda body.
func buildLambda(n int) *rvm.Method {
	a := rvm.NewAsm()
	a.Sym(rvm.OpInvokeDynamic, "Main.lambdaBody").Store(1)
	a.ConstInt(0).Store(2) // acc
	a.ConstInt(0).Store(3) // i
	a.Label("head")
	a.Load(3).Load(0).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "exit")
	a.Load(2).Load(1).Load(3).Invoke(rvm.OpInvokeHandle, "", 1).Op(rvm.OpAdd)
	a.ConstInt(1000000007).Op(rvm.OpRem).Store(2)
	a.Load(3).ConstInt(1).Op(rvm.OpAdd).Store(3)
	a.Jump(rvm.OpJump, "head")
	a.Label("exit")
	a.Load(2).Op(rvm.OpReturn)
	return a.MustBuild("lambda", 1)
}

// boundsArrayLen is the array length of the Bounds pattern; its loop runs
// n/boundsArrayLen full passes so the executed guard count tracks n.
const boundsArrayLen = 64

// buildBounds emits the §5.5 shape: array writes and reads with a bounds
// guard on every access, inside a counted loop — GM hoists the guards to
// the range endpoints.
func buildBounds(n int) *rvm.Method {
	a := rvm.NewAsm()
	a.ConstInt(boundsArrayLen).Op(rvm.OpNewArray).Store(1)
	a.ConstInt(0).Store(2) // s
	a.ConstInt(0).Store(3) // outer counter
	a.Label("outer")
	a.Load(3).Load(0).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "exit")
	a.ConstInt(0).Store(4)
	a.Label("inner")
	a.Load(4).ConstInt(boundsArrayLen).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "innerDone")
	a.Load(1).Load(4).Load(4).Load(3).Op(rvm.OpAdd).Op(rvm.OpAStore)
	a.Load(2).Load(1).Load(4).Op(rvm.OpALoad).Op(rvm.OpAdd).Store(2)
	a.Load(4).ConstInt(1).Op(rvm.OpAdd).Store(4)
	a.Jump(rvm.OpJump, "inner")
	a.Label("innerDone")
	a.Load(3).ConstInt(64).Op(rvm.OpAdd).Store(3)
	a.Jump(rvm.OpJump, "outer")
	a.Label("exit")
	a.Load(2).Op(rvm.OpReturn)
	return a.MustBuild("bounds", 1)
}

// vectorArrayLen is the array length of the Vector pattern.
const vectorArrayLen = 128

// buildVector emits the §5.6 shape: c[i] = a[i] + b[i] over fixed arrays,
// repeated n/vectorArrayLen times. GM must hoist the guards before LV can
// replace the loop with 4-lane vector operations.
func buildVector(n int) *rvm.Method {
	a := rvm.NewAsm()
	a.ConstInt(vectorArrayLen).Op(rvm.OpNewArray).Store(1)
	a.ConstInt(vectorArrayLen).Op(rvm.OpNewArray).Store(2)
	a.ConstInt(vectorArrayLen).Op(rvm.OpNewArray).Store(3)
	// Fill a and b once.
	a.ConstInt(0).Store(4)
	a.Label("fill")
	a.Load(4).ConstInt(vectorArrayLen).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "fillDone")
	a.Load(1).Load(4).Load(4).Op(rvm.OpAStore)
	a.Load(2).Load(4).Load(4).ConstInt(2).Op(rvm.OpMul).Op(rvm.OpAStore)
	a.Load(4).ConstInt(1).Op(rvm.OpAdd).Store(4)
	a.Jump(rvm.OpJump, "fill")
	a.Label("fillDone")
	// Repeat the element-wise kernel.
	a.ConstInt(0).Store(5)
	a.Label("outer")
	a.Load(5).Load(0).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "sum")
	a.ConstInt(0).Store(6)
	a.Label("vec")
	a.Load(6).ConstInt(vectorArrayLen).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "vecDone")
	a.Load(3).Load(6).Load(1).Load(6).Op(rvm.OpALoad).Load(2).Load(6).Op(rvm.OpALoad).Op(rvm.OpAdd).Op(rvm.OpAStore)
	a.Load(6).ConstInt(1).Op(rvm.OpAdd).Store(6)
	a.Jump(rvm.OpJump, "vec")
	a.Label("vecDone")
	a.Load(5).ConstInt(128).Op(rvm.OpAdd).Store(5)
	a.Jump(rvm.OpJump, "outer")
	// Checksum pass over c.
	a.Label("sum")
	a.ConstInt(0).Store(7)
	a.ConstInt(0).Store(8)
	a.Label("sumLoop")
	a.Load(8).ConstInt(vectorArrayLen).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "exit")
	a.Load(7).Load(3).Load(8).Op(rvm.OpALoad).Op(rvm.OpAdd).Store(7)
	a.Load(8).ConstInt(1).Op(rvm.OpAdd).Store(8)
	a.Jump(rvm.OpJump, "sumLoop")
	a.Label("exit")
	a.Load(7).Op(rvm.OpReturn)
	return a.MustBuild("vector", 1)
}

// buildTypeChain emits the §5.7 shape: per iteration, an object of
// alternating dynamic type flows through two consecutive
// instanceof-guarded diamonds; DBDS duplicates the merge and removes the
// dominated test.
func buildTypeChain(n int) *rvm.Method {
	a := rvm.NewAsm()
	a.Sym(rvm.OpNew, "Derived").Store(1)
	a.Sym(rvm.OpNew, "Other").Store(2)
	a.ConstInt(0).Store(3) // acc
	a.ConstInt(0).Store(4) // i
	a.Label("head")
	a.Load(4).Load(0).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "exit")
	// x = (i % 2 == 0) ? derived : other
	a.Load(4).ConstInt(2).Op(rvm.OpRem).Jump(rvm.OpJumpIf, "odd")
	a.Load(1).Store(5)
	a.Jump(rvm.OpJump, "checks")
	a.Label("odd")
	a.Load(2).Store(5)
	a.Label("checks")
	// A chain of instanceof-guarded diamonds on the same value: every
	// check after the first is dominated, so DBDS folds the whole chain
	// into the two arms of the leading test (the abstraction-dispatch
	// shape the paper attributes to streams-mnemonics).
	const diamonds = 6
	for d := 0; d < diamonds; d++ {
		no := fmt.Sprintf("no%d", d)
		next := fmt.Sprintf("dia%d", d+1)
		a.Load(5).Sym(rvm.OpInstanceOf, "Base").Jump(rvm.OpJumpIfNot, no)
		a.Load(3).ConstInt(int64(10 * (d + 1))).Op(rvm.OpAdd).Store(3)
		a.Jump(rvm.OpJump, next)
		a.Label(no)
		a.Load(3).ConstInt(int64(d + 1)).Op(rvm.OpAdd).Store(3)
		a.Label(next)
	}
	a.Label("latch")
	a.Load(4).ConstInt(1).Op(rvm.OpAdd).Store(4)
	a.Jump(rvm.OpJump, "head")
	a.Label("exit")
	a.Load(3).Op(rvm.OpReturn)
	return a.MustBuild("typeChain", 1)
}

// buildVirtual emits a dispatch-heavy loop: two calls per iteration on
// receivers of different dynamic types (the OO abstraction cost the
// DaCapo-like workloads carry).
func buildVirtual(n int) *rvm.Method {
	a := rvm.NewAsm()
	a.Sym(rvm.OpNew, "Derived").Store(1)
	a.Sym(rvm.OpNew, "Other").Store(2)
	a.ConstInt(0).Store(3)
	a.ConstInt(0).Store(4)
	a.Label("head")
	a.Load(4).Load(0).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "exit")
	a.Load(3).Load(1).Load(4).Invoke(rvm.OpInvokeVirtual, "work", 2).Op(rvm.OpAdd)
	a.Load(2).Load(4).Invoke(rvm.OpInvokeVirtual, "work", 2).Op(rvm.OpAdd)
	a.ConstInt(1000000007).Op(rvm.OpRem).Store(3)
	a.Load(4).ConstInt(1).Op(rvm.OpAdd).Store(4)
	a.Jump(rvm.OpJump, "head")
	a.Label("exit")
	a.Load(3).Op(rvm.OpReturn)
	return a.MustBuild("virtual", 1)
}

// allocRingLen is the ring size of the Alloc pattern.
const allocRingLen = 16

// buildAlloc emits escaping allocation churn: every iteration allocates a
// box and an array, publishes the box into a ring (so escape analysis
// must keep it), and reads an older element back.
func buildAlloc(n int) *rvm.Method {
	a := rvm.NewAsm()
	a.ConstInt(allocRingLen).Op(rvm.OpNewArray).Store(1)
	a.ConstInt(0).Store(2) // acc
	a.ConstInt(0).Store(3) // i
	a.Label("head")
	a.Load(3).Load(0).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "exit")
	a.Sym(rvm.OpNew, "Box").Store(4)
	a.Load(4).Load(3).Sym(rvm.OpPutField, "payload")
	a.Load(1).Load(3).ConstInt(allocRingLen).Op(rvm.OpRem).Load(4).Op(rvm.OpAStore)
	a.ConstInt(8).Op(rvm.OpNewArray).Store(5) // transient array
	a.Load(5).ConstInt(0).Load(3).Op(rvm.OpAStore)
	a.Load(5).ConstInt(0).Op(rvm.OpALoad).Load(2).Op(rvm.OpAdd).Store(2)
	a.Load(1).Load(3).ConstInt(allocRingLen).Op(rvm.OpRem).Op(rvm.OpALoad).Sym(rvm.OpCheckCast, "Box").Sym(rvm.OpGetField, "payload").Load(2).Op(rvm.OpAdd)
	a.ConstInt(1000000007).Op(rvm.OpRem).Store(2)
	a.Load(3).ConstInt(1).Op(rvm.OpAdd).Store(3)
	a.Jump(rvm.OpJump, "head")
	a.Label("exit")
	a.Load(2).Op(rvm.OpReturn)
	return a.MustBuild("alloc", 1)
}

// buildEvents emits park / wait / notify traffic on a lock object — the
// guarded-block and parking behavior of actor and STM runtimes.
func buildEvents(n int) *rvm.Method {
	a := rvm.NewAsm()
	a.Sym(rvm.OpNew, "Lock").Store(1)
	a.ConstInt(0).Store(2)
	a.Label("head")
	a.Load(2).Load(0).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "exit")
	a.Load(1).Op(rvm.OpMonitorEnter)
	a.Load(1).Op(rvm.OpWait)
	a.Load(1).Op(rvm.OpNotify)
	a.Load(1).Op(rvm.OpMonitorExit)
	a.Op(rvm.OpPark)
	a.Load(2).ConstInt(1).Op(rvm.OpAdd).Store(2)
	a.Jump(rvm.OpJump, "head")
	a.Label("exit")
	a.Load(2).Op(rvm.OpReturn)
	return a.MustBuild("events", 1)
}

// buildFloat emits a scalar floating-point recurrence (the SPECjvm-like
// compute-bound profile: high CPU, few objects).
func buildFloat(n int) *rvm.Method {
	a := rvm.NewAsm()
	a.ConstFloat(1.0).Store(1)
	a.ConstInt(0).Store(2)
	a.Label("head")
	a.Load(2).Load(0).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "exit")
	a.Load(1).ConstFloat(1.0000001).Op(rvm.OpMul).ConstFloat(0.0000001).Op(rvm.OpAdd).Store(1)
	a.Load(1).ConstFloat(2.0).Op(rvm.OpCmpGT).Jump(rvm.OpJumpIfNot, "cont")
	a.Load(1).ConstFloat(2.0).Op(rvm.OpDiv).Store(1)
	a.Label("cont")
	a.Load(2).ConstInt(1).Op(rvm.OpAdd).Store(2)
	a.Jump(rvm.OpJump, "head")
	a.Label("exit")
	a.Load(1).ConstFloat(1000000).Op(rvm.OpMul).Op(rvm.OpReturn)
	return a.MustBuild("floatk", 1)
}

// buildFrameworkMethods emits depth distinct arithmetic-heavy methods,
// each above the inlining size threshold so every one stays a separate
// compilation unit (hot method).
func buildFrameworkMethods(depth int) []*rvm.Method {
	out := make([]*rvm.Method, 0, depth)
	for i := 0; i < depth; i++ {
		a := rvm.NewAsm()
		a.Load(0).Store(1)
		// A body of ~30 dependent operations with method-specific
		// constants: big enough to defeat inlining, cheap enough to stay
		// a realistic library routine.
		for k := 0; k < 15; k++ {
			a.Load(1).ConstInt(int64(i*31 + k + 3)).Op(rvm.OpMul)
			a.ConstInt(int64(k + 1)).Op(rvm.OpAdd)
			a.ConstInt(1000000007).Op(rvm.OpRem).Store(1)
		}
		a.Load(1).Op(rvm.OpReturn)
		out = append(out, a.MustBuild(fmt.Sprintf("fw%d", i), 1))
	}
	return out
}

// buildFrameworkDriver dispatches the framework methods round-robin.
func buildFrameworkDriver(depth int) *rvm.Method {
	a := rvm.NewAsm()
	a.ConstInt(0).Store(1) // acc
	a.ConstInt(0).Store(2) // i
	a.Label("head")
	a.Load(2).Load(0).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "exit")
	// Select fw[i % depth] with a dispatch ladder.
	a.Load(2).ConstInt(int64(depth)).Op(rvm.OpRem).Store(3)
	for i := 0; i < depth; i++ {
		next := fmt.Sprintf("not%d", i)
		a.Load(3).ConstInt(int64(i)).Op(rvm.OpCmpEQ).Jump(rvm.OpJumpIfNot, next)
		a.Load(1).Load(2).Invoke(rvm.OpInvokeStatic, fmt.Sprintf("Main.fw%d", i), 1).Op(rvm.OpAdd)
		a.ConstInt(1000000007).Op(rvm.OpRem).Store(1)
		a.Jump(rvm.OpJump, "cont")
		a.Label(next)
	}
	a.Label("cont")
	a.Load(2).ConstInt(1).Op(rvm.OpAdd).Store(2)
	a.Jump(rvm.OpJump, "head")
	a.Label("exit")
	a.Load(1).Op(rvm.OpReturn)
	return a.MustBuild("framework", 1)
}
