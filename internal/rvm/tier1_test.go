package rvm

import (
	"errors"
	"strings"
	"testing"
)

// runTier executes a program on a fresh interpreter pinned to one tier.
func runTier(p *Program, tier TierPolicy, fuel int64, args ...Value) (Value, error, Counters) {
	vm := NewInterp(p)
	vm.Tier = tier
	vm.Fuel = fuel
	v, err := vm.Run(args...)
	return v, err, vm.Counters
}

// diffTiers asserts tier-0 (baseline) and tier-1 (forced quickening)
// agree on result, trap, and every counter.
func diffTiers(t *testing.T, name string, p *Program, args ...Value) {
	t.Helper()
	v0, e0, c0 := runTier(p, TierBaseline, 0, args...)
	v1, e1, c1 := runTier(p, TierQuick, 0, args...)
	if (e0 == nil) != (e1 == nil) {
		t.Fatalf("%s: tier0 err=%v tier1 err=%v", name, e0, e1)
	}
	if e0 != nil && e0.Error() != e1.Error() {
		t.Errorf("%s: trap diverged:\n tier0: %v\n tier1: %v", name, e0, e1)
	}
	if e0 == nil && !v0.Equal(v1) {
		t.Errorf("%s: result diverged: tier0=%v tier1=%v", name, v0, v1)
	}
	if c0 != c1 {
		t.Errorf("%s: counters diverged:\n tier0: %+v\n tier1: %+v", name, c0, c1)
	}
}

func buildProg(t *testing.T, entry *Method, extra ...*Method) *Program {
	t.Helper()
	return buildProgram(t, entry, extra...)
}

// sumArrMethod is the canonical counted array loop the quickener turns
// into bounds-check-eliminated superinstructions.
func sumArrMethod() *Method {
	a := NewAsm()
	// slot 0 = arr (arg), 1 = sum, 2 = i
	a.ConstInt(0).Store(1)
	a.ConstInt(0).Store(2)
	a.Label("head")
	a.Load(2).Load(0).Op(OpArrayLen).Op(OpCmpLT).Jump(OpJumpIfNot, "exit")
	a.Load(1).Load(0).Load(2).Op(OpALoad).Op(OpAdd).Store(1)
	a.Load(2).ConstInt(1).Op(OpAdd).Store(2)
	a.Jump(OpJump, "head")
	a.Label("exit")
	a.Load(1).Op(OpReturn)
	return a.MustBuild("sumarr", 1)
}

// fillArrMethod writes i*3 into every slot of its array argument.
func fillArrMethod() *Method {
	a := NewAsm()
	a.ConstInt(0).Store(1)
	a.Label("head")
	a.Load(1).Load(0).Op(OpArrayLen).Op(OpCmpLT).Jump(OpJumpIfNot, "exit")
	a.Load(0).Load(1).Load(1).ConstInt(3).Op(OpMul).Op(OpAStore)
	a.Load(1).ConstInt(1).Op(OpAdd).Store(1)
	a.Jump(OpJump, "head")
	a.Label("exit")
	a.Load(0).Op(OpReturn)
	return a.MustBuild("fillarr", 1)
}

func TestTierDifferentialBasics(t *testing.T) {
	mk := func(build func(a *Asm)) *Program {
		a := NewAsm()
		build(a)
		return buildProg(t, a.MustBuild("main", 1))
	}

	cases := []struct {
		name string
		p    *Program
		args []Value
	}{
		{"arith", mk(func(a *Asm) {
			a.ConstInt(3).ConstInt(4).Op(OpAdd).ConstInt(5).Op(OpMul)
			a.ConstInt(6).ConstInt(2).Op(OpDiv).Op(OpSub).Op(OpReturn)
		}), []Value{Int(0)}},
		{"float-promote", mk(func(a *Asm) {
			a.ConstInt(3).ConstFloat(0.5).Op(OpMul).Load(0).Op(OpAdd).Op(OpReturn)
		}), []Value{Int(1)}},
		{"div-zero-trap", mk(func(a *Asm) {
			a.ConstInt(1).Load(0).Op(OpDiv).Op(OpReturn)
		}), []Value{Int(0)}},
		{"rem-zero-trap", mk(func(a *Asm) {
			a.ConstInt(7).Load(0).Op(OpRem).Op(OpReturn)
		}), []Value{Int(0)}},
		{"loop-sum", mk(func(a *Asm) {
			a.ConstInt(0).Store(1)
			a.ConstInt(0).Store(2)
			a.Label("head")
			a.Load(2).Load(0).Op(OpCmpLT).Jump(OpJumpIfNot, "exit")
			a.Load(1).Load(2).Op(OpAdd).Store(1)
			a.Load(2).ConstInt(1).Op(OpAdd).Store(2)
			a.Jump(OpJump, "head")
			a.Label("exit")
			a.Load(1).Op(OpReturn)
		}), []Value{Int(1000)}},
		{"neg-dup-pop", mk(func(a *Asm) {
			a.Load(0).Op(OpNeg).Op(OpDup).Op(OpAdd).ConstInt(9).Op(OpPop).Op(OpReturn)
		}), []Value{Int(21)}},
		{"fall-off-end", mk(func(a *Asm) {
			a.ConstInt(1).Store(1)
		}), []Value{Int(0)}},
	}
	for _, tc := range cases {
		diffTiers(t, tc.name, tc.p, tc.args...)
	}
}

func TestTierDifferentialArrays(t *testing.T) {
	// sum of arr filled with i*3 for len 37, via two canonical BCE loops.
	a := NewAsm()
	a.Load(0).Op(OpNewArray).Invoke(OpInvokeStatic, "Main.fillarr", 1)
	a.Invoke(OpInvokeStatic, "Main.sumarr", 1).Op(OpReturn)
	p := buildProg(t, a.MustBuild("main", 1), sumArrMethod(), fillArrMethod())
	diffTiers(t, "bce-loops", p, Int(37))
	v, err, _ := runTier(p, TierQuick, 0, Int(37))
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(3 * 37 * 36 / 2); v.AsInt() != want {
		t.Errorf("sum = %v, want %d", v, want)
	}

	// Null array reaching the canonical loop must still trap identically.
	n := NewAsm()
	n.Op(OpConstNull).Invoke(OpInvokeStatic, "Main.sumarr", 1).Op(OpReturn)
	diffTiers(t, "bce-null", buildProg(t, n.MustBuild("main", 0), sumArrMethod()))

	// Plain bounds trap outside any BCE region.
	b := NewAsm()
	b.ConstInt(2).Op(OpNewArray).Store(1)
	b.Load(1).Load(0).Op(OpALoad).Op(OpReturn)
	diffTiers(t, "bounds-trap", buildProg(t, b.MustBuild("main", 1)), Int(5))
	diffTiers(t, "bounds-neg", buildProg(t, b.MustBuild("main", 1)), Int(-1))
}

// TestBCEAdversarialEntry jumps from outside the loop straight to the
// header with a negative index; the region proof must reject the loop so
// the access stays checked, at both tiers.
func TestBCEAdversarialEntry(t *testing.T) {
	a := NewAsm()
	// slot 0 = arr, 1 = sum, 2 = i
	a.ConstInt(0).Store(1)
	a.ConstInt(-1).Store(2)
	a.Jump(OpJump, "head") // bypasses the init below
	a.ConstInt(0).Store(2) // dead "init" right before the header
	a.Label("head")
	a.Load(2).Load(0).Op(OpArrayLen).Op(OpCmpLT).Jump(OpJumpIfNot, "exit")
	a.Load(1).Load(0).Load(2).Op(OpALoad).Op(OpAdd).Store(1)
	a.Load(2).ConstInt(1).Op(OpAdd).Store(2)
	a.Jump(OpJump, "head")
	a.Label("exit")
	a.Load(1).Op(OpReturn)
	adv := a.MustBuild("adv", 1)

	m := NewAsm()
	m.Load(0).Op(OpNewArray).Invoke(OpInvokeStatic, "Main.adv", 1).Op(OpReturn)
	p := buildProg(t, m.MustBuild("main", 1), adv)

	diffTiers(t, "adversarial-entry", p, Int(8))
	_, err, _ := runTier(p, TierQuick, 0, Int(8))
	if !errors.Is(err, ErrBounds) {
		t.Fatalf("negative index must trap, got %v", err)
	}
}

func TestTierDifferentialObjects(t *testing.T) {
	p := NewProgram()
	cell := NewClass("Cell", nil, "v")
	lock := NewClass("Lock", nil)
	animal := NewClass("Animal", nil)
	sa := NewAsm()
	sa.ConstInt(1).Op(OpReturn)
	animal.AddMethod(sa.MustBuild("speak", 1))
	dog := NewClass("Dog", animal)
	sd := NewAsm()
	sd.ConstInt(2).Op(OpReturn)
	dog.AddMethod(sd.MustBuild("speak", 1))
	for _, c := range []*Class{cell, lock, animal, dog} {
		if err := p.AddClass(c); err != nil {
			t.Fatal(err)
		}
	}
	a := NewAsm()
	a.Sym(OpNew, "Cell").Store(0)
	a.Load(0).ConstInt(5).Sym(OpPutField, "v")
	a.Load(0).ConstInt(5).ConstInt(9).Sym(OpCAS, "v").Op(OpPop)
	a.Load(0).ConstInt(4).Sym(OpAtomicAdd, "v").Op(OpPop)
	a.Sym(OpNew, "Lock").Store(1)
	a.Load(1).Op(OpMonitorEnter)
	a.Load(1).Op(OpMonitorExit)
	a.Load(1).Op(OpWait)
	a.Load(1).Op(OpNotify)
	a.Op(OpPark)
	a.Sym(OpNew, "Dog").Store(2)
	a.Load(2).Sym(OpInstanceOf, "Animal").Op(OpPop)
	a.Load(2).Sym(OpCheckCast, "Animal")
	a.Invoke(OpInvokeVirtual, "speak", 1)
	a.Load(0).Sym(OpGetField, "v").Op(OpAdd)
	a.Op(OpReturn)
	m := a.MustBuild("main", 0)
	m.Static = true
	mainC := NewClass("Main", nil)
	mainC.AddMethod(m)
	if err := p.AddClass(mainC); err != nil {
		t.Fatal(err)
	}
	p.Entry = m
	diffTiers(t, "objects", p)
	v, err, _ := runTier(p, TierQuick, 0)
	if err != nil || v.AsInt() != 15 { // speak()=2 + v(9+4)=13
		t.Errorf("result = %v, %v", v, err)
	}
}

func TestTierDifferentialCalls(t *testing.T) {
	f := NewAsm()
	f.Load(0).ConstInt(2).Op(OpCmpLT).Jump(OpJumpIfNot, "rec")
	f.Load(0).Op(OpReturn)
	f.Label("rec")
	f.Load(0).ConstInt(1).Op(OpSub).Invoke(OpInvokeStatic, "Main.fib", 1)
	f.Load(0).ConstInt(2).Op(OpSub).Invoke(OpInvokeStatic, "Main.fib", 1)
	f.Op(OpAdd).Op(OpReturn)

	a := NewAsm()
	a.Sym(OpInvokeDynamic, "Main.fib").Store(1)
	a.Load(1).Load(0).Invoke(OpInvokeHandle, "", 1).Op(OpReturn)
	p := buildProg(t, a.MustBuild("main", 1), f.MustBuild("fib", 1))
	diffTiers(t, "fib-handle", p, Int(15))

	// Null handle trap.
	h := NewAsm()
	h.Op(OpConstNull).ConstInt(1).Invoke(OpInvokeHandle, "", 1).Op(OpReturn)
	diffTiers(t, "null-handle", buildProg(t, h.MustBuild("main", 0)))
}

// TestTierDifferentialUnverifiable exercises methods that fail
// verification; both tiers must fall back to the dynamic seed path.
func TestTierDifferentialUnverifiable(t *testing.T) {
	u := NewAsm()
	u.Op(OpPop).ConstInt(1).Op(OpReturn) // static underflow
	diffTiers(t, "underflow", buildProg(t, u.MustBuild("main", 0)))

	k := NewAsm()
	k.Emit(Instr{Op: Opcode(200)})
	k.ConstInt(0).Op(OpReturn)
	diffTiers(t, "unknown-opcode", buildProg(t, k.MustBuild("main", 0)))
}

// TestFuelBlockGranularity: fuel is charged per basic block, so
// exhaustion fires within one block of the seed's per-instruction budget,
// and identically across tiers.
func TestFuelBlockGranularity(t *testing.T) {
	a := NewAsm()
	a.ConstInt(0).Store(0)
	a.Label("head")
	a.Load(0).ConstInt(1).Op(OpAdd).Store(0)
	a.Op(OpNop).Op(OpNop).Op(OpNop)
	a.Jump(OpJump, "head")
	p := buildProg(t, a.MustBuild("main", 0))
	const fuel = 1000
	const blockLen = 8 // head..jump inclusive

	_, e0, c0 := runTier(p, TierBaseline, fuel)
	_, e1, c1 := runTier(p, TierQuick, fuel)
	if !errors.Is(e0, ErrFuelExhausted) || !errors.Is(e1, ErrFuelExhausted) {
		t.Fatalf("errs = %v, %v", e0, e1)
	}
	for _, c := range []Counters{c0, c1} {
		if c.Executed < fuel-blockLen || c.Executed > fuel+blockLen {
			t.Errorf("Executed = %d, want within one block of %d", c.Executed, fuel)
		}
	}
	if c0 != c1 {
		t.Errorf("fuel counters diverged: %+v vs %+v", c0, c1)
	}
}

// TestTierUpOSR: with a low backedge threshold, a single long-running
// invocation tiers up mid-loop via on-stack replacement.
func TestTierUpOSR(t *testing.T) {
	oldB := TierUpBackedges
	TierUpBackedges = 10
	defer func() { TierUpBackedges = oldB }()

	a := NewAsm()
	a.ConstInt(0).Store(1)
	a.ConstInt(0).Store(2)
	a.Label("head")
	a.Load(2).Load(0).Op(OpCmpLT).Jump(OpJumpIfNot, "exit")
	a.Load(1).Load(2).Op(OpAdd).Store(1)
	a.Load(2).ConstInt(1).Op(OpAdd).Store(2)
	a.Jump(OpJump, "head")
	a.Label("exit")
	a.Load(1).Op(OpReturn)
	m := a.MustBuild("main", 1)
	p := buildProg(t, m)

	vm := NewInterp(p)
	vm.Tier = TierAuto
	v, err := vm.Run(Int(5000))
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(5000 * 4999 / 2); v.AsInt() != want {
		t.Errorf("sum = %v, want %d", v, want)
	}
	if st := vm.states[m]; st == nil || st.q == nil {
		t.Error("method did not tier up via OSR")
	}
}

// TestTierUpInvocationThreshold: repeated calls cross the invocation
// threshold and later calls run quickened.
func TestTierUpInvocationThreshold(t *testing.T) {
	oldI := TierUpInvocations
	TierUpInvocations = 5
	defer func() { TierUpInvocations = oldI }()

	sq := NewAsm()
	sq.Load(0).Load(0).Op(OpMul).Op(OpReturn)
	square := sq.MustBuild("square", 1)
	a := NewAsm()
	a.Load(0).Invoke(OpInvokeStatic, "Main.square", 1).Op(OpReturn)
	p := buildProg(t, a.MustBuild("main", 1), square)

	vm := NewInterp(p)
	vm.Tier = TierAuto
	for i := 0; i < 20; i++ {
		v, err := vm.Run(Int(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if v.AsInt() != int64(i*i) {
			t.Fatalf("square(%d) = %v", i, v)
		}
	}
	if st := vm.states[square]; st == nil || st.q == nil {
		t.Error("hot method did not tier up")
	}
}

// TestSteadyStateAllocs: after warm-up, both the flat tier-0 path and the
// quickened tier-1 path run without per-invocation allocations.
func TestSteadyStateAllocs(t *testing.T) {
	a := NewAsm()
	a.ConstInt(0).Store(1)
	a.ConstInt(0).Store(2)
	a.Label("head")
	a.Load(2).Load(0).Op(OpCmpLT).Jump(OpJumpIfNot, "exit")
	a.Load(1).Load(2).Op(OpAdd).Store(1)
	a.Load(2).ConstInt(1).Op(OpAdd).Store(2)
	a.Jump(OpJump, "head")
	a.Label("exit")
	a.Load(1).Op(OpReturn)
	m := a.MustBuild("main", 1)

	for _, tier := range []TierPolicy{TierBaseline, TierQuick} {
		p := buildProg(t, m)
		vm := NewInterp(p)
		vm.Tier = tier
		args := []Value{Int(64)}
		if _, err := vm.Call(m, args...); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			if _, err := vm.Call(m, args...); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 0 {
			t.Errorf("tier=%d: %v allocs/op in steady state, want 0", tier, allocs)
		}
	}
}

// mkDispatchProgram builds a loop with one invokevirtual site whose
// receiver cycles through nrecv classes.
func mkDispatchProgram(t *testing.T, nrecv int) (*Program, *Method) {
	t.Helper()
	p := NewProgram()
	animal := NewClass("Animal", nil)
	sa := NewAsm()
	sa.ConstInt(0).Op(OpReturn)
	animal.AddMethod(sa.MustBuild("speak", 1))
	if err := p.AddClass(animal); err != nil {
		t.Fatal(err)
	}
	names := []string{"C1", "C2", "C3", "C4", "C5", "C6"}[:nrecv]
	for i, name := range names {
		c := NewClass(name, animal)
		s := NewAsm()
		s.ConstInt(int64(i + 1)).Op(OpReturn)
		c.AddMethod(s.MustBuild("speak", 1))
		if err := p.AddClass(c); err != nil {
			t.Fatal(err)
		}
	}

	a := NewAsm()
	// slot 0 = n (arg), 1 = recv array, 2 = sum, 3 = i
	a.ConstInt(int64(nrecv)).Op(OpNewArray).Store(1)
	for i, name := range names {
		a.Load(1).ConstInt(int64(i)).Sym(OpNew, name).Op(OpAStore)
	}
	a.ConstInt(0).Store(2)
	a.ConstInt(0).Store(3)
	a.Label("head")
	a.Load(3).Load(0).Op(OpCmpLT).Jump(OpJumpIfNot, "exit")
	a.Load(1).Load(3).ConstInt(int64(nrecv)).Op(OpRem).Op(OpALoad)
	a.Invoke(OpInvokeVirtual, "speak", 1)
	a.Load(2).Op(OpAdd).Store(2)
	a.Load(3).ConstInt(1).Op(OpAdd).Store(3)
	a.Jump(OpJump, "head")
	a.Label("exit")
	a.Load(2).Op(OpReturn)
	m := a.MustBuild("main", 1)
	m.Static = true
	mainC := NewClass("Main", nil)
	mainC.AddMethod(m)
	if err := p.AddClass(mainC); err != nil {
		t.Fatal(err)
	}
	p.Entry = m
	return p, m
}

// siteFor finds the quickened IC for the method's invokevirtual site.
func siteFor(t *testing.T, vm *Interp, m *Method, kind Opcode) *siteIC {
	t.Helper()
	st := vm.states[m]
	if st == nil || st.q == nil {
		t.Fatal("method not quickened")
	}
	for _, ic := range st.q.sites {
		if ic.kind == kind {
			return ic
		}
	}
	t.Fatalf("no %v site found", kind)
	return nil
}

func TestInlineCachePolymorphic(t *testing.T) {
	p, m := mkDispatchProgram(t, 2)
	diffTiers(t, "poly-dispatch", p, Int(100))

	vm := NewInterp(p)
	vm.Tier = TierQuick
	v, err := vm.Run(Int(100))
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(50*1 + 50*2); v.AsInt() != want {
		t.Errorf("sum = %v, want %d", v, want)
	}
	ic := siteFor(t, vm, m, OpInvokeVirtual)
	if ic.n != 2 {
		t.Errorf("IC degree = %d, want 2 (polymorphic)", ic.n)
	}
	if ic.hits < 90 || ic.misses > 2 {
		t.Errorf("IC hits=%d misses=%d; want ~98 hits, ≤2 misses", ic.hits, ic.misses)
	}
}

func TestInlineCacheMegamorphic(t *testing.T) {
	p, m := mkDispatchProgram(t, 6)
	diffTiers(t, "mega-dispatch", p, Int(120))

	vm := NewInterp(p)
	vm.Tier = TierQuick
	v, err := vm.Run(Int(120))
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(20 * (1 + 2 + 3 + 4 + 5 + 6)); v.AsInt() != want {
		t.Errorf("sum = %v, want %d", v, want)
	}
	ic := siteFor(t, vm, m, OpInvokeVirtual)
	if ic.n != icWidth {
		t.Errorf("IC degree = %d, want %d (megamorphic)", ic.n, icWidth)
	}
	if ic.misses == 0 {
		t.Error("megamorphic site should record misses")
	}
}

// TestProfileSeedsIC: under TierAuto the tier-0 receiver histogram seeds
// the tier-1 cache, so the first quickened execution already hits.
func TestProfileSeedsIC(t *testing.T) {
	oldI := TierUpInvocations
	TierUpInvocations = 4
	defer func() { TierUpInvocations = oldI }()

	p, m := mkDispatchProgram(t, 2)
	vm := NewInterp(p)
	vm.Tier = TierAuto
	for i := 0; i < 8; i++ {
		if _, err := vm.Run(Int(40)); err != nil {
			t.Fatal(err)
		}
	}
	ic := siteFor(t, vm, m, OpInvokeVirtual)
	if ic.misses != 0 {
		t.Errorf("profile-seeded IC recorded %d misses, want 0", ic.misses)
	}
	if ic.n != 2 {
		t.Errorf("seeded degree = %d, want 2", ic.n)
	}
}

func TestProfileCollector(t *testing.T) {
	ResetProfile()
	EnableProfiling()
	defer func() {
		DisableProfiling()
		ResetProfile()
	}()

	oldI := TierUpInvocations
	TierUpInvocations = 2
	defer func() { TierUpInvocations = oldI }()

	p, _ := mkDispatchProgram(t, 2)
	vm := NewInterp(p)
	vm.Tier = TierAuto
	for i := 0; i < 6; i++ {
		if _, err := vm.Run(Int(50)); err != nil {
			t.Fatal(err)
		}
	}

	methods := ProfileMethods()
	if len(methods) == 0 {
		t.Fatal("no methods collected")
	}
	if rate := ICHitRate(); rate < 0.9 {
		t.Errorf("IC hit rate = %.2f, want >= 0.9", rate)
	}
	var sb strings.Builder
	WriteProfile(&sb, 5)
	out := sb.String()
	for _, want := range []string{"Main.main", "rvm profile", "invokevirtual"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile output missing %q:\n%s", want, out)
		}
	}
}

// TestQuickenedCountersExact pins the counter semantics on a quickened
// program against hand-computed values (not just tier agreement).
func TestQuickenedCountersExact(t *testing.T) {
	p, _ := mkDispatchProgram(t, 2)
	_, err, c := runTier(p, TierQuick, 0, Int(10))
	if err != nil {
		t.Fatal(err)
	}
	// 10 virtual dispatches, 1 array alloc, 2 objects, 10 aloads in-loop.
	if c.Method != 10 {
		t.Errorf("Method = %d, want 10", c.Method)
	}
	if c.Object != 2 || c.Array != 1 {
		t.Errorf("Object=%d Array=%d, want 2, 1", c.Object, c.Array)
	}
}
