package rvm

import "fmt"

// Opcode enumerates the RVM bytecode instructions. The set mirrors the
// JVM features the paper's metrics and optimizations target: virtual,
// interface, and dynamic invocation; object and array allocation with
// checked accesses; monitors; atomic field operations; and thread-park /
// wait / notify events.
type Opcode uint8

// Bytecode opcodes.
const (
	OpNop Opcode = iota

	// Constants and locals.
	OpConstInt   // push I
	OpConstFloat // push F
	OpConstNull  // push null
	OpLoad       // push locals[A]
	OpStore      // locals[A] = pop
	OpPop        // discard top
	OpDup        // duplicate top

	// Arithmetic (float-promoting) and comparison (push int 0/1).
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpNeg
	OpCmpLT
	OpCmpLE
	OpCmpGT
	OpCmpGE
	OpCmpEQ
	OpCmpNE

	// Control flow. A is the absolute instruction index target.
	OpJump
	OpJumpIf    // pop; jump when truthy
	OpJumpIfNot // pop; jump when falsy
	OpReturn    // pop return value
	OpReturnVoid

	// Objects and arrays.
	OpNew      // S = class name; push ref
	OpGetField // S = field; pop obj, push value
	OpPutField // S = field; pop value, obj
	OpNewArray // pop length, push array ref
	OpALoad    // pop index, arr; push elem (bounds-checked)
	OpAStore   // pop value, index, arr (bounds-checked)
	OpArrayLen // pop arr, push length

	// Invocation. A = argument count (including receiver for instance
	// calls); arguments are popped with the receiver deepest.
	OpInvokeStatic    // S = "Class.method"
	OpInvokeVirtual   // S = method name, resolved on receiver class
	OpInvokeInterface // S = method name; receiver must implement interface (B-field via S2)
	OpInvokeDynamic   // S = "Class.method"; bootstrap: push method handle
	OpInvokeHandle    // pop A args then the handle; invoke it

	// Synchronization and atomics.
	OpMonitorEnter // pop obj
	OpMonitorExit  // pop obj
	OpCAS          // S = field; pop new, expected, obj; push success (0/1)
	OpAtomicAdd    // S = field; pop delta, obj; push previous value
	OpPark         // park point (cost + metric event)
	OpWait         // pop obj; guarded-block wait event
	OpNotify       // pop obj; notify event

	// Type tests.
	OpInstanceOf // S = class name; pop obj, push 0/1
	OpCheckCast  // S = class name; trap unless instance (null passes)

	numOpcodes
)

var opNames = [numOpcodes]string{
	"nop", "const.i", "const.f", "const.null", "load", "store", "pop", "dup",
	"add", "sub", "mul", "div", "rem", "neg",
	"cmplt", "cmple", "cmpgt", "cmpge", "cmpeq", "cmpne",
	"jump", "jumpif", "jumpifnot", "return", "return.void",
	"new", "getfield", "putfield", "newarray", "aload", "astore", "arraylen",
	"invokestatic", "invokevirtual", "invokeinterface", "invokedynamic", "invokehandle",
	"monitorenter", "monitorexit", "cas", "atomicadd", "park", "wait", "notify",
	"instanceof", "checkcast",
}

// String returns the mnemonic.
func (op Opcode) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// Instr is one bytecode instruction. A holds a local slot, jump target, or
// argument count; I and F hold constants; S holds a symbolic name (class,
// field, or method).
type Instr struct {
	Op Opcode
	A  int
	I  int64
	F  float64
	S  string
}

func (in Instr) String() string {
	switch in.Op {
	case OpConstInt:
		return fmt.Sprintf("%s %d", in.Op, in.I)
	case OpConstFloat:
		return fmt.Sprintf("%s %g", in.Op, in.F)
	case OpLoad, OpStore, OpJump, OpJumpIf, OpJumpIfNot:
		return fmt.Sprintf("%s %d", in.Op, in.A)
	case OpNew, OpGetField, OpPutField, OpCAS, OpAtomicAdd, OpInstanceOf, OpCheckCast, OpInvokeDynamic:
		return fmt.Sprintf("%s %s", in.Op, in.S)
	case OpInvokeStatic, OpInvokeVirtual, OpInvokeInterface:
		return fmt.Sprintf("%s %s/%d", in.Op, in.S, in.A)
	case OpInvokeHandle:
		return fmt.Sprintf("%s/%d", in.Op, in.A)
	default:
		return in.Op.String()
	}
}

// Asm builds a method's instruction list with symbolic labels, for tests,
// the kernel builders, and the minilang code generator.
type Asm struct {
	code    []Instr
	labels  map[string]int
	fixups  map[int]string // instruction index -> label
	nlocals int
	loops   []asmLoop
}

type asmLoop struct {
	head, end        string
	idxSlot, arrSlot int
	initNonNeg       bool
}

// NewAsm creates an empty assembler.
func NewAsm() *Asm {
	return &Asm{labels: make(map[string]int), fixups: make(map[int]string)}
}

// Emit appends an instruction and returns its index.
func (a *Asm) Emit(in Instr) int {
	a.code = append(a.code, in)
	return len(a.code) - 1
}

// Op emits an operand-less instruction.
func (a *Asm) Op(op Opcode) *Asm { a.Emit(Instr{Op: op}); return a }

// ConstInt emits an integer constant push.
func (a *Asm) ConstInt(v int64) *Asm { a.Emit(Instr{Op: OpConstInt, I: v}); return a }

// ConstFloat emits a float constant push.
func (a *Asm) ConstFloat(v float64) *Asm { a.Emit(Instr{Op: OpConstFloat, F: v}); return a }

// Load emits a local load; Store a local store. Both grow the local count.
func (a *Asm) Load(slot int) *Asm { a.noteLocal(slot); a.Emit(Instr{Op: OpLoad, A: slot}); return a }

// Store emits a local store.
func (a *Asm) Store(slot int) *Asm { a.noteLocal(slot); a.Emit(Instr{Op: OpStore, A: slot}); return a }

func (a *Asm) noteLocal(slot int) {
	if slot+1 > a.nlocals {
		a.nlocals = slot + 1
	}
}

// Sym emits an instruction with a symbolic operand (class/field/method).
func (a *Asm) Sym(op Opcode, s string) *Asm { a.Emit(Instr{Op: op, S: s}); return a }

// Invoke emits an invocation with a symbol and argument count.
func (a *Asm) Invoke(op Opcode, s string, argc int) *Asm {
	a.Emit(Instr{Op: op, S: s, A: argc})
	return a
}

// Label defines a label at the current position.
func (a *Asm) Label(name string) *Asm {
	a.labels[name] = len(a.code)
	return a
}

// Jump emits a branch to a label (resolved in Build).
func (a *Asm) Jump(op Opcode, label string) *Asm {
	idx := a.Emit(Instr{Op: op})
	a.fixups[idx] = label
	return a
}

// MarkLoop records loop-shape metadata for a canonical counted array loop
// between two labels (resolved in Build). initNonNeg asserts the code
// preceding headLabel initializes idxSlot with a non-negative constant;
// the tier-1 quickener verifies every other region condition itself.
func (a *Asm) MarkLoop(headLabel, endLabel string, idxSlot, arrSlot int, initNonNeg bool) *Asm {
	a.loops = append(a.loops, asmLoop{headLabel, endLabel, idxSlot, arrSlot, initNonNeg})
	return a
}

// Build resolves labels and returns a method with the given name and
// argument count.
func (a *Asm) Build(name string, nargs int) (*Method, error) {
	code := append([]Instr(nil), a.code...)
	for idx, label := range a.fixups {
		target, ok := a.labels[label]
		if !ok {
			return nil, fmt.Errorf("rvm: undefined label %q in %s", label, name)
		}
		code[idx].A = target
	}
	nlocals := a.nlocals
	if nargs > nlocals {
		nlocals = nargs
	}
	m := &Method{Name: name, NArgs: nargs, NLocals: nlocals, Code: code}
	for _, l := range a.loops {
		head, ok := a.labels[l.head]
		if !ok {
			return nil, fmt.Errorf("rvm: undefined loop label %q in %s", l.head, name)
		}
		end, ok := a.labels[l.end]
		if !ok {
			return nil, fmt.Errorf("rvm: undefined loop label %q in %s", l.end, name)
		}
		m.Loops = append(m.Loops, LoopInfo{
			Head: head, End: end,
			IdxSlot: l.idxSlot, ArrSlot: l.arrSlot,
			InitNonNeg: l.initNonNeg,
		})
	}
	if ms, _, err := verifyMethod(m); err == nil {
		m.MaxStack = ms
	}
	return m, nil
}

// MustBuild is Build that panics on label errors (builder bugs).
func (a *Asm) MustBuild(name string, nargs int) *Method {
	m, err := a.Build(name, nargs)
	if err != nil {
		panic(err)
	}
	return m
}
