// Package cachesim implements a deterministic cache-hierarchy simulator
// fed by the RVM IR executor's memory trace. It stands in for the paper's
// perf-based cachemiss counter (Table 2): L1 data, last-level cache, and
// a data TLB are modeled as set-associative arrays with LRU replacement.
// Object and array accesses are mapped to synthetic addresses derived from
// a stable per-object identity, so the simulation is reproducible.
package cachesim

import (
	"sync"

	"renaissance/internal/rvm"
)

// Config sizes one cache level.
type Config struct {
	Name     string
	Sets     int
	Ways     int
	LineSize int // bytes per line (page size for the TLB)
}

// DefaultHierarchy mirrors a small Xeon-class core: 32 KiB 8-way L1D with
// 64-byte lines, 2 MiB 16-way LLC slice, and a 64-entry 4-way data TLB
// with 4 KiB pages.
func DefaultHierarchy() []Config {
	return []Config{
		{Name: "L1D", Sets: 64, Ways: 8, LineSize: 64},
		{Name: "LLC", Sets: 2048, Ways: 16, LineSize: 64},
		{Name: "DTLB", Sets: 16, Ways: 4, LineSize: 4096},
	}
}

// cache is one set-associative level with LRU replacement.
type cache struct {
	cfg  Config
	sets [][]uint64 // per set: tags in LRU order (front = most recent)

	Accesses int64
	Misses   int64
}

func newCache(cfg Config) *cache {
	return &cache{cfg: cfg, sets: make([][]uint64, cfg.Sets)}
}

// access touches the address and reports whether it missed.
func (c *cache) access(addr uint64) bool {
	line := addr / uint64(c.cfg.LineSize)
	set := line % uint64(c.cfg.Sets)
	tag := line / uint64(c.cfg.Sets)
	c.Accesses++

	ways := c.sets[set]
	for i, t := range ways {
		if t == tag {
			// Move to front (LRU update).
			copy(ways[1:i+1], ways[:i])
			ways[0] = tag
			return false
		}
	}
	c.Misses++
	if len(ways) < c.cfg.Ways {
		ways = append(ways, 0)
	}
	copy(ways[1:], ways)
	ways[0] = tag
	c.sets[set] = ways
	return true
}

// Sim is a cache hierarchy implementing ir.MemTracer.
type Sim struct {
	mu     sync.Mutex
	levels []*cache

	// objBase assigns each object a stable synthetic base address.
	objBase map[*rvm.Object]uint64
	nextObj uint64
}

// New creates a simulator with the given hierarchy (nil = default).
func New(cfgs []Config) *Sim {
	if cfgs == nil {
		cfgs = DefaultHierarchy()
	}
	s := &Sim{objBase: make(map[*rvm.Object]uint64), nextObj: 0x10000}
	for _, c := range cfgs {
		s.levels = append(s.levels, newCache(c))
	}
	return s
}

// slotBytes is the modeled size of one field or array element.
const slotBytes = 8

// Access implements ir.MemTracer: the address is the object's synthetic
// base plus the slot offset. A miss in one level proceeds to the next
// (inclusive hierarchy).
func (s *Sim) Access(obj *rvm.Object, index int, write bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	base, ok := s.objBase[obj]
	if !ok {
		// Place objects at 64-byte-aligned synthetic addresses, spaced by
		// their payload size.
		size := uint64(len(obj.Fields)+len(obj.Elems))*slotBytes + 16
		size = (size + 63) &^ 63
		base = s.nextObj
		s.nextObj += size
		s.objBase[obj] = base
	}
	addr := base + uint64(index)*slotBytes

	// L1D, then LLC only on L1 miss; the TLB is looked up in parallel.
	l1, llc, tlb := s.levels[0], s.levels[1], s.levels[2]
	if l1.access(addr) {
		llc.access(addr)
	}
	tlb.access(addr)
}

// Counts reports per-level accesses and misses by level name.
func (s *Sim) Counts() map[string][2]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][2]int64, len(s.levels))
	for _, l := range s.levels {
		out[l.cfg.Name] = [2]int64{l.Accesses, l.Misses}
	}
	return out
}

// TotalMisses sums misses across all levels (the paper's cachemiss counter
// aggregates L1 instruction+data, LLC, and TLB misses).
func (s *Sim) TotalMisses() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := int64(0)
	for _, l := range s.levels {
		total += l.Misses
	}
	return total
}
