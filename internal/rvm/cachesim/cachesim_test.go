package cachesim

import (
	"testing"

	"renaissance/internal/rvm"
	"renaissance/internal/rvm/ir"
	"renaissance/internal/rvm/jit"
	"renaissance/internal/rvm/opt"
)

func TestColdMissThenHit(t *testing.T) {
	s := New(nil)
	obj := rvm.NewArray(8)
	s.Access(obj, 0, false)
	counts := s.Counts()
	if counts["L1D"][1] != 1 {
		t.Errorf("first access L1 misses = %d, want 1 (cold)", counts["L1D"][1])
	}
	s.Access(obj, 0, false)
	s.Access(obj, 1, false) // same 64-byte line
	counts = s.Counts()
	if counts["L1D"][1] != 1 {
		t.Errorf("L1 misses after reuse = %d, want still 1", counts["L1D"][1])
	}
	if counts["L1D"][0] != 3 {
		t.Errorf("L1 accesses = %d, want 3", counts["L1D"][0])
	}
}

func TestCapacityMisses(t *testing.T) {
	// Stream over a working set far larger than L1 (32 KiB): most
	// accesses to distinct lines must miss L1.
	s := New(nil)
	big := rvm.NewArray(64 * 1024) // 512 KiB at 8 B/slot
	for i := 0; i < len(big.Elems); i += 8 {
		s.Access(big, i, false)
	}
	counts := s.Counts()
	accesses, misses := counts["L1D"][0], counts["L1D"][1]
	if misses < accesses*9/10 {
		t.Errorf("streaming L1 misses = %d of %d; expected ~all", misses, accesses)
	}
	// A second pass over a tiny prefix should hit.
	before := s.Counts()["L1D"][1]
	for pass := 0; pass < 10; pass++ {
		for i := 0; i < 64; i += 8 {
			s.Access(big, i, false)
		}
	}
	after := s.Counts()["L1D"][1]
	if after-before > 8 {
		t.Errorf("hot-prefix misses = %d, want <= 8 (first pass only)", after-before)
	}
}

func TestSeparateObjectsDistinctLines(t *testing.T) {
	s := New(nil)
	a := rvm.NewObject(rvm.NewClass("A", nil, "f"))
	b := rvm.NewObject(rvm.NewClass("B", nil, "f"))
	s.Access(a, 0, true)
	s.Access(b, 0, true)
	if got := s.Counts()["L1D"][1]; got != 2 {
		t.Errorf("two distinct objects gave %d misses, want 2", got)
	}
	if s.TotalMisses() <= 0 {
		t.Error("TotalMisses = 0")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() int64 {
		s := New(nil)
		arr := rvm.NewArray(4096)
		for i := 0; i < 4096; i += 3 {
			s.Access(arr, i, i%2 == 0)
		}
		return s.TotalMisses()
	}
	if run() != run() {
		t.Error("simulation not deterministic")
	}
}

// TestTracedExecution wires the simulator into the IR executor.
func TestTracedExecution(t *testing.T) {
	// Build a simple array-walk program.
	a := rvm.NewAsm()
	a.Load(0).Op(rvm.OpNewArray).Store(1)
	a.ConstInt(0).Store(2)
	a.Label("head")
	a.Load(2).Load(0).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "exit")
	a.Load(1).Load(2).Load(2).Op(rvm.OpAStore)
	a.Load(2).ConstInt(1).Op(rvm.OpAdd).Store(2)
	a.Jump(rvm.OpJump, "head")
	a.Label("exit")
	a.ConstInt(0).Op(rvm.OpReturn)
	m := a.MustBuild("main", 1)
	m.Static = true
	p := rvm.NewProgram()
	mainC := rvm.NewClass("Main", nil)
	mainC.AddMethod(m)
	if err := p.AddClass(mainC); err != nil {
		t.Fatal(err)
	}
	p.Entry = m

	c, err := jit.Compile(p, opt.BaselinePipeline())
	if err != nil {
		t.Fatal(err)
	}
	sim := New(nil)
	if _, _, err := c.RunTraced(sim, rvm.Int(1024)); err != nil {
		t.Fatal(err)
	}
	counts := sim.Counts()
	if counts["L1D"][0] < 1024 {
		t.Errorf("traced accesses = %d, want >= 1024", counts["L1D"][0])
	}
	// Sequential walk: one miss per 8-slot line.
	wantMisses := int64(1024 / 8)
	got := counts["L1D"][1]
	if got < wantMisses-2 || got > wantMisses+8 {
		t.Errorf("L1 misses = %d, want ~%d (sequential walk)", got, wantMisses)
	}
	var _ ir.MemTracer = sim // interface check
}
