package rvm

import "fmt"

// Bytecode verification. Before a method may run on the flat-frame tier-0
// path or be quickened to tier-1, the interpreter proves that its operand
// stack is statically well-formed: every reachable instruction has one
// consistent entry depth, no path underflows, all local slots are in
// range, and all opcodes are known. The proof yields MaxStack — the exact
// operand-stack high-water mark — which sizes the pooled flat frame
// (locals and stack in one slice, no per-value bounds management).
//
// Methods that fail verification are not broken: they run on the original
// dynamic-stack interpreter (runDynamic), which checks every pop at
// runtime and reports the same errors the seed interpreter did. This
// keeps hand-built test methods (unknown opcodes, deliberate underflows,
// inconsistent join depths) byte-for-byte compatible.

// stackEffect returns how many operand-stack slots the instruction pops
// and pushes. Control-flow successors are the caller's concern. ok is
// false for opcodes the verifier does not understand.
func stackEffect(in Instr) (pops, pushes int, ok bool) {
	switch in.Op {
	case OpNop, OpPark, OpJump, OpReturnVoid:
		return 0, 0, true
	case OpConstInt, OpConstFloat, OpConstNull, OpLoad, OpNew, OpInvokeDynamic:
		return 0, 1, true
	case OpStore, OpPop, OpJumpIf, OpJumpIfNot, OpReturn,
		OpMonitorEnter, OpMonitorExit, OpWait, OpNotify:
		return 1, 0, true
	case OpDup:
		return 1, 2, true
	case OpNeg, OpGetField, OpNewArray, OpArrayLen, OpInstanceOf, OpCheckCast:
		return 1, 1, true
	case OpAdd, OpSub, OpMul, OpDiv, OpRem,
		OpCmpLT, OpCmpLE, OpCmpGT, OpCmpGE, OpCmpEQ, OpCmpNE,
		OpALoad, OpAtomicAdd:
		return 2, 1, true
	case OpPutField:
		return 2, 0, true
	case OpAStore:
		return 3, 0, true
	case OpCAS:
		return 3, 1, true
	case OpInvokeStatic, OpInvokeVirtual, OpInvokeInterface:
		return in.A, 1, true
	case OpInvokeHandle:
		return in.A + 1, 1, true
	}
	return 0, 0, false
}

// verifyMethod abstractly interprets the method's stack shape. On success
// it returns the operand-stack high-water mark and the entry depth of
// every instruction (-1 for unreachable code). Jump targets outside
// [0, len(Code)) are the seed's implicit void return and terminate a path.
func verifyMethod(m *Method) (maxStack int, depths []int, err error) {
	n := len(m.Code)
	depths = make([]int, n)
	for i := range depths {
		depths[i] = -1
	}
	if n == 0 {
		return 0, depths, nil
	}
	type item struct{ pc, depth int }
	work := []item{{0, 0}}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		pc, d := it.pc, it.depth
	path:
		for pc >= 0 && pc < n {
			if depths[pc] >= 0 {
				if depths[pc] != d {
					return 0, nil, fmt.Errorf("rvm: inconsistent stack depth at %s:%d (%d vs %d)",
						m.QualifiedName(), pc, depths[pc], d)
				}
				break
			}
			depths[pc] = d
			in := m.Code[pc]
			pops, pushes, ok := stackEffect(in)
			if !ok {
				return 0, nil, fmt.Errorf("rvm: unverifiable opcode %d at %s:%d", in.Op, m.QualifiedName(), pc)
			}
			switch in.Op {
			case OpLoad, OpStore:
				if in.A < 0 || in.A >= m.NLocals {
					return 0, nil, fmt.Errorf("rvm: local slot %d out of range at %s:%d", in.A, m.QualifiedName(), pc)
				}
			case OpInvokeStatic, OpInvokeVirtual, OpInvokeInterface, OpInvokeHandle:
				if in.A < 0 {
					return 0, nil, fmt.Errorf("rvm: negative argument count at %s:%d", m.QualifiedName(), pc)
				}
			}
			if d < pops {
				return 0, nil, fmt.Errorf("rvm: static stack underflow at %s:%d", m.QualifiedName(), pc)
			}
			d = d - pops + pushes
			if d > maxStack {
				maxStack = d
			}
			switch in.Op {
			case OpJump:
				pc = in.A
			case OpJumpIf, OpJumpIfNot:
				if t := in.A; t >= 0 && t < n {
					work = append(work, item{t, d})
				}
				pc++
			case OpReturn, OpReturnVoid:
				break path
			default:
				pc++
			}
		}
	}
	return maxStack, depths, nil
}

// blockLayout partitions the method into basic blocks: leaders[pc] marks
// block starts (entry, branch targets, and fall-throughs after branches
// and returns), and charges[pc] holds, at each leader, the number of
// instructions in its block — the fuel charged once on block entry
// instead of per instruction (satellite: block-granularity fuel).
func blockLayout(m *Method) (leaders map[int]bool, charges []int32) {
	n := len(m.Code)
	leaders = map[int]bool{}
	charges = make([]int32, n)
	if n == 0 {
		return leaders, charges
	}
	leaders[0] = true
	for pc, in := range m.Code {
		switch in.Op {
		case OpJump, OpJumpIf, OpJumpIfNot:
			if in.A >= 0 && in.A < n {
				leaders[in.A] = true
			}
			if pc+1 < n {
				leaders[pc+1] = true
			}
		case OpReturn, OpReturnVoid:
			if pc+1 < n {
				leaders[pc+1] = true
			}
		}
	}
	start := 0
	for pc := 1; pc < n; pc++ {
		if leaders[pc] {
			charges[start] = int32(pc - start)
			start = pc
		}
	}
	charges[start] = int32(n - start)
	return leaders, charges
}
