// Package rvm implements a small stack-bytecode virtual machine — the
// "JVM substrate" of this reproduction. The paper's compiler experiments
// (§5, §6, §7) were performed on HotSpot with the Graal JIT; Go has no JIT
// to instrument, so the RVM provides the same experimental surface from
// scratch: classes with virtual and interface dispatch, objects and
// arrays, monitors, atomic compare-and-swap, method handles created by an
// invokedynamic-style instruction, and guard-checked array accesses.
//
// Bytecode is the input format (produced by the minilang compiler and by
// the kernel builders); the optimizing compiler in rvm/ir and rvm/opt
// translates it to an IR, applies the paper's seven optimizations, and
// executes it under a deterministic cycle cost model. The bytecode
// interpreter in this package provides the reference semantics that the IR
// execution is differentially tested against.
package rvm

import "fmt"

// Kind discriminates runtime values.
type Kind uint8

// Value kinds. KindNull is the zero value, so freshly allocated field
// slots, array elements, locals, and IR registers all read as null — the
// same default in the bytecode interpreter and the IR executor (scalar
// replacement relies on this agreement).
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindRef
	KindHandle // method handle (resolved function reference)
)

// Value is a runtime value: a 64-bit integer, a float, an object
// reference, a method handle, or null.
type Value struct {
	kind   Kind
	i      int64
	f      float64
	ref    *Object
	handle *Method
}

// Int constructs an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float constructs a float value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Ref constructs an object reference value.
func Ref(o *Object) Value {
	if o == nil {
		return Null()
	}
	return Value{kind: KindRef, ref: o}
}

// Handle constructs a method-handle value.
func Handle(m *Method) Value { return Value{kind: KindHandle, handle: m} }

// Null constructs the null value.
func Null() Value { return Value{kind: KindNull} }

// Kind returns the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload (floats truncate; null is 0).
func (v Value) AsInt() int64 {
	switch v.kind {
	case KindInt:
		return v.i
	case KindFloat:
		return int64(v.f)
	default:
		return 0
	}
}

// AsFloat returns the float payload (ints convert; null is 0).
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	default:
		return 0
	}
}

// AsRef returns the object reference, or nil.
func (v Value) AsRef() *Object {
	if v.kind == KindRef {
		return v.ref
	}
	return nil
}

// AsHandle returns the method handle, or nil.
func (v Value) AsHandle() *Method {
	if v.kind == KindHandle {
		return v.handle
	}
	return nil
}

// Truthy reports whether the value is considered true in branches.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindInt:
		return v.i != 0
	case KindFloat:
		return v.f != 0
	case KindRef:
		return true
	case KindHandle:
		return v.handle != nil
	default:
		return false
	}
}

// Equal compares two values for VM-level equality.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		// Numeric cross-kind comparison.
		if (v.kind == KindInt || v.kind == KindFloat) && (o.kind == KindInt || o.kind == KindFloat) {
			return v.AsFloat() == o.AsFloat()
		}
		return false
	}
	switch v.kind {
	case KindInt:
		return v.i == o.i
	case KindFloat:
		return v.f == o.f
	case KindRef:
		return v.ref == o.ref
	case KindHandle:
		return v.handle == o.handle
	default:
		return true // null == null
	}
}

func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return fmt.Sprintf("%d", v.i)
	case KindFloat:
		return fmt.Sprintf("%g", v.f)
	case KindRef:
		return fmt.Sprintf("ref(%s)", v.ref.Class.Name)
	case KindHandle:
		return fmt.Sprintf("handle(%s)", v.handle.QualifiedName())
	default:
		return "null"
	}
}

// Object is a heap object: an instance of a class with field slots, or an
// array (Class.IsArray with Elems).
type Object struct {
	Class  *Class
	Fields []Value
	Elems  []Value // arrays only
	// monitor state for MonitorEnter/Exit (sequential semantics: a
	// recursion counter; the cost model charges the atomic operations).
	monitorDepth int
}

// NewObject allocates an instance of the class with zeroed (null) fields.
func NewObject(c *Class) *Object {
	return &Object{Class: c, Fields: make([]Value, len(c.FieldNames))}
}

// NewArray allocates an array object of length n.
func NewArray(n int) *Object {
	return &Object{Class: ArrayClass, Elems: make([]Value, n)}
}

// ArrayClass is the synthetic class of all arrays.
var ArrayClass = &Class{Name: "[]", FieldNames: nil}
