package rvm

// Quickening: translating a verified method's bytecode into tier-1 form —
// a token-threaded []qinstr dispatched over a function table, with
//
//   - superinstructions fusing the hottest multi-instruction patterns of
//     the dotty corpus (compare+branch loop headers, load+binop+store,
//     const+binop, array element access),
//   - inline-cache slots for invokevirtual/invokeinterface/invokehandle
//     and getfield/putfield, seeded from the tier-0 receiver histograms,
//   - lazily cached static-call and class resolution (first execution
//     resolves and traps exactly like tier-0; later executions hit the
//     cache), and
//   - bounds-check-eliminated (NB) forms of ALoad/AStore inside proven
//     canonical induction-loop regions, where the fused loop header
//     (qLenCmpBr) is itself the hoisted null+bounds check.
//
// Counters semantics are preserved exactly: a superinstruction bumps
// Executed once per fused original instruction, staged so that a trap
// observes the same count tier-0 would have produced (tier-0 counts an
// instruction before executing it), and IC hits still bump Method.
//
// Fusion never crosses a basic-block leader, so every jump target (and
// every tier-0 OSR entry point) maps to a quickened instruction.

type qop uint8

// Quickened opcodes. The first group mirrors the bytecode one-to-one;
// the second group holds the fused superinstructions.
const (
	qNop qop = iota
	qConstInt
	qConstFloat
	qConstNull
	qLoad
	qStore
	qPop
	qDup
	qArith // xop = OpAdd..OpRem
	qNeg
	qCmp // xop = OpCmpLT..OpCmpNE
	qJump
	qJumpIf
	qJumpIfNot
	qReturn
	qReturnVoid
	qNew
	qGetField
	qPutField
	qNewArray
	qALoad
	qALoadNB
	qAStore
	qAStoreNB
	qArrayLen
	qInvokeStatic
	qInvokeVirtual // also invokeinterface (identical reference semantics)
	qInvokeDynamic
	qInvokeHandle
	qMonitorEnter
	qMonitorExit
	qCAS
	qAtomicAdd
	qPark
	qWait
	qNotify
	qInstanceOf
	qCheckCast

	qLenCmpBr     // Load i; Load a; ArrayLen; CmpLT; JumpIfNot exit
	qLLCmpBr      // Load x; Load y; Cmp*; JumpIf[Not]
	qLCCmpBr      // Load x; ConstInt k; Cmp*; JumpIf[Not]
	qCmpBr        // Cmp*; JumpIf[Not]
	qLCArithStore // Load x; ConstInt k; arith; Store y
	qLLArithStore // Load x; Load y; Add|Sub|Mul; Store z
	qArithStore   // arith; Store x
	qCArith       // ConstInt k; arith
	qLLALoad      // Load a; Load i; ALoad
	qLLALoadNB    //   ... with hoisted null+bounds check
	qLLLAStore    // Load a; Load i; Load v; AStore
	qLLLAStoreNB  //   ... with hoisted null+bounds check
	qEnd          // synthetic: fell off the end (implicit void return)

	qopCount
)

var qopNames = [qopCount]string{
	"nop", "const.i", "const.f", "const.null", "load", "store", "pop", "dup",
	"arith", "neg", "cmp", "jump", "jumpif", "jumpifnot", "return", "return.void",
	"new", "getfield", "putfield", "newarray", "aload", "aload.nb", "astore", "astore.nb", "arraylen",
	"invokestatic", "invokevirtual", "invokedynamic", "invokehandle",
	"monitorenter", "monitorexit", "cas", "atomicadd", "park", "wait", "notify",
	"instanceof", "checkcast",
	"len.cmp.br", "ll.cmp.br", "lc.cmp.br", "cmp.br",
	"lc.arith.st", "ll.arith.st", "arith.st", "c.arith",
	"ll.aload", "ll.aload.nb", "lll.astore", "lll.astore.nb", "end",
}

func (op qop) String() string {
	if int(op) < len(qopNames) {
		return qopNames[op]
	}
	return "qop?"
}

// icWidth is the polymorphic inline-cache capacity; beyond it a site goes
// megamorphic and falls back to ResolveMethod per call.
const icWidth = 4

// siteIC is the mutable per-site cache of one quickened method instance
// (per interpreter — never shared, so no synchronization is needed).
// Invoke sites use classes/targets; field sites use fcls/fidx; handle
// sites use targets[0] only.
type siteIC struct {
	pc   int
	kind Opcode
	sym  string

	classes [icWidth]*Class
	targets [icWidth]*Method
	// states caches the per-interpreter tiering state of each target,
	// filled lazily, so an IC hit can dispatch straight into quickened
	// code without the per-call method-state lookup.
	states [icWidth]*mstate
	n      int

	fcls *Class
	fidx int

	hits, misses               int64
	flushedHits, flushedMisses int64
}

// qinstr is one quickened instruction. a/b/c are local slots or, for
// branches, c is the quickened jump target. charge is the block fuel
// charge carried by block-leader instructions.
type qinstr struct {
	op     qop
	xop    Opcode // original arith/cmp opcode for generic variants
	neg    bool   // branch sense: true = JumpIfNot
	a, b   int32
	c      int32
	charge int32
	i      int64
	f      float64
	s      string
	ic     *siteIC
	tgt    *Method // lazily cached static/dynamic resolution
	tstate *mstate // the static target's tiering state, cached with tgt
	cls    *Class  // lazily cached class resolution (OpNew)
}

// qcode is a method's quickened form.
type qcode struct {
	m         *Method
	code      []qinstr
	entry     map[int]int // original leader pc -> quickened index (OSR)
	sites     []*siteIC
	nlocals   int
	frameSize int
}

// quicken tries to tier the method up, marking it noQuick on failure so
// the attempt is made only once.
func (vm *Interp) quicken(st *mstate) {
	if st.q != nil || st.noQuick || !st.flat {
		if st.q == nil {
			st.noQuick = true
		}
		return
	}
	if q, ok := buildQuick(st); ok {
		st.q = q
	} else {
		st.noQuick = true
	}
}

// nbPair names the (array, index) local slots an ALoad/AStore must be
// operating on for its hoisted-check (NB) form to be sound.
type nbPair struct{ arr, idx int }

// findBCE locates canonical induction-loop regions
//
//	h:   Load idx; Load arr; ArrayLen; CmpLT; JumpIfNot exit
//	       ...body (no stores to idx or arr)...
//	     Load idx; ConstInt k>0; Add; Store idx
//	le:  Jump h
//
// and returns the body ALoad/AStore pcs whose checks the header subsumes,
// keyed to the (arr, idx) slots that must be on the operand stack. The
// required facts — idx enters non-negative, only the latch increments it,
// arr is never reassigned, and the region is entered only through the
// header — are all re-derived from the bytecode; compiler LoopInfo
// metadata is only consulted for the idx-non-negative entry fact when the
// init sequence is not immediately before the header.
func findBCE(m *Method) map[int]nbPair {
	code := m.Code
	out := map[int]nbPair{}
	for pc, in := range code {
		if in.Op == OpJump && in.A >= 0 && in.A < pc {
			bceRegion(m, in.A, pc, out)
		}
	}
	return out
}

func bceRegion(m *Method, h, latchEnd int, out map[int]nbPair) {
	code := m.Code
	// Header shape.
	if h+4 >= latchEnd {
		return
	}
	if code[h].Op != OpLoad || code[h+1].Op != OpLoad || code[h+2].Op != OpArrayLen ||
		code[h+3].Op != OpCmpLT || code[h+4].Op != OpJumpIfNot {
		return
	}
	idx, arr := code[h].A, code[h+1].A
	if idx == arr {
		return
	}
	exit := code[h+4].A
	if exit >= h && exit <= latchEnd {
		return // loop must exit the region
	}
	// Canonical latch: Load idx; ConstInt k>0; Add; Store idx; (Jump h).
	if latchEnd-4 <= h+4 {
		return
	}
	if code[latchEnd-4].Op != OpLoad || code[latchEnd-4].A != idx ||
		code[latchEnd-3].Op != OpConstInt || code[latchEnd-3].I <= 0 ||
		code[latchEnd-2].Op != OpAdd ||
		code[latchEnd-1].Op != OpStore || code[latchEnd-1].A != idx {
		return
	}
	// Store discipline: idx written only by the latch, arr never.
	for j := h; j <= latchEnd; j++ {
		if code[j].Op == OpStore && (code[j].A == arr || (code[j].A == idx && j != latchEnd-1)) {
			return
		}
	}
	// Entry discipline: the interior is reachable only from within the
	// region; the header only via its fall-through entry or in-region
	// branches (so the non-negative-idx entry proof covers every path).
	for j, in := range code {
		switch in.Op {
		case OpJump, OpJumpIf, OpJumpIfNot:
		default:
			continue
		}
		t := in.A
		inside := j >= h && j <= latchEnd
		if !inside && t >= h && t <= latchEnd {
			return
		}
		if !inside && t == h-1 {
			// Would bypass the init sequence checked below.
			return
		}
	}
	// idx >= 0 on entry: the immediately preceding init is a
	// non-negative constant store, or compiler metadata asserts it.
	nonNeg := h >= 2 &&
		code[h-2].Op == OpConstInt && code[h-2].I >= 0 &&
		code[h-1].Op == OpStore && code[h-1].A == idx
	if !nonNeg {
		for _, l := range m.Loops {
			if l.Head == h && l.IdxSlot == idx && l.ArrSlot == arr && l.InitNonNeg {
				nonNeg = true
				break
			}
		}
	}
	if !nonNeg {
		return
	}
	// Body accesses between header and latch are candidates; the
	// quickener's symbolic stack still has to confirm the operands are
	// live copies of (arr, idx) before emitting an NB form.
	for j := h + 5; j < latchEnd-4; j++ {
		if code[j].Op == OpALoad || code[j].Op == OpAStore {
			out[j] = nbPair{arr: arr, idx: idx}
		}
	}
}

// buildQuick translates a verified method. It fails (false) only on
// shapes the translator does not model, which then stay on tier-0.
func buildQuick(st *mstate) (*qcode, bool) {
	m := st.m
	code := m.Code
	n := len(code)
	q := &qcode{
		m:         m,
		entry:     make(map[int]int),
		nlocals:   m.NLocals,
		frameSize: m.NLocals + st.maxStack,
	}
	leaders, charges, depths := st.leaders, st.charges, st.depths
	nb := findBCE(m)

	// Symbolic operand stack: for each slot, the local it is a verbatim
	// copy of (-1 = unknown). Reset at leaders, invalidated on stores.
	sym := make([]int, 0, st.maxStack+1)
	resetSym := func(d int) {
		sym = sym[:0]
		for i := 0; i < d; i++ {
			sym = append(sym, -1)
		}
	}
	symAt := func(k int) int { // k=1 is top-of-stack
		if len(sym) < k {
			return -1
		}
		return sym[len(sym)-k]
	}

	type fixup struct{ qi, target int }
	var fixes []fixup
	emit := func(in qinstr) int {
		q.code = append(q.code, in)
		return len(q.code) - 1
	}
	branch := func(in qinstr, target int) {
		fixes = append(fixes, fixup{emit(in), target})
	}
	newIC := func(pc int, kind Opcode, sym string) *siteIC {
		ic := &siteIC{pc: pc, kind: kind, sym: sym}
		q.sites = append(q.sites, ic)
		return ic
	}
	isCmp := func(op Opcode) bool { return op >= OpCmpLT && op <= OpCmpNE }
	isArith := func(op Opcode) bool { return op >= OpAdd && op <= OpRem }
	isMulFree := func(op Opcode) bool { return op == OpAdd || op == OpSub || op == OpMul } // trap-free arithmetic
	branchSense := func(op Opcode) (isBr, neg bool) {
		switch op {
		case OpJumpIf:
			return true, false
		case OpJumpIfNot:
			return true, true
		}
		return false, false
	}

	pc := 0
	for pc < n {
		if depths[pc] < 0 {
			pc++ // statically unreachable: never entered, never targeted
			continue
		}
		if leaders[pc] {
			resetSym(depths[pc])
			q.entry[pc] = len(q.code)
		}
		// fits reports whether a fusion of length l stays inside this
		// basic block (no interior leaders) and inside the method.
		fits := func(l int) bool {
			if pc+l > n {
				return false
			}
			for k := 1; k < l; k++ {
				if leaders[pc+k] {
					return false
				}
			}
			return true
		}
		in := code[pc]
		emitAt := len(q.code)
		consumed := 1
		fused := false

		if fits(5) && in.Op == OpLoad && code[pc+1].Op == OpLoad && code[pc+2].Op == OpArrayLen &&
			code[pc+3].Op == OpCmpLT && code[pc+4].Op == OpJumpIfNot {
			branch(qinstr{op: qLenCmpBr, a: int32(in.A), b: int32(code[pc+1].A)}, code[pc+4].A)
			consumed, fused = 5, true
		}
		if !fused && fits(4) {
			i1, i2, i3 := code[pc+1], code[pc+2], code[pc+3]
			if isBr, neg := branchSense(i3.Op); isBr && in.Op == OpLoad && isCmp(i2.Op) {
				switch i1.Op {
				case OpLoad:
					branch(qinstr{op: qLLCmpBr, a: int32(in.A), b: int32(i1.A), xop: i2.Op, neg: neg}, i3.A)
					consumed, fused = 4, true
				case OpConstInt:
					branch(qinstr{op: qLCCmpBr, a: int32(in.A), i: i1.I, xop: i2.Op, neg: neg}, i3.A)
					consumed, fused = 4, true
				}
			}
			if !fused && in.Op == OpLoad && i1.Op == OpConstInt && isArith(i2.Op) && i3.Op == OpStore &&
				(isMulFree(i2.Op) || i1.I != 0) {
				emit(qinstr{op: qLCArithStore, a: int32(in.A), b: int32(i3.A), i: i1.I, xop: i2.Op})
				consumed, fused = 4, true
			}
			if !fused && in.Op == OpLoad && i1.Op == OpLoad && isMulFree(i2.Op) && i3.Op == OpStore {
				emit(qinstr{op: qLLArithStore, a: int32(in.A), b: int32(i1.A), c: int32(i3.A), xop: i2.Op})
				consumed, fused = 4, true
			}
			if !fused && in.Op == OpLoad && i1.Op == OpLoad && i2.Op == OpLoad && i3.Op == OpAStore {
				op := qLLLAStore
				if p, ok := nb[pc+3]; ok && p.arr == in.A && p.idx == i1.A {
					op = qLLLAStoreNB
				}
				emit(qinstr{op: op, a: int32(in.A), b: int32(i1.A), c: int32(i2.A)})
				consumed, fused = 4, true
			}
		}
		if !fused && fits(3) && in.Op == OpLoad && code[pc+1].Op == OpLoad && code[pc+2].Op == OpALoad {
			op := qLLALoad
			if p, ok := nb[pc+2]; ok && p.arr == in.A && p.idx == code[pc+1].A {
				op = qLLALoadNB
			}
			emit(qinstr{op: op, a: int32(in.A), b: int32(code[pc+1].A)})
			consumed, fused = 3, true
		}
		if !fused && fits(2) {
			i1 := code[pc+1]
			switch {
			case in.Op == OpConstInt && isArith(i1.Op) && (isMulFree(i1.Op) || in.I != 0):
				emit(qinstr{op: qCArith, i: in.I, xop: i1.Op})
				consumed, fused = 2, true
			case isArith(in.Op) && i1.Op == OpStore:
				emit(qinstr{op: qArithStore, a: int32(i1.A), xop: in.Op})
				consumed, fused = 2, true
			case isCmp(in.Op):
				if isBr, neg := branchSense(i1.Op); isBr {
					branch(qinstr{op: qCmpBr, xop: in.Op, neg: neg}, i1.A)
					consumed, fused = 2, true
				}
			}
		}
		if !fused {
			switch in.Op {
			case OpNop:
				emit(qinstr{op: qNop})
			case OpConstInt:
				emit(qinstr{op: qConstInt, i: in.I})
			case OpConstFloat:
				emit(qinstr{op: qConstFloat, f: in.F})
			case OpConstNull:
				emit(qinstr{op: qConstNull})
			case OpLoad:
				emit(qinstr{op: qLoad, a: int32(in.A)})
			case OpStore:
				emit(qinstr{op: qStore, a: int32(in.A)})
			case OpPop:
				emit(qinstr{op: qPop})
			case OpDup:
				emit(qinstr{op: qDup})
			case OpAdd, OpSub, OpMul, OpDiv, OpRem:
				emit(qinstr{op: qArith, xop: in.Op})
			case OpNeg:
				emit(qinstr{op: qNeg})
			case OpCmpLT, OpCmpLE, OpCmpGT, OpCmpGE, OpCmpEQ, OpCmpNE:
				emit(qinstr{op: qCmp, xop: in.Op})
			case OpJump:
				branch(qinstr{op: qJump}, in.A)
			case OpJumpIf:
				branch(qinstr{op: qJumpIf}, in.A)
			case OpJumpIfNot:
				branch(qinstr{op: qJumpIfNot}, in.A)
			case OpReturn:
				emit(qinstr{op: qReturn})
			case OpReturnVoid:
				emit(qinstr{op: qReturnVoid})
			case OpNew:
				emit(qinstr{op: qNew, s: in.S})
			case OpGetField:
				emit(qinstr{op: qGetField, s: in.S, ic: newIC(pc, in.Op, in.S)})
			case OpPutField:
				emit(qinstr{op: qPutField, s: in.S, ic: newIC(pc, in.Op, in.S)})
			case OpNewArray:
				emit(qinstr{op: qNewArray})
			case OpALoad:
				op := qALoad
				if p, ok := nb[pc]; ok && symAt(2) == p.arr && symAt(1) == p.idx {
					op = qALoadNB
				}
				emit(qinstr{op: op})
			case OpAStore:
				op := qAStore
				if p, ok := nb[pc]; ok && symAt(3) == p.arr && symAt(2) == p.idx {
					op = qAStoreNB
				}
				emit(qinstr{op: op})
			case OpArrayLen:
				emit(qinstr{op: qArrayLen})
			case OpInvokeStatic:
				emit(qinstr{op: qInvokeStatic, s: in.S, a: int32(in.A)})
			case OpInvokeVirtual, OpInvokeInterface:
				ic := newIC(pc, in.Op, in.S)
				seedIC(ic, st.sites[pc], in.S)
				emit(qinstr{op: qInvokeVirtual, s: in.S, a: int32(in.A), ic: ic})
			case OpInvokeDynamic:
				emit(qinstr{op: qInvokeDynamic, s: in.S})
			case OpInvokeHandle:
				emit(qinstr{op: qInvokeHandle, a: int32(in.A), ic: newIC(pc, in.Op, in.S)})
			case OpMonitorEnter:
				emit(qinstr{op: qMonitorEnter})
			case OpMonitorExit:
				emit(qinstr{op: qMonitorExit})
			case OpCAS:
				emit(qinstr{op: qCAS, s: in.S})
			case OpAtomicAdd:
				emit(qinstr{op: qAtomicAdd, s: in.S})
			case OpPark:
				emit(qinstr{op: qPark})
			case OpWait:
				emit(qinstr{op: qWait})
			case OpNotify:
				emit(qinstr{op: qNotify})
			case OpInstanceOf:
				emit(qinstr{op: qInstanceOf, s: in.S})
			case OpCheckCast:
				emit(qinstr{op: qCheckCast, s: in.S})
			default:
				return nil, false
			}
		}
		if leaders[pc] {
			q.code[emitAt].charge = charges[pc]
		}
		// Replay the consumed instructions over the symbolic stack.
		for k := 0; k < consumed; k++ {
			rin := code[pc+k]
			switch rin.Op {
			case OpLoad:
				sym = append(sym, rin.A)
			case OpDup:
				sym = append(sym, symAt(1))
			case OpStore:
				sym = sym[:len(sym)-1]
				for i := range sym {
					if sym[i] == rin.A {
						sym[i] = -1
					}
				}
			default:
				pops, pushes, _ := stackEffect(rin)
				sym = sym[:len(sym)-pops]
				for i := 0; i < pushes; i++ {
					sym = append(sym, -1)
				}
			}
		}
		pc += consumed
	}

	// Synthetic terminator: fall-off-the-end and every out-of-range jump
	// target resolve here (the seed's implicit void return).
	endIdx := len(q.code)
	q.code = append(q.code, qinstr{op: qEnd})
	for _, fx := range fixes {
		target := endIdx
		if fx.target >= 0 && fx.target < n {
			e, ok := q.entry[fx.target]
			if !ok {
				return nil, false // fusion crossed a leader: translator bug
			}
			target = e
		}
		q.code[fx.qi].c = int32(target)
	}
	return q, true
}

// seedIC pre-populates a virtual-call inline cache from the tier-0
// receiver-class histogram, most-frequent class first.
func seedIC(ic *siteIC, rp *recvProf, sym string) {
	if rp == nil {
		return
	}
	type cand struct {
		c     *Class
		count int64
	}
	var cands []cand
	for i := 0; i < icWidth && rp.classes[i] != nil; i++ {
		cands = append(cands, cand{rp.classes[i], rp.counts[i]})
	}
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].count > cands[j-1].count; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	for _, cd := range cands {
		if t, ok := cd.c.ResolveMethod(sym); ok && ic.n < icWidth {
			ic.classes[ic.n] = cd.c
			ic.targets[ic.n] = t
			ic.n++
		}
	}
}
