package rvm

import (
	"errors"
	"testing"
)

// buildProgram wires methods into a single class "Main" plus extras.
func buildProgram(t *testing.T, entry *Method, extra ...*Method) *Program {
	t.Helper()
	p := NewProgram()
	main := NewClass("Main", nil)
	main.AddMethod(entry)
	entry.Static = true
	for _, m := range extra {
		m.Static = true
		main.AddMethod(m)
	}
	if err := p.AddClass(main); err != nil {
		t.Fatal(err)
	}
	p.Entry = entry
	return p
}

func run(t *testing.T, p *Program, args ...Value) Value {
	t.Helper()
	vm := NewInterp(p)
	v, err := vm.Run(args...)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	// return (3 + 4) * 5 - 6 / 2
	a := NewAsm()
	a.ConstInt(3).ConstInt(4).Op(OpAdd).ConstInt(5).Op(OpMul)
	a.ConstInt(6).ConstInt(2).Op(OpDiv).Op(OpSub)
	a.Op(OpReturn)
	p := buildProgram(t, a.MustBuild("main", 0))
	if v := run(t, p); v.AsInt() != 32 {
		t.Errorf("result = %v, want 32", v)
	}
}

func TestFloatPromotion(t *testing.T) {
	a := NewAsm()
	a.ConstInt(3).ConstFloat(0.5).Op(OpMul).Op(OpReturn)
	p := buildProgram(t, a.MustBuild("main", 0))
	if v := run(t, p); v.AsFloat() != 1.5 {
		t.Errorf("result = %v, want 1.5", v)
	}
}

func TestDivByZero(t *testing.T) {
	a := NewAsm()
	a.ConstInt(1).ConstInt(0).Op(OpDiv).Op(OpReturn)
	p := buildProgram(t, a.MustBuild("main", 0))
	_, err := NewInterp(p).Run()
	if !errors.Is(err, ErrDivByZero) {
		t.Errorf("err = %v", err)
	}
}

func TestLoopSum(t *testing.T) {
	// sum = 0; for i = 0..n-1: sum += i; return sum
	a := NewAsm()
	a.ConstInt(0).Store(1) // sum
	a.ConstInt(0).Store(2) // i
	a.Label("head")
	a.Load(2).Load(0).Op(OpCmpLT).Jump(OpJumpIfNot, "exit")
	a.Load(1).Load(2).Op(OpAdd).Store(1)
	a.Load(2).ConstInt(1).Op(OpAdd).Store(2)
	a.Jump(OpJump, "head")
	a.Label("exit")
	a.Load(1).Op(OpReturn)
	p := buildProgram(t, a.MustBuild("main", 1))
	if v := run(t, p, Int(100)); v.AsInt() != 4950 {
		t.Errorf("sum = %v, want 4950", v)
	}
}

func TestObjectsAndFields(t *testing.T) {
	p := NewProgram()
	point := NewClass("Point", nil, "x", "y")
	if err := p.AddClass(point); err != nil {
		t.Fatal(err)
	}
	a := NewAsm()
	a.Sym(OpNew, "Point").Store(0)
	a.Load(0).ConstInt(7).Sym(OpPutField, "x")
	a.Load(0).ConstInt(35).Sym(OpPutField, "y")
	a.Load(0).Sym(OpGetField, "x").Load(0).Sym(OpGetField, "y").Op(OpAdd).Op(OpReturn)
	m := a.MustBuild("main", 0)
	m.Static = true
	main := NewClass("Main", nil)
	main.AddMethod(m)
	if err := p.AddClass(main); err != nil {
		t.Fatal(err)
	}
	p.Entry = m
	vm := NewInterp(p)
	v, err := vm.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v.AsInt() != 42 {
		t.Errorf("x+y = %v", v)
	}
	if vm.Counters.Object != 1 {
		t.Errorf("object count = %d", vm.Counters.Object)
	}
}

func TestArrays(t *testing.T) {
	// arr = new [10]; arr[3] = 99; return arr[3] + len(arr)
	a := NewAsm()
	a.ConstInt(10).Op(OpNewArray).Store(0)
	a.Load(0).ConstInt(3).ConstInt(99).Op(OpAStore)
	a.Load(0).ConstInt(3).Op(OpALoad)
	a.Load(0).Op(OpArrayLen).Op(OpAdd).Op(OpReturn)
	p := buildProgram(t, a.MustBuild("main", 0))
	if v := run(t, p); v.AsInt() != 109 {
		t.Errorf("result = %v", v)
	}
}

func TestArrayBoundsTrap(t *testing.T) {
	a := NewAsm()
	a.ConstInt(2).Op(OpNewArray).Store(0)
	a.Load(0).ConstInt(5).Op(OpALoad).Op(OpReturn)
	p := buildProgram(t, a.MustBuild("main", 0))
	if _, err := NewInterp(p).Run(); !errors.Is(err, ErrBounds) {
		t.Errorf("err = %v", err)
	}
}

func TestNullPointerTrap(t *testing.T) {
	a := NewAsm()
	a.Op(OpConstNull).Sym(OpGetField, "x").Op(OpReturn)
	p := buildProgram(t, a.MustBuild("main", 0))
	if _, err := NewInterp(p).Run(); !errors.Is(err, ErrNullPointer) {
		t.Errorf("err = %v", err)
	}
}

func TestStaticCall(t *testing.T) {
	sq := NewAsm()
	sq.Load(0).Load(0).Op(OpMul).Op(OpReturn)
	square := sq.MustBuild("square", 1)

	a := NewAsm()
	a.ConstInt(9).Invoke(OpInvokeStatic, "Main.square", 1).Op(OpReturn)
	p := buildProgram(t, a.MustBuild("main", 0), square)
	if v := run(t, p); v.AsInt() != 81 {
		t.Errorf("square(9) = %v", v)
	}
}

func TestVirtualDispatch(t *testing.T) {
	p := NewProgram()
	animal := NewClass("Animal", nil)
	speakA := NewAsm()
	speakA.ConstInt(1).Op(OpReturn)
	animal.AddMethod(speakA.MustBuild("speak", 1))

	dog := NewClass("Dog", animal)
	speakD := NewAsm()
	speakD.ConstInt(2).Op(OpReturn)
	dog.AddMethod(speakD.MustBuild("speak", 1))

	cat := NewClass("Cat", animal) // inherits Animal.speak

	for _, c := range []*Class{animal, dog, cat} {
		if err := p.AddClass(c); err != nil {
			t.Fatal(err)
		}
	}

	a := NewAsm()
	a.Sym(OpNew, "Dog").Invoke(OpInvokeVirtual, "speak", 1)
	a.Sym(OpNew, "Cat").Invoke(OpInvokeVirtual, "speak", 1)
	a.Op(OpAdd).Op(OpReturn)
	m := a.MustBuild("main", 0)
	m.Static = true
	mainC := NewClass("Main", nil)
	mainC.AddMethod(m)
	if err := p.AddClass(mainC); err != nil {
		t.Fatal(err)
	}
	p.Entry = m
	vm := NewInterp(p)
	v, err := vm.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v.AsInt() != 3 { // Dog override (2) + Cat inherited (1)
		t.Errorf("dispatch sum = %v", v)
	}
	if vm.Counters.Method != 2 {
		t.Errorf("method dispatch count = %d", vm.Counters.Method)
	}
}

func TestInvokeDynamicAndHandle(t *testing.T) {
	double := NewAsm()
	double.Load(0).ConstInt(2).Op(OpMul).Op(OpReturn)

	a := NewAsm()
	a.Sym(OpInvokeDynamic, "Main.double").Store(0) // handle
	a.Load(0).ConstInt(21).Invoke(OpInvokeHandle, "", 1).Op(OpReturn)
	p := buildProgram(t, a.MustBuild("main", 0), double.MustBuild("double", 1))
	vm := NewInterp(p)
	v, err := vm.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v.AsInt() != 42 {
		t.Errorf("handle call = %v", v)
	}
	if vm.Counters.IDynamic != 1 {
		t.Errorf("idynamic count = %d", vm.Counters.IDynamic)
	}
}

func TestMonitorsAndCounters(t *testing.T) {
	p := NewProgram()
	lock := NewClass("Lock", nil)
	if err := p.AddClass(lock); err != nil {
		t.Fatal(err)
	}
	a := NewAsm()
	a.Sym(OpNew, "Lock").Store(0)
	a.Load(0).Op(OpMonitorEnter)
	a.Load(0).Op(OpMonitorExit)
	a.Load(0).Op(OpWait)
	a.Load(0).Op(OpNotify)
	a.Op(OpPark)
	a.ConstInt(0).Op(OpReturn)
	m := a.MustBuild("main", 0)
	m.Static = true
	mainC := NewClass("Main", nil)
	mainC.AddMethod(m)
	if err := p.AddClass(mainC); err != nil {
		t.Fatal(err)
	}
	p.Entry = m
	vm := NewInterp(p)
	if _, err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	c := vm.Counters
	if c.Synch != 1 || c.Wait != 1 || c.Notify != 1 || c.Park != 1 {
		t.Errorf("counters = %+v", c)
	}
	if c.Atomic < 2 { // enter + exit lock words
		t.Errorf("atomic = %d", c.Atomic)
	}
}

func TestUnbalancedMonitorExit(t *testing.T) {
	p := NewProgram()
	lock := NewClass("Lock", nil)
	if err := p.AddClass(lock); err != nil {
		t.Fatal(err)
	}
	a := NewAsm()
	a.Sym(OpNew, "Lock").Op(OpMonitorExit).ConstInt(0).Op(OpReturn)
	m := a.MustBuild("main", 0)
	m.Static = true
	mainC := NewClass("Main", nil)
	mainC.AddMethod(m)
	_ = p.AddClass(mainC)
	p.Entry = m
	if _, err := NewInterp(p).Run(); !errors.Is(err, ErrBadMonitor) {
		t.Errorf("err = %v", err)
	}
}

func TestCASSemantics(t *testing.T) {
	p := NewProgram()
	cell := NewClass("Cell", nil, "v")
	if err := p.AddClass(cell); err != nil {
		t.Fatal(err)
	}
	a := NewAsm()
	a.Sym(OpNew, "Cell").Store(0)
	a.Load(0).ConstInt(5).Sym(OpPutField, "v")
	// CAS(v, 5, 9) should succeed; CAS(v, 5, 7) should then fail.
	a.Load(0).ConstInt(5).ConstInt(9).Sym(OpCAS, "v").Store(1)
	a.Load(0).ConstInt(5).ConstInt(7).Sym(OpCAS, "v").Store(2)
	// return first*10 + second (expect 10) and v must be 9.
	a.Load(0).Sym(OpGetField, "v").Store(3)
	a.Load(1).ConstInt(100).Op(OpMul).Load(2).ConstInt(10).Op(OpMul).Op(OpAdd).Load(3).Op(OpAdd).Op(OpReturn)
	m := a.MustBuild("main", 0)
	m.Static = true
	mainC := NewClass("Main", nil)
	mainC.AddMethod(m)
	_ = p.AddClass(mainC)
	p.Entry = m
	vm := NewInterp(p)
	v, err := vm.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v.AsInt() != 109 { // 1*100 + 0*10 + 9
		t.Errorf("result = %v, want 109", v)
	}
	if vm.Counters.Atomic != 2 {
		t.Errorf("atomic = %d", vm.Counters.Atomic)
	}
}

func TestAtomicAdd(t *testing.T) {
	p := NewProgram()
	cell := NewClass("Cell", nil, "v")
	_ = p.AddClass(cell)
	a := NewAsm()
	a.Sym(OpNew, "Cell").Store(0)
	a.Load(0).ConstInt(10).Sym(OpPutField, "v")
	a.Load(0).ConstInt(5).Sym(OpAtomicAdd, "v").Store(1) // old = 10
	a.Load(0).Sym(OpGetField, "v").Load(1).Op(OpAdd).Op(OpReturn)
	m := a.MustBuild("main", 0)
	m.Static = true
	mainC := NewClass("Main", nil)
	mainC.AddMethod(m)
	_ = p.AddClass(mainC)
	p.Entry = m
	if v := run(t, p); v.AsInt() != 25 { // 15 + 10
		t.Errorf("result = %v", v)
	}
}

func TestInstanceOfAndCast(t *testing.T) {
	p := NewProgram()
	base := NewClass("Base", nil)
	derived := NewClass("Derived", base)
	derived.Interfaces = []string{"Marker"}
	other := NewClass("Other", nil)
	for _, c := range []*Class{base, derived, other} {
		_ = p.AddClass(c)
	}
	a := NewAsm()
	a.Sym(OpNew, "Derived").Store(0)
	a.Load(0).Sym(OpInstanceOf, "Base").Store(1)   // 1
	a.Load(0).Sym(OpInstanceOf, "Other").Store(2)  // 0
	a.Load(0).Sym(OpInstanceOf, "Marker").Store(3) // 1 (interface)
	a.Load(0).Sym(OpCheckCast, "Base").Op(OpPop)
	a.Load(1).ConstInt(100).Op(OpMul).Load(2).ConstInt(10).Op(OpMul).Op(OpAdd).Load(3).Op(OpAdd).Op(OpReturn)
	m := a.MustBuild("main", 0)
	m.Static = true
	mainC := NewClass("Main", nil)
	mainC.AddMethod(m)
	_ = p.AddClass(mainC)
	p.Entry = m
	if v := run(t, p); v.AsInt() != 101 {
		t.Errorf("result = %v, want 101", v)
	}
}

func TestBadCastTrap(t *testing.T) {
	p := NewProgram()
	x := NewClass("X", nil)
	y := NewClass("Y", nil)
	_ = p.AddClass(x)
	_ = p.AddClass(y)
	a := NewAsm()
	a.Sym(OpNew, "X").Sym(OpCheckCast, "Y").Op(OpReturn)
	m := a.MustBuild("main", 0)
	m.Static = true
	mainC := NewClass("Main", nil)
	mainC.AddMethod(m)
	_ = p.AddClass(mainC)
	p.Entry = m
	if _, err := NewInterp(p).Run(); !errors.Is(err, ErrBadCast) {
		t.Errorf("err = %v", err)
	}
}

func TestFuelExhaustion(t *testing.T) {
	a := NewAsm()
	a.Label("loop").Jump(OpJump, "loop")
	p := buildProgram(t, a.MustBuild("main", 0))
	vm := NewInterp(p)
	vm.Fuel = 1000
	if _, err := vm.Run(); !errors.Is(err, ErrFuelExhausted) {
		t.Errorf("err = %v", err)
	}
}

func TestRecursionFib(t *testing.T) {
	// fib(n) = n < 2 ? n : fib(n-1) + fib(n-2)
	f := NewAsm()
	f.Load(0).ConstInt(2).Op(OpCmpLT).Jump(OpJumpIfNot, "rec")
	f.Load(0).Op(OpReturn)
	f.Label("rec")
	f.Load(0).ConstInt(1).Op(OpSub).Invoke(OpInvokeStatic, "Main.fib", 1)
	f.Load(0).ConstInt(2).Op(OpSub).Invoke(OpInvokeStatic, "Main.fib", 1)
	f.Op(OpAdd).Op(OpReturn)
	fib := f.MustBuild("fib", 1)

	a := NewAsm()
	a.Load(0).Invoke(OpInvokeStatic, "Main.fib", 1).Op(OpReturn)
	p := buildProgram(t, a.MustBuild("main", 1), fib)
	if v := run(t, p, Int(12)); v.AsInt() != 144 {
		t.Errorf("fib(12) = %v", v)
	}
}

func TestUndefinedLabel(t *testing.T) {
	a := NewAsm()
	a.Jump(OpJump, "nowhere")
	if _, err := a.Build("broken", 0); err == nil {
		t.Error("want label error")
	}
}

func TestInterfaceDispatchCheck(t *testing.T) {
	p := NewProgram()
	impl := NewClass("Impl", nil)
	impl.Interfaces = []string{"Runnable"}
	runM := NewAsm()
	runM.ConstInt(7).Op(OpReturn)
	impl.AddMethod(runM.MustBuild("run", 1))
	_ = p.AddClass(impl)

	a := NewAsm()
	a.Sym(OpNew, "Impl").Invoke(OpInvokeInterface, "run", 1).Op(OpReturn)
	m := a.MustBuild("main", 0)
	m.Static = true
	mainC := NewClass("Main", nil)
	mainC.AddMethod(m)
	_ = p.AddClass(mainC)
	p.Entry = m
	if v := run(t, p); v.AsInt() != 7 {
		t.Errorf("interface call = %v", v)
	}
}

func TestClassHierarchyHelpers(t *testing.T) {
	base := NewClass("B", nil, "f1")
	derived := NewClass("D", base, "f2")
	if len(derived.FieldNames) != 2 {
		t.Errorf("inherited fields = %v", derived.FieldNames)
	}
	if i, ok := derived.FieldIndex("f1"); !ok || i != 0 {
		t.Errorf("f1 index = %d, %v", i, ok)
	}
	if !derived.IsSubclassOf(base) || base.IsSubclassOf(derived) {
		t.Error("subclass relation wrong")
	}
	p := NewProgram()
	_ = p.AddClass(base)
	if err := p.AddClass(base); err == nil {
		t.Error("duplicate class accepted")
	}
}
