// Package opt implements the RVM's optimizing passes: the four new
// optimizations the paper contributes (escape analysis with atomic
// operations §5.1, loop-wide lock coarsening §5.2, atomic-operation
// coalescing §5.3, method-handle simplification §5.4), the three existing
// optimizations it studies (speculative guard motion §5.5, loop
// vectorization §5.6, dominance-based duplication simulation §5.7), and
// the enabling passes every pipeline needs (canonicalization, inlining,
// dead-code elimination).
//
// Every pass is a semantics-preserving ir.Func transformation; the test
// suite checks each pass differentially against the bytecode interpreter
// on programs that trigger it.
package opt

import (
	"fmt"
	"time"

	"renaissance/internal/rvm/ir"
)

// A Pass transforms one function, returning whether it changed anything.
type Pass struct {
	Name string
	Run  func(f *ir.Func, prog *ir.Program) bool
}

// Optimization names, used to selectively disable passes (the Figure 5
// methodology: "the impact of an optimization is the change in execution
// time observed when the optimization is selectively disabled").
const (
	NameCanonicalize = "canonicalize"
	NameDCE          = "dce"
	NameInline       = "inline"
	NameEAWA         = "eawa" // escape analysis w/ atomic operations
	NameLLC          = "llc"  // loop-wide lock coarsening
	NameAC           = "ac"   // atomic-operation coalescing
	NameMHS          = "mhs"  // method-handle simplification
	NameGM           = "gm"   // speculative guard motion
	NameLV           = "lv"   // loop vectorization
	NameDBDS         = "dbds" // dominance-based duplication simulation
	NameABCE         = "abce" // array bounds-check elimination
	NameStreamFuse   = "streamfuse"
)

// PaperOptimizations lists the seven §5 optimizations in the paper's
// Figure 5 column order (AC, DS, EAWA, GM, LV, LLC, MHS).
func PaperOptimizations() []string {
	return []string{NameAC, NameDBDS, NameEAWA, NameGM, NameLV, NameLLC, NameMHS}
}

// Pipeline is an ordered pass schedule with a disabled-set.
type Pipeline struct {
	Name     string
	Passes   []Pass
	Disabled map[string]bool
	// PassTime accumulates wall-clock compilation time per pass name
	// (Table 16's compilation-time accounting).
	PassTime map[string]time.Duration
}

// OptPipeline returns the full optimizing pipeline (the "Graal" role in
// Figure 6). Pass order matters: StreamFuse runs early so the synthesized
// loop bodies feed every later pass, MHS must run before inlining (it
// turns handle calls into direct calls that inlining can consume), ABCE
// before GM (deleting provable checks leaves GM only the speculative
// ones) and before LV (vectorization requires guard-free loop bodies,
// §5.6), and canonicalize/DCE run between the major passes to clean up.
func OptPipeline() *Pipeline {
	return &Pipeline{
		Name: "opt",
		Passes: []Pass{
			{NameCanonicalize, Canonicalize},
			{NameStreamFuse, StreamFuse},
			{NameMHS, MethodHandleSimplify},
			{NameInline, Inline},
			{NameCanonicalize, Canonicalize},
			{NameDBDS, DuplicateSimulate},
			{NameCanonicalize, Canonicalize},
			{NameEAWA, EscapeAnalysis},
			{NameAC, CoalesceAtomics},
			{NameLLC, CoarsenLocks},
			{NameABCE, BoundsCheckElim},
			{NameGM, GuardMotion},
			{NameLV, Vectorize},
			{NameCanonicalize, Canonicalize},
			{NameDCE, DeadCodeElim},
		},
		Disabled: map[string]bool{},
		PassTime: map[string]time.Duration{},
	}
}

// BaselinePipeline returns the conservative pipeline (the "C2" role in
// Figure 6): canonicalization, inlining, and cleanup, with none of the
// seven paper optimizations.
func BaselinePipeline() *Pipeline {
	return &Pipeline{
		Name: "baseline",
		Passes: []Pass{
			{NameCanonicalize, Canonicalize},
			{NameInline, Inline},
			{NameCanonicalize, Canonicalize},
			{NameDCE, DeadCodeElim},
		},
		Disabled: map[string]bool{},
		PassTime: map[string]time.Duration{},
	}
}

// Disable turns a pass off by name and returns the pipeline.
func (p *Pipeline) Disable(names ...string) *Pipeline {
	for _, n := range names {
		p.Disabled[n] = true
	}
	return p
}

// Compile runs the pipeline over every function of the program, iterating
// each function's schedule until a fixpoint (bounded), and records
// per-pass compilation time. Passes may synthesize new functions (stream
// fusion does); the worklist keeps draining until every function present
// in the program — original or synthesized — has been compiled.
func (p *Pipeline) Compile(prog *ir.Program) {
	compiled := map[string]bool{}
	for {
		var todo []string
		for _, name := range sortedFuncNames(prog) {
			if !compiled[name] {
				todo = append(todo, name)
			}
		}
		if len(todo) == 0 {
			return
		}
		for _, name := range todo {
			compiled[name] = true
			f := prog.Funcs[name]
			const maxRounds = 3
			for round := 0; round < maxRounds; round++ {
				changed := false
				for _, pass := range p.Passes {
					if p.Disabled[pass.Name] {
						continue
					}
					start := time.Now()
					if pass.Run(f, prog) {
						changed = true
					}
					p.PassTime[pass.Name] += time.Since(start)
				}
				if !changed {
					break
				}
			}
		}
	}
}

func sortedFuncNames(prog *ir.Program) []string {
	names := make([]string, 0, len(prog.Funcs))
	for n := range prog.Funcs {
		names = append(names, n)
	}
	// Insertion sort keeps this dependency-free and deterministic.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// String describes the pipeline configuration.
func (p *Pipeline) String() string {
	s := p.Name + "["
	for i, pass := range p.Passes {
		if i > 0 {
			s += " "
		}
		if p.Disabled[pass.Name] {
			s += "-"
		}
		s += pass.Name
	}
	return s + "]"
}

// instr is a small helper constructing instructions with all register
// fields defaulted to NoReg (the zero value of ir.Reg is register 0, which
// is a real register — passes must never rely on it accidentally).
func instr(op ir.Op) ir.Instr {
	return ir.Instr{Op: op, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg}
}

var _ = fmt.Sprintf // reserved for debug printing in passes
