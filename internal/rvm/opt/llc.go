package opt

import (
	"renaissance/internal/rvm"
	"renaissance/internal/rvm/ir"
)

// CoarsenChunk is the tile size C of loop-wide lock coarsening. The paper
// reports that C = 32 works well for fj-kmeans (§5.2); the ablation bench
// sweeps this value.
var CoarsenChunk int64 = 32

// CoarsenLocks implements §5.2, loop-wide lock coarsening: a loop whose
// body acquires and releases the same lock on every iteration is tiled
// into chunks of C iterations, holding the lock across each whole chunk.
// The monitor operations execute 1/C as often. The transformation is legal
// when the loop condition acquires no lock (here: the header is pure
// arithmetic), matching the paper's side condition; fairness is not part
// of Java monitor semantics, so holding the lock longer only restricts
// the schedule set (§5.2 "Soundness").
func CoarsenLocks(f *ir.Func, prog *ir.Program) bool {
	changed := false
	for {
		if !coarsenOne(f) {
			break
		}
		changed = true
	}
	if changed {
		f.Renumber()
	}
	return changed
}

func coarsenOne(f *ir.Func) bool {
	loops := ir.FindLoops(f)
	for _, l := range loops {
		if len(l.Blocks) != 2 || len(l.Latches) != 1 {
			continue
		}
		h := l.Header
		body := l.Latches[0]
		if body == h || !l.Blocks[body] {
			continue
		}
		// Header: pure code, conditional branch with one arm into the
		// body and one out of the loop.
		if h.Term.Kind != ir.TermBranch || !isPureCode(h.Code) {
			continue
		}
		var exit *ir.Block
		switch {
		case h.Term.To == body && !l.Blocks[h.Term.Else]:
			exit = h.Term.Else
		case h.Term.Else == body && !l.Blocks[h.Term.To]:
			exit = h.Term.To
		default:
			continue
		}
		_ = exit
		// Body: straight-line block jumping back to the header.
		if body.Term.Kind != ir.TermJump || body.Term.To != h {
			continue
		}
		me, mx, lock, ok := matchMonitorRegion(body)
		if !ok {
			continue
		}
		// The lock register must be loop-invariant at block entry: chase
		// the operand-stack copies back to the register that carried the
		// lock into the body.
		lockRoot, ok := chaseBackward(body, me, lock)
		if !ok || definesReg(h, lockRoot) || definesReg(body, lockRoot) {
			continue
		}
		applyCoarsening(f, h, body, me, mx, lockRoot)
		return true
	}
	return false
}

// matchMonitorRegion finds the single monitor-enter/exit pair bracketing
// the body's critical region and validates the surrounding code.
func matchMonitorRegion(b *ir.Block) (me, mx int, lock ir.Reg, ok bool) {
	me, mx = -1, -1
	for i, in := range b.Code {
		switch in.Op {
		case ir.OpMonitorEnter:
			if me >= 0 {
				return 0, 0, 0, false
			}
			me = i
			lock = in.A
		case ir.OpMonitorExit:
			if mx >= 0 || me < 0 {
				return 0, 0, 0, false
			}
			mx = i
			if in.A != lock {
				return 0, 0, 0, false
			}
		case ir.OpCallStatic, ir.OpCallVirt, ir.OpCallHandle,
			ir.OpPark, ir.OpWait, ir.OpNotify:
			// Calls may acquire locks; waits change monitor semantics.
			return 0, 0, 0, false
		}
	}
	if me < 0 || mx < 0 || mx <= me {
		return 0, 0, 0, false
	}
	// Only the lock push (moves/constants) and its guard may precede the
	// enter.
	for i := 0; i < me; i++ {
		switch b.Code[i].Op {
		case ir.OpGuardNull, ir.OpMove, ir.OpConst:
		default:
			return 0, 0, 0, false
		}
	}
	// The exit's lock operand must be the same value as the enter's.
	enterRoot, ok1 := chaseBackward(b, me, b.Code[me].A)
	exitRoot, ok2 := chaseBackward(b, mx, b.Code[mx].A)
	if !ok1 || !ok2 || enterRoot != exitRoot {
		return 0, 0, 0, false
	}
	return me, mx, lock, true
}

func isPureCode(code []*ir.Instr) bool {
	for _, in := range code {
		switch in.Op {
		case ir.OpConst, ir.OpMove, ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv,
			ir.OpRem, ir.OpNeg, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT,
			ir.OpCmpGE, ir.OpCmpEQ, ir.OpCmpNE, ir.OpArrayLen:
		default:
			return false
		}
	}
	return true
}

func definesReg(b *ir.Block, r ir.Reg) bool {
	for _, in := range b.Code {
		if in.Defines() && in.Dst == r {
			return true
		}
	}
	return false
}

// applyCoarsening rewrites
//
//	H: if cond goto B else Exit
//	B: [guards] enter l; region; exit l; tail; goto H
//
// into the tiled form
//
//	H:      if cond goto Bpre else Exit
//	Bpre:   [guards] enter l; c = 0; limit = C; one = 1; goto Binner
//	Binner: region; tail; c += one; if c < limit goto H2 else Bexit
//	H2:     (copy of H's pure condition code) if cond goto Binner else Bexit
//	Bexit:  exit l; goto H
func applyCoarsening(f *ir.Func, h, body *ir.Block, me, mx int, lock ir.Reg) {
	cReg := f.NewReg()
	limitReg := f.NewReg()
	oneReg := f.NewReg()
	cmpReg := f.NewReg()

	binner := f.NewBlock()
	h2 := f.NewBlock()
	bexit := f.NewBlock()

	region := body.Code[me+1 : mx]
	tail := body.Code[mx+1:]

	// Bpre reuses the original body block so the header's branch still
	// points at it.
	var pre []*ir.Instr
	pre = append(pre, body.Code[:me+1]...) // guards + monitor enter
	czero := instr(ir.OpConst)
	czero.Dst = cReg
	czero.Val = rvm.Int(0)
	climit := instr(ir.OpConst)
	climit.Dst = limitReg
	climit.Val = rvm.Int(CoarsenChunk)
	cone := instr(ir.OpConst)
	cone.Dst = oneReg
	cone.Val = rvm.Int(1)
	pre = append(pre, &czero, &climit, &cone)
	body.Code = pre
	body.Term = ir.Terminator{Kind: ir.TermJump, To: binner, Cond: ir.NoReg, Ret: ir.NoReg}

	// Binner: the critical region and loop tail, then the chunk check.
	binner.Code = append(binner.Code, region...)
	binner.Code = append(binner.Code, tail...)
	inc := instr(ir.OpAdd)
	inc.Dst = cReg
	inc.A = cReg
	inc.B = oneReg
	cmp := instr(ir.OpCmpLT)
	cmp.Dst = cmpReg
	cmp.A = cReg
	cmp.B = limitReg
	binner.Code = append(binner.Code, &inc, &cmp)
	binner.Term = ir.Terminator{Kind: ir.TermBranch, Cond: cmpReg, To: h2, Else: bexit, Ret: ir.NoReg}

	// H2: re-evaluate the loop condition without releasing the lock.
	for _, in := range h.Code {
		cp := *in
		if len(in.Args) > 0 {
			cp.Args = append([]ir.Reg(nil), in.Args...)
		}
		h2.Code = append(h2.Code, &cp)
	}
	if h.Term.Else == body {
		// The header branches out of the loop when the condition holds.
		h2.Term = ir.Terminator{Kind: ir.TermBranch, Cond: h.Term.Cond, To: bexit, Else: binner, Ret: ir.NoReg}
	} else {
		h2.Term = ir.Terminator{Kind: ir.TermBranch, Cond: h.Term.Cond, To: binner, Else: bexit, Ret: ir.NoReg}
	}

	// Bexit: release the lock (via its loop-invariant root register, since
	// the operand-stack copy used inside the body may be clobbered by the
	// loop tail), continue with the outer loop header.
	exitI := instr(ir.OpMonitorExit)
	exitI.A = lock
	bexit.Code = append(bexit.Code, &exitI)
	bexit.Term = ir.Terminator{Kind: ir.TermJump, To: h, Cond: ir.NoReg, Ret: ir.NoReg}
}
