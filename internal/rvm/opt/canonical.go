package opt

import (
	"renaissance/internal/rvm"
	"renaissance/internal/rvm/ir"
)

// Canonicalize performs local simplifications within each block:
//
//   - constant folding of arithmetic and comparisons whose operands are
//     block-local constants;
//   - copy propagation of block-local constants through moves;
//   - removal of null guards on references freshly allocated in the same
//     block (a JIT knows `new` never yields null);
//   - folding of branches whose condition is a block-local constant.
//
// It is the cleanup pass the major optimizations rely on (e.g. DBDS
// produces branches on known conditions that canonicalization folds away,
// §5.7).
func Canonicalize(f *ir.Func, prog *ir.Program) bool {
	changed := false
	for _, b := range f.Blocks {
		consts := map[ir.Reg]rvm.Value{}
		nonNull := map[ir.Reg]bool{}
		var kept []*ir.Instr

		invalidate := func(r ir.Reg) {
			delete(consts, r)
			delete(nonNull, r)
		}

		for _, in := range b.Code {
			switch in.Op {
			case ir.OpConst:
				invalidate(in.Dst)
				consts[in.Dst] = in.Val
				kept = append(kept, in)
				continue
			case ir.OpMove:
				if v, ok := consts[in.A]; ok {
					// Rewrite the move into a constant definition.
					ni := instr(ir.OpConst)
					ni.Dst = in.Dst
					ni.Val = v
					invalidate(in.Dst)
					consts[in.Dst] = v
					kept = append(kept, &ni)
					changed = true
					continue
				}
				invalidate(in.Dst)
				if nonNull[in.A] {
					nonNull[in.Dst] = true
				}
				kept = append(kept, in)
				continue
			case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem:
				va, aok := consts[in.A]
				vb, bok := consts[in.B]
				if aok && bok {
					if v, err := ir.EvalArith(in.Op, va, vb); err == nil {
						ni := instr(ir.OpConst)
						ni.Dst = in.Dst
						ni.Val = v
						invalidate(in.Dst)
						consts[in.Dst] = v
						kept = append(kept, &ni)
						changed = true
						continue
					}
				}
				invalidate(in.Dst)
				kept = append(kept, in)
				continue
			case ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE, ir.OpCmpEQ, ir.OpCmpNE:
				va, aok := consts[in.A]
				vb, bok := consts[in.B]
				if aok && bok {
					v := ir.EvalCmp(in.Op, va, vb)
					ni := instr(ir.OpConst)
					ni.Dst = in.Dst
					ni.Val = v
					invalidate(in.Dst)
					consts[in.Dst] = v
					kept = append(kept, &ni)
					changed = true
					continue
				}
				invalidate(in.Dst)
				kept = append(kept, in)
				continue
			case ir.OpNew, ir.OpNewArray:
				invalidate(in.Dst)
				nonNull[in.Dst] = true
				kept = append(kept, in)
				continue
			case ir.OpGuardNull:
				if nonNull[in.A] {
					changed = true
					continue // provably non-null: drop the guard
				}
				kept = append(kept, in)
				continue
			case ir.OpScalarCAS:
				// A scalar-replaced CAS mutates its A register in place.
				invalidate(in.A)
				invalidate(in.Dst)
				kept = append(kept, in)
				continue
			}
			if in.Defines() {
				invalidate(in.Dst)
			}
			kept = append(kept, in)
		}
		b.Code = kept

		// Fold constant branches.
		if b.Term.Kind == ir.TermBranch {
			if v, ok := consts[b.Term.Cond]; ok {
				target := b.Term.Else
				if v.Truthy() {
					target = b.Term.To
				}
				b.Term = ir.Terminator{Kind: ir.TermJump, To: target, Cond: ir.NoReg, Ret: ir.NoReg}
				changed = true
			}
		}
	}
	if changed {
		f.Renumber()
	}
	return changed
}
