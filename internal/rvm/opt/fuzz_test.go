package opt

import (
	"math/rand"
	"testing"

	"renaissance/internal/rvm"
	"renaissance/internal/rvm/ir"
)

// TestFuzzDifferential generates random structured programs (arithmetic on
// locals, nested counted loops, conditionals, object fields, arrays, CAS,
// monitors, type tests) and checks that the bytecode interpreter, the
// unoptimized IR, and the fully optimized IR all compute the same result.
// This is the repository-wide semantic oracle for the optimization passes.
func TestFuzzDifferential(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		p := genProgram(rng)

		want, werr := rvm.NewInterp(p).Run()
		if werr != nil {
			// Generator bug: random programs must always be valid.
			t.Fatalf("seed %d: reference interpreter failed: %v", seed, werr)
		}

		prog, err := ir.BuildProgram(p)
		if err != nil {
			t.Fatalf("seed %d: BuildProgram: %v", seed, err)
		}
		rawExec := ir.NewExec(prog)
		raw, err := rawExec.Run()
		if err != nil {
			t.Fatalf("seed %d: raw IR failed: %v", seed, err)
		}
		if !raw.Equal(want) {
			t.Fatalf("seed %d: raw IR %v != bytecode %v", seed, raw, want)
		}

		for _, pipe := range []*Pipeline{BaselinePipeline(), OptPipeline()} {
			optProg, err := ir.BuildProgram(p)
			if err != nil {
				t.Fatal(err)
			}
			pipe.Compile(optProg)
			got, err := ir.NewExec(optProg).Run()
			if err != nil {
				t.Fatalf("seed %d (%s): optimized IR failed: %v", seed, pipe.Name, err)
			}
			if !got.Equal(want) {
				t.Fatalf("seed %d (%s): optimized %v != bytecode %v\n%s",
					seed, pipe.Name, got, want, optProg.Funcs[optProg.Entry])
			}
		}
	}
}

// genProgram builds a random but always-terminating, trap-free program.
// Locals: 0..3 ints, 4 = object (Cell with field x), 5 = array of len 8.
func genProgram(rng *rand.Rand) *rvm.Program {
	p := rvm.NewProgram()
	cell := rvm.NewClass("Cell", nil, "x")
	base := rvm.NewClass("Base", nil)
	derived := rvm.NewClass("Derived", base)
	_ = p.AddClass(cell)
	_ = p.AddClass(base)
	_ = p.AddClass(derived)

	a := rvm.NewAsm()
	// Initialize locals.
	for slot := 0; slot < 4; slot++ {
		a.ConstInt(int64(rng.Intn(20) - 5)).Store(slot)
	}
	a.Sym(rvm.OpNew, "Cell").Store(4)
	a.Load(4).ConstInt(int64(rng.Intn(10))).Sym(rvm.OpPutField, "x")
	a.ConstInt(8).Op(rvm.OpNewArray).Store(5)
	if rng.Intn(2) == 0 {
		a.Sym(rvm.OpNew, "Derived").Store(6)
	} else {
		a.Sym(rvm.OpNew, "Base").Store(6)
	}

	label := 0
	fresh := func(prefix string) string {
		label++
		return prefix + string(rune('a'+label%26)) + string(rune('0'+label%10)) + string(rune('0'+(label/10)%10))
	}

	var stmts func(depth int)
	// expr pushes one int value derived from the int locals.
	expr := func() {
		switch rng.Intn(5) {
		case 0:
			a.ConstInt(int64(rng.Intn(12) - 3))
		case 1:
			a.Load(rng.Intn(4))
		case 2:
			a.Load(rng.Intn(4))
			a.ConstInt(int64(rng.Intn(6) + 1))
			a.Op([]rvm.Opcode{rvm.OpAdd, rvm.OpSub, rvm.OpMul}[rng.Intn(3)])
		case 3:
			a.Load(4).Sym(rvm.OpGetField, "x")
		case 4:
			// Safe array read at a bounded index.
			a.Load(5).ConstInt(int64(rng.Intn(8))).Op(rvm.OpALoad)
		}
		// Keep magnitudes bounded.
		a.ConstInt(1000003).Op(rvm.OpRem)
	}
	stmts = func(depth int) {
		n := rng.Intn(4) + 1
		for s := 0; s < n; s++ {
			switch choice := rng.Intn(8); {
			case choice < 3: // assignment
				expr()
				a.Store(rng.Intn(4))
			case choice == 3: // field write
				a.Load(4)
				expr()
				a.Sym(rvm.OpPutField, "x")
			case choice == 4: // array write at safe index
				a.Load(5).ConstInt(int64(rng.Intn(8)))
				expr()
				a.Op(rvm.OpAStore)
			case choice == 5 && depth > 0: // if/else on a comparison
				elseL, endL := fresh("e"), fresh("n")
				expr()
				expr()
				a.Op([]rvm.Opcode{rvm.OpCmpLT, rvm.OpCmpEQ, rvm.OpCmpGE}[rng.Intn(3)])
				a.Jump(rvm.OpJumpIfNot, elseL)
				stmts(depth - 1)
				a.Jump(rvm.OpJump, endL)
				a.Label(elseL)
				stmts(depth - 1)
				a.Label(endL)
			case choice == 6 && depth > 0: // bounded counted loop
				head, exit := fresh("h"), fresh("x")
				counter := 7 // dedicated loop counter slot per nest level
				a.ConstInt(0).Store(counter + depth)
				a.Label(head)
				a.Load(counter + depth).ConstInt(int64(rng.Intn(6) + 2)).Op(rvm.OpCmpLT)
				a.Jump(rvm.OpJumpIfNot, exit)
				stmts(depth - 1)
				a.Load(counter + depth).ConstInt(1).Op(rvm.OpAdd).Store(counter + depth)
				a.Jump(rvm.OpJump, head)
				a.Label(exit)
			case choice == 7: // concurrency ops and type tests
				switch rng.Intn(4) {
				case 0:
					a.Load(4).Op(rvm.OpMonitorEnter)
					a.Load(4)
					expr()
					a.Sym(rvm.OpPutField, "x")
					a.Load(4).Op(rvm.OpMonitorExit)
				case 1:
					// CAS with the currently loaded value: always succeeds.
					a.Load(4).Load(4).Sym(rvm.OpGetField, "x")
					expr()
					a.Sym(rvm.OpCAS, "x").Op(rvm.OpPop)
				case 2:
					a.Load(6).Sym(rvm.OpInstanceOf, "Base")
					a.Store(rng.Intn(4))
				case 3:
					a.Load(4)
					expr()
					a.Sym(rvm.OpAtomicAdd, "x").Op(rvm.OpPop)
				}
			default:
				expr()
				a.Store(rng.Intn(4))
			}
		}
	}
	stmts(2)

	// Checksum: combine locals, field, and two array cells.
	a.Load(0).Load(1).Op(rvm.OpAdd).Load(2).Op(rvm.OpAdd).Load(3).Op(rvm.OpAdd)
	a.Load(4).Sym(rvm.OpGetField, "x").Op(rvm.OpAdd)
	a.Load(5).ConstInt(0).Op(rvm.OpALoad).Op(rvm.OpAdd)
	a.Load(5).ConstInt(7).Op(rvm.OpALoad).Op(rvm.OpAdd)
	a.Op(rvm.OpReturn)

	m := a.MustBuild("main", 0)
	m.Static = true
	mainC := rvm.NewClass("Main", nil)
	mainC.AddMethod(m)
	_ = p.AddClass(mainC)
	p.Entry = m
	return p
}
