package opt

import (
	"renaissance/internal/rvm"
	"renaissance/internal/rvm/ir"
)

// GuardMotion implements §5.5, speculative guard motion: guards inside
// loops are hoisted to the loop preheader even when the loop's control
// flow does not always lead to them. Loop-invariant guards move directly;
// bounds checks on affine induction variables are rewritten into two
// preheader guards on the induction range's endpoints ("comparisons of
// induction variables can be rewritten to loop-invariant versions").
// Hoisted guards are tagged "speculative", which the executor reports
// under the Speculative* rows of the §5.5 guard table. As the paper
// argues, a hoisted guard implies the original one, so the transformed
// program deoptimizes in at least as many cases — executing extra guards
// is always sound.
func GuardMotion(f *ir.Func, prog *ir.Program) bool {
	changed := false
	for _, l := range ir.FindLoops(f) {
		if hoistLoopGuards(f, l) {
			changed = true
		}
	}
	if changed {
		f.Renumber()
	}
	return changed
}

// loopResolver records in-loop definitions for invariance checks.
type loopResolver struct {
	defs map[ir.Reg][]*ir.Instr
	at   map[*ir.Instr]defSite
}

type defSite struct {
	block *ir.Block
	index int
}

func newLoopResolver(l *ir.Loop) *loopResolver {
	r := &loopResolver{defs: map[ir.Reg][]*ir.Instr{}, at: map[*ir.Instr]defSite{}}
	for b := range l.Blocks {
		for i, in := range b.Code {
			if in.Defines() {
				r.defs[in.Dst] = append(r.defs[in.Dst], in)
				r.at[in] = defSite{b, i}
			}
		}
	}
	return r
}

// invariant reports whether the register has no definition inside the loop.
func (r *loopResolver) invariant(reg ir.Reg) bool { return len(r.defs[reg]) == 0 }

// inductionStep returns the positive step of reg if it is an induction
// variable: its unique in-loop definition resolves positionally to
// reg + step.
func (r *loopResolver) inductionStep(reg ir.Reg) (int64, bool) {
	ds := r.defs[reg]
	if len(ds) != 1 {
		return 0, false
	}
	site := r.at[ds[0]]
	a := instrAffine(site.block, site.index, ds[0], 0)
	if !a.ok || a.base != reg || a.off < 1 {
		return 0, false
	}
	return a.off, true
}

// loopBound is the loop's exit comparison: an induction variable (plus
// offset) bounded above by an invariant limit.
type loopBound struct {
	indVar   ir.Reg
	indOff   int64
	indStep  int64
	limit    affine // invariant base + offset, or pure constant
	strict   bool   // true for <, false for <=
	resolved bool
}

func (r *loopResolver) headerBound(l *ir.Loop) loopBound {
	h := l.Header
	if h.Term.Kind != ir.TermBranch {
		return loopBound{}
	}
	var cmp *ir.Instr
	cmpIdx := -1
	for i, in := range h.Code {
		if in.Defines() && in.Dst == h.Term.Cond {
			cmp, cmpIdx = in, i
		}
	}
	if cmp == nil {
		return loopBound{}
	}
	bodyOnTrue := l.Blocks[h.Term.To]
	bodyOnFalse := l.Blocks[h.Term.Else]
	if bodyOnTrue == bodyOnFalse {
		return loopBound{}
	}

	lhs := affineAt(h, cmpIdx, cmp.A, 0)
	rhs := affineAt(h, cmpIdx, cmp.B, 0)
	if !lhs.ok || !rhs.ok {
		return loopBound{}
	}

	// Normalize to "induction OP limit continues the loop". Only
	// bounded-above loops are handled.
	var ind, lim affine
	var strict bool
	switch cmp.Op {
	case ir.OpCmpLT:
		if !bodyOnTrue {
			return loopBound{}
		}
		ind, lim, strict = lhs, rhs, true
	case ir.OpCmpLE:
		if !bodyOnTrue {
			return loopBound{}
		}
		ind, lim, strict = lhs, rhs, false
	case ir.OpCmpGT:
		if !bodyOnTrue {
			return loopBound{}
		}
		ind, lim, strict = rhs, lhs, true
	case ir.OpCmpGE:
		if !bodyOnTrue {
			return loopBound{}
		}
		ind, lim, strict = rhs, lhs, false
	default:
		return loopBound{}
	}
	if ind.base == ir.NoReg {
		return loopBound{}
	}
	step, isInd := r.inductionStep(ind.base)
	if !isInd {
		return loopBound{}
	}
	if lim.base != ir.NoReg && !r.invariant(lim.base) {
		return loopBound{}
	}
	return loopBound{
		indVar: ind.base, indOff: ind.off, indStep: step,
		limit: lim, strict: strict, resolved: true,
	}
}

func hoistLoopGuards(f *ir.Func, l *ir.Loop) bool {
	// Preheader: the unique out-of-loop predecessor of the header, ending
	// in an unconditional jump (so hoisted guards run exactly when the
	// loop is entered).
	pre := l.Preheader(f)
	if pre == nil {
		return false
	}

	res := newLoopResolver(l)
	bound := res.headerBound(l)

	type hoistedKey struct {
		op   ir.Op
		a, b ir.Reg
	}
	seen := map[hoistedKey]bool{}
	var hoisted []*ir.Instr
	changed := false

	emitConst := func(v int64) ir.Reg {
		r := f.NewReg()
		c := instr(ir.OpConst)
		c.Dst = r
		c.Val = rvm.Int(v)
		hoisted = append(hoisted, &c)
		return r
	}
	emitAddConst := func(base ir.Reg, off int64) ir.Reg {
		if off == 0 {
			return base
		}
		cr := emitConst(off)
		r := f.NewReg()
		add := instr(ir.OpAdd)
		add.Dst = r
		add.A = base
		add.B = cr
		hoisted = append(hoisted, &add)
		return r
	}
	emitGuard := func(op ir.Op, a, b ir.Reg) {
		k := hoistedKey{op, a, b}
		if seen[k] {
			return
		}
		seen[k] = true
		g := instr(op)
		g.A = a
		g.B = b
		g.Sym = "speculative"
		hoisted = append(hoisted, &g)
	}

	for b := range l.Blocks {
		var kept []*ir.Instr
		for i, in := range b.Code {
			switch in.Op {
			case ir.OpGuardNull:
				ref := affineAt(b, i, in.A, 0)
				if ref.ok && ref.base != ir.NoReg && ref.off == 0 && res.invariant(ref.base) {
					emitGuard(ir.OpGuardNull, ref.base, ir.NoReg)
					changed = true
					continue
				}
			case ir.OpGuardBounds:
				arr := affineAt(b, i, in.A, 0)
				if !arr.ok || arr.base == ir.NoReg || arr.off != 0 || !res.invariant(arr.base) {
					break
				}
				idx := affineAt(b, i, in.B, 0)
				if !idx.ok {
					break
				}
				switch {
				case idx.base == ir.NoReg:
					// Constant index.
					emitGuard(ir.OpGuardBounds, arr.base, emitConst(idx.off))
					changed = true
					continue
				case res.invariant(idx.base):
					emitGuard(ir.OpGuardBounds, arr.base, emitAddConst(idx.base, idx.off))
					changed = true
					continue
				case bound.resolved && idx.base == bound.indVar:
					// Affine in the induction variable: guard both range
					// endpoints in the preheader. At the preheader the
					// induction register still holds its initial value.
					lo := emitAddConst(idx.base, idx.off)
					emitGuard(ir.OpGuardBounds, arr.base, lo)
					// Maximum guarded index: the largest induction value
					// that continues the loop, plus the index offset
					// (conservative for steps > 1 — the hoisted guard
					// implies the original, as the paper requires).
					maxOff := bound.limit.off - bound.indOff + idx.off
					if bound.strict {
						maxOff--
					}
					var hi ir.Reg
					if bound.limit.base == ir.NoReg {
						hi = emitConst(maxOff)
					} else {
						hi = emitAddConst(bound.limit.base, maxOff)
					}
					emitGuard(ir.OpGuardBounds, arr.base, hi)
					changed = true
					continue
				}
			}
			kept = append(kept, in)
		}
		b.Code = kept
	}

	if changed {
		pre.Code = append(pre.Code, hoisted...)
	}
	return changed
}
