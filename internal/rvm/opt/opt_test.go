package opt

import (
	"testing"
	"time"

	"renaissance/internal/rvm"
	"renaissance/internal/rvm/ir"
)

// mainProgram wraps methods into a program with class Main.
func mainProgram(t *testing.T, classes []*rvm.Class, entry *rvm.Method, extra ...*rvm.Method) *rvm.Program {
	t.Helper()
	p := rvm.NewProgram()
	for _, c := range classes {
		if err := p.AddClass(c); err != nil {
			t.Fatal(err)
		}
	}
	main := rvm.NewClass("Main", nil)
	entry.Static = true
	main.AddMethod(entry)
	for _, m := range extra {
		m.Static = true
		main.AddMethod(m)
	}
	if err := p.AddClass(main); err != nil {
		t.Fatal(err)
	}
	p.Entry = entry
	return p
}

// compileAndRun builds IR, applies the pipeline, executes, and checks the
// result against the reference bytecode interpreter.
func compileAndRun(t *testing.T, p *rvm.Program, pipe *Pipeline, args ...rvm.Value) (*ir.Program, *ir.Stats) {
	t.Helper()
	want, werr := rvm.NewInterp(p).Run(args...)
	if werr != nil {
		t.Fatalf("bytecode reference failed: %v", werr)
	}
	prog, err := ir.BuildProgram(p)
	if err != nil {
		t.Fatalf("BuildProgram: %v", err)
	}
	if pipe != nil {
		pipe.Compile(prog)
	}
	e := ir.NewExec(prog)
	got, gerr := e.Run(args...)
	if gerr != nil {
		t.Fatalf("IR execution failed: %v\n%s", gerr, prog.Funcs[prog.Entry])
	}
	if !got.Equal(want) {
		t.Fatalf("result mismatch: bytecode=%v ir=%v (pipeline %v)\n%s",
			want, got, pipe, prog.Funcs[prog.Entry])
	}
	return prog, e.Stats
}

// cyclesWith compiles with the pipeline and returns the executed cycles.
func cyclesWith(t *testing.T, p *rvm.Program, pipe *Pipeline, args ...rvm.Value) int64 {
	t.Helper()
	_, stats := compileAndRun(t, p, pipe, args...)
	return stats.Cycles
}

func TestCanonicalizeConstFold(t *testing.T) {
	a := rvm.NewAsm()
	a.ConstInt(6).ConstInt(7).Op(rvm.OpMul).Op(rvm.OpReturn)
	p := mainProgram(t, nil, a.MustBuild("main", 0))
	prog, _ := compileAndRun(t, p, &Pipeline{
		Passes:   []Pass{{NameCanonicalize, Canonicalize}, {NameDCE, DeadCodeElim}},
		Disabled: map[string]bool{}, PassTime: Duration0(),
	})
	f := prog.Funcs["Main.main"]
	// Everything folds to: const 42; return.
	for _, b := range f.Blocks {
		for _, in := range b.Code {
			if in.Op == ir.OpMul {
				t.Errorf("unfolded multiply remains:\n%s", f)
			}
		}
	}
}

// Duration0 builds an empty pass-time map (test helper).
func Duration0() map[string]time.Duration { return map[string]time.Duration{} }

func TestCanonicalizeGuardOnFreshAlloc(t *testing.T) {
	cell := rvm.NewClass("Cell", nil, "v")
	a := rvm.NewAsm()
	a.Sym(rvm.OpNew, "Cell").Store(0)
	a.Load(0).ConstInt(3).Sym(rvm.OpPutField, "v")
	a.Load(0).Sym(rvm.OpGetField, "v").Op(rvm.OpReturn)
	p := mainProgram(t, []*rvm.Class{cell}, a.MustBuild("main", 0))

	prog, err := ir.BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Funcs["Main.main"]
	before := countOp(f, ir.OpGuardNull)
	Canonicalize(f, prog)
	after := countOp(f, ir.OpGuardNull)
	if before == 0 {
		t.Fatal("builder emitted no guards")
	}
	if after != 0 {
		t.Errorf("guards on fresh allocation survive: %d -> %d\n%s", before, after, f)
	}
	compileAndRun(t, p, nil)
}

func countOp(f *ir.Func, op ir.Op) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Code {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

func TestDCERemovesDeadArith(t *testing.T) {
	a := rvm.NewAsm()
	a.ConstInt(10).ConstInt(20).Op(rvm.OpAdd).Store(1) // dead
	a.ConstInt(5).Op(rvm.OpReturn)
	p := mainProgram(t, nil, a.MustBuild("main", 0))
	prog, err := ir.BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Funcs["Main.main"]
	DeadCodeElim(f, prog)
	if n := countOp(f, ir.OpAdd); n != 0 {
		t.Errorf("dead add survives (%d)\n%s", n, f)
	}
	compileAndRun(t, p, nil)
}

func TestInlineStaticCall(t *testing.T) {
	sq := rvm.NewAsm()
	sq.Load(0).Load(0).Op(rvm.OpMul).Op(rvm.OpReturn)

	a := rvm.NewAsm()
	a.Load(0).Invoke(rvm.OpInvokeStatic, "Main.square", 1).Op(rvm.OpReturn)
	p := mainProgram(t, nil, a.MustBuild("main", 1), sq.MustBuild("square", 1))

	pipe := &Pipeline{Passes: []Pass{{NameInline, Inline}}, Disabled: map[string]bool{}, PassTime: Duration0()}
	prog, _ := compileAndRun(t, p, pipe, rvm.Int(9))
	if n := countOp(prog.Funcs["Main.main"], ir.OpCallStatic); n != 0 {
		t.Errorf("call survives inlining (%d)\n%s", n, prog.Funcs["Main.main"])
	}
}

func TestInlineSkipsRecursion(t *testing.T) {
	f := rvm.NewAsm()
	f.Load(0).ConstInt(1).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "rec")
	f.ConstInt(0).Op(rvm.OpReturn)
	f.Label("rec")
	f.Load(0).ConstInt(1).Op(rvm.OpSub).Invoke(rvm.OpInvokeStatic, "Main.down", 1).Op(rvm.OpReturn)

	a := rvm.NewAsm()
	a.Load(0).Invoke(rvm.OpInvokeStatic, "Main.down", 1).Op(rvm.OpReturn)
	p := mainProgram(t, nil, a.MustBuild("main", 1), f.MustBuild("down", 1))
	pipe := &Pipeline{Passes: []Pass{{NameInline, Inline}}, Disabled: map[string]bool{}, PassTime: Duration0()}
	compileAndRun(t, p, pipe, rvm.Int(5))
}

// handlePipelineProgram builds the §5.4 shape: a lambda invoked through a
// method handle inside a loop.
func handlePipelineProgram(t *testing.T) *rvm.Program {
	t.Helper()
	lam := rvm.NewAsm()
	lam.Load(0).ConstInt(3).Op(rvm.OpMul).ConstInt(1).Op(rvm.OpAdd).Op(rvm.OpReturn)

	a := rvm.NewAsm()
	a.Sym(rvm.OpInvokeDynamic, "Main.lambda").Store(1) // handle
	a.ConstInt(0).Store(2)                             // acc
	a.ConstInt(0).Store(3)                             // i
	a.Label("head")
	a.Load(3).Load(0).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "exit")
	a.Load(2).Load(1).Load(3).Invoke(rvm.OpInvokeHandle, "", 1).Op(rvm.OpAdd).Store(2)
	a.Load(3).ConstInt(1).Op(rvm.OpAdd).Store(3)
	a.Jump(rvm.OpJump, "head")
	a.Label("exit")
	a.Load(2).Op(rvm.OpReturn)
	return mainProgram(t, nil, a.MustBuild("main", 1), lam.MustBuild("lambda", 1))
}

func TestMHSDevirtualizesHandleCall(t *testing.T) {
	p := handlePipelineProgram(t)
	pipe := &Pipeline{Passes: []Pass{{NameMHS, MethodHandleSimplify}}, Disabled: map[string]bool{}, PassTime: Duration0()}
	prog, _ := compileAndRun(t, p, pipe, rvm.Int(100))
	f := prog.Funcs["Main.main"]
	if countOp(f, ir.OpCallHandle) != 0 {
		t.Errorf("handle call survives MHS\n%s", f)
	}
	if countOp(f, ir.OpCallStatic) == 0 {
		t.Errorf("no direct call produced\n%s", f)
	}
}

func TestMHSEnablesInliningSpeedup(t *testing.T) {
	p := handlePipelineProgram(t)
	baseline := cyclesWith(t, p, nil, rvm.Int(1000))
	mhsOnly := cyclesWith(t, p, &Pipeline{
		Passes:   []Pass{{NameMHS, MethodHandleSimplify}},
		Disabled: map[string]bool{}, PassTime: Duration0()}, rvm.Int(1000))
	full := cyclesWith(t, p, &Pipeline{
		Passes: []Pass{
			{NameMHS, MethodHandleSimplify},
			{NameInline, Inline},
			{NameCanonicalize, Canonicalize},
			{NameDCE, DeadCodeElim},
		},
		Disabled: map[string]bool{}, PassTime: Duration0()}, rvm.Int(1000))
	if mhsOnly >= baseline {
		t.Errorf("MHS alone did not reduce cycles: %d -> %d", baseline, mhsOnly)
	}
	if full >= mhsOnly {
		t.Errorf("MHS+inline did not beat MHS alone: %d -> %d", mhsOnly, full)
	}
}

// eawaProgram allocates a counter object per loop iteration, CASes its
// field twice, and accumulates the value — the §5.1 java.util.Random shape.
func eawaProgram(t *testing.T) *rvm.Program {
	t.Helper()
	counter := rvm.NewClass("Counter", nil, "x")
	a := rvm.NewAsm()
	a.ConstInt(0).Store(1) // acc
	a.ConstInt(0).Store(2) // i
	a.Label("head")
	a.Load(2).Load(0).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "exit")
	a.Sym(rvm.OpNew, "Counter").Store(3)
	a.Load(3).ConstInt(0).ConstInt(7).Sym(rvm.OpCAS, "x").Op(rvm.OpPop)
	a.Load(3).ConstInt(7).ConstInt(9).Sym(rvm.OpCAS, "x").Op(rvm.OpPop)
	a.Load(3).Op(rvm.OpMonitorEnter)
	a.Load(3).Sym(rvm.OpGetField, "x").Load(1).Op(rvm.OpAdd).Store(1)
	a.Load(3).Op(rvm.OpMonitorExit)
	a.Load(2).ConstInt(1).Op(rvm.OpAdd).Store(2)
	a.Jump(rvm.OpJump, "head")
	a.Label("exit")
	a.Load(1).Op(rvm.OpReturn)
	return mainProgram(t, []*rvm.Class{counter}, a.MustBuild("main", 1))
}

func TestEAWAScalarReplacesAllocation(t *testing.T) {
	p := eawaProgram(t)
	pipe := &Pipeline{Passes: []Pass{{NameEAWA, EscapeAnalysis}}, Disabled: map[string]bool{}, PassTime: Duration0()}
	prog, stats := compileAndRun(t, p, pipe, rvm.Int(50))
	f := prog.Funcs["Main.main"]
	if countOp(f, ir.OpNew) != 0 {
		t.Errorf("allocation survives escape analysis\n%s", f)
	}
	if countOp(f, ir.OpCAS) != 0 {
		t.Errorf("heap CAS survives\n%s", f)
	}
	if countOp(f, ir.OpScalarCAS) == 0 {
		t.Errorf("no scalar CAS emitted\n%s", f)
	}
	if countOp(f, ir.OpMonitorEnter) != 0 {
		t.Errorf("monitor on non-escaping object survives\n%s", f)
	}
	if stats.Ops[ir.OpNew] != 0 {
		t.Errorf("allocations executed: %d", stats.Ops[ir.OpNew])
	}
}

func TestEAWASpeedup(t *testing.T) {
	p := eawaProgram(t)
	without := cyclesWith(t, p, nil, rvm.Int(1000))
	with := cyclesWith(t, p, &Pipeline{
		Passes:   []Pass{{NameEAWA, EscapeAnalysis}},
		Disabled: map[string]bool{}, PassTime: Duration0()}, rvm.Int(1000))
	if with >= without {
		t.Errorf("EAWA did not reduce cycles: %d -> %d", without, with)
	}
}

func TestEAWALeavesEscapingAlone(t *testing.T) {
	// The object is returned, so it escapes.
	cell := rvm.NewClass("Cell", nil, "v")
	a := rvm.NewAsm()
	a.Sym(rvm.OpNew, "Cell").Store(0)
	a.Load(0).ConstInt(0).ConstInt(5).Sym(rvm.OpCAS, "v").Op(rvm.OpPop)
	a.Load(0).Op(rvm.OpReturn)
	p := mainProgram(t, []*rvm.Class{cell}, a.MustBuild("main", 0))
	prog, err := ir.BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Funcs["Main.main"]
	EscapeAnalysis(f, prog)
	if countOp(f, ir.OpNew) != 1 {
		t.Errorf("escaping allocation removed\n%s", f)
	}
}

// acProgram builds the §5.3 shape: two consecutive CAS retry loops on a
// shared cell, repeated in an outer loop.
func acProgram(t *testing.T) (*rvm.Program, *rvm.Class) {
	t.Helper()
	cell := rvm.NewClass("Cell", nil, "x")

	a := rvm.NewAsm()
	a.Sym(rvm.OpNew, "Cell").Store(1) // shared cell (escapes via virtual use below? keep local but multi-use)
	a.ConstInt(0).Store(2)            // i
	a.Label("outer")
	a.Load(2).Load(0).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "exit")
	// retry loop 1: x = x*3 (f1)
	a.Label("retry1")
	a.Load(1).Sym(rvm.OpGetField, "x").Store(3)
	a.Load(3).ConstInt(3).Op(rvm.OpMul).Store(4)
	a.Load(1).Load(3).Load(4).Sym(rvm.OpCAS, "x").Jump(rvm.OpJumpIfNot, "retry1")
	// retry loop 2: x = x+1 (f2)
	a.Label("retry2")
	a.Load(1).Sym(rvm.OpGetField, "x").Store(5)
	a.Load(5).ConstInt(1).Op(rvm.OpAdd).Store(6)
	a.Load(1).Load(5).Load(6).Sym(rvm.OpCAS, "x").Jump(rvm.OpJumpIfNot, "retry2")
	a.Load(2).ConstInt(1).Op(rvm.OpAdd).Store(2)
	a.Jump(rvm.OpJump, "outer")
	a.Label("exit")
	a.Load(1).Sym(rvm.OpGetField, "x").Op(rvm.OpReturn)
	return mainProgram(t, []*rvm.Class{cell}, a.MustBuild("main", 1)), cell
}

func TestACCoalescesRetryLoops(t *testing.T) {
	p, _ := acProgram(t)
	pipe := &Pipeline{Passes: []Pass{{NameAC, CoalesceAtomics}}, Disabled: map[string]bool{}, PassTime: Duration0()}
	prog, stats := compileAndRun(t, p, pipe, rvm.Int(20))
	f := prog.Funcs["Main.main"]
	if n := countOp(f, ir.OpCAS); n != 1 {
		t.Errorf("CAS count after coalescing = %d, want 1\n%s", n, f)
	}
	// 20 iterations, one CAS each.
	if stats.Ops[ir.OpCAS] != 20 {
		t.Errorf("executed CAS = %d, want 20", stats.Ops[ir.OpCAS])
	}
}

func TestACSpeedup(t *testing.T) {
	p, _ := acProgram(t)
	without := cyclesWith(t, p, nil, rvm.Int(500))
	with := cyclesWith(t, p, &Pipeline{
		Passes:   []Pass{{NameAC, CoalesceAtomics}},
		Disabled: map[string]bool{}, PassTime: Duration0()}, rvm.Int(500))
	if with >= without {
		t.Errorf("AC did not reduce cycles: %d -> %d", without, with)
	}
}

// llcProgram builds the §5.2 shape: a loop locking a monitor each
// iteration around a small critical region.
func llcProgram(t *testing.T) *rvm.Program {
	t.Helper()
	lock := rvm.NewClass("Lock", nil, "v")
	a := rvm.NewAsm()
	a.Sym(rvm.OpNew, "Lock").Store(1)
	a.ConstInt(0).Store(2) // i
	a.Label("head")
	a.Load(2).Load(0).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "exit")
	a.Load(1).Op(rvm.OpMonitorEnter)
	a.Load(1).Load(1).Sym(rvm.OpGetField, "v").Load(2).Op(rvm.OpAdd).Sym(rvm.OpPutField, "v")
	a.Load(1).Op(rvm.OpMonitorExit)
	a.Load(2).ConstInt(1).Op(rvm.OpAdd).Store(2)
	a.Jump(rvm.OpJump, "head")
	a.Label("exit")
	a.Load(1).Sym(rvm.OpGetField, "v").Op(rvm.OpReturn)
	return mainProgram(t, []*rvm.Class{lock}, a.MustBuild("main", 1))
}

func TestLLCCoarsensMonitors(t *testing.T) {
	p := llcProgram(t)
	pipe := &Pipeline{Passes: []Pass{{NameLLC, CoarsenLocks}}, Disabled: map[string]bool{}, PassTime: Duration0()}
	const iters = 320
	_, stats := compileAndRun(t, p, pipe, rvm.Int(iters))
	enters := stats.Ops[ir.OpMonitorEnter]
	want := int64(iters)/CoarsenChunk + 1
	if enters > want {
		t.Errorf("monitor enters = %d, want <= %d (chunked by %d)", enters, want, CoarsenChunk)
	}
	if enters == 0 {
		t.Error("no monitor enters at all")
	}
}

func TestLLCSpeedup(t *testing.T) {
	p := llcProgram(t)
	without := cyclesWith(t, p, nil, rvm.Int(2000))
	with := cyclesWith(t, p, &Pipeline{
		Passes:   []Pass{{NameLLC, CoarsenLocks}},
		Disabled: map[string]bool{}, PassTime: Duration0()}, rvm.Int(2000))
	if float64(with) > 0.7*float64(without) {
		t.Errorf("LLC speedup too small: %d -> %d", without, with)
	}
}

// gmProgram builds the §5.5 shape: a loop with null and bounds guards on
// every access.
func gmProgram(t *testing.T) *rvm.Program {
	t.Helper()
	a := rvm.NewAsm()
	// main(n): arr = new[n]; s = 0; for i in 0..n-1 { arr[i] = i; s += arr[i] }
	a.Load(0).Op(rvm.OpNewArray).Store(1)
	a.ConstInt(0).Store(2) // s
	a.ConstInt(0).Store(3) // i
	a.Label("head")
	a.Load(3).Load(0).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "exit")
	a.Load(1).Load(3).Load(3).Op(rvm.OpAStore)
	a.Load(2).Load(1).Load(3).Op(rvm.OpALoad).Op(rvm.OpAdd).Store(2)
	a.Load(3).ConstInt(1).Op(rvm.OpAdd).Store(3)
	a.Jump(rvm.OpJump, "head")
	a.Label("exit")
	a.Load(2).Op(rvm.OpReturn)
	return mainProgram(t, nil, a.MustBuild("main", 1))
}

func TestGMHoistsGuards(t *testing.T) {
	p := gmProgram(t)
	const n = 100
	// Without GM: 2 bounds guards per iteration.
	_, without := compileAndRun(t, p, nil, rvm.Int(n))
	// With GM.
	pipe := &Pipeline{Passes: []Pass{{NameGM, GuardMotion}}, Disabled: map[string]bool{}, PassTime: Duration0()}
	_, with := compileAndRun(t, p, pipe, rvm.Int(n))

	if without.GuardsExecuted["BoundsCheck"] < 2*n {
		t.Fatalf("baseline bounds guards = %v", without.GuardsExecuted)
	}
	if with.GuardsExecuted["BoundsCheck"] != 0 {
		t.Errorf("in-loop bounds guards remain: %v", with.GuardsExecuted)
	}
	if with.GuardsExecuted["Speculative BoundsCheck"] == 0 {
		t.Errorf("no speculative guards executed: %v", with.GuardsExecuted)
	}
	totalWith := with.GuardsExecuted["Speculative BoundsCheck"] +
		with.GuardsExecuted["Speculative NullCheck"] +
		with.GuardsExecuted["BoundsCheck"] + with.GuardsExecuted["NullCheck"]
	totalWithout := without.GuardsExecuted["BoundsCheck"] + without.GuardsExecuted["NullCheck"]
	if totalWith*5 > totalWithout {
		t.Errorf("guard reduction too small: %d -> %d", totalWithout, totalWith)
	}
}

// lvProgram builds the §5.6 shape: c[i] = a[i] + b[i].
func lvProgram(t *testing.T) *rvm.Program {
	t.Helper()
	a := rvm.NewAsm()
	// main(n): a,b,c arrays; fill a[i]=i, b[i]=2i (scalar loops with
	// stores only — vectorizer requires loads, so these stay scalar);
	// then c[i] = a[i] + b[i]; return sum(c).
	a.Load(0).Op(rvm.OpNewArray).Store(1)
	a.Load(0).Op(rvm.OpNewArray).Store(2)
	a.Load(0).Op(rvm.OpNewArray).Store(3)
	a.ConstInt(0).Store(4)
	a.Label("fill")
	a.Load(4).Load(0).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "filldone")
	a.Load(1).Load(4).Load(4).Op(rvm.OpAStore)
	a.Load(2).Load(4).Load(4).ConstInt(2).Op(rvm.OpMul).Op(rvm.OpAStore)
	a.Load(4).ConstInt(1).Op(rvm.OpAdd).Store(4)
	a.Jump(rvm.OpJump, "fill")
	a.Label("filldone")
	a.ConstInt(0).Store(5)
	a.Label("vec")
	a.Load(5).Load(0).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "vecdone")
	a.Load(3).Load(5).Load(1).Load(5).Op(rvm.OpALoad).Load(2).Load(5).Op(rvm.OpALoad).Op(rvm.OpAdd).Op(rvm.OpAStore)
	a.Load(5).ConstInt(1).Op(rvm.OpAdd).Store(5)
	a.Jump(rvm.OpJump, "vec")
	a.Label("vecdone")
	a.ConstInt(0).Store(6) // sum
	a.ConstInt(0).Store(7)
	a.Label("sum")
	a.Load(7).Load(0).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "sumdone")
	a.Load(6).Load(3).Load(7).Op(rvm.OpALoad).Op(rvm.OpAdd).Store(6)
	a.Load(7).ConstInt(1).Op(rvm.OpAdd).Store(7)
	a.Jump(rvm.OpJump, "sum")
	a.Label("sumdone")
	a.Load(6).Op(rvm.OpReturn)
	return mainProgram(t, nil, a.MustBuild("main", 1))
}

func TestLVRequiresGM(t *testing.T) {
	p := lvProgram(t)
	// LV alone: guards block vectorization.
	lvOnly := &Pipeline{Passes: []Pass{{NameLV, Vectorize}}, Disabled: map[string]bool{}, PassTime: Duration0()}
	_, stats := compileAndRun(t, p, lvOnly, rvm.Int(64))
	if stats.Ops[ir.OpVecArith] != 0 {
		t.Errorf("vectorized despite guards (executed %d vector ops)", stats.Ops[ir.OpVecArith])
	}
	// GM then LV: the c[i]=a[i]+b[i] loop vectorizes.
	gmlv := &Pipeline{
		Passes:   []Pass{{NameGM, GuardMotion}, {NameLV, Vectorize}},
		Disabled: map[string]bool{}, PassTime: Duration0()}
	_, stats2 := compileAndRun(t, p, gmlv, rvm.Int(64))
	if stats2.Ops[ir.OpVecArith] == 0 {
		t.Error("GM+LV did not vectorize")
	}
}

func TestLVRemainderCorrectness(t *testing.T) {
	// Sizes not divisible by the vector width must still be exact.
	p := lvProgram(t)
	gmlv := &Pipeline{
		Passes:   []Pass{{NameGM, GuardMotion}, {NameLV, Vectorize}},
		Disabled: map[string]bool{}, PassTime: Duration0()}
	for _, n := range []int64{1, 2, 3, 4, 5, 7, 63, 65} {
		compileAndRun(t, p, gmlv, rvm.Int(n))
	}
}

// dbdsProgram builds the §5.7 shape: two consecutive instanceof checks on
// the same value.
func dbdsProgram(t *testing.T) *rvm.Program {
	t.Helper()
	base := rvm.NewClass("Base", nil)
	derived := rvm.NewClass("Derived", base)
	other := rvm.NewClass("Other", nil)

	a := rvm.NewAsm()
	// main(flag): x = flag ? new Derived : new Other
	a.Load(0).Jump(rvm.OpJumpIfNot, "mkOther")
	a.Sym(rvm.OpNew, "Derived").Store(1)
	a.Jump(rvm.OpJump, "checks")
	a.Label("mkOther")
	a.Sym(rvm.OpNew, "Other").Store(1)
	a.Label("checks")
	a.ConstInt(0).Store(2)
	// if (x instanceof Base) r += 10 else r += 1
	a.Load(1).Sym(rvm.OpInstanceOf, "Base").Jump(rvm.OpJumpIfNot, "no1")
	a.Load(2).ConstInt(10).Op(rvm.OpAdd).Store(2)
	a.Jump(rvm.OpJump, "second")
	a.Label("no1")
	a.Load(2).ConstInt(1).Op(rvm.OpAdd).Store(2)
	a.Label("second")
	// if (x instanceof Base) r += 100 else r += 2
	a.Load(1).Sym(rvm.OpInstanceOf, "Base").Jump(rvm.OpJumpIfNot, "no2")
	a.Load(2).ConstInt(100).Op(rvm.OpAdd).Store(2)
	a.Jump(rvm.OpJump, "done")
	a.Label("no2")
	a.Load(2).ConstInt(2).Op(rvm.OpAdd).Store(2)
	a.Label("done")
	a.Load(2).Op(rvm.OpReturn)
	return mainProgram(t, []*rvm.Class{base, derived, other}, a.MustBuild("main", 1))
}

func TestDBDSEliminatesDominatedCheck(t *testing.T) {
	p := dbdsProgram(t)
	pipe := &Pipeline{
		Passes:   []Pass{{NameDBDS, DuplicateSimulate}, {NameCanonicalize, Canonicalize}, {NameDCE, DeadCodeElim}},
		Disabled: map[string]bool{}, PassTime: Duration0()}
	for _, flag := range []int64{0, 1} {
		prog, stats := compileAndRun(t, p, pipe, rvm.Int(flag))
		f := prog.Funcs["Main.main"]
		if n := countOp(f, ir.OpInstanceOf); n > 2 {
			t.Errorf("instanceof count after DBDS = %d (static)\n%s", n, f)
		}
		if stats.Ops[ir.OpInstanceOf] > 1 {
			t.Errorf("executed %d instanceof, want 1 after duplication", stats.Ops[ir.OpInstanceOf])
		}
	}
}

func TestFullPipelinesAgree(t *testing.T) {
	// Every test program must produce identical results under no
	// pipeline, the baseline pipeline, and the full opt pipeline.
	programs := map[string]*rvm.Program{
		"handle": handlePipelineProgram(t),
		"eawa":   eawaProgram(t),
		"llc":    llcProgram(t),
		"gm":     gmProgram(t),
		"lv":     lvProgram(t),
	}
	acp, _ := acProgram(t)
	programs["ac"] = acp
	for name, p := range programs {
		compileAndRun(t, p, BaselinePipeline(), rvm.Int(37))
		compileAndRun(t, p, OptPipeline(), rvm.Int(37))
		_ = name
	}
	for _, flag := range []int64{0, 1} {
		compileAndRun(t, dbdsProgram(t), OptPipeline(), rvm.Int(flag))
	}
}

func TestPipelineDisable(t *testing.T) {
	p := OptPipeline()
	p.Disable(NameLLC, NameAC)
	if !p.Disabled[NameLLC] || !p.Disabled[NameAC] {
		t.Error("Disable did not record names")
	}
	if s := p.String(); s == "" {
		t.Error("empty pipeline description")
	}
	if len(PaperOptimizations()) != 7 {
		t.Errorf("paper optimizations = %v", PaperOptimizations())
	}
}

func TestPipelineTimingRecorded(t *testing.T) {
	p := llcProgram(t)
	prog, err := ir.BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	pipe := OptPipeline()
	pipe.Compile(prog)
	if len(pipe.PassTime) == 0 {
		t.Error("no pass times recorded")
	}
	for _, name := range []string{NameCanonicalize, NameDCE} {
		if _, ok := pipe.PassTime[name]; !ok {
			t.Errorf("missing pass time for %s", name)
		}
	}
}

// TestPipelineIdempotent verifies that recompiling already-optimized IR
// neither changes results nor keeps "improving" them indefinitely — the
// fixpoint property the pipeline's bounded rounds rely on.
func TestPipelineIdempotent(t *testing.T) {
	programs := []*rvm.Program{
		handlePipelineProgram(t), eawaProgram(t), llcProgram(t),
		gmProgram(t), lvProgram(t),
	}
	for _, p := range programs {
		prog, err := ir.BuildProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		OptPipeline().Compile(prog)
		first := ir.NewExec(prog)
		v1, err := first.Run(rvm.Int(40))
		if err != nil {
			t.Fatal(err)
		}
		OptPipeline().Compile(prog) // second compile of the same IR
		second := ir.NewExec(prog)
		v2, err := second.Run(rvm.Int(40))
		if err != nil {
			t.Fatal(err)
		}
		if !v1.Equal(v2) {
			t.Errorf("recompilation changed result: %v -> %v", v1, v2)
		}
		if second.Stats.Cycles > first.Stats.Cycles {
			t.Errorf("recompilation regressed cycles: %d -> %d",
				first.Stats.Cycles, second.Stats.Cycles)
		}
	}
}

// TestPassesNeverIncreaseCycles: each paper optimization, applied on top
// of the cleanup passes, must not slow any of the pattern programs down.
func TestPassesNeverIncreaseCycles(t *testing.T) {
	programs := map[string]*rvm.Program{
		"handle": handlePipelineProgram(t),
		"eawa":   eawaProgram(t),
		"llc":    llcProgram(t),
		"gm":     gmProgram(t),
		"lv":     lvProgram(t),
	}
	acp, _ := acProgram(t)
	programs["ac"] = acp
	for name, p := range programs {
		base := cyclesWith(t, p, BaselinePipeline(), rvm.Int(60))
		full := cyclesWith(t, p, OptPipeline(), rvm.Int(60))
		if full > base {
			t.Errorf("%s: opt pipeline slower than baseline (%d > %d)", name, full, base)
		}
	}
}
