package opt

import "renaissance/internal/rvm/ir"

// DeadCodeElim removes instructions whose results are never used and that
// have no side effects, using per-block backward liveness.
func DeadCodeElim(f *ir.Func, prog *ir.Program) bool {
	liveOut := ir.Liveness(f)
	changed := false
	for _, b := range f.Blocks {
		live := map[ir.Reg]bool{}
		for r := range liveOut[b] {
			live[r] = true
		}
		switch b.Term.Kind {
		case ir.TermBranch:
			live[b.Term.Cond] = true
		case ir.TermReturn:
			live[b.Term.Ret] = true
		}
		var keptRev []*ir.Instr
		for i := len(b.Code) - 1; i >= 0; i-- {
			in := b.Code[i]
			dead := in.Defines() && !live[in.Dst] && !in.Op.HasSideEffects()
			if dead {
				changed = true
				continue
			}
			if in.Defines() {
				delete(live, in.Dst)
			}
			for _, u := range in.Uses() {
				live[u] = true
			}
			keptRev = append(keptRev, in)
		}
		// Reverse back.
		for l, r := 0, len(keptRev)-1; l < r; l, r = l+1, r-1 {
			keptRev[l], keptRev[r] = keptRev[r], keptRev[l]
		}
		b.Code = keptRev
	}
	return changed
}
