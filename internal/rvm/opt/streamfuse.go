package opt

import (
	"strings"

	"renaissance/internal/rvm"
	"renaissance/internal/rvm/ir"
)

// StreamFuse fuses minilang stream pipelines into single loops. The
// minilang frontend lowers sreduce(sfilter(smap(a, f), g), z, h) into calls
// to per-stage library methods, each of which materializes an intermediate
// array:
//
//	h1 = MakeHandle "ML.f"
//	t1 = CallStatic "ML.$smap"    [a, h1]
//	h2 = MakeHandle "ML.g"
//	t2 = CallStatic "ML.$sfilter" [t1, h2]
//	h3 = MakeHandle "ML.h"
//	r  = CallStatic "ML.$sreduce" [t2, z, h3]
//
// When every intermediate array is consumed exactly once by the next stage
// and dies there, and every callback handle resolves to a known
// MakeHandle, the chain is replaced by one call to a synthesized function
// that loops over the source array once, applying map/filter/reduce
// callbacks per element by direct static calls — no intermediate arrays,
// no per-element handle dispatch, and a body the inliner can consume.
//
// Fusion changes the evaluation schedule from stage-at-a-time to
// element-at-a-time. Minilang stream callbacks are pure functions of their
// scalar arguments, so results agree exactly; executions where multiple
// distinct traps race can report whichever the fused schedule reaches
// first (the standard speculative-fusion contract; the differential suite
// exercises trap-free pipelines).
func StreamFuse(f *ir.Func, prog *ir.Program) bool {
	changed := false
	counts := ir.DefCounts(f)
	sites := defSites(f, counts)
	liveOut := ir.Liveness(f)
	for _, b := range f.Blocks {
		for i := 0; i < len(b.Code); i++ {
			in := b.Code[i]
			if in.Op != ir.OpCallStatic || streamKind(in.Sym) != "sreduce" || len(in.Args) != 3 {
				continue
			}
			if fuseChain(f, prog, b, i, counts, sites, liveOut) {
				changed = true
				// Indices shifted; recompute the analyses and rescan.
				counts = ir.DefCounts(f)
				sites = defSites(f, counts)
				liveOut = ir.Liveness(f)
				i = -1
			}
		}
	}
	return changed
}

// streamKind classifies a stream-library method name ("C.$smap" etc.).
func streamKind(sym string) string {
	for _, k := range []string{"$smap", "$sfilter", "$sreduce"} {
		if strings.HasSuffix(sym, "."+k) {
			return k[1:]
		}
	}
	return ""
}

// fusedStage is one fusable pipeline stage with its resolved callback.
type fusedStage struct {
	idx      int // position of the stage call in the block
	kind     string
	callback string
	arrOp    ir.Reg // the stage's array operand, read at idx
}

func fuseChain(f *ir.Func, prog *ir.Program, b *ir.Block, i int,
	counts []int, sites map[ir.Reg]defSite, liveOut map[*ir.Block]map[ir.Reg]bool) bool {
	red := b.Code[i]
	redHandle := traceValue(f, counts, sites, b, i, red.Args[2], 0)
	if redHandle == nil || redHandle.Op != ir.OpMakeHandle {
		return false
	}

	// Walk the producer chain of the reduce's array operand backward
	// through $smap/$sfilter calls in the same block.
	var stages []fusedStage
	cur := red.Args[0]
	use := i
	for {
		def, dIdx := chainProducer(b, use, cur)
		if def == nil || def.Op != ir.OpCallStatic || len(def.Args) != 2 {
			break
		}
		kind := streamKind(def.Sym)
		if kind != "smap" && kind != "sfilter" {
			break
		}
		if !singleUseDead(b, dIdx, use, cur, liveOut) {
			break
		}
		h := traceValue(f, counts, sites, b, dIdx, def.Args[1], 0)
		if h == nil || h.Op != ir.OpMakeHandle {
			break
		}
		stages = append([]fusedStage{{dIdx, kind, h.Sym, def.Args[0]}}, stages...)
		cur = def.Args[0]
		use = dIdx
	}
	if len(stages) == 0 {
		return false
	}

	name := fusedName(stages, redHandle.Sym)
	if _, exists := prog.Funcs[name]; !exists {
		prog.Funcs[name] = synthFused(name, stages, redHandle.Sym)
	}

	// Preserve the source array: the outermost stage call becomes a move
	// into a fresh register (its operand holds the array exactly there;
	// the stage's own destination may alias it).
	outer := stages[0]
	tmp := f.NewReg()
	mv := instr(ir.OpMove)
	mv.Dst = tmp
	mv.A = outer.arrOp
	*b.Code[outer.idx] = mv

	drop := map[int]bool{}
	for _, s := range stages[1:] {
		drop[s.idx] = true
	}
	initReg := red.Args[1]
	var kept []*ir.Instr
	for j, in := range b.Code {
		if drop[j] {
			continue
		}
		kept = append(kept, in)
	}
	b.Code = kept
	red.Sym = name
	red.Args = []ir.Reg{tmp, initReg}
	f.Renumber()
	return true
}

// chainProducer finds the instruction defining the value r holds before
// b.Code[use]. Unlike blockProducer it does not chase moves: a move means
// another register still holds the intermediate array, so it is not
// provably dead after its use.
func chainProducer(b *ir.Block, use int, r ir.Reg) (*ir.Instr, int) {
	for j := use - 1; j >= 0; j-- {
		if mutates(b.Code[j], r) {
			return b.Code[j], j
		}
	}
	return nil, -1
}

// singleUseDead reports that the value defined at defIdx is read exactly
// once — by b.Code[useIdx] — and is dead afterwards.
func singleUseDead(b *ir.Block, defIdx, useIdx int, r ir.Reg, liveOut map[*ir.Block]map[ir.Reg]bool) bool {
	for j := defIdx + 1; j < useIdx; j++ {
		in := b.Code[j]
		for _, u := range in.Uses() {
			if u == r {
				return false
			}
		}
		if mutates(in, r) {
			return false
		}
	}
	// The consumer must read it exactly once.
	n := 0
	for _, u := range b.Code[useIdx].Uses() {
		if u == r {
			n++
		}
	}
	if n != 1 {
		return false
	}
	if mutates(b.Code[useIdx], r) {
		return true // the consumer overwrites the register itself
	}
	for j := useIdx + 1; j < len(b.Code); j++ {
		in := b.Code[j]
		if mutates(in, r) {
			return true // redefined: the old value is dead
		}
		for _, u := range in.Uses() {
			if u == r {
				return false
			}
		}
	}
	switch b.Term.Kind {
	case ir.TermBranch:
		if b.Term.Cond == r {
			return false
		}
	case ir.TermReturn:
		if b.Term.Ret == r {
			return false
		}
	}
	return !liveOut[b][r]
}

// fusedName derives a deterministic, shape-and-callback-specific name, so
// identical pipelines in different functions share one synthesized body.
func fusedName(stages []fusedStage, reduceSym string) string {
	var sb strings.Builder
	sb.WriteString("$fused")
	for _, s := range stages {
		sb.WriteString("{" + s.kind + ":" + s.callback + "}")
	}
	sb.WriteString("{sreduce:" + reduceSym + "}")
	return sb.String()
}

// synthFused builds the fused loop:
//
//	acc = init
//	for i = 0; i < len(arr); i++ {
//	    v = arr[i]; v = map_k(v)...
//	    if !filter_k(v) { continue }
//	    acc = reduce(acc, v)
//	}
//	return acc
//
// The element load carries no guards: the loop is exactly the canonical
// bounds-check-eliminated shape (array guarded non-null once at entry,
// 0 <= i < len by construction), and the executor's ALoad still validates
// internally.
func synthFused(name string, stages []fusedStage, reduceSym string) *ir.Func {
	f := &ir.Func{Name: name, NArgs: 2, NRegs: 2}
	arr, acc := ir.Reg(0), ir.Reg(1)
	iReg := f.NewReg()
	one := f.NewReg()
	n := f.NewReg()

	entry := f.NewBlock()
	header := f.NewBlock()
	body := f.NewBlock()
	latch := f.NewBlock()
	exit := f.NewBlock()
	f.Entry = entry

	emit := func(b *ir.Block, in ir.Instr) {
		p := in
		b.Code = append(b.Code, &p)
	}
	jump := func(to *ir.Block) ir.Terminator {
		return ir.Terminator{Kind: ir.TermJump, To: to, Cond: ir.NoReg, Ret: ir.NoReg}
	}

	g := instr(ir.OpGuardNull)
	g.A = arr
	emit(entry, g)
	ln := instr(ir.OpArrayLen)
	ln.Dst = n
	ln.A = arr
	emit(entry, ln)
	c0 := instr(ir.OpConst)
	c0.Dst = iReg
	c0.Val = rvm.Int(0)
	emit(entry, c0)
	c1 := instr(ir.OpConst)
	c1.Dst = one
	c1.Val = rvm.Int(1)
	emit(entry, c1)
	entry.Term = jump(header)

	cond := f.NewReg()
	cmp := instr(ir.OpCmpLT)
	cmp.Dst = cond
	cmp.A = iReg
	cmp.B = n
	emit(header, cmp)
	header.Term = ir.Terminator{Kind: ir.TermBranch, Cond: cond, To: body, Else: exit, Ret: ir.NoReg}

	v := f.NewReg()
	ld := instr(ir.OpALoad)
	ld.Dst = v
	ld.A = arr
	ld.B = iReg
	emit(body, ld)
	cur := body
	for _, st := range stages {
		call := instr(ir.OpCallStatic)
		call.Sym = st.callback
		call.Args = []ir.Reg{v}
		switch st.kind {
		case "smap":
			nv := f.NewReg()
			call.Dst = nv
			emit(cur, call)
			v = nv
		case "sfilter":
			keep := f.NewReg()
			call.Dst = keep
			emit(cur, call)
			next := f.NewBlock()
			cur.Term = ir.Terminator{Kind: ir.TermBranch, Cond: keep, To: next, Else: latch, Ret: ir.NoReg}
			cur = next
		}
	}
	redCall := instr(ir.OpCallStatic)
	redCall.Dst = acc
	redCall.Sym = reduceSym
	redCall.Args = []ir.Reg{acc, v}
	emit(cur, redCall)
	cur.Term = jump(latch)

	inc := instr(ir.OpAdd)
	inc.Dst = iReg
	inc.A = iReg
	inc.B = one
	emit(latch, inc)
	latch.Term = jump(header)

	exit.Term = ir.Terminator{Kind: ir.TermReturn, Ret: acc, Cond: ir.NoReg}
	f.Renumber()
	return f
}
