package opt

import (
	"renaissance/internal/rvm/ir"
)

// BoundsCheckElim deletes provably-redundant guards inside canonical
// array loops — the tier-up companion pass to speculative guard motion.
// GM (§5.5) hoists guards whose bound is loop-invariant; the canonical
// minilang shape `for i := 0; i < len(a); i++ { ... a[i] ... }` is outside
// its reach because the limit is recomputed from ArrayLen in the header.
// This pass recognizes that shape directly and removes, rather than
// hoists, the per-iteration checks:
//
//   - GuardBounds(a, i) in the loop body is redundant when the header
//     tests i < ArrayLen(a) before every body execution, a is invariant
//     (arrays never resize), i's only in-loop definition is a positive
//     increment in a latch whose in-loop successor is the header alone,
//     and i enters the loop from a non-negative constant — together these
//     give 0 <= i < len(a) at every body point before the increment.
//   - GuardNull(a) in the loop body is redundant because the header's own
//     null check (guard or ArrayLen) on the invariant a traps first.
//
// Deletion is trap-safe beyond the proof: the executor's ALoad/AStore
// validate null and bounds internally, so even a pass bug could only
// change which error is reported, never silence one. Header guards are
// kept — at header positions the current iteration's bound test has not
// run yet.
func BoundsCheckElim(f *ir.Func, prog *ir.Program) bool {
	changed := false
	for _, l := range ir.FindLoops(f) {
		if elimLoopChecks(f, l) {
			changed = true
		}
	}
	if changed {
		f.Renumber()
	}
	return changed
}

// canonicalArrayLoop describes a proven `for i = c (c>=0); i < len(a); i
// += k (k>=1)` loop: the induction base register, the array base register,
// and the site of the induction increment.
type canonicalArrayLoop struct {
	ind      ir.Reg
	arr      ir.Reg
	incBlock *ir.Block
	incIndex int
}

// matchCanonicalArrayLoop proves the loop shape or returns false.
func matchCanonicalArrayLoop(f *ir.Func, l *ir.Loop, res *loopResolver) (canonicalArrayLoop, bool) {
	h := l.Header
	if h.Term.Kind != ir.TermBranch {
		return canonicalArrayLoop{}, false
	}
	if !l.Blocks[h.Term.To] || l.Blocks[h.Term.Else] {
		return canonicalArrayLoop{}, false
	}
	var cmp *ir.Instr
	cmpIdx := -1
	for i, in := range h.Code {
		if in.Defines() && in.Dst == h.Term.Cond {
			cmp, cmpIdx = in, i
		}
	}
	if cmp == nil || cmp.Op != ir.OpCmpLT {
		return canonicalArrayLoop{}, false
	}

	// Left side: the induction variable itself (offset 0 — `a[i+1]` style
	// bounds are not implied by the header test).
	iv := affineAt(h, cmpIdx, cmp.A, 0)
	if !iv.ok || iv.base == ir.NoReg || iv.off != 0 {
		return canonicalArrayLoop{}, false
	}
	step, isInd := res.inductionStep(iv.base)
	if !isInd || step < 1 {
		return canonicalArrayLoop{}, false
	}

	// Right side: ArrayLen of an invariant array, recomputed in the header
	// so it bounds every body execution.
	lenInstr, lenIdx := blockProducer(h, cmpIdx, cmp.B)
	if lenInstr == nil || lenInstr.Op != ir.OpArrayLen {
		return canonicalArrayLoop{}, false
	}
	arr := affineAt(h, lenIdx, lenInstr.A, 0)
	if !arr.ok || arr.base == ir.NoReg || arr.off != 0 || !res.invariant(arr.base) {
		return canonicalArrayLoop{}, false
	}

	// Entry value: the preheader must leave a non-negative constant in the
	// induction register (with the positive step this keeps i >= 0).
	pre := l.Preheader(f)
	if pre == nil {
		return canonicalArrayLoop{}, false
	}
	init := affineAt(pre, len(pre.Code), iv.base, 0)
	if !init.ok || init.base != ir.NoReg || init.off < 0 {
		return canonicalArrayLoop{}, false
	}

	// Increment discipline: the unique in-loop definition of i must sit in
	// a block whose only in-loop successor is the header, so an
	// incremented i is always re-tested before reaching any body guard.
	ds := res.defs[iv.base]
	if len(ds) != 1 {
		return canonicalArrayLoop{}, false
	}
	site := res.at[ds[0]]
	if !l.OnlyLoopSuccessor(site.block) {
		return canonicalArrayLoop{}, false
	}

	// ScalarCAS mutates its A register in place without Defines(), so the
	// def-count based invariance above does not see it.
	for b := range l.Blocks {
		for _, in := range b.Code {
			if in.Op == ir.OpScalarCAS && (in.A == iv.base || in.A == arr.base) {
				return canonicalArrayLoop{}, false
			}
		}
	}
	return canonicalArrayLoop{
		ind: iv.base, arr: arr.base,
		incBlock: site.block, incIndex: site.index,
	}, true
}

func elimLoopChecks(f *ir.Func, l *ir.Loop) bool {
	res := newLoopResolver(l)
	loop, ok := matchCanonicalArrayLoop(f, l, res)
	if !ok {
		return false
	}

	changed := false
	for b := range l.Blocks {
		if b == l.Header {
			continue // header guards precede the current iteration's test
		}
		var kept []*ir.Instr
		for k, in := range b.Code {
			switch in.Op {
			case ir.OpGuardNull:
				ref := affineAt(b, k, in.A, 0)
				if ref.ok && ref.base == loop.arr && ref.off == 0 {
					changed = true
					continue
				}
			case ir.OpGuardBounds:
				// Positions after the increment in its own block see i+step,
				// which the header has not yet bounded.
				if b == loop.incBlock && k > loop.incIndex {
					break
				}
				arr := affineAt(b, k, in.A, 0)
				idx := affineAt(b, k, in.B, 0)
				if arr.ok && arr.base == loop.arr && arr.off == 0 &&
					idx.ok && idx.base == loop.ind && idx.off == 0 {
					changed = true
					continue
				}
			}
			kept = append(kept, in)
		}
		b.Code = kept
	}
	return changed
}

// blockProducer finds the instruction in b.Code[:idx] producing the value
// r holds immediately before index idx, following move chains
// positionally. It returns nil if r is inherited at block entry or the
// chain leaves the block.
func blockProducer(b *ir.Block, idx int, r ir.Reg) (*ir.Instr, int) {
	cur := r
	for i := idx - 1; i >= 0; i-- {
		in := b.Code[i]
		if !mutates(in, cur) {
			continue
		}
		if in.Op == ir.OpMove {
			cur = in.A
			continue
		}
		if in.Op == ir.OpScalarCAS {
			return nil, -1
		}
		return in, i
	}
	return nil, -1
}
