package opt

import (
	"renaissance/internal/rvm"
	"renaissance/internal/rvm/ir"
)

// EscapeAnalysis implements §5.1, partial escape analysis extended with
// atomic operations: an allocation that never escapes is removed and its
// fields become registers (scalar replacement). The paper's contribution
// is that CAS and atomic read-modify-write operations on such objects no
// longer force materialization: a CAS on a scalar-replaced field
// degenerates to a compare-and-move (OpScalarCAS), and monitors on
// non-escaping objects are elided. The soundness argument is the paper's:
// a thread-local object cannot be observed by other threads, so the
// single-threaded emulation of its atomic operations is indistinguishable
// (§5.1 "Soundness").
//
// The analysis is flow-sensitive within the allocation's block: the
// bytecode builder copies references through operand-stack registers, so
// the alias set is tracked instruction by instruction. References that are
// still aliased at the end of the block, or that flow into any
// disallowed use, escape.
func EscapeAnalysis(f *ir.Func, prog *ir.Program) bool {
	changed := false
	for _, b := range f.Blocks {
		for idx := 0; idx < len(b.Code); idx++ {
			in := b.Code[idx]
			if in.Op != ir.OpNew {
				continue
			}
			class, ok := prog.Classes[in.Sym]
			if !ok {
				continue
			}
			plan, ok := analyzeAllocation(f, b, idx, class)
			if !ok {
				continue
			}
			applyScalarReplacement(f, b, idx, class, plan)
			changed = true
			idx = -1 // block rewritten; rescan
		}
	}
	if changed {
		f.Renumber()
	}
	return changed
}

// replacePlan records, per instruction index in the allocation's block,
// how the instruction must be rewritten.
type replacePlan struct {
	// aliasAt[i] is true when b.Code[i] operates on an alias of the
	// allocation (and must be rewritten or dropped).
	rewrite map[int]rewriteKind
}

type rewriteKind int

const (
	rwDrop rewriteKind = iota + 1 // alias move, guard, monitor
	rwGet
	rwPut
	rwCAS
	rwAtomicAdd
)

// analyzeAllocation decides whether the allocation at b.Code[idx] can be
// scalar-replaced, and returns the rewrite plan.
func analyzeAllocation(f *ir.Func, b *ir.Block, idx int, class *rvm.Class) (*replacePlan, bool) {
	alloc := b.Code[idx]
	aliases := map[ir.Reg]bool{alloc.Dst: true}
	plan := &replacePlan{rewrite: map[int]rewriteKind{}}
	knownField := func(sym string) bool {
		_, ok := class.FieldIndex(sym)
		return ok
	}

	usesAlias := func(in *ir.Instr) bool {
		for _, u := range in.Uses() {
			if aliases[u] {
				return true
			}
		}
		return false
	}
	// usesAliasOther reports whether in reads an alias through any operand
	// position other than the single allowed base position.
	usesAliasOther := func(in *ir.Instr, allowedBase ir.Reg) bool {
		count := 0
		for _, u := range in.Uses() {
			if aliases[u] {
				count++
			}
		}
		if aliases[allowedBase] {
			count--
		}
		return count > 0
	}

	for i := idx + 1; i < len(b.Code); i++ {
		in := b.Code[i]
		switch in.Op {
		case ir.OpMove:
			if aliases[in.A] {
				plan.rewrite[i] = rwDrop // alias copy
				if in.Defines() {
					aliases[in.Dst] = true
				}
				continue
			}
		case ir.OpGuardNull:
			if aliases[in.A] {
				plan.rewrite[i] = rwDrop
				continue
			}
		case ir.OpMonitorEnter, ir.OpMonitorExit:
			if aliases[in.A] {
				plan.rewrite[i] = rwDrop
				continue
			}
		case ir.OpGetField:
			if aliases[in.A] {
				if !knownField(in.Sym) || usesAliasOther(in, in.A) {
					return nil, false
				}
				plan.rewrite[i] = rwGet
				delete(aliases, in.Dst)
				continue
			}
		case ir.OpPutField:
			if aliases[in.A] {
				if !knownField(in.Sym) || aliases[in.B] {
					return nil, false
				}
				plan.rewrite[i] = rwPut
				continue
			}
		case ir.OpCAS:
			if aliases[in.A] {
				if !knownField(in.Sym) || aliases[in.B] || aliases[in.C] {
					return nil, false
				}
				plan.rewrite[i] = rwCAS
				delete(aliases, in.Dst)
				continue
			}
		case ir.OpAtomicAdd:
			if aliases[in.A] {
				if !knownField(in.Sym) || aliases[in.B] {
					return nil, false
				}
				plan.rewrite[i] = rwAtomicAdd
				delete(aliases, in.Dst)
				continue
			}
		}
		// Any other read of an alias escapes.
		if usesAlias(in) {
			return nil, false
		}
		// Redefinition kills an alias.
		if in.Defines() {
			delete(aliases, in.Dst)
		}
	}

	// No alias may outlive the block.
	if b.Term.Kind == ir.TermBranch && aliases[b.Term.Cond] {
		return nil, false
	}
	if b.Term.Kind == ir.TermReturn && aliases[b.Term.Ret] {
		return nil, false
	}
	liveOut := ir.Liveness(f)[b]
	for r := range aliases {
		if liveOut[r] {
			return nil, false
		}
	}
	return plan, true
}

// applyScalarReplacement rewrites the block per the plan.
func applyScalarReplacement(f *ir.Func, b *ir.Block, idx int, class *rvm.Class, plan *replacePlan) {
	fieldReg := map[string]ir.Reg{}
	for _, name := range class.FieldNames {
		fieldReg[name] = f.NewReg()
	}

	var out []*ir.Instr
	out = append(out, b.Code[:idx]...)
	// The allocation becomes per-field zero initializations (preserving
	// re-initialization semantics when the allocation sits in a loop).
	for _, name := range class.FieldNames {
		cn := instr(ir.OpConst)
		cn.Dst = fieldReg[name]
		cn.Val = rvm.Null()
		out = append(out, &cn)
	}

	for i := idx + 1; i < len(b.Code); i++ {
		in := b.Code[i]
		switch plan.rewrite[i] {
		case rwDrop:
			// guard/monitor/alias-copy vanishes
		case rwGet:
			mv := instr(ir.OpMove)
			mv.Dst = in.Dst
			mv.A = fieldReg[in.Sym]
			out = append(out, &mv)
		case rwPut:
			mv := instr(ir.OpMove)
			mv.Dst = fieldReg[in.Sym]
			mv.A = in.B
			out = append(out, &mv)
		case rwCAS:
			sc := instr(ir.OpScalarCAS)
			sc.Dst = in.Dst
			sc.A = fieldReg[in.Sym]
			sc.B = in.B
			sc.C = in.C
			out = append(out, &sc)
		case rwAtomicAdd:
			mv := instr(ir.OpMove)
			mv.Dst = in.Dst
			mv.A = fieldReg[in.Sym]
			add := instr(ir.OpAdd)
			add.Dst = fieldReg[in.Sym]
			add.A = in.Dst
			add.B = in.B
			out = append(out, &mv, &add)
		default:
			out = append(out, in)
		}
	}
	b.Code = out
}
