package opt

import "renaissance/internal/rvm/ir"

// CoalesceAtomics implements §5.3, atomic-operation coalescing: two
// consecutive CAS retry loops on the same field, each of the canonical
// shape
//
//	do { v = READ(x); nv = f(v) } while (!CAS(x, v, nv))
//
// with referentially transparent f, are fused into a single retry loop
// computing f2(f1(v)) and issuing one CAS. The paper's soundness argument
// (§5.3) maps every schedule of the fused program onto a schedule of the
// original in which no other thread runs between the two CASes; under the
// Java memory model, programs may not assume they observe the intermediate
// value.
func CoalesceAtomics(f *ir.Func, prog *ir.Program) bool {
	changed := false
	for {
		if !coalesceOne(f) {
			break
		}
		changed = true
	}
	if changed {
		f.Renumber()
	}
	return changed
}

// retryLoop describes one matched single-block CAS retry loop. Matching is
// by value number, so the builder's operand-stack move chains do not
// obscure the shape.
type retryLoop struct {
	block   *ir.Block
	objRoot ir.Reg // object register at block entry
	field   string
	loadIdx int // index of the field load
	casIdx  int // index of the CAS (last instruction)
	load    *ir.Instr
	cas     *ir.Instr
	exitTo  *ir.Block
	// expHolders are the registers holding the loaded value after the
	// block's straight-line code (candidates for the fused CAS's expected
	// operand).
	expHolders []ir.Reg
	// newHolders hold the computed new value at block end.
	newHolders []ir.Reg
}

func matchRetryLoop(b *ir.Block) *retryLoop {
	// Terminator: branch ok ? exit : b (retry backedge to self).
	t := b.Term
	if t.Kind != ir.TermBranch || t.Else != b || t.To == b {
		return nil
	}
	rl := &retryLoop{block: b, exitTo: t.To, loadIdx: -1, casIdx: -1}
	vn := newBlockVN()
	var loadedVN, newVN, okVN int
	for i, in := range b.Code {
		switch in.Op {
		case ir.OpGetField:
			if rl.loadIdx >= 0 {
				return nil // more than one load
			}
			rl.loadIdx = i
			rl.load = in
			rl.field = in.Sym
			loadedVN = func() int { vn.valueOf(in.A); return vn.define(in) }()
		case ir.OpCAS:
			if rl.casIdx >= 0 || rl.loadIdx < 0 {
				return nil
			}
			rl.casIdx = i
			rl.cas = in
			// The CAS must target the same object value and field, expect
			// the loaded value, and its success flag must drive the branch.
			if in.Sym != rl.field {
				return nil
			}
			objEntryLoad, ok1 := chaseBackward(b, rl.loadIdx, rl.load.A)
			objEntryCAS, ok2 := chaseBackward(b, i, in.A)
			if !ok1 || !ok2 || objEntryLoad != objEntryCAS {
				return nil
			}
			rl.objRoot = objEntryLoad
			if vn.valueOf(in.B) != loadedVN {
				return nil
			}
			newVN = vn.valueOf(in.C)
			okVN = vn.define(in)
		case ir.OpGuardNull:
			vn.valueOf(in.A)
		case ir.OpConst, ir.OpMove, ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv,
			ir.OpRem, ir.OpNeg, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT,
			ir.OpCmpGE, ir.OpCmpEQ, ir.OpCmpNE:
			for _, u := range in.Uses() {
				vn.valueOf(u)
			}
			vn.define(in)
		default:
			return nil
		}
	}
	if rl.casIdx != len(b.Code)-1 || rl.casIdx < 0 {
		return nil
	}
	// The branch condition must be the CAS success flag.
	if vn.valueOf(t.Cond) != okVN {
		return nil
	}
	// The entry object register must not be redefined in the block.
	if redefinedIn(b, rl.objRoot) {
		return nil
	}
	rl.expHolders = vn.regsHolding(loadedVN)
	rl.newHolders = vn.regsHolding(newVN)
	if len(rl.expHolders) == 0 || len(rl.newHolders) == 0 {
		return nil
	}
	return rl
}

func coalesceOne(f *ir.Func) bool {
	f.RecomputePreds()
	for _, b := range f.Blocks {
		first := matchRetryLoop(b)
		if first == nil {
			continue
		}
		second := matchRetryLoop(first.exitTo)
		if second == nil || second.block == b {
			continue
		}
		if second.objRoot != first.objRoot || second.field != first.field {
			continue
		}
		// The second loop must only be entered from the first (plus its
		// own backedge), or fusing would change other paths.
		okPreds := true
		for _, p := range second.block.Preds {
			if p != first.block && p != second.block {
				okPreds = false
				break
			}
		}
		if !okPreds {
			continue
		}
		if fuse(f, first, second) {
			return true
		}
	}
	return false
}

// fuse rewrites the first loop block into the combined retry loop
//
//	v = READ(x); nv1 = f1(v); v2' = nv1; nv2 = f2(v2'); CAS(x, v, nv2)
//
// branching to the second loop's exit on success.
func fuse(f *ir.Func, first, second *retryLoop) bool {
	// Pick a register carrying f1's result that the second body does not
	// clobber before (or at) its load position, to bridge the values.
	bridgeSrc := ir.NoReg
	for _, r := range first.newHolders {
		if !redefinedBeforeIdx(second.block, second.loadIdx+1, r) {
			bridgeSrc = r
			break
		}
	}
	// Pick a register carrying the originally loaded value that survives
	// the whole second body: it becomes the fused CAS's expected operand.
	expReg := ir.NoReg
	for _, r := range first.expHolders {
		if !redefinedIn(second.block, r) {
			expReg = r
			break
		}
	}
	// The second body's computed value at its end.
	newReg := ir.NoReg
	for _, r := range second.newHolders {
		if r != ir.NoReg {
			newReg = r
			break
		}
	}
	if bridgeSrc == ir.NoReg || expReg == ir.NoReg || newReg == ir.NoReg {
		return false
	}

	var code []*ir.Instr
	code = append(code, first.block.Code[:first.casIdx]...)
	for i, in := range second.block.Code {
		switch i {
		case second.loadIdx:
			mv := instr(ir.OpMove)
			mv.Dst = second.load.Dst
			mv.A = bridgeSrc
			code = append(code, &mv)
		case second.casIdx:
			// dropped; replaced by the fused CAS below
		default:
			code = append(code, in)
		}
	}
	okReg := f.NewReg()
	cas := instr(ir.OpCAS)
	cas.Dst = okReg
	cas.A = first.objRoot
	cas.B = expReg
	cas.C = newReg
	cas.Sym = first.field
	code = append(code, &cas)

	first.block.Code = code
	first.block.Term = ir.Terminator{
		Kind: ir.TermBranch,
		Cond: okReg,
		To:   second.exitTo,
		Else: first.block,
		Ret:  ir.NoReg,
	}
	return true
}
