package opt

import (
	"renaissance/internal/rvm"
	"renaissance/internal/rvm/ir"
)

// Block-local value numbering. The bytecode-to-IR builder threads values
// through operand-stack registers with move chains; the pattern-matching
// passes compare value numbers instead of raw registers so that the
// matched shapes are insensitive to that shuffling (the way real compilers
// match patterns after canonicalization).

type blockVN struct {
	next int
	vn   map[ir.Reg]int
}

func newBlockVN() *blockVN {
	return &blockVN{vn: map[ir.Reg]int{}}
}

// valueOf returns the current value number of a register, assigning a
// fresh "entry value" on first sight.
func (v *blockVN) valueOf(r ir.Reg) int {
	if r == ir.NoReg {
		return -1
	}
	if n, ok := v.vn[r]; ok {
		return n
	}
	v.next++
	v.vn[r] = v.next
	return v.next
}

// define processes a definition: moves propagate the source's value
// number, every other definition creates a fresh one. It returns the
// destination's new value number.
func (v *blockVN) define(in *ir.Instr) int {
	if !in.Defines() {
		return -1
	}
	if in.Op == ir.OpMove {
		n := v.valueOf(in.A)
		v.vn[in.Dst] = n
		return n
	}
	v.next++
	v.vn[in.Dst] = v.next
	return v.next
}

// regsHolding returns the registers that currently hold the value number.
func (v *blockVN) regsHolding(n int) []ir.Reg {
	var out []ir.Reg
	for r, vn := range v.vn {
		if vn == n {
			out = append(out, r)
		}
	}
	return out
}

// chaseBackward resolves the value of register r immediately before
// b.Code[idx] to the register that carried it at block entry, following
// move chains. It fails if the value was produced by a non-move
// instruction inside the block.
func chaseBackward(b *ir.Block, idx int, r ir.Reg) (ir.Reg, bool) {
	cur := r
	for i := idx - 1; i >= 0; i-- {
		in := b.Code[i]
		if mutates(in, cur) {
			if in.Op == ir.OpMove {
				cur = in.A
				continue
			}
			return ir.NoReg, false
		}
	}
	return cur, true
}

// mutates reports whether the instruction writes register r, including the
// in-place mutation of OpScalarCAS's A operand.
func mutates(in *ir.Instr, r ir.Reg) bool {
	if in.Defines() && in.Dst == r {
		return true
	}
	return in.Op == ir.OpScalarCAS && in.A == r
}

// traceValue resolves the producer of the value r holds just before
// b.Code[idx]: either the non-move instruction that defined it (chasing
// move chains within the block and, for registers inherited at block
// entry, through function-wide single definitions), or nil when the
// producer cannot be determined.
func traceValue(f *ir.Func, counts []int, sites map[ir.Reg]defSite, b *ir.Block, idx int, r ir.Reg, depth int) *ir.Instr {
	if depth > 8 || r == ir.NoReg {
		return nil
	}
	cur := r
	for i := idx - 1; i >= 0; i-- {
		in := b.Code[i]
		if mutates(in, cur) {
			if in.Op == ir.OpMove {
				cur = in.A
				continue
			}
			return in
		}
	}
	// Inherited at block entry: follow the unique function-wide
	// definition, if any.
	if int(cur) >= len(counts) || counts[cur] != 1 {
		return nil
	}
	s, ok := sites[cur]
	if !ok {
		return nil
	}
	d := s.block.Code[s.index]
	if d.Op == ir.OpMove {
		return traceValue(f, counts, sites, s.block, s.index, d.A, depth+1)
	}
	return d
}

// defSites maps every single-definition register to its definition site.
func defSites(f *ir.Func, counts []int) map[ir.Reg]defSite {
	sites := map[ir.Reg]defSite{}
	for _, b := range f.Blocks {
		for i, in := range b.Code {
			if in.Defines() && counts[in.Dst] == 1 {
				sites[in.Dst] = defSite{b, i}
			}
		}
	}
	return sites
}

// redefinedIn reports whether any instruction in the block defines r.
func redefinedIn(b *ir.Block, r ir.Reg) bool {
	for _, in := range b.Code {
		if in.Defines() && in.Dst == r {
			return true
		}
	}
	return false
}

// redefinedBeforeIdx reports whether r is defined in b.Code[:idx].
func redefinedBeforeIdx(b *ir.Block, idx int, r ir.Reg) bool {
	for i := 0; i < idx && i < len(b.Code); i++ {
		in := b.Code[i]
		if in.Defines() && in.Dst == r {
			return true
		}
	}
	return false
}

// affine is a symbolic value base + offset; base NoReg means a pure
// constant. It is produced by the positional resolvers below.
type affine struct {
	base ir.Reg
	off  int64
	ok   bool
}

// affineAt resolves the value register r holds immediately before
// b.Code[idx] into base + offset, following move/add/sub/const chains
// positionally within the block. A register with no definition before idx
// resolves to itself (its block-entry value).
func affineAt(b *ir.Block, idx int, r ir.Reg, depth int) affine {
	if r == ir.NoReg || depth > 16 {
		return affine{}
	}
	for i := idx - 1; i >= 0; i-- {
		in := b.Code[i]
		if !mutates(in, r) {
			continue
		}
		if in.Op == ir.OpScalarCAS {
			return affine{} // opaque in-place mutation
		}
		return instrAffine(b, i, in, depth+1)
	}
	return affine{base: r, ok: true}
}

// instrAffine resolves the value produced by the defining instruction at
// b.Code[i].
func instrAffine(b *ir.Block, i int, in *ir.Instr, depth int) affine {
	switch in.Op {
	case ir.OpConst:
		if in.Val.Kind() == rvm.KindInt {
			return affine{base: ir.NoReg, off: in.Val.AsInt(), ok: true}
		}
	case ir.OpMove:
		return affineAt(b, i, in.A, depth)
	case ir.OpAdd:
		lhs := affineAt(b, i, in.A, depth)
		rhs := affineAt(b, i, in.B, depth)
		switch {
		case lhs.ok && rhs.ok && rhs.base == ir.NoReg:
			return affine{base: lhs.base, off: lhs.off + rhs.off, ok: true}
		case lhs.ok && rhs.ok && lhs.base == ir.NoReg:
			return affine{base: rhs.base, off: lhs.off + rhs.off, ok: true}
		}
	case ir.OpSub:
		lhs := affineAt(b, i, in.A, depth)
		rhs := affineAt(b, i, in.B, depth)
		if lhs.ok && rhs.ok && rhs.base == ir.NoReg {
			return affine{base: lhs.base, off: lhs.off - rhs.off, ok: true}
		}
	}
	return affine{}
}
