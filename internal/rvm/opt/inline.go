package opt

import (
	"strings"

	"renaissance/internal/rvm"
	"renaissance/internal/rvm/ir"
)

// Inlining limits: callees up to inlineCalleeSize instructions are
// inlined while the caller stays under inlineCallerBudget.
const (
	inlineCalleeSize   = 48
	inlineCallerBudget = 600
)

// Inline replaces small static calls with the callee's body. Method-handle
// simplification (§5.4) feeds this pass: once a polymorphic handle call is
// rewritten to a direct call, inlining exposes the lambda body to the
// other optimizations ("inlining the body of the lambda typically
// triggers other optimizations").
func Inline(f *ir.Func, prog *ir.Program) bool {
	changed := false
	for rounds := 0; rounds < 4; rounds++ {
		site := findInlineSite(f, prog)
		if site == nil {
			break
		}
		inlineCall(f, site, prog)
		changed = true
	}
	if changed {
		f.Renumber()
	}
	return changed
}

type callSite struct {
	block  *ir.Block
	index  int
	callee *ir.Func
}

func findInlineSite(f *ir.Func, prog *ir.Program) *callSite {
	if f.Size() > inlineCallerBudget {
		return nil
	}
	for _, b := range f.Blocks {
		for i, in := range b.Code {
			if in.Op != ir.OpCallStatic {
				continue
			}
			callee, ok := prog.Func(in.Sym)
			if !ok || callee == f {
				continue
			}
			if callee.Size() > inlineCalleeSize {
				continue
			}
			if callsSelfOr(callee, f.Name) || callsSelfOr(callee, callee.Name) {
				continue // (mutually) recursive
			}
			return &callSite{block: b, index: i, callee: callee}
		}
	}
	return nil
}

func callsSelfOr(f *ir.Func, name string) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Code {
			if in.Op == ir.OpCallStatic && in.Sym == name {
				return true
			}
			// Conservatively refuse handle-based indirect recursion on
			// handles naming the function.
			if in.Op == ir.OpMakeHandle && strings.Contains(in.Sym, name) {
				return true
			}
		}
	}
	return false
}

// inlineCall splices the callee body in place of the call instruction.
func inlineCall(f *ir.Func, site *callSite, prog *ir.Program) {
	call := site.block.Code[site.index]
	offset := ir.Reg(f.NRegs)
	f.NRegs += site.callee.NRegs

	// Clone callee blocks with shifted registers.
	cloneOf := map[*ir.Block]*ir.Block{}
	for _, cb := range site.callee.Blocks {
		cloneOf[cb] = f.NewBlock()
	}

	// Continuation block: the tail of the call block.
	cont := f.NewBlock()
	cont.Code = append(cont.Code, site.block.Code[site.index+1:]...)
	cont.Term = site.block.Term

	shift := func(r ir.Reg) ir.Reg {
		if r == ir.NoReg {
			return ir.NoReg
		}
		return r + offset
	}

	for _, cb := range site.callee.Blocks {
		nb := cloneOf[cb]
		for _, in := range cb.Code {
			ci := *in
			ci.Dst = shiftDef(in, offset)
			ci.A = shift(in.A)
			ci.B = shift(in.B)
			ci.C = shift(in.C)
			if len(in.Args) > 0 {
				ci.Args = make([]ir.Reg, len(in.Args))
				for k, r := range in.Args {
					ci.Args[k] = shift(r)
				}
			}
			nb.Code = append(nb.Code, &ci)
		}
		switch cb.Term.Kind {
		case ir.TermJump:
			nb.Term = ir.Terminator{Kind: ir.TermJump, To: cloneOf[cb.Term.To], Cond: ir.NoReg, Ret: ir.NoReg}
		case ir.TermBranch:
			nb.Term = ir.Terminator{
				Kind: ir.TermBranch, Cond: shift(cb.Term.Cond),
				To: cloneOf[cb.Term.To], Else: cloneOf[cb.Term.Else], Ret: ir.NoReg,
			}
		case ir.TermReturn:
			mv := instr(ir.OpMove)
			mv.Dst = call.Dst
			mv.A = shift(cb.Term.Ret)
			nb.Code = append(nb.Code, &mv)
			nb.Term = ir.Terminator{Kind: ir.TermJump, To: cont, Cond: ir.NoReg, Ret: ir.NoReg}
		case ir.TermReturnVoid:
			cn := instr(ir.OpConst)
			cn.Dst = call.Dst
			cn.Val = rvm.Null()
			nb.Code = append(nb.Code, &cn)
			nb.Term = ir.Terminator{Kind: ir.TermJump, To: cont, Cond: ir.NoReg, Ret: ir.NoReg}
		}
	}

	// The call block: code before the call, argument moves, then jump to
	// the callee entry clone.
	head := site.block.Code[:site.index]
	site.block.Code = append([]*ir.Instr(nil), head...)
	for i, argReg := range call.Args {
		mv := instr(ir.OpMove)
		mv.Dst = ir.Reg(i) + offset
		mv.A = argReg
		site.block.Code = append(site.block.Code, &mv)
	}
	site.block.Term = ir.Terminator{Kind: ir.TermJump, To: cloneOf[site.callee.Entry], Cond: ir.NoReg, Ret: ir.NoReg}
}

func shiftDef(in *ir.Instr, offset ir.Reg) ir.Reg {
	if in.Dst == ir.NoReg {
		return ir.NoReg
	}
	return in.Dst + offset
}
