package opt

import (
	"math/rand"
	"strings"
	"testing"

	"renaissance/internal/minilang"
	"renaissance/internal/rvm"
	"renaissance/internal/rvm/ir"
)

// abceProgram builds the canonical shape ABCE targets and GM cannot
// reach: the loop bound is recomputed from ArrayLen each iteration, so
// the limit is not loop-invariant.
//
//	main(n): arr = new[n]; s = 0; for i = 0; i < len(arr); i++ { arr[i] = i; s += arr[i] }
func abceProgram(t *testing.T) *rvm.Program {
	t.Helper()
	a := rvm.NewAsm()
	a.Load(0).Op(rvm.OpNewArray).Store(1)
	a.ConstInt(0).Store(2) // s
	a.ConstInt(0).Store(3) // i
	a.Label("head")
	a.Load(3).Load(1).Op(rvm.OpArrayLen).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "exit")
	a.Load(1).Load(3).Load(3).Op(rvm.OpAStore)
	a.Load(2).Load(1).Load(3).Op(rvm.OpALoad).Op(rvm.OpAdd).Store(2)
	a.Load(3).ConstInt(1).Op(rvm.OpAdd).Store(3)
	a.Jump(rvm.OpJump, "head")
	a.Label("exit")
	a.Load(2).Op(rvm.OpReturn)
	return mainProgram(t, nil, a.MustBuild("main", 1))
}

func TestABCERemovesCanonicalLoopChecks(t *testing.T) {
	p := abceProgram(t)
	const n = 100
	_, without := compileAndRun(t, p, nil, rvm.Int(n))
	pipe := &Pipeline{Passes: []Pass{{NameABCE, BoundsCheckElim}}, Disabled: map[string]bool{}, PassTime: Duration0()}
	prog, with := compileAndRun(t, p, pipe, rvm.Int(n))

	if without.GuardsExecuted["BoundsCheck"] < 2*n {
		t.Fatalf("baseline executed too few bounds guards: %v", without.GuardsExecuted)
	}
	if with.GuardsExecuted["BoundsCheck"] != 0 {
		t.Errorf("bounds guards survive ABCE: %v", with.GuardsExecuted)
	}
	// The header's own null check stays (once per iteration plus the exit
	// test); the two per-access body null checks must be gone.
	if got := with.GuardsExecuted["NullCheck"]; got > n+1 {
		t.Errorf("body null checks survive ABCE: %d > %d", got, n+1)
	}
	f := prog.Funcs["Main.main"]
	if countOp(f, ir.OpGuardBounds) != 0 {
		t.Errorf("static bounds guards remain:\n%s", f)
	}
}

// TestABCEKeepsUnprovableChecks: adversarial variants must keep every
// guard — a deleted guard here would be a soundness hole, not a speedup.
func TestABCEKeepsUnprovableChecks(t *testing.T) {
	type variant struct {
		name  string
		build func(a *rvm.Asm)
	}
	variants := []variant{
		{"le-bound", func(a *rvm.Asm) { // i <= len(a): last iteration out of range
			a.Load(3).Load(1).Op(rvm.OpArrayLen).Op(rvm.OpCmpLE).Jump(rvm.OpJumpIfNot, "exit")
		}},
		{"offset-index", func(a *rvm.Asm) { // header tests i+1 < len: a[i] fine but i+1 shape differs
			a.Load(3).ConstInt(1).Op(rvm.OpAdd).Load(1).Op(rvm.OpArrayLen).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "exit")
		}},
	}
	for _, v := range variants {
		a := rvm.NewAsm()
		a.Load(0).Op(rvm.OpNewArray).Store(1)
		a.ConstInt(0).Store(2)
		a.ConstInt(0).Store(3)
		a.Label("head")
		v.build(a)
		a.Load(1).Load(3).Load(3).Op(rvm.OpAStore)
		a.Load(3).ConstInt(1).Op(rvm.OpAdd).Store(3)
		a.Jump(rvm.OpJump, "head")
		a.Label("exit")
		a.Load(2).Op(rvm.OpReturn)
		p := mainProgram(t, nil, a.MustBuild("main", 1))
		prog, err := ir.BuildProgram(p)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		f := prog.Funcs["Main.main"]
		before := countOp(f, ir.OpGuardBounds)
		BoundsCheckElim(f, prog)
		if after := countOp(f, ir.OpGuardBounds); after != before {
			t.Errorf("%s: ABCE deleted unprovable guards (%d -> %d)\n%s", v.name, before, after, f)
		}
	}

	// Negative-start induction: i runs from the argument, which is
	// negative at runtime — the guard must stay and fire.
	a := rvm.NewAsm()
	a.ConstInt(4).Op(rvm.OpNewArray).Store(1)
	a.ConstInt(0).Store(2)
	a.Load(0).Store(3) // i = n (caller passes a negative value)
	a.Label("head")
	a.Load(3).Load(1).Op(rvm.OpArrayLen).Op(rvm.OpCmpLT).Jump(rvm.OpJumpIfNot, "exit")
	a.Load(2).Load(1).Load(3).Op(rvm.OpALoad).Op(rvm.OpAdd).Store(2)
	a.Load(3).ConstInt(1).Op(rvm.OpAdd).Store(3)
	a.Jump(rvm.OpJump, "head")
	a.Label("exit")
	a.Load(2).Op(rvm.OpReturn)
	p := mainProgram(t, nil, a.MustBuild("main", 1))
	prog, err := ir.BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Funcs["Main.main"]
	before := countOp(f, ir.OpGuardBounds)
	BoundsCheckElim(f, prog)
	if after := countOp(f, ir.OpGuardBounds); after != before {
		t.Fatalf("negative-start: guards deleted (%d -> %d)\n%s", before, after, f)
	}
	if _, err := ir.NewExec(prog).Run(rvm.Int(-3)); err == nil {
		t.Error("negative index did not trap")
	}
}

// streamSource is a minilang pipeline whose expected value is computed by
// hand: doubles 0..9 to 0..18, keeps >4 (6,8,...,18 sums to 84), + init 7.
const streamSource = `
func double(x int) int { return x * 2; }
func pos(x int) bool { return x > 4; }
func add(a int, b int) int { return a + b; }
func main() int {
	var a = newarray(10);
	for var i = 0; i < len(a); i = i + 1 { a[i] = i; }
	return sreduce(sfilter(smap(a, double), pos), 7, add);
}`

func TestStreamFuseFusesPipeline(t *testing.T) {
	p, err := minilang.Compile(streamSource)
	if err != nil {
		t.Fatal(err)
	}
	pipe := &Pipeline{
		Passes:   []Pass{{NameCanonicalize, Canonicalize}, {NameStreamFuse, StreamFuse}},
		Disabled: map[string]bool{}, PassTime: Duration0()}
	prog, stats := compileAndRun(t, p, pipe)

	fused := 0
	for name := range prog.Funcs {
		if strings.HasPrefix(name, "$fused") {
			fused++
		}
	}
	if fused != 1 {
		t.Fatalf("synthesized functions = %d, want 1", fused)
	}
	main := prog.Funcs["ML.main"]
	for _, b := range main.Blocks {
		for _, in := range b.Code {
			if in.Op == ir.OpCallStatic && streamKind(in.Sym) != "" {
				t.Errorf("stage call survives fusion: %s", in)
			}
		}
	}
	// Only the source array is allocated; the per-stage intermediates
	// ($smap's output plus $sfilter's two-pass output) are gone.
	if stats.Ops[ir.OpNewArray] != 1 {
		t.Errorf("executed %d array allocations, want 1", stats.Ops[ir.OpNewArray])
	}
	if got, err := ir.NewExec(prog).Run(); err != nil || got.AsInt() != 91 {
		t.Errorf("fused result = %v (%v), want 91", got, err)
	}
}

func TestStreamFuseSkipsSharedIntermediate(t *testing.T) {
	// The mapped array is stored in a variable and read twice, so it is
	// observable and must be materialized.
	src := `
func double(x int) int { return x * 2; }
func add(a int, b int) int { return a + b; }
func main() int {
	var a = newarray(5);
	for var i = 0; i < len(a); i = i + 1 { a[i] = i + 1; }
	var m = smap(a, double);
	return sreduce(m, 0, add) + m[0];
}`
	p, err := minilang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	pipe := &Pipeline{
		Passes:   []Pass{{NameCanonicalize, Canonicalize}, {NameStreamFuse, StreamFuse}},
		Disabled: map[string]bool{}, PassTime: Duration0()}
	prog, _ := compileAndRun(t, p, pipe)
	for name := range prog.Funcs {
		if strings.HasPrefix(name, "$fused") {
			t.Errorf("fused a shared intermediate: %s", name)
		}
	}
}

func TestStreamFuseSpeedup(t *testing.T) {
	src := `
func inc(x int) int { return x + 1; }
func odd(x int) bool { return x % 2 == 1; }
func add(a int, b int) int { return a + b; }
func main() int {
	var a = newarray(64);
	for var i = 0; i < len(a); i = i + 1 { a[i] = i; }
	var s = 0;
	for var r = 0; r < 8; r = r + 1 {
		s = s + sreduce(sfilter(smap(a, inc), odd), 0, add);
	}
	return s;
}`
	p, err := minilang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	withoutPipe := OptPipeline().Disable(NameStreamFuse, NameABCE)
	without := cyclesWith(t, p, withoutPipe)
	with := cyclesWith(t, p, OptPipeline())
	if float64(with) > 0.8*float64(without) {
		t.Errorf("fusion speedup too small: %d -> %d cycles", without, with)
	}
}

// TestOptPipelineOnMinilangCorpus runs representative corpus units —
// including the array-loop and stream variants — through the full
// pipeline, checking IR results against the bytecode interpreter.
func TestOptPipelineOnMinilangCorpus(t *testing.T) {
	for i, src := range minilang.Corpus(12) {
		p, err := minilang.Compile(src)
		if err != nil {
			t.Fatalf("unit %d: %v", i, err)
		}
		compileAndRun(t, p, OptPipeline())
	}
}

// TestTierDifferentialFuzz drives the random bytecode corpus through the
// baseline tier-0 interpreter and with quickening forced; values, traps,
// and all dynamic counters must agree (the rvm tier-up satellite).
func TestTierDifferentialFuzz(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := genProgram(rng)

		vm0 := rvm.NewInterp(p)
		vm0.Tier = rvm.TierBaseline
		v0, e0 := vm0.Run()
		vm1 := rvm.NewInterp(p)
		vm1.Tier = rvm.TierQuick
		v1, e1 := vm1.Run()

		if (e0 == nil) != (e1 == nil) || (e0 != nil && e0.Error() != e1.Error()) {
			t.Fatalf("seed %d: traps diverged: tier0=%v tier1=%v", seed, e0, e1)
		}
		if e0 == nil && !v0.Equal(v1) {
			t.Errorf("seed %d: results diverged: tier0=%v tier1=%v", seed, v0, v1)
		}
		if vm0.Counters != vm1.Counters {
			t.Errorf("seed %d: counters diverged:\n tier0: %+v\n tier1: %+v", seed, vm0.Counters, vm1.Counters)
		}
	}
}
