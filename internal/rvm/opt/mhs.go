package opt

import "renaissance/internal/rvm/ir"

// MethodHandleSimplify implements §5.4: a polymorphic method-handle
// invocation whose handle traces back to a single invokedynamic bootstrap
// (a compile-time constant handle, "the first argument C is a constant
// that represents the address of the method-handle in memory") is
// rewritten into a direct static call. The inlining pass then inlines the
// target, which "triggers other optimizations" as the paper describes for
// the scrabble lambda bodies.
func MethodHandleSimplify(f *ir.Func, prog *ir.Program) bool {
	counts := ir.DefCounts(f)
	sites := defSites(f, counts)

	changed := false
	for _, b := range f.Blocks {
		for i, in := range b.Code {
			if in.Op != ir.OpCallHandle {
				continue
			}
			def := traceValue(f, counts, sites, b, i, in.A, 0)
			if def == nil || def.Op != ir.OpMakeHandle {
				continue
			}
			if _, ok := prog.Func(def.Sym); !ok {
				continue
			}
			// Devirtualize: the handle constant names the exact target.
			in.Op = ir.OpCallStatic
			in.Sym = def.Sym
			in.A = ir.NoReg
			changed = true
		}
	}
	return changed
}
