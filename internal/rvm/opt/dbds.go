package opt

import (
	"renaissance/internal/rvm"
	"renaissance/internal/rvm/ir"
)

// DuplicateSimulate implements §5.7, dominance-based duplication
// simulation: when a control-flow merge is followed by a type test that is
// dominated by an identical test before the split, the merge block is
// duplicated into both predecessors. In each copy the test's outcome is a
// constant, so canonicalization folds the re-check and its branch away —
// the paper's two-consecutive-instanceof example becomes a single test.
//
// The simulation aspect (estimating benefit before committing) is
// represented by the profitability condition: duplication happens only
// when it provably eliminates the dominated type test.
func DuplicateSimulate(f *ir.Func, prog *ir.Program) bool {
	changed := false
	for rounds := 0; rounds < 4; rounds++ {
		if !duplicateOne(f) {
			break
		}
		changed = true
	}
	if changed {
		f.Renumber()
	}
	return changed
}

func duplicateOne(f *ir.Func) bool {
	f.RecomputePreds()
	for _, p := range f.Blocks {
		if p.Term.Kind != ir.TermBranch {
			continue
		}
		// The branch condition must be an instanceof computed in p.
		var test *ir.Instr
		for _, in := range p.Code {
			if in.Defines() && in.Dst == p.Term.Cond {
				test = in
			}
		}
		if test == nil || test.Op != ir.OpInstanceOf {
			continue
		}
		a, b := p.Term.To, p.Term.Else
		if a == b || a == p || b == p {
			continue
		}
		// Diamond: both arms flow only into the same merge block.
		if a.Term.Kind != ir.TermJump || b.Term.Kind != ir.TermJump {
			continue
		}
		m := a.Term.To
		if m != b.Term.To || m == a || m == b || m == p {
			continue
		}
		if len(a.Preds) != 1 || len(b.Preds) != 1 || len(m.Preds) != 2 {
			continue
		}
		// Both tests must examine the same underlying reference: chase the
		// operand-stack copies back to the blocks' entry registers and
		// compare roots.
		testIdx := indexOf(p.Code, test)
		testRoot, ok := chaseBackward(p, testIdx, test.A)
		if !ok {
			continue
		}
		var reTest *ir.Instr
		for i, in := range m.Code {
			if in.Op != ir.OpInstanceOf || in.Sym != test.Sym {
				continue
			}
			root, ok := chaseBackward(m, i, in.A)
			if ok && root == testRoot {
				reTest = in
				break
			}
		}
		if reTest == nil {
			continue
		}
		// The root reference must survive from the first test to the
		// re-test unchanged: not redefined after the test in p, nor
		// anywhere in the arms.
		rootSurvives := true
		for i := testIdx + 1; i < len(p.Code); i++ {
			if p.Code[i].Defines() && p.Code[i].Dst == testRoot {
				rootSurvives = false
				break
			}
		}
		if !rootSurvives || redefinedIn(a, testRoot) || redefinedIn(b, testRoot) {
			continue
		}

		duplicateMerge(a, m, reTest, true)
		duplicateMerge(b, m, reTest, false)
		return true
	}
	return false
}

func indexOf(code []*ir.Instr, target *ir.Instr) int {
	for i, in := range code {
		if in == target {
			return i
		}
	}
	return -1
}

// duplicateMerge appends a copy of the merge block's code to pred,
// replacing the dominated type test with its known outcome, and copies the
// merge terminator.
func duplicateMerge(pred, m *ir.Block, reTest *ir.Instr, outcome bool) {
	for _, in := range m.Code {
		if in == reTest {
			c := instr(ir.OpConst)
			c.Dst = in.Dst
			c.Val = rvm.Int(0)
			if outcome {
				c.Val = rvm.Int(1)
			}
			pred.Code = append(pred.Code, &c)
			continue
		}
		cp := *in
		if len(in.Args) > 0 {
			cp.Args = append([]ir.Reg(nil), in.Args...)
		}
		pred.Code = append(pred.Code, &cp)
	}
	pred.Term = m.Term
}
