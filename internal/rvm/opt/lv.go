package opt

import (
	"renaissance/internal/rvm"
	"renaissance/internal/rvm/ir"
)

// Vectorize implements §5.6, loop vectorization: an innermost counted loop
// whose body is a single guarded-free element-wise array operation
//
//	for (i = ...; i < n; i++) c[i] = a[i] OP b[i]   (or OP const)
//
// is rewritten into a main loop processing VectorWidth lanes per iteration
// with a single vector instruction, plus the original loop as the scalar
// remainder. Bounds-check guards inside the body block vectorization —
// exactly the paper's observation that "by disabling speculative guard
// motion, loop vectorization almost never triggers".
func Vectorize(f *ir.Func, prog *ir.Program) bool {
	changed := false
	for _, l := range ir.FindLoops(f) {
		if vectorizeLoop(f, l) {
			changed = true
		}
	}
	if changed {
		f.Renumber()
	}
	return changed
}

func vectorizeLoop(f *ir.Func, l *ir.Loop) bool {
	if len(l.Blocks) != 2 || len(l.Latches) != 1 {
		return false
	}
	h := l.Header
	body := l.Latches[0]
	if body == h || body.Term.Kind != ir.TermJump || body.Term.To != h {
		return false
	}
	if h.Term.Kind != ir.TermBranch || !isPureCode(h.Code) {
		return false
	}
	if !(h.Term.To == body && !l.Blocks[h.Term.Else]) {
		return false
	}

	res := newLoopResolver(l)
	bound := res.headerBound(l)
	if !bound.resolved || bound.indOff != 0 {
		return false
	}
	step, ok := res.inductionStep(bound.indVar)
	if !ok || step != 1 {
		return false
	}

	// Classify the body: only loads, one store, pure glue, and arithmetic
	// may appear; guards block vectorization (they need GM first).
	var loads []*ir.Instr
	var store *ir.Instr
	pos := map[*ir.Instr]int{}
	for i, in := range body.Code {
		pos[in] = i
		switch in.Op {
		case ir.OpALoad:
			loads = append(loads, in)
		case ir.OpAStore:
			if store != nil {
				return false
			}
			store = in
		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpConst, ir.OpMove:
			// arithmetic and glue; the element operation is identified
			// below by tracing the stored value
		case ir.OpGuardNull, ir.OpGuardBounds:
			return false
		default:
			return false
		}
	}
	if store == nil || len(loads) == 0 || len(loads) > 2 {
		return false
	}

	// The element operation is the instruction producing the stored value.
	counts := ir.DefCounts(f)
	sites := defSites(f, counts)
	arith := traceValue(f, counts, sites, body, pos[store], store.C, 0)
	if arith == nil {
		return false
	}
	switch arith.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul:
	default:
		return false
	}
	if pi, ok := pos[arith]; !ok || pi >= pos[store] {
		return false // must be produced in this body before the store
	}

	// All arrays must resolve to loop-invariant base registers, and all
	// indices to exactly the induction variable.
	arrayBase := func(in *ir.Instr) (ir.Reg, bool) {
		i := pos[in]
		a := affineAt(body, i, in.A, 0)
		if !a.ok || a.base == ir.NoReg || a.off != 0 || !res.invariant(a.base) {
			return ir.NoReg, false
		}
		idx := affineAt(body, i, in.B, 0)
		if !idx.ok || idx.base != bound.indVar || idx.off != 0 {
			return ir.NoReg, false
		}
		return a.base, true
	}
	loadBase := map[*ir.Instr]ir.Reg{}
	for _, ld := range loads {
		base, ok := arrayBase(ld)
		if !ok {
			return false
		}
		loadBase[ld] = base
	}
	storeBase, ok := arrayBase(store)
	if !ok {
		return false
	}

	// Operand shapes: load OP load, load OP const, const OP load
	// (commutative only). Each operand traces back either to one of the
	// body's element loads or to a constant.
	var src1, src2 ir.Reg = ir.NoReg, ir.NoReg
	var constOp *rvm.Value
	arithIdx := pos[arith]
	usedLoads := map[*ir.Instr]bool{}
	resolveOperand := func(r ir.Reg) (arr ir.Reg, cv *rvm.Value, ok bool) {
		d := traceValue(f, counts, sites, body, arithIdx, r, 0)
		for _, ld := range loads {
			if d == ld {
				usedLoads[ld] = true
				return loadBase[ld], nil, true
			}
		}
		a := affineAt(body, arithIdx, r, 0)
		if a.ok && a.base == ir.NoReg {
			v := rvm.Int(a.off)
			return ir.NoReg, &v, true
		}
		return ir.NoReg, nil, false
	}
	a1, c1, ok1 := resolveOperand(arith.A)
	a2, c2, ok2 := resolveOperand(arith.B)
	if !ok1 || !ok2 {
		return false
	}
	switch {
	case a1 != ir.NoReg && a2 != ir.NoReg:
		src1, src2 = a1, a2
	case a1 != ir.NoReg && c2 != nil:
		src1, constOp = a1, c2
	case c1 != nil && a2 != ir.NoReg && (arith.Op == ir.OpAdd || arith.Op == ir.OpMul):
		src1, constOp = a2, c1
	default:
		return false
	}
	// Every load in the body must feed the element operation; an unused
	// load would be silently dropped on the vector path.
	for _, ld := range loads {
		if !usedLoads[ld] {
			return false
		}
	}

	// Registers defined in the body (other than the induction variable)
	// must die at the end of the block: the vector path does not compute
	// them, so no later code may observe their values.
	liveOut := ir.Liveness(f)[body]
	for _, in := range body.Code {
		if in.Defines() && in.Dst != bound.indVar && liveOut[in.Dst] {
			return false
		}
	}

	// Preheader with an unconditional jump, as in guard motion.
	f.RecomputePreds()
	var pre *ir.Block
	for _, p := range h.Preds {
		if l.Blocks[p] {
			continue
		}
		if pre != nil {
			return false
		}
		pre = p
	}
	if pre == nil || pre.Term.Kind != ir.TermJump || pre.Term.To != h {
		return false
	}

	emitVectorLoop(f, pre, h, bound, storeBase, src1, src2, constOp, arith.Op)
	return true
}

// emitVectorLoop builds
//
//	pre:  ... ; vlimit = limit - (W-1) [- 1 for <=] ; jump VH
//	VH:   vc = ind < vlimit ; branch vc ? VB : H
//	VB:   vecarith dst,src1,ind[,src2|const] ; ind += W ; jump VH
//
// leaving the original loop as the scalar remainder.
func emitVectorLoop(f *ir.Func, pre, h *ir.Block, bound loopBound,
	dstArr, src1, src2 ir.Reg, constOp *rvm.Value, arithOp ir.Op) {

	vh := f.NewBlock()
	vb := f.NewBlock()

	adjust := int64(ir.VectorWidth - 1)
	if !bound.strict {
		// i <= L safe through lane i+W-1 when i <= L-(W-1); normalize to
		// strict compare i < L-(W-1)+1.
		adjust = int64(ir.VectorWidth - 2)
	}

	vlimit := f.NewReg()
	if bound.limit.base == ir.NoReg {
		c := instr(ir.OpConst)
		c.Dst = vlimit
		c.Val = rvm.Int(bound.limit.off - adjust)
		pre.Code = append(pre.Code, &c)
	} else {
		adjReg := f.NewReg()
		c := instr(ir.OpConst)
		c.Dst = adjReg
		c.Val = rvm.Int(bound.limit.off - adjust)
		sub := instr(ir.OpAdd)
		sub.Dst = vlimit
		sub.A = bound.limit.base
		sub.B = adjReg
		pre.Code = append(pre.Code, &c, &sub)
	}
	pre.Term = ir.Terminator{Kind: ir.TermJump, To: vh, Cond: ir.NoReg, Ret: ir.NoReg}

	vcond := f.NewReg()
	cmp := instr(ir.OpCmpLT)
	cmp.Dst = vcond
	cmp.A = bound.indVar
	cmp.B = vlimit
	vh.Code = append(vh.Code, &cmp)
	vh.Term = ir.Terminator{Kind: ir.TermBranch, Cond: vcond, To: vb, Else: h, Ret: ir.NoReg}

	vec := instr(ir.OpVecArith)
	vec.Dst = dstArr
	vec.A = src1
	vec.B = bound.indVar
	vec.C = src2
	vec.ArithOp = arithOp
	vec.ConstOperand = constOp
	wReg := f.NewReg()
	wc := instr(ir.OpConst)
	wc.Dst = wReg
	wc.Val = rvm.Int(ir.VectorWidth)
	inc := instr(ir.OpAdd)
	inc.Dst = bound.indVar
	inc.A = bound.indVar
	inc.B = wReg
	vb.Code = append(vb.Code, &vec, &wc, &inc)
	vb.Term = ir.Terminator{Kind: ir.TermJump, To: vh, Cond: ir.NoReg, Ret: ir.NoReg}
}
