package jit

import (
	"testing"

	"renaissance/internal/rvm"
	"renaissance/internal/rvm/kernels"
	"renaissance/internal/rvm/opt"
)

func buildKernel(t *testing.T, suite, name string) *rvm.Program {
	t.Helper()
	spec, ok := kernels.Lookup(suite, name)
	if !ok {
		t.Fatalf("no kernel %s/%s", suite, name)
	}
	p, err := kernels.Build(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompileAccounting(t *testing.T) {
	p := buildKernel(t, kernels.SuiteRenaissance, "scrabble")
	c, err := Compile(p, opt.OptPipeline())
	if err != nil {
		t.Fatal(err)
	}
	if c.CodeSize <= 0 || c.MethodCount <= 0 {
		t.Errorf("code size = %d, methods = %d", c.CodeSize, c.MethodCount)
	}
	if c.CompileTime <= 0 {
		t.Error("no compile time recorded")
	}
	if len(c.Pipeline.PassTime) == 0 {
		t.Error("no per-pass times")
	}
}

func TestHotMethodsAndCodeSize(t *testing.T) {
	p := buildKernel(t, kernels.SuiteRenaissance, "scrabble")
	c, err := Compile(p, opt.OptPipeline())
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	hot := c.HotMethods(stats)
	if len(hot) == 0 {
		t.Fatal("no hot methods")
	}
	for i := 1; i < len(hot); i++ {
		if hot[i].Cycles > hot[i-1].Cycles {
			t.Errorf("hot methods not sorted: %v", hot)
		}
	}
	if hot[0].Name != "Main.main" && hot[0].Cycles <= 0 {
		t.Errorf("unexpected hottest method %+v", hot[0])
	}
	size, count := c.HotCodeSize(stats, 0.01)
	if size <= 0 || count <= 0 {
		t.Errorf("hot code size = %d, count = %d", size, count)
	}
	allSize, allCount := c.HotCodeSize(stats, 0)
	if allSize < size || allCount < count {
		t.Errorf("threshold 0 should include everything: %d/%d vs %d/%d",
			allSize, allCount, size, count)
	}
}

func TestMeasureImpactDirection(t *testing.T) {
	p := buildKernel(t, kernels.SuiteRenaissance, "fj-kmeans")
	impact, with, without, err := MeasureImpact(p, opt.NameLLC)
	if err != nil {
		t.Fatal(err)
	}
	if with >= without {
		t.Errorf("LLC on fj-kmeans: with=%d without=%d; expected fewer cycles with", with, without)
	}
	if impact <= 0 {
		t.Errorf("impact = %f, want positive", impact)
	}
}

func TestBaselineSmallerCompileTimeBudget(t *testing.T) {
	// The baseline pipeline compiles fewer passes; this mirrors Table 16's
	// observation that optimizations cost compilation time.
	p := buildKernel(t, kernels.SuiteSPECjvm, "scimark.lu.small")
	base, err := Compile(p, opt.BaselinePipeline())
	if err != nil {
		t.Fatal(err)
	}
	full, err := Compile(p, opt.OptPipeline())
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Pipeline.PassTime) <= len(base.Pipeline.PassTime) {
		t.Errorf("full pipeline should record more passes: %d vs %d",
			len(full.Pipeline.PassTime), len(base.Pipeline.PassTime))
	}
}

func TestRunTracedAndCalibrated(t *testing.T) {
	p := buildKernel(t, kernels.SuiteRenaissance, "als")
	c, err := Compile(p, opt.OptPipeline())
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Traced run agrees and reports accesses.
	tr := &countingTracer{}
	got, _, err := c.RunTraced(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("traced result %v != %v", got, want)
	}
	if tr.n == 0 {
		t.Error("tracer saw no accesses")
	}
	// Calibrated run agrees and takes longer.
	got2, st2, err := c.RunCalibrated()
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Equal(want) || st2.Cycles == 0 {
		t.Errorf("calibrated result %v (cycles %d)", got2, st2.Cycles)
	}
}

type countingTracer struct{ n int }

func (c *countingTracer) Access(obj *rvm.Object, index int, write bool) { c.n++ }

func TestMeasureImpactErrors(t *testing.T) {
	// An empty program has no entry: MeasureImpact must surface the error.
	p := rvm.NewProgram()
	mainC := rvm.NewClass("Main", nil)
	if err := p.AddClass(mainC); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := MeasureImpact(p, opt.NameGM); err == nil {
		t.Error("impact on entry-less program succeeded")
	}
}
