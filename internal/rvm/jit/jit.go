// Package jit ties the RVM's compilation pipeline together: it translates
// bytecode programs to IR, runs an optimization pipeline over them, and
// accounts for the quantities the paper's evaluation reports — compiled
// code size and hot-method counts (Figure 7), per-pass compilation time
// (Table 16), guard-execution profiles (§5.5), and per-method cycle
// attribution (§5.4).
package jit

import (
	"sort"
	"time"

	"renaissance/internal/rvm"
	"renaissance/internal/rvm/ir"
	"renaissance/internal/rvm/opt"
)

// Compiled is the result of compiling a bytecode program.
type Compiled struct {
	Prog *ir.Program
	// Pipeline is the configuration that produced the code.
	Pipeline *opt.Pipeline
	// CodeSize is the total compiled IR size in instructions (the
	// Figure 7 "code size" analogue; the paper reports bytes of machine
	// code, we report IR instructions — both measure how much hot code
	// the compiler produced).
	CodeSize int
	// MethodCount is the number of compiled methods.
	MethodCount int
	// CompileTime is the total wall-clock pipeline time.
	CompileTime time.Duration
}

// Compile builds IR for the program and applies the pipeline.
func Compile(p *rvm.Program, pipe *opt.Pipeline) (*Compiled, error) {
	prog, err := ir.BuildProgram(p)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	pipe.Compile(prog)
	elapsed := time.Since(start)

	size := 0
	for _, f := range prog.Funcs {
		size += f.Size()
	}
	return &Compiled{
		Prog:        prog,
		Pipeline:    pipe,
		CodeSize:    size,
		MethodCount: len(prog.Funcs),
		CompileTime: elapsed,
	}, nil
}

// Run executes the compiled program and returns the result value plus the
// execution statistics.
func (c *Compiled) Run(args ...rvm.Value) (rvm.Value, *ir.Stats, error) {
	e := ir.NewExec(c.Prog)
	v, err := e.Run(args...)
	return v, e.Stats, err
}

// RunTraced executes with a memory tracer attached (cache simulation).
func (c *Compiled) RunTraced(tracer ir.MemTracer, args ...rvm.Value) (rvm.Value, *ir.Stats, error) {
	e := ir.NewExec(c.Prog)
	e.Tracer = tracer
	v, err := e.Run(args...)
	return v, e.Stats, err
}

// HotMethod is one entry of the hot-method profile.
type HotMethod struct {
	Name   string
	Cycles int64
	Calls  int64
	Size   int
}

// HotMethods returns the methods ordered by attributed cycles, descending
// (the §5.4 hottest-methods table and the Figure 7 hot-method count).
func (c *Compiled) HotMethods(stats *ir.Stats) []HotMethod {
	var out []HotMethod
	for name, cycles := range stats.FuncCycles {
		hm := HotMethod{Name: name, Cycles: cycles, Calls: stats.FuncCalls[name]}
		if f, ok := c.Prog.Func(name); ok {
			hm.Size = f.Size()
		}
		out = append(out, hm)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// HotCodeSize returns the total size and count of methods that consumed at
// least minShare (0..1) of the total cycles — the Figure 7 measure of
// "code compiled with the second-tier optimizing compiler".
func (c *Compiled) HotCodeSize(stats *ir.Stats, minShare float64) (size, count int) {
	total := stats.Cycles
	if total == 0 {
		return 0, 0
	}
	for _, hm := range c.HotMethods(stats) {
		if float64(hm.Cycles) < minShare*float64(total) {
			continue
		}
		size += hm.Size
		count++
	}
	return size, count
}

// MeasureImpact compiles and runs the program under the full pipeline and
// under the pipeline with one optimization disabled, returning the
// paper's impact measure: the relative change in execution cycles when
// the optimization is selectively disabled (§6: positive means the
// optimization speeds execution up).
func MeasureImpact(p *rvm.Program, optName string, args ...rvm.Value) (impact float64, withCycles, withoutCycles int64, err error) {
	full, err := Compile(p, opt.OptPipeline())
	if err != nil {
		return 0, 0, 0, err
	}
	_, fullStats, err := full.Run(args...)
	if err != nil {
		return 0, 0, 0, err
	}
	disabled, err := Compile(p, opt.OptPipeline().Disable(optName))
	if err != nil {
		return 0, 0, 0, err
	}
	_, disStats, err := disabled.Run(args...)
	if err != nil {
		return 0, 0, 0, err
	}
	withCycles, withoutCycles = fullStats.Cycles, disStats.Cycles
	if withCycles == 0 {
		return 0, withCycles, withoutCycles, nil
	}
	impact = float64(withoutCycles-withCycles) / float64(withCycles)
	return impact, withCycles, withoutCycles, nil
}

// RunCalibrated executes with the timing-calibrated executor: wall-clock
// duration is proportional to charged cycles plus real measurement noise,
// which is what the significance tests time.
func (c *Compiled) RunCalibrated(args ...rvm.Value) (rvm.Value, *ir.Stats, error) {
	e := ir.NewExec(c.Prog)
	e.Calibrated = true
	v, err := e.Run(args...)
	return v, e.Stats, err
}
