package rvm

import (
	"fmt"
	"sort"
)

// Class is a loaded class: a name, an optional superclass, field names
// (instance slots), methods, and implemented interface names.
type Class struct {
	Name       string
	Super      *Class
	FieldNames []string
	Methods    map[string]*Method
	Interfaces []string

	fieldIndex map[string]int
}

// NewClass creates a class with the given fields.
func NewClass(name string, super *Class, fields ...string) *Class {
	c := &Class{
		Name:       name,
		Super:      super,
		Methods:    make(map[string]*Method),
		fieldIndex: make(map[string]int),
	}
	if super != nil {
		c.FieldNames = append(c.FieldNames, super.FieldNames...)
	}
	c.FieldNames = append(c.FieldNames, fields...)
	for i, f := range c.FieldNames {
		c.fieldIndex[f] = i
	}
	return c
}

// FieldIndex returns the slot index of the named field.
func (c *Class) FieldIndex(name string) (int, bool) {
	i, ok := c.fieldIndex[name]
	return i, ok
}

// AddMethod attaches a method to the class.
func (c *Class) AddMethod(m *Method) {
	m.Class = c
	c.Methods[m.Name] = m
}

// ResolveMethod walks the superclass chain for a method, the
// invokevirtual resolution.
func (c *Class) ResolveMethod(name string) (*Method, bool) {
	for k := c; k != nil; k = k.Super {
		if m, ok := k.Methods[name]; ok {
			return m, true
		}
	}
	return nil, false
}

// IsSubclassOf reports whether c is k or a subclass of k.
func (c *Class) IsSubclassOf(k *Class) bool {
	for cur := c; cur != nil; cur = cur.Super {
		if cur == k {
			return true
		}
	}
	return false
}

// Implements reports whether the class (or a superclass) declares the
// interface name.
func (c *Class) Implements(iface string) bool {
	for cur := c; cur != nil; cur = cur.Super {
		for _, i := range cur.Interfaces {
			if i == iface {
				return true
			}
		}
	}
	return false
}

// Method is a bytecode method: a flat instruction sequence with NArgs
// argument slots (slot 0 is the receiver for instance methods) and NLocals
// total local slots.
type Method struct {
	Name    string
	Class   *Class
	NArgs   int
	NLocals int
	Code    []Instr
	// Static marks methods invoked without a receiver.
	Static bool
	// MaxStack is the verified operand-stack high-water mark, computed by
	// Asm.Build (and recomputed defensively by the interpreter for
	// hand-built methods). Zero means "not verified yet".
	MaxStack int
	// Loops carries compiler-emitted loop-shape metadata (minilang's for
	// statement): the quickener uses it to prove the induction variable
	// non-negative and elide per-access null+bounds checks in tier-1.
	Loops []LoopInfo
}

// LoopInfo describes one canonical counted loop over an array:
//
//	for idx := <non-negative>; idx < len(arr); idx++ { ... }
//
// Head is the instruction index of the loop header (Load idx; Load arr;
// ArrayLen; CmpLT; JumpIfNot exit) and End the first instruction after
// the backedge. IdxSlot/ArrSlot are the local slots of the induction
// variable and the array. InitNonNeg asserts the compiler initialized idx
// with a non-negative constant immediately before the header; the
// quickener independently re-derives every other region condition from
// the bytecode before trusting it.
type LoopInfo struct {
	Head, End        int
	IdxSlot, ArrSlot int
	InitNonNeg       bool
}

// QualifiedName returns Class.Name + "." + Name.
func (m *Method) QualifiedName() string {
	if m.Class == nil {
		return m.Name
	}
	return m.Class.Name + "." + m.Name
}

// Program is a set of classes plus a designated entry method.
type Program struct {
	Classes map[string]*Class
	Entry   *Method
}

// NewProgram creates an empty program.
func NewProgram() *Program {
	return &Program{Classes: make(map[string]*Class)}
}

// AddClass registers the class; duplicate names are an error.
func (p *Program) AddClass(c *Class) error {
	if _, dup := p.Classes[c.Name]; dup {
		return fmt.Errorf("rvm: duplicate class %q", c.Name)
	}
	p.Classes[c.Name] = c
	return nil
}

// Class looks a class up by name.
func (p *Program) Class(name string) (*Class, bool) {
	c, ok := p.Classes[name]
	return c, ok
}

// ClassNames returns the sorted class names (deterministic reporting).
func (p *Program) ClassNames() []string {
	out := make([]string, 0, len(p.Classes))
	for n := range p.Classes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Methods returns every method of every class, sorted by qualified name.
func (p *Program) Methods() []*Method {
	var out []*Method
	for _, c := range p.Classes {
		for _, m := range c.Methods {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].QualifiedName() < out[j].QualifiedName()
	})
	return out
}
