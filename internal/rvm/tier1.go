package rvm

import "fmt"

// Tier-1 execution: token-threaded dispatch over a function table indexed
// by quickened opcode. Frames are pooled and flat — locals and operand
// stack share one slice sized from the verified MaxStack — so steady-state
// invocation allocates nothing. Fuel is charged per basic block (the
// charge rides on each block's leader instruction); Executed and every
// other counter are bumped by the handlers to match tier-0 exactly.

// frame is a pooled activation record: regs[:nlocals] are the locals,
// regs[nlocals:] the operand stack, sp the absolute top-of-stack index.
type frame struct {
	regs            []Value
	sp              int
	q               *qcode
	depth, maxDepth int
	ret             Value
}

// acquire returns a zeroed frame of the given size from the pool.
func (vm *Interp) acquire(size int) *frame {
	var fr *frame
	if n := len(vm.pool); n > 0 {
		fr = vm.pool[n-1]
		vm.pool = vm.pool[:n-1]
	} else {
		fr = &frame{}
	}
	if cap(fr.regs) < size {
		fr.regs = make([]Value, size)
	} else {
		fr.regs = fr.regs[:size]
		for i := range fr.regs {
			fr.regs[i] = Value{}
		}
	}
	return fr
}

func (vm *Interp) release(fr *frame) {
	fr.q = nil
	vm.pool = append(vm.pool, fr)
}

// runQuick executes a quickened method from its entry.
func (vm *Interp) runQuick(st *mstate, args []Value, depth, maxDepth int) (Value, error) {
	q := st.q
	fr := vm.acquire(q.frameSize)
	copy(fr.regs, args)
	fr.q = q
	fr.sp = q.nlocals
	fr.depth, fr.maxDepth = depth, maxDepth
	v, err := vm.dispatch(fr, 0)
	vm.release(fr)
	return v, err
}

type qhandler func(*Interp, *frame, *qinstr, int) (int, error)

// dispatch is the tier-1 interpreter loop. pc -1 signals a return, with
// the result in fr.ret.
func (vm *Interp) dispatch(fr *frame, pc int) (Value, error) {
	code := fr.q.code
	profile := vm.prof
	for pc >= 0 {
		in := &code[pc]
		if in.charge != 0 {
			vm.fuel -= int64(in.charge)
			if vm.fuel < 0 {
				return Null(), ErrFuelExhausted
			}
		}
		if profile {
			vm.qopProf[in.op]++
		}
		npc, err := qhandlers[in.op](vm, fr, in, pc)
		if err != nil {
			return Null(), err
		}
		pc = npc
	}
	return fr.ret, nil
}

// cmpFast is compare with an integer fast path.
func cmpFast(op Opcode, a, b Value) bool {
	if a.kind == KindInt && b.kind == KindInt {
		switch op {
		case OpCmpLT:
			return a.i < b.i
		case OpCmpLE:
			return a.i <= b.i
		case OpCmpGT:
			return a.i > b.i
		case OpCmpGE:
			return a.i >= b.i
		case OpCmpEQ:
			return a.i == b.i
		case OpCmpNE:
			return a.i != b.i
		}
	}
	return compare(op, a, b)
}

// arithFast performs trap-free integer arithmetic inline; ok is false
// when the generic (float-promoting or trapping) path must run.
func arithFast(op Opcode, a, b Value) (Value, bool) {
	if a.kind == KindInt && b.kind == KindInt {
		switch op {
		case OpAdd:
			return Int(a.i + b.i), true
		case OpSub:
			return Int(a.i - b.i), true
		case OpMul:
			return Int(a.i * b.i), true
		case OpDiv:
			if b.i != 0 {
				return Int(a.i / b.i), true
			}
		case OpRem:
			if b.i != 0 {
				return Int(a.i % b.i), true
			}
		}
	}
	return Value{}, false
}

var qhandlers [qopCount]qhandler

// Populated in init to break the static initialization cycle through
// invoke → dispatch → qhandlers.
func init() {
	qhandlers = [qopCount]qhandler{
		qNop:           qhNop,
		qConstInt:      qhConstInt,
		qConstFloat:    qhConstFloat,
		qConstNull:     qhConstNull,
		qLoad:          qhLoad,
		qStore:         qhStore,
		qPop:           qhPop,
		qDup:           qhDup,
		qArith:         qhArith,
		qNeg:           qhNeg,
		qCmp:           qhCmp,
		qJump:          qhJump,
		qJumpIf:        qhJumpIf,
		qJumpIfNot:     qhJumpIfNot,
		qReturn:        qhReturn,
		qReturnVoid:    qhReturnVoid,
		qNew:           qhNew,
		qGetField:      qhGetField,
		qPutField:      qhPutField,
		qNewArray:      qhNewArray,
		qALoad:         qhALoad,
		qALoadNB:       qhALoadNB,
		qAStore:        qhAStore,
		qAStoreNB:      qhAStoreNB,
		qArrayLen:      qhArrayLen,
		qInvokeStatic:  qhInvokeStatic,
		qInvokeVirtual: qhInvokeVirtual,
		qInvokeDynamic: qhInvokeDynamic,
		qInvokeHandle:  qhInvokeHandle,
		qMonitorEnter:  qhMonitorEnter,
		qMonitorExit:   qhMonitorExit,
		qCAS:           qhCAS,
		qAtomicAdd:     qhAtomicAdd,
		qPark:          qhPark,
		qWait:          qhWait,
		qNotify:        qhNotify,
		qInstanceOf:    qhInstanceOf,
		qCheckCast:     qhCheckCast,
		qLenCmpBr:      qhLenCmpBr,
		qLLCmpBr:       qhLLCmpBr,
		qLCCmpBr:       qhLCCmpBr,
		qCmpBr:         qhCmpBr,
		qLCArithStore:  qhLCArithStore,
		qLLArithStore:  qhLLArithStore,
		qArithStore:    qhArithStore,
		qCArith:        qhCArith,
		qLLALoad:       qhLLALoad,
		qLLALoadNB:     qhLLALoadNB,
		qLLLAStore:     qhLLLAStore,
		qLLLAStoreNB:   qhLLLAStoreNB,
		qEnd:           qhEnd,
	}
}

func qhNop(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	return pc + 1, nil
}

func qhConstInt(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	fr.regs[fr.sp] = Int(in.i)
	fr.sp++
	return pc + 1, nil
}

func qhConstFloat(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	fr.regs[fr.sp] = Float(in.f)
	fr.sp++
	return pc + 1, nil
}

func qhConstNull(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	fr.regs[fr.sp] = Null()
	fr.sp++
	return pc + 1, nil
}

func qhLoad(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	fr.regs[fr.sp] = fr.regs[in.a]
	fr.sp++
	return pc + 1, nil
}

func qhStore(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	fr.sp--
	fr.regs[in.a] = fr.regs[fr.sp]
	return pc + 1, nil
}

func qhPop(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	fr.sp--
	return pc + 1, nil
}

func qhDup(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	fr.regs[fr.sp] = fr.regs[fr.sp-1]
	fr.sp++
	return pc + 1, nil
}

func qhArith(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	b := fr.regs[fr.sp-1]
	a := fr.regs[fr.sp-2]
	fr.sp--
	if v, ok := arithFast(in.xop, a, b); ok {
		fr.regs[fr.sp-1] = v
		return pc + 1, nil
	}
	v, err := arith(in.xop, a, b)
	if err != nil {
		return 0, err
	}
	fr.regs[fr.sp-1] = v
	return pc + 1, nil
}

func qhNeg(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	a := fr.regs[fr.sp-1]
	if a.Kind() == KindFloat {
		fr.regs[fr.sp-1] = Float(-a.AsFloat())
	} else {
		fr.regs[fr.sp-1] = Int(-a.AsInt())
	}
	return pc + 1, nil
}

func qhCmp(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	b := fr.regs[fr.sp-1]
	a := fr.regs[fr.sp-2]
	fr.sp--
	fr.regs[fr.sp-1] = boolVal(cmpFast(in.xop, a, b))
	return pc + 1, nil
}

func qhJump(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	return int(in.c), nil
}

func qhJumpIf(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	fr.sp--
	if fr.regs[fr.sp].Truthy() {
		return int(in.c), nil
	}
	return pc + 1, nil
}

func qhJumpIfNot(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	fr.sp--
	if !fr.regs[fr.sp].Truthy() {
		return int(in.c), nil
	}
	return pc + 1, nil
}

func qhReturn(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	fr.sp--
	fr.ret = fr.regs[fr.sp]
	return -1, nil
}

func qhReturnVoid(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	fr.ret = Null()
	return -1, nil
}

func qhEnd(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	// Implicit void return (fell off the end / out-of-range jump): the
	// seed executes no instruction for this, so no Executed bump.
	fr.ret = Null()
	return -1, nil
}

func qhNew(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	c := in.cls
	if c == nil {
		cc, ok := vm.Program.Class(in.s)
		if !ok {
			return 0, fmt.Errorf("%w: %s", ErrNoSuchClass, in.s)
		}
		in.cls = cc
		c = cc
	}
	vm.Counters.Object++
	fr.regs[fr.sp] = Ref(NewObject(c))
	fr.sp++
	return pc + 1, nil
}

func qhGetField(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	obj := fr.regs[fr.sp-1].AsRef()
	if obj == nil {
		return 0, fmt.Errorf("%w: getfield %s in %s", ErrNullPointer, in.s, fr.q.m.QualifiedName())
	}
	ic := in.ic
	idx := ic.fidx
	if ic.fcls != obj.Class {
		j, ok := obj.Class.FieldIndex(in.s)
		if !ok {
			return 0, fmt.Errorf("%w: %s.%s", ErrNoSuchField, obj.Class.Name, in.s)
		}
		ic.fcls, ic.fidx = obj.Class, j
		ic.misses++
		idx = j
	} else {
		ic.hits++
	}
	fr.regs[fr.sp-1] = obj.Fields[idx]
	return pc + 1, nil
}

func qhPutField(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	v := fr.regs[fr.sp-1]
	obj := fr.regs[fr.sp-2].AsRef()
	fr.sp -= 2
	if obj == nil {
		return 0, fmt.Errorf("%w: putfield %s", ErrNullPointer, in.s)
	}
	ic := in.ic
	idx := ic.fidx
	if ic.fcls != obj.Class {
		j, ok := obj.Class.FieldIndex(in.s)
		if !ok {
			return 0, fmt.Errorf("%w: %s.%s", ErrNoSuchField, obj.Class.Name, in.s)
		}
		ic.fcls, ic.fidx = obj.Class, j
		ic.misses++
		idx = j
	} else {
		ic.hits++
	}
	obj.Fields[idx] = v
	return pc + 1, nil
}

func qhNewArray(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	ln := fr.regs[fr.sp-1].AsInt()
	if ln < 0 {
		return 0, fmt.Errorf("rvm: negative array size %d", ln)
	}
	vm.Counters.Array++
	fr.regs[fr.sp-1] = Ref(NewArray(int(ln)))
	return pc + 1, nil
}

func qhALoad(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	idx := fr.regs[fr.sp-1]
	obj := fr.regs[fr.sp-2].AsRef()
	fr.sp--
	if obj == nil {
		return 0, fmt.Errorf("%w: aload", ErrNullPointer)
	}
	i := idx.AsInt()
	if i < 0 || i >= int64(len(obj.Elems)) {
		return 0, fmt.Errorf("%w: %d of %d", ErrBounds, i, len(obj.Elems))
	}
	fr.regs[fr.sp-1] = obj.Elems[i]
	return pc + 1, nil
}

// qhALoadNB is the guarded-region form: the loop header already proved
// the array non-null and the index within [0, len). The residual checks
// are defensive single compares that never fire when the region proof
// holds.
func qhALoadNB(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	i := fr.regs[fr.sp-1].AsInt()
	obj := fr.regs[fr.sp-2].AsRef()
	fr.sp--
	if obj == nil {
		return 0, fmt.Errorf("%w: aload", ErrNullPointer)
	}
	if uint64(i) >= uint64(len(obj.Elems)) {
		return 0, fmt.Errorf("%w: %d of %d", ErrBounds, i, len(obj.Elems))
	}
	fr.regs[fr.sp-1] = obj.Elems[i]
	return pc + 1, nil
}

func qhAStore(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	v := fr.regs[fr.sp-1]
	idx := fr.regs[fr.sp-2]
	obj := fr.regs[fr.sp-3].AsRef()
	fr.sp -= 3
	if obj == nil {
		return 0, fmt.Errorf("%w: astore", ErrNullPointer)
	}
	i := idx.AsInt()
	if i < 0 || i >= int64(len(obj.Elems)) {
		return 0, fmt.Errorf("%w: %d of %d", ErrBounds, i, len(obj.Elems))
	}
	obj.Elems[i] = v
	return pc + 1, nil
}

func qhAStoreNB(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	v := fr.regs[fr.sp-1]
	i := fr.regs[fr.sp-2].AsInt()
	obj := fr.regs[fr.sp-3].AsRef()
	fr.sp -= 3
	if obj == nil {
		return 0, fmt.Errorf("%w: astore", ErrNullPointer)
	}
	if uint64(i) >= uint64(len(obj.Elems)) {
		return 0, fmt.Errorf("%w: %d of %d", ErrBounds, i, len(obj.Elems))
	}
	obj.Elems[i] = v
	return pc + 1, nil
}

func qhArrayLen(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	obj := fr.regs[fr.sp-1].AsRef()
	if obj == nil {
		return 0, fmt.Errorf("%w: arraylen", ErrNullPointer)
	}
	fr.regs[fr.sp-1] = Int(int64(len(obj.Elems)))
	return pc + 1, nil
}

func qhInvokeStatic(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	t := in.tgt
	if t == nil {
		// Lazy resolution: a bad call site traps on first execution,
		// exactly like tier-0; a good one resolves once.
		tt, err := vm.resolveStatic(in.s)
		if err != nil {
			return 0, err
		}
		in.tgt = tt
		in.tstate = vm.state(tt)
		t = tt
	}
	n := int(in.a)
	args := fr.regs[fr.sp-n : fr.sp]
	fr.sp -= n
	ret, err := vm.callCached(in.tstate, t, args, fr)
	if err != nil {
		return 0, err
	}
	fr.regs[fr.sp] = ret
	fr.sp++
	return pc + 1, nil
}

func qhInvokeVirtual(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	n := int(in.a)
	args := fr.regs[fr.sp-n : fr.sp]
	fr.sp -= n
	var recv *Object
	if n > 0 {
		recv = args[0].AsRef()
	}
	if recv == nil {
		return 0, fmt.Errorf("%w: invoke %s", ErrNullPointer, in.s)
	}
	ic := in.ic
	var target *Method
	var tst *mstate
	for k := 0; k < ic.n; k++ {
		if ic.classes[k] == recv.Class {
			target = ic.targets[k]
			ic.hits++
			if ic.states[k] == nil {
				ic.states[k] = vm.state(target)
			}
			tst = ic.states[k]
			break
		}
	}
	if target == nil {
		ic.misses++
		t, ok := recv.Class.ResolveMethod(in.s)
		if !ok {
			return 0, fmt.Errorf("%w: %s.%s", ErrNoSuchMethod, recv.Class.Name, in.s)
		}
		if ic.n < icWidth {
			ic.classes[ic.n] = recv.Class
			ic.targets[ic.n] = t
			ic.states[ic.n] = vm.state(t)
			tst = ic.states[ic.n]
			ic.n++
		}
		target = t
	}
	vm.Counters.Method++
	ret, err := vm.callCached(tst, target, args, fr)
	if err != nil {
		return 0, err
	}
	fr.regs[fr.sp] = ret
	fr.sp++
	return pc + 1, nil
}

// callCached dispatches a call whose target's tiering state an inline
// cache may already hold: a quickened callee is entered directly,
// skipping the per-call state lookup; everything else (unquickened,
// arity mismatch, depth limit) takes the generic invoke path so traps
// and tier-up behave exactly as tier-0 would.
func (vm *Interp) callCached(tst *mstate, target *Method, args []Value, fr *frame) (Value, error) {
	if tst != nil && tst.q != nil && len(args) == tst.m.NArgs && fr.depth < fr.maxDepth {
		if vm.Tier != TierBaseline {
			tst.invocations++
		}
		return vm.runQuick(tst, args, fr.depth+1, fr.maxDepth)
	}
	return vm.invoke(target, args, fr.depth+1, fr.maxDepth)
}

func qhInvokeDynamic(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	t := in.tgt
	if t == nil {
		tt, err := vm.resolveStatic(in.s)
		if err != nil {
			return 0, err
		}
		in.tgt = tt
		t = tt
	}
	vm.Counters.IDynamic++
	fr.regs[fr.sp] = Handle(t)
	fr.sp++
	return pc + 1, nil
}

func qhInvokeHandle(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	n := int(in.a)
	args := fr.regs[fr.sp-n : fr.sp]
	h := fr.regs[fr.sp-n-1]
	fr.sp -= n + 1
	target := h.AsHandle()
	if target == nil {
		return 0, fmt.Errorf("%w: invokehandle on %s", ErrNullPointer, h)
	}
	ic := in.ic
	if ic.targets[0] == target {
		ic.hits++
	} else {
		ic.misses++
		ic.targets[0] = target
		ic.states[0] = vm.state(target)
		if ic.n == 0 {
			ic.n = 1
		}
	}
	vm.Counters.Method++
	ret, err := vm.callCached(ic.states[0], target, args, fr)
	if err != nil {
		return 0, err
	}
	fr.regs[fr.sp] = ret
	fr.sp++
	return pc + 1, nil
}

func qhMonitorEnter(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	fr.sp--
	obj := fr.regs[fr.sp].AsRef()
	if obj == nil {
		return 0, fmt.Errorf("%w: monitorenter", ErrNullPointer)
	}
	obj.monitorDepth++
	vm.Counters.Synch++
	vm.Counters.Atomic++ // lock-word CAS
	return pc + 1, nil
}

func qhMonitorExit(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	fr.sp--
	obj := fr.regs[fr.sp].AsRef()
	if obj == nil {
		return 0, fmt.Errorf("%w: monitorexit", ErrNullPointer)
	}
	if obj.monitorDepth <= 0 {
		return 0, ErrBadMonitor
	}
	obj.monitorDepth--
	vm.Counters.Atomic++
	return pc + 1, nil
}

func qhCAS(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	nv := fr.regs[fr.sp-1]
	exp := fr.regs[fr.sp-2]
	obj := fr.regs[fr.sp-3].AsRef()
	fr.sp -= 3
	if obj == nil {
		return 0, fmt.Errorf("%w: cas %s", ErrNullPointer, in.s)
	}
	idx, ok := obj.Class.FieldIndex(in.s)
	if !ok {
		return 0, fmt.Errorf("%w: %s.%s", ErrNoSuchField, obj.Class.Name, in.s)
	}
	vm.Counters.Atomic++
	if obj.Fields[idx].Equal(exp) {
		obj.Fields[idx] = nv
		fr.regs[fr.sp] = Int(1)
	} else {
		fr.regs[fr.sp] = Int(0)
	}
	fr.sp++
	return pc + 1, nil
}

func qhAtomicAdd(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	delta := fr.regs[fr.sp-1]
	obj := fr.regs[fr.sp-2].AsRef()
	fr.sp -= 2
	if obj == nil {
		return 0, fmt.Errorf("%w: atomicadd %s", ErrNullPointer, in.s)
	}
	idx, ok := obj.Class.FieldIndex(in.s)
	if !ok {
		return 0, fmt.Errorf("%w: %s.%s", ErrNoSuchField, obj.Class.Name, in.s)
	}
	vm.Counters.Atomic++
	old := obj.Fields[idx]
	obj.Fields[idx] = Int(old.AsInt() + delta.AsInt())
	fr.regs[fr.sp] = old
	fr.sp++
	return pc + 1, nil
}

func qhPark(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	vm.Counters.Park++
	return pc + 1, nil
}

func qhWait(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	fr.sp--
	vm.Counters.Wait++
	return pc + 1, nil
}

func qhNotify(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	fr.sp--
	vm.Counters.Notify++
	return pc + 1, nil
}

func qhInstanceOf(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	fr.regs[fr.sp-1] = boolVal(vm.isInstance(fr.regs[fr.sp-1], in.s))
	return pc + 1, nil
}

func qhCheckCast(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++
	o := fr.regs[fr.sp-1]
	if !o.IsNull() && !vm.isInstance(o, in.s) {
		return 0, fmt.Errorf("%w: to %s", ErrBadCast, in.s)
	}
	return pc + 1, nil
}

// --- Superinstructions ---------------------------------------------------
//
// Executed bumps are staged so a trap observes the count tier-0 would
// have produced at the same point (count-before-execute semantics).

// qhLenCmpBr is the fused canonical loop header — and, inside a proven
// region, the hoisted null+bounds check for the body's NB accesses.
func qhLenCmpBr(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed += 3 // Load idx; Load arr; ArrayLen
	obj := fr.regs[in.b].AsRef()
	if obj == nil {
		return 0, fmt.Errorf("%w: arraylen", ErrNullPointer)
	}
	vm.Counters.Executed += 2 // CmpLT; JumpIfNot
	iv := fr.regs[in.a]
	var lt bool
	if iv.kind == KindInt {
		lt = iv.i < int64(len(obj.Elems))
	} else {
		lt = compare(OpCmpLT, iv, Int(int64(len(obj.Elems))))
	}
	if !lt {
		return int(in.c), nil
	}
	return pc + 1, nil
}

func qhLLCmpBr(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed += 4
	t := cmpFast(in.xop, fr.regs[in.a], fr.regs[in.b])
	if t != in.neg { // JumpIf taken on true, JumpIfNot on false
		return int(in.c), nil
	}
	return pc + 1, nil
}

func qhLCCmpBr(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed += 4
	t := cmpFast(in.xop, fr.regs[in.a], Int(in.i))
	if t != in.neg {
		return int(in.c), nil
	}
	return pc + 1, nil
}

func qhCmpBr(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed += 2
	b := fr.regs[fr.sp-1]
	a := fr.regs[fr.sp-2]
	fr.sp -= 2
	t := cmpFast(in.xop, a, b)
	if t != in.neg {
		return int(in.c), nil
	}
	return pc + 1, nil
}

func qhLCArithStore(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed += 4
	x := fr.regs[in.a]
	if x.kind == KindInt {
		// Fusion guarantees the constant divisor is non-zero.
		switch in.xop {
		case OpAdd:
			fr.regs[in.b] = Int(x.i + in.i)
		case OpSub:
			fr.regs[in.b] = Int(x.i - in.i)
		case OpMul:
			fr.regs[in.b] = Int(x.i * in.i)
		case OpDiv:
			fr.regs[in.b] = Int(x.i / in.i)
		case OpRem:
			fr.regs[in.b] = Int(x.i % in.i)
		}
		return pc + 1, nil
	}
	v, err := arith(in.xop, x, Int(in.i))
	if err != nil {
		return 0, err
	}
	fr.regs[in.b] = v
	return pc + 1, nil
}

func qhLLArithStore(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed += 4
	x, y := fr.regs[in.a], fr.regs[in.b]
	if v, ok := arithFast(in.xop, x, y); ok {
		fr.regs[in.c] = v
		return pc + 1, nil
	}
	v, err := arith(in.xop, x, y) // Add/Sub/Mul only: cannot trap
	if err != nil {
		return 0, err
	}
	fr.regs[in.c] = v
	return pc + 1, nil
}

func qhArithStore(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed++ // the arith
	b := fr.regs[fr.sp-1]
	a := fr.regs[fr.sp-2]
	fr.sp -= 2
	v, ok := arithFast(in.xop, a, b)
	if !ok {
		var err error
		v, err = arith(in.xop, a, b)
		if err != nil {
			return 0, err // trap before the store is counted, like tier-0
		}
	}
	vm.Counters.Executed++ // the store
	fr.regs[in.a] = v
	return pc + 1, nil
}

func qhCArith(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed += 2
	a := fr.regs[fr.sp-1]
	k := Int(in.i)
	if v, ok := arithFast(in.xop, a, k); ok {
		fr.regs[fr.sp-1] = v
		return pc + 1, nil
	}
	v, err := arith(in.xop, a, k) // non-zero constant: cannot trap
	if err != nil {
		return 0, err
	}
	fr.regs[fr.sp-1] = v
	return pc + 1, nil
}

func qhLLALoad(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed += 3
	obj := fr.regs[in.a].AsRef()
	if obj == nil {
		return 0, fmt.Errorf("%w: aload", ErrNullPointer)
	}
	i := fr.regs[in.b].AsInt()
	if i < 0 || i >= int64(len(obj.Elems)) {
		return 0, fmt.Errorf("%w: %d of %d", ErrBounds, i, len(obj.Elems))
	}
	fr.regs[fr.sp] = obj.Elems[i]
	fr.sp++
	return pc + 1, nil
}

func qhLLALoadNB(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed += 3
	obj := fr.regs[in.a].AsRef()
	if obj == nil {
		return 0, fmt.Errorf("%w: aload", ErrNullPointer)
	}
	i := fr.regs[in.b].AsInt()
	if uint64(i) >= uint64(len(obj.Elems)) {
		return 0, fmt.Errorf("%w: %d of %d", ErrBounds, i, len(obj.Elems))
	}
	fr.regs[fr.sp] = obj.Elems[i]
	fr.sp++
	return pc + 1, nil
}

func qhLLLAStore(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed += 4
	obj := fr.regs[in.a].AsRef()
	if obj == nil {
		return 0, fmt.Errorf("%w: astore", ErrNullPointer)
	}
	i := fr.regs[in.b].AsInt()
	if i < 0 || i >= int64(len(obj.Elems)) {
		return 0, fmt.Errorf("%w: %d of %d", ErrBounds, i, len(obj.Elems))
	}
	obj.Elems[i] = fr.regs[in.c]
	return pc + 1, nil
}

func qhLLLAStoreNB(vm *Interp, fr *frame, in *qinstr, pc int) (int, error) {
	vm.Counters.Executed += 4
	obj := fr.regs[in.a].AsRef()
	if obj == nil {
		return 0, fmt.Errorf("%w: astore", ErrNullPointer)
	}
	i := fr.regs[in.b].AsInt()
	if uint64(i) >= uint64(len(obj.Elems)) {
		return 0, fmt.Errorf("%w: %d of %d", ErrBounds, i, len(obj.Elems))
	}
	obj.Elems[i] = fr.regs[in.c]
	return pc + 1, nil
}
