package rvm

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Tiered execution policy. Tier-0 is the switch interpreter on pooled
// flat frames, augmented (under TierAuto) with lightweight profiling:
// per-method invocation and backedge counters and per-call-site
// receiver-class histograms. When a method crosses a threshold it is
// quickened into tier-1 — token-threaded dispatch over superinstructions
// with inline caches (see quicken.go / tier1.go).
type TierPolicy uint8

const (
	// TierAuto profiles in tier-0 and quickens hot methods (default).
	TierAuto TierPolicy = iota
	// TierBaseline pins execution to tier-0 with profiling disabled —
	// the honest baseline for tier-up measurements (-rvm.tier=0).
	TierBaseline
	// TierQuick quickens every verifiable method on first invocation
	// (-rvm.tier=1); used by the differential tier tests.
	TierQuick
)

// DefaultTier is the policy NewInterp installs; the -rvm.tier CLI flag
// overrides it process-wide before workloads construct interpreters.
var DefaultTier = TierAuto

// Tier-up thresholds (package variables so tests can lower them). A
// method quickens when it accumulates TierUpInvocations calls or
// TierUpBackedges taken backward branches, whichever comes first; the
// backedge trigger performs on-stack replacement at the next loop header.
var (
	TierUpInvocations int64 = 12
	TierUpBackedges   int64 = 48
)

// mstate is the per-interpreter tiering state of one method. It lives in
// Interp.states — never on the shared *Method — so concurrent
// interpreters over one Program stay race-free.
type mstate struct {
	m *Method
	// flat reports the method verified: it can run on the flat-frame
	// tier-0 path and is a quickening candidate.
	flat     bool
	noQuick  bool // quickening failed or is not applicable
	maxStack int
	depths   []int // per-pc entry depth from verification
	leaders  map[int]bool
	charges  []int32 // per-leader block fuel charges

	invocations int64
	backedges   int64
	sites       map[int]*recvProf // tier-0 receiver-class histograms

	q *qcode // non-nil once quickened

	flushedInv, flushedBack int64 // profile-collector delta bookkeeping
}

// recvProf is a tier-0 call-site receiver histogram; its top entries seed
// the tier-1 inline cache at quicken time.
type recvProf struct {
	classes [icWidth]*Class
	counts  [icWidth]int64
	other   int64
}

func (rp *recvProf) note(c *Class) {
	for i := 0; i < icWidth; i++ {
		if rp.classes[i] == c {
			rp.counts[i]++
			return
		}
		if rp.classes[i] == nil {
			rp.classes[i] = c
			rp.counts[i] = 1
			return
		}
	}
	rp.other++
}

// state returns (creating on first use) the tiering state for a method,
// verifying it once per interpreter.
func (vm *Interp) state(m *Method) *mstate {
	st := vm.states[m]
	if st != nil {
		return st
	}
	st = &mstate{m: m}
	if ms, depths, err := verifyMethod(m); err == nil {
		st.flat = true
		st.maxStack = ms
		st.depths = depths
		st.leaders, st.charges = blockLayout(m)
	} else {
		st.noQuick = true
	}
	if vm.states == nil {
		vm.states = make(map[*Method]*mstate)
	}
	vm.states[m] = st
	return st
}

func (st *mstate) profileSite(pc int, c *Class) {
	if st.sites == nil {
		st.sites = make(map[int]*recvProf)
	}
	rp := st.sites[pc]
	if rp == nil {
		rp = &recvProf{}
		st.sites[pc] = rp
	}
	rp.note(c)
}

// --- Global profile collector -------------------------------------------
//
// Enabled by the -rvm.profile flag: interpreters flush per-method and
// per-site deltas here when a top-level Call completes. The report drives
// superinstruction selection (per-opcode execution counts at both tiers)
// and IC tuning (hit/miss rates, cache degree per site).

var profilingEnabled atomic.Bool

// EnableProfiling turns the global profile collector on.
func EnableProfiling() { profilingEnabled.Store(true) }

// DisableProfiling turns the collector off (collected data is kept).
func DisableProfiling() { profilingEnabled.Store(false) }

// ResetProfile discards all collected profile data.
func ResetProfile() {
	profMu.Lock()
	defer profMu.Unlock()
	profMethods = map[string]*MethodProfile{}
	profOpcodes = [numOpcodes]int64{}
	profQOps = [qopCount]int64{}
}

// SiteProfile reports one call or field site of a quickened method.
type SiteProfile struct {
	PC           int
	Kind         string // invokevirtual / invokeinterface / invokehandle / getfield / putfield
	Sym          string
	Hits, Misses int64
	Degree       int // occupied IC entries (0 = never executed, 1 = monomorphic)
}

// State describes the inline-cache state the site settled into.
func (s SiteProfile) State() string {
	switch {
	case s.Hits+s.Misses == 0:
		return "cold"
	case s.Degree <= 1:
		return "monomorphic"
	case s.Degree < icWidth:
		return "polymorphic"
	default:
		return "megamorphic"
	}
}

// MethodProfile aggregates one method's tiering profile across all
// flushed interpreters.
type MethodProfile struct {
	Name        string
	Invocations int64
	Backedges   int64
	Quickened   bool
	Sites       []SiteProfile
}

var (
	profMu      sync.Mutex
	profMethods = map[string]*MethodProfile{}
	profOpcodes [numOpcodes]int64
	profQOps    [qopCount]int64
)

// flushProfile merges this interpreter's tiering state into the global
// collector as deltas, so repeated Calls on one interpreter do not
// double-count.
func (vm *Interp) flushProfile() {
	profMu.Lock()
	defer profMu.Unlock()
	for i := range vm.opProf {
		profOpcodes[i] += vm.opProf[i]
		vm.opProf[i] = 0
	}
	for i := range vm.qopProf {
		profQOps[i] += vm.qopProf[i]
		vm.qopProf[i] = 0
	}
	for m, st := range vm.states {
		dInv := st.invocations - st.flushedInv
		dBack := st.backedges - st.flushedBack
		var live []*siteIC
		if st.q != nil {
			live = st.q.sites
		}
		if dInv == 0 && dBack == 0 && len(live) == 0 {
			continue
		}
		st.flushedInv, st.flushedBack = st.invocations, st.backedges
		name := m.QualifiedName()
		mp := profMethods[name]
		if mp == nil {
			mp = &MethodProfile{Name: name}
			profMethods[name] = mp
		}
		mp.Invocations += dInv
		mp.Backedges += dBack
		mp.Quickened = mp.Quickened || st.q != nil
		for _, ic := range live {
			dh := ic.hits - ic.flushedHits
			dm := ic.misses - ic.flushedMisses
			if dh == 0 && dm == 0 {
				continue
			}
			ic.flushedHits, ic.flushedMisses = ic.hits, ic.misses
			found := false
			for i := range mp.Sites {
				if mp.Sites[i].PC == ic.pc {
					mp.Sites[i].Hits += dh
					mp.Sites[i].Misses += dm
					if ic.n > mp.Sites[i].Degree {
						mp.Sites[i].Degree = ic.n
					}
					found = true
					break
				}
			}
			if !found {
				mp.Sites = append(mp.Sites, SiteProfile{
					PC: ic.pc, Kind: ic.kind.String(), Sym: ic.sym,
					Hits: dh, Misses: dm, Degree: ic.n,
				})
			}
		}
	}
}

// ProfileMethods returns the collected per-method profiles, hottest
// (most-invoked) first.
func ProfileMethods() []*MethodProfile {
	profMu.Lock()
	defer profMu.Unlock()
	out := make([]*MethodProfile, 0, len(profMethods))
	for _, mp := range profMethods {
		cp := *mp
		cp.Sites = append([]SiteProfile(nil), mp.Sites...)
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Invocations != out[j].Invocations {
			return out[i].Invocations > out[j].Invocations
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ICHitRate returns the aggregate inline-cache hit rate over every
// invoke site in the collected profile (1.0 when no site executed).
func ICHitRate() float64 {
	var hits, total int64
	for _, mp := range ProfileMethods() {
		for _, s := range mp.Sites {
			if s.Kind == "getfield" || s.Kind == "putfield" {
				continue
			}
			hits += s.Hits
			total += s.Hits + s.Misses
		}
	}
	if total == 0 {
		return 1
	}
	return float64(hits) / float64(total)
}

// WriteProfile renders the collected profile: the top-N hot methods with
// their call-site IC states, then the per-opcode (tier-0) and
// per-superinstruction (tier-1) execution histograms.
func WriteProfile(w io.Writer, topN int) {
	methods := ProfileMethods()
	profMu.Lock()
	ops := profOpcodes
	qops := profQOps
	profMu.Unlock()

	fmt.Fprintf(w, "=== rvm profile: %d methods, IC hit rate %.1f%% ===\n",
		len(methods), 100*ICHitRate())
	if topN > len(methods) {
		topN = len(methods)
	}
	for _, mp := range methods[:topN] {
		tier := "tier-0"
		if mp.Quickened {
			tier = "tier-1"
		}
		fmt.Fprintf(w, "%-40s %s  inv=%d backedges=%d\n", mp.Name, tier, mp.Invocations, mp.Backedges)
		sort.Slice(mp.Sites, func(i, j int) bool { return mp.Sites[i].PC < mp.Sites[j].PC })
		for _, s := range mp.Sites {
			total := s.Hits + s.Misses
			rate := 0.0
			if total > 0 {
				rate = 100 * float64(s.Hits) / float64(total)
			}
			fmt.Fprintf(w, "    pc=%-4d %-15s %-24s %-12s hits=%-10d misses=%-6d (%.1f%%)\n",
				s.PC, s.Kind, s.Sym, s.State(), s.Hits, s.Misses, rate)
		}
	}
	fmt.Fprintln(w, "--- tier-0 opcode counts ---")
	writeHistogram(w, ops[:], func(i int) string { return Opcode(i).String() })
	fmt.Fprintln(w, "--- tier-1 superinstruction counts ---")
	writeHistogram(w, qops[:], func(i int) string { return qop(i).String() })
}

func writeHistogram(w io.Writer, counts []int64, name func(int) string) {
	type row struct {
		name  string
		count int64
	}
	var rows []row
	for i, c := range counts {
		if c > 0 {
			rows = append(rows, row{name(i), c})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].count != rows[j].count {
			return rows[i].count > rows[j].count
		}
		return rows[i].name < rows[j].name
	})
	for _, r := range rows {
		fmt.Fprintf(w, "    %-20s %d\n", r.name, r.count)
	}
}
