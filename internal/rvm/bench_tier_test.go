package rvm

import "testing"

// The tier-up benchmarks measure the three execution engines on the
// kernels the quickener targets (see EXPERIMENTS.md "Interpreter
// tier-up"):
//
//   - legacy: the pre-verification dynamic-stack interpreter, forced by
//     marking every method unverified (the seed's only engine).
//   - tier0:  the flat-frame switch interpreter with verified stack
//     depths, pooled frames, and block-granularity fuel.
//   - tier1:  quickened token-threaded code with superinstructions and
//     inline caches.
//
// Run with -cpu 1: the interpreter is single-threaded and the numbers
// feed a per-op dispatch-cost table, not a scalability curve.

// benchProgram is buildProgram without a testing.T, so benchmarks can
// construct programs in package-level helpers.
func benchProgram(entry *Method, extra ...*Method) *Program {
	p := NewProgram()
	main := NewClass("Main", nil)
	entry.Static = true
	main.AddMethod(entry)
	for _, m := range extra {
		m.Static = true
		main.AddMethod(m)
	}
	if err := p.AddClass(main); err != nil {
		panic(err)
	}
	p.Entry = entry
	return p
}

// forceLegacy pins every method of the program to the dynamic-stack
// path, as if verification had failed — the seed interpreter's behavior.
func forceLegacy(vm *Interp, p *Program) {
	for _, m := range p.Methods() {
		st := vm.state(m)
		st.flat = false
		st.noQuick = true
	}
}

// benchTiers runs the program once per engine configuration under b.N.
func benchTiers(b *testing.B, p *Program, args ...Value) {
	b.Helper()
	engines := []struct {
		name   string
		tier   TierPolicy
		legacy bool
	}{
		{"legacy", TierBaseline, true},
		{"tier0", TierBaseline, false},
		{"tier1", TierQuick, false},
	}
	for _, e := range engines {
		b.Run(e.name, func(b *testing.B) {
			vm := NewInterp(p)
			vm.Tier = e.tier
			if e.legacy {
				forceLegacy(vm, p)
			}
			if _, err := vm.Run(args...); err != nil { // warm: verify + quicken
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := vm.Run(args...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDispatch is the pure dispatch kernel: a counted loop of
// loads, arithmetic, compares, and branches with no calls and no arrays,
// so per-instruction dispatch overhead dominates.
func BenchmarkDispatch(b *testing.B) {
	a := NewAsm()
	// slot 0 = n, 1 = sum, 2 = i, 3 = t
	a.ConstInt(0).Store(1)
	a.ConstInt(0).Store(2)
	a.Label("head")
	a.Load(2).Load(0).Op(OpCmpLT).Jump(OpJumpIfNot, "exit")
	a.Load(2).ConstInt(3).Op(OpMul).Store(3)
	a.Load(1).Load(3).Op(OpAdd).Store(1)
	a.Load(2).ConstInt(1).Op(OpAdd).Store(2)
	a.Jump(OpJump, "head")
	a.Label("exit")
	a.Load(1).Op(OpReturn)
	p := benchProgram(a.MustBuild("main", 1))
	benchTiers(b, p, Int(4096))
}

// BenchmarkInlineCache is the virtual-dispatch kernel: one invokevirtual
// site with a monomorphic receiver, the case the tier-1 inline cache
// turns into a single class-pointer compare.
func BenchmarkInlineCache(b *testing.B) {
	p := NewProgram()
	animal := NewClass("Animal", nil)
	sa := NewAsm()
	sa.ConstInt(0).Op(OpReturn)
	animal.AddMethod(sa.MustBuild("speak", 1))
	if err := p.AddClass(animal); err != nil {
		b.Fatal(err)
	}
	dog := NewClass("Dog", animal)
	sd := NewAsm()
	sd.ConstInt(2).Op(OpReturn)
	dog.AddMethod(sd.MustBuild("speak", 1))
	if err := p.AddClass(dog); err != nil {
		b.Fatal(err)
	}

	a := NewAsm()
	// slot 0 = n, 1 = recv, 2 = sum, 3 = i
	a.Sym(OpNew, "Dog").Store(1)
	a.ConstInt(0).Store(2)
	a.ConstInt(0).Store(3)
	a.Label("head")
	a.Load(3).Load(0).Op(OpCmpLT).Jump(OpJumpIfNot, "exit")
	a.Load(1).Invoke(OpInvokeVirtual, "speak", 1)
	a.Load(2).Op(OpAdd).Store(2)
	a.Load(3).ConstInt(1).Op(OpAdd).Store(3)
	a.Jump(OpJump, "head")
	a.Label("exit")
	a.Load(2).Op(OpReturn)
	m := a.MustBuild("main", 1)
	m.Static = true
	mainC := NewClass("Main", nil)
	mainC.AddMethod(m)
	if err := p.AddClass(mainC); err != nil {
		b.Fatal(err)
	}
	p.Entry = m
	benchTiers(b, p, Int(4096))
}

// BenchmarkArrayLoop is the canonical counted array loop: fill then sum
// the same array eight times, so per-element access cost (null + bounds
// checks in tier-0, their eliminated forms in tier-1) dominates the one
// allocation.
func BenchmarkArrayLoop(b *testing.B) {
	a := NewAsm()
	// slot 0 = n, 1 = arr, 2 = sum, 3 = i, 4 = r
	a.Load(0).Op(OpNewArray).Store(1)
	a.ConstInt(0).Store(2)
	a.ConstInt(0).Store(4)
	a.Label("rep")
	a.Load(4).ConstInt(8).Op(OpCmpLT).Jump(OpJumpIfNot, "done")

	a.ConstInt(0).Store(3)
	a.Label("fill")
	a.Load(3).Load(1).Op(OpArrayLen).Op(OpCmpLT).Jump(OpJumpIfNot, "sum0")
	a.Load(1).Load(3).Load(3).Op(OpAStore)
	a.Load(3).ConstInt(1).Op(OpAdd).Store(3)
	a.Jump(OpJump, "fill")

	a.Label("sum0")
	a.ConstInt(0).Store(3)
	a.Label("sum")
	a.Load(3).Load(1).Op(OpArrayLen).Op(OpCmpLT).Jump(OpJumpIfNot, "next")
	a.Load(2).Load(1).Load(3).Op(OpALoad).Op(OpAdd).Store(2)
	a.Load(3).ConstInt(1).Op(OpAdd).Store(3)
	a.Jump(OpJump, "sum")

	a.Label("next")
	a.Load(4).ConstInt(1).Op(OpAdd).Store(4)
	a.Jump(OpJump, "rep")
	a.Label("done")
	a.Load(2).Op(OpReturn)
	p := benchProgram(a.MustBuild("main", 1))
	benchTiers(b, p, Int(1024))
}
