package ir

import (
	"fmt"

	"renaissance/internal/rvm"
)

// BuildProgram translates every method of the bytecode program to IR.
func BuildProgram(p *rvm.Program) (*Program, error) {
	out := &Program{
		Funcs:   make(map[string]*Func),
		Classes: p.Classes,
	}
	for _, m := range p.Methods() {
		f, err := BuildFunc(m)
		if err != nil {
			return nil, fmt.Errorf("ir: building %s: %w", m.QualifiedName(), err)
		}
		out.Funcs[m.QualifiedName()] = f
	}
	if p.Entry != nil {
		out.Entry = p.Entry.QualifiedName()
	}
	return out, nil
}

// BuildFunc translates one bytecode method to IR by abstract stack
// interpretation: local slot i becomes register i, and operand-stack depth
// d becomes register NLocals+d. Explicit GuardNull/GuardBounds
// instructions are inserted before unchecked memory accesses, the way a
// JIT compiler expands the JVM's implicit checks into guard nodes (§5.5).
func BuildFunc(m *rvm.Method) (*Func, error) {
	f := &Func{Name: m.QualifiedName(), NArgs: m.NArgs, NRegs: m.NLocals}

	// Find leaders.
	leaders := map[int]bool{0: true}
	for pc, in := range m.Code {
		switch in.Op {
		case rvm.OpJump:
			leaders[in.A] = true
			leaders[pc+1] = true
		case rvm.OpJumpIf, rvm.OpJumpIfNot:
			leaders[in.A] = true
			leaders[pc+1] = true
		case rvm.OpReturn, rvm.OpReturnVoid:
			leaders[pc+1] = true
		}
	}
	blockAt := map[int]*Block{}
	for pc := range m.Code {
		if leaders[pc] {
			blockAt[pc] = f.NewBlock()
		}
	}
	if len(m.Code) == 0 {
		b := f.NewBlock()
		b.Term = Terminator{Kind: TermReturnVoid, Ret: NoReg, Cond: NoReg}
		f.Entry = b
		return f, nil
	}
	f.Entry = blockAt[0]

	// Worklist of (block start pc, entry stack depth).
	depthAt := map[int]int{0: 0}
	work := []int{0}
	done := map[int]bool{}

	stackReg := func(depth int) Reg { return Reg(m.NLocals + depth) }
	ensureRegs := func(depth int) {
		if need := m.NLocals + depth; need > f.NRegs {
			f.NRegs = need
		}
	}

	for len(work) > 0 {
		start := work[len(work)-1]
		work = work[:len(work)-1]
		if done[start] {
			continue
		}
		done[start] = true
		b := blockAt[start]
		depth := depthAt[start]

		emit := func(in Instr) *Instr {
			p := in
			b.Code = append(b.Code, &p)
			return b.Code[len(b.Code)-1]
		}
		push := func() Reg { r := stackReg(depth); depth++; ensureRegs(depth); return r }
		pop := func() (Reg, error) {
			if depth == 0 {
				return NoReg, fmt.Errorf("stack underflow at pc %d", start)
			}
			depth--
			return stackReg(depth), nil
		}

		flowTo := func(targetPC, d int) error {
			if prev, seen := depthAt[targetPC]; seen {
				if prev != d {
					return fmt.Errorf("inconsistent stack depth at pc %d: %d vs %d", targetPC, prev, d)
				}
			} else {
				depthAt[targetPC] = d
			}
			if !done[targetPC] {
				work = append(work, targetPC)
			}
			return nil
		}

		pc := start
		terminated := false
		for pc < len(m.Code) {
			if pc != start && leaders[pc] {
				// Fall through into the next block.
				b.Term = Terminator{Kind: TermJump, To: blockAt[pc], Cond: NoReg, Ret: NoReg}
				if err := flowTo(pc, depth); err != nil {
					return nil, err
				}
				terminated = true
				break
			}
			in := m.Code[pc]
			switch in.Op {
			case rvm.OpNop:

			case rvm.OpConstInt:
				emit(Instr{Op: OpConst, Dst: push(), Val: rvm.Int(in.I), A: NoReg, B: NoReg, C: NoReg})
			case rvm.OpConstFloat:
				emit(Instr{Op: OpConst, Dst: push(), Val: rvm.Float(in.F), A: NoReg, B: NoReg, C: NoReg})
			case rvm.OpConstNull:
				emit(Instr{Op: OpConst, Dst: push(), Val: rvm.Null(), A: NoReg, B: NoReg, C: NoReg})
			case rvm.OpLoad:
				emit(Instr{Op: OpMove, Dst: push(), A: Reg(in.A), B: NoReg, C: NoReg})
			case rvm.OpStore:
				src, err := pop()
				if err != nil {
					return nil, err
				}
				emit(Instr{Op: OpMove, Dst: Reg(in.A), A: src, B: NoReg, C: NoReg})
			case rvm.OpPop:
				if _, err := pop(); err != nil {
					return nil, err
				}
			case rvm.OpDup:
				top := stackReg(depth - 1)
				emit(Instr{Op: OpMove, Dst: push(), A: top, B: NoReg, C: NoReg})

			case rvm.OpAdd, rvm.OpSub, rvm.OpMul, rvm.OpDiv, rvm.OpRem:
				rb, err := pop()
				if err != nil {
					return nil, err
				}
				ra, err := pop()
				if err != nil {
					return nil, err
				}
				emit(Instr{Op: arithOp(in.Op), Dst: push(), A: ra, B: rb, C: NoReg})
			case rvm.OpNeg:
				ra, err := pop()
				if err != nil {
					return nil, err
				}
				emit(Instr{Op: OpNeg, Dst: push(), A: ra, B: NoReg, C: NoReg})
			case rvm.OpCmpLT, rvm.OpCmpLE, rvm.OpCmpGT, rvm.OpCmpGE, rvm.OpCmpEQ, rvm.OpCmpNE:
				rb, err := pop()
				if err != nil {
					return nil, err
				}
				ra, err := pop()
				if err != nil {
					return nil, err
				}
				emit(Instr{Op: cmpOp(in.Op), Dst: push(), A: ra, B: rb, C: NoReg})

			case rvm.OpJump:
				b.Term = Terminator{Kind: TermJump, To: blockAt[in.A], Cond: NoReg, Ret: NoReg}
				if err := flowTo(in.A, depth); err != nil {
					return nil, err
				}
				terminated = true
			case rvm.OpJumpIf, rvm.OpJumpIfNot:
				cond, err := pop()
				if err != nil {
					return nil, err
				}
				taken := blockAt[in.A]
				fall := blockAt[pc+1]
				if fall == nil {
					return nil, fmt.Errorf("branch at %d has no fallthrough block", pc)
				}
				t := Terminator{Kind: TermBranch, Cond: cond, To: taken, Else: fall, Ret: NoReg}
				if in.Op == rvm.OpJumpIfNot {
					t.To, t.Else = fall, taken
				}
				b.Term = t
				if err := flowTo(in.A, depth); err != nil {
					return nil, err
				}
				if err := flowTo(pc+1, depth); err != nil {
					return nil, err
				}
				terminated = true
			case rvm.OpReturn:
				r, err := pop()
				if err != nil {
					return nil, err
				}
				b.Term = Terminator{Kind: TermReturn, Ret: r, Cond: NoReg}
				terminated = true
			case rvm.OpReturnVoid:
				b.Term = Terminator{Kind: TermReturnVoid, Ret: NoReg, Cond: NoReg}
				terminated = true

			case rvm.OpNew:
				emit(Instr{Op: OpNew, Dst: push(), Sym: in.S, A: NoReg, B: NoReg, C: NoReg})
			case rvm.OpGetField:
				obj, err := pop()
				if err != nil {
					return nil, err
				}
				emit(Instr{Op: OpGuardNull, A: obj, Dst: NoReg, B: NoReg, C: NoReg})
				emit(Instr{Op: OpGetField, Dst: push(), A: obj, Sym: in.S, B: NoReg, C: NoReg})
			case rvm.OpPutField:
				val, err := pop()
				if err != nil {
					return nil, err
				}
				obj, err := pop()
				if err != nil {
					return nil, err
				}
				emit(Instr{Op: OpGuardNull, A: obj, Dst: NoReg, B: NoReg, C: NoReg})
				emit(Instr{Op: OpPutField, A: obj, B: val, Sym: in.S, Dst: NoReg, C: NoReg})
			case rvm.OpNewArray:
				n, err := pop()
				if err != nil {
					return nil, err
				}
				emit(Instr{Op: OpNewArray, Dst: push(), A: n, B: NoReg, C: NoReg})
			case rvm.OpALoad:
				idx, err := pop()
				if err != nil {
					return nil, err
				}
				arr, err := pop()
				if err != nil {
					return nil, err
				}
				emit(Instr{Op: OpGuardNull, A: arr, Dst: NoReg, B: NoReg, C: NoReg})
				emit(Instr{Op: OpGuardBounds, A: arr, B: idx, Dst: NoReg, C: NoReg})
				emit(Instr{Op: OpALoad, Dst: push(), A: arr, B: idx, C: NoReg})
			case rvm.OpAStore:
				val, err := pop()
				if err != nil {
					return nil, err
				}
				idx, err := pop()
				if err != nil {
					return nil, err
				}
				arr, err := pop()
				if err != nil {
					return nil, err
				}
				emit(Instr{Op: OpGuardNull, A: arr, Dst: NoReg, B: NoReg, C: NoReg})
				emit(Instr{Op: OpGuardBounds, A: arr, B: idx, Dst: NoReg, C: NoReg})
				emit(Instr{Op: OpAStore, A: arr, B: idx, C: val, Dst: NoReg})
			case rvm.OpArrayLen:
				arr, err := pop()
				if err != nil {
					return nil, err
				}
				emit(Instr{Op: OpGuardNull, A: arr, Dst: NoReg, B: NoReg, C: NoReg})
				emit(Instr{Op: OpArrayLen, Dst: push(), A: arr, B: NoReg, C: NoReg})

			case rvm.OpInvokeStatic, rvm.OpInvokeVirtual, rvm.OpInvokeInterface:
				args := make([]Reg, in.A)
				for i := in.A - 1; i >= 0; i-- {
					r, err := pop()
					if err != nil {
						return nil, err
					}
					args[i] = r
				}
				op := OpCallStatic
				if in.Op != rvm.OpInvokeStatic {
					op = OpCallVirt
					if len(args) > 0 {
						emit(Instr{Op: OpGuardNull, A: args[0], Dst: NoReg, B: NoReg, C: NoReg})
					}
				}
				emit(Instr{Op: op, Dst: push(), Sym: in.S, Args: args, A: NoReg, B: NoReg, C: NoReg})
			case rvm.OpInvokeDynamic:
				emit(Instr{Op: OpMakeHandle, Dst: push(), Sym: in.S, A: NoReg, B: NoReg, C: NoReg})
			case rvm.OpInvokeHandle:
				args := make([]Reg, in.A)
				for i := in.A - 1; i >= 0; i-- {
					r, err := pop()
					if err != nil {
						return nil, err
					}
					args[i] = r
				}
				h, err := pop()
				if err != nil {
					return nil, err
				}
				emit(Instr{Op: OpCallHandle, Dst: push(), A: h, Args: args, B: NoReg, C: NoReg})

			case rvm.OpMonitorEnter, rvm.OpMonitorExit:
				obj, err := pop()
				if err != nil {
					return nil, err
				}
				emit(Instr{Op: OpGuardNull, A: obj, Dst: NoReg, B: NoReg, C: NoReg})
				op := OpMonitorEnter
				if in.Op == rvm.OpMonitorExit {
					op = OpMonitorExit
				}
				emit(Instr{Op: op, A: obj, Dst: NoReg, B: NoReg, C: NoReg})
			case rvm.OpCAS:
				nv, err := pop()
				if err != nil {
					return nil, err
				}
				exp, err := pop()
				if err != nil {
					return nil, err
				}
				obj, err := pop()
				if err != nil {
					return nil, err
				}
				emit(Instr{Op: OpGuardNull, A: obj, Dst: NoReg, B: NoReg, C: NoReg})
				emit(Instr{Op: OpCAS, Dst: push(), A: obj, B: exp, C: nv, Sym: in.S})
			case rvm.OpAtomicAdd:
				delta, err := pop()
				if err != nil {
					return nil, err
				}
				obj, err := pop()
				if err != nil {
					return nil, err
				}
				emit(Instr{Op: OpGuardNull, A: obj, Dst: NoReg, B: NoReg, C: NoReg})
				emit(Instr{Op: OpAtomicAdd, Dst: push(), A: obj, B: delta, Sym: in.S, C: NoReg})
			case rvm.OpPark:
				emit(Instr{Op: OpPark, Dst: NoReg, A: NoReg, B: NoReg, C: NoReg})
			case rvm.OpWait, rvm.OpNotify:
				obj, err := pop()
				if err != nil {
					return nil, err
				}
				op := OpWait
				if in.Op == rvm.OpNotify {
					op = OpNotify
				}
				emit(Instr{Op: op, A: obj, Dst: NoReg, B: NoReg, C: NoReg})

			case rvm.OpInstanceOf:
				obj, err := pop()
				if err != nil {
					return nil, err
				}
				emit(Instr{Op: OpInstanceOf, Dst: push(), A: obj, Sym: in.S, B: NoReg, C: NoReg})
			case rvm.OpCheckCast:
				obj, err := pop()
				if err != nil {
					return nil, err
				}
				emit(Instr{Op: OpCheckCast, Dst: push(), A: obj, Sym: in.S, B: NoReg, C: NoReg})

			default:
				return nil, fmt.Errorf("unsupported opcode %s at pc %d", in.Op, pc)
			}
			if terminated {
				break
			}
			pc++
		}
		if !terminated {
			// Fell off the end of the code.
			b.Term = Terminator{Kind: TermReturnVoid, Ret: NoReg, Cond: NoReg}
		}
	}

	// Unvisited blocks (dead bytecode) become empty returns.
	for pc, b := range blockAt {
		if !done[pc] && len(b.Code) == 0 && b.Term.To == nil && b.Term.Kind == TermJump {
			b.Term = Terminator{Kind: TermReturnVoid, Ret: NoReg, Cond: NoReg}
		}
	}

	f.Renumber()
	return f, nil
}

func arithOp(op rvm.Opcode) Op {
	switch op {
	case rvm.OpAdd:
		return OpAdd
	case rvm.OpSub:
		return OpSub
	case rvm.OpMul:
		return OpMul
	case rvm.OpDiv:
		return OpDiv
	default:
		return OpRem
	}
}

func cmpOp(op rvm.Opcode) Op {
	switch op {
	case rvm.OpCmpLT:
		return OpCmpLT
	case rvm.OpCmpLE:
		return OpCmpLE
	case rvm.OpCmpGT:
		return OpCmpGT
	case rvm.OpCmpGE:
		return OpCmpGE
	case rvm.OpCmpEQ:
		return OpCmpEQ
	default:
		return OpCmpNE
	}
}
